package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetryRecoversFromTransientStatuses: two 503s then success — the client
// retries through the outage and the caller never sees it.
func TestRetryRecoversFromTransientStatuses(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "rolling restart", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok","protocol":"v2"}`))
	}))
	defer srv.Close()

	c := New(srv.URL, WithRetry(3, time.Millisecond))
	proto, err := c.Healthz(context.Background())
	if err != nil {
		t.Fatalf("Healthz after transient 503s: %v", err)
	}
	if proto != "v2" {
		t.Errorf("protocol = %q, want v2", proto)
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d attempts, want 3", calls.Load())
	}
}

// TestRetryExhaustsAttempts: a persistent 503 fails after exactly the
// configured number of attempts.
func TestRetryExhaustsAttempts(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := New(srv.URL, WithRetry(3, time.Millisecond))
	if _, err := c.Healthz(context.Background()); err == nil {
		t.Fatal("persistent 503 did not surface an error")
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d attempts, want exactly 3", calls.Load())
	}
}

// TestNoRetryOnApplicationErrors: a 400-class answer is authoritative;
// resending the same bad request buys nothing.
func TestNoRetryOnApplicationErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusUnprocessableEntity)
		w.Write([]byte(`{"code":"synthesis_failed","message":"no feasible plan"}`))
	}))
	defer srv.Close()

	c := New(srv.URL, WithRetry(5, time.Millisecond))
	_, err := c.post(context.Background(), "/v1/synthesize", map[string]string{}, "")
	if err == nil {
		t.Fatal("422 did not surface an error")
	}
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.Code != "synthesis_failed" {
		t.Errorf("error = %v, want the decoded APIError", err)
	}
	if calls.Load() != 1 {
		t.Errorf("server saw %d attempts for an application error, want 1", calls.Load())
	}
}

// TestRetryOnTransportError: a connection-refused target is retried, and the
// retry succeeds once the port is listening again (simulated by pointing the
// client at a server that starts closed and comes up between attempts).
func TestRetryOnTransportError(t *testing.T) {
	// A server that is down for the first attempt: bind, grab the URL, close.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok","protocol":"v2"}`))
	}))
	url := srv.URL
	srv.Close()

	c := New(url, WithRetry(3, time.Millisecond))
	if _, err := c.Healthz(context.Background()); err == nil {
		t.Fatal("dead server answered")
	}
	// The point: the transport error was retried (no panic, clean error),
	// and a cancelled context is never retried.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := c.Healthz(ctx); err == nil {
		t.Fatal("cancelled context answered")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancelled request took %v; cancellation must not back off", elapsed)
	}
}

// TestBackoffHonorsContext: cancelling mid-backoff returns promptly with the
// context's error instead of sleeping out the delay.
func TestBackoffHonorsContext(t *testing.T) {
	p := retryPolicy{attempts: 5, base: 10 * time.Second}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.backoff(ctx, 3, 0) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Errorf("backoff returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("backoff kept sleeping after cancellation")
	}
}

// TestBackoffIsCapped: the delay for a huge attempt number stays within the
// cap (full jitter draws from [0, cap], so one sleep bounds it).
func TestBackoffIsCapped(t *testing.T) {
	p := retryPolicy{attempts: 100, base: time.Second}
	start := time.Now()
	// attempt 62: base<<62 overflows; the policy must clamp, and jitter may
	// still draw a large value — so only check it does not hang or panic
	// with a short context.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	p.backoff(ctx, 62, 0)
	if time.Since(start) > 5*time.Second {
		t.Error("overflowed backoff slept unbounded")
	}
}

// TestParseRetryAfter covers both RFC 9110 forms and the garbage cases.
func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
		// approximate allows HTTP-date rounding slop.
		approximate bool
	}{
		{"", 0, false},
		{"5", 5 * time.Second, false},
		{"0", 0, false},
		{"-3", 0, false},
		{"soon", 0, false},
		{time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat), 10 * time.Second, true},
		{time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat), 0, false},
	}
	for _, tc := range cases {
		got := parseRetryAfter(tc.in)
		if tc.approximate {
			if got < 8*time.Second || got > 11*time.Second {
				t.Errorf("parseRetryAfter(%q) = %v, want ~%v", tc.in, got, tc.want)
			}
		} else if got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestBackoffHonorsRetryAfterFloor: the jittered delay never undercuts the
// server's Retry-After. With a tiny base, jitter alone would return almost
// immediately — the floor must hold the sleep.
func TestBackoffHonorsRetryAfterFloor(t *testing.T) {
	p := retryPolicy{attempts: 3, base: time.Microsecond}
	start := time.Now()
	if err := p.backoff(context.Background(), 0, 150*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 140*time.Millisecond {
		t.Errorf("backoff slept %v, want >= the 150ms Retry-After floor", elapsed)
	}
}

// TestRetryAfterHeaderReachesBackoff: a 429 carrying Retry-After: 1 makes
// the retry wait at least a second even though the policy's base is a
// millisecond — the header value flows from the response into the sleep.
func TestRetryAfterHeaderReachesBackoff(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"code":"overloaded","message":"at capacity"}`))
			return
		}
		w.Write([]byte(`{"status":"ok","protocol":"v2"}`))
	}))
	defer srv.Close()

	c := New(srv.URL, WithRetry(3, time.Millisecond))
	start := time.Now()
	if _, err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("Healthz after shed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Errorf("retry waited %v, want >= ~1s from Retry-After", elapsed)
	}
	if calls.Load() != 2 {
		t.Errorf("server saw %d attempts, want 2", calls.Load())
	}
}

// TestZeroPolicyNeverRetries: a client built without WithRetry keeps the old
// single-attempt behavior.
func TestZeroPolicyNeverRetries(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c := New(srv.URL)
	if _, err := c.Healthz(context.Background()); err == nil {
		t.Fatal("503 did not surface an error")
	}
	if calls.Load() != 1 {
		t.Errorf("server saw %d attempts without WithRetry, want 1", calls.Load())
	}
}
