// Retry with jittered exponential backoff. Every request this client sends
// is idempotent by construction — /v1/synthesize is a pure, memoized
// function of its body (the server content-addresses the request and
// single-flights duplicates), and /healthz is a read — so retrying a failed
// attempt can waste work but never corrupt state. Retries fire only on
// errors that plausibly mean "try again": transport failures (connection
// refused, reset, timeout) and the gateway statuses a proxy or a rolling
// restart produces (429, 502, 503, 504). Application errors — bad_request,
// synthesis_failed — fail immediately: resending the same body buys
// nothing. A cancelled context is honored everywhere, including mid-backoff.

package client

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// DefaultRetryBase is the first backoff delay when WithRetry is given a
// non-positive base.
const DefaultRetryBase = 100 * time.Millisecond

// maxBackoff caps one backoff sleep regardless of attempt count.
const maxBackoff = 30 * time.Second

// WithRetry enables automatic retries: up to attempts total tries per
// request, sleeping a jittered exponential backoff (full jitter over
// base·2^attempt, capped at 30s) between them. Only transient failures are
// retried — transport errors and HTTP 429/502/503/504; every request the
// client makes is idempotent (synthesis is content-addressed and memoized
// server-side), so retries are safe. attempts <= 1 disables retries.
func WithRetry(attempts int, base time.Duration) Option {
	return func(c *Client) {
		if base <= 0 {
			base = DefaultRetryBase
		}
		c.retry = retryPolicy{attempts: attempts, base: base}
	}
}

// retryPolicy holds the retry knobs; the zero value never retries.
type retryPolicy struct {
	attempts int
	base     time.Duration
}

// shouldRetry reports whether another attempt is allowed after the given
// zero-based attempt index.
func (p retryPolicy) shouldRetry(attempt int) bool {
	return attempt+1 < p.attempts
}

// backoff sleeps the jittered delay for the given attempt, returning early
// with the context's error if ctx dies first. floor is the server's
// Retry-After demand (zero when absent): the jittered delay never sleeps
// less than it, so a daemon shedding load under admission control is obeyed
// rather than hammered on the jitter's low rolls.
func (p retryPolicy) backoff(ctx context.Context, attempt int, floor time.Duration) error {
	d := p.base << attempt
	if d <= 0 || d > maxBackoff {
		d = maxBackoff
	}
	// Full jitter: a herd of clients retrying a restarted daemon spreads
	// over [0, d) instead of stampeding in sync.
	d = time.Duration(rand.Int63n(int64(d) + 1))
	if floor > maxBackoff {
		floor = maxBackoff
	}
	if d < floor {
		d = floor
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// retryableStatus reports whether an HTTP status is worth retrying:
// overload and gateway statuses, not application errors.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryableTransportError reports whether a transport-level failure is
// worth retrying. Context cancellation and deadline expiry are the caller's
// decision taking effect, never retried.
func retryableTransportError(err error) bool {
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// parseRetryAfter reads a Retry-After header in either RFC 9110 form —
// delay seconds or an HTTP-date — as a backoff floor. Absent, malformed, or
// already-past values mean no floor.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// do sends the request built by build, retrying per the policy. build is
// called once per attempt so each try gets a fresh body reader.
func (c *Client) do(ctx context.Context, build func() (*http.Request, error)) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := c.http.Do(req)
		if err != nil {
			if retryableTransportError(err) && c.retry.shouldRetry(attempt) {
				if berr := c.retry.backoff(ctx, attempt, 0); berr == nil {
					continue
				}
			}
			return nil, err
		}
		if retryableStatus(resp.StatusCode) && c.retry.shouldRetry(attempt) {
			// A 429/503 may carry the server's Retry-After demand — the
			// admission gate's shed hint, possibly relayed through a fleet
			// proxy. It floors the backoff for this attempt.
			floor := parseRetryAfter(resp.Header.Get("Retry-After"))
			resp.Body.Close()
			if berr := c.retry.backoff(ctx, attempt, floor); berr == nil {
				continue
			}
			// ctx died in backoff; the last response is gone, report the ctx.
			return nil, ctx.Err()
		}
		return resp, nil
	}
}
