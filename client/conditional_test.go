// Tests for WithConditionalFetch: repeat syntheses revalidate with
// If-None-Match and resolve 304s from the client-side byte cache, and a
// server-side plan swap (a drift-triggered replan) transparently delivers
// the new plan on the next fetch.

package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"hap"
	"hap/internal/serve"
)

// statusRecorder captures the status code a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// newRecordingServer wraps the daemon so the test can observe response
// statuses — the only externally visible difference between a full response
// and a 304 revalidation.
func newRecordingServer(t *testing.T, cfg serve.Config) (*httptest.Server, func() []int) {
	t.Helper()
	s := serve.New(cfg)
	t.Cleanup(s.Close)
	h := s.Handler()
	var mu sync.Mutex
	var codes []int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(rec, r)
		mu.Lock()
		codes = append(codes, rec.code)
		mu.Unlock()
	}))
	t.Cleanup(srv.Close)
	return srv, func() []int {
		mu.Lock()
		defer mu.Unlock()
		return append([]int(nil), codes...)
	}
}

func TestClientConditionalFetch(t *testing.T) {
	srv, codes := newRecordingServer(t, serve.Config{})
	c := testCluster()
	cl := New(srv.URL, WithConditionalFetch())

	g := testGraph(t)
	plan1, err := cl.Synthesize(context.Background(), g, c, Options{})
	if err != nil {
		t.Fatalf("first Synthesize: %v", err)
	}
	if err := hap.Verify(plan1, c.M(), 5); err != nil {
		t.Fatalf("first plan fails verification: %v", err)
	}

	// Repeat: the client revalidates, the server answers 304, and the plan
	// still comes back fully usable — decoded from the client's byte cache.
	plan2, err := cl.Synthesize(context.Background(), g, c, Options{})
	if err != nil {
		t.Fatalf("repeat Synthesize: %v", err)
	}
	if err := hap.Verify(plan2, c.M(), 5); err != nil {
		t.Errorf("revalidated plan fails verification: %v", err)
	}
	got := codes()
	if len(got) != 2 || got[0] != http.StatusOK || got[1] != http.StatusNotModified {
		t.Fatalf("response statuses = %v, want [200 304]", got)
	}

	// A fresh graph value with the same fingerprint must also work: the
	// cache stores bytes, and plans re-bind per call.
	plan3, err := cl.Synthesize(context.Background(), testGraph(t), c, Options{})
	if err != nil {
		t.Fatalf("Synthesize with rebuilt graph: %v", err)
	}
	if err := hap.Verify(plan3, c.M(), 5); err != nil {
		t.Errorf("rebuilt-graph plan fails verification: %v", err)
	}
	if got := codes(); len(got) != 3 || got[2] != http.StatusNotModified {
		t.Fatalf("response statuses = %v, want a third 304", got)
	}
}

// TestClientConditionalFetchDisabledByDefault: without the option, repeat
// requests send no validator and always transfer the full plan.
func TestClientConditionalFetchDisabledByDefault(t *testing.T) {
	srv, codes := newRecordingServer(t, serve.Config{})
	c := testCluster()
	cl := New(srv.URL)
	g := testGraph(t)
	for i := 0; i < 2; i++ {
		if _, err := cl.Synthesize(context.Background(), g, c, Options{}); err != nil {
			t.Fatalf("Synthesize %d: %v", i, err)
		}
	}
	for i, code := range codes() {
		if code != http.StatusOK {
			t.Errorf("response %d: status %d, want 200 (no conditional fetch configured)", i, code)
		}
	}
}
