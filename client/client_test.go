package client

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hap"
	"hap/internal/cluster"
	"hap/internal/graph"
	"hap/internal/serve"
)

func testGraph(t *testing.T) *hap.Graph {
	t.Helper()
	g := hap.NewGraph()
	x := g.AddPlaceholder("x", 0, 64, 32)
	w1 := g.AddParameter("w1", 32, 48)
	w2 := g.AddParameter("w2", 48, 8)
	h := g.AddOp(hap.ReLU, g.AddOp(hap.MatMul, x, w1))
	g.SetLoss(g.AddOp(hap.Sum, g.AddScale(g.AddOp(hap.MatMul, h, w2), 1.0/64)))
	if err := hap.Backward(g); err != nil {
		t.Fatal(err)
	}
	return g
}

func testCluster() *hap.Cluster {
	return hap.PerGPU(
		hap.MachineSpec{Type: hap.V100, GPUs: 1},
		hap.MachineSpec{Type: hap.P100, GPUs: 1},
	)
}

func newServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.New(cfg)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

// The client negotiates binary by default; the plan it returns is bound to
// the caller's graph and verifies, exactly like a local synthesis.
func TestClientSynthesizeBinaryDefault(t *testing.T) {
	s, srv := newServer(t, serve.Config{})
	c := testCluster()
	cl := New(srv.URL)

	g := testGraph(t)
	plan, err := cl.Synthesize(context.Background(), g, c, Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if err := hap.Verify(plan, c.M(), 5); err != nil {
		t.Errorf("Verify: %v", err)
	}
	local, err := hap.NewPlanner(c).Plan(context.Background(), testGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Program.String() != local.Program.String() {
		t.Error("remote plan differs from local plan")
	}

	// Second call: a cache hit server-side, same plan client-side.
	again, err := cl.Synthesize(context.Background(), testGraph(t), c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if again.Program.String() != plan.Program.String() {
		t.Error("repeat synthesis returned a different plan")
	}
	if st := s.Stats(); st.Syntheses != 1 || st.CacheHits != 1 {
		t.Errorf("stats = %d syntheses / %d hits, want 1/1", st.Syntheses, st.CacheHits)
	}
}

// WithJSONPlans opts out of binary negotiation and must yield the same plan.
func TestClientJSONPlans(t *testing.T) {
	_, srv := newServer(t, serve.Config{})
	c := testCluster()
	binPlan, err := New(srv.URL).Synthesize(context.Background(), testGraph(t), c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	jsonPlan, err := New(srv.URL, WithJSONPlans()).Synthesize(context.Background(), testGraph(t), c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if binPlan.Program.String() != jsonPlan.Program.String() {
		t.Error("JSON and binary transports returned different plans")
	}
}

// SynthesizeBatch returns one verified plan per cluster, in order.
func TestClientSynthesizeBatch(t *testing.T) {
	_, srv := newServer(t, serve.Config{})
	clusters := []*hap.Cluster{
		testCluster(),
		hap.PerGPU(hap.MachineSpec{Type: hap.A100, GPUs: 1}, hap.MachineSpec{Type: hap.P100, GPUs: 1}),
	}
	g := testGraph(t)
	plans, err := New(srv.URL).SynthesizeBatch(context.Background(), g, clusters, Options{})
	if err != nil {
		t.Fatalf("SynthesizeBatch: %v", err)
	}
	if len(plans) != len(clusters) {
		t.Fatalf("%d plans for %d clusters", len(plans), len(clusters))
	}
	for i, p := range plans {
		if err := hap.Verify(p, clusters[i].M(), int64(7+i)); err != nil {
			t.Errorf("plan %d: %v", i, err)
		}
	}
}

// The batch call negotiates binary payloads by default; WithJSONPlans opts
// out; both decode to the same plans, and the server confirms which field
// carried them.
func TestClientSynthesizeBatchBinary(t *testing.T) {
	_, srv := newServer(t, serve.Config{})
	clusters := []*hap.Cluster{
		testCluster(),
		hap.PerGPU(hap.MachineSpec{Type: hap.A100, GPUs: 1}, hap.MachineSpec{Type: hap.P100, GPUs: 1}),
	}
	binPlans, err := New(srv.URL).SynthesizeBatch(context.Background(), testGraph(t), clusters, Options{})
	if err != nil {
		t.Fatalf("binary SynthesizeBatch: %v", err)
	}
	jsonPlans, err := New(srv.URL, WithJSONPlans()).SynthesizeBatch(context.Background(), testGraph(t), clusters, Options{})
	if err != nil {
		t.Fatalf("JSON SynthesizeBatch: %v", err)
	}
	for i := range clusters {
		if binPlans[i].Program.String() != jsonPlans[i].Program.String() {
			t.Errorf("plan %d: binary and JSON batch transports disagree", i)
		}
		if err := hap.Verify(binPlans[i], clusters[i].M(), int64(11+i)); err != nil {
			t.Errorf("plan %d: %v", i, err)
		}
	}
}

// Server errors surface as *APIError with the envelope's code.
func TestClientAPIError(t *testing.T) {
	_, srv := newServer(t, serve.Config{})
	// A graph with no trainable outputs synthesizes to nothing: 422.
	g := hap.NewGraph()
	g.AddPlaceholder("x", 0, 4, 4)
	_, err := New(srv.URL).Synthesize(context.Background(), g, testCluster(), Options{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v (%T), want *APIError", err, err)
	}
	if apiErr.Status != http.StatusUnprocessableEntity || apiErr.Code != "synthesis_failed" {
		t.Errorf("APIError = %+v, want 422/synthesis_failed", apiErr)
	}
	if !strings.Contains(apiErr.Error(), "synthesis_failed") {
		t.Errorf("Error() = %q, want the code included", apiErr.Error())
	}
}

// Cancelling the client context aborts the server-side synthesis: the
// stubbed planner blocks until its ctx dies and reports what it saw.
func TestClientContextCancelReachesServer(t *testing.T) {
	started := make(chan struct{})
	var mu sync.Mutex
	var serverCtxErr error
	_, srv := newServer(t, serve.Config{
		Synthesize: func(ctx context.Context, g *graph.Graph, c *cluster.Cluster, opt hap.Options) (*hap.Plan, error) {
			close(started)
			<-ctx.Done()
			mu.Lock()
			serverCtxErr = ctx.Err()
			mu.Unlock()
			return nil, ctx.Err()
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := New(srv.URL).Synthesize(ctx, testGraph(t), testCluster(), Options{})
		errc <- err
	}()
	<-started
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("client err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled client call did not return")
	}
	// The server-side context must have died too (the HTTP request context
	// follows the client connection).
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		err := serverCtxErr
		mu.Unlock()
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server-side synthesis context never died after client cancel")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Healthz reports the server's protocol version.
func TestClientHealthz(t *testing.T) {
	_, srv := newServer(t, serve.Config{})
	proto, err := New(srv.URL).Healthz(context.Background())
	if err != nil {
		t.Fatalf("Healthz: %v", err)
	}
	if proto != serve.ProtocolVersion {
		t.Errorf("protocol = %q, want %q", proto, serve.ProtocolVersion)
	}
}

// WithTracing stamps every request with a fresh trace ID the server adopts,
// and a failing call surfaces that ID in APIError.TraceID — the handle for
// GET /v1/debug/traces/<id> on the daemon.
func TestClientTracing(t *testing.T) {
	var mu sync.Mutex
	var sentIDs []string
	_, srv := newServer(t, serve.Config{})
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		sentIDs = append(sentIDs, r.Header.Get("X-HAP-Trace"))
		mu.Unlock()
		resp, err := http.Post(srv.URL+r.URL.Path, r.Header.Get("Content-Type"), r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	t.Cleanup(proxy.Close)

	cl := New(srv.URL, WithTracing())
	if _, err := cl.Synthesize(context.Background(), testGraph(t), testCluster(), Options{}); err != nil {
		t.Fatalf("Synthesize: %v", err)
	}

	// A failing request: the error carries the trace ID the server echoed.
	g := hap.NewGraph()
	g.AddPlaceholder("x", 0, 4, 4)
	_, err := cl.Synthesize(context.Background(), g, testCluster(), Options{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v (%T), want *APIError", err, err)
	}
	if len(apiErr.TraceID) != 16 {
		t.Fatalf("APIError.TraceID = %q, want a 16-hex trace ID", apiErr.TraceID)
	}
	if !strings.Contains(apiErr.Error(), apiErr.TraceID) {
		t.Errorf("Error() = %q, want the trace ID included", apiErr.Error())
	}

	// The header actually leaves the client, fresh per logical request.
	cl2 := New(proxy.URL, WithTracing())
	if _, err := cl2.Synthesize(context.Background(), testGraph(t), testCluster(), Options{}); err != nil {
		t.Fatalf("Synthesize via recording proxy: %v", err)
	}
	if _, err := cl2.Synthesize(context.Background(), testGraph(t), testCluster(), Options{}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sentIDs) != 2 {
		t.Fatalf("proxy saw %d requests, want 2", len(sentIDs))
	}
	for _, id := range sentIDs {
		if len(id) != 16 {
			t.Errorf("request trace header %q, want 16 hex chars", id)
		}
	}
	if sentIDs[0] == sentIDs[1] {
		t.Error("two logical requests shared one trace ID")
	}
}
