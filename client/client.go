// Package client is the Go client for the hap-serve plan daemon's wire
// protocol v2. It speaks the versioned /v1 endpoints, negotiates the compact
// binary plan encoding by default (a model-scale plan is ~20× smaller than
// its JSON form), decodes structured error envelopes, and honors the request
// context end-to-end — cancelling ctx abandons the HTTP request and,
// server-side, aborts the in-flight synthesis once no other client is
// waiting on it.
//
//	cl := client.New("http://planner:8080")
//	plan, err := cl.Synthesize(ctx, g, c, client.Options{})
//	plans, err := cl.SynthesizeBatch(ctx, g, []*hap.Cluster{c1, c2}, client.Options{})
//
// The returned plans are bound to the caller's graph and ready for
// hap.Verify / hap.Simulate, exactly as if hap.NewPlanner had produced them
// locally.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strings"
	"sync"

	"hap"
	"hap/internal/obs"
)

// binaryPlanContentType mirrors serve.BinaryPlanContentType (the serve
// package is internal; the media type is the wire contract).
const binaryPlanContentType = "application/x-hap-plan"

// Options mirrors the wire "options" object of the synthesize endpoints.
type Options struct {
	// Segments requests per-segment sharding ratios.
	Segments int `json:"segments,omitempty"`
	// MaxIterations bounds the Q↔B alternation (0 = server default).
	MaxIterations int `json:"max_iterations,omitempty"`
	// ExactSearch forces exact A* instead of the automatic choice.
	ExactSearch bool `json:"exact_search,omitempty"`
	// Optimize toggles the post-synthesis pass pipeline (nil = on).
	Optimize *bool `json:"optimize,omitempty"`
}

// APIError is a structured error envelope returned by a v1 endpoint.
type APIError struct {
	Status  int    // HTTP status
	Code    string // machine-readable error code
	Message string // human-readable detail
	// TraceID is the server-side request trace identifier (the X-HAP-Trace
	// response header), when the daemon runs with tracing on. Hand it to
	// GET /v1/debug/traces/<id> on the daemon to see the failed request's
	// full span breakdown. Empty when the server traced nothing.
	TraceID string
}

func (e *APIError) Error() string {
	if e.TraceID != "" {
		return fmt.Sprintf("hap server: %s (%s, HTTP %d, trace %s)", e.Message, e.Code, e.Status, e.TraceID)
	}
	return fmt.Sprintf("hap server: %s (%s, HTTP %d)", e.Message, e.Code, e.Status)
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the http.Client used for requests.
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.http = h } }

// WithJSONPlans disables binary content negotiation: plans travel as JSON.
// Useful for debugging with a packet capture, never required.
func WithJSONPlans() Option { return func(c *Client) { c.jsonPlans = true } }

// WithTracing stamps every request with a fresh client-generated trace ID
// (the X-HAP-Trace header). A tracing-enabled daemon adopts the ID for its
// request trace, so a slow or failed call can be looked up afterwards at
// GET /v1/debug/traces/<id> — the ID also comes back in APIError.TraceID.
// Retries of one logical request share one ID: the server's ring then shows
// every attempt under the identifier the caller logged.
func WithTracing() Option { return func(c *Client) { c.tracing = true } }

// WithConditionalFetch makes Synthesize remember each response's entity tag
// and body, and revalidate repeat requests with If-None-Match: the server
// answers an unchanged plan with 304 Not Modified and no body, and the
// client re-decodes its cached bytes. A trainer polling the daemon for a
// drift-triggered replan pays header bytes per poll instead of a full plan
// transfer — until the plan actually changes.
func WithConditionalFetch() Option {
	return func(c *Client) { c.cond = &condCache{entries: map[uint64]condEntry{}} }
}

// Client talks to one hap-serve daemon. Safe for concurrent use.
type Client struct {
	base      string
	http      *http.Client
	jsonPlans bool
	tracing   bool
	retry     retryPolicy
	cond      *condCache // nil = conditional fetch disabled
}

// condEntry is one remembered plan response: the tag the server issued and
// the exact body bytes it tagged, in whichever encoding was negotiated.
// Bodies are cached as bytes, not decoded plans, because a decoded plan is
// bound to the caller's graph value — re-decoding per call keeps the cache
// valid across distinct (but fingerprint-equal) graph instances.
type condEntry struct {
	etag   string
	body   []byte
	binary bool
}

// condCache maps a request's identity (path + marshalled body + negotiated
// accept) to its last successful response. Safe for concurrent use.
type condCache struct {
	mu      sync.Mutex
	entries map[uint64]condEntry
}

func condKey(path string, body []byte, accept string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, path)
	h.Write([]byte{0})
	h.Write(body)
	h.Write([]byte{0})
	io.WriteString(h, accept)
	return h.Sum64()
}

func (cc *condCache) get(key uint64) (condEntry, bool) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	e, ok := cc.entries[key]
	return e, ok
}

func (cc *condCache) put(key uint64, e condEntry) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.entries[key] = e
}

// New returns a client for the daemon at base (e.g. "http://host:8080").
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), http: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// request is the single-synthesize wire body.
type request struct {
	Graph   json.RawMessage `json:"graph"`
	Cluster json.RawMessage `json:"cluster"`
	Options Options         `json:"options"`
}

// batchRequest is the batch wire body.
type batchRequest struct {
	Graph    json.RawMessage   `json:"graph"`
	Clusters []json.RawMessage `json:"clusters"`
	Options  Options           `json:"options"`
}

// batchResponse mirrors serve.BatchResponse. Each entry carries its plan in
// exactly one of Plan (JSON) or Bin (base64 binary, when the request
// negotiated the compact encoding).
type batchResponse struct {
	Plans []struct {
		Cache string          `json:"cache"`
		Plan  json.RawMessage `json:"plan"`
		Bin   []byte          `json:"bin"`
	} `json:"plans"`
}

func encodeGraph(g *hap.Graph) (json.RawMessage, error) {
	var b bytes.Buffer
	if err := g.Encode(&b); err != nil {
		return nil, fmt.Errorf("client: encoding graph: %w", err)
	}
	return b.Bytes(), nil
}

func encodeCluster(c *hap.Cluster) (json.RawMessage, error) {
	var b bytes.Buffer
	if err := c.Encode(&b); err != nil {
		return nil, fmt.Errorf("client: encoding cluster: %w", err)
	}
	return b.Bytes(), nil
}

// post sends one JSON body and returns the raw response, retrying transient
// failures when WithRetry is configured (the body is re-sent from the
// marshalled bytes, so every attempt is identical). Non-2xx responses are
// decoded into *APIError (with a plain-text fallback for proxies and the
// legacy endpoint).
func (c *Client) post(ctx context.Context, path string, body any, accept string) (*http.Response, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	return c.postData(ctx, path, data, accept, "")
}

// postData sends already-marshalled bytes. A non-empty ifNoneMatch makes the
// request conditional; a 304 Not Modified is then a success the caller
// resolves from its cache, not an error.
func (c *Client) postData(ctx context.Context, path string, data []byte, accept, ifNoneMatch string) (*http.Response, error) {
	traceID := ""
	if c.tracing {
		traceID = obs.NewTraceID()
	}
	resp, err := c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("client: %w", err)
		}
		req.Header.Set("Content-Type", "application/json")
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		if ifNoneMatch != "" {
			req.Header.Set("If-None-Match", ifNoneMatch)
		}
		if traceID != "" {
			req.Header.Set(obs.TraceHeader, traceID)
		}
		return req, nil
	})
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	if resp.StatusCode == http.StatusNotModified && ifNoneMatch != "" {
		return resp, nil
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		var env struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		}
		if err := json.Unmarshal(raw, &env); err != nil || env.Code == "" {
			env.Code = "error"
			env.Message = strings.TrimSpace(string(raw))
		}
		// The trace ID comes from the response when the server traced the
		// request (set even on errors), falling back to the ID we sent.
		tid := resp.Header.Get(obs.TraceHeader)
		if tid == "" {
			tid = traceID
		}
		return nil, &APIError{Status: resp.StatusCode, Code: env.Code, Message: env.Message, TraceID: tid}
	}
	return resp, nil
}

// Synthesize plans g on cl via the server, returning the plan bound to g.
// By default the binary encoding is negotiated; the server's JSON answer is
// accepted either way, so the client works against any protocol version.
func (c *Client) Synthesize(ctx context.Context, g *hap.Graph, cl *hap.Cluster, opt Options) (*hap.Plan, error) {
	gb, err := encodeGraph(g)
	if err != nil {
		return nil, err
	}
	cb, err := encodeCluster(cl)
	if err != nil {
		return nil, err
	}
	accept := binaryPlanContentType + ", application/json"
	if c.jsonPlans {
		accept = "application/json"
	}
	data, err := json.Marshal(request{Graph: gb, Cluster: cb, Options: opt})
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	const path = "/v1/synthesize"
	// With conditional fetch on, revalidate the remembered response instead
	// of re-downloading it: send its tag, and resolve a 304 from the cache.
	var key uint64
	var cached condEntry
	ifNoneMatch := ""
	if c.cond != nil {
		key = condKey(path, data, accept)
		if e, ok := c.cond.get(key); ok {
			cached, ifNoneMatch = e, e.etag
		}
	}
	resp, err := c.postData(ctx, path, data, accept, ifNoneMatch)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified {
		io.Copy(io.Discard, resp.Body)
		return decodePlan(cached.body, cached.binary, g)
	}
	binary := strings.HasPrefix(resp.Header.Get("Content-Type"), binaryPlanContentType)
	if c.cond == nil {
		return decodePlanStream(resp.Body, binary, g)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: reading plan: %w", err)
	}
	if etag := resp.Header.Get("ETag"); etag != "" {
		c.cond.put(key, condEntry{etag: etag, body: raw, binary: binary})
	}
	return decodePlan(raw, binary, g)
}

// decodePlan decodes plan bytes in the negotiated encoding, binding to g.
func decodePlan(body []byte, binary bool, g *hap.Graph) (*hap.Plan, error) {
	return decodePlanStream(bytes.NewReader(body), binary, g)
}

// decodePlanStream decodes a plan from r in the negotiated encoding.
func decodePlanStream(r io.Reader, binary bool, g *hap.Graph) (*hap.Plan, error) {
	if binary {
		plan, err := hap.ReadProgramBinary(r, g)
		if err != nil {
			return nil, fmt.Errorf("client: decoding binary plan: %w", err)
		}
		return plan, nil
	}
	plan, err := hap.ReadProgram(r, g)
	if err != nil {
		return nil, fmt.Errorf("client: decoding plan: %w", err)
	}
	return plan, nil
}

// SynthesizeBatch plans g against every cluster in one request — the server
// builds the graph theory once for the whole batch. Plans come back in
// cluster order, each bound to g. The response envelope is JSON; by default
// the per-result plan payloads are negotiated binary (base64 in the
// envelope), with each result decoded by whichever field the server filled —
// so the client works against servers from before the binary batch form.
func (c *Client) SynthesizeBatch(ctx context.Context, g *hap.Graph, clusters []*hap.Cluster, opt Options) ([]*hap.Plan, error) {
	if len(clusters) == 0 {
		return nil, fmt.Errorf("client: no clusters to synthesize for")
	}
	gb, err := encodeGraph(g)
	if err != nil {
		return nil, err
	}
	raws := make([]json.RawMessage, len(clusters))
	for i, cl := range clusters {
		if raws[i], err = encodeCluster(cl); err != nil {
			return nil, err
		}
	}
	accept := binaryPlanContentType + ", application/json"
	if c.jsonPlans {
		accept = "application/json"
	}
	resp, err := c.post(ctx, "/v1/synthesize/batch", batchRequest{Graph: gb, Clusters: raws, Options: opt}, accept)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var br batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, fmt.Errorf("client: decoding batch response: %w", err)
	}
	if len(br.Plans) != len(clusters) {
		return nil, fmt.Errorf("client: server returned %d plans for %d clusters", len(br.Plans), len(clusters))
	}
	plans := make([]*hap.Plan, len(br.Plans))
	for i, bp := range br.Plans {
		var plan *hap.Plan
		if len(bp.Bin) > 0 {
			plan, err = hap.ReadProgramBinary(bytes.NewReader(bp.Bin), g)
		} else {
			plan, err = hap.ReadProgram(bytes.NewReader(bp.Plan), g)
		}
		if err != nil {
			return nil, fmt.Errorf("client: decoding plan %d: %w", i, err)
		}
		plans[i] = plan
	}
	return plans, nil
}

// Healthz probes the daemon and returns its reported protocol version.
func (c *Client) Healthz(ctx context.Context) (string, error) {
	resp, err := c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
		if err != nil {
			return nil, fmt.Errorf("client: %w", err)
		}
		return req, nil
	})
	if err != nil {
		return "", fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("client: healthz returned HTTP %d", resp.StatusCode)
	}
	var h struct {
		Status   string `json:"status"`
		Protocol string `json:"protocol"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return "", fmt.Errorf("client: decoding healthz: %w", err)
	}
	if h.Status != "ok" {
		return h.Protocol, fmt.Errorf("client: server reports status %q", h.Status)
	}
	return h.Protocol, nil
}
