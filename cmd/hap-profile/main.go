// Command hap-profile prints device capabilities and the fitted
// latency/bandwidth models of every collective on a cluster — the
// counterpart of the artifact's profiler.py.
package main

import (
	"flag"
	"fmt"
	"log"

	"hap/internal/cluster"
	"hap/internal/collective"
)

func main() {
	clusterName := flag.String("cluster", "hetero", "cluster: hetero, homo, a100p100")
	k := flag.Int("k", 8, "GPUs per machine")
	flag.Parse()

	var c *cluster.Cluster
	switch *clusterName {
	case "hetero":
		c = cluster.PaperHeterogeneous(*k)
	case "homo":
		c = cluster.PaperHomogeneous(*k)
	case "a100p100":
		c = cluster.PaperA100P100()
	default:
		log.Fatalf("unknown cluster %q", *clusterName)
	}
	fmt.Print(c)

	fmt.Println("\ndevice flops (achievable):")
	for _, d := range c.Devices {
		fmt.Printf("  %-4s ×%d: %8.2f TFLOPS\n", d.Type.Name, d.GPUs, d.Flops()/1e12)
	}

	fmt.Println("\nfitted collective models (time ≈ α + maxShardBytes/β):")
	for _, kd := range []collective.Kind{
		collective.AllReduce, collective.PaddedAllGather,
		collective.GroupedBroadcast, collective.ReduceScatter, collective.AllToAll,
	} {
		lm := collective.Fit(c, kd)
		bw := 0.0
		if lm.InvBW > 0 {
			bw = 1 / lm.InvBW / 1e9
		}
		fmt.Printf("  %-18s α = %8.1f µs   β = %6.2f GB/s\n", kd, lm.Alpha*1e6, bw)
	}
}
