// Command hap-loadgen drives load against a hap-serve daemon (or fleet) and
// reports latency, cache-hit, and error statistics, optionally gating the
// run on SLO assertions.
//
// Usage:
//
//	hap-loadgen -target http://host:8080 [-mode closed|open]
//	            [-concurrency 8] [-rate 100] [-max-outstanding 1024]
//	            [-duration 5s] [-requests 0] [-seed 1]
//	            [-graphs 8] [-clusters 2] [-zipf 1.2]
//	            [-mix single=30,single_bin=25,batch=10,batch_bin=10,cond=20,cancel=5]
//	            [-warmup] [-slo "warm.p99<5ms,errors=0"] [-report out.json]
//
// The workload is a deterministic seeded corpus of random training graphs ×
// cluster shapes with zipf-distributed popularity, covering the daemon's
// real surface: single and batch synthesis, JSON and binary content
// negotiation, conditional fetch (If-None-Match), and mid-flight
// cancellation. Two drivers: closed loop (fixed concurrency) and open loop
// (Poisson arrivals at -rate, latency measured from the intended send time
// so coordinated omission cannot hide server queueing).
//
// -slo takes comma-separated assertions over the report (see internal/load:
// "warm.p99<5ms,errors=0,hit_ratio>=0.9"); any violation makes the process
// exit 1 after printing the verdicts — the CI gate. -report writes the full
// machine-readable JSON report; benchcheck -serve-baseline re-evaluates
// committed gates against the same file.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hap/internal/load"
)

func main() {
	target := flag.String("target", "http://127.0.0.1:8080", "daemon base URL")
	mode := flag.String("mode", "closed", "driver: closed (fixed concurrency) or open (Poisson arrivals)")
	concurrency := flag.Int("concurrency", 8, "closed-loop worker count")
	rate := flag.Float64("rate", 100, "open-loop target arrival rate, requests/second")
	maxOutstanding := flag.Int("max-outstanding", 1024, "open-loop cap on outstanding requests (queueing past it is charged to latency)")
	duration := flag.Duration("duration", 5*time.Second, "run length (ignored when -requests > 0)")
	requests := flag.Int("requests", 0, "stop after this many requests instead of -duration (0 = use -duration)")
	seed := flag.Int64("seed", 1, "workload seed; same seed = same request sequence")
	graphs := flag.Int("graphs", 8, "corpus graphs")
	clusters := flag.Int("clusters", 2, fmt.Sprintf("corpus clusters per graph (1..%d)", load.MaxClusters))
	zipf := flag.Float64("zipf", 1.2, "popularity skew (> 1; larger = hotter head)")
	mixFlag := flag.String("mix", "", "request class weights, e.g. single=40,batch=10,cond=20 (empty = default mix)")
	warmup := flag.Bool("warmup", false, "serially synthesize the whole corpus before measuring (warm-cache runs)")
	slo := flag.String("slo", "", `SLO assertions over the report, e.g. "warm.p99<5ms,errors=0"; violations exit 1`)
	report := flag.String("report", "", "write the JSON report to this file (\"-\" = stdout)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
	flag.Parse()

	fatal := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "hap-loadgen: "+format+"\n", args...)
		os.Exit(2)
	}

	sloChecks, err := load.ParseSLO(*slo)
	if err != nil {
		fatal("%v", err)
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		fatal("%v", err)
	}
	corpus, err := load.NewCorpus(*graphs, *clusters, *seed)
	if err != nil {
		fatal("%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	hc := &http.Client{Timeout: *timeout}
	if *warmup {
		start := time.Now()
		n, err := load.Warmup(ctx, strings.TrimRight(*target, "/"), nil, corpus)
		if err != nil {
			fatal("warmup: %v", err)
		}
		fmt.Fprintf(os.Stderr, "hap-loadgen: warmed %d corpus plans in %.1fs\n", n, time.Since(start).Seconds())
	}

	opts := load.Options{
		Target:         strings.TrimRight(*target, "/"),
		Corpus:         corpus,
		Mix:            mix,
		ZipfS:          *zipf,
		Seed:           *seed,
		Concurrency:    *concurrency,
		Rate:           *rate,
		MaxOutstanding: *maxOutstanding,
		Duration:       *duration,
		Requests:       *requests,
		Client:         hc,
	}
	switch *mode {
	case "closed":
	case "open":
		opts.OpenLoop = true
	default:
		fatal("unknown -mode %q (closed or open)", *mode)
	}

	rep, err := load.Run(ctx, opts)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Print(rep.Text())

	if *report != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal("encoding report: %v", err)
		}
		data = append(data, '\n')
		if *report == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*report, data, 0o644); err != nil {
			fatal("writing report: %v", err)
		}
	}

	if len(sloChecks.Assertions) > 0 {
		results, ok := sloChecks.Check(rep)
		fmt.Println("SLO:")
		for _, res := range results {
			fmt.Println("  " + res.Detail)
		}
		if !ok {
			os.Exit(1)
		}
	}
}

// parseMix reads "class=weight,..." using the report class names. An empty
// string keeps the default mix.
func parseMix(s string) (load.Mix, error) {
	var m load.Mix
	if s == "" {
		return m, nil
	}
	fields := map[string]*int{
		"single":     &m.Single,
		"single_bin": &m.SingleBinary,
		"batch":      &m.Batch,
		"batch_bin":  &m.BatchBinary,
		"cond":       &m.Conditional,
		"cancel":     &m.Cancel,
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("bad -mix entry %q (want class=weight)", part)
		}
		p, known := fields[strings.TrimSpace(name)]
		if !known {
			return m, fmt.Errorf("unknown -mix class %q", name)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad -mix weight in %q", part)
		}
		*p = w
	}
	if m == (load.Mix{}) {
		return m, fmt.Errorf("-mix %q leaves every class at zero weight", s)
	}
	return m, nil
}
