// Command hap-serve runs the HAP plan-cache daemon: an HTTP service that
// synthesizes distributed plans for (graph, cluster) requests and memoizes
// them in a content-addressed LRU cache, so a fleet of trainers asking for
// the same model on the same cluster pays for one synthesis.
//
// Usage:
//
//	hap-serve [-addr :8080] [-cache-entries 1024] [-cache-bytes 268435456]
//	          [-synth-budget 60s] [-cache-dir /var/lib/hap/plans] [-cache-ttl 0]
//	          [-self URL] [-peers URL,URL] [-peers-file PATH] [-peers-poll 10s]
//	          [-replicas 2] [-probe-interval 5s] [-warmup]
//	          [-drift-threshold 0.1] [-telemetry-window 5m]
//	          [-telemetry-file PATH] [-telemetry-poll 5s]
//
// Endpoints (wire protocol v2): POST /v1/synthesize, POST
// /v1/synthesize/batch, the deprecated legacy POST /synthesize, GET/POST
// /v1/fleet/entries, GET /healthz, GET /stats, GET /metrics (Prometheus
// text format). With -cache-dir, cached plans are written through to disk
// and restored on the next boot (oldest first, preserving LRU order);
// -cache-ttl expires aged plans so the directory cannot grow unbounded.
//
// Fleet mode: -self names this node's advertise URL and -peers/-peers-file
// the other members. Request fingerprints are consistent-hash routed to an
// owner node, misses proxy to the owner (so a fleet-wide thundering herd
// synthesizes exactly once), filled entries replicate to -replicas nodes,
// and a booting node warms its cache from a peer. The peers file is
// re-read on SIGHUP and polled every -peers-poll. See internal/serve and
// README "Running a fleet".
//
// Live telemetry: POST /v1/telemetry ingests probe measurements (per-link
// bandwidth/latency, per-device achieved TFLOPS) against the spec cluster
// they measure; when the smoothed live view drifts past -drift-threshold,
// cached plans for that cluster replan in the background and swap in only
// after verification — clients keep getting the old plan (same ETag, 304 on
// conditional fetch) until the replacement is ready. -telemetry-file polls
// the same report format from disk for probe agents that write files
// instead of speaking HTTP. See README "Live telemetry & replanning".
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hap/internal/fleet"
	"hap/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	entries := flag.Int("cache-entries", serve.DefaultMaxCacheEntries, "max cached plans")
	bytes := flag.Int64("cache-bytes", serve.DefaultMaxCacheBytes, "max total bytes of cached plans")
	budget := flag.Duration("synth-budget", serve.DefaultSynthTimeBudget,
		"wall-clock budget per request's synthesis, covering the whole optimization loop (0 = unlimited)")
	workers := flag.Int("synth-workers", 0,
		"beam-search worker goroutines per synthesis (0 = GOMAXPROCS); plans are byte-identical for any value")
	cacheDir := flag.String("cache-dir", "",
		"write cached plans through to this directory and restore them on boot (empty = memory only)")
	cacheTTL := flag.Duration("cache-ttl", 0,
		"expire cached plans (and their persisted files) older than this age (0 = never)")
	self := flag.String("self", "",
		"this node's advertise URL for fleet mode, e.g. http://10.0.0.1:8080 (empty = standalone)")
	peers := flag.String("peers", "",
		"comma-separated peer URLs forming the fleet (combined with -peers-file)")
	peersFile := flag.String("peers-file", "",
		"file with one peer URL per line (# comments); re-read on SIGHUP and by -peers-poll")
	peersPoll := flag.Duration("peers-poll", 10*time.Second,
		"poll the peers file for changes at this interval (0 = SIGHUP only)")
	replicas := flag.Int("replicas", fleet.DefaultReplicas,
		"total copies of each cached plan across the fleet, owner included")
	probeInterval := flag.Duration("probe-interval", 5*time.Second,
		"probe peer /healthz at this interval (0 = mark-down on proxy failure only)")
	warmup := flag.Bool("warmup", true,
		"on boot, stream cached entries from the first reachable peer (fleet mode only)")
	driftThreshold := flag.Float64("drift-threshold", serve.DefaultDriftThreshold,
		"cluster drift past which cached plans replan in the background (negative = disable replanning)")
	telemetryWindow := flag.Duration("telemetry-window", 0,
		"staleness horizon of probe estimates; older estimates revert to the spec (0 = 5m)")
	telemetryFile := flag.String("telemetry-file", "",
		"poll telemetry reports (one JSON report or an array) from this file, like POST /v1/telemetry")
	telemetryPoll := flag.Duration("telemetry-poll", 5*time.Second,
		"poll the telemetry file for size/mtime changes at this interval")
	flag.Parse()

	synthBudget := *budget
	if synthBudget == 0 {
		synthBudget = -1 // Config treats 0 as "use default"; negative = unlimited
	}

	var fl *fleet.Fleet
	if *self != "" {
		var static []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				static = append(static, p)
			}
		}
		var err error
		fl, err = fleet.New(fleet.Config{
			Self:      *self,
			Peers:     static,
			PeersFile: *peersFile,
			Replicas:  *replicas,
		})
		if err != nil {
			log.Fatalf("hap-serve: %v", err)
		}
		fl.Start(*peersPoll, *probeInterval)
		defer fl.Stop()
		log.Printf("hap-serve: fleet mode: self=%s members=%v replicas=%d", fl.Self(), fl.Members.Peers(), fl.ReplicaCount())
	} else if *peers != "" || *peersFile != "" {
		log.Fatal("hap-serve: -peers/-peers-file require -self (this node's advertise URL)")
	}

	s := serve.New(serve.Config{
		MaxCacheEntries: *entries,
		MaxCacheBytes:   *bytes,
		SynthTimeBudget: synthBudget,
		SynthWorkers:    *workers,
		CacheDir:        *cacheDir,
		CacheTTL:        *cacheTTL,
		DriftThreshold:  *driftThreshold,
		TelemetryWindow: *telemetryWindow,
		Fleet:           fl,
	})
	defer s.Close()
	if *cacheDir != "" {
		log.Printf("hap-serve: restored %d cached plans from %s", s.Stats().CacheRestored, *cacheDir)
	}
	if *telemetryFile != "" {
		stop := s.StartTelemetryFile(*telemetryFile, *telemetryPoll)
		defer stop()
		log.Printf("hap-serve: polling telemetry from %s every %s", *telemetryFile, *telemetryPoll)
	}

	// Warm up from a peer before accepting traffic: every entry streamed in
	// is a synthesis this node will not re-pay. Best-effort — a partial
	// transfer keeps what arrived, a fleet of one just starts cold.
	if fl != nil && *warmup {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		n, err := s.WarmFrom(ctx, fl.Members.Peers())
		cancel()
		switch {
		case err != nil && n == 0:
			log.Printf("hap-serve: warm-up: no peer reachable (%v); starting cold", err)
		case err != nil:
			log.Printf("hap-serve: warm-up: %d plans (stream interrupted: %v)", n, err)
		default:
			log.Printf("hap-serve: warm-up: %d plans", n)
		}
	}

	// SIGHUP re-reads the peers file; SIGINT/SIGTERM shut down gracefully.
	if fl != nil {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				changed, err := fl.Members.Reload()
				switch {
				case err != nil:
					log.Printf("hap-serve: SIGHUP reload: %v", err)
				case changed:
					log.Printf("hap-serve: SIGHUP reload: members now %v", fl.Members.Peers())
				default:
					log.Print("hap-serve: SIGHUP reload: membership unchanged")
				}
			}
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("hap-serve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("hap-serve: shutdown: %v", err)
		}
	}()

	log.Printf("hap-serve: listening on %s (cache: %d entries, %d bytes)", *addr, *entries, *bytes)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}
