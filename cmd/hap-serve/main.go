// Command hap-serve runs the HAP plan-cache daemon: an HTTP service that
// synthesizes distributed plans for (graph, cluster) requests and memoizes
// them in a content-addressed LRU cache, so a fleet of trainers asking for
// the same model on the same cluster pays for one synthesis.
//
// Usage:
//
//	hap-serve [-addr :8080] [-cache-entries 1024] [-cache-bytes 268435456]
//	          [-synth-budget 60s] [-cache-dir /var/lib/hap/plans]
//
// Endpoints (wire protocol v2): POST /v1/synthesize, POST
// /v1/synthesize/batch, the deprecated legacy POST /synthesize, GET
// /healthz, GET /stats, GET /metrics (Prometheus text format). With
// -cache-dir, cached plans are written through to disk and restored on the
// next boot. See internal/serve for the wire format and README for a worked
// example.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hap/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	entries := flag.Int("cache-entries", serve.DefaultMaxCacheEntries, "max cached plans")
	bytes := flag.Int64("cache-bytes", serve.DefaultMaxCacheBytes, "max total bytes of cached plans")
	budget := flag.Duration("synth-budget", serve.DefaultSynthTimeBudget,
		"wall-clock budget per request's synthesis, covering the whole optimization loop (0 = unlimited)")
	workers := flag.Int("synth-workers", 0,
		"beam-search worker goroutines per synthesis (0 = GOMAXPROCS); plans are byte-identical for any value")
	cacheDir := flag.String("cache-dir", "",
		"write cached plans through to this directory and restore them on boot (empty = memory only)")
	flag.Parse()

	synthBudget := *budget
	if synthBudget == 0 {
		synthBudget = -1 // Config treats 0 as "use default"; negative = unlimited
	}
	s := serve.New(serve.Config{MaxCacheEntries: *entries, MaxCacheBytes: *bytes, SynthTimeBudget: synthBudget, SynthWorkers: *workers, CacheDir: *cacheDir})
	if *cacheDir != "" {
		log.Printf("hap-serve: restored %d cached plans from %s", s.Stats().CacheRestored, *cacheDir)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("hap-serve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("hap-serve: shutdown: %v", err)
		}
	}()

	log.Printf("hap-serve: listening on %s (cache: %d entries, %d bytes)", *addr, *entries, *bytes)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}
