// Command hap-serve runs the HAP plan-cache daemon: an HTTP service that
// synthesizes distributed plans for (graph, cluster) requests and memoizes
// them in a content-addressed LRU cache, so a fleet of trainers asking for
// the same model on the same cluster pays for one synthesis.
//
// Usage:
//
//	hap-serve [-addr :8080] [-cache-entries 1024] [-cache-bytes 268435456]
//	          [-synth-budget 60s] [-cache-dir /var/lib/hap/plans] [-cache-ttl 0]
//	          [-self URL] [-peers URL,URL] [-peers-file PATH] [-peers-poll 10s]
//	          [-replicas 2] [-probe-interval 5s] [-warmup]
//	          [-drift-threshold 0.1] [-telemetry-window 5m]
//	          [-telemetry-file PATH] [-telemetry-poll 5s]
//	          [-log-format text] [-trace-ring 256] [-trace-slow 0]
//	          [-debug-addr ""]
//
// Endpoints (wire protocol v2): POST /v1/synthesize, POST
// /v1/synthesize/batch, the deprecated legacy POST /synthesize, GET/POST
// /v1/fleet/entries, GET /healthz, GET /stats, GET /metrics (Prometheus
// text format), GET /v1/debug/traces[/<id>[?format=chrome]]. With
// -cache-dir, cached plans are written through to disk and restored on the
// next boot (oldest first, preserving LRU order); -cache-ttl expires aged
// plans so the directory cannot grow unbounded.
//
// Fleet mode: -self names this node's advertise URL and -peers/-peers-file
// the other members. Request fingerprints are consistent-hash routed to an
// owner node, misses proxy to the owner (so a fleet-wide thundering herd
// synthesizes exactly once), filled entries replicate to -replicas nodes,
// and a booting node warms its cache from a peer. The peers file is
// re-read on SIGHUP and polled every -peers-poll. See internal/serve and
// README "Running a fleet".
//
// Live telemetry: POST /v1/telemetry ingests probe measurements (per-link
// bandwidth/latency, per-device achieved TFLOPS) against the spec cluster
// they measure; when the smoothed live view drifts past -drift-threshold,
// cached plans for that cluster replan in the background and swap in only
// after verification — clients keep getting the old plan (same ETag, 304 on
// conditional fetch) until the replacement is ready. -telemetry-file polls
// the same report format from disk for probe agents that write files
// instead of speaking HTTP. See README "Live telemetry & replanning".
//
// Observability: every request is traced end-to-end (decode, cache lookup,
// fleet proxy hop, synthesis phases, encode, replication) and the last
// -trace-ring traces are browsable at /v1/debug/traces — as JSON or, with
// ?format=chrome, a file chrome://tracing opens directly. -trace-slow logs
// a structured breakdown of requests slower than the threshold (negative =
// every request). Logs are structured (log/slog); -log-format json emits
// one JSON object per line. -debug-addr serves net/http/pprof and
// /debug/vars on a separate listener, off the request path. See README
// "Debugging a slow request".
package main

import (
	"context"
	"errors"
	_ "expvar" // registers /debug/vars on the default mux (debug listener)
	"flag"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux (debug listener)
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hap/internal/fleet"
	"hap/internal/obs"
	"hap/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	entries := flag.Int("cache-entries", serve.DefaultMaxCacheEntries, "max cached plans")
	bytes := flag.Int64("cache-bytes", serve.DefaultMaxCacheBytes, "max total bytes of cached plans")
	budget := flag.Duration("synth-budget", serve.DefaultSynthTimeBudget,
		"wall-clock budget per request's synthesis, covering the whole optimization loop (0 = unlimited)")
	maxInflight := flag.Int("max-inflight-synth", 0,
		"max concurrent local syntheses; excess cache misses are shed with 429 + Retry-After (0 = unlimited)")
	shedRetryAfter := flag.Duration("shed-retry-after", serve.DefaultShedRetryAfter,
		"Retry-After hint on admission-shed 429 responses")
	workers := flag.Int("synth-workers", 0,
		"beam-search worker goroutines per synthesis (0 = GOMAXPROCS); plans are byte-identical for any value")
	cacheDir := flag.String("cache-dir", "",
		"write cached plans through to this directory and restore them on boot (empty = memory only)")
	cacheTTL := flag.Duration("cache-ttl", 0,
		"expire cached plans (and their persisted files) older than this age (0 = never)")
	self := flag.String("self", "",
		"this node's advertise URL for fleet mode, e.g. http://10.0.0.1:8080 (empty = standalone)")
	peers := flag.String("peers", "",
		"comma-separated peer URLs forming the fleet (combined with -peers-file)")
	peersFile := flag.String("peers-file", "",
		"file with one peer URL per line (# comments); re-read on SIGHUP and by -peers-poll")
	peersPoll := flag.Duration("peers-poll", 10*time.Second,
		"poll the peers file for changes at this interval (0 = SIGHUP only)")
	replicas := flag.Int("replicas", fleet.DefaultReplicas,
		"total copies of each cached plan across the fleet, owner included")
	probeInterval := flag.Duration("probe-interval", 5*time.Second,
		"probe peer /healthz at this interval (0 = mark-down on proxy failure only)")
	warmup := flag.Bool("warmup", true,
		"on boot, stream cached entries from the first reachable peer (fleet mode only)")
	driftThreshold := flag.Float64("drift-threshold", serve.DefaultDriftThreshold,
		"cluster drift past which cached plans replan in the background (negative = disable replanning)")
	noSeed := flag.Bool("no-seed", false,
		"disable incremental synthesis: misses synthesize cold instead of seeding from the nearest similar cached plan")
	telemetryWindow := flag.Duration("telemetry-window", 0,
		"staleness horizon of probe estimates; older estimates revert to the spec (0 = 5m)")
	telemetryFile := flag.String("telemetry-file", "",
		"poll telemetry reports (one JSON report or an array) from this file, like POST /v1/telemetry")
	telemetryPoll := flag.Duration("telemetry-poll", 5*time.Second,
		"poll the telemetry file for size/mtime changes at this interval")
	logFormat := flag.String("log-format", "text",
		"log line format: text or json (one object per line, machine-parseable)")
	traceRing := flag.Int("trace-ring", serve.DefaultTraceRing,
		"completed request traces retained for GET /v1/debug/traces (0 = disable tracing)")
	traceSlow := flag.Duration("trace-slow", 0,
		"log a structured span breakdown of requests slower than this (0 = off, negative = every request)")
	debugAddr := flag.String("debug-addr", "",
		"serve net/http/pprof and /debug/vars on this address, off the main listener (empty = off)")
	flag.Parse()

	logger := obs.NewLogger(*logFormat, os.Stderr)
	slog.SetDefault(logger)

	synthBudget := *budget
	if synthBudget == 0 {
		synthBudget = -1 // Config treats 0 as "use default"; negative = unlimited
	}
	ring := *traceRing
	if ring == 0 {
		ring = -1 // Config treats 0 as "use default"; negative = tracing off
	}

	var fl *fleet.Fleet
	if *self != "" {
		var static []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				static = append(static, p)
			}
		}
		var err error
		fl, err = fleet.New(fleet.Config{
			Self:      *self,
			Peers:     static,
			PeersFile: *peersFile,
			Replicas:  *replicas,
		})
		if err != nil {
			logger.Error("fleet configuration failed", "error", err)
			os.Exit(1)
		}
		fl.Start(*peersPoll, *probeInterval)
		defer fl.Stop()
		logger.Info("fleet mode", "self", fl.Self(), "members", strings.Join(fl.Members.Peers(), ","), "replicas", fl.ReplicaCount())
	} else if *peers != "" || *peersFile != "" {
		logger.Error("-peers/-peers-file require -self (this node's advertise URL)")
		os.Exit(1)
	}

	s := serve.New(serve.Config{
		MaxCacheEntries:  *entries,
		MaxCacheBytes:    *bytes,
		SynthTimeBudget:  synthBudget,
		SynthWorkers:     *workers,
		MaxInflightSynth: *maxInflight,
		ShedRetryAfter:   *shedRetryAfter,
		CacheDir:         *cacheDir,
		CacheTTL:         *cacheTTL,
		DriftThreshold:   *driftThreshold,
		TelemetryWindow:  *telemetryWindow,
		DisableSeeding:   *noSeed,
		Fleet:            fl,
		TraceRing:        ring,
		TraceSlow:        *traceSlow,
		Logger:           logger,
	})
	defer s.Close()
	if *cacheDir != "" {
		logger.Info("cache restored", "plans", s.Stats().CacheRestored, "dir", *cacheDir)
	}
	if *telemetryFile != "" {
		stop := s.StartTelemetryFile(*telemetryFile, *telemetryPoll)
		defer stop()
		logger.Info("polling telemetry file", "path", *telemetryFile, "interval", *telemetryPoll)
	}

	// Warm up from a peer before accepting traffic: every entry streamed in
	// is a synthesis this node will not re-pay. Best-effort — a partial
	// transfer keeps what arrived, a fleet of one just starts cold.
	if fl != nil && *warmup {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		n, err := s.WarmFrom(ctx, fl.Members.Peers())
		cancel()
		switch {
		case err != nil && n == 0:
			logger.Warn("warm-up: no peer reachable, starting cold", "error", err)
		case err != nil:
			logger.Warn("warm-up: stream interrupted", "plans", n, "error", err)
		default:
			logger.Info("warm-up complete", "plans", n)
		}
	}

	// SIGHUP re-reads the peers file; SIGINT/SIGTERM shut down gracefully.
	if fl != nil {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				changed, err := fl.Members.Reload()
				switch {
				case err != nil:
					logger.Warn("SIGHUP reload failed", "error", err)
				case changed:
					logger.Info("SIGHUP reload", "members", strings.Join(fl.Members.Peers(), ","))
				default:
					logger.Info("SIGHUP reload: membership unchanged")
				}
			}
		}()
	}

	// The debug listener serves the profiling surface — /debug/pprof/* and
	// /debug/vars land on the default mux via their packages' init — on its
	// own address, so profiles can be pulled without exposing pprof to plan
	// clients and without contending with the request listener.
	if *debugAddr != "" {
		dbg := &http.Server{Addr: *debugAddr, Handler: http.DefaultServeMux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("debug listener on", "addr", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "error", err)
			}
		}()
		defer dbg.Close()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Info("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Warn("shutdown incomplete", "error", err)
		}
	}()

	logger.Info("listening", "addr", *addr, "cache_entries", *entries, "cache_bytes", *bytes)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listener failed", "error", err)
		os.Exit(1)
	}
	<-done
}
