// Command hap-bench regenerates the paper's tables and figures (Sec. 7) on
// the simulated substrate and prints them as text tables — the counterpart
// of the artifact's worker.py experiment driver.
//
// Usage:
//
//	hap-bench [-quick] [experiment ids...]
//
// With no ids, all experiments run in order. Known ids: table1 fig2 fig4
// fig13 fig14 fig15 fig16 fig17 fig18 fig19.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"hap/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced model sizes and sweeps")
	flag.Parse()

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.Order
	}
	cfg := experiments.Config{Quick: *quick}
	for _, id := range ids {
		gen, ok := experiments.All[id]
		if !ok {
			log.Fatalf("unknown experiment %q (known: %v)", id, experiments.Order)
		}
		start := time.Now()
		fmt.Println(gen(cfg))
		fmt.Printf("(%s generated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
