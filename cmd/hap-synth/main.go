// Command hap-synth synthesizes and prints the distributed program for a
// paper benchmark on a chosen cluster — the counterpart of the artifact's
// master.py (compile without running).
//
// Usage:
//
//	hap-synth [-model VGG19|ViT|BERT-Base|BERT-MoE] [-k gpusPerMachine]
//	          [-cluster hetero|homo|a100p100] [-segments n] [-passes=true]
//	          [-trace file] [-out plan.json] [-server http://host:8080]
//
// With -server, synthesis is delegated to a hap-serve daemon over wire
// protocol v2 (binary plan encoding): repeated invocations for the same
// model and cluster hit the daemon's plan cache instead of re-synthesizing.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"hap"
	"hap/client"
	"hap/internal/cluster"
	"hap/internal/models"
	"hap/internal/sim"
)

func main() {
	model := flag.String("model", "BERT-Base", "benchmark model (VGG19, ViT, BERT-Base, BERT-MoE)")
	k := flag.Int("k", 1, "GPUs per machine")
	clusterName := flag.String("cluster", "hetero", "cluster: hetero (2×V100+6×P100 machines), homo (4×P100), a100p100")
	segments := flag.Int("segments", 1, "model segments for per-segment sharding ratios")
	passes := flag.Bool("passes", true, "run the post-synthesis optimization pipeline (comm fusion, CSE, DCE)")
	workers := flag.Int("workers", 0, "beam-search worker goroutines (0 = GOMAXPROCS); the plan is byte-identical for any value")
	trace := flag.String("trace", "", "write a Chrome trace of one simulated iteration to this file")
	out := flag.String("out", "", "export the plan (program + ratios) as JSON to this file and verify the round-trip")
	server := flag.String("server", "", "synthesize via this hap-serve daemon (e.g. http://host:8080) instead of locally")
	flag.Parse()

	var c *cluster.Cluster
	switch *clusterName {
	case "hetero":
		c = cluster.PaperHeterogeneous(*k)
	case "homo":
		c = cluster.PaperHomogeneous(*k)
	case "a100p100":
		c = cluster.PaperA100P100()
	default:
		log.Fatalf("unknown cluster %q", *clusterName)
	}
	fmt.Print(c)

	g := models.Build(models.PaperModel(*model), c.TotalGPUs())
	fmt.Printf("model %s: %d nodes, %.1fM parameters, %.2f GFLOPs/iteration\n",
		*model, g.NumNodes(), float64(g.ParameterCount())/1e6, g.TotalFlops()/1e9)

	// ^C cancels the synthesis — locally it aborts the search within one
	// candidate batch; against a server it also aborts the remote search.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var plan *hap.Plan
	var err error
	if *server != "" {
		optimize := *passes
		plan, err = client.New(*server).Synthesize(ctx, g, c, client.Options{
			Segments: *segments,
			Optimize: &optimize,
		})
	} else {
		opts := []hap.Option{hap.WithSegments(*segments), hap.WithWorkers(*workers)}
		if !*passes {
			opts = append(opts, hap.WithoutPasses())
		}
		plan, err = hap.NewPlanner(c, opts...).Plan(ctx, g)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsynthesis took %.2fs; modeled %.1f ms/iteration; simulated %.1f ms/iteration\n",
		plan.SynthesisTime, plan.Cost*1e3, sim.IterationTime(c, plan.Program, plan.Ratios, 1)*1e3)
	fmt.Printf("sharding ratios: %.3f\n\n", plan.Ratios)
	fmt.Print(plan.Program)
	st := plan.Program.Stats()
	fmt.Printf("\nprogram: %d instructions, %d collectives (%d ratio-scaled comps); histogram %v\n",
		st.Instrs, st.Comms, st.FlopsScaled, st.PerCollective)
	if *passes && *server == "" {
		fmt.Printf("passes: %d rewrites in %d rounds", plan.Passes.Changed, plan.Passes.Rounds)
		for _, ps := range plan.Passes.PerPass {
			fmt.Printf("  %s=%d", ps.Pass, ps.Changed)
		}
		fmt.Println()
	}

	if *out != "" {
		var buf bytes.Buffer
		if err := plan.WriteProgram(&buf); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
			log.Fatal(err)
		}
		back, err := hap.ReadProgram(bytes.NewReader(buf.Bytes()), g)
		if err != nil {
			log.Fatalf("re-loading %s: %v", *out, err)
		}
		if back.Program.String() != plan.Program.String() {
			log.Fatalf("round-trip through %s changed the program", *out)
		}
		fmt.Printf("wrote %s (round-trip ok)\n", *out)
	}

	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := hap.WriteTrace(f, plan, c, 1); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *trace)
	}
}
