// Package autodiff appends a reverse-mode backward pass to a single-device
// graph. HAP synthesizes the *training* program, so the tensors the paper
// cares about — parameters, activations and gradients — must all appear in
// the graph. PyTorch produces the backward ops automatically; this package is
// the Go substitute.
//
// The pass handles every forward op kind in the IR. Gates of MoE Dispatch are
// treated as a routing decision and not differentiated through the dispatch
// path (standard practice: top-k routing has no useful gradient there); the
// gate parameter still receives its gradient through the Combine weighting.
package autodiff

import (
	"fmt"

	"hap/internal/graph"
)

// Backward appends gradient nodes for every node on a path from a parameter
// to the loss and records parameter gradients in g.Grads. It returns an error
// if the graph has no loss or some parameter receives no gradient.
func Backward(g *graph.Graph) error {
	if g.Loss < 0 {
		return fmt.Errorf("autodiff: graph has no loss node")
	}
	// grads[n] is the node computing dLoss/dn, accumulated with Add.
	grads := make(map[graph.NodeID]graph.NodeID)
	accumulate := func(n, grad graph.NodeID) {
		if prev, ok := grads[n]; ok {
			grads[n] = g.AddOp(graph.Add, prev, grad)
		} else {
			grads[n] = grad
		}
	}

	// needsGrad marks nodes on some parameter→loss path so we skip dead
	// branches (e.g. placeholders feeding only routing decisions).
	needsGrad := make([]bool, g.NumNodes())
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if n.Kind == graph.Parameter {
			needsGrad[i] = true
			continue
		}
		for _, in := range n.Inputs {
			if needsGrad[in] {
				needsGrad[i] = true
				break
			}
		}
	}
	if !needsGrad[g.Loss] {
		// A loss independent of all parameters: nothing to do.
		for range g.Params {
			return fmt.Errorf("autodiff: loss does not depend on any parameter")
		}
		return nil
	}

	numForward := g.NumNodes()
	g.ForwardCount = numForward
	grads[g.Loss] = g.AddOnes() // dLoss/dLoss = scalar 1
	g.PrimalOf[grads[g.Loss]] = g.Loss
	for id := graph.NodeID(numForward - 1); id >= 0; id-- {
		gy, ok := grads[id]
		if !ok || !needsGrad[id] {
			continue
		}
		n := *g.Node(id) // copy: appending nodes may reallocate
		in := func(i int) graph.NodeID { return n.Inputs[i] }
		shapeOf := func(i int) []int { return g.Node(in(i)).Shape }
		before := g.NumNodes()
		switch n.Kind {
		case graph.Placeholder, graph.Parameter, graph.Ones, graph.Expand:
			// Leaves: nothing to propagate. (Expand's scalar input is a
			// constant-1 seed; its gradient is never needed.)
		case graph.Sum:
			if needsGrad[in(0)] {
				accumulate(in(0), g.AddExpand(gy, g.Node(in(0)).Shape))
			}
		case graph.Scale:
			if needsGrad[in(0)] {
				accumulate(in(0), g.AddScale(gy, n.ScaleFactor))
			}
		case graph.Add:
			for i := 0; i < 2; i++ {
				if needsGrad[in(i)] {
					accumulate(in(i), gy)
				}
			}
		case graph.Mul:
			if needsGrad[in(0)] {
				accumulate(in(0), g.AddOp(graph.Mul, gy, in(1)))
			}
			if needsGrad[in(1)] {
				accumulate(in(1), g.AddOp(graph.Mul, gy, in(0)))
			}
		case graph.MatMul:
			// y = a·b : da = gy·bᵀ, db = aᵀ·gy
			if needsGrad[in(0)] {
				bt := g.AddOp(graph.Transpose, in(1))
				accumulate(in(0), g.AddOp(graph.MatMul, gy, bt))
			}
			if needsGrad[in(1)] {
				at := g.AddOp(graph.Transpose, in(0))
				accumulate(in(1), g.AddOp(graph.MatMul, at, gy))
			}
		case graph.Transpose:
			if needsGrad[in(0)] {
				accumulate(in(0), g.AddOp(graph.Transpose, gy))
			}
		case graph.ReLU:
			if needsGrad[in(0)] {
				accumulate(in(0), g.AddOp(graph.ReLUGrad, in(0), gy))
			}
		case graph.Sigmoid:
			if needsGrad[in(0)] {
				accumulate(in(0), g.AddOp(graph.SigmoidGrad, in(0), gy))
			}
		case graph.GeLU:
			if needsGrad[in(0)] {
				accumulate(in(0), g.AddOp(graph.GeLUGrad, in(0), gy))
			}
		case graph.Softmax:
			if needsGrad[in(0)] {
				// SoftmaxGrad consumes the op *output* y and gy.
				accumulate(in(0), g.AddOp(graph.SoftmaxGrad, id, gy))
			}
		case graph.Conv:
			// y = conv(x, w): backward costs mirror the forward.
			if needsGrad[in(0)] {
				dx := g.AddShaped(graph.ConvGradX, shapeOf(0), n.FlopsPerSample, in(1), gy)
				accumulate(in(0), dx)
			}
			if needsGrad[in(1)] {
				dw := g.AddShaped(graph.ConvGradW, shapeOf(1), n.FlopsPerSample, in(0), gy)
				accumulate(in(1), dw)
			}
		case graph.Dispatch:
			// Routing is not differentiated through gates (top-k routing);
			// the token path gets DispatchGrad.
			if needsGrad[in(0)] {
				dx := g.AddShaped(graph.DispatchGrad, shapeOf(0), 2, gy)
				accumulate(in(0), dx)
			}
		case graph.ExpertMM:
			d, w := g.Node(in(0)).Shape, g.Node(in(1)).Shape
			perExpert := 2 * float64(d[1]) * float64(d[2]) * float64(w[2])
			if needsGrad[in(0)] {
				dx := g.AddShaped(graph.ExpertMMGradX, shapeOf(0), perExpert, in(1), gy)
				accumulate(in(0), dx)
			}
			if needsGrad[in(1)] {
				dw := g.AddShaped(graph.ExpertMMGradW, shapeOf(1), perExpert, in(0), gy)
				accumulate(in(1), dw)
			}
		case graph.Combine:
			// y = combine(e, gates): grads flow to both the expert output
			// and the gates (which is how the gate parameter trains).
			if needsGrad[in(0)] {
				de := g.AddShaped(graph.CombineGrad, shapeOf(0), 2, gy, in(1))
				accumulate(in(0), de)
			}
			if needsGrad[in(1)] {
				dg := g.AddShaped(graph.CombineGradG, shapeOf(1), 2, gy, in(0))
				accumulate(in(1), dg)
			}
		case graph.Embed:
			// ids are discrete; only the table receives a gradient.
			if needsGrad[in(1)] {
				dw := g.AddShaped(graph.EmbedGrad, shapeOf(1), 0, in(0), gy)
				accumulate(in(1), dw)
			}
		case graph.Attention:
			if needsGrad[in(0)] {
				dq := g.AddShaped(graph.AttentionGrad, shapeOf(0), 2*n.FlopsPerSample, in(0), gy)
				accumulate(in(0), dq)
			}
		case graph.Pool:
			if needsGrad[in(0)] {
				dx := g.AddShaped(graph.PoolGrad, shapeOf(0), 0, in(0), gy)
				accumulate(in(0), dx)
			}
		default:
			return fmt.Errorf("autodiff: no backward rule for %v (node %d)", n.Kind, id)
		}
		for nid := before; nid < g.NumNodes(); nid++ {
			g.PrimalOf[graph.NodeID(nid)] = id
		}
	}

	for _, p := range g.Params {
		gp, ok := grads[p]
		if !ok {
			return fmt.Errorf("autodiff: parameter %d (%s) receives no gradient", p, g.Node(p).Name)
		}
		g.Grads[p] = gp
	}
	return nil
}
