package autodiff

import (
	"testing"

	"hap/internal/graph"
)

func mlp() *graph.Graph {
	g := graph.New()
	x := g.AddPlaceholder("x", 0, 8, 4)
	w1 := g.AddParameter("w1", 4, 6)
	w2 := g.AddParameter("w2", 6, 3)
	h := g.AddOp(graph.MatMul, x, w1)
	a := g.AddOp(graph.ReLU, h)
	y := g.AddOp(graph.MatMul, a, w2)
	g.SetLoss(g.AddOp(graph.Sum, y))
	return g
}

func TestBackwardProducesAllParamGrads(t *testing.T) {
	g := mlp()
	if err := Backward(g); err != nil {
		t.Fatalf("Backward: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate after backward: %v", err)
	}
	for _, p := range g.Params {
		gp, ok := g.Grads[p]
		if !ok {
			t.Fatalf("parameter %d has no gradient", p)
		}
		if !g.Node(gp).Shape.Equal(g.Node(p).Shape) {
			t.Errorf("grad shape %v != param shape %v", g.Node(gp).Shape, g.Node(p).Shape)
		}
	}
}

func TestBackwardGradShapesMatchPrimal(t *testing.T) {
	g := graph.New()
	x := g.AddPlaceholder("x", 0, 4, 4)
	w := g.AddParameter("w", 4, 4)
	h := g.AddOp(graph.MatMul, x, w)
	s := g.AddOp(graph.Sigmoid, h)
	gl := g.AddOp(graph.GeLU, s)
	sm := g.AddOp(graph.Softmax, gl)
	sc := g.AddScale(sm, 0.5)
	g.SetLoss(g.AddOp(graph.Sum, sc))
	if err := Backward(g); err != nil {
		t.Fatalf("Backward: %v", err)
	}
	gw := g.Grads[w]
	if !g.Node(gw).Shape.Equal(g.Node(w).Shape) {
		t.Errorf("grad shape %v, want %v", g.Node(gw).Shape, g.Node(w).Shape)
	}
}

func TestBackwardRequiresLoss(t *testing.T) {
	g := graph.New()
	g.AddPlaceholder("x", 0, 2, 2)
	if err := Backward(g); err == nil {
		t.Error("Backward without loss should fail")
	}
}

func TestBackwardSharedParameterAccumulates(t *testing.T) {
	// w used twice: loss = sum(x·w + x·w ∘ x·w); the grad of w must be an
	// accumulation (Add) of contributions.
	g := graph.New()
	x := g.AddPlaceholder("x", 0, 3, 3)
	w := g.AddParameter("w", 3, 3)
	h1 := g.AddOp(graph.MatMul, x, w)
	h2 := g.AddOp(graph.MatMul, x, w)
	m := g.AddOp(graph.Mul, h1, h2)
	g.SetLoss(g.AddOp(graph.Sum, m))
	if err := Backward(g); err != nil {
		t.Fatalf("Backward: %v", err)
	}
	gw := g.Grads[w]
	if g.Node(gw).Kind != graph.Add {
		t.Errorf("shared-parameter grad kind = %v, want add", g.Node(gw).Kind)
	}
}

func TestBackwardMulBranches(t *testing.T) {
	g := graph.New()
	x := g.AddPlaceholder("x", 0, 2, 2)
	w1 := g.AddParameter("a", 2, 2)
	w2 := g.AddParameter("b", 2, 2)
	m := g.AddOp(graph.Mul, g.AddOp(graph.MatMul, x, w1), g.AddOp(graph.MatMul, x, w2))
	g.SetLoss(g.AddOp(graph.Sum, m))
	if err := Backward(g); err != nil {
		t.Fatalf("Backward: %v", err)
	}
	if len(g.Grads) != 2 {
		t.Errorf("got %d grads, want 2", len(g.Grads))
	}
}

func TestBackwardConv(t *testing.T) {
	g := graph.New()
	x := g.AddPlaceholder("x", 0, 16, 300)
	w := g.AddParameter("w", 27, 64)
	c := g.AddConv(x, w, 640, 1e6)
	g.SetLoss(g.AddOp(graph.Sum, c))
	if err := Backward(g); err != nil {
		t.Fatalf("Backward: %v", err)
	}
	gw := g.Grads[w]
	n := g.Node(gw)
	if n.Kind != graph.ConvGradW {
		t.Errorf("conv weight grad kind = %v", n.Kind)
	}
	if !n.Shape.Equal(g.Node(w).Shape) {
		t.Errorf("conv weight grad shape = %v", n.Shape)
	}
	// Backward flops mirror forward per-sample cost.
	if g.Flops(gw) != 1e6*16 {
		t.Errorf("conv grad flops = %g", g.Flops(gw))
	}
}

func TestBackwardMoE(t *testing.T) {
	g := graph.New()
	x := g.AddPlaceholder("x", 0, 64, 32)
	wg := g.AddParameter("wg", 32, 4)
	gates := g.AddOp(graph.Softmax, g.AddOp(graph.MatMul, x, wg))
	d := g.AddOp(graph.Dispatch, x, gates)
	w1 := g.AddParameter("w1", 4, 32, 64)
	e := g.AddOp(graph.ExpertMM, d, w1)
	w2 := g.AddParameter("w2", 4, 64, 32)
	e2 := g.AddOp(graph.ExpertMM, e, w2)
	y := g.AddOp(graph.Combine, e2, gates)
	g.SetLoss(g.AddOp(graph.Sum, y))
	if err := Backward(g); err != nil {
		t.Fatalf("Backward: %v", err)
	}
	for _, p := range []graph.NodeID{wg, w1, w2} {
		gp, ok := g.Grads[p]
		if !ok {
			t.Fatalf("param %s missing grad", g.Node(p).Name)
		}
		if !g.Node(gp).Shape.Equal(g.Node(p).Shape) {
			t.Errorf("%s grad shape %v, want %v", g.Node(p).Name, g.Node(gp).Shape, g.Node(p).Shape)
		}
	}
}

func TestBackwardDisconnectedParameterFails(t *testing.T) {
	g := graph.New()
	x := g.AddPlaceholder("x", 0, 2, 2)
	g.AddParameter("unused", 2, 2)
	g.SetLoss(g.AddOp(graph.Sum, x))
	if err := Backward(g); err == nil {
		t.Error("Backward should fail when a parameter has no path to loss")
	}
}

func TestBackwardGraphRoughlyDoubles(t *testing.T) {
	g := mlp()
	before := g.NumNodes()
	if err := Backward(g); err != nil {
		t.Fatalf("Backward: %v", err)
	}
	after := g.NumNodes()
	if after <= before+3 {
		t.Errorf("backward added only %d nodes", after-before)
	}
}
