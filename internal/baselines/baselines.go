// Package baselines reimplements the systems HAP is compared against in
// Sec. 7: DP-EV and DP-CP (PyTorch-DDP-style data parallelism with even or
// compute-proportional ratios), a DeepSpeed-like system (data parallelism
// plus expert parallelism for MoE layers, experts padded to a multiple of
// the device count), and a TAG-like system (data parallelism with automatic
// sufficient-factor-broadcasting, compute-proportional ratios).
//
// Each baseline is expressed as a *restriction* of HAP's background theory —
// the baseline's strategy space — searched by the same synthesizer and
// costed by the same models, which keeps the comparison apples-to-apples on
// our simulated substrate.
package baselines

import (
	"context"
	"fmt"

	"hap/internal/cluster"
	"hap/internal/cost"
	"hap/internal/dist"
	"hap/internal/graph"
	"hap/internal/synth"
	"hap/internal/theory"
)

// Plan is a baseline's chosen program, ratios and modeled cost.
type Plan struct {
	Name    string
	Program *dist.Program
	Ratios  [][]float64
	Cost    float64 // analytic t(Q,B); the simulator reports actual time
	OOM     bool
}

// leafWants returns, for a triple, whether every leaf requirement conforms
// to pure data parallelism: placeholders sharded on the batch dim and dense
// parameters replicated. allowExpertShard additionally admits rank-3 expert
// parameters sharded on the expert dimension (DeepSpeed expert parallelism).
func leafWants(g *graph.Graph, tr *theory.Triple, allowExpertShard bool) bool {
	for _, p := range tr.LeafPre {
		n := g.Node(p.Ref)
		switch n.Kind {
		case graph.Placeholder:
			if !(p.Kind == theory.Gather && int(p.Dim) == n.BatchDim) {
				return false
			}
		case graph.Parameter:
			if p.Kind == theory.Identity {
				continue
			}
			if allowExpertShard && p.Kind == theory.Gather && p.Dim == 0 && len(n.Shape) == 3 {
				continue
			}
			return false
		}
	}
	return true
}

// isSFB reports whether the triple is a replicated MatMul over gathered
// operands — the pattern sufficient factor broadcasting synthesizes through.
func isSFB(g *graph.Graph, tr *theory.Triple) bool {
	return !tr.FlopsScaled && g.Node(tr.Node).Kind == graph.MatMul && len(tr.Pre) == 2
}

func plan(name string, g *graph.Graph, c *cluster.Cluster, th *theory.Theory,
	ratios []float64, opt synth.Options) (*Plan, error) {
	b := cost.UniformRatios(g.NumSegments(), ratios)
	p, _, err := synth.Synthesize(context.Background(), g, th, c, b, opt)
	if err != nil {
		return nil, fmt.Errorf("baselines: %s: %w", name, err)
	}
	return &Plan{
		Name:    name,
		Program: p,
		Ratios:  b,
		Cost:    cost.Evaluate(c, p, b),
		OOM:     cost.OOM(c, p, b),
	}, nil
}

func autoOpts() synth.Options {
	o := synth.Auto()
	o.DisableGroupedBroadcast = true // baselines use stock NCCL collectives
	return o
}

// DPEV builds the DP-EV baseline: data parallelism, even sharding ratios.
func DPEV(g *graph.Graph, c *cluster.Cluster) (*Plan, error) {
	th := theory.New(g).Filter(func(tr *theory.Triple) bool {
		return leafWants(g, tr, false) && !isSFB(g, tr)
	})
	return plan("DP-EV", g, c, th, c.EvenRatios(), autoOpts())
}

// DPCP builds the DP-CP baseline: data parallelism, ratios proportional to
// device compute power.
func DPCP(g *graph.Graph, c *cluster.Cluster) (*Plan, error) {
	th := theory.New(g).Filter(func(tr *theory.Triple) bool {
		return leafWants(g, tr, false) && !isSFB(g, tr)
	})
	return plan("DP-CP", g, c, th, c.ProportionalRatios(), autoOpts())
}

// DeepSpeed builds the DeepSpeed-like baseline: data parallelism for dense
// layers plus expert parallelism for MoE layers. Not heterogeneity-aware:
// even ratios. The caller is responsible for padding expert counts to a
// multiple of the device count (PadExperts), as DeepSpeed requires.
func DeepSpeed(g *graph.Graph, c *cluster.Cluster) (*Plan, error) {
	th := theory.New(g).Filter(func(tr *theory.Triple) bool {
		if !leafWants(g, tr, true) || isSFB(g, tr) {
			return false
		}
		// DeepSpeed-MoE always partitions on the expert dimension: keep
		// only the expert-parallel rules for the expert matmul family.
		switch g.Node(tr.Node).Kind {
		case graph.ExpertMM, graph.ExpertMMGradX, graph.ExpertMMGradW:
			return tr.Out.Kind == theory.Gather && tr.Out.Dim == 0
		}
		return true
	})
	return plan("DeepSpeed", g, c, th, c.EvenRatios(), autoOpts())
}

// TAG builds the TAG-like baseline: heterogeneity-aware data parallelism
// (compute-proportional ratios) with automatic sufficient factor
// broadcasting. The paper runs TAG only on VGG19 and BERT-Base; its
// inter-op placement mode is approximated by the SFB-enabled DP space
// (see DESIGN.md).
func TAG(g *graph.Graph, c *cluster.Cluster) (*Plan, error) {
	th := theory.New(g).Filter(func(tr *theory.Triple) bool {
		return leafWants(g, tr, false) // SFB triples allowed
	})
	return plan("TAG", g, c, th, c.ProportionalRatios(), autoOpts())
}

// PadExperts returns the expert count DeepSpeed actually allocates: the
// smallest multiple of devices ≥ experts (Sec. 7.6).
func PadExperts(experts, devices int) int {
	if experts%devices == 0 {
		return experts
	}
	return (experts/devices + 1) * devices
}
