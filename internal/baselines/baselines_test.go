package baselines

import (
	"testing"

	"hap/internal/cluster"
	"hap/internal/collective"
	"hap/internal/models"
	"hap/internal/theory"
)

func hetero() *cluster.Cluster {
	return cluster.FromGPUs(cluster.DefaultNetwork(),
		cluster.MachineSpec{Type: cluster.V100, GPUs: 2},
		cluster.MachineSpec{Type: cluster.P100, GPUs: 2})
}

func TestDPProgramIsDataParallel(t *testing.T) {
	g := models.Training(models.MLP(256, 64, 128, 10))
	p, err := DPEV(g, hetero())
	if err != nil {
		t.Fatalf("DPEV: %v", err)
	}
	// Data parallelism: every parameter replicated, every placeholder
	// sharded on the batch dim, gradients synchronized.
	for _, in := range p.Program.Instrs {
		if in.IsComm {
			continue
		}
		switch in.Op {
		case 1: // graph.Parameter
			if in.ShardDim != -1 {
				t.Errorf("DP parameter sharded: %v", in)
			}
		case 0: // graph.Placeholder
			if in.ShardDim != 0 {
				t.Errorf("DP placeholder not batch-sharded: %v", in)
			}
		}
	}
	syncs := p.Program.CollectiveCount()[collective.AllReduce] +
		p.Program.CollectiveCount()[collective.ReduceScatter]
	if syncs == 0 {
		t.Errorf("DP program has no gradient synchronization:\n%s", p.Program)
	}
}

func TestDPCPDiffersOnlyInRatios(t *testing.T) {
	g := models.Training(models.MLP(256, 64, 128, 10))
	c := hetero()
	ev, err1 := DPEV(g, c)
	cp, err2 := DPCP(g, c)
	if err1 != nil || err2 != nil {
		t.Fatalf("%v %v", err1, err2)
	}
	if ev.Ratios[0][0] == cp.Ratios[0][0] {
		t.Error("EV and CP should use different ratios on a heterogeneous cluster")
	}
}

func TestTAGAllowsSFB(t *testing.T) {
	g := models.Training(models.MLP(256, 64, 128, 10))
	th := theory.New(g)
	sfb := 0
	filtered := th.Filter(func(tr *theory.Triple) bool { return isSFB(g, tr) })
	for _, trs := range filtered.ByNode {
		sfb += len(trs)
	}
	if sfb == 0 {
		t.Error("no SFB triples exist in the theory at all")
	}
	if _, err := TAG(g, hetero()); err != nil {
		t.Errorf("TAG: %v", err)
	}
}

func TestDeepSpeedExpertParallelOnMoE(t *testing.T) {
	g := models.Build(models.ModelBERTMoE, 4)
	c := hetero()
	p, err := DeepSpeed(g, c)
	if err != nil {
		t.Fatalf("DeepSpeed: %v", err)
	}
	// Expert parallelism: at least one rank-3 parameter sharded on dim 0.
	found := false
	for _, in := range p.Program.Instrs {
		if !in.IsComm && in.Op == 1 && in.ShardDim == 0 {
			found = true
		}
	}
	if !found {
		t.Error("DeepSpeed plan shards no expert parameters")
	}
}

func TestPadExperts(t *testing.T) {
	cases := [][3]int{{4, 4, 4}, {5, 4, 8}, {8, 4, 8}, {9, 4, 12}, {1, 4, 4}}
	for _, c := range cases {
		if got := PadExperts(c[0], c[1]); got != c[2] {
			t.Errorf("PadExperts(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestDPOOMOnMoE(t *testing.T) {
	// Pure DP replicates all experts on every device; at scale this must
	// exceed device memory (the paper's observed OOM for DP on BERT-MoE).
	g := models.Build(models.ModelBERTMoE, 16)
	c := cluster.PaperHeterogeneous(2) // 8 machines × 2 GPUs
	p, err := DPEV(g, c)
	if err != nil {
		t.Fatalf("DPEV: %v", err)
	}
	if !p.OOM {
		t.Error("DP-EV on BERT-MoE@16 should be out of memory")
	}
}
