package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// backdate rewinds a persisted plan's file mtime, standing in for a plan
// written long ago.
func backdate(t *testing.T, d *diskStore, key string, age time.Duration) {
	t.Helper()
	when := time.Now().Add(-age)
	if err := os.Chtimes(d.path(key), when, when); err != nil {
		t.Fatal(err)
	}
}

func planFiles(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), planFileExt) {
			n++
		}
	}
	return n
}

// TestRestorePreservesLRUOrder persists three plans with staggered mtimes and
// restores them into a 2-entry cache: the oldest must lose — evicted during
// the replay and its file deleted — because restore replays oldest-first so
// disk age maps onto LRU recency.
func TestRestorePreservesLRUOrder(t *testing.T) {
	dir := t.TempDir()
	d, err := newDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, age := range []time.Duration{3 * time.Hour, 2 * time.Hour, time.Hour} {
		key := fmt.Sprintf("k%d", i)
		d.save(key, bp("plan-"+key))
		backdate(t, d, key, age)
	}

	// All three replay (Restored counts accepted adds); the oldest is then
	// evicted by the third's arrival, exactly as live traffic would evict it.
	s := newMemDiskStore(2, 1<<20, d, 0)
	if s.Stats().Restored != 3 {
		t.Errorf("restored = %d, want 3", s.Stats().Restored)
	}
	if s.Stats().Entries != 2 {
		t.Errorf("entries = %d, want the cap of 2", s.Stats().Entries)
	}
	if _, ok := s.Get("k0"); ok {
		t.Error("oldest plan survived restore into a smaller cache")
	}
	for _, k := range []string{"k1", "k2"} {
		if _, ok := s.Get(k); !ok {
			t.Errorf("recent plan %s lost in restore", k)
		}
	}
	// The directory converges to the cache's contents: k0's file is gone.
	if n := planFiles(t, dir); n != 2 {
		t.Errorf("%d plan files after restore, want 2", n)
	}
}

// TestRestoreAppliesTTLCutoff persists one fresh and one aged plan; restoring
// with a TTL deletes the aged file instead of reloading it.
func TestRestoreAppliesTTLCutoff(t *testing.T) {
	dir := t.TempDir()
	d, err := newDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	d.save("fresh", bp("a"))
	d.save("stale", bp("b"))
	backdate(t, d, "stale", 48*time.Hour)

	s := newMemDiskStore(10, 1<<20, d, 24*time.Hour)
	if _, ok := s.Get("stale"); ok {
		t.Error("plan older than the TTL was restored")
	}
	if _, ok := s.Get("fresh"); !ok {
		t.Error("fresh plan lost")
	}
	if s.Stats().Restored != 1 {
		t.Errorf("restored = %d, want 1", s.Stats().Restored)
	}
	if n := planFiles(t, dir); n != 1 {
		t.Errorf("%d plan files after TTL restore, want the fresh one only", n)
	}
}

// TestSweepExpiresAgedEntries restores backdated entries, then runs the TTL
// sweep as if time had passed: aged entries leave the cache and the disk.
func TestSweepExpiresAgedEntries(t *testing.T) {
	dir := t.TempDir()
	d, err := newDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	d.save("old", bp("a"))
	backdate(t, d, "old", 2*time.Hour)
	d.save("new", bp("b"))

	// TTL of 3h restores both ("old" is 2h, inside the horizon)...
	s := newMemDiskStore(10, 1<<20, d, 3*time.Hour)
	if s.Stats().Restored != 2 {
		t.Fatalf("restored = %d, want 2", s.Stats().Restored)
	}
	// ...then a sweep 2h "later" finds "old" (now 4h) past the TTL.
	if n := s.sweep(time.Now().Add(2 * time.Hour)); n != 1 {
		t.Errorf("sweep evicted %d entries, want 1", n)
	}
	if _, ok := s.Get("old"); ok {
		t.Error("aged entry survived the sweep")
	}
	if _, ok := s.Get("new"); !ok {
		t.Error("fresh entry swept")
	}
	if n := planFiles(t, dir); n != 1 {
		t.Errorf("%d plan files after sweep, want 1", n)
	}
	// Sweep evictions count as cache evictions in /stats.
	if ev := s.Stats().Evictions; ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
}

// TestStoreRangeIsMRUFirst checks the Range contract the fleet warm-up
// stream depends on: most recently used entries come first, so a transfer
// cut short delivered the hottest keys.
func TestStoreRangeIsMRUFirst(t *testing.T) {
	s := newMemDiskStore(10, 1<<20, nil, 0)
	for _, k := range []string{"a", "b", "c"} {
		s.Put(k, bp(k))
	}
	s.Get("a") // "a" is now hottest
	var order []string
	s.Range(func(key string, v CachedPlan) bool {
		order = append(order, key)
		return true
	})
	want := []string{"a", "c", "b"}
	if len(order) != len(want) {
		t.Fatalf("Range visited %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("Range order = %v, want %v", order, want)
		}
	}
	// Early termination: fn returning false stops the walk.
	visits := 0
	s.Range(func(string, CachedPlan) bool { visits++; return false })
	if visits != 1 {
		t.Errorf("Range ignored fn returning false (%d visits)", visits)
	}
}

// TestFilenameIsContentAddressed: distinct keys get distinct files, the same
// key overwrites in place.
func TestFilenameIsContentAddressed(t *testing.T) {
	dir := t.TempDir()
	d, err := newDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	d.save("k1", bp("a"))
	d.save("k1", bp("b"))
	d.save("k2", bp("c"))
	if n := planFiles(t, dir); n != 2 {
		t.Errorf("%d plan files, want 2 (same key overwrites)", n)
	}
	if d.path("k1") == d.path("k2") {
		t.Error("distinct keys share a file")
	}
	if filepath.Dir(d.path("k1")) != dir {
		t.Error("plan file outside the cache dir")
	}
}
