// Write-through disk persistence for the plan cache. Plans are
// content-addressed already (the cache key is built from the graph and
// cluster fingerprints plus the planner options), so the store is a flat
// directory of fingerprint-named files: each insert writes one file, each
// LRU eviction deletes one, and a restarting server reloads the directory —
// a fleet restart does not re-pay every synthesis.
//
// Persistence is best-effort by design: a failed write or an unreadable file
// degrades to an in-memory cache entry (or a cache miss), never to a failed
// request. Files are written atomically (temp file + rename) so a crash
// mid-write leaves no torn plan behind.

package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// planFileExt names persisted plan files.
const planFileExt = ".plan"

// persistedPlan is the on-disk envelope of one cached plan. Both payloads
// travel base64-encoded: the plan JSON must be restored byte-for-byte (a
// marshalled RawMessage would be compacted, silently changing the bytes a
// restarted server serves for the same content address).
type persistedPlan struct {
	// Key is the full cache key; the filename is only its hash.
	Key string `json:"key"`
	// Plan is the WriteProgram JSON, byte-exact.
	Plan []byte `json:"plan"`
	// Bin is the WriteProgramBinary payload.
	Bin []byte `json:"bin,omitempty"`
	// Passes is the X-HAP-Passes header value.
	Passes string `json:"passes,omitempty"`
	// Version and ETag are the plan-version metadata (see CachedPlan); files
	// from before versioning restore with zero values and are normalized on
	// load.
	Version uint64 `json:"version,omitempty"`
	ETag    string `json:"etag,omitempty"`
}

type diskStore struct {
	dir string
}

// newDiskStore prepares dir, creating it if needed. A directory that cannot
// be created or written is an error the caller must surface: silently
// degrading to a memory-only cache would let an operator believe plans are
// persisted until the first restart re-pays every synthesis.
func newDiskStore(dir string) (*diskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: cache dir: %w", err)
	}
	probe, err := os.CreateTemp(dir, "probe-*")
	if err != nil {
		return nil, fmt.Errorf("serve: cache dir not writable: %w", err)
	}
	probe.Close()
	os.Remove(probe.Name())
	return &diskStore{dir: dir}, nil
}

// path derives the content-addressed filename for a cache key. The key
// embeds raw fingerprints and option values; hashing it yields a fixed-size
// filesystem-safe name.
func (d *diskStore) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:])+planFileExt)
}

// save writes one plan through to disk, atomically. Errors are swallowed:
// persistence never fails a request.
func (d *diskStore) save(key string, v CachedPlan) {
	data, err := json.Marshal(persistedPlan{Key: key, Plan: v.Plan, Bin: v.Bin, Passes: v.Passes, Version: v.Version, ETag: v.ETag})
	if err != nil {
		return
	}
	target := d.path(key)
	tmp, err := os.CreateTemp(d.dir, "tmp-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), target); err != nil {
		os.Remove(tmp.Name())
	}
}

// remove deletes an evicted plan's file.
func (d *diskStore) remove(key string) {
	os.Remove(d.path(key))
}

// load feeds every persisted plan to add in ascending-mtime order — oldest
// first, so the most recently written plan ends up most recently used and a
// restart preserves the LRU's eviction order instead of replaying the
// directory's arbitrary listing order. Files last written before cutoff
// (the TTL horizon; zero disables) are deleted instead of restored. Returns
// how many plans add accepted. Corrupt or foreign files are skipped, not
// fatal.
func (d *diskStore) load(cutoff time.Time, add func(key string, v CachedPlan, mtime time.Time) bool) int {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return 0
	}
	type planFile struct {
		name  string
		mtime time.Time
	}
	files := make([]planFile, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), planFileExt) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		if !cutoff.IsZero() && info.ModTime().Before(cutoff) {
			os.Remove(filepath.Join(d.dir, e.Name()))
			continue
		}
		files = append(files, planFile{name: e.Name(), mtime: info.ModTime()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	restored := 0
	for _, f := range files {
		data, err := os.ReadFile(filepath.Join(d.dir, f.name))
		if err != nil {
			continue
		}
		var p persistedPlan
		if err := json.Unmarshal(data, &p); err != nil || p.Key == "" || len(p.Plan) == 0 {
			continue
		}
		if add(p.Key, CachedPlan{Plan: p.Plan, Bin: p.Bin, Passes: p.Passes, Version: p.Version, ETag: p.ETag}, f.mtime) {
			restored++
		}
	}
	return restored
}
