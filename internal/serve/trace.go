// The daemon's tracing compartment: per-request span trees (internal/obs)
// threaded through decode, cache lookup, single-flight, synthesis, encode,
// replication, and fleet proxy hops; the bounded ring behind GET
// /v1/debug/traces (JSON or Chrome trace-event format); the -trace-slow
// structured log line; and the per-phase summaries /metrics derives from
// completed spans.
//
// Cross-node propagation: a fleet forward hop sends X-HAP-Trace:
// "traceID-proxySpanID", the remote node roots its request span under that
// parent, and returns its span records in the X-HAP-Trace-Spans response
// header (forwarded requests only — end clients never see it). The
// proxying node merges them, so a cross-node miss is ONE trace with the
// remote subtree parented under the proxy hop span.

package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"time"

	"hap/internal/fleet"
	"hap/internal/obs"
)

// DefaultTraceRing is how many completed traces the debug ring retains
// when Config.TraceRing is zero.
const DefaultTraceRing = obs.DefaultRingSize

// Fleet-role labels attached to every traced request and slow-log line.
const (
	roleLocal   = "local"   // standalone daemon
	roleOwner   = "owner"   // this node owns the key's ring slot
	roleReplica = "replica" // this node holds a replica of the key
	roleProxy   = "proxy"   // the key is owned elsewhere; misses proxy out
)

// requestTrace carries one traced request through a handler: the trace,
// its root span, and the labels (endpoint, cache outcome, fleet role) the
// slow log and the trace summary report. It wraps the ResponseWriter so
// the first WriteHeader can export this node's spans to a forwarding peer
// before the status line is committed.
//
// A nil *requestTrace is valid and inert — handlers call its methods
// unconditionally, exactly like a nil obs.Span.
type requestTrace struct {
	s         *Server
	w         http.ResponseWriter
	tr        *obs.Trace
	root      *obs.Span
	endpoint  string
	start     time.Time
	forwarded bool
	wrote     bool
	status    int
	cache     string
	role      string
}

// startRequestTrace begins tracing one plan request. When tracing is off it
// returns (nil, r, w) and the handler path is unchanged; when on, the
// returned writer must replace w (it exports spans on fleet-hop responses)
// and the returned request carries the root span on its context.
func (s *Server) startRequestTrace(w http.ResponseWriter, r *http.Request, endpoint string) (*requestTrace, *http.Request, http.ResponseWriter) {
	if s.traces == nil {
		return nil, r, w
	}
	id, parent := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
	tr := obs.New(id, s.nodeLabel)
	root := tr.Root("request", parent)
	root.SetAttrStr("endpoint", endpoint)
	rt := &requestTrace{
		s: s, w: w, tr: tr, root: root,
		endpoint:  endpoint,
		start:     time.Now(),
		forwarded: r.Header.Get(fleet.ForwardHeader) != "",
		role:      roleLocal,
	}
	// The trace ID rides on every response — including errors, so a failed
	// request is greppable in the server log by the ID the client holds.
	w.Header().Set(obs.TraceHeader, tr.ID())
	return rt, r.WithContext(obs.ContextWithSpan(r.Context(), root)), rt
}

// span opens a child of the request's root span (nil-safe).
func (rt *requestTrace) span(name string) *obs.Span {
	if rt == nil {
		return nil
	}
	return rt.root.Child(name)
}

// rootSpan returns the root span for attr stamping (nil-safe).
func (rt *requestTrace) rootSpan() *obs.Span {
	if rt == nil {
		return nil
	}
	return rt.root
}

func (rt *requestTrace) setCache(outcome string) {
	if rt != nil {
		rt.cache = outcome
	}
}

func (rt *requestTrace) setRole(role string) {
	if rt != nil {
		rt.role = role
	}
}

// traceID returns the trace identifier ("" when tracing is off).
func (rt *requestTrace) traceID() string {
	if rt == nil {
		return ""
	}
	return rt.tr.ID()
}

// forwardHeader renders the X-HAP-Trace value for a proxy hop parented
// under span ("" when tracing is off).
func (rt *requestTrace) forwardHeader(sp *obs.Span) string {
	if rt == nil {
		return ""
	}
	return obs.FormatTraceHeader(rt.tr.ID(), sp.SpanID())
}

// merge folds a peer's X-HAP-Trace-Spans response header into this trace.
func (rt *requestTrace) merge(spansHeader string) {
	if rt == nil || spansHeader == "" {
		return
	}
	rt.tr.Merge(obs.DecodeSpans(spansHeader))
}

// Header, WriteHeader, Write implement http.ResponseWriter. The first
// WriteHeader on a forwarded (fleet-hop) request exports every span this
// node recorded — plus a provisional snapshot of the still-open root — so
// the proxying peer can merge the remote subtree into the client's trace.
func (rt *requestTrace) Header() http.Header { return rt.w.Header() }

func (rt *requestTrace) WriteHeader(code int) {
	if !rt.wrote {
		rt.wrote = true
		rt.status = code
		if rt.forwarded {
			spans := append(rt.tr.Snapshot(), rt.root.Record())
			rt.w.Header().Set(obs.SpansHeader, obs.EncodeSpans(spans))
		}
	}
	rt.w.WriteHeader(code)
}

func (rt *requestTrace) Write(b []byte) (int, error) {
	if !rt.wrote {
		rt.WriteHeader(http.StatusOK)
	}
	return rt.w.Write(b)
}

// finish closes the request trace: stamps the root with the outcome
// labels, lands the trace in the debug ring, folds phase durations into
// the /metrics summaries, and emits the -trace-slow log line. Deferred by
// every traced handler; nil-safe.
func (rt *requestTrace) finish() {
	if rt == nil {
		return
	}
	status := rt.status
	if status == 0 {
		status = http.StatusOK
	}
	rt.root.SetAttrStr("cache", rt.cache)
	rt.root.SetAttrStr("fleet_role", rt.role)
	rt.root.SetAttrInt("status", int64(status))
	rt.root.End()
	rec := rt.tr.Finish()
	rt.s.collectTrace(rec)
	rt.s.logSlowRequest(rec, rt.endpoint, rt.cache, rt.role, status, time.Since(rt.start))
}

// phaseNames are the /metrics summary labels of
// hap_serve_synth_phase_seconds, index-aligned with Server.phase.
var phaseNames = [...]string{"theory", "beam", "passes", "verify"}

// phaseIndex maps a span name to its summary slot (-1 = not a phase span).
// The beam phase aggregates the synthesizer's "search" spans — exact A*
// searches land there too; the label names the common case.
func phaseIndex(name string) int {
	switch name {
	case "theory":
		return 0
	case "search":
		return 1
	case "passes":
		return 2
	case "verify":
		return 3
	}
	return -1
}

// collectTrace lands a completed trace in the debug ring and accumulates
// its phase spans into the /metrics summaries. Only spans recorded by THIS
// node aggregate — a merged remote subtree is the remote node's work and
// is counted by its own /metrics.
func (s *Server) collectTrace(rec *obs.TraceRecord) {
	if rec == nil {
		return
	}
	s.traces.Add(rec)
	for i := range rec.Spans {
		sp := &rec.Spans[i]
		if sp.Node != s.nodeLabel {
			continue
		}
		if pi := phaseIndex(sp.Name); pi >= 0 {
			s.phase[pi].count.Add(1)
			s.phase[pi].sumNs.Add(sp.DurUS * 1000)
		}
	}
}

// logSlowRequest emits the structured slow-request line: every request
// when Config.TraceSlow is negative, requests at or past the threshold
// when positive, nothing when zero.
func (s *Server) logSlowRequest(rec *obs.TraceRecord, endpoint, cache, role string, status int, elapsed time.Duration) {
	if s.cfg.TraceSlow == 0 {
		return
	}
	if s.cfg.TraceSlow > 0 && elapsed < s.cfg.TraceSlow {
		return
	}
	s.slowRequests.Add(1)
	s.logger.LogAttrs(context.Background(), slog.LevelWarn, "slow request",
		slog.String("trace_id", rec.TraceID),
		slog.String("endpoint", endpoint),
		slog.String("cache", cache),
		slog.String("fleet_role", role),
		slog.Int("status", status),
		slog.Duration("elapsed", elapsed),
		slog.String("spans", spanBreakdown(rec)),
	)
}

// spanBreakdown renders a trace's spans as "name=dur" pairs for the slow
// log, aggregated by span name (xN for repeats) in first-start order —
// readable in one line even for a deep beam search.
func spanBreakdown(rec *obs.TraceRecord) string {
	spans := make([]obs.SpanRecord, len(rec.Spans))
	copy(spans, rec.Spans)
	sort.Slice(spans, func(i, j int) bool { return spans[i].StartUS < spans[j].StartUS })
	type agg struct {
		durUS int64
		n     int
	}
	var order []string
	by := map[string]*agg{}
	for _, sp := range spans {
		a, ok := by[sp.Name]
		if !ok {
			a = &agg{}
			by[sp.Name] = a
			order = append(order, sp.Name)
		}
		a.durUS += sp.DurUS
		a.n++
	}
	var b strings.Builder
	for i, name := range order {
		if i > 0 {
			b.WriteByte(' ')
		}
		a := by[name]
		fmt.Fprintf(&b, "%s=%s", name, (time.Duration(a.durUS) * time.Microsecond).Round(10*time.Microsecond))
		if a.n > 1 {
			fmt.Fprintf(&b, "x%d", a.n)
		}
	}
	return b.String()
}

// writeJSON renders a JSON debug payload.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// TraceSummary is one entry of the GET /v1/debug/traces listing.
type TraceSummary struct {
	TraceID  string `json:"trace_id"`
	StartUS  int64  `json:"start_us"`
	DurUS    int64  `json:"dur_us"`
	Spans    int    `json:"spans"`
	Endpoint string `json:"endpoint,omitempty"`
	Cache    string `json:"cache,omitempty"`
	Role     string `json:"fleet_role,omitempty"`
	Status   string `json:"status,omitempty"`
	Name     string `json:"name,omitempty"` // root span name (request, replan)
}

// handleDebugTraces serves GET /v1/debug/traces: the retained traces,
// newest first, as summaries.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, true, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required")
		return
	}
	if s.traces == nil {
		s.fail(w, true, http.StatusNotFound, CodeNotFound, "tracing is disabled (negative trace ring)")
		return
	}
	recs := s.traces.Traces()
	out := struct {
		Traces []TraceSummary `json:"traces"`
	}{Traces: make([]TraceSummary, 0, len(recs))}
	for _, rec := range recs {
		root := rec.Root()
		out.Traces = append(out.Traces, TraceSummary{
			TraceID:  rec.TraceID,
			StartUS:  rec.StartUS,
			DurUS:    rec.DurUS,
			Spans:    len(rec.Spans),
			Endpoint: root.Attrs["endpoint"],
			Cache:    root.Attrs["cache"],
			Role:     root.Attrs["fleet_role"],
			Status:   root.Attrs["status"],
			Name:     root.Name,
		})
	}
	writeJSON(w, out)
}

// handleDebugTrace serves GET /v1/debug/traces/{id}: the full span tree as
// JSON, or — with ?format=chrome — a Chrome trace-event file that opens
// directly in chrome://tracing or Perfetto.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, true, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/debug/traces/")
	if id == "" {
		s.handleDebugTraces(w, r)
		return
	}
	rec, ok := s.traces.Get(id)
	if !ok {
		s.fail(w, true, http.StatusNotFound, CodeNotFound, "no trace %q in the debug ring", id)
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		obs.WriteChrome(w, rec)
		return
	}
	writeJSON(w, rec)
}
