package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"hap"
	"hap/internal/cluster"
	"hap/internal/graph"
	"hap/internal/models"
)

// seedServeGraph builds a training MLP deep enough that a one-layer widening
// stays under the seed distance cutoff (shallow models diff too coarsely).
func seedServeGraph(widths ...int) *graph.Graph {
	return models.Training(models.MLP(64, widths...))
}

// postHdr is post with the full response header set, for seed-header checks.
func postHdr(t *testing.T, url string, body []byte) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

// TestServeIncrementalSynthesis drives the full incremental path over the
// wire: a first miss synthesizes cold and registers as a donor, a structurally
// similar second miss seeds from it — observable as the X-HAP-Seed-Distance
// header, the synth_incremental /stats counter, and the /metrics counter —
// and the seeded plan still passes numeric verification.
func TestServeIncrementalSynthesis(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := testCluster()
	baseBody := requestBody(t, seedServeGraph(64, 96, 96, 96, 96, 96, 96, 32), c, RequestOptions{})
	wideBody := requestBody(t, seedServeGraph(64, 96, 96, 112, 96, 96, 96, 32), c, RequestOptions{})

	status, hdr, body := postHdr(t, srv.URL, baseBody)
	if status != http.StatusOK {
		t.Fatalf("donor request: status %d: %s", status, body)
	}
	if got := hdr.Get(SeedDistanceHeader); got != "" {
		t.Errorf("first miss has no donor but sent %s = %q", SeedDistanceHeader, got)
	}

	status, hdr, plan := postHdr(t, srv.URL, wideBody)
	if status != http.StatusOK {
		t.Fatalf("widened request: status %d: %s", status, plan)
	}
	sd := hdr.Get(SeedDistanceHeader)
	if sd == "" {
		t.Fatalf("widened miss was not seeded: no %s header", SeedDistanceHeader)
	}
	d, err := strconv.ParseFloat(sd, 64)
	if err != nil || d <= 0 || d > 1 {
		t.Fatalf("%s = %q, want a distance in (0, 1]", SeedDistanceHeader, sd)
	}

	// The seeded plan must re-bind to a fresh rebuild of the widened model
	// and pass numeric verification, exactly like a cold plan.
	g2 := seedServeGraph(64, 96, 96, 112, 96, 96, 96, 32)
	p, err := hap.ReadProgram(bytes.NewReader(plan), g2)
	if err != nil {
		t.Fatalf("ReadProgram on seeded plan: %v", err)
	}
	if err := p.Program.Validate(); err != nil {
		t.Fatalf("seeded program ill-formed: %v", err)
	}
	if err := hap.Verify(p, c.M(), 7); err != nil {
		t.Errorf("seeded plan fails verification: %v", err)
	}

	st := getStats(t, srv.URL)
	if st.SynthIncremental != 1 {
		t.Errorf("stats synth_incremental = %d, want 1", st.SynthIncremental)
	}
	if st.SynthSeedDistance != d {
		t.Errorf("stats synth_seed_distance = %v, want header value %v", st.SynthSeedDistance, d)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "hap_serve_synth_incremental_total 1") {
		t.Errorf("/metrics missing hap_serve_synth_incremental_total 1:\n%s", metrics)
	}

	// A repeat is a pure cache hit: no synthesis ran, so no seed header.
	status, hdr, _ = postHdr(t, srv.URL, wideBody)
	if status != http.StatusOK || hdr.Get("X-HAP-Cache") != "hit" {
		t.Fatalf("repeat request: status %d, cache %q, want 200/hit", status, hdr.Get("X-HAP-Cache"))
	}
	if got := hdr.Get(SeedDistanceHeader); got != "" {
		t.Errorf("cache hit sent %s = %q, want none", SeedDistanceHeader, got)
	}
}

// TestServeSeedingDisabled: with DisableSeeding (-no-seed) a structurally
// similar miss synthesizes cold — no seed header, no incremental counter.
func TestServeSeedingDisabled(t *testing.T) {
	s := New(Config{DisableSeeding: true})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := testCluster()

	status, _, body := postHdr(t, srv.URL, requestBody(t, seedServeGraph(64, 96, 96, 96, 96, 96, 96, 32), c, RequestOptions{}))
	if status != http.StatusOK {
		t.Fatalf("donor request: status %d: %s", status, body)
	}
	status, hdr, body := postHdr(t, srv.URL, requestBody(t, seedServeGraph(64, 96, 96, 112, 96, 96, 96, 32), c, RequestOptions{}))
	if status != http.StatusOK {
		t.Fatalf("widened request: status %d: %s", status, body)
	}
	if got := hdr.Get(SeedDistanceHeader); got != "" {
		t.Errorf("seeding disabled but response sent %s = %q", SeedDistanceHeader, got)
	}
	if st := s.Stats(); st.SynthIncremental != 0 {
		t.Errorf("stats synth_incremental = %d with seeding disabled, want 0", st.SynthIncremental)
	}
}

// TestServeEvictionDropsRegistries: when the LRU evicts a plan, its replan
// registration and similarity-index entry go with it — the side registries
// must not outgrow the cache (the unbounded-sources leak).
func TestServeEvictionDropsRegistries(t *testing.T) {
	s := New(Config{
		MaxCacheEntries: 2,
		Synthesize: func(ctx context.Context, g *graph.Graph, c *cluster.Cluster, opt hap.Options) (*hap.Plan, error) {
			return hap.Parallelize(g, c, opt)
		},
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := testCluster()

	for _, w := range []int{24, 32, 40, 48} {
		g := seedServeGraph(w, 8)
		status, _, body := post(t, srv.URL, requestBody(t, g, c, RequestOptions{}))
		if status != http.StatusOK {
			t.Fatalf("width %d: status %d: %s", w, status, body)
		}
	}
	if st := s.Stats(); st.CacheEntries != 2 {
		t.Fatalf("cache holds %d entries, want 2", st.CacheEntries)
	}

	s.telemetry.mu.Lock()
	sources := len(s.telemetry.sources)
	s.telemetry.mu.Unlock()
	if sources != 2 {
		t.Errorf("replan registry holds %d sources after evictions, want 2", sources)
	}
	if n := s.sim.len(); n != 2 {
		t.Errorf("similarity index holds %d entries after evictions, want 2", n)
	}
}
