// The telemetry layer of the daemon: live probe ingestion and background
// replanning. The cache (and the fleet built on it) treats a plan as valid
// forever because its key — graph fingerprint, cluster fingerprint, options —
// is immutable. The cluster the key describes is not: links congest, GPUs
// throttle, machines drop out. This file closes that loop.
//
//	POST /v1/telemetry   {"cluster", "links", "devices"} → drift verdict
//
// Each report feeds a telemetry.Monitor keyed by the spec cluster's
// fingerprint (EWMA-smoothed, windowed — see internal/telemetry). When the
// materialized live view drifts past Config.DriftThreshold, every cached
// entry synthesized against that spec is replanned in the background against
// the drifted cluster. The old plan keeps serving — same key, same ETag —
// until the replacement synthesizes AND verifies (hap.Verify executes the
// candidate before the swap); only then does the store swap bump the plan
// version and change the entity tag, at which point a conditional fetch
// stops answering 304 and delivers the new plan. A replan that lands on
// byte-identical output is not swapped at all, so warm clients' tags stay
// valid across no-op replans.
//
// The same report body can be polled from disk (-telemetry-file), mirroring
// the -peers-file pattern: an external probe agent appends measurements to a
// file and the daemon picks them up on size-or-mtime change.

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"os"
	"sync"
	"time"

	"hap"
	"hap/internal/cluster"
	"hap/internal/graph"
	"hap/internal/obs"
	"hap/internal/telemetry"
)

// DefaultDriftThreshold is the drift past which cached plans replan: 10%
// relative change in any measured quantity. Below it a replan would mostly
// reshuffle within cost-model noise; above it the paper's load-balancing
// gains are being left on the table.
const DefaultDriftThreshold = 0.10

// replanVerifySeed seeds the hap.Verify run that gates every replan swap.
const replanVerifySeed = 7

// TelemetryRequest is the body of POST /v1/telemetry and one entry of the
// -telemetry-file format: the spec cluster the samples measure (identifying
// the monitor) plus the probe batch.
type TelemetryRequest struct {
	Cluster json.RawMessage          `json:"cluster"`
	Links   []telemetry.LinkSample   `json:"links,omitempty"`
	Devices []telemetry.DeviceSample `json:"devices,omitempty"`
}

// TelemetryResponse is the POST /v1/telemetry answer: the monitor's verdict
// after folding the batch in.
type TelemetryResponse struct {
	// Cluster is the spec cluster's fingerprint — the monitor key.
	Cluster string `json:"cluster"`
	// Distance is the current drift between spec and live view (see
	// cluster.Distance), capped at math.MaxFloat64 for JSON's sake when a
	// device dropped out (the true distance is +Inf).
	Distance float64 `json:"distance"`
	// Drifted reports whether Distance crossed the replan threshold.
	Drifted bool `json:"drifted"`
	// ReplansStarted is how many cached entries began replanning in the
	// background because of this report.
	ReplansStarted int `json:"replans_started"`
	// Samples is the monitor's lifetime ingested-sample count.
	Samples uint64 `json:"samples"`
}

// TelemetryStats is the telemetry slice of /stats.
type TelemetryStats struct {
	// Reports counts accepted probe batches; Rejects counts batches refused
	// (unknown machine or device, malformed cluster).
	Reports uint64 `json:"reports"`
	Rejects uint64 `json:"rejects"`
	// Monitors is how many spec clusters have live monitors.
	Monitors int `json:"monitors"`
	// Replans counts background replans that swapped a new plan in;
	// ReplansUnchanged counts replans whose output was byte-identical to the
	// cached plan (no swap, ETag untouched); ReplanErrors counts replans that
	// failed to synthesize or verify (the old plan keeps serving).
	Replans          uint64 `json:"replans"`
	ReplansUnchanged uint64 `json:"replans_unchanged"`
	ReplanErrors     uint64 `json:"replan_errors"`
	// Drift maps each monitored spec fingerprint to its current distance;
	// MaxDrift is the largest (0 when nothing is monitored).
	Drift    map[string]float64 `json:"drift,omitempty"`
	MaxDrift float64            `json:"max_drift"`
}

// planSource remembers what a locally synthesized cache entry was planned
// from, so drift in the source cluster can replan the entry without the
// original request. Entries are registered on successful local synthesis
// only — a replicated or warmed-up entry replans on its owner, and the
// replacement re-replicates through the normal path.
type planSource struct {
	g    *graph.Graph
	spec *cluster.Cluster
	opts RequestOptions
	// graphJSON is the request's raw graph wire form, kept so a replan can
	// decode a fresh donor copy for seeding (the registered g is mutated by
	// the replan's own synthesis and must not be shared with a donor bind).
	graphJSON []byte
	// specFP is spec.Fingerprint(), precomputed for the replan scan.
	specFP string
	// plannedFP fingerprints the cluster the cached content was actually
	// planned against — the spec at first synthesis, the drifted view after
	// a replan. Replanning is idempotent per view: a second report of the
	// same drift finds plannedFP already current and starts nothing.
	plannedFP string
}

// telemetryState is the Server's telemetry compartment.
type telemetryState struct {
	mu       sync.Mutex
	monitors map[string]*telemetry.Monitor // spec fingerprint → monitor
	sources  map[string]planSource         // cache key → what it was planned from
	replan   map[string]bool               // cache keys replanning right now

	reports          uint64
	rejects          uint64
	replans          uint64
	replansUnchanged uint64
	replanErrors     uint64
}

// recordPlanSource registers a locally synthesized entry for drift-triggered
// replanning and indexes it as a similarity donor. plannedFP is the
// fingerprint of the cluster the plan was synthesized against; graphJSON the
// request's raw graph wire form.
func (s *Server) recordPlanSource(key string, g *graph.Graph, graphJSON []byte, spec *cluster.Cluster, opts RequestOptions, plannedFP string) {
	t := &s.telemetry
	t.mu.Lock()
	src, ok := t.sources[key]
	if !ok {
		src = planSource{g: g, spec: spec, opts: opts, graphJSON: graphJSON, specFP: spec.Fingerprint()}
	}
	src.plannedFP = plannedFP
	t.sources[key] = src
	t.mu.Unlock()
	s.recordSimilarity(key, g, graphJSON, spec.Fingerprint(), optsSig(opts))
}

// monitorFor returns (creating on first use) the monitor for spec.
func (s *Server) monitorFor(spec *cluster.Cluster) (*telemetry.Monitor, string, error) {
	fp := spec.Fingerprint()
	t := &s.telemetry
	t.mu.Lock()
	defer t.mu.Unlock()
	if m, ok := t.monitors[fp]; ok {
		return m, fp, nil
	}
	m, err := telemetry.New(spec, telemetry.Config{Window: s.cfg.TelemetryWindow})
	if err != nil {
		return nil, fp, err
	}
	t.monitors[fp] = m
	return m, fp, nil
}

// handleTelemetry serves POST /v1/telemetry.
func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	var req TelemetryRequest
	if !s.decodePlanRequest(w, r, true, &req) {
		return
	}
	if len(req.Cluster) == 0 {
		s.telemetry.addReject()
		s.fail(w, true, http.StatusBadRequest, CodeBadRequest, "bad request: cluster is required")
		return
	}
	resp, err := s.ingestTelemetry(req)
	if err != nil {
		s.fail(w, true, http.StatusBadRequest, CodeBadRequest, "bad request: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// ingestTelemetry folds one report into its monitor and, past the drift
// threshold, kicks off background replans. Shared by the HTTP endpoint and
// the -telemetry-file poller.
func (s *Server) ingestTelemetry(req TelemetryRequest) (TelemetryResponse, error) {
	spec, err := cluster.Decode(bytes.NewReader(req.Cluster))
	if err != nil {
		s.telemetry.addReject()
		return TelemetryResponse{}, err
	}
	mon, fp, err := s.monitorFor(spec)
	if err != nil {
		s.telemetry.addReject()
		return TelemetryResponse{}, err
	}
	if err := mon.Ingest(telemetry.Report{Links: req.Links, Devices: req.Devices}); err != nil {
		s.telemetry.addReject()
		return TelemetryResponse{}, err
	}
	t := &s.telemetry
	t.mu.Lock()
	t.reports++
	t.mu.Unlock()
	dist := mon.Distance()
	resp := TelemetryResponse{
		Cluster:  fp,
		Distance: jsonSafeDrift(dist),
		Drifted:  s.cfg.DriftThreshold > 0 && dist > s.cfg.DriftThreshold,
		Samples:  mon.Samples(),
	}
	if resp.Drifted {
		resp.ReplansStarted = s.replanForSpec(fp, mon)
	}
	return resp, nil
}

// replanForSpec scans the plan-source registry for cached entries planned
// from the drifted spec and starts a background replan for each one whose
// content is stale relative to the live view. Returns how many replans were
// started. Per-key idempotent: an entry already replanning, or already
// planned against the current view, is skipped.
func (s *Server) replanForSpec(specFP string, mon *telemetry.Monitor) int {
	drifted := mon.Cluster()
	// The live view may be unplannable — every device down, or throttled to
	// zero. Keep serving the old plans; replanning against nothing helps
	// nobody.
	if len(drifted.Devices) == 0 || drifted.TotalFlops() <= 0 {
		return 0
	}
	driftedFP := drifted.Fingerprint()
	t := &s.telemetry
	t.mu.Lock()
	defer t.mu.Unlock()
	started := 0
	for key, src := range t.sources {
		if src.specFP != specFP || src.plannedFP == driftedFP || t.replan[key] {
			continue
		}
		old, ok := s.store.Get(key)
		if !ok {
			// Evicted since synthesis: nothing to refresh, drop the source
			// (and its similarity entry — same key, same lifetime).
			delete(t.sources, key)
			s.sim.drop([]string{key})
			continue
		}
		t.replan[key] = true
		started++
		go s.replanOne(key, src, drifted, driftedFP, old)
	}
	return started
}

// replanOne synthesizes one cached entry against the drifted cluster and
// swaps it in only after the result verifies. The old plan serves throughout:
// a failed synthesis, a failed verification, or an unchanged result all leave
// the cache exactly as it was.
//
// Each replan records its own trace — there is no client request to attach
// to — rooted at a "replan" span, with synthesize / verify / encode children
// and the replication fan-out under the encode. It lands in the same ring as
// request traces, so /v1/debug/traces answers "what did the background
// replanner just do" too.
func (s *Server) replanOne(key string, src planSource, drifted *cluster.Cluster, driftedFP string, old CachedPlan) {
	t := &s.telemetry
	defer func() {
		t.mu.Lock()
		delete(t.replan, key)
		t.mu.Unlock()
	}()
	var tr *obs.Trace
	var root *obs.Span
	if s.traces != nil {
		tr = obs.New("", s.nodeLabel)
		root = tr.Root("replan", 0)
		root.SetAttrStr("key", key)
		defer func() {
			root.End()
			s.collectTrace(tr.Finish())
		}()
	}
	ctx := context.Background()
	if s.cfg.SynthTimeBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.SynthTimeBudget)
		defer cancel()
	}
	s.syntheses.Add(1)
	ho := s.hapOptions(src.opts)
	// Seed the replan from the pre-drift plan: the graph is unchanged, so the
	// donor replay pins the whole program and the loop's work concentrates on
	// rebalancing the sharding ratios against the drifted cluster — Q is
	// structure-driven, B absorbs the performance drift. The donor binds to a
	// freshly decoded graph copy: hap.ReadProgram adopts the plan's segment
	// assignment onto the graph it is given, and src.g is about to be
	// synthesized against. A decode failure just replans cold.
	if !s.cfg.DisableSeeding && len(src.graphJSON) > 0 {
		sds := root.Child("seeded_search")
		if dg, dp, err := decodeDonor(src.graphJSON, old.Plan); err == nil {
			ho.SeedGraph, ho.SeedPlan = dg, dp
			sds.SetAttrStr("donor", key)
		}
		sds.End()
	}
	ss := root.Child("synthesize")
	p, err := s.cfg.Synthesize(obs.ContextWithSpan(ctx, ss), src.g, drifted, ho)
	if err == nil && p.Seeded {
		ss.SetAttrFloat("seed_distance", p.SeedDistance)
		s.synthIncremental.Add(1)
		s.seedDistBits.Store(math.Float64bits(p.SeedDistance))
	}
	ss.End()
	if err != nil {
		t.addReplanError()
		s.logger.Warn("replan synthesis failed", "key", key, "trace_id", traceIDOf(tr), "error", err)
		return
	}
	// Verify before swap: the drifted cluster is measurement-derived, and a
	// plan that fails execution-equivalence must never replace one that works.
	vs := root.Child("verify")
	vs.SetAttrStr("kind", "numeric")
	verr := hap.Verify(p, drifted.M(), replanVerifySeed)
	vs.End()
	if verr != nil {
		t.addReplanError()
		s.logger.Warn("replan verify failed", "key", key, "trace_id", traceIDOf(tr), "error", verr)
		return
	}
	s.recordPassStats(p.Passes)
	es := root.Child("encode")
	v, err := encodePlan(p)
	if err != nil {
		es.End()
		t.addReplanError()
		s.logger.Warn("replan encode failed", "key", key, "trace_id", traceIDOf(tr), "error", err)
		return
	}
	if bytes.Equal(v.Plan, old.Plan) {
		es.End()
		// Same bytes: no swap, no version bump, warm clients' tags stay
		// valid. Mark the source current so this view does not re-replan.
		t.mu.Lock()
		t.replansUnchanged++
		if src, ok := t.sources[key]; ok {
			src.plannedFP = driftedFP
			t.sources[key] = src
		}
		t.mu.Unlock()
		return
	}
	// The store assigns the bumped version and the new content tag; the fleet
	// path re-replicates the replacement to the ring successors exactly like
	// a fresh synthesis.
	s.storePlan(es, key, v)
	es.End()
	t.mu.Lock()
	t.replans++
	if src, ok := t.sources[key]; ok {
		src.plannedFP = driftedFP
		t.sources[key] = src
	}
	t.mu.Unlock()
}

// traceIDOf is the nil-safe trace_id log attr: "" when tracing is off.
func traceIDOf(tr *obs.Trace) string {
	if tr == nil {
		return ""
	}
	return tr.ID()
}

// StartTelemetryFile polls path every interval and feeds its contents through
// the same ingestion path as POST /v1/telemetry, mirroring the -peers-file
// pattern for environments where the probe agent writes a file instead of
// speaking HTTP. The file holds one TelemetryRequest JSON object, or a JSON
// array of them. Reloads trigger on size-or-mtime change (same rationale as
// the membership poller: mtime granularity alone misses rapid rewrites); the
// file is also applied once at start. Returns a stop function.
func (s *Server) StartTelemetryFile(path string, interval time.Duration) func() {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	stop := make(chan struct{})
	var lastMtime time.Time
	var lastSize int64
	apply := func() {
		info, err := os.Stat(path)
		if err != nil {
			return // absent file: the probe agent has not written yet
		}
		if info.ModTime() == lastMtime && info.Size() == lastSize {
			return
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return
		}
		lastMtime, lastSize = info.ModTime(), info.Size()
		for _, req := range decodeTelemetryFile(data) {
			if _, err := s.ingestTelemetry(req); err != nil {
				s.logger.Warn("telemetry file rejected", "path", path, "error", err)
			}
		}
	}
	apply()
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				apply()
			}
		}
	}()
	return func() { close(stop) }
}

// decodeTelemetryFile parses a telemetry file: a JSON array of reports or a
// single report object. Malformed content decodes to nothing.
func decodeTelemetryFile(data []byte) []TelemetryRequest {
	var many []TelemetryRequest
	if err := json.Unmarshal(data, &many); err == nil {
		return many
	}
	var one TelemetryRequest
	if err := json.Unmarshal(data, &one); err == nil && len(one.Cluster) > 0 {
		return []TelemetryRequest{one}
	}
	return nil
}

// telemetryStats assembles the /stats telemetry slice. Always non-nil: the
// counters (and the max-drift gauge derived from them) must be visible on a
// scrape before the first report arrives, or dashboards cannot tell "no
// drift" from "no telemetry wiring".
func (s *Server) telemetryStats() *TelemetryStats {
	t := &s.telemetry
	t.mu.Lock()
	monitors := make(map[string]*telemetry.Monitor, len(t.monitors))
	for fp, m := range t.monitors {
		monitors[fp] = m
	}
	ts := &TelemetryStats{
		Reports:          t.reports,
		Rejects:          t.rejects,
		Monitors:         len(t.monitors),
		Replans:          t.replans,
		ReplansUnchanged: t.replansUnchanged,
		ReplanErrors:     t.replanErrors,
	}
	t.mu.Unlock()
	// Distance() synthesizes the live view per monitor; compute outside the
	// telemetry lock so a slow materialization cannot block ingestion.
	if len(monitors) > 0 {
		ts.Drift = make(map[string]float64, len(monitors))
		for fp, m := range monitors {
			d := jsonSafeDrift(m.Distance())
			ts.Drift[fp] = d
			if d > ts.MaxDrift {
				ts.MaxDrift = d
			}
		}
	}
	return ts
}

func (t *telemetryState) addReject() {
	t.mu.Lock()
	t.rejects++
	t.mu.Unlock()
}

func (t *telemetryState) addReplanError() {
	t.mu.Lock()
	t.replanErrors++
	t.mu.Unlock()
}

// jsonSafeDrift caps +Inf (a dropped device) at math.MaxFloat64: the JSON
// encoder rejects infinities, and "largest representable drift" preserves
// every threshold comparison a consumer might make.
func jsonSafeDrift(d float64) float64 {
	if math.IsInf(d, 1) {
		return math.MaxFloat64
	}
	return d
}
