// The daemon's metrics surface: lock-free latency histograms and the
// GET /metrics handler exposing every counter in the Prometheus text
// exposition format (version 0.0.4), so a scrape target needs no sidecar.

package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds (seconds) of the request-latency
// histogram, spanning sub-millisecond cache hits through minute-scale cold
// syntheses; the implicit final bucket is +Inf.
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// histogram is a fixed-bucket latency histogram safe for concurrent
// observation: per-bucket atomic counters plus an atomic nanosecond sum —
// no locks on the request path.
type histogram struct {
	counts []atomic.Uint64 // len(latencyBuckets)+1; last = +Inf overflow
	sumNs  atomic.Int64
	total  atomic.Uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Uint64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(d time.Duration) {
	sec := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, sec) // first bucket with bound >= sec
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.total.Add(1)
}

// observeLatency records one request's wall time in its endpoint histogram.
// Used as `defer s.observeLatency(endpoint, time.Now())` at handler entry.
func (s *Server) observeLatency(endpoint string, start time.Time) {
	if h := s.latency[endpoint]; h != nil {
		h.observe(time.Since(start))
	}
}

// histogramSnapshot is one histogram read at a single point in time, so a
// scrape renders buckets, sum, and count from the same capture instead of
// re-reading live atomics per line.
type histogramSnapshot struct {
	counts []uint64
	sumNs  int64
}

func (h *histogram) snapshot() histogramSnapshot {
	snap := histogramSnapshot{counts: make([]uint64, len(h.counts))}
	for i := range h.counts {
		snap.counts[i] = h.counts[i].Load()
	}
	snap.sumNs = h.sumNs.Load()
	return snap
}

// writeHistogram emits one endpoint's histogram series: cumulative
// _bucket{le=...} lines, then _sum and _count, all from one snapshot.
func writeHistogram(b *bytes.Buffer, name, endpoint string, h histogramSnapshot) {
	cum := uint64(0)
	for i, bound := range latencyBuckets {
		cum += h.counts[i]
		fmt.Fprintf(b, "%s_bucket{endpoint=%q,le=%q} %d\n", name, endpoint, formatBound(bound), cum)
	}
	cum += h.counts[len(latencyBuckets)]
	fmt.Fprintf(b, "%s_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, endpoint, cum)
	fmt.Fprintf(b, "%s_sum{endpoint=%q} %g\n", name, endpoint, float64(h.sumNs)/1e9)
	fmt.Fprintf(b, "%s_count{endpoint=%q} %d\n", name, endpoint, cum)
}

// formatBound renders a bucket bound the way Prometheus conventionally
// writes it ("0.005", "1", "30").
func formatBound(v float64) string {
	return fmt.Sprintf("%g", v)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Snapshot everything up front — counters, histograms, phase summaries —
	// so one scrape renders a single capture moment. Without this, a
	// background replan (or any concurrent request) landing between the
	// Stats() call and a later live histogram read could make the exposition
	// disagree with itself (e.g. syntheses_total without the matching
	// phase-summary growth).
	st := s.Stats()
	hists := make(map[string]histogramSnapshot, len(s.latency))
	for ep, h := range s.latency {
		hists[ep] = h.snapshot()
	}
	var phases [len(phaseNames)]struct {
		count uint64
		sumNs int64
	}
	for i := range s.phase {
		phases[i].count = s.phase[i].count.Load()
		phases[i].sumNs = s.phase[i].sumNs.Load()
	}
	slow := s.slowRequests.Load()
	tracesHeld := s.traces.Len()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b bytes.Buffer
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	fmt.Fprintf(&b, "# HELP hap_serve_protocol_info Wire protocol version served, as an info-style gauge.\n# TYPE hap_serve_protocol_info gauge\nhap_serve_protocol_info{version=%q} 1\n", st.Protocol)
	counter("hap_serve_requests_total", "Plan requests across all endpoints.", st.Requests)
	// Per-endpoint breakdown, in fixed order for a stable exposition.
	fmt.Fprintf(&b, "# HELP hap_serve_requests_by_endpoint_total Plan requests, by wire endpoint.\n# TYPE hap_serve_requests_by_endpoint_total counter\n")
	for _, ep := range []string{EndpointLegacy, EndpointV1, EndpointV1Batch} {
		fmt.Fprintf(&b, "hap_serve_requests_by_endpoint_total{endpoint=%q} %d\n", ep, st.RequestsByEndpoint[ep])
	}
	// Request latency histograms, one series per endpoint.
	fmt.Fprintf(&b, "# HELP hap_serve_request_seconds Request wall time by wire endpoint, including rejected requests.\n# TYPE hap_serve_request_seconds histogram\n")
	for _, ep := range []string{EndpointLegacy, EndpointV1, EndpointV1Batch} {
		writeHistogram(&b, "hap_serve_request_seconds", ep, hists[ep])
	}
	// Synthesis-phase summaries, fed by completed trace spans recorded on
	// this node (fleet-merged remote spans are excluded — each node counts
	// only its own work).
	fmt.Fprintf(&b, "# HELP hap_serve_synth_phase_seconds Wall time in synthesis phases on this node, from completed trace spans.\n# TYPE hap_serve_synth_phase_seconds summary\n")
	for i, name := range phaseNames {
		fmt.Fprintf(&b, "hap_serve_synth_phase_seconds_sum{phase=%q} %g\n", name, float64(phases[i].sumNs)/1e9)
		fmt.Fprintf(&b, "hap_serve_synth_phase_seconds_count{phase=%q} %d\n", name, phases[i].count)
	}
	counter("hap_serve_slow_requests_total", "Requests at or past the -trace-slow threshold.", slow)
	gauge("hap_serve_debug_traces", "Completed traces held in the debug ring.", float64(tracesHeld))
	counter("hap_serve_cache_hits_total", "Requests served straight from the plan cache.", st.CacheHits)
	counter("hap_serve_cache_misses_total", "Requests that required (or joined) a synthesis.", st.CacheMisses)
	counter("hap_serve_syntheses_total", "Plans actually synthesized.", st.Syntheses)
	counter("hap_serve_synth_incremental_total", "Syntheses seeded from a similar cached plan (incremental synthesis).", st.SynthIncremental)
	gauge("hap_serve_synth_seed_distance", "Normalized donor distance of the most recent seeded synthesis.", st.SynthSeedDistance)
	counter("hap_serve_flight_shared_total", "Cache misses that joined an in-flight synthesis.", st.FlightShared)
	counter("hap_serve_admission_shed_total", "Cache misses shed with 429 by the synthesis admission gate.", st.AdmissionShed)
	gauge("hap_serve_inflight_synth", "Local syntheses currently executing.", float64(st.InflightSynth))
	gauge("hap_serve_max_inflight_synth", "Configured concurrent-synthesis cap (0 = unlimited).", float64(st.MaxInflightSynth))
	counter("hap_serve_errors_total", "Requests answered with an error status.", st.Errors)
	counter("hap_serve_cache_evictions_total", "Plans evicted by the LRU caps or the TTL sweep.", st.CacheEvictions)
	gauge("hap_serve_cache_entries", "Plans currently cached.", float64(st.CacheEntries))
	gauge("hap_serve_cache_bytes", "Bytes of plans currently cached.", float64(st.CacheBytes))
	gauge("hap_serve_cache_restored", "Plans reloaded from the cache directory on boot.", float64(st.CacheRestored))
	gauge("hap_serve_uptime_seconds", "Seconds since the server started.", st.UptimeSeconds)
	counter("hap_serve_pass_runs_total", "Syntheses that ran the post-synthesis pass pipeline.", st.PassRuns)
	counter("hap_serve_pass_rewrites_total", "Program rewrites applied by the pass pipeline.", st.PassRewrites)
	// Per-pass breakdown, emitted in sorted order for a stable exposition.
	fmt.Fprintf(&b, "# HELP hap_serve_pass_rewrites_by_total Program rewrites applied, by pass.\n# TYPE hap_serve_pass_rewrites_by_total counter\n")
	names := make([]string, 0, len(st.PassRewritesBy))
	for name := range st.PassRewritesBy {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "hap_serve_pass_rewrites_by_total{pass=%q} %d\n", name, st.PassRewritesBy[name])
	}
	// Telemetry and replanning series are always exposed — a dashboard must
	// distinguish "no drift" from "telemetry not wired up", so the counters
	// and the max-drift gauge exist from the first scrape.
	if ts := st.Telemetry; ts != nil {
		counter("hap_serve_telemetry_reports_total", "Probe batches accepted by /v1/telemetry or the telemetry file.", ts.Reports)
		counter("hap_serve_telemetry_rejects_total", "Probe batches rejected (unknown machine or device, malformed cluster).", ts.Rejects)
		counter("hap_serve_replans_total", "Background replans that swapped a new plan into the cache.", ts.Replans)
		counter("hap_serve_replans_unchanged_total", "Background replans whose output matched the cached plan byte-for-byte (no swap).", ts.ReplansUnchanged)
		counter("hap_serve_replan_errors_total", "Background replans that failed to synthesize or verify.", ts.ReplanErrors)
		gauge("hap_serve_telemetry_monitors", "Spec clusters with live telemetry monitors.", float64(ts.Monitors))
		gauge("hap_serve_cluster_drift_max", "Largest current drift across monitored clusters.", ts.MaxDrift)
		// Per-cluster drift, sorted by fingerprint for a stable exposition.
		fmt.Fprintf(&b, "# HELP hap_serve_cluster_drift Current drift between a monitored spec cluster and its telemetry view.\n# TYPE hap_serve_cluster_drift gauge\n")
		fps := make([]string, 0, len(ts.Drift))
		for fp := range ts.Drift {
			fps = append(fps, fp)
		}
		sort.Strings(fps)
		for _, fp := range fps {
			fmt.Fprintf(&b, "hap_serve_cluster_drift{cluster=%q} %g\n", fp, ts.Drift[fp])
		}
	}
	if fs := st.Fleet; fs != nil {
		gauge("hap_serve_fleet_peers", "Current fleet members, self included.", float64(len(fs.Peers)))
		gauge("hap_serve_fleet_peers_down", "Fleet peers currently failing health checks.", float64(fs.PeersDown))
		gauge("hap_serve_fleet_replicas", "Configured copies per entry, owner included.", float64(fs.Replicas))
		counter("hap_serve_fleet_membership_reloads_total", "Peer-list reloads that changed the ring.", fs.MembershipReloads)
		counter("hap_serve_fleet_proxied_total", "Cache misses answered by proxying to a peer.", fs.Proxied)
		counter("hap_serve_fleet_proxy_errors_total", "Failed proxy attempts to peers.", fs.ProxyErrors)
		counter("hap_serve_fleet_local_fallbacks_total", "Misses owned elsewhere synthesized locally because every peer was unreachable.", fs.LocalFallbacks)
		counter("hap_serve_fleet_forwarded_served_total", "Requests served on behalf of forwarding peers.", fs.ForwardedServed)
		counter("hap_serve_fleet_replicated_out_total", "Entries pushed to ring successors.", fs.ReplicatedOut)
		counter("hap_serve_fleet_replicate_errors_total", "Failed replication pushes.", fs.ReplicateErrors)
		counter("hap_serve_fleet_replicated_in_total", "Replicated entries accepted from peers.", fs.ReplicatedIn)
		counter("hap_serve_fleet_warmup_entries_total", "Entries received by warm-up streaming.", fs.WarmupEntries)
	}
	w.Write(b.Bytes())
}
