// The fleet layer of the daemon: what turns N independent hap-serve caches
// into one sharded, replicated plan-cache tier. The mechanics live in
// internal/fleet (ring, membership, health, intra-fleet client); this file
// is the serve-side wiring — proxy-on-miss, replication of filled entries,
// the /v1/fleet/entries exchange endpoint, warm-up, and the fleet slices of
// /stats, /metrics, and /healthz.
//
// Division of labor per request fingerprint (the cache key):
//
//   - The ring owner is the only node that synthesizes the key. Its
//     single-flight group extends the one-synthesis guarantee fleet-wide:
//     every other node proxies its misses to the owner, so a thundering
//     herd spread across the whole fleet still collapses to one search.
//   - Filled entries are pushed to the ReplicaCount-1 ring successors.
//     Replicas serve reads locally (plans are content-addressed and
//     immutable, so replica reads are never stale) and keep the key alive
//     when the owner dies.
//   - When the owner fails its health check or the proxy errors, the miss
//     falls over to the replicas; when every responsible peer is gone, the
//     node synthesizes locally — the fleet degrades to independent caches,
//     never to an outage.

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"hap/internal/fleet"
	"hap/internal/obs"
)

// replicateTimeout bounds one replication push. Pushes move already-encoded
// bytes to a loopback-or-LAN peer; seconds of budget means a wedged peer
// delays a miss response, not a request timeout.
const replicateTimeout = 5 * time.Second

// FleetStats is the fleet slice of /stats.
type FleetStats struct {
	// Self is this node's advertise URL; Peers the current membership
	// (sorted, self included); PeersDown how many peers health marks down.
	Self      string   `json:"self"`
	Peers     []string `json:"peers"`
	PeersDown int      `json:"peers_down"`
	// Replicas is the configured copies per entry, owner included.
	Replicas int `json:"replicas"`
	// MembershipReloads counts peer-list reloads that changed the ring.
	MembershipReloads uint64 `json:"membership_reloads"`
	// Proxied counts misses answered by a peer; ProxyErrors failed proxy
	// attempts (each marks the peer down); LocalFallbacks misses owned
	// elsewhere that synthesized here because every peer was unreachable.
	Proxied        uint64 `json:"proxied"`
	ProxyErrors    uint64 `json:"proxy_errors"`
	LocalFallbacks uint64 `json:"local_fallbacks"`
	// ForwardedServed counts requests served on behalf of forwarding peers —
	// the owner's side of the proxy traffic.
	ForwardedServed uint64 `json:"forwarded_served"`
	// ReplicatedOut / ReplicateErrors / ReplicatedIn count replication
	// pushes sent, failed, and accepted; WarmupEntries counts entries this
	// node received by warm-up streaming.
	ReplicatedOut   uint64 `json:"replicated_out"`
	ReplicateErrors uint64 `json:"replicate_errors"`
	ReplicatedIn    uint64 `json:"replicated_in"`
	WarmupEntries   uint64 `json:"warmup_entries"`
}

// fleetStats assembles the /stats fleet slice; nil on a standalone daemon.
func (s *Server) fleetStats() *FleetStats {
	f := s.cfg.Fleet
	if f == nil {
		return nil
	}
	return &FleetStats{
		Self:              f.Self(),
		Peers:             f.Members.Peers(),
		PeersDown:         f.Health.DownCount(),
		Replicas:          f.ReplicaCount(),
		MembershipReloads: f.Members.Reloads(),
		Proxied:           s.fleetProxied.Load(),
		ProxyErrors:       s.fleetProxyErrors.Load(),
		LocalFallbacks:    s.fleetLocalFallbacks.Load(),
		ForwardedServed:   s.fleetForwardedServed.Load(),
		ReplicatedOut:     s.fleetReplicatedOut.Load(),
		ReplicateErrors:   s.fleetReplicateErrors.Load(),
		ReplicatedIn:      s.fleetReplicatedIn.Load(),
		WarmupEntries:     s.fleetWarmupEntries.Load(),
	}
}

// fleetHealthPayload is the fleet section of /healthz.
type fleetHealthPayload struct {
	Self      string `json:"self"`
	Peers     int    `json:"peers"`
	PeersDown int    `json:"peers_down"`
}

func (s *Server) fleetHealth() *fleetHealthPayload {
	f := s.cfg.Fleet
	if f == nil {
		return nil
	}
	return &fleetHealthPayload{Self: f.Self(), Peers: f.Size(), PeersDown: f.Health.DownCount()}
}

// proxyPlanRequest forwards a missed request to the key's responsible peers:
// the owner first, then the ring successors holding replicas. The first peer
// that answers has its response — status, plan headers, body — relayed
// verbatim (plus the answering node's URL in the fleet node header), and
// peers that fail transport are marked down so the next request skips them.
// Returns false when no peer could be reached; the caller synthesizes
// locally. Peers answering an HTTP error are authoritative (the owner's 422
// is the fleet's 422) — only transport failures fall through.
//
// The forward always targets /v1/synthesize regardless of which endpoint
// the client hit: the legacy endpoint shares the cache key space, and
// relaying a v1 envelope to a legacy client only changes the error body of
// an already-failing request.
//
// Each attempt records a "proxy" span carrying the peer URL; the forward
// ships the trace ID and the span's ID in the trace header, so the peer's
// spans — returned in its response trace header — merge under this hop and
// the cross-node request reads as one tree.
func (s *Server) proxyPlanRequest(w http.ResponseWriter, r *http.Request, req Request, key, owner string, v1, binary bool, rt *requestTrace) bool {
	f := s.cfg.Fleet
	body, err := json.Marshal(req)
	if err != nil {
		return false
	}
	accept := "application/json"
	if binary {
		accept = BinaryPlanContentType + ", application/json"
	}
	// Candidates: owner first, then the replica set (minus self — we
	// already missed locally). Unhealthy peers are tried last rather than
	// skipped: health is advisory, and with every candidate marked down a
	// fresh attempt is still cheaper than a local synthesis.
	var healthy, down []string
	for _, peer := range append([]string{owner}, f.ReplicaSet(key)...) {
		if peer == f.Self() || contains(healthy, peer) || contains(down, peer) {
			continue
		}
		if f.Health.Healthy(peer) {
			healthy = append(healthy, peer)
		} else {
			down = append(down, peer)
		}
	}
	for _, peer := range append(healthy, down...) {
		ps := rt.span("proxy")
		ps.SetAttrStr("peer", peer)
		resp, err := f.Client.Forward(r.Context(), peer, "/v1/synthesize", body, accept, f.Self(), r.Header.Get("If-None-Match"), rt.forwardHeader(ps))
		if err != nil {
			if errors.Is(err, context.Canceled) || r.Context().Err() != nil {
				ps.End()
				// The client went away mid-proxy: no verdict on the peer's
				// health, and the 499 is for the log — nobody reads it.
				s.fail(w, v1, 499, CodeCanceled, "canceled: %v", r.Context().Err())
				return true
			}
			ps.SetAttrStr("error", err.Error())
			ps.End()
			f.Health.MarkDown(peer)
			s.fleetProxyErrors.Add(1)
			continue
		}
		f.Health.MarkUp(peer)
		s.fleetProxied.Add(1)
		rt.merge(resp.Header.Get(obs.SpansHeader))
		rt.setCache("proxy")
		// Retry-After rides along so an owner's admission shed reaches the
		// client intact: the proxying node relays the 429 as authoritative
		// (the owner is up and answering; its refusal is load, not failure)
		// and the client backs off exactly as if it had hit the owner.
		for _, h := range []string{"Content-Type", "X-HAP-Cache", "X-HAP-Passes", "ETag", PlanVersionHeader, "Retry-After"} {
			if v := resp.Header.Get(h); v != "" {
				w.Header().Set(h, v)
			}
		}
		w.Header().Set(fleet.NodeHeader, peer)
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		resp.Body.Close()
		ps.End()
		return true
	}
	return false
}

// maybeReplicate pushes a filled entry to the key's ring successors. Only
// the owner replicates: a node that synthesized a key it does not own (a
// forwarded request, or a fallback with the owner down) holds the entry
// locally, and the key's next miss through the owner re-establishes the
// replica set. Pushes are synchronous — milliseconds against a synthesis
// that took seconds, and the e2e invariants stay deterministic. sp, when
// non-nil, parents a "replicate" span with one child per push.
func (s *Server) maybeReplicate(sp *obs.Span, key string, v CachedPlan) {
	f := s.cfg.Fleet
	if f == nil {
		return
	}
	set := f.ReplicaSet(key)
	if len(set) < 2 || set[0] != f.Self() {
		return
	}
	rs := sp.Child("replicate")
	rs.SetAttrInt("peers", int64(len(set)-1))
	e := fleet.Entry{Key: key, Plan: v.Plan, Bin: v.Bin, Passes: v.Passes, Version: v.Version, ETag: v.ETag}
	for _, peer := range set[1:] {
		ctx, cancel := context.WithTimeout(context.Background(), replicateTimeout)
		push := rs.Child("replicate_push")
		push.SetAttrStr("peer", peer)
		err := f.Client.Replicate(ctx, peer, e)
		cancel()
		if err != nil {
			push.SetAttrStr("error", err.Error())
			push.End()
			s.fleetReplicateErrors.Add(1)
			continue
		}
		push.End()
		s.fleetReplicatedOut.Add(1)
	}
	rs.End()
}

// handleFleetEntries serves the fleet entry exchange:
//
//	GET  → stream every cached entry as NDJSON, most recently used first
//	       (a warm-up cut short mid-transfer delivered the hottest keys)
//	POST → accept one replicated entry into the local store
//
// The endpoint is mounted even on a standalone daemon so a node joining a
// fleet can warm up from a predecessor that never ran fleet-configured.
func (s *Server) handleFleetEntries(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		// ?key= fetches one entry as a JSON object — the similarity layer's
		// donor-plan fallback (fleet.Client.FetchEntry) — instead of the
		// full warm-up stream.
		if key := r.URL.Query().Get("key"); key != "" {
			v, ok := s.store.Get(key)
			if !ok {
				s.fail(w, true, http.StatusNotFound, CodeNotFound, "no entry for key %q", key)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(fleet.Entry{Key: key, Plan: v.Plan, Bin: v.Bin, Passes: v.Passes, Version: v.Version, ETag: v.ETag})
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		s.store.Range(func(key string, v CachedPlan) bool {
			if err := enc.Encode(fleet.Entry{Key: key, Plan: v.Plan, Bin: v.Bin, Passes: v.Passes, Version: v.Version, ETag: v.ETag}); err != nil {
				return false // receiver went away; stop streaming
			}
			if flusher != nil {
				// Flush per entry: an interrupted transfer still delivers
				// complete lines, so the receiver keeps a usable prefix.
				flusher.Flush()
			}
			return true
		})
	case http.MethodPost:
		var e fleet.Entry
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes))
		if err := dec.Decode(&e); err != nil {
			s.fail(w, true, http.StatusBadRequest, CodeBadRequest, "bad entry: %v", err)
			return
		}
		if e.Key == "" || len(e.Plan) == 0 {
			s.fail(w, true, http.StatusBadRequest, CodeBadRequest, "bad entry: key and plan are required")
			return
		}
		s.store.Put(e.Key, CachedPlan{Plan: e.Plan, Bin: e.Bin, Passes: e.Passes, Version: e.Version, ETag: e.ETag})
		s.fleetReplicatedIn.Add(1)
		w.WriteHeader(http.StatusNoContent)
	default:
		s.fail(w, true, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET or POST required")
	}
}

// WarmFrom streams cached entries from the first peer that answers into the
// local store — how a joining node avoids starting cold. Peers are tried in
// order (self skipped); a stream cut mid-transfer keeps every entry that
// arrived and reports the partial count alongside the error, because each
// one is a synthesis the node will not re-pay. Requires a configured fleet.
func (s *Server) WarmFrom(ctx context.Context, peers []string) (int, error) {
	f := s.cfg.Fleet
	if f == nil {
		return 0, fmt.Errorf("serve: warm-up requires a fleet configuration")
	}
	var lastErr error
	for _, peer := range peers {
		if fleet.NormalizeURL(peer) == f.Self() {
			continue
		}
		n, err := f.Client.StreamEntries(ctx, peer, func(e fleet.Entry) bool {
			s.store.Put(e.Key, CachedPlan{Plan: e.Plan, Bin: e.Bin, Passes: e.Passes, Version: e.Version, ETag: e.ETag})
			return true
		})
		s.fleetWarmupEntries.Add(uint64(n))
		if err == nil {
			return n, nil
		}
		if n > 0 {
			return n, err // partial transfer: keep what arrived
		}
		f.Health.MarkDown(peer)
		lastErr = err
	}
	return 0, lastErr
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
