package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// bp wraps raw bytes as a header-less CachedPlan for cache tests.
func bp(s string) CachedPlan { return CachedPlan{Plan: []byte(s)} }

func TestLRUEntryCapEvictsOldest(t *testing.T) {
	c := newLRUCache(2, 1<<20)
	c.add("a", bp("1"), time.Now())
	c.add("b", bp("2"), time.Now())
	c.add("c", bp("3"), time.Now())
	if _, ok := c.get("a"); ok {
		t.Error("oldest entry survived the entry cap")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("entry %q evicted prematurely", k)
		}
	}
	if entries, bytes, evictions := c.snapshot(); entries != 2 || bytes != 2 || evictions != 1 {
		t.Errorf("snapshot = (%d, %d, %d), want (2, 2, 1)", entries, bytes, evictions)
	}
}

func TestLRUByteCapEvicts(t *testing.T) {
	c := newLRUCache(100, 10)
	c.add("a", CachedPlan{Plan: make([]byte, 6)}, time.Now())
	c.add("b", CachedPlan{Plan: make([]byte, 6)}, time.Now()) // 12 > 10: "a" must go
	if _, ok := c.get("a"); ok {
		t.Error("byte cap not enforced")
	}
	if _, ok := c.get("b"); !ok {
		t.Error("newest entry evicted")
	}
}

func TestLRUGetRefreshesRecency(t *testing.T) {
	c := newLRUCache(2, 1<<20)
	c.add("a", bp("1"), time.Now())
	c.add("b", bp("2"), time.Now())
	c.get("a") // "b" is now least recent
	c.add("c", bp("3"), time.Now())
	if _, ok := c.get("a"); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := c.get("b"); ok {
		t.Error("least recently used entry survived")
	}
}

func TestLRUOversizedValueNotCached(t *testing.T) {
	c := newLRUCache(10, 4)
	c.add("big", CachedPlan{Plan: make([]byte, 5)}, time.Now())
	if _, ok := c.get("big"); ok {
		t.Error("value above the byte cap was cached")
	}
	if entries, bytes, _ := c.snapshot(); entries != 0 || bytes != 0 {
		t.Errorf("snapshot = (%d, %d), want empty", entries, bytes)
	}
}

func TestLRUUpdateExistingKey(t *testing.T) {
	c := newLRUCache(10, 1<<20)
	c.add("a", bp("1"), time.Now())
	c.add("a", bp("1234"), time.Now())
	v, ok := c.get("a")
	if !ok || string(v.Plan) != "1234" {
		t.Errorf("get after update = %q, %v", v, ok)
	}
	if entries, bytes, _ := c.snapshot(); entries != 1 || bytes != 4 {
		t.Errorf("snapshot = (%d, %d), want (1, 4)", entries, bytes)
	}
}

func TestLRUConcurrentAccess(t *testing.T) {
	// Meaningful under -race: hammer the cache from many goroutines.
	c := newLRUCache(32, 1<<20)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				k := fmt.Sprintf("k%d", (id+j)%64)
				c.add(k, bp(k), time.Now())
				c.get(k)
			}
		}(i)
	}
	wg.Wait()
	if entries, _, _ := c.snapshot(); entries > 32 {
		t.Errorf("%d entries above the cap", entries)
	}
}

func TestSingleFlightSharesResult(t *testing.T) {
	var g flightGroup
	calls := 0
	gate := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]CachedPlan, 10)
	shared := make([]bool, 10)
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, sh := g.do(context.Background(), "k", func(context.Context) (CachedPlan, error) {
				calls++ // safe: only one executor may run at a time
				<-gate
				return bp("result"), nil
			})
			if err != nil {
				t.Errorf("do: %v", err)
			}
			results[i], shared[i] = v, sh
		}(i)
	}
	close(gate)
	wg.Wait()
	if calls == 0 {
		t.Fatal("fn never ran")
	}
	nonShared := 0
	for i := range results {
		if string(results[i].Plan) != "result" {
			t.Errorf("caller %d got %q", i, results[i])
		}
		if !shared[i] {
			nonShared++
		}
	}
	if nonShared != calls {
		t.Errorf("%d executors but %d non-shared results", calls, nonShared)
	}
}

// The flight context must survive one participant's disconnect while any
// other participant is still interested, and die when the last one leaves.
func TestSingleFlightRefCountedCancellation(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	release := make(chan struct{})
	var flightCtx context.Context
	ownerCtx, cancelOwner := context.WithCancel(context.Background())
	waiterCtx, cancelWaiter := context.WithCancel(context.Background())

	ownerDone := make(chan error, 1)
	go func() {
		_, err, _ := g.do(ownerCtx, "k", func(fctx context.Context) (CachedPlan, error) {
			flightCtx = fctx
			close(started)
			select {
			case <-release:
				return bp("plan"), nil
			case <-fctx.Done():
				return CachedPlan{}, fctx.Err()
			}
		})
		ownerDone <- err
	}()
	<-started

	waiterDone := make(chan struct {
		val CachedPlan
		err error
	}, 1)
	go func() {
		v, err, _ := g.do(waiterCtx, "k", func(context.Context) (CachedPlan, error) {
			t.Error("waiter executed fn; expected to join the flight")
			return CachedPlan{}, nil
		})
		waiterDone <- struct {
			val CachedPlan
			err error
		}{v, err}
	}()
	// Give the waiter a moment to attach, then drop the owner's connection:
	// the flight must keep running for the waiter.
	time.Sleep(100 * time.Millisecond)
	cancelOwner()
	select {
	case <-flightCtx.Done():
		t.Fatal("owner disconnect cancelled the flight despite a live waiter")
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	w := <-waiterDone
	if w.err != nil || string(w.val.Plan) != "plan" {
		t.Fatalf("waiter got (%q, %v), want the owner's plan", w.val.Plan, w.err)
	}
	<-ownerDone

	// Second flight: when every participant leaves, the flight context dies.
	started2 := make(chan struct{})
	fellDown := make(chan error, 1)
	lonerCtx, cancelLoner := context.WithCancel(context.Background())
	go func() {
		_, err, _ := g.do(lonerCtx, "k2", func(fctx context.Context) (CachedPlan, error) {
			close(started2)
			<-fctx.Done()
			return CachedPlan{}, fctx.Err()
		})
		fellDown <- err
	}()
	<-started2
	cancelLoner()
	select {
	case err := <-fellDown:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("lone-client abort returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("flight context never died after the last client left")
	}
	cancelWaiter()
}
