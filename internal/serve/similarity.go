// The segment-level similarity index of the daemon: how a cache miss finds
// a donor plan for incremental synthesis. Every locally synthesized entry is
// indexed by its graph's segment sub-fingerprints (graph.SubFingerprints —
// one stable hash per content-defined chunk of the node sequence); a miss
// looks up the nearest indexed graph under the same cluster and planner
// options, and the planner seeds its search from that donor's plan. The
// index is advisory end to end: a donor that is too far away structurally
// (synth.BuildSeed enforces the distance cutoff), fails to decode, or whose
// plan has left every store simply degrades the miss to a cold synthesis.
//
// Donor plan bytes resolve local-store first, then — on a fleet node — from
// the donor key's ring owner via the fleet client: the index can briefly
// outlive local residency (a plan the store's caps rejected, or an eviction
// racing the lookup) while the owner still holds the entry.
//
// The index stores the donor graph's raw JSON, not the decoded *graph.Graph:
// hap.ReadProgram adopts the plan's segment assignment onto the graph it
// binds, and the registered graph object is shared with the replan registry —
// decoding a fresh copy per donor use keeps the lookup free of cross-request
// mutation.

package serve

import (
	"bytes"
	"context"
	"sync"

	"hap"
	"hap/internal/graph"
)

// simEntry is one indexed plan: the segment sub-fingerprints of its graph,
// the cluster and option coordinates a donor must share, and the raw graph
// JSON a donor decode starts from.
type simEntry struct {
	subs      []uint64
	clusterFP string
	optsSig   string
	graphJSON []byte
}

// similarityIndex maps cache keys to their similarity records. Entries are
// added on local synthesis and dropped when the store evicts their key
// (dropPlanRegistry), so the index is bounded by the store's own caps.
type similarityIndex struct {
	mu      sync.Mutex
	entries map[string]simEntry
}

func (x *similarityIndex) add(key string, e simEntry) {
	x.mu.Lock()
	x.entries[key] = e
	x.mu.Unlock()
}

func (x *similarityIndex) drop(keys []string) {
	x.mu.Lock()
	for _, k := range keys {
		delete(x.entries, k)
	}
	x.mu.Unlock()
}

func (x *similarityIndex) len() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return len(x.entries)
}

// nearest returns the indexed key sharing the most segment sub-fingerprints
// with subs among entries at the same cluster and options coordinates,
// excluding selfKey. Candidates sharing less than half of the target's
// segments are not worth a donor replay and are skipped ("" when none
// qualifies). Ties break toward the lexicographically smallest key so the
// choice is deterministic across scans.
func (x *similarityIndex) nearest(subs []uint64, clusterFP, optsSig, selfKey string) (string, simEntry, int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	var bestKey string
	var best simEntry
	bestShared := 0
	for key, e := range x.entries {
		if key == selfKey || e.clusterFP != clusterFP || e.optsSig != optsSig {
			continue
		}
		shared := graph.SharedSubFingerprints(subs, e.subs)
		if 2*shared < len(subs) {
			continue
		}
		if shared > bestShared || (shared == bestShared && bestKey != "" && key < bestKey) {
			bestKey, best, bestShared = key, e, shared
		}
	}
	return bestKey, best, bestShared
}

// seedDonor locates the nearest donor plan for a miss on g and decodes it
// into planner seed inputs. Every failure path returns nils — the miss
// synthesizes cold, exactly as if the index were empty.
func (s *Server) seedDonor(ctx context.Context, g *graph.Graph, clusterFP, osig, selfKey string) (donorKey string, donorG *graph.Graph, donorPlan *hap.Plan, shared int) {
	subs := graph.SubFingerprints(g)
	key, e, shared := s.sim.nearest(subs, clusterFP, osig, selfKey)
	if key == "" {
		return "", nil, nil, 0
	}
	var planBytes []byte
	if v, ok := s.store.Get(key); ok {
		planBytes = v.Plan
	} else if f := s.cfg.Fleet; f != nil {
		if owner := f.Owner(key); owner != "" && owner != f.Self() {
			if ent, err := f.Client.FetchEntry(ctx, owner, key); err == nil {
				planBytes = ent.Plan
			}
		}
	}
	if len(planBytes) == 0 {
		return "", nil, nil, 0
	}
	dg, dp, err := decodeDonor(e.graphJSON, planBytes)
	if err != nil {
		return "", nil, nil, 0
	}
	return key, dg, dp, shared
}

// decodeDonor rebinds a donor plan to a freshly decoded copy of its graph.
func decodeDonor(graphJSON, planJSON []byte) (*graph.Graph, *hap.Plan, error) {
	dg, err := graph.Decode(bytes.NewReader(graphJSON))
	if err != nil {
		return nil, nil, err
	}
	dp, err := hap.ReadProgram(bytes.NewReader(planJSON), dg)
	if err != nil {
		return nil, nil, err
	}
	return dg, dp, nil
}

// recordSimilarity indexes a locally synthesized entry for donor lookups.
func (s *Server) recordSimilarity(key string, g *graph.Graph, graphJSON []byte, clusterFP, osig string) {
	s.sim.add(key, simEntry{
		subs:      graph.SubFingerprints(g),
		clusterFP: clusterFP,
		optsSig:   osig,
		graphJSON: graphJSON,
	})
}

// dropPlanRegistry forgets evicted keys in the side registries — the replan
// source registry and the similarity index — so neither can grow past the
// store they describe. Wired as the store's eviction hook (see serve.New).
func (s *Server) dropPlanRegistry(keys []string) {
	t := &s.telemetry
	t.mu.Lock()
	for _, k := range keys {
		delete(t.sources, k)
	}
	t.mu.Unlock()
	s.sim.drop(keys)
}
