// Tests for wire protocol v2: the versioned endpoints, the structured error
// envelopes, binary content negotiation, batch coalescing, and disk
// persistence of the plan cache.

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"hap"
	"hap/internal/cluster"
	"hap/internal/dist"
	"hap/internal/graph"
	"hap/internal/theory"
)

// postPath posts a body to an arbitrary endpoint with optional Accept.
func postPath(t *testing.T, url, path string, body []byte, accept string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestV1SynthesizeAndErrorEnvelope: the versioned endpoint serves the same
// plans as the legacy one and answers failures with the {code, message}
// envelope instead of plain text.
func TestV1SynthesizeAndErrorEnvelope(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := testCluster()
	body := requestBody(t, testGraph(t), c, RequestOptions{})

	resp := postPath(t, srv.URL, "/v1/synthesize", body, "")
	plan := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-HAP-Cache") != "miss" {
		t.Fatalf("v1 first request: status %d cache %q: %s", resp.StatusCode, resp.Header.Get("X-HAP-Cache"), plan)
	}
	g2 := testGraph(t)
	p, err := hap.ReadProgram(bytes.NewReader(plan), g2)
	if err != nil {
		t.Fatalf("ReadProgram on v1 plan: %v", err)
	}
	if err := hap.Verify(p, c.M(), 7); err != nil {
		t.Errorf("v1 plan fails verification: %v", err)
	}

	// The legacy endpoint shares the cache: same content address, a hit.
	status, cacheHdr, legacyPlan := post(t, srv.URL, body)
	if status != http.StatusOK || cacheHdr != "hit" {
		t.Fatalf("legacy after v1: status %d cache %q, want 200/hit", status, cacheHdr)
	}
	if !bytes.Equal(plan, legacyPlan) {
		t.Error("legacy endpoint served different bytes than v1 for the same key")
	}

	// Errors carry the structured envelope with the right code.
	cases := []struct {
		name     string
		body     string
		wantCode string
		wantHTTP int
	}{
		{"not json", "][", CodeBadRequest, http.StatusBadRequest},
		{"missing cluster", `{"graph": {"version": 1}}`, CodeBadRequest, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postPath(t, srv.URL, "/v1/synthesize", []byte(tc.body), "")
			raw := readAll(t, resp)
			if resp.StatusCode != tc.wantHTTP {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.wantHTTP)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Errorf("error Content-Type = %q, want application/json", ct)
			}
			var env ErrorEnvelope
			if err := json.Unmarshal(raw, &env); err != nil {
				t.Fatalf("error body %q is not an envelope: %v", raw, err)
			}
			if env.Code != tc.wantCode || env.Message == "" {
				t.Errorf("envelope = %+v, want code %q with a message", env, tc.wantCode)
			}
		})
	}

	// Method errors are enveloped too.
	resp, err = http.Get(srv.URL + "/v1/synthesize")
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	var env ErrorEnvelope
	if resp.StatusCode != http.StatusMethodNotAllowed || json.Unmarshal(raw, &env) != nil || env.Code != CodeMethodNotAllowed {
		t.Errorf("GET /v1/synthesize = %d %q, want 405 with %q envelope", resp.StatusCode, raw, CodeMethodNotAllowed)
	}
}

// TestBinaryContentNegotiation: Accept: application/x-hap-plan returns the
// compact binary payload; its program section decodes with dist.DecodeBinary
// and is byte-identical to the JSON-path program. Cache hits negotiate too.
func TestBinaryContentNegotiation(t *testing.T) {
	srv := httptest.NewServer(New(Config{}).Handler())
	defer srv.Close()
	c := testCluster()
	body := requestBody(t, testGraph(t), c, RequestOptions{})

	// JSON path first (also warms the cache).
	resp := postPath(t, srv.URL, "/v1/synthesize", body, "")
	jsonPlan := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("JSON request: status %d: %s", resp.StatusCode, jsonPlan)
	}
	gJSON := testGraph(t)
	pJSON, err := hap.ReadProgram(bytes.NewReader(jsonPlan), gJSON)
	if err != nil {
		t.Fatal(err)
	}

	// Binary path: a cache hit, negotiated via Accept.
	resp = postPath(t, srv.URL, "/v1/synthesize", body, BinaryPlanContentType+", application/json;q=0.5")
	binPlan := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary request: status %d: %s", resp.StatusCode, binPlan)
	}
	if ct := resp.Header.Get("Content-Type"); ct != BinaryPlanContentType {
		t.Fatalf("binary Content-Type = %q, want %q", ct, BinaryPlanContentType)
	}
	if resp.Header.Get("X-HAP-Cache") != "hit" {
		t.Errorf("binary request missed the cache; negotiation must not fork the content address")
	}
	if len(binPlan) >= len(jsonPlan) {
		t.Errorf("binary payload (%d bytes) not smaller than JSON (%d bytes)", len(binPlan), len(jsonPlan))
	}

	// The raw payload's program section is a plain dist binary program…
	gBin := testGraph(t)
	prog, err := dist.DecodeBinary(bytes.NewReader(binPlan), gBin)
	if err != nil {
		t.Fatalf("DecodeBinary on response body: %v", err)
	}
	var wantProg, gotProg bytes.Buffer
	if err := pJSON.Program.Encode(&wantProg); err != nil {
		t.Fatal(err)
	}
	if err := prog.Encode(&gotProg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantProg.Bytes(), gotProg.Bytes()) {
		t.Error("binary program differs from the JSON-path program")
	}

	// …and the full payload reconstructs the complete plan.
	pBin, err := hap.ReadProgramBinary(bytes.NewReader(binPlan), testGraph(t))
	if err != nil {
		t.Fatalf("ReadProgramBinary: %v", err)
	}
	if err := hap.Verify(pBin, c.M(), 13); err != nil {
		t.Errorf("binary plan fails verification: %v", err)
	}
	if pBin.Cost != pJSON.Cost {
		t.Errorf("binary plan cost %v != JSON plan cost %v", pBin.Cost, pJSON.Cost)
	}

	// The legacy endpoint ignores Accept: its wire format is frozen.
	resp = postPath(t, srv.URL, "/synthesize", body, BinaryPlanContentType)
	legacy := readAll(t, resp)
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("legacy endpoint negotiated %q; its format is frozen", ct)
	}
	if !bytes.Equal(legacy, jsonPlan) {
		t.Error("legacy endpoint served different JSON than v1")
	}
}

// batchBody assembles a /v1/synthesize/batch request.
func batchBody(t *testing.T, g *graph.Graph, clusters []*cluster.Cluster, opt RequestOptions) []byte {
	t.Helper()
	var gb bytes.Buffer
	if err := g.Encode(&gb); err != nil {
		t.Fatal(err)
	}
	raws := make([]json.RawMessage, len(clusters))
	for i, c := range clusters {
		var cb bytes.Buffer
		if err := c.Encode(&cb); err != nil {
			t.Fatal(err)
		}
		raws[i] = append(json.RawMessage(nil), cb.Bytes()...)
	}
	body, err := json.Marshal(BatchRequest{Graph: gb.Bytes(), Clusters: raws, Options: opt})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestBatchCoalescing: a batch of N clusters for one graph builds the graph
// theory exactly once, returns one valid plan per cluster (identical to the
// single-endpoint plan), and caches every entry.
func TestBatchCoalescing(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	clusters := []*cluster.Cluster{
		testCluster(),
		cluster.FromGPUs(cluster.DefaultNetwork(),
			cluster.MachineSpec{Type: cluster.A100, GPUs: 1},
			cluster.MachineSpec{Type: cluster.P100, GPUs: 1}),
		testCluster(), // duplicate of the first: one search, answered twice
	}
	body := batchBody(t, testGraph(t), clusters, RequestOptions{})

	before := theory.Builds()
	resp := postPath(t, srv.URL, "/v1/synthesize/batch", body, "")
	raw := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, raw)
	}
	if built := theory.Builds() - before; built != 1 {
		t.Errorf("batch over %d clusters built the theory %d times, want once", len(clusters), built)
	}

	var br BatchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatalf("decode batch response: %v", err)
	}
	if len(br.Plans) != len(clusters) {
		t.Fatalf("batch returned %d plans for %d clusters", len(br.Plans), len(clusters))
	}
	for i, bp := range br.Plans {
		if bp.Cache != "miss" {
			t.Errorf("plan %d cache = %q, want miss on a cold server", i, bp.Cache)
		}
		p, err := hap.ReadProgram(bytes.NewReader(bp.Plan), testGraph(t))
		if err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		if err := hap.Verify(p, clusters[i].M(), int64(3+i)); err != nil {
			t.Errorf("plan %d fails verification: %v", i, err)
		}
	}
	// The duplicate cluster received the same plan without a second search.
	if !bytes.Equal(br.Plans[0].Plan, br.Plans[2].Plan) {
		t.Error("duplicate clusters in one batch got different plans")
	}
	if st := s.Stats(); st.Syntheses != 2 {
		t.Errorf("batch ran %d syntheses, want 2 (3 clusters, 1 duplicate)", st.Syntheses)
	}

	// A batch plan equals the single-endpoint plan for the same cluster
	// (modulo whitespace: marshalling the batch response compacts the
	// embedded RawMessage).
	single := requestBody(t, testGraph(t), clusters[1], RequestOptions{})
	resp = postPath(t, srv.URL, "/v1/synthesize", single, "")
	singlePlan := readAll(t, resp)
	if resp.Header.Get("X-HAP-Cache") != "hit" {
		t.Errorf("single request after batch missed the cache")
	}
	var compactSingle, compactBatch bytes.Buffer
	if err := json.Compact(&compactSingle, singlePlan); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&compactBatch, br.Plans[1].Plan); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(compactSingle.Bytes(), compactBatch.Bytes()) {
		t.Error("batch plan differs from the single-endpoint plan for the same cluster")
	}

	// Re-running the whole batch is all hits, no new synthesis.
	resp = postPath(t, srv.URL, "/v1/synthesize/batch", body, "")
	raw = readAll(t, resp)
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatal(err)
	}
	for i, bp := range br.Plans {
		if bp.Cache != "hit" {
			t.Errorf("repeat batch plan %d cache = %q, want hit", i, bp.Cache)
		}
	}
	if st := s.Stats(); st.Syntheses != 2 {
		t.Errorf("repeat batch re-synthesized (total %d, want 2)", st.Syntheses)
	}
}

// A batch where one cluster fails (e.g. starved under the shared budget)
// still caches the plans that completed: the request errors, but a retry —
// or a single request for a finished cluster — does not re-pay its work.
func TestBatchPartialFailureCachesSuccesses(t *testing.T) {
	g := testGraph(t)
	failErr := errors.New("cluster 2 starved")
	s := New(Config{
		PlanBatch: func(ctx context.Context, gr *graph.Graph, cs []*cluster.Cluster, opt hap.Options) ([]*hap.Plan, error) {
			plans := make([]*hap.Plan, len(cs))
			for i, c := range cs[:len(cs)-1] { // last cluster "starves"
				p, err := hap.NewPlanner(c, hap.WithOptions(opt)).Plan(ctx, gr)
				if err != nil {
					return nil, err
				}
				plans[i] = p
			}
			return plans, failErr
		},
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	clusters := []*cluster.Cluster{
		testCluster(),
		cluster.FromGPUs(cluster.DefaultNetwork(),
			cluster.MachineSpec{Type: cluster.A100, GPUs: 1},
			cluster.MachineSpec{Type: cluster.P100, GPUs: 1}),
	}

	resp := postPath(t, srv.URL, "/v1/synthesize/batch", batchBody(t, g, clusters, RequestOptions{}), "")
	raw := readAll(t, resp)
	var env ErrorEnvelope
	if resp.StatusCode != http.StatusUnprocessableEntity || json.Unmarshal(raw, &env) != nil || env.Code != CodeSynthesisFailed {
		t.Fatalf("partial batch = %d %q, want 422 synthesis_failed envelope", resp.StatusCode, raw)
	}

	// The cluster that completed is cached: a single request hits.
	resp = postPath(t, srv.URL, "/v1/synthesize", requestBody(t, testGraph(t), clusters[0], RequestOptions{}), "")
	readAll(t, resp)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-HAP-Cache") != "hit" {
		t.Errorf("completed cluster after failed batch: status %d cache %q, want 200/hit",
			resp.StatusCode, resp.Header.Get("X-HAP-Cache"))
	}
}

// TestCachePersistence: with CacheDir set, plans survive a server restart —
// the second server reports the restored count and serves hits without
// re-synthesizing.
func TestCachePersistence(t *testing.T) {
	dir := t.TempDir()
	syntheses := 0
	count := func(ctx context.Context, g *graph.Graph, c *cluster.Cluster, opt hap.Options) (*hap.Plan, error) {
		syntheses++
		return hap.NewPlanner(c, hap.WithOptions(opt)).Plan(ctx, g)
	}

	s1 := New(Config{CacheDir: dir, Synthesize: count})
	srv1 := httptest.NewServer(s1.Handler())
	c := testCluster()
	body := requestBody(t, testGraph(t), c, RequestOptions{})
	status, _, plan1 := post(t, srv1.URL, body)
	if status != http.StatusOK {
		t.Fatalf("first server: status %d: %s", status, plan1)
	}
	srv1.Close()
	if syntheses != 1 {
		t.Fatalf("first server ran %d syntheses, want 1", syntheses)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache dir holds %d files (err %v), want 1", len(entries), err)
	}

	// A fresh server over the same directory restores the plan…
	s2 := New(Config{CacheDir: dir, Synthesize: count})
	srv2 := httptest.NewServer(s2.Handler())
	defer srv2.Close()
	if st := s2.Stats(); st.CacheRestored != 1 || st.CacheEntries != 1 {
		t.Errorf("restarted server stats = restored %d, entries %d, want 1/1", st.CacheRestored, st.CacheEntries)
	}
	status, cacheHdr, plan2 := post(t, srv2.URL, body)
	if status != http.StatusOK || cacheHdr != "hit" {
		t.Fatalf("restarted server: status %d cache %q, want 200/hit", status, cacheHdr)
	}
	if syntheses != 1 {
		t.Errorf("restarted server re-synthesized (%d total)", syntheses)
	}
	if !bytes.Equal(plan1, plan2) {
		t.Error("restored plan differs from the original")
	}

	// …including the binary form for content negotiation.
	resp := postPath(t, srv2.URL, "/v1/synthesize", body, BinaryPlanContentType)
	bin := readAll(t, resp)
	if ct := resp.Header.Get("Content-Type"); ct != BinaryPlanContentType {
		t.Fatalf("restored binary Content-Type = %q", ct)
	}
	if _, err := hap.ReadProgramBinary(bytes.NewReader(bin), testGraph(t)); err != nil {
		t.Errorf("restored binary plan: %v", err)
	}

	// /stats and /metrics surface the restored count.
	if st := getStats(t, srv2.URL); st.CacheRestored != 1 {
		t.Errorf("/stats cache_restored = %d, want 1", st.CacheRestored)
	}
}

// TestMetricsV2 checks the protocol-version info metric and the
// per-endpoint request counters in the exposition.
func TestMetricsV2(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	body := requestBody(t, testGraph(t), testCluster(), RequestOptions{})
	if status, _, b := post(t, srv.URL, body); status != http.StatusOK { // legacy
		t.Fatalf("legacy request: %d: %s", status, b)
	}
	resp := postPath(t, srv.URL, "/v1/synthesize", body, "") // v1 (cache hit)
	readAll(t, resp)

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(readAll(t, mresp))
	for _, want := range []string{
		`hap_serve_protocol_info{version="v2"} 1`,
		`hap_serve_requests_by_endpoint_total{endpoint="legacy"} 1`,
		`hap_serve_requests_by_endpoint_total{endpoint="v1"} 1`,
		`hap_serve_requests_by_endpoint_total{endpoint="v1_batch"} 0`,
		"hap_serve_requests_total 2",
		"# TYPE hap_serve_cache_restored gauge",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}
