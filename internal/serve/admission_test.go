package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hap"
	"hap/internal/cluster"
	"hap/internal/graph"
)

// altCluster is a second cluster shape, giving tests a second cache key for
// the same graph.
func altCluster() *cluster.Cluster {
	return cluster.FromGPUs(cluster.DefaultNetwork(),
		cluster.MachineSpec{Type: cluster.A100, GPUs: 1},
		cluster.MachineSpec{Type: cluster.P100, GPUs: 1})
}

// thirdCluster is a third distinct cache key.
func thirdCluster() *cluster.Cluster {
	return cluster.FromGPUs(cluster.DefaultNetwork(),
		cluster.MachineSpec{Type: cluster.P100, GPUs: 2})
}

// TestAdmissionShedsExcessMisses pins the full admission contract with one
// synthesis slot: while a synthesis occupies it, (1) a miss on a different
// key is shed with 429, the overloaded envelope code, and the configured
// Retry-After; (2) a cache hit is served normally; (3) a miss on the SAME
// key joins the in-flight flight instead of being shed. Afterwards the shed
// key synthesizes fine — shedding rejected a request, not the key.
func TestAdmissionShedsExcessMisses(t *testing.T) {
	var hold sync.Map // cluster fingerprint → chan to block on
	started := make(chan struct{}, 1)
	cfg := Config{
		MaxInflightSynth: 1,
		ShedRetryAfter:   3 * time.Second,
		Synthesize: func(ctx context.Context, g *graph.Graph, c *cluster.Cluster, opt hap.Options) (*hap.Plan, error) {
			if ch, ok := hold.Load(c.Fingerprint()); ok {
				started <- struct{}{}
				select {
				case <-ch.(chan struct{}):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return hap.Parallelize(g, c, opt)
		},
	}
	s := New(cfg)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	g := testGraph(t)
	slow, fast, warm := testCluster(), altCluster(), thirdCluster()

	// Warm one key while the gate is idle: its hits must never shed.
	warmBody := requestBody(t, g, warm, RequestOptions{})
	if status, _, b := post(t, srv.URL, warmBody); status != http.StatusOK {
		t.Fatalf("warming key: status %d: %s", status, b)
	}

	// Occupy the only slot with a deliberately held synthesis.
	release := make(chan struct{})
	hold.Store(slow.Fingerprint(), release)
	slowBody := requestBody(t, g, slow, RequestOptions{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if status, _, b := post(t, srv.URL, slowBody); status != http.StatusOK {
			t.Errorf("held synthesis: status %d: %s", status, b)
		}
	}()
	<-started

	// (1) A different-key miss is shed: 429, overloaded, Retry-After.
	resp, err := http.Post(srv.URL+"/v1/synthesize", "application/json",
		bytes.NewReader(requestBody(t, g, fast, RequestOptions{})))
	if err != nil {
		t.Fatal(err)
	}
	shedBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("miss at capacity: status %d, want 429: %s", resp.StatusCode, shedBody)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", got)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(shedBody, &env); err != nil || env.Code != CodeOverloaded {
		t.Errorf("shed envelope = %s, want code %q", shedBody, CodeOverloaded)
	}

	// (2) A cache hit sails through the full gate.
	if status, cacheHdr, b := post(t, srv.URL, warmBody); status != http.StatusOK || cacheHdr != "hit" {
		t.Errorf("hit at capacity: status %d, cache %q: %s", status, cacheHdr, b)
	}

	// (3) A same-key miss joins the flight rather than shedding: release the
	// held synthesis while the joiner waits; both get the plan.
	joined := make(chan int, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		status, _, _ := post(t, srv.URL, slowBody)
		joined <- status
	}()
	// Give the joiner time to reach the flight (it cannot signal precisely;
	// a late join just becomes a cache hit, which also must not shed).
	time.Sleep(50 * time.Millisecond)
	close(release)
	if status := <-joined; status != http.StatusOK {
		t.Errorf("same-key join at capacity: status %d, want 200", status)
	}
	wg.Wait()

	// The shed key was rejected, not poisoned: with the slot free it plans.
	hold.Delete(slow.Fingerprint())
	if status, _, b := post(t, srv.URL, requestBody(t, g, fast, RequestOptions{})); status != http.StatusOK {
		t.Errorf("shed key after release: status %d: %s", status, b)
	}

	st := s.Stats()
	if st.AdmissionShed != 1 {
		t.Errorf("AdmissionShed = %d, want 1", st.AdmissionShed)
	}
	if st.MaxInflightSynth != 1 {
		t.Errorf("MaxInflightSynth = %d, want 1", st.MaxInflightSynth)
	}
	if st.InflightSynth != 0 {
		t.Errorf("InflightSynth = %d after quiesce, want 0", st.InflightSynth)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"hap_serve_admission_shed_total 1",
		"hap_serve_max_inflight_synth 1",
		"hap_serve_inflight_synth 0",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestAdmissionBatch: a batch needing synthesis sheds as a whole at
// capacity; an all-hit batch is served even with the gate full.
func TestAdmissionBatch(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	var holdFP string
	cfg := Config{
		MaxInflightSynth: 1,
		Synthesize: func(ctx context.Context, g *graph.Graph, c *cluster.Cluster, opt hap.Options) (*hap.Plan, error) {
			if c.Fingerprint() == holdFP {
				started <- struct{}{}
				select {
				case <-release:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return hap.Parallelize(g, c, opt)
		},
	}
	s := New(cfg)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	g := testGraph(t)
	slow, hot := testCluster(), thirdCluster()
	holdFP = slow.Fingerprint()

	// Warm one key, then occupy the slot.
	if status, _, b := post(t, srv.URL, requestBody(t, g, hot, RequestOptions{})); status != http.StatusOK {
		t.Fatalf("warming: status %d: %s", status, b)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		post(t, srv.URL, requestBody(t, g, slow, RequestOptions{}))
	}()
	<-started

	batchFor := func(cs ...*cluster.Cluster) []byte {
		t.Helper()
		var gb bytes.Buffer
		if err := g.Encode(&gb); err != nil {
			t.Fatal(err)
		}
		raws := make([]json.RawMessage, len(cs))
		for i, c := range cs {
			var cb bytes.Buffer
			if err := c.Encode(&cb); err != nil {
				t.Fatal(err)
			}
			raws[i] = cb.Bytes()
		}
		body, err := json.Marshal(BatchRequest{Graph: gb.Bytes(), Clusters: raws})
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	postBatch := func(body []byte) (int, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/synthesize/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	// All-hit batch: served while the gate is full.
	if status, b := postBatch(batchFor(hot)); status != http.StatusOK {
		t.Errorf("all-hit batch at capacity: status %d: %s", status, b)
	}
	// A batch needing a synthesis sheds as a whole.
	if status, b := postBatch(batchFor(hot, altCluster())); status != http.StatusTooManyRequests {
		t.Errorf("miss batch at capacity: status %d, want 429: %s", status, b)
	}
	close(release)
	<-done

	if st := s.Stats(); st.AdmissionShed != 1 {
		t.Errorf("AdmissionShed = %d, want 1", st.AdmissionShed)
	}
}

// TestBatchBinaryNegotiation: Accept: application/x-hap-plan on the batch
// endpoint yields per-result binary payloads (base64 in the JSON envelope)
// that decode with ReadProgramBinary to the same plans the JSON form
// carries — on both the miss path and the hit path.
func TestBatchBinaryNegotiation(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	g := testGraph(t)
	clusters := []*cluster.Cluster{testCluster(), altCluster()}

	var gb bytes.Buffer
	if err := g.Encode(&gb); err != nil {
		t.Fatal(err)
	}
	raws := make([]json.RawMessage, len(clusters))
	for i, c := range clusters {
		var cb bytes.Buffer
		if err := c.Encode(&cb); err != nil {
			t.Fatal(err)
		}
		raws[i] = cb.Bytes()
	}
	body, err := json.Marshal(BatchRequest{Graph: gb.Bytes(), Clusters: raws})
	if err != nil {
		t.Fatal(err)
	}

	postBatch := func(accept string) BatchResponse {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/synthesize/batch", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Accept", accept)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			t.Fatalf("batch status %d: %s", resp.StatusCode, raw)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("batch envelope Content-Type = %q, want JSON", ct)
		}
		var br BatchResponse
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatal(err)
		}
		if len(br.Plans) != len(clusters) {
			t.Fatalf("%d results for %d clusters", len(br.Plans), len(clusters))
		}
		return br
	}

	// Miss path, binary negotiated: every result carries bin, no plan.
	bin := postBatch(BinaryPlanContentType)
	for i, p := range bin.Plans {
		if p.Cache != "miss" {
			t.Errorf("result %d cache = %q, want miss", i, p.Cache)
		}
		if len(p.Bin) == 0 || len(p.Plan) != 0 {
			t.Fatalf("result %d: bin %d bytes, plan %d bytes; want binary only", i, len(p.Bin), len(p.Plan))
		}
	}
	// Hit path, JSON: same plans in the JSON field.
	js := postBatch("application/json")
	for i, p := range js.Plans {
		if p.Cache != "hit" {
			t.Errorf("repeat result %d cache = %q, want hit", i, p.Cache)
		}
		if len(p.Plan) == 0 || len(p.Bin) != 0 {
			t.Fatalf("repeat result %d: plan %d bytes, bin %d bytes; want JSON only", i, len(p.Plan), len(p.Bin))
		}
	}
	// The two encodings decode to the same programs.
	for i := range clusters {
		g2 := testGraph(t)
		fromBin, err := hap.ReadProgramBinary(bytes.NewReader(bin.Plans[i].Bin), g2)
		if err != nil {
			t.Fatalf("result %d: decoding binary payload: %v", i, err)
		}
		fromJSON, err := hap.ReadProgram(bytes.NewReader(js.Plans[i].Plan), testGraph(t))
		if err != nil {
			t.Fatalf("result %d: decoding JSON payload: %v", i, err)
		}
		if fromBin.Program.String() != fromJSON.Program.String() {
			t.Errorf("result %d: binary and JSON payloads decode to different programs", i)
		}
	}
	// Hit path, binary: cached entries serve their binary form too.
	binHit := postBatch(BinaryPlanContentType)
	for i, p := range binHit.Plans {
		if p.Cache != "hit" || len(p.Bin) == 0 {
			t.Errorf("binary hit result %d: cache %q, %d bin bytes", i, p.Cache, len(p.Bin))
		}
	}
}
