// Package serve implements the hap-serve plan-cache daemon: an HTTP service
// that accepts a (graph, cluster) pair in the JSON wire formats, synthesizes
// a distributed plan with the full HAP pipeline, and returns the encoded
// plan — memoizing results in a concurrency-safe, content-addressed LRU
// cache keyed by (graph fingerprint, cluster fingerprint, options).
//
// Synthesis is the expensive step (seconds to minutes at model scale), so
// the cache is the point of the daemon: a fleet of trainers asking for the
// same (model, cluster) pair pays for one synthesis. Concurrent identical
// requests are single-flighted — they block on the one in-flight synthesis
// instead of each starting their own — and the synthesis runs under a
// reference-counted flight context: it is cancelled when the last interested
// client disconnects, never by one impatient client among many.
//
// The HTTP surface is separated from plan storage by the PlanStore
// interface (store.go): handlers decode, route, and encode; everything that
// remembers a plan lives behind Get/Put/Range/Stats. With a
// fleet.Fleet configured (fleet.go), the daemon is one node of a sharded,
// replicated cache tier: request fingerprints are consistent-hash routed to
// an owner peer, misses proxy to the owner (whose single-flight group makes
// a fleet-wide thundering herd synthesize exactly once), filled entries
// replicate to ring successors, and a joining node warms up by streaming a
// peer's entries.
//
// Wire protocol v2 (see DESIGN.md for the full specification):
//
//	POST /v1/synthesize        {"graph", "cluster", "options"} → plan
//	POST /v1/synthesize/batch  {"graph", "clusters": [...], "options"} → plans
//	POST /synthesize           legacy unversioned endpoint (deprecated)
//	GET  /v1/fleet/entries     NDJSON stream of cached entries (warm-up)
//	POST /v1/fleet/entries     accept one replicated entry
//	GET  /healthz              liveness + protocol version, JSON
//	GET  /stats                cache and request counters, JSON
//	GET  /metrics              counters + latency histograms, Prometheus text
//
// The v1 endpoints answer errors with a structured JSON envelope
// {"code", "message"} and honor content negotiation: a request with
// Accept: application/x-hap-plan receives the compact binary plan encoding
// (hap.WriteProgramBinary) instead of JSON. The batch endpoint plans one
// graph against many clusters, building the graph theory once (request
// coalescing); its response envelope is always JSON, with per-result plan
// payloads in the negotiated encoding (base64 binary under Accept:
// application/x-hap-plan). The legacy endpoint keeps its original
// plain-text errors and JSON-only responses.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hap"
	"hap/internal/cluster"
	"hap/internal/fleet"
	"hap/internal/graph"
	"hap/internal/obs"
	"hap/internal/telemetry"
)

// ProtocolVersion names the serve wire protocol implemented by this build,
// reported by /healthz and /metrics.
const ProtocolVersion = "v2"

// BinaryPlanContentType is the media type of the compact binary plan
// encoding, requested via the Accept header and returned as Content-Type.
const BinaryPlanContentType = "application/x-hap-plan"

// PlanVersionHeader carries the served plan's monotonic version (see
// CachedPlan.Version) on every plan response, including 304s.
const PlanVersionHeader = "X-HAP-Plan-Version"

// SeedDistanceHeader carries the donor's normalized structural distance on a
// miss response whose synthesis was seeded from a similar cached plan
// (incremental synthesis). Absent on cache hits and cold syntheses.
const SeedDistanceHeader = "X-HAP-Seed-Distance"

// Endpoint labels for the per-endpoint request counters and latency
// histograms.
const (
	EndpointLegacy  = "legacy"
	EndpointV1      = "v1"
	EndpointV1Batch = "v1_batch"
)

// Defaults for Config zero values.
const (
	DefaultMaxCacheEntries = 1024
	DefaultMaxCacheBytes   = 256 << 20 // plans are ~100 KB at model scale
	DefaultMaxRequestBytes = 64 << 20
	// DefaultSynthTimeBudget bounds one request's synthesis wall-clock time
	// (the whole Q↔B loop, not just one search) so a single adversarial
	// request cannot hold a serve worker for minutes — the synthesizer's
	// expansion limits bound memory, not time. An expired budget serves the
	// best plan the loop found, or fails the request when none completed.
	DefaultSynthTimeBudget = 60 * time.Second
	// DefaultShedRetryAfter is the Retry-After hint on admission-shed 429
	// responses: long enough for a synthesis slot to plausibly free, short
	// enough that a warm retry is cheap.
	DefaultShedRetryAfter = time.Second
)

// Config tunes a Server.
type Config struct {
	// MaxCacheEntries caps the number of cached plans (0 = default).
	MaxCacheEntries int
	// MaxCacheBytes caps the total bytes of cached plans (0 = default).
	MaxCacheBytes int64
	// MaxRequestBytes caps the accepted request body size (0 = default).
	MaxRequestBytes int64
	// SynthTimeBudget bounds each request's synthesis wall-clock time
	// (0 = DefaultSynthTimeBudget; negative = unlimited).
	SynthTimeBudget time.Duration
	// SynthWorkers bounds each synthesis's beam parallelism (0 = GOMAXPROCS).
	// A server-level knob, not a request option, and not part of the cache
	// key: any worker count emits a byte-identical plan, so it trades only
	// latency under load, never cached content.
	SynthWorkers int
	// CacheDir enables write-through disk persistence of the plan cache:
	// every cached plan is also written to a content-addressed file under
	// this directory, evictions delete their file, and a restarting server
	// reloads the directory into the in-memory cache in mtime (LRU) order
	// ("" = memory only).
	CacheDir string
	// CacheTTL expires cached plans (and their persisted files) older than
	// this age: files past the TTL are deleted instead of restored on boot,
	// and a background sweep evicts aged entries so a long-lived CacheDir
	// does not grow unbounded under a slowly-rotating working set
	// (0 = never expire).
	CacheTTL time.Duration
	// DriftThreshold is the cluster drift (cluster.Distance between a spec
	// and its telemetry-materialized live view) past which cached plans for
	// that spec replan in the background (0 = DefaultDriftThreshold;
	// negative = replanning disabled, telemetry still ingested).
	DriftThreshold float64
	// TelemetryWindow is the staleness horizon of probe estimates: an
	// estimate with no sample newer than this reverts to the spec value
	// (0 = the telemetry package default, 5 minutes).
	TelemetryWindow time.Duration
	// MaxInflightSynth bounds the number of concurrently executing local
	// syntheses (0 = unlimited). When every slot is busy, cache misses that
	// would start a new synthesis are shed with 429 Too Many Requests and a
	// Retry-After header instead of queueing — cache hits are always served
	// (the store lookup precedes the gate), and misses that can join an
	// already-running flight for the same key still join it. The gate bounds
	// the daemon's memory and CPU under a miss storm: plan search is the
	// expensive step, and N unbounded concurrent searches is the only way
	// this process OOMs.
	MaxInflightSynth int
	// ShedRetryAfter is the Retry-After hint on shed responses
	// (0 = DefaultShedRetryAfter).
	ShedRetryAfter time.Duration
	// DisableSeeding turns off incremental synthesis (the -no-seed flag):
	// cache misses always synthesize cold instead of seeding their search
	// from the nearest similar cached plan, and drift replans stop reusing
	// the pre-drift plan as a seed. Every served plan passes the same
	// structural validation either way; the knob exists for A/B timing
	// comparisons and debugging.
	DisableSeeding bool
	// Fleet, when non-nil, makes this daemon one node of a sharded,
	// replicated plan-cache fleet (see fleet.go and internal/fleet).
	Fleet *fleet.Fleet
	// TraceRing caps the bounded ring of completed request traces served by
	// GET /v1/debug/traces (0 = DefaultTraceRing; negative = tracing off,
	// the request path pays nothing).
	TraceRing int
	// TraceSlow logs any traced request slower than this with its full span
	// breakdown as a structured slog line (0 = off; negative = log every
	// request, the firehose mode tests and debugging sessions use).
	TraceSlow time.Duration
	// Logger receives the daemon's structured log lines (nil = slog.Default).
	Logger *slog.Logger
	// Synthesize overrides the planner, for tests. Nil means a hap.Planner
	// driven by the request context.
	Synthesize func(context.Context, *graph.Graph, *cluster.Cluster, hap.Options) (*hap.Plan, error)
	// PlanBatch overrides the batch planner, for tests. Nil means
	// hap.Planner.PlanBatch, which builds the graph theory once for the
	// whole batch.
	PlanBatch func(context.Context, *graph.Graph, []*cluster.Cluster, hap.Options) ([]*hap.Plan, error)
}

// Request is the body of POST /v1/synthesize (and the legacy /synthesize): a
// graph and a cluster in their JSON wire formats (graph.Encode,
// cluster.Encode), plus planner options.
type Request struct {
	Graph   json.RawMessage `json:"graph"`
	Cluster json.RawMessage `json:"cluster"`
	Options RequestOptions  `json:"options"`
}

// BatchRequest is the body of POST /v1/synthesize/batch: one graph planned
// against every listed cluster, with the graph theory built once.
type BatchRequest struct {
	Graph    json.RawMessage   `json:"graph"`
	Clusters []json.RawMessage `json:"clusters"`
	Options  RequestOptions    `json:"options"`
}

// BatchResponse is the JSON answer of the batch endpoint: one entry per
// requested cluster, in request order.
type BatchResponse struct {
	Plans []BatchPlanResult `json:"plans"`
}

// BatchPlanResult is one cluster's plan in a BatchResponse.
type BatchPlanResult struct {
	// Cache is "hit" or "miss", mirroring the X-HAP-Cache header.
	Cache string `json:"cache"`
	// Plan is the plan JSON (hap.Plan.WriteProgram form). Empty when the
	// request negotiated the binary encoding — Bin carries the plan instead.
	Plan json.RawMessage `json:"plan,omitempty"`
	// Bin is the compact binary plan payload (hap.Plan.WriteProgramBinary,
	// base64 inside the JSON envelope), populated instead of Plan when the
	// request sent Accept: application/x-hap-plan. The envelope itself stays
	// JSON either way — only the per-result payload encoding negotiates.
	Bin []byte `json:"bin,omitempty"`
	// Passes mirrors the X-HAP-Passes header ("" = pipeline disabled).
	Passes string `json:"passes,omitempty"`
	// Version and ETag mirror the X-HAP-Plan-Version and ETag headers of the
	// single-plan endpoints (zero/empty on a plan that was synthesized but
	// rejected by the store caps).
	Version uint64 `json:"version,omitempty"`
	ETag    string `json:"etag,omitempty"`
}

// ErrorEnvelope is the structured error body of the v1 endpoints.
type ErrorEnvelope struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error codes of the v1 envelopes.
const (
	CodeBadRequest       = "bad_request"
	CodeTooLarge         = "request_too_large"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeSynthesisFailed  = "synthesis_failed"
	CodeCanceled         = "canceled"
	CodeNotFound         = "not_found"
	CodeOverloaded       = "overloaded"
)

// RequestOptions mirrors hap.Options on the wire.
type RequestOptions struct {
	Segments      int  `json:"segments,omitempty"`
	MaxIterations int  `json:"max_iterations,omitempty"`
	ExactSearch   bool `json:"exact_search,omitempty"`
	// Optimize toggles the post-synthesis pass pipeline (collective fusion,
	// collective CSE, DCE). Omitted means true: served plans are optimized
	// by default.
	Optimize *bool `json:"optimize,omitempty"`
}

// optimize resolves the tri-state Optimize field (nil = on).
func (o RequestOptions) optimize() bool {
	return o.Optimize == nil || *o.Optimize
}

// Stats is the GET /stats payload.
type Stats struct {
	Protocol    string `json:"protocol"`     // wire protocol version
	Requests    uint64 `json:"requests"`     // plan requests, all endpoints
	CacheHits   uint64 `json:"cache_hits"`   // served straight from cache
	CacheMisses uint64 `json:"cache_misses"` // required (or joined) a synthesis
	Syntheses   uint64 `json:"syntheses"`    // plans actually synthesized
	// SynthIncremental counts syntheses that ran seeded from a donor plan
	// (incremental synthesis); SynthSeedDistance is the most recent seeded
	// search's normalized donor distance.
	SynthIncremental  uint64  `json:"synth_incremental"`
	SynthSeedDistance float64 `json:"synth_seed_distance"`
	FlightShared      uint64  `json:"flight_shared"` // misses that joined an in-flight synthesis
	// AdmissionShed counts misses shed with 429 by the synthesis admission
	// gate; InflightSynth is the number of currently executing local
	// syntheses; MaxInflightSynth echoes the configured cap (0 = unlimited).
	AdmissionShed    uint64  `json:"admission_shed"`
	InflightSynth    int64   `json:"inflight_synth"`
	MaxInflightSynth int     `json:"max_inflight_synth"`
	Errors           uint64  `json:"errors"`          // requests answered with an error status
	CacheEntries     int     `json:"cache_entries"`   // plans currently cached
	CacheBytes       int64   `json:"cache_bytes"`     // bytes currently cached
	CacheEvictions   uint64  `json:"cache_evictions"` // plans evicted by the LRU caps or the TTL sweep
	CacheRestored    int     `json:"cache_restored"`  // plans reloaded from CacheDir on boot
	UptimeSeconds    float64 `json:"uptime_seconds"`
	// RequestsByEndpoint breaks Requests down by wire endpoint
	// (legacy, v1, v1_batch).
	RequestsByEndpoint map[string]uint64 `json:"requests_by_endpoint"`
	// PassRuns counts syntheses that ran the post-synthesis pass pipeline;
	// PassRewrites totals the rewrites those pipelines applied, broken down
	// by pass in PassRewritesBy.
	PassRuns       uint64            `json:"pass_runs"`
	PassRewrites   uint64            `json:"pass_rewrites"`
	PassRewritesBy map[string]uint64 `json:"pass_rewrites_by,omitempty"`
	// Fleet reports the fleet-layer counters; nil on a standalone daemon.
	Fleet *FleetStats `json:"fleet,omitempty"`
	// Telemetry reports the probe-ingestion and replanning counters; always
	// present so "no telemetry yet" is observable.
	Telemetry *TelemetryStats `json:"telemetry"`
}

// Server is the plan-cache daemon. Create with New, mount via Handler.
type Server struct {
	cfg   Config
	store PlanStore
	// mds is the concrete default store, kept for the TTL sweeper; equal to
	// store today, nil if a future Config grows a store override.
	mds    *memDiskStore
	flight flightGroup
	start  time.Time

	latency map[string]*histogram // per-endpoint request latency

	stopSweep chan struct{}
	closeOnce sync.Once

	requests     atomic.Uint64
	epLegacy     atomic.Uint64
	epV1         atomic.Uint64
	epV1Batch    atomic.Uint64
	hits         atomic.Uint64
	misses       atomic.Uint64
	syntheses    atomic.Uint64
	flightShared atomic.Uint64
	errors       atomic.Uint64

	// synthSem is the admission gate: a slot per permitted concurrent local
	// synthesis, nil when unlimited. admissionShed counts misses turned away
	// at the gate; inflightSynth tracks currently executing syntheses (the
	// /metrics gauge) whether or not a cap is configured.
	synthSem      chan struct{}
	admissionShed atomic.Uint64
	inflightSynth atomic.Int64

	// synthIncremental counts seeded syntheses; seedDistBits holds the last
	// seeded search's donor distance as float64 bits (atomic gauge).
	synthIncremental atomic.Uint64
	seedDistBits     atomic.Uint64

	// sim is the segment-level similarity index donor lookups scan
	// (similarity.go).
	sim similarityIndex

	fleetProxied         atomic.Uint64 // misses answered by proxying to a peer
	fleetProxyErrors     atomic.Uint64 // failed proxy attempts (peer marked down)
	fleetLocalFallbacks  atomic.Uint64 // owned-elsewhere misses synthesized locally (all peers down)
	fleetForwardedServed atomic.Uint64 // requests served on behalf of a forwarding peer
	fleetReplicatedOut   atomic.Uint64 // entries pushed to ring successors
	fleetReplicateErrors atomic.Uint64 // failed replication pushes
	fleetReplicatedIn    atomic.Uint64 // entries accepted from peers
	fleetWarmupEntries   atomic.Uint64 // entries received by warm-up streaming

	passMu         sync.Mutex
	passRuns       uint64
	passRewrites   uint64
	passRewritesBy map[string]uint64

	// traces is the debug ring of completed request traces; nil = tracing
	// off. logger receives structured log lines; nodeLabel stamps every
	// span with this node's fleet URL ("" standalone); phase accumulates
	// the per-phase duration summaries /metrics exposes; slowRequests
	// counts requests past the TraceSlow threshold.
	traces    *obs.Collector
	logger    *slog.Logger
	nodeLabel string
	phase     [4]struct {
		count atomic.Uint64
		sumNs atomic.Int64
	}
	slowRequests atomic.Uint64

	// telemetry is the probe-ingestion and background-replanning compartment
	// (telemetry.go).
	telemetry telemetryState
}

// New returns a Server with zero Config values filled from the defaults.
// When cfg.CacheDir is set, previously persisted plans are restored into the
// cache before the first request (oldest mtime first, so LRU recency
// survives the restart), and a positive cfg.CacheTTL starts the background
// expiry sweep — call Close to stop it.
func New(cfg Config) *Server {
	if cfg.MaxCacheEntries <= 0 {
		cfg.MaxCacheEntries = DefaultMaxCacheEntries
	}
	if cfg.MaxCacheBytes <= 0 {
		cfg.MaxCacheBytes = DefaultMaxCacheBytes
	}
	if cfg.MaxRequestBytes <= 0 {
		cfg.MaxRequestBytes = DefaultMaxRequestBytes
	}
	if cfg.SynthTimeBudget == 0 {
		cfg.SynthTimeBudget = DefaultSynthTimeBudget
	}
	if cfg.ShedRetryAfter <= 0 {
		cfg.ShedRetryAfter = DefaultShedRetryAfter
	}
	if cfg.DriftThreshold == 0 {
		cfg.DriftThreshold = DefaultDriftThreshold
	}
	if cfg.Synthesize == nil {
		cfg.Synthesize = func(ctx context.Context, g *graph.Graph, c *cluster.Cluster, opt hap.Options) (*hap.Plan, error) {
			return hap.NewPlanner(c, hap.WithOptions(opt)).Plan(ctx, g)
		}
	}
	if cfg.PlanBatch == nil {
		cfg.PlanBatch = func(ctx context.Context, g *graph.Graph, cs []*cluster.Cluster, opt hap.Options) ([]*hap.Plan, error) {
			return hap.NewPlanner(cs[0], hap.WithOptions(opt)).PlanBatch(ctx, g, cs...)
		}
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	var persist *diskStore
	if cfg.CacheDir != "" {
		store, err := newDiskStore(cfg.CacheDir)
		if err != nil {
			// Loudly degrade: the daemon keeps serving from memory, but the
			// operator can see persistence is off instead of discovering it
			// at the next restart.
			logger.Warn("persistence disabled", "dir", cfg.CacheDir, "error", err)
		} else {
			persist = store
		}
	}
	mds := newMemDiskStore(cfg.MaxCacheEntries, cfg.MaxCacheBytes, persist, cfg.CacheTTL)
	s := &Server{
		cfg:            cfg,
		store:          mds,
		mds:            mds,
		start:          time.Now(),
		logger:         logger,
		passRewritesBy: map[string]uint64{},
		latency: map[string]*histogram{
			EndpointLegacy:  newHistogram(),
			EndpointV1:      newHistogram(),
			EndpointV1Batch: newHistogram(),
		},
		telemetry: telemetryState{
			monitors: map[string]*telemetry.Monitor{},
			sources:  map[string]planSource{},
			replan:   map[string]bool{},
		},
		sim: similarityIndex{entries: map[string]simEntry{}},
	}
	if cfg.MaxInflightSynth > 0 {
		s.synthSem = make(chan struct{}, cfg.MaxInflightSynth)
	}
	// Evictions — LRU, TTL sweep, or a rejected oversized insert — drop the
	// key's replan source and similarity entries, so the side registries stay
	// bounded by the store's own caps. Wired after construction: the restore
	// pass above ran with empty registries, so it has nothing to drop.
	mds.onEvict = s.dropPlanRegistry
	// Tracing is on by default (an empty ring is just a few pointers; the
	// per-request cost is a handful of small allocations and the synthesis
	// hot path stays untouched — spans attach per phase, not per candidate).
	// A negative TraceRing turns it off entirely.
	if cfg.TraceRing >= 0 {
		s.traces = obs.NewCollector(cfg.TraceRing)
	}
	if f := cfg.Fleet; f != nil {
		s.nodeLabel = f.Self()
	}
	if cfg.CacheTTL > 0 {
		s.stopSweep = make(chan struct{})
		go s.sweepLoop()
	}
	return s
}

// sweepLoop periodically expires TTL-aged cache entries and their files.
func (s *Server) sweepLoop() {
	// Sweeping at a quarter of the TTL bounds overstay at 25% without
	// scanning a large cache every few seconds.
	interval := s.cfg.CacheTTL / 4
	if interval < time.Minute {
		interval = time.Minute
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopSweep:
			return
		case <-ticker.C:
			s.mds.sweep(time.Now())
		}
	}
}

// Close stops the server's background work (the TTL sweeper). It does not
// touch the fleet's pollers — the fleet is owned by the caller that built
// it.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.stopSweep != nil {
			close(s.stopSweep)
		}
	})
}

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/synthesize", s.handleLegacySynthesize)
	mux.HandleFunc("/v1/synthesize", s.handleV1Synthesize)
	mux.HandleFunc("/v1/synthesize/batch", s.handleV1Batch)
	mux.HandleFunc("/v1/telemetry", s.handleTelemetry)
	mux.HandleFunc(fleet.EntriesPath, s.handleFleetEntries)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	// Both forms registered explicitly: the bare path lists, the trailing-
	// slash form fetches one trace by ID (parsed manually — this module's
	// go directive predates ServeMux path wildcards).
	mux.HandleFunc("/v1/debug/traces", s.handleDebugTraces)
	mux.HandleFunc("/v1/debug/traces/", s.handleDebugTrace)
	return mux
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	ss := s.store.Stats()
	st := Stats{
		Protocol:          ProtocolVersion,
		Requests:          s.requests.Load(),
		CacheHits:         s.hits.Load(),
		CacheMisses:       s.misses.Load(),
		Syntheses:         s.syntheses.Load(),
		SynthIncremental:  s.synthIncremental.Load(),
		SynthSeedDistance: math.Float64frombits(s.seedDistBits.Load()),
		FlightShared:      s.flightShared.Load(),
		AdmissionShed:     s.admissionShed.Load(),
		InflightSynth:     s.inflightSynth.Load(),
		MaxInflightSynth:  s.cfg.MaxInflightSynth,
		Errors:            s.errors.Load(),
		CacheEntries:      ss.Entries,
		CacheBytes:        ss.Bytes,
		CacheEvictions:    ss.Evictions,
		CacheRestored:     ss.Restored,
		UptimeSeconds:     time.Since(s.start).Seconds(),
		RequestsByEndpoint: map[string]uint64{
			EndpointLegacy:  s.epLegacy.Load(),
			EndpointV1:      s.epV1.Load(),
			EndpointV1Batch: s.epV1Batch.Load(),
		},
		Fleet:     s.fleetStats(),
		Telemetry: s.telemetryStats(),
	}
	s.passMu.Lock()
	st.PassRuns = s.passRuns
	st.PassRewrites = s.passRewrites
	if len(s.passRewritesBy) > 0 {
		st.PassRewritesBy = make(map[string]uint64, len(s.passRewritesBy))
		for k, v := range s.passRewritesBy {
			st.PassRewritesBy[k] = v
		}
	}
	s.passMu.Unlock()
	return st
}

// recordPassStats accumulates one synthesis's pass-pipeline counters.
func (s *Server) recordPassStats(ps hap.PassStats) {
	if ps.Rounds == 0 {
		return // pipeline disabled (or a stubbed planner)
	}
	s.passMu.Lock()
	s.passRuns++
	s.passRewrites += uint64(ps.Changed)
	for _, p := range ps.PerPass {
		s.passRewritesBy[p.Pass] += uint64(p.Changed)
	}
	s.passMu.Unlock()
}

// cacheKey is the content address of a plan: what the graph computes, what
// the cluster can do, and how the planner was asked to run. Names and other
// labels do not participate (see graph.Fingerprint, Cluster.Fingerprint).
// The same string is the fleet routing fingerprint: every node derives the
// same key from the same request, so ring ownership is request-determined.
func cacheKey(g *graph.Graph, c *cluster.Cluster, opt RequestOptions) string {
	return fmt.Sprintf("%s:%s:%s", graph.Fingerprint(g), c.Fingerprint(), optsSig(opt))
}

// optsSig is the planner-options slice of the cache key, shared with the
// similarity index: a donor plan must have been synthesized under the same
// options to be worth seeding from.
func optsSig(opt RequestOptions) string {
	return fmt.Sprintf("s%d:i%d:x%t:o%t",
		opt.Segments, opt.MaxIterations, opt.ExactSearch, opt.optimize())
}

// hapOptions lowers wire options plus server config into planner options.
func (s *Server) hapOptions(opt RequestOptions) hap.Options {
	budget := s.cfg.SynthTimeBudget
	if budget < 0 {
		budget = 0 // negative config = unlimited
	}
	return hap.Options{
		Segments:      opt.Segments,
		MaxIterations: opt.MaxIterations,
		ExactSearch:   opt.ExactSearch,
		DisablePasses: !opt.optimize(),
		TimeBudget:    budget,
		Workers:       s.cfg.SynthWorkers,
	}
}

// fail answers an error. The v1 endpoints get the structured JSON envelope;
// the legacy endpoint keeps its historical plain-text body.
func (s *Server) fail(w http.ResponseWriter, v1 bool, status int, code string, format string, args ...any) {
	s.errors.Add(1)
	msg := fmt.Sprintf(format, args...)
	if !v1 {
		http.Error(w, msg, status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorEnvelope{Code: code, Message: msg})
}

// errOverloaded is the admission gate's refusal: every synthesis slot is
// busy and this miss would have started a new search.
var errOverloaded = errors.New("synthesis capacity exhausted")

// acquireSynth claims a synthesis slot without blocking. On success the
// returned release must be called when the synthesis finishes; on refusal
// it returns errOverloaded and counts the shed. With no cap configured the
// gate always admits (and still tracks the inflight gauge).
func (s *Server) acquireSynth() (release func(), err error) {
	if s.synthSem != nil {
		select {
		case s.synthSem <- struct{}{}:
		default:
			s.admissionShed.Add(1)
			return nil, errOverloaded
		}
	}
	s.inflightSynth.Add(1)
	return func() {
		s.inflightSynth.Add(-1)
		if s.synthSem != nil {
			<-s.synthSem
		}
	}, nil
}

// shedHeaders stamps the Retry-After hint on a response about to be shed.
func (s *Server) shedHeaders(w http.ResponseWriter) {
	secs := int(math.Ceil(s.cfg.ShedRetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// synthErrorCode maps a planner error to (HTTP status, envelope code). A
// cancelled request context means the client went away: 499 in the nginx
// convention, for the log's benefit — nobody reads the body.
func synthErrorCode(err error) (int, string) {
	if errors.Is(err, errOverloaded) {
		return http.StatusTooManyRequests, CodeOverloaded
	}
	if errors.Is(err, context.Canceled) {
		return 499, CodeCanceled
	}
	return http.StatusUnprocessableEntity, CodeSynthesisFailed
}

// wantsBinaryPlan reports whether the request negotiates the binary plan
// content type (v1 endpoints only).
func wantsBinaryPlan(r *http.Request) bool {
	for _, accept := range r.Header.Values("Accept") {
		for _, part := range strings.Split(accept, ",") {
			mt := strings.TrimSpace(part)
			if i := strings.IndexByte(mt, ';'); i >= 0 {
				mt = strings.TrimSpace(mt[:i])
			}
			if mt == BinaryPlanContentType {
				return true
			}
		}
	}
	return false
}

// decodePlanRequest parses and validates the shared body shape of the
// synthesize endpoints. Failures are answered on w; the bool reports success.
func (s *Server) decodePlanRequest(w http.ResponseWriter, r *http.Request, v1 bool, into any) bool {
	if r.Method != http.MethodPost {
		s.fail(w, v1, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST required")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes))
	if err := dec.Decode(into); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, v1, http.StatusRequestEntityTooLarge, CodeTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		s.fail(w, v1, http.StatusBadRequest, CodeBadRequest, "bad request: %v", err)
		return false
	}
	return true
}

// The aggregate and per-endpoint request counters increment together, at
// the top of each handler, so RequestsByEndpoint always sums to Requests —
// including requests rejected before synthesis (bad method, bad body).
// Latency histograms are observed on the same boundary: every request,
// including rejects, contributes one sample to its endpoint's histogram.
func (s *Server) handleLegacySynthesize(w http.ResponseWriter, r *http.Request) {
	defer s.observeLatency(EndpointLegacy, time.Now())
	s.requests.Add(1)
	s.epLegacy.Add(1)
	rt, r, w := s.startRequestTrace(w, r, EndpointLegacy)
	defer rt.finish()
	s.synthesizeOne(w, r, false, rt)
}

func (s *Server) handleV1Synthesize(w http.ResponseWriter, r *http.Request) {
	defer s.observeLatency(EndpointV1, time.Now())
	s.requests.Add(1)
	s.epV1.Add(1)
	rt, r, w := s.startRequestTrace(w, r, EndpointV1)
	defer rt.finish()
	s.synthesizeOne(w, r, true, rt)
}

// synthesizeOne serves the single-cluster synthesize endpoints. v1 selects
// the structured error envelope and binary content negotiation.
//
// With a fleet configured the flow is: local store first (an owned or
// replicated entry answers immediately), then proxy the miss to the key's
// ring owner (read-replica fallback when the owner is down), and only
// synthesize here when this node owns the key, the request was already
// forwarded by a peer, or every responsible peer is unreachable.
func (s *Server) synthesizeOne(w http.ResponseWriter, r *http.Request, v1 bool, rt *requestTrace) {
	ds := rt.span("decode")
	var req Request
	if !s.decodePlanRequest(w, r, v1, &req) {
		ds.End()
		return
	}
	if len(req.Graph) == 0 || len(req.Cluster) == 0 {
		ds.End()
		s.fail(w, v1, http.StatusBadRequest, CodeBadRequest, "bad request: graph and cluster are required")
		return
	}
	g, err := graph.Decode(bytes.NewReader(req.Graph))
	if err != nil {
		ds.End()
		s.fail(w, v1, http.StatusBadRequest, CodeBadRequest, "bad request: %v", err)
		return
	}
	c, err := cluster.Decode(bytes.NewReader(req.Cluster))
	ds.SetAttrInt("graph_nodes", int64(g.NumNodes()))
	ds.End()
	if err != nil {
		s.fail(w, v1, http.StatusBadRequest, CodeBadRequest, "bad request: %v", err)
		return
	}

	binary := v1 && wantsBinaryPlan(r)
	key := cacheKey(g, c, req.Options)
	rt.setRole(s.fleetRole(key))
	forwarded := r.Header.Get(fleet.ForwardHeader) != ""
	if forwarded {
		s.fleetForwardedServed.Add(1)
	}
	cs := rt.span("cache_lookup")
	plan, ok := s.store.Get(key)
	cs.End()
	if ok {
		s.hits.Add(1)
		rt.setCache("hit")
		writePlan(w, r, plan, "hit", binary)
		return
	}
	s.misses.Add(1)
	rt.setCache("miss")
	// A miss owned by a peer proxies there instead of synthesizing here —
	// unless the request was already forwarded (a peer decided we should
	// handle it; re-forwarding could loop across divergent ring views).
	if f := s.cfg.Fleet; f != nil && !forwarded {
		if owner := f.Owner(key); owner != "" && owner != f.Self() {
			if s.proxyPlanRequest(w, r, req, key, owner, v1, binary, rt) {
				return
			}
			// Every responsible peer is unreachable: synthesize locally so
			// the fleet degrades to N independent caches, not to an outage.
			s.fleetLocalFallbacks.Add(1)
		}
	}
	// The flight span covers the whole single-flight interaction: for the
	// executing caller it parents the synthesize/encode/replicate subtree,
	// for joined callers it measures the wait on someone else's synthesis.
	fs := rt.span("flight")
	// seedDist is set by the executing caller's closure when its synthesis
	// ran seeded, and stamps the response header below. Joined waiters never
	// run the closure, so they report the plan without a seed header — they
	// paid a wait, not a seeded search.
	seedDist := -1.0
	plan, err, shared := s.flight.do(r.Context(), key, func(fctx context.Context) (CachedPlan, error) {
		// Re-check under the flight: a request that missed while a previous
		// flight for this key was completing would otherwise re-synthesize a
		// plan the cache now holds.
		if v, ok := s.store.Get(key); ok {
			return v, nil
		}
		// Admission: the gate sits inside the flight, after the re-check, so
		// a miss is shed only when it would genuinely start a new synthesis —
		// joiners of an already-executing flight never reach here, and hits
		// were served before the flight. The executing caller's refusal
		// propagates to every waiter that joined this flight: they were all
		// waiting on a synthesis the daemon cannot afford right now.
		release, admErr := s.acquireSynth()
		if admErr != nil {
			return CachedPlan{}, admErr
		}
		defer release()
		s.syntheses.Add(1)
		ho := s.hapOptions(req.Options)
		// Incremental synthesis: find the nearest cached plan by segment
		// sub-fingerprints and seed the search from it. The span records the
		// donor choice; the planner's own search span carries the resulting
		// seed distance and fast-forward depth.
		if !s.cfg.DisableSeeding {
			sds := fs.Child("seeded_search")
			if dk, dg, dp, sharedSubs := s.seedDonor(fctx, g, c.Fingerprint(), optsSig(req.Options), key); dp != nil {
				ho.SeedGraph, ho.SeedPlan = dg, dp
				sds.SetAttrStr("donor", dk)
				sds.SetAttrInt("shared_subs", int64(sharedSubs))
			}
			sds.End()
		}
		// fctx is the flight context: alive while any client still wants
		// this plan, cancelled when the last one disconnects — so a dropped
		// connection aborts the search without killing the synthesis other
		// waiters are sharing. The synthesize span rides on fctx, so the
		// planner's phase spans (theory, beam levels, passes, verify) attach
		// to the executing caller's trace — a joined waiter's flight span
		// shows the wait, not someone else's search.
		ss := fs.Child("synthesize")
		p, err := s.cfg.Synthesize(obs.ContextWithSpan(fctx, ss), g, c, ho)
		if err == nil && p.Seeded {
			ss.SetAttrFloat("seed_distance", p.SeedDistance)
		}
		ss.End()
		if err != nil {
			return CachedPlan{}, err
		}
		if p.Seeded {
			s.synthIncremental.Add(1)
			s.seedDistBits.Store(math.Float64bits(p.SeedDistance))
			seedDist = p.SeedDistance
		}
		s.recordPassStats(p.Passes)
		es := fs.Child("encode")
		v, err := encodePlan(p)
		es.End()
		if err != nil {
			return CachedPlan{}, err
		}
		// Cache before the flight key is released: a request arriving between
		// flight completion and a later insert would synthesize a second time.
		// Registering the source makes the entry eligible for drift-triggered
		// background replanning (telemetry.go) and indexes it as a future
		// seed donor (similarity.go).
		s.recordPlanSource(key, g, req.Graph, c, req.Options, c.Fingerprint())
		return s.storePlan(fs, key, v), nil
	})
	fs.SetAttrBool("shared", shared)
	fs.End()
	if shared {
		s.flightShared.Add(1)
	}
	if err != nil {
		status, code := synthErrorCode(err)
		if code == CodeOverloaded {
			s.shedHeaders(w)
			s.fail(w, v1, status, code, "overloaded: %v", err)
			return
		}
		s.fail(w, v1, status, code, "synthesis failed: %v", err)
		return
	}
	if seedDist >= 0 {
		w.Header().Set(SeedDistanceHeader, strconv.FormatFloat(seedDist, 'g', -1, 64))
	}
	writePlan(w, r, plan, "miss", binary)
}

// fleetRole classifies this node's relationship to a cache key for the
// trace and slow-log labels.
func (s *Server) fleetRole(key string) string {
	f := s.cfg.Fleet
	if f == nil {
		return roleLocal
	}
	switch {
	case f.Owner(key) == f.Self():
		return roleOwner
	case contains(f.ReplicaSet(key), f.Self()):
		return roleReplica
	default:
		return roleProxy
	}
}

// handleV1Batch serves POST /v1/synthesize/batch: one graph against many
// clusters. Clusters already cached are served from cache; the remaining
// ones are planned in a single PlanBatch call that builds the graph theory
// once — the request-coalescing path the batch endpoint exists for. The
// response envelope is always JSON; the per-result plan payloads honor
// binary content negotiation (Accept: application/x-hap-plan → base64
// binary in the envelope's "bin" field instead of "plan").
//
// Batch requests are not fleet-routed: coalescing happens within the
// request, and splitting a batch across owners would trade the theory-once
// guarantee for routing purity. Filled entries still replicate when this
// node owns them, and replicated entries still serve the per-cluster cache
// checks.
func (s *Server) handleV1Batch(w http.ResponseWriter, r *http.Request) {
	defer s.observeLatency(EndpointV1Batch, time.Now())
	s.requests.Add(1)
	s.epV1Batch.Add(1)
	rt, r, w := s.startRequestTrace(w, r, EndpointV1Batch)
	defer rt.finish()
	ds := rt.span("decode")
	var req BatchRequest
	if !s.decodePlanRequest(w, r, true, &req) {
		ds.End()
		return
	}
	if len(req.Graph) == 0 || len(req.Clusters) == 0 {
		ds.End()
		s.fail(w, true, http.StatusBadRequest, CodeBadRequest, "bad request: graph and a non-empty clusters list are required")
		return
	}
	g, err := graph.Decode(bytes.NewReader(req.Graph))
	if err != nil {
		ds.End()
		s.fail(w, true, http.StatusBadRequest, CodeBadRequest, "bad request: %v", err)
		return
	}
	clusters := make([]*cluster.Cluster, len(req.Clusters))
	keys := make([]string, len(req.Clusters))
	for i, raw := range req.Clusters {
		c, err := cluster.Decode(bytes.NewReader(raw))
		if err != nil {
			ds.End()
			s.fail(w, true, http.StatusBadRequest, CodeBadRequest, "bad request: cluster %d: %v", i, err)
			return
		}
		clusters[i] = c
		keys[i] = cacheKey(g, c, req.Options)
	}
	ds.SetAttrInt("graph_nodes", int64(g.NumNodes()))
	ds.SetAttrInt("clusters", int64(len(clusters)))
	ds.End()

	binary := wantsBinaryPlan(r)
	results := make([]BatchPlanResult, len(clusters))
	// Collect the clusters that need a synthesis, coalescing duplicates
	// (the same cluster listed twice is one search, answered twice).
	missing := map[string]int{} // key → index of first cluster needing it
	var missingOrder []string
	cs := rt.span("cache_lookup")
	for i, key := range keys {
		if v, ok := s.store.Get(key); ok {
			s.hits.Add(1)
			results[i] = batchResult(v, "hit", binary)
			continue
		}
		s.misses.Add(1)
		results[i] = BatchPlanResult{Cache: "miss"}
		if _, ok := missing[key]; !ok {
			missing[key] = i
			missingOrder = append(missingOrder, key)
		}
	}
	cs.SetAttrInt("missing", int64(len(missing)))
	cs.End()
	if len(missing) == 0 {
		rt.setCache("hit")
	} else {
		rt.setCache("miss")
	}
	if len(missing) > 0 {
		// One admission slot covers the whole batch: PlanBatch is a single
		// search sharing one graph theory, not len(missing) independent ones.
		// An all-hit batch never reaches the gate; a shed batch answers 429
		// for the request as a whole (partial responses would complicate the
		// envelope for a client that must retry anyway).
		release, admErr := s.acquireSynth()
		if admErr != nil {
			s.shedHeaders(w)
			s.fail(w, true, http.StatusTooManyRequests, CodeOverloaded, "overloaded: %v", admErr)
			return
		}
		defer release()
		toPlan := make([]*cluster.Cluster, len(missingOrder))
		for j, key := range missingOrder {
			toPlan[j] = clusters[missing[key]]
		}
		s.syntheses.Add(uint64(len(toPlan)))
		ss := rt.span("synthesize")
		ss.SetAttrInt("clusters", int64(len(toPlan)))
		plans, batchErr := s.cfg.PlanBatch(obs.ContextWithSpan(r.Context(), ss), g, toPlan, s.hapOptions(req.Options))
		ss.End()
		if batchErr == nil && len(plans) != len(toPlan) {
			plans, batchErr = nil, fmt.Errorf("planner returned %d plans for %d clusters", len(plans), len(toPlan))
		}
		// Cache whatever completed even when the batch as a whole failed
		// (PlanBatch returns partial results): a starved cluster under the
		// shared budget must not force retries to re-pay its siblings' work.
		fresh := map[string]CachedPlan{}
		es := rt.span("encode")
		for j, key := range missingOrder {
			if j >= len(plans) || plans[j] == nil {
				continue
			}
			s.recordPassStats(plans[j].Passes)
			v, err := encodePlan(plans[j])
			if err != nil {
				es.End()
				s.fail(w, true, http.StatusInternalServerError, CodeSynthesisFailed, "encoding plan: %v", err)
				return
			}
			c := clusters[missing[key]]
			s.recordPlanSource(key, g, req.Graph, c, req.Options, c.Fingerprint())
			fresh[key] = s.storePlan(es, key, v)
		}
		es.End()
		if batchErr != nil {
			status, code := synthErrorCode(batchErr)
			s.fail(w, true, status, code, "synthesis failed: %v", batchErr)
			return
		}
		for i, key := range keys {
			if v, ok := fresh[key]; ok && len(results[i].Plan) == 0 && len(results[i].Bin) == 0 {
				results[i] = batchResult(v, results[i].Cache, binary)
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(BatchResponse{Plans: results})
}

// batchResult renders one cached plan as a batch envelope entry in the
// negotiated payload encoding: exactly one of Plan or Bin is set. A cached
// entry with no binary form (possible only for entries replicated from a
// pre-binary peer) falls back to JSON rather than answering empty.
func batchResult(v CachedPlan, cache string, binary bool) BatchPlanResult {
	res := BatchPlanResult{Cache: cache, Passes: v.Passes, Version: v.Version, ETag: v.ETag}
	if binary && len(v.Bin) > 0 {
		res.Bin = v.Bin
	} else {
		res.Plan = v.Plan
	}
	return res
}

// encodePlan renders a synthesized plan into its cached wire forms: the
// diffable JSON and the compact binary payload, plus the passes header.
func encodePlan(p *hap.Plan) (CachedPlan, error) {
	var buf bytes.Buffer
	if err := p.WriteProgram(&buf); err != nil {
		return CachedPlan{}, err
	}
	var bin bytes.Buffer
	if err := p.WriteProgramBinary(&bin); err != nil {
		return CachedPlan{}, err
	}
	return CachedPlan{Plan: buf.Bytes(), Bin: bin.Bytes(), Passes: passesHeader(p.Passes)}, nil
}

// storePlan inserts a freshly synthesized plan into the store (which
// mirrors it to disk when persistence is on) and, when this node owns the
// key, replicates it to the ring successors. It returns the plan as stored —
// with the version and ETag the store assigned — so the synthesis response
// and the replication pushes carry the same metadata the next cache hit
// will. A plan the store rejects (over its caps) is tagged locally: the
// response still gets an ETag, just no stored version sequence.
//
// sp, when non-nil, parents the replication fan-out span so the pushes show
// up in the request (or replan) trace that produced the plan.
func (s *Server) storePlan(sp *obs.Span, key string, v CachedPlan) CachedPlan {
	s.store.Put(key, v)
	if stored, ok := s.store.Get(key); ok {
		v = stored
	} else {
		normalizePlan(&v, 1)
	}
	s.maybeReplicate(sp, key, v)
	return v
}

// passesHeader renders the pass pipeline's per-pass rewrite counters as the
// X-HAP-Passes header value, in pipeline order: "comm-fusion=3,dce=2".
// Empty when the pipeline did not run (request opted out, or a stubbed
// planner reported no stats).
func passesHeader(ps hap.PassStats) string {
	if ps.Rounds == 0 {
		return ""
	}
	var b strings.Builder
	for i, p := range ps.PerPass {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", p.Pass, p.Changed)
	}
	return b.String()
}

// writePlan renders one cached plan, honoring conditional fetch: a request
// whose If-None-Match matches the plan's current ETag gets 304 Not Modified
// with no body — a warm client revalidating after a drift-triggered replan
// pays a handful of header bytes instead of the full plan, until the swap
// actually changes the content. The ETag and version headers ride on every
// response (including the 304, per RFC 9110) so clients always hold the
// current tag.
func writePlan(w http.ResponseWriter, r *http.Request, plan CachedPlan, cache string, binary bool) {
	w.Header().Set("X-HAP-Cache", cache)
	if plan.Passes != "" {
		w.Header().Set("X-HAP-Passes", plan.Passes)
	}
	if plan.ETag != "" {
		w.Header().Set("ETag", plan.ETag)
	}
	if plan.Version > 0 {
		w.Header().Set(PlanVersionHeader, strconv.FormatUint(plan.Version, 10))
	}
	if plan.ETag != "" && etagMatches(r.Header.Get("If-None-Match"), plan.ETag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if binary && len(plan.Bin) > 0 {
		w.Header().Set("Content-Type", BinaryPlanContentType)
		w.Write(plan.Bin)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(plan.Plan)
}

// etagMatches implements the If-None-Match comparison: a comma-separated
// list of entity tags, or "*" matching anything. Weak tags (W/ prefix)
// compare by their opaque value — the weak comparison RFC 9110 prescribes
// for If-None-Match.
func etagMatches(ifNoneMatch, etag string) bool {
	if ifNoneMatch == "" {
		return false
	}
	for _, part := range strings.Split(ifNoneMatch, ",") {
		tag := strings.TrimSpace(part)
		if tag == "*" {
			return true
		}
		tag = strings.TrimPrefix(tag, "W/")
		if tag == etag {
			return true
		}
	}
	return false
}

// healthzPayload is the GET /healthz body: liveness, the wire protocol
// version, the per-endpoint request counters, and (on a fleet node) the
// fleet membership summary.
type healthzPayload struct {
	Status   string              `json:"status"`
	Protocol string              `json:"protocol"`
	Requests map[string]uint64   `json:"requests"`
	Fleet    *fleetHealthPayload `json:"fleet,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(healthzPayload{
		Status:   "ok",
		Protocol: ProtocolVersion,
		Requests: map[string]uint64{
			EndpointLegacy:  s.epLegacy.Load(),
			EndpointV1:      s.epV1.Load(),
			EndpointV1Batch: s.epV1Batch.Load(),
		},
		Fleet: s.fleetHealth(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}
