// Package serve implements the hap-serve plan-cache daemon: an HTTP service
// that accepts a (graph, cluster) pair in the JSON wire formats, synthesizes
// a distributed plan with the full HAP pipeline, and returns the encoded
// plan — memoizing results in a concurrency-safe, content-addressed LRU
// cache keyed by (graph fingerprint, cluster fingerprint, options).
//
// Synthesis is the expensive step (seconds to minutes at model scale), so
// the cache is the point of the daemon: a fleet of trainers asking for the
// same (model, cluster) pair pays for one synthesis. Concurrent identical
// requests are single-flighted — they block on the one in-flight synthesis
// instead of each starting their own.
//
// Endpoints:
//
//	POST /synthesize  {"graph": ..., "cluster": ..., "options": ...} → plan JSON
//	GET  /healthz     liveness probe
//	GET  /stats       cache and request counters, JSON
//	GET  /metrics     the same counters in Prometheus text exposition format
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hap"
	"hap/internal/cluster"
	"hap/internal/graph"
)

// Defaults for Config zero values.
const (
	DefaultMaxCacheEntries = 1024
	DefaultMaxCacheBytes   = 256 << 20 // plans are ~100 KB at model scale
	DefaultMaxRequestBytes = 64 << 20
	// DefaultSynthTimeBudget bounds one request's synthesis wall-clock time
	// (the whole Q↔B loop, not just one search) so a single adversarial
	// request cannot hold a serve worker for minutes — the synthesizer's
	// expansion limits bound memory, not time. An expired budget serves the
	// best plan the loop found, or fails the request when none completed.
	DefaultSynthTimeBudget = 60 * time.Second
)

// Config tunes a Server.
type Config struct {
	// MaxCacheEntries caps the number of cached plans (0 = default).
	MaxCacheEntries int
	// MaxCacheBytes caps the total bytes of cached plans (0 = default).
	MaxCacheBytes int64
	// MaxRequestBytes caps the accepted request body size (0 = default).
	MaxRequestBytes int64
	// SynthTimeBudget bounds each request's synthesis wall-clock time
	// (0 = DefaultSynthTimeBudget; negative = unlimited).
	SynthTimeBudget time.Duration
	// SynthWorkers bounds each synthesis's beam parallelism (0 = GOMAXPROCS).
	// A server-level knob, not a request option, and not part of the cache
	// key: any worker count emits a byte-identical plan, so it trades only
	// latency under load, never cached content.
	SynthWorkers int
	// Synthesize overrides the planner, for tests. Nil means hap.Parallelize.
	Synthesize func(*graph.Graph, *cluster.Cluster, hap.Options) (*hap.Plan, error)
}

// Request is the body of POST /synthesize: a graph and a cluster in their
// JSON wire formats (graph.Encode, cluster.Encode), plus planner options.
type Request struct {
	Graph   json.RawMessage `json:"graph"`
	Cluster json.RawMessage `json:"cluster"`
	Options RequestOptions  `json:"options"`
}

// RequestOptions mirrors hap.Options on the wire.
type RequestOptions struct {
	Segments      int  `json:"segments,omitempty"`
	MaxIterations int  `json:"max_iterations,omitempty"`
	ExactSearch   bool `json:"exact_search,omitempty"`
	// Optimize toggles the post-synthesis pass pipeline (collective fusion,
	// collective CSE, DCE). Omitted means true: served plans are optimized
	// by default.
	Optimize *bool `json:"optimize,omitempty"`
}

// optimize resolves the tri-state Optimize field (nil = on).
func (o RequestOptions) optimize() bool {
	return o.Optimize == nil || *o.Optimize
}

// Stats is the GET /stats payload.
type Stats struct {
	Requests       uint64  `json:"requests"`        // POST /synthesize requests
	CacheHits      uint64  `json:"cache_hits"`      // served straight from cache
	CacheMisses    uint64  `json:"cache_misses"`    // required (or joined) a synthesis
	Syntheses      uint64  `json:"syntheses"`       // plans actually synthesized
	FlightShared   uint64  `json:"flight_shared"`   // misses that joined an in-flight synthesis
	Errors         uint64  `json:"errors"`          // requests answered with an error status
	CacheEntries   int     `json:"cache_entries"`   // plans currently cached
	CacheBytes     int64   `json:"cache_bytes"`     // bytes currently cached
	CacheEvictions uint64  `json:"cache_evictions"` // plans evicted by the LRU caps
	UptimeSeconds  float64 `json:"uptime_seconds"`
	// PassRuns counts syntheses that ran the post-synthesis pass pipeline;
	// PassRewrites totals the rewrites those pipelines applied, broken down
	// by pass in PassRewritesBy.
	PassRuns       uint64            `json:"pass_runs"`
	PassRewrites   uint64            `json:"pass_rewrites"`
	PassRewritesBy map[string]uint64 `json:"pass_rewrites_by,omitempty"`
}

// Server is the plan-cache daemon. Create with New, mount via Handler.
type Server struct {
	cfg    Config
	cache  *lruCache
	flight flightGroup
	start  time.Time

	requests     atomic.Uint64
	hits         atomic.Uint64
	misses       atomic.Uint64
	syntheses    atomic.Uint64
	flightShared atomic.Uint64
	errors       atomic.Uint64

	passMu         sync.Mutex
	passRuns       uint64
	passRewrites   uint64
	passRewritesBy map[string]uint64
}

// New returns a Server with zero Config values filled from the defaults.
func New(cfg Config) *Server {
	if cfg.MaxCacheEntries <= 0 {
		cfg.MaxCacheEntries = DefaultMaxCacheEntries
	}
	if cfg.MaxCacheBytes <= 0 {
		cfg.MaxCacheBytes = DefaultMaxCacheBytes
	}
	if cfg.MaxRequestBytes <= 0 {
		cfg.MaxRequestBytes = DefaultMaxRequestBytes
	}
	if cfg.SynthTimeBudget == 0 {
		cfg.SynthTimeBudget = DefaultSynthTimeBudget
	}
	if cfg.Synthesize == nil {
		cfg.Synthesize = func(g *graph.Graph, c *cluster.Cluster, opt hap.Options) (*hap.Plan, error) {
			return hap.Parallelize(g, c, opt)
		}
	}
	return &Server{
		cfg:            cfg,
		cache:          newLRUCache(cfg.MaxCacheEntries, cfg.MaxCacheBytes),
		start:          time.Now(),
		passRewritesBy: map[string]uint64{},
	}
}

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/synthesize", s.handleSynthesize)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	entries, bytes, evictions := s.cache.snapshot()
	st := Stats{
		Requests:       s.requests.Load(),
		CacheHits:      s.hits.Load(),
		CacheMisses:    s.misses.Load(),
		Syntheses:      s.syntheses.Load(),
		FlightShared:   s.flightShared.Load(),
		Errors:         s.errors.Load(),
		CacheEntries:   entries,
		CacheBytes:     bytes,
		CacheEvictions: evictions,
		UptimeSeconds:  time.Since(s.start).Seconds(),
	}
	s.passMu.Lock()
	st.PassRuns = s.passRuns
	st.PassRewrites = s.passRewrites
	if len(s.passRewritesBy) > 0 {
		st.PassRewritesBy = make(map[string]uint64, len(s.passRewritesBy))
		for k, v := range s.passRewritesBy {
			st.PassRewritesBy[k] = v
		}
	}
	s.passMu.Unlock()
	return st
}

// recordPassStats accumulates one synthesis's pass-pipeline counters.
func (s *Server) recordPassStats(ps hap.PassStats) {
	if ps.Rounds == 0 {
		return // pipeline disabled (or a stubbed planner)
	}
	s.passMu.Lock()
	s.passRuns++
	s.passRewrites += uint64(ps.Changed)
	for _, p := range ps.PerPass {
		s.passRewritesBy[p.Pass] += uint64(p.Changed)
	}
	s.passMu.Unlock()
}

// cacheKey is the content address of a plan: what the graph computes, what
// the cluster can do, and how the planner was asked to run. Names and other
// labels do not participate (see graph.Fingerprint, Cluster.Fingerprint).
func cacheKey(g *graph.Graph, c *cluster.Cluster, opt RequestOptions) string {
	return fmt.Sprintf("%s:%s:s%d:i%d:x%t:o%t",
		graph.Fingerprint(g), c.Fingerprint(),
		opt.Segments, opt.MaxIterations, opt.ExactSearch, opt.optimize())
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.errors.Add(1)
	http.Error(w, fmt.Sprintf(format, args...), status)
}

func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	s.requests.Add(1)
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes))
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		s.fail(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if len(req.Graph) == 0 || len(req.Cluster) == 0 {
		s.fail(w, http.StatusBadRequest, "bad request: graph and cluster are required")
		return
	}
	g, err := graph.Decode(bytes.NewReader(req.Graph))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	c, err := cluster.Decode(bytes.NewReader(req.Cluster))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}

	key := cacheKey(g, c, req.Options)
	if plan, ok := s.cache.get(key); ok {
		s.hits.Add(1)
		writePlan(w, plan, "hit")
		return
	}
	s.misses.Add(1)
	plan, err, shared := s.flight.do(key, func() (cachedPlan, error) {
		// Re-check under the flight: a request that missed while a previous
		// flight for this key was completing would otherwise re-synthesize a
		// plan the cache now holds.
		if v, ok := s.cache.get(key); ok {
			return v, nil
		}
		s.syntheses.Add(1)
		budget := s.cfg.SynthTimeBudget
		if budget < 0 {
			budget = 0 // negative config = unlimited
		}
		p, err := s.cfg.Synthesize(g, c, hap.Options{
			Segments:      req.Options.Segments,
			MaxIterations: req.Options.MaxIterations,
			ExactSearch:   req.Options.ExactSearch,
			DisablePasses: !req.Options.optimize(),
			TimeBudget:    budget,
			Workers:       s.cfg.SynthWorkers,
		})
		if err != nil {
			return cachedPlan{}, err
		}
		s.recordPassStats(p.Passes)
		var buf bytes.Buffer
		if err := p.WriteProgram(&buf); err != nil {
			return cachedPlan{}, err
		}
		v := cachedPlan{plan: buf.Bytes(), passes: passesHeader(p.Passes)}
		// Cache before the flight key is released: a request arriving between
		// flight completion and a later insert would synthesize a second time.
		s.cache.add(key, v)
		return v, nil
	})
	if shared {
		s.flightShared.Add(1)
	}
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, "synthesis failed: %v", err)
		return
	}
	writePlan(w, plan, "miss")
}

// passesHeader renders the pass pipeline's per-pass rewrite counters as the
// X-HAP-Passes header value, in pipeline order: "comm-fusion=3,dce=2".
// Empty when the pipeline did not run (request opted out, or a stubbed
// planner reported no stats).
func passesHeader(ps hap.PassStats) string {
	if ps.Rounds == 0 {
		return ""
	}
	var b strings.Builder
	for i, p := range ps.PerPass {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", p.Pass, p.Changed)
	}
	return b.String()
}

func writePlan(w http.ResponseWriter, plan cachedPlan, cache string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-HAP-Cache", cache)
	if plan.passes != "" {
		w.Header().Set("X-HAP-Passes", plan.passes)
	}
	w.Write(plan.plan)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}

// handleMetrics exposes the server counters in the Prometheus text
// exposition format (version 0.0.4), so a scrape target needs no sidecar.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b bytes.Buffer
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("hap_serve_requests_total", "POST /synthesize requests.", st.Requests)
	counter("hap_serve_cache_hits_total", "Requests served straight from the plan cache.", st.CacheHits)
	counter("hap_serve_cache_misses_total", "Requests that required (or joined) a synthesis.", st.CacheMisses)
	counter("hap_serve_syntheses_total", "Plans actually synthesized.", st.Syntheses)
	counter("hap_serve_flight_shared_total", "Cache misses that joined an in-flight synthesis.", st.FlightShared)
	counter("hap_serve_errors_total", "Requests answered with an error status.", st.Errors)
	counter("hap_serve_cache_evictions_total", "Plans evicted by the LRU caps.", st.CacheEvictions)
	gauge("hap_serve_cache_entries", "Plans currently cached.", float64(st.CacheEntries))
	gauge("hap_serve_cache_bytes", "Bytes of plans currently cached.", float64(st.CacheBytes))
	gauge("hap_serve_uptime_seconds", "Seconds since the server started.", st.UptimeSeconds)
	counter("hap_serve_pass_runs_total", "Syntheses that ran the post-synthesis pass pipeline.", st.PassRuns)
	counter("hap_serve_pass_rewrites_total", "Program rewrites applied by the pass pipeline.", st.PassRewrites)
	// Per-pass breakdown, emitted in sorted order for a stable exposition.
	fmt.Fprintf(&b, "# HELP hap_serve_pass_rewrites_by_total Program rewrites applied, by pass.\n# TYPE hap_serve_pass_rewrites_by_total counter\n")
	names := make([]string, 0, len(st.PassRewritesBy))
	for name := range st.PassRewritesBy {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "hap_serve_pass_rewrites_by_total{pass=%q} %d\n", name, st.PassRewritesBy[name])
	}
	w.Write(b.Bytes())
}
