// Package serve implements the hap-serve plan-cache daemon: an HTTP service
// that accepts a (graph, cluster) pair in the JSON wire formats, synthesizes
// a distributed plan with the full HAP pipeline, and returns the encoded
// plan — memoizing results in a concurrency-safe, content-addressed LRU
// cache keyed by (graph fingerprint, cluster fingerprint, options).
//
// Synthesis is the expensive step (seconds to minutes at model scale), so
// the cache is the point of the daemon: a fleet of trainers asking for the
// same (model, cluster) pair pays for one synthesis. Concurrent identical
// requests are single-flighted — they block on the one in-flight synthesis
// instead of each starting their own — and the synthesis runs under a
// reference-counted flight context: it is cancelled when the last interested
// client disconnects, never by one impatient client among many.
//
// Wire protocol v2 (see DESIGN.md for the full specification):
//
//	POST /v1/synthesize        {"graph", "cluster", "options"} → plan
//	POST /v1/synthesize/batch  {"graph", "clusters": [...], "options"} → plans
//	POST /synthesize           legacy unversioned endpoint (deprecated)
//	GET  /healthz              liveness + protocol version, JSON
//	GET  /stats                cache and request counters, JSON
//	GET  /metrics              the same counters in Prometheus text format
//
// The v1 endpoints answer errors with a structured JSON envelope
// {"code", "message"} and honor content negotiation: a request with
// Accept: application/x-hap-plan receives the compact binary plan encoding
// (hap.WriteProgramBinary) instead of JSON. The batch endpoint plans one
// graph against many clusters, building the graph theory once (request
// coalescing); its response is always JSON. The legacy endpoint keeps its
// original plain-text errors and JSON-only responses.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hap"
	"hap/internal/cluster"
	"hap/internal/graph"
)

// ProtocolVersion names the serve wire protocol implemented by this build,
// reported by /healthz and /metrics.
const ProtocolVersion = "v2"

// BinaryPlanContentType is the media type of the compact binary plan
// encoding, requested via the Accept header and returned as Content-Type.
const BinaryPlanContentType = "application/x-hap-plan"

// Endpoint labels for the per-endpoint request counters.
const (
	EndpointLegacy  = "legacy"
	EndpointV1      = "v1"
	EndpointV1Batch = "v1_batch"
)

// Defaults for Config zero values.
const (
	DefaultMaxCacheEntries = 1024
	DefaultMaxCacheBytes   = 256 << 20 // plans are ~100 KB at model scale
	DefaultMaxRequestBytes = 64 << 20
	// DefaultSynthTimeBudget bounds one request's synthesis wall-clock time
	// (the whole Q↔B loop, not just one search) so a single adversarial
	// request cannot hold a serve worker for minutes — the synthesizer's
	// expansion limits bound memory, not time. An expired budget serves the
	// best plan the loop found, or fails the request when none completed.
	DefaultSynthTimeBudget = 60 * time.Second
)

// Config tunes a Server.
type Config struct {
	// MaxCacheEntries caps the number of cached plans (0 = default).
	MaxCacheEntries int
	// MaxCacheBytes caps the total bytes of cached plans (0 = default).
	MaxCacheBytes int64
	// MaxRequestBytes caps the accepted request body size (0 = default).
	MaxRequestBytes int64
	// SynthTimeBudget bounds each request's synthesis wall-clock time
	// (0 = DefaultSynthTimeBudget; negative = unlimited).
	SynthTimeBudget time.Duration
	// SynthWorkers bounds each synthesis's beam parallelism (0 = GOMAXPROCS).
	// A server-level knob, not a request option, and not part of the cache
	// key: any worker count emits a byte-identical plan, so it trades only
	// latency under load, never cached content.
	SynthWorkers int
	// CacheDir enables write-through disk persistence of the plan cache:
	// every cached plan is also written to a content-addressed file under
	// this directory, evictions delete their file, and a restarting server
	// reloads the directory into the in-memory cache ("" = memory only).
	CacheDir string
	// Synthesize overrides the planner, for tests. Nil means a hap.Planner
	// driven by the request context.
	Synthesize func(context.Context, *graph.Graph, *cluster.Cluster, hap.Options) (*hap.Plan, error)
	// PlanBatch overrides the batch planner, for tests. Nil means
	// hap.Planner.PlanBatch, which builds the graph theory once for the
	// whole batch.
	PlanBatch func(context.Context, *graph.Graph, []*cluster.Cluster, hap.Options) ([]*hap.Plan, error)
}

// Request is the body of POST /v1/synthesize (and the legacy /synthesize): a
// graph and a cluster in their JSON wire formats (graph.Encode,
// cluster.Encode), plus planner options.
type Request struct {
	Graph   json.RawMessage `json:"graph"`
	Cluster json.RawMessage `json:"cluster"`
	Options RequestOptions  `json:"options"`
}

// BatchRequest is the body of POST /v1/synthesize/batch: one graph planned
// against every listed cluster, with the graph theory built once.
type BatchRequest struct {
	Graph    json.RawMessage   `json:"graph"`
	Clusters []json.RawMessage `json:"clusters"`
	Options  RequestOptions    `json:"options"`
}

// BatchResponse is the JSON answer of the batch endpoint: one entry per
// requested cluster, in request order.
type BatchResponse struct {
	Plans []BatchPlanResult `json:"plans"`
}

// BatchPlanResult is one cluster's plan in a BatchResponse.
type BatchPlanResult struct {
	// Cache is "hit" or "miss", mirroring the X-HAP-Cache header.
	Cache string `json:"cache"`
	// Plan is the plan JSON (hap.Plan.WriteProgram form).
	Plan json.RawMessage `json:"plan"`
	// Passes mirrors the X-HAP-Passes header ("" = pipeline disabled).
	Passes string `json:"passes,omitempty"`
}

// ErrorEnvelope is the structured error body of the v1 endpoints.
type ErrorEnvelope struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error codes of the v1 envelopes.
const (
	CodeBadRequest       = "bad_request"
	CodeTooLarge         = "request_too_large"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeSynthesisFailed  = "synthesis_failed"
	CodeCanceled         = "canceled"
)

// RequestOptions mirrors hap.Options on the wire.
type RequestOptions struct {
	Segments      int  `json:"segments,omitempty"`
	MaxIterations int  `json:"max_iterations,omitempty"`
	ExactSearch   bool `json:"exact_search,omitempty"`
	// Optimize toggles the post-synthesis pass pipeline (collective fusion,
	// collective CSE, DCE). Omitted means true: served plans are optimized
	// by default.
	Optimize *bool `json:"optimize,omitempty"`
}

// optimize resolves the tri-state Optimize field (nil = on).
func (o RequestOptions) optimize() bool {
	return o.Optimize == nil || *o.Optimize
}

// Stats is the GET /stats payload.
type Stats struct {
	Protocol       string  `json:"protocol"`        // wire protocol version
	Requests       uint64  `json:"requests"`        // plan requests, all endpoints
	CacheHits      uint64  `json:"cache_hits"`      // served straight from cache
	CacheMisses    uint64  `json:"cache_misses"`    // required (or joined) a synthesis
	Syntheses      uint64  `json:"syntheses"`       // plans actually synthesized
	FlightShared   uint64  `json:"flight_shared"`   // misses that joined an in-flight synthesis
	Errors         uint64  `json:"errors"`          // requests answered with an error status
	CacheEntries   int     `json:"cache_entries"`   // plans currently cached
	CacheBytes     int64   `json:"cache_bytes"`     // bytes currently cached
	CacheEvictions uint64  `json:"cache_evictions"` // plans evicted by the LRU caps
	CacheRestored  int     `json:"cache_restored"`  // plans reloaded from CacheDir on boot
	UptimeSeconds  float64 `json:"uptime_seconds"`
	// RequestsByEndpoint breaks Requests down by wire endpoint
	// (legacy, v1, v1_batch).
	RequestsByEndpoint map[string]uint64 `json:"requests_by_endpoint"`
	// PassRuns counts syntheses that ran the post-synthesis pass pipeline;
	// PassRewrites totals the rewrites those pipelines applied, broken down
	// by pass in PassRewritesBy.
	PassRuns       uint64            `json:"pass_runs"`
	PassRewrites   uint64            `json:"pass_rewrites"`
	PassRewritesBy map[string]uint64 `json:"pass_rewrites_by,omitempty"`
}

// Server is the plan-cache daemon. Create with New, mount via Handler.
type Server struct {
	cfg      Config
	cache    *lruCache
	flight   flightGroup
	persist  *diskStore
	restored int
	start    time.Time

	requests     atomic.Uint64
	epLegacy     atomic.Uint64
	epV1         atomic.Uint64
	epV1Batch    atomic.Uint64
	hits         atomic.Uint64
	misses       atomic.Uint64
	syntheses    atomic.Uint64
	flightShared atomic.Uint64
	errors       atomic.Uint64

	passMu         sync.Mutex
	passRuns       uint64
	passRewrites   uint64
	passRewritesBy map[string]uint64
}

// New returns a Server with zero Config values filled from the defaults.
// When cfg.CacheDir is set, previously persisted plans are restored into the
// cache before the first request.
func New(cfg Config) *Server {
	if cfg.MaxCacheEntries <= 0 {
		cfg.MaxCacheEntries = DefaultMaxCacheEntries
	}
	if cfg.MaxCacheBytes <= 0 {
		cfg.MaxCacheBytes = DefaultMaxCacheBytes
	}
	if cfg.MaxRequestBytes <= 0 {
		cfg.MaxRequestBytes = DefaultMaxRequestBytes
	}
	if cfg.SynthTimeBudget == 0 {
		cfg.SynthTimeBudget = DefaultSynthTimeBudget
	}
	if cfg.Synthesize == nil {
		cfg.Synthesize = func(ctx context.Context, g *graph.Graph, c *cluster.Cluster, opt hap.Options) (*hap.Plan, error) {
			return hap.NewPlanner(c, hap.WithOptions(opt)).Plan(ctx, g)
		}
	}
	if cfg.PlanBatch == nil {
		cfg.PlanBatch = func(ctx context.Context, g *graph.Graph, cs []*cluster.Cluster, opt hap.Options) ([]*hap.Plan, error) {
			return hap.NewPlanner(cs[0], hap.WithOptions(opt)).PlanBatch(ctx, g, cs...)
		}
	}
	s := &Server{
		cfg:            cfg,
		cache:          newLRUCache(cfg.MaxCacheEntries, cfg.MaxCacheBytes),
		start:          time.Now(),
		passRewritesBy: map[string]uint64{},
	}
	if cfg.CacheDir != "" {
		store, err := newDiskStore(cfg.CacheDir)
		if err != nil {
			// Loudly degrade: the daemon keeps serving from memory, but the
			// operator can see persistence is off instead of discovering it
			// at the next restart.
			log.Printf("serve: persistence disabled: %v", err)
		} else {
			s.persist = store
			// Restore mirrors storePlan: entries the (possibly re-capped)
			// cache rejects or evicts during the reload lose their files too,
			// so the directory converges to the LRU's actual contents instead
			// of re-reading stale plans on every boot.
			s.restored = store.load(func(key string, v cachedPlan) bool {
				stored, evicted := s.cache.add(key, v)
				if !stored {
					store.remove(key)
				}
				for _, k := range evicted {
					store.remove(k)
				}
				return stored
			})
		}
	}
	return s
}

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/synthesize", s.handleLegacySynthesize)
	mux.HandleFunc("/v1/synthesize", s.handleV1Synthesize)
	mux.HandleFunc("/v1/synthesize/batch", s.handleV1Batch)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	entries, bytes, evictions := s.cache.snapshot()
	st := Stats{
		Protocol:       ProtocolVersion,
		Requests:       s.requests.Load(),
		CacheHits:      s.hits.Load(),
		CacheMisses:    s.misses.Load(),
		Syntheses:      s.syntheses.Load(),
		FlightShared:   s.flightShared.Load(),
		Errors:         s.errors.Load(),
		CacheEntries:   entries,
		CacheBytes:     bytes,
		CacheEvictions: evictions,
		CacheRestored:  s.restored,
		UptimeSeconds:  time.Since(s.start).Seconds(),
		RequestsByEndpoint: map[string]uint64{
			EndpointLegacy:  s.epLegacy.Load(),
			EndpointV1:      s.epV1.Load(),
			EndpointV1Batch: s.epV1Batch.Load(),
		},
	}
	s.passMu.Lock()
	st.PassRuns = s.passRuns
	st.PassRewrites = s.passRewrites
	if len(s.passRewritesBy) > 0 {
		st.PassRewritesBy = make(map[string]uint64, len(s.passRewritesBy))
		for k, v := range s.passRewritesBy {
			st.PassRewritesBy[k] = v
		}
	}
	s.passMu.Unlock()
	return st
}

// recordPassStats accumulates one synthesis's pass-pipeline counters.
func (s *Server) recordPassStats(ps hap.PassStats) {
	if ps.Rounds == 0 {
		return // pipeline disabled (or a stubbed planner)
	}
	s.passMu.Lock()
	s.passRuns++
	s.passRewrites += uint64(ps.Changed)
	for _, p := range ps.PerPass {
		s.passRewritesBy[p.Pass] += uint64(p.Changed)
	}
	s.passMu.Unlock()
}

// cacheKey is the content address of a plan: what the graph computes, what
// the cluster can do, and how the planner was asked to run. Names and other
// labels do not participate (see graph.Fingerprint, Cluster.Fingerprint).
func cacheKey(g *graph.Graph, c *cluster.Cluster, opt RequestOptions) string {
	return fmt.Sprintf("%s:%s:s%d:i%d:x%t:o%t",
		graph.Fingerprint(g), c.Fingerprint(),
		opt.Segments, opt.MaxIterations, opt.ExactSearch, opt.optimize())
}

// hapOptions lowers wire options plus server config into planner options.
func (s *Server) hapOptions(opt RequestOptions) hap.Options {
	budget := s.cfg.SynthTimeBudget
	if budget < 0 {
		budget = 0 // negative config = unlimited
	}
	return hap.Options{
		Segments:      opt.Segments,
		MaxIterations: opt.MaxIterations,
		ExactSearch:   opt.ExactSearch,
		DisablePasses: !opt.optimize(),
		TimeBudget:    budget,
		Workers:       s.cfg.SynthWorkers,
	}
}

// fail answers an error. The v1 endpoints get the structured JSON envelope;
// the legacy endpoint keeps its historical plain-text body.
func (s *Server) fail(w http.ResponseWriter, v1 bool, status int, code string, format string, args ...any) {
	s.errors.Add(1)
	msg := fmt.Sprintf(format, args...)
	if !v1 {
		http.Error(w, msg, status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorEnvelope{Code: code, Message: msg})
}

// synthErrorCode maps a planner error to (HTTP status, envelope code). A
// cancelled request context means the client went away: 499 in the nginx
// convention, for the log's benefit — nobody reads the body.
func synthErrorCode(err error) (int, string) {
	if errors.Is(err, context.Canceled) {
		return 499, CodeCanceled
	}
	return http.StatusUnprocessableEntity, CodeSynthesisFailed
}

// wantsBinaryPlan reports whether the request negotiates the binary plan
// content type (v1 endpoints only).
func wantsBinaryPlan(r *http.Request) bool {
	for _, accept := range r.Header.Values("Accept") {
		for _, part := range strings.Split(accept, ",") {
			mt := strings.TrimSpace(part)
			if i := strings.IndexByte(mt, ';'); i >= 0 {
				mt = strings.TrimSpace(mt[:i])
			}
			if mt == BinaryPlanContentType {
				return true
			}
		}
	}
	return false
}

// decodePlanRequest parses and validates the shared body shape of the
// synthesize endpoints. Failures are answered on w; the bool reports success.
func (s *Server) decodePlanRequest(w http.ResponseWriter, r *http.Request, v1 bool, into any) bool {
	if r.Method != http.MethodPost {
		s.fail(w, v1, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST required")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes))
	if err := dec.Decode(into); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, v1, http.StatusRequestEntityTooLarge, CodeTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		s.fail(w, v1, http.StatusBadRequest, CodeBadRequest, "bad request: %v", err)
		return false
	}
	return true
}

// The aggregate and per-endpoint request counters increment together, at
// the top of each handler, so RequestsByEndpoint always sums to Requests —
// including requests rejected before synthesis (bad method, bad body).
func (s *Server) handleLegacySynthesize(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.epLegacy.Add(1)
	s.synthesizeOne(w, r, false)
}

func (s *Server) handleV1Synthesize(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.epV1.Add(1)
	s.synthesizeOne(w, r, true)
}

// synthesizeOne serves the single-cluster synthesize endpoints. v1 selects
// the structured error envelope and binary content negotiation.
func (s *Server) synthesizeOne(w http.ResponseWriter, r *http.Request, v1 bool) {
	var req Request
	if !s.decodePlanRequest(w, r, v1, &req) {
		return
	}
	if len(req.Graph) == 0 || len(req.Cluster) == 0 {
		s.fail(w, v1, http.StatusBadRequest, CodeBadRequest, "bad request: graph and cluster are required")
		return
	}
	g, err := graph.Decode(bytes.NewReader(req.Graph))
	if err != nil {
		s.fail(w, v1, http.StatusBadRequest, CodeBadRequest, "bad request: %v", err)
		return
	}
	c, err := cluster.Decode(bytes.NewReader(req.Cluster))
	if err != nil {
		s.fail(w, v1, http.StatusBadRequest, CodeBadRequest, "bad request: %v", err)
		return
	}

	binary := v1 && wantsBinaryPlan(r)
	key := cacheKey(g, c, req.Options)
	if plan, ok := s.cache.get(key); ok {
		s.hits.Add(1)
		writePlan(w, plan, "hit", binary)
		return
	}
	s.misses.Add(1)
	plan, err, shared := s.flight.do(r.Context(), key, func(fctx context.Context) (cachedPlan, error) {
		// Re-check under the flight: a request that missed while a previous
		// flight for this key was completing would otherwise re-synthesize a
		// plan the cache now holds.
		if v, ok := s.cache.get(key); ok {
			return v, nil
		}
		s.syntheses.Add(1)
		// fctx is the flight context: alive while any client still wants
		// this plan, cancelled when the last one disconnects — so a dropped
		// connection aborts the search without killing the synthesis other
		// waiters are sharing.
		p, err := s.cfg.Synthesize(fctx, g, c, s.hapOptions(req.Options))
		if err != nil {
			return cachedPlan{}, err
		}
		s.recordPassStats(p.Passes)
		v, err := encodePlan(p)
		if err != nil {
			return cachedPlan{}, err
		}
		// Cache before the flight key is released: a request arriving between
		// flight completion and a later insert would synthesize a second time.
		s.storePlan(key, v)
		return v, nil
	})
	if shared {
		s.flightShared.Add(1)
	}
	if err != nil {
		status, code := synthErrorCode(err)
		s.fail(w, v1, status, code, "synthesis failed: %v", err)
		return
	}
	writePlan(w, plan, "miss", binary)
}

// handleV1Batch serves POST /v1/synthesize/batch: one graph against many
// clusters. Clusters already cached are served from cache; the remaining
// ones are planned in a single PlanBatch call that builds the graph theory
// once — the request-coalescing path the batch endpoint exists for. The
// response is always JSON.
func (s *Server) handleV1Batch(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.epV1Batch.Add(1)
	var req BatchRequest
	if !s.decodePlanRequest(w, r, true, &req) {
		return
	}
	if len(req.Graph) == 0 || len(req.Clusters) == 0 {
		s.fail(w, true, http.StatusBadRequest, CodeBadRequest, "bad request: graph and a non-empty clusters list are required")
		return
	}
	g, err := graph.Decode(bytes.NewReader(req.Graph))
	if err != nil {
		s.fail(w, true, http.StatusBadRequest, CodeBadRequest, "bad request: %v", err)
		return
	}
	clusters := make([]*cluster.Cluster, len(req.Clusters))
	keys := make([]string, len(req.Clusters))
	for i, raw := range req.Clusters {
		c, err := cluster.Decode(bytes.NewReader(raw))
		if err != nil {
			s.fail(w, true, http.StatusBadRequest, CodeBadRequest, "bad request: cluster %d: %v", i, err)
			return
		}
		clusters[i] = c
		keys[i] = cacheKey(g, c, req.Options)
	}

	results := make([]BatchPlanResult, len(clusters))
	// Collect the clusters that need a synthesis, coalescing duplicates
	// (the same cluster listed twice is one search, answered twice).
	missing := map[string]int{} // key → index of first cluster needing it
	var missingOrder []string
	for i, key := range keys {
		if v, ok := s.cache.get(key); ok {
			s.hits.Add(1)
			results[i] = BatchPlanResult{Cache: "hit", Plan: v.plan, Passes: v.passes}
			continue
		}
		s.misses.Add(1)
		results[i] = BatchPlanResult{Cache: "miss"}
		if _, ok := missing[key]; !ok {
			missing[key] = i
			missingOrder = append(missingOrder, key)
		}
	}
	if len(missing) > 0 {
		toPlan := make([]*cluster.Cluster, len(missingOrder))
		for j, key := range missingOrder {
			toPlan[j] = clusters[missing[key]]
		}
		s.syntheses.Add(uint64(len(toPlan)))
		plans, batchErr := s.cfg.PlanBatch(r.Context(), g, toPlan, s.hapOptions(req.Options))
		if batchErr == nil && len(plans) != len(toPlan) {
			plans, batchErr = nil, fmt.Errorf("planner returned %d plans for %d clusters", len(plans), len(toPlan))
		}
		// Cache whatever completed even when the batch as a whole failed
		// (PlanBatch returns partial results): a starved cluster under the
		// shared budget must not force retries to re-pay its siblings' work.
		fresh := map[string]cachedPlan{}
		for j, key := range missingOrder {
			if j >= len(plans) || plans[j] == nil {
				continue
			}
			s.recordPassStats(plans[j].Passes)
			v, err := encodePlan(plans[j])
			if err != nil {
				s.fail(w, true, http.StatusInternalServerError, CodeSynthesisFailed, "encoding plan: %v", err)
				return
			}
			s.storePlan(key, v)
			fresh[key] = v
		}
		if batchErr != nil {
			status, code := synthErrorCode(batchErr)
			s.fail(w, true, status, code, "synthesis failed: %v", batchErr)
			return
		}
		for i, key := range keys {
			if v, ok := fresh[key]; ok && results[i].Plan == nil {
				results[i].Plan = v.plan
				results[i].Passes = v.passes
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(BatchResponse{Plans: results})
}

// encodePlan renders a synthesized plan into its cached wire forms: the
// diffable JSON and the compact binary payload, plus the passes header.
func encodePlan(p *hap.Plan) (cachedPlan, error) {
	var buf bytes.Buffer
	if err := p.WriteProgram(&buf); err != nil {
		return cachedPlan{}, err
	}
	var bin bytes.Buffer
	if err := p.WriteProgramBinary(&bin); err != nil {
		return cachedPlan{}, err
	}
	return cachedPlan{plan: buf.Bytes(), bin: bin.Bytes(), passes: passesHeader(p.Passes)}, nil
}

// storePlan inserts a plan into the cache and, when persistence is on,
// writes it through to disk — deleting the files of any entries the insert
// evicted, so the directory tracks the LRU's contents. A plan the cache
// rejected (over the byte cap on its own) is not persisted either: its file
// would never be eviction-tracked and would accumulate forever.
func (s *Server) storePlan(key string, v cachedPlan) {
	stored, evicted := s.cache.add(key, v)
	if s.persist == nil {
		return
	}
	if stored {
		s.persist.save(key, v)
	}
	for _, k := range evicted {
		s.persist.remove(k)
	}
}

// passesHeader renders the pass pipeline's per-pass rewrite counters as the
// X-HAP-Passes header value, in pipeline order: "comm-fusion=3,dce=2".
// Empty when the pipeline did not run (request opted out, or a stubbed
// planner reported no stats).
func passesHeader(ps hap.PassStats) string {
	if ps.Rounds == 0 {
		return ""
	}
	var b strings.Builder
	for i, p := range ps.PerPass {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", p.Pass, p.Changed)
	}
	return b.String()
}

func writePlan(w http.ResponseWriter, plan cachedPlan, cache string, binary bool) {
	w.Header().Set("X-HAP-Cache", cache)
	if plan.passes != "" {
		w.Header().Set("X-HAP-Passes", plan.passes)
	}
	if binary && len(plan.bin) > 0 {
		w.Header().Set("Content-Type", BinaryPlanContentType)
		w.Write(plan.bin)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(plan.plan)
}

// healthzPayload is the GET /healthz body: liveness, the wire protocol
// version, and the per-endpoint request counters.
type healthzPayload struct {
	Status   string            `json:"status"`
	Protocol string            `json:"protocol"`
	Requests map[string]uint64 `json:"requests"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(healthzPayload{
		Status:   "ok",
		Protocol: ProtocolVersion,
		Requests: map[string]uint64{
			EndpointLegacy:  s.epLegacy.Load(),
			EndpointV1:      s.epV1.Load(),
			EndpointV1Batch: s.epV1Batch.Load(),
		},
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}

// handleMetrics exposes the server counters in the Prometheus text
// exposition format (version 0.0.4), so a scrape target needs no sidecar.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b bytes.Buffer
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	fmt.Fprintf(&b, "# HELP hap_serve_protocol_info Wire protocol version served, as an info-style gauge.\n# TYPE hap_serve_protocol_info gauge\nhap_serve_protocol_info{version=%q} 1\n", st.Protocol)
	counter("hap_serve_requests_total", "Plan requests across all endpoints.", st.Requests)
	// Per-endpoint breakdown, in fixed order for a stable exposition.
	fmt.Fprintf(&b, "# HELP hap_serve_requests_by_endpoint_total Plan requests, by wire endpoint.\n# TYPE hap_serve_requests_by_endpoint_total counter\n")
	for _, ep := range []string{EndpointLegacy, EndpointV1, EndpointV1Batch} {
		fmt.Fprintf(&b, "hap_serve_requests_by_endpoint_total{endpoint=%q} %d\n", ep, st.RequestsByEndpoint[ep])
	}
	counter("hap_serve_cache_hits_total", "Requests served straight from the plan cache.", st.CacheHits)
	counter("hap_serve_cache_misses_total", "Requests that required (or joined) a synthesis.", st.CacheMisses)
	counter("hap_serve_syntheses_total", "Plans actually synthesized.", st.Syntheses)
	counter("hap_serve_flight_shared_total", "Cache misses that joined an in-flight synthesis.", st.FlightShared)
	counter("hap_serve_errors_total", "Requests answered with an error status.", st.Errors)
	counter("hap_serve_cache_evictions_total", "Plans evicted by the LRU caps.", st.CacheEvictions)
	gauge("hap_serve_cache_entries", "Plans currently cached.", float64(st.CacheEntries))
	gauge("hap_serve_cache_bytes", "Bytes of plans currently cached.", float64(st.CacheBytes))
	gauge("hap_serve_cache_restored", "Plans reloaded from the cache directory on boot.", float64(st.CacheRestored))
	gauge("hap_serve_uptime_seconds", "Seconds since the server started.", st.UptimeSeconds)
	counter("hap_serve_pass_runs_total", "Syntheses that ran the post-synthesis pass pipeline.", st.PassRuns)
	counter("hap_serve_pass_rewrites_total", "Program rewrites applied by the pass pipeline.", st.PassRewrites)
	// Per-pass breakdown, emitted in sorted order for a stable exposition.
	fmt.Fprintf(&b, "# HELP hap_serve_pass_rewrites_by_total Program rewrites applied, by pass.\n# TYPE hap_serve_pass_rewrites_by_total counter\n")
	names := make([]string, 0, len(st.PassRewritesBy))
	for name := range st.PassRewritesBy {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "hap_serve_pass_rewrites_by_total{pass=%q} %d\n", name, st.PassRewritesBy[name])
	}
	w.Write(b.Bytes())
}
