// Tests for the daemon's tracing layer: the single-node span tree of a cold
// synthesis, cross-node trace propagation over a fleet proxy hop, the
// Chrome trace-event export, the -trace-slow structured log line, and the
// phase summaries /metrics derives from completed spans.

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hap/internal/cluster"
	"hap/internal/fleet"
	"hap/internal/obs"
	"hap/internal/telemetry"
)

// beamCluster has three devices, so synth.Auto picks the beam search and
// the trace carries per-level beam_level spans (two devices solve exactly).
func beamCluster() *cluster.Cluster {
	return cluster.FromGPUs(cluster.DefaultNetwork(),
		cluster.MachineSpec{Type: cluster.V100, GPUs: 2},
		cluster.MachineSpec{Type: cluster.P100, GPUs: 1})
}

// getTraceList fetches GET /v1/debug/traces.
func getTraceList(t *testing.T, url string) []TraceSummary {
	t.Helper()
	resp, err := http.Get(url + "/v1/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/debug/traces: status %d", resp.StatusCode)
	}
	var out struct {
		Traces []TraceSummary `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode trace list: %v", err)
	}
	return out.Traces
}

// getTrace fetches GET /v1/debug/traces/{id}.
func getTrace(t *testing.T, url, id string) *obs.TraceRecord {
	t.Helper()
	resp, err := http.Get(url + "/v1/debug/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/debug/traces/%s: status %d", id, resp.StatusCode)
	}
	var rec obs.TraceRecord
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	return &rec
}

// spanNames collects the distinct span names of a trace.
func spanNames(rec *obs.TraceRecord) map[string]int {
	names := map[string]int{}
	for _, sp := range rec.Spans {
		names[sp.Name]++
	}
	return names
}

// assertWellFormed checks every span's parent exists in the trace (or is 0)
// and that exactly one root span exists.
func assertWellFormed(t *testing.T, rec *obs.TraceRecord) {
	t.Helper()
	ids := map[uint64]bool{}
	roots := 0
	for _, sp := range rec.Spans {
		if sp.ID == 0 {
			t.Fatalf("span %q has zero ID", sp.Name)
		}
		ids[sp.ID] = true
	}
	for _, sp := range rec.Spans {
		if sp.Parent == 0 {
			roots++
			continue
		}
		if !ids[sp.Parent] {
			t.Errorf("span %q parent %x not in trace", sp.Name, sp.Parent)
		}
	}
	if roots != 1 {
		t.Errorf("trace has %d roots, want exactly 1", roots)
	}
}

// TestTraceSingleNodeSynthesis: a cold miss on a standalone daemon records
// one trace whose span tree covers the whole pipeline — decode, cache
// lookup, flight, synthesize, theory, per-level beam search, passes,
// verify, encode — and a repeat hit records a trace with no synthesis.
func TestTraceSingleNodeSynthesis(t *testing.T) {
	srv := httptest.NewServer(New(Config{}).Handler())
	defer srv.Close()
	body := requestBody(t, testGraph(t), beamCluster(), RequestOptions{})

	resp, err := http.Post(srv.URL+"/v1/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synthesize: status %d", resp.StatusCode)
	}
	traceID := resp.Header.Get(obs.TraceHeader)
	if traceID == "" {
		t.Fatal("response carries no X-HAP-Trace header")
	}

	rec := getTrace(t, srv.URL, traceID)
	assertWellFormed(t, rec)
	names := spanNames(rec)
	for _, want := range []string{"request", "decode", "cache_lookup", "flight", "synthesize", "theory", "search", "beam_level", "passes", "verify", "encode"} {
		if names[want] == 0 {
			t.Errorf("trace lacks a %q span (got %v)", want, names)
		}
	}
	if names["beam_level"] < 2 {
		t.Errorf("beam search recorded %d beam_level spans, want one per level (>= 2)", names["beam_level"])
	}
	root := rec.Root()
	if root.Attrs["cache"] != "miss" || root.Attrs["endpoint"] != EndpointV1 {
		t.Errorf("root attrs = %v, want cache=miss endpoint=%s", root.Attrs, EndpointV1)
	}
	for _, sp := range rec.Spans {
		if sp.Name == "beam_level" && sp.Attrs["candidates"] == "" {
			t.Errorf("beam_level span lacks candidates attr: %v", sp.Attrs)
		}
	}

	// The repeat request is a hit: its trace has a cache_lookup but no
	// synthesize span, and the listing shows both traces newest-first.
	resp2, err := http.Post(srv.URL+"/v1/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	hitID := resp2.Header.Get(obs.TraceHeader)
	hit := getTrace(t, srv.URL, hitID)
	if n := spanNames(hit); n["synthesize"] != 0 || n["cache_lookup"] == 0 {
		t.Errorf("hit trace spans = %v, want cache_lookup and no synthesize", n)
	}
	if hit.Root().Attrs["cache"] != "hit" {
		t.Errorf("hit trace root cache attr = %q", hit.Root().Attrs["cache"])
	}
	list := getTraceList(t, srv.URL)
	if len(list) != 2 || list[0].TraceID != hitID || list[1].TraceID != traceID {
		t.Errorf("trace list = %+v, want [hit, miss] newest first", list)
	}
}

// TestTraceClientProvidedID: a client-sent X-HAP-Trace ID is adopted as the
// trace identifier, so the caller can look the request up afterwards.
func TestTraceClientProvidedID(t *testing.T) {
	srv := httptest.NewServer(New(Config{}).Handler())
	defer srv.Close()
	body := requestBody(t, testGraph(t), testCluster(), RequestOptions{})

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/synthesize", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, "cafe0123cafe0123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); got != "cafe0123cafe0123" {
		t.Fatalf("response trace ID = %q, want the client-chosen one", got)
	}
	rec := getTrace(t, srv.URL, "cafe0123cafe0123")
	assertWellFormed(t, rec)
}

// TestTraceRingDisabled: a negative TraceRing turns tracing off — no trace
// header on responses, 404 from the debug endpoint, requests still served.
func TestTraceRingDisabled(t *testing.T) {
	srv := httptest.NewServer(New(Config{TraceRing: -1}).Handler())
	defer srv.Close()
	body := requestBody(t, testGraph(t), testCluster(), RequestOptions{})
	resp, err := http.Post(srv.URL+"/v1/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synthesize with tracing off: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != "" {
		t.Errorf("tracing off but response carries trace ID %q", got)
	}
	dbg, err := http.Get(srv.URL + "/v1/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dbg.Body)
	dbg.Body.Close()
	if dbg.StatusCode != http.StatusNotFound {
		t.Errorf("debug endpoint with tracing off: status %d, want 404", dbg.StatusCode)
	}
}

// newTracedPair boots a 2-node fleet with the real (context-aware) planner,
// so synthesis-phase spans land in the owner's request trace.
func newTracedPair(t *testing.T) []*fleetNode {
	t.Helper()
	nodes := make([]*fleetNode, 2)
	switches := make([]*switchHandler, 2)
	urls := make([]string, 2)
	for i := range nodes {
		switches[i] = &switchHandler{}
		srv := httptest.NewServer(switches[i])
		t.Cleanup(srv.Close)
		nodes[i] = &fleetNode{url: srv.URL, srv: srv}
		urls[i] = srv.URL
	}
	for i, n := range nodes {
		fl, err := fleet.New(fleet.Config{Self: n.url, Peers: urls, Replicas: 2})
		if err != nil {
			t.Fatal(err)
		}
		n.s = New(Config{Fleet: fl})
		t.Cleanup(n.s.Close)
		switches[i].set(n.s.Handler())
	}
	return nodes
}

// TestTraceFleetCrossNode is the tracing acceptance test: a cold request
// through the NON-owning node yields ONE trace containing spans from both
// nodes — the proxy hop on the requesting node, and the remote request
// subtree (synthesis phases, replication fan-out) parented under that hop —
// plus a valid Chrome export with one process per node.
func TestTraceFleetCrossNode(t *testing.T) {
	nodes := newTracedPair(t)
	g, c := testGraph(t), beamCluster()
	key := cacheKey(g, c, RequestOptions{})
	ownerURL := nodes[0].s.cfg.Fleet.Owner(key)
	requester := nodes[0]
	if requester.url == ownerURL {
		requester = nodes[1]
	}

	body := requestBody(t, g, c, RequestOptions{})
	resp, err := http.Post(requester.url+"/v1/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cross-node synthesize: status %d", resp.StatusCode)
	}
	if resp.Header.Get(obs.SpansHeader) != "" {
		t.Error("span-export header leaked to an end client (must be fleet-internal)")
	}
	traceID := resp.Header.Get(obs.TraceHeader)
	rec := getTrace(t, requester.url, traceID)
	assertWellFormed(t, rec)

	names := spanNames(rec)
	for _, want := range []string{"request", "proxy", "synthesize", "theory", "search", "beam_level", "passes", "verify", "encode", "replicate", "replicate_push"} {
		if names[want] == 0 {
			t.Errorf("cross-node trace lacks a %q span (got %v)", want, names)
		}
	}
	if names["request"] != 2 {
		t.Errorf("cross-node trace has %d request spans, want 2 (one per node)", names["request"])
	}

	// Spans from both nodes, and the remote request span parented under the
	// proxy hop recorded on the requesting node.
	byNode := map[string]int{}
	var proxyID, remoteRootParent uint64
	for _, sp := range rec.Spans {
		byNode[sp.Node]++
		if sp.Name == "proxy" {
			proxyID = sp.ID
		}
		if sp.Name == "request" && sp.Node == ownerURL {
			remoteRootParent = sp.Parent
		}
	}
	if byNode[requester.url] == 0 || byNode[ownerURL] == 0 {
		t.Fatalf("trace spans by node = %v, want both %s and %s", byNode, requester.url, ownerURL)
	}
	if proxyID == 0 || remoteRootParent != proxyID {
		t.Errorf("remote request span parent = %x, want the proxy hop span %x", remoteRootParent, proxyID)
	}

	// The Chrome export is valid JSON with one process per node plus every
	// span as a complete event.
	chromeResp, err := http.Get(requester.url + "/v1/debug/traces/" + traceID + "?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer chromeResp.Body.Close()
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			PID  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(chromeResp.Body).Decode(&chrome); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	procs, complete := map[int]bool{}, 0
	for _, ev := range chrome.TraceEvents {
		switch ev.Ph {
		case "M":
			procs[ev.PID] = true
		case "X":
			complete++
		}
	}
	if len(procs) != 2 {
		t.Errorf("chrome export names %d processes, want 2 (one per node)", len(procs))
	}
	if complete != len(rec.Spans) {
		t.Errorf("chrome export has %d complete events for %d spans", complete, len(rec.Spans))
	}

	// The owner recorded its own trace too (same ID, its local subtree) —
	// but the requester's merged view is the single source of truth asserted
	// above.
	if owner := getTrace(t, ownerURL, traceID); len(owner.Spans) == 0 {
		t.Error("owner node retained no trace for the forwarded request")
	}
}

// syncBuffer is a goroutine-safe log sink.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestTraceSlowLogEveryRequest: with a negative -trace-slow every request
// emits one structured slow-request line, parseable as JSON, carrying the
// trace ID the client saw and a span breakdown.
func TestTraceSlowLogEveryRequest(t *testing.T) {
	var logs syncBuffer
	s := New(Config{TraceSlow: -1, Logger: obs.NewLogger("json", &logs)})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body := requestBody(t, testGraph(t), testCluster(), RequestOptions{})
	resp, err := http.Post(srv.URL+"/v1/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	traceID := resp.Header.Get(obs.TraceHeader)

	var found bool
	for _, line := range strings.Split(strings.TrimSpace(logs.String()), "\n") {
		if line == "" {
			continue
		}
		var entry map[string]any
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("log line is not JSON: %q (%v)", line, err)
		}
		if entry["msg"] != "slow request" {
			continue
		}
		found = true
		if entry["trace_id"] != traceID {
			t.Errorf("slow log trace_id = %v, want %s", entry["trace_id"], traceID)
		}
		if entry["endpoint"] != EndpointV1 || entry["cache"] != "miss" {
			t.Errorf("slow log labels = endpoint:%v cache:%v", entry["endpoint"], entry["cache"])
		}
		spans, _ := entry["spans"].(string)
		if !strings.Contains(spans, "synthesize=") {
			t.Errorf("slow log span breakdown %q lacks synthesize", spans)
		}
	}
	if !found {
		t.Fatalf("no slow-request line logged; log was:\n%s", logs.String())
	}
	if got := s.slowRequests.Load(); got != 1 {
		t.Errorf("slowRequests counter = %d, want 1", got)
	}
}

// TestMetricsPhaseSummaries: a cold synthesis feeds the per-phase /metrics
// summaries; every phase slot has a count and the tracing gauges exist.
func TestMetricsPhaseSummaries(t *testing.T) {
	srv := httptest.NewServer(New(Config{}).Handler())
	defer srv.Close()
	body := requestBody(t, testGraph(t), beamCluster(), RequestOptions{})
	resp, err := http.Post(srv.URL+"/v1/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, _ := io.ReadAll(mresp.Body)
	text := string(raw)
	for _, phase := range phaseNames {
		line := fmt.Sprintf("hap_serve_synth_phase_seconds_count{phase=%q} ", phase)
		i := strings.Index(text, line)
		if i < 0 {
			t.Errorf("/metrics lacks %s", line)
			continue
		}
		rest := text[i+len(line):]
		if strings.HasPrefix(rest, "0\n") {
			t.Errorf("phase %q count is 0 after a cold synthesis", phase)
		}
	}
	for _, series := range []string{"hap_serve_slow_requests_total", "hap_serve_debug_traces"} {
		if !strings.Contains(text, series) {
			t.Errorf("/metrics lacks %s", series)
		}
	}
}

// TestMetricsScrapeDuringReplan hammers /metrics and /stats while a
// background replan synthesizes and swaps — the regression test for the
// scrape path reading live counters mid-swap (run under -race). It also
// checks the replan recorded its own trace in the debug ring.
func TestMetricsScrapeDuringReplan(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	g, c := testGraph(t), testCluster()
	body := requestBody(t, g, c, RequestOptions{})
	status, _, _ := post(t, srv.URL, body)
	if status != http.StatusOK {
		t.Fatalf("seeding synthesis: status %d", status)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/metrics", "/stats"} {
					resp, err := http.Get(srv.URL + path)
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}

	// Throttle device 0 to half throughput: past the drift threshold, the
	// cached entry replans in the background while the scrapers run.
	tb := telemetryBody(t, c, TelemetryRequest{
		Devices: []telemetry.DeviceSample{{Device: 0, TFLOPS: achievedTFLOPS(c, 0) * 0.5}},
	})
	tstatus, tr, raw := postTelemetry(t, srv.URL, tb)
	if tstatus != http.StatusOK || !tr.Drifted || tr.ReplansStarted != 1 {
		t.Fatalf("telemetry: status %d drifted=%v replans=%d: %s", tstatus, tr.Drifted, tr.ReplansStarted, raw)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := getStats(t, srv.URL)
		if st.Telemetry != nil && st.Telemetry.Replans+st.Telemetry.ReplansUnchanged+st.Telemetry.ReplanErrors >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replan never completed")
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// The replan recorded its own trace, rooted at a "replan" span with the
	// synthesis inside it.
	var replan *TraceSummary
	for _, sum := range getTraceList(t, srv.URL) {
		if sum.Name == "replan" {
			replan = &sum
			break
		}
	}
	if replan == nil {
		t.Fatal("no replan trace in the debug ring")
	}
	rec := getTrace(t, srv.URL, replan.TraceID)
	if n := spanNames(rec); n["synthesize"] == 0 || n["verify"] == 0 {
		t.Errorf("replan trace spans = %v, want synthesize and verify", n)
	}
}
