package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hap"
	"hap/internal/cluster"
	"hap/internal/fleet"
	"hap/internal/graph"
)

// switchHandler lets an httptest.Server start before the serve.Server that
// will back it exists — the node's advertise URL is only known after the
// listener binds, and the fleet config needs that URL.
type switchHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (sw *switchHandler) set(h http.Handler) {
	sw.mu.Lock()
	sw.h = h
	sw.mu.Unlock()
}

func (sw *switchHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sw.mu.Lock()
	h := sw.h
	sw.mu.Unlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// fleetNode is one member of an in-process fleet.
type fleetNode struct {
	url   string
	srv   *httptest.Server
	s     *Server
	synth atomic.Int64 // syntheses this node actually ran
}

// newFleetTrio boots a 3-node in-process fleet: three loopback servers, each
// with its own serve.Server, cache, and counted synthesis stub, all agreeing
// on the same membership. mutate, when non-nil, adjusts each node's Config
// before New (e.g. to gate the synthesis stub).
func newFleetTrio(t *testing.T, mutate func(i int, cfg *Config)) []*fleetNode {
	t.Helper()
	nodes := make([]*fleetNode, 3)
	switches := make([]*switchHandler, 3)
	urls := make([]string, 3)
	for i := range nodes {
		switches[i] = &switchHandler{}
		srv := httptest.NewServer(switches[i])
		t.Cleanup(srv.Close)
		nodes[i] = &fleetNode{url: srv.URL, srv: srv}
		urls[i] = srv.URL
	}
	for i, n := range nodes {
		fl, err := fleet.New(fleet.Config{Self: n.url, Peers: urls, Replicas: 2})
		if err != nil {
			t.Fatal(err)
		}
		node := n
		cfg := Config{
			Fleet: fl,
			Synthesize: func(ctx context.Context, g *graph.Graph, c *cluster.Cluster, opt hap.Options) (*hap.Plan, error) {
				node.synth.Add(1)
				return hap.Parallelize(g, c, opt)
			},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		n.s = New(cfg)
		t.Cleanup(n.s.Close)
		switches[i].set(n.s.Handler())
	}
	return nodes
}

// postV1 hits /v1/synthesize and returns status, the cache header, the fleet
// node header, and the body.
func postV1(t *testing.T, url string, body []byte) (int, string, string, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("X-HAP-Cache"), resp.Header.Get(fleet.NodeHeader), b
}

func totalSyntheses(nodes []*fleetNode) int64 {
	var n int64
	for _, node := range nodes {
		n += node.synth.Load()
	}
	return n
}

// ownerIndex returns the index of the node that owns key, and the indexes of
// every other node.
func ownerIndex(t *testing.T, nodes []*fleetNode, key string) (owner int, others []int) {
	t.Helper()
	ownerURL := nodes[0].s.cfg.Fleet.Owner(key)
	owner = -1
	for i, n := range nodes {
		if n.url == ownerURL {
			owner = i
		} else {
			others = append(others, i)
		}
	}
	if owner == -1 {
		t.Fatalf("owner %q is not one of the trio", ownerURL)
	}
	return owner, others
}

// TestFleetCrossNodeSingleFlight is the fleet acceptance test: N identical
// concurrent requests fanned across all three nodes synthesize exactly once
// (on the ring owner, whose single-flight group the other nodes join by
// proxying), every caller gets byte-identical plans, and after the herd the
// owner's death still leaves the plan readable from a replica.
func TestFleetCrossNodeSingleFlight(t *testing.T) {
	const n = 12
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	nodes := newFleetTrio(t, func(i int, cfg *Config) {
		inner := cfg.Synthesize
		cfg.Synthesize = func(ctx context.Context, g *graph.Graph, c *cluster.Cluster, opt hap.Options) (*hap.Plan, error) {
			// Hold the first (and, if the fleet works, only) synthesis open
			// until the whole herd is in flight.
			once.Do(func() { close(started) })
			<-release
			return inner(ctx, g, c, opt)
		}
	})
	g, c := testGraph(t), testCluster()
	body := requestBody(t, g, c, RequestOptions{})
	key := cacheKey(g, c, RequestOptions{})
	owner, others := ownerIndex(t, nodes, key)

	var wg sync.WaitGroup
	plans := make([][]byte, n)
	statuses := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], _, _, plans[i] = postV1(t, nodes[i%3].url, body)
		}(i)
	}
	<-started
	// The herd is piling in; give the stragglers a beat to reach the owner's
	// flight group, then let the one synthesis finish.
	time.Sleep(200 * time.Millisecond)
	close(release)
	wg.Wait()

	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("client %d: status %d: %s", i, statuses[i], plans[i])
		}
		if !bytes.Equal(plans[0], plans[i]) {
			t.Errorf("client %d received a different plan", i)
		}
	}
	if got := totalSyntheses(nodes); got != 1 {
		t.Errorf("fleet ran %d syntheses for %d identical concurrent requests, want exactly 1", got, n)
	}
	if nodes[owner].synth.Load() != 1 {
		t.Errorf("the one synthesis did not run on the ring owner")
	}
	// The non-owners answered their misses by proxying; /stats must show it.
	for _, i := range others {
		st := getStats(t, nodes[i].url)
		if st.Fleet == nil {
			t.Fatalf("node %d /stats has no fleet slice", i)
		}
		if st.Fleet.Proxied == 0 {
			t.Errorf("node %d proxied no requests despite not owning the key", i)
		}
	}
	// Replication: with Replicas=2 exactly one non-owner holds a copy.
	ownerStats := getStats(t, nodes[owner].url)
	if ownerStats.Fleet.ReplicatedOut != 1 {
		t.Errorf("owner replicated %d entries, want 1", ownerStats.Fleet.ReplicatedOut)
	}

	// Kill the owner: the key must survive on its replica. Requests to the
	// surviving nodes still answer 200 — from local cache on the replica
	// holder, via replica-fallback proxy on the node that holds nothing —
	// and nobody re-synthesizes.
	nodes[owner].srv.Close()
	for _, i := range others {
		status, _, _, b := postV1(t, nodes[i].url, body)
		if status != http.StatusOK {
			t.Errorf("node %d after owner death: status %d: %s", i, status, b)
		}
		if !bytes.Equal(b, plans[0]) {
			t.Errorf("node %d served a different plan after owner death", i)
		}
	}
	if got := totalSyntheses(nodes); got != 1 {
		t.Errorf("owner death triggered re-synthesis: %d total syntheses", got)
	}
}

// TestFleetOwnerDownReplicaRead kills the owner before a node that holds no
// copy ever asks for the key: the miss falls over from the dead owner to the
// replica, which answers from its cache, and the response carries the
// replica's URL in the fleet node header.
func TestFleetOwnerDownReplicaRead(t *testing.T) {
	nodes := newFleetTrio(t, nil)
	g, c := testGraph(t), testCluster()
	body := requestBody(t, g, c, RequestOptions{})
	key := cacheKey(g, c, RequestOptions{})
	owner, others := ownerIndex(t, nodes, key)

	// Fill through the owner so the entry exists there plus one replica.
	if status, _, _, b := postV1(t, nodes[owner].url, body); status != http.StatusOK {
		t.Fatalf("fill request: status %d: %s", status, b)
	}
	replicaSet := nodes[owner].s.cfg.Fleet.ReplicaSet(key)
	if len(replicaSet) != 2 || replicaSet[0] != nodes[owner].url {
		t.Fatalf("replica set = %v, want owner first and one successor", replicaSet)
	}
	var reader int // the node that holds nothing
	for _, i := range others {
		if nodes[i].url != replicaSet[1] {
			reader = i
		}
	}

	nodes[owner].srv.Close()
	status, cacheHdr, nodeHdr, b := postV1(t, nodes[reader].url, body)
	if status != http.StatusOK {
		t.Fatalf("replica read: status %d: %s", status, b)
	}
	if cacheHdr != "hit" {
		t.Errorf("replica read X-HAP-Cache = %q, want hit (replicas serve from cache)", cacheHdr)
	}
	if nodeHdr != replicaSet[1] {
		t.Errorf("fleet node header = %q, want the replica %q", nodeHdr, replicaSet[1])
	}
	if got := totalSyntheses(nodes); got != 1 {
		t.Errorf("replica read re-synthesized: %d total syntheses", got)
	}
	st := getStats(t, nodes[reader].url)
	if st.Fleet.ProxyErrors == 0 {
		t.Error("dead owner produced no proxy error")
	}
	if st.Fleet.Proxied == 0 {
		t.Error("replica answer not counted as proxied")
	}
}

// TestFleetPeerListReloadMidTraffic grows a 2-node fleet to 3 by rewriting
// the peers file between requests: traffic before, during, and after the
// reload answers 200, and /stats counts the membership change.
func TestFleetPeerListReloadMidTraffic(t *testing.T) {
	// Three servers up front, but only the first two start in the peers file.
	switches := make([]*switchHandler, 3)
	urls := make([]string, 3)
	srvs := make([]*httptest.Server, 3)
	for i := range switches {
		switches[i] = &switchHandler{}
		srvs[i] = httptest.NewServer(switches[i])
		defer srvs[i].Close()
		urls[i] = srvs[i].URL
	}
	dir := t.TempDir()
	peersFile := filepath.Join(dir, "peers")
	writePeers := func(members []string) {
		t.Helper()
		if err := os.WriteFile(peersFile, []byte(strings.Join(members, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writePeers(urls[:2])

	nodes := make([]*fleetNode, 3)
	for i := range nodes {
		fl, err := fleet.New(fleet.Config{Self: urls[i], PeersFile: peersFile, Replicas: 2})
		if err != nil {
			t.Fatal(err)
		}
		node := &fleetNode{url: urls[i], srv: srvs[i]}
		node.s = New(Config{
			Fleet: fl,
			Synthesize: func(ctx context.Context, g *graph.Graph, c *cluster.Cluster, opt hap.Options) (*hap.Plan, error) {
				node.synth.Add(1)
				return hap.Parallelize(g, c, opt)
			},
		})
		defer node.s.Close()
		switches[i].set(node.s.Handler())
		nodes[i] = node
	}

	g, c := testGraph(t), testCluster()
	body := requestBody(t, g, c, RequestOptions{})
	if status, _, _, b := postV1(t, nodes[0].url, body); status != http.StatusOK {
		t.Fatalf("pre-reload request: status %d: %s", status, b)
	}

	// Grow the fleet: all three nodes reload the same file, as SIGHUP or the
	// poller would make them. Nodes 0 and 1 learn about node 2; node 2's own
	// view already contained all three (self is always a member), so its
	// reload is correctly a no-op.
	writePeers(urls)
	for i, n := range nodes {
		changed, err := n.s.cfg.Fleet.Members.Reload()
		if err != nil {
			t.Fatalf("node %d reload: %v", i, err)
		}
		if want := i < 2; changed != want {
			t.Fatalf("node %d reload changed = %v, want %v", i, changed, want)
		}
	}

	// Traffic keeps flowing across the new 3-node ring; a second distinct
	// key exercises routing under the new membership end to end.
	hetero := cluster.FromGPUs(cluster.DefaultNetwork(),
		cluster.MachineSpec{Type: cluster.A100, GPUs: 1},
		cluster.MachineSpec{Type: cluster.P100, GPUs: 1})
	body2 := requestBody(t, testGraph(t), hetero, RequestOptions{})
	for i, n := range nodes {
		if status, _, _, b := postV1(t, n.url, body2); status != http.StatusOK {
			t.Fatalf("post-reload request via node %d: status %d: %s", i, status, b)
		}
	}
	if got := totalSyntheses(nodes); got != 2 {
		t.Errorf("fleet ran %d syntheses for 2 distinct keys, want 2", got)
	}
	st := getStats(t, nodes[0].url)
	if st.Fleet.MembershipReloads != 1 {
		t.Errorf("membership_reloads = %d, want 1", st.Fleet.MembershipReloads)
	}
	if len(st.Fleet.Peers) != 3 {
		t.Errorf("peers after reload = %v, want all 3", st.Fleet.Peers)
	}
}

// TestFleetEntriesRoundTrip pushes an entry over POST /v1/fleet/entries and
// reads it back over GET: the replication wire format round-trips, bad
// entries are rejected, and /stats counts the accepted push.
func TestFleetEntriesRoundTrip(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	e := fleet.Entry{Key: "k1", Plan: []byte(`{"plan":true}`), Bin: []byte{1, 2, 3}, Passes: "fuse"}
	push, _ := json.Marshal(e)
	resp, err := http.Post(srv.URL+fleet.EntriesPath, "application/json", bytes.NewReader(push))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("push: status %d, want 204", resp.StatusCode)
	}
	if v, ok := s.store.Get("k1"); !ok || !bytes.Equal(v.Plan, e.Plan) || !bytes.Equal(v.Bin, e.Bin) || v.Passes != "fuse" {
		t.Fatalf("pushed entry did not land in the store: %+v, %v", v, ok)
	}

	resp, err = http.Get(srv.URL + fleet.EntriesPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q", ct)
	}
	var streamed []fleet.Entry
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var got fleet.Entry
		if err := dec.Decode(&got); err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, got)
	}
	if len(streamed) != 1 || streamed[0].Key != "k1" || !bytes.Equal(streamed[0].Plan, e.Plan) {
		t.Errorf("streamed entries = %+v, want the pushed entry back", streamed)
	}

	// A plan-less entry is invalid.
	resp, err = http.Post(srv.URL+fleet.EntriesPath, "application/json", strings.NewReader(`{"key":"empty"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty entry: status %d, want 400", resp.StatusCode)
	}
}

// TestFleetWarmup boots a node against a peer holding three entries and
// expects all three to arrive; then re-runs warm-up against a peer whose
// stream dies mid-transfer and expects the prefix to be kept and the error
// reported — the "interrupted warm-up keeps what arrived" contract.
func TestFleetWarmup(t *testing.T) {
	source := New(Config{})
	defer source.Close()
	for i := 0; i < 3; i++ {
		source.store.Put(fmt.Sprintf("k%d", i), CachedPlan{Plan: []byte(fmt.Sprintf("plan-%d", i))})
	}
	srcSrv := httptest.NewServer(source.Handler())
	defer srcSrv.Close()

	fl, err := fleet.New(fleet.Config{Self: "http://joining:1", Peers: []string{srcSrv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	joining := New(Config{Fleet: fl})
	defer joining.Close()
	n, err := joining.WarmFrom(context.Background(), fl.Members.Peers())
	if err != nil || n != 3 {
		t.Fatalf("WarmFrom = (%d, %v), want (3, nil)", n, err)
	}
	for i := 0; i < 3; i++ {
		if _, ok := joining.store.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("warmed node is missing k%d", i)
		}
	}
	if st := joining.Stats(); st.Fleet.WarmupEntries != 3 {
		t.Errorf("warmup_entries = %d, want 3", st.Fleet.WarmupEntries)
	}

	// A peer that dies mid-stream: two complete NDJSON lines arrive, then
	// the connection is cut. The partial transfer must keep both entries.
	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		enc.Encode(fleet.Entry{Key: "p0", Plan: []byte("plan")})
		enc.Encode(fleet.Entry{Key: "p1", Plan: []byte("plan")})
		w.(http.Flusher).Flush()
		panic(http.ErrAbortHandler) // slam the connection mid-response
	}))
	defer dying.Close()

	fl2, err := fleet.New(fleet.Config{Self: "http://joining:2", Peers: []string{dying.URL}})
	if err != nil {
		t.Fatal(err)
	}
	cold := New(Config{Fleet: fl2})
	defer cold.Close()
	n, err = cold.WarmFrom(context.Background(), fl2.Members.Peers())
	if err == nil {
		t.Error("interrupted stream reported no error")
	}
	if n != 2 {
		t.Errorf("interrupted warm-up kept %d entries, want the 2 that arrived", n)
	}
	for _, k := range []string{"p0", "p1"} {
		if _, ok := cold.store.Get(k); !ok {
			t.Errorf("interrupted warm-up lost %s", k)
		}
	}
}

// TestFleetForwardedRequestNeverReforwards plants a forwarded request on a
// node that does not own the key: the node must synthesize locally rather
// than bounce the request onward, the loop-prevention invariant.
func TestFleetForwardedRequestNeverReforwards(t *testing.T) {
	nodes := newFleetTrio(t, nil)
	g, c := testGraph(t), testCluster()
	body := requestBody(t, g, c, RequestOptions{})
	key := cacheKey(g, c, RequestOptions{})
	_, others := ownerIndex(t, nodes, key)

	nonOwner := nodes[others[0]]
	req, err := http.NewRequest(http.MethodPost, nonOwner.url+"/v1/synthesize", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(fleet.ForwardHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("forwarded request: status %d: %s", resp.StatusCode, b)
	}
	if nonOwner.synth.Load() != 1 {
		t.Errorf("forwarded request did not synthesize on the receiving node")
	}
	st := getStats(t, nonOwner.url)
	if st.Fleet.ForwardedServed != 1 {
		t.Errorf("forwarded_served = %d, want 1", st.Fleet.ForwardedServed)
	}
	if st.Fleet.Proxied != 0 {
		t.Errorf("forwarded request was re-forwarded (proxied = %d)", st.Fleet.Proxied)
	}
}
