package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hap"
	"hap/internal/cluster"
	"hap/internal/graph"
)

// testGraph builds the MLP training graph used across the repo's tests.
func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := hap.NewGraph()
	x := g.AddPlaceholder("x", 0, 64, 32)
	w1 := g.AddParameter("w1", 32, 48)
	w2 := g.AddParameter("w2", 48, 8)
	h := g.AddOp(hap.ReLU, g.AddOp(hap.MatMul, x, w1))
	g.SetLoss(g.AddOp(hap.Sum, g.AddScale(g.AddOp(hap.MatMul, h, w2), 1.0/64)))
	if err := hap.Backward(g); err != nil {
		t.Fatal(err)
	}
	return g
}

func testCluster() *cluster.Cluster {
	return cluster.FromGPUs(cluster.DefaultNetwork(),
		cluster.MachineSpec{Type: cluster.V100, GPUs: 1},
		cluster.MachineSpec{Type: cluster.P100, GPUs: 1})
}

// requestBody assembles a POST /synthesize body from wire-encoded parts.
func requestBody(t *testing.T, g *graph.Graph, c *cluster.Cluster, opt RequestOptions) []byte {
	t.Helper()
	var gb, cb bytes.Buffer
	if err := g.Encode(&gb); err != nil {
		t.Fatal(err)
	}
	if err := c.Encode(&cb); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(Request{Graph: gb.Bytes(), Cluster: cb.Bytes(), Options: opt})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func post(t *testing.T, url string, body []byte) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("X-HAP-Cache"), b
}

func getStats(t *testing.T, url string) Stats {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode /stats: %v", err)
	}
	return st
}

// TestServeEndToEnd drives the daemon over a loopback listener: a first
// request synthesizes, a repeat is a cache hit, the returned plan re-binds to
// an independently rebuilt graph and passes numeric verification.
func TestServeEndToEnd(t *testing.T) {
	srv := httptest.NewServer(New(Config{}).Handler())
	defer srv.Close()
	c := testCluster()
	body := requestBody(t, testGraph(t), c, RequestOptions{})

	status, cacheHdr, plan := post(t, srv.URL, body)
	if status != http.StatusOK {
		t.Fatalf("first request: status %d: %s", status, plan)
	}
	if cacheHdr != "miss" {
		t.Errorf("first request X-HAP-Cache = %q, want miss", cacheHdr)
	}

	// The plan must decode against a fresh rebuild of the same model and be
	// semantically equivalent to it.
	g2 := testGraph(t)
	p, err := hap.ReadProgram(bytes.NewReader(plan), g2)
	if err != nil {
		t.Fatalf("ReadProgram on served plan: %v", err)
	}
	if err := p.Program.Validate(); err != nil {
		t.Fatalf("served program ill-formed: %v", err)
	}
	if err := hap.Verify(p, c.M(), 7); err != nil {
		t.Errorf("served plan fails verification: %v", err)
	}

	status, cacheHdr, plan2 := post(t, srv.URL, body)
	if status != http.StatusOK || cacheHdr != "hit" {
		t.Fatalf("repeat request: status %d, cache %q, want 200/hit", status, cacheHdr)
	}
	if !bytes.Equal(plan, plan2) {
		t.Error("cache hit returned different bytes")
	}

	// A different cluster is a different content address.
	hetero := cluster.FromGPUs(cluster.DefaultNetwork(),
		cluster.MachineSpec{Type: cluster.A100, GPUs: 1},
		cluster.MachineSpec{Type: cluster.P100, GPUs: 1})
	status, cacheHdr, _ = post(t, srv.URL, requestBody(t, testGraph(t), hetero, RequestOptions{}))
	if status != http.StatusOK || cacheHdr != "miss" {
		t.Errorf("different cluster: status %d, cache %q, want 200/miss", status, cacheHdr)
	}

	st := getStats(t, srv.URL)
	if st.Requests != 3 || st.CacheHits != 1 || st.Syntheses != 2 {
		t.Errorf("stats = %+v, want 3 requests, 1 hit, 2 syntheses", st)
	}
	if st.CacheEntries != 2 || st.CacheBytes == 0 {
		t.Errorf("cache holds %d entries / %d bytes, want 2 entries", st.CacheEntries, st.CacheBytes)
	}
}

// TestServeSingleFlight issues the same request from N concurrent clients
// while the first synthesis is deliberately held open, and asserts exactly
// one synthesis ran — the rest either joined the flight or hit the cache.
func TestServeSingleFlight(t *testing.T) {
	const n = 10
	var mu sync.Mutex
	syntheses := 0
	started := make(chan struct{})
	release := make(chan struct{})
	cfg := Config{
		Synthesize: func(ctx context.Context, g *graph.Graph, c *cluster.Cluster, opt hap.Options) (*hap.Plan, error) {
			mu.Lock()
			syntheses++
			first := syntheses == 1
			mu.Unlock()
			if first {
				close(started) // let the test unleash the other clients
				<-release      // hold the flight open while they pile in
			}
			return hap.Parallelize(g, c, opt)
		},
	}
	s := New(cfg)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	body := requestBody(t, testGraph(t), testCluster(), RequestOptions{})

	var wg sync.WaitGroup
	plans := make([][]byte, n)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, plans[0] = post(t, srv.URL, body)
	}()
	<-started
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _, b := post(t, srv.URL, body)
			if status != http.StatusOK {
				t.Errorf("client %d: status %d: %s", i, status, b)
			}
			plans[i] = b
		}(i)
	}
	close(release)
	wg.Wait()

	if syntheses != 1 {
		t.Errorf("%d syntheses for %d identical concurrent requests, want exactly 1", syntheses, n)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(plans[0], plans[i]) {
			t.Errorf("client %d received a different plan", i)
		}
	}
	st := s.Stats()
	if st.Syntheses != 1 {
		t.Errorf("stats report %d syntheses, want 1", st.Syntheses)
	}
	if st.Requests != n || st.CacheHits+st.CacheMisses != n {
		t.Errorf("stats = %+v, want %d requests with hits+misses = %d", st, n, n)
	}

	// And afterwards the plan is cached: one more request is a pure hit.
	status, cacheHdr, _ := post(t, srv.URL, body)
	if status != http.StatusOK || cacheHdr != "hit" {
		t.Errorf("post-flight request: status %d, cache %q, want 200/hit", status, cacheHdr)
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	good := requestBody(t, testGraph(t), testCluster(), RequestOptions{})

	cases := []struct {
		name       string
		body       string
		wantStatus int
	}{
		{"not json", "][", http.StatusBadRequest},
		{"missing graph", `{"cluster": {"version": 1}}`, http.StatusBadRequest},
		{"missing cluster", `{"graph": {"version": 1}}`, http.StatusBadRequest},
		{"malformed graph", strings.Replace(string(good), `"op":"matmul"`, `"op":"quantum"`, 1), http.StatusBadRequest},
		{"malformed cluster", strings.Replace(string(good), `"gpus":1`, `"gpus":0`, 1), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, _ := post(t, srv.URL, []byte(tc.body))
			if status != tc.wantStatus {
				t.Errorf("status = %d, want %d", status, tc.wantStatus)
			}
		})
	}
	resp, err := http.Get(srv.URL + "/synthesize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /synthesize = %d, want 405", resp.StatusCode)
	}
	if st := s.Stats(); st.Errors != uint64(len(cases))+1 {
		t.Errorf("errors = %d, want %d", st.Errors, len(cases)+1)
	}
}

func TestServeSynthesisFailureNotCached(t *testing.T) {
	calls := 0
	s := New(Config{
		Synthesize: func(ctx context.Context, g *graph.Graph, c *cluster.Cluster, opt hap.Options) (*hap.Plan, error) {
			calls++
			return nil, io.ErrUnexpectedEOF
		},
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	body := requestBody(t, testGraph(t), testCluster(), RequestOptions{})
	for i := 0; i < 2; i++ {
		status, _, msg := post(t, srv.URL, body)
		if status != http.StatusUnprocessableEntity {
			t.Fatalf("request %d: status %d (%s), want 422", i, status, msg)
		}
	}
	if calls != 2 {
		t.Errorf("failed synthesis ran %d times, want 2 (errors must not be cached)", calls)
	}
}

// TestServePanicContained: a panicking synthesis (reachable in principle
// from hostile wire input) must answer 422 and release the single-flight
// key — a wedged key would hang every future identical request forever.
func TestServePanicContained(t *testing.T) {
	calls := 0
	s := New(Config{
		Synthesize: func(ctx context.Context, g *graph.Graph, c *cluster.Cluster, opt hap.Options) (*hap.Plan, error) {
			calls++
			panic("slice bounds out of range")
		},
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	body := requestBody(t, testGraph(t), testCluster(), RequestOptions{})
	for i := 0; i < 2; i++ {
		status, _, msg := post(t, srv.URL, body) // post has a test deadline via t.Fatal on transport errors
		if status != http.StatusUnprocessableEntity {
			t.Fatalf("request %d: status %d (%s), want 422", i, status, msg)
		}
		if !strings.Contains(string(msg), "panicked") {
			t.Errorf("request %d: error %q does not mention the panic", i, msg)
		}
	}
	if calls != 2 {
		t.Errorf("second request ran %d syntheses in total, want 2 (flight key must be released after a panic)", calls)
	}
}

func TestServeOversizedRequestGets413(t *testing.T) {
	s := New(Config{MaxRequestBytes: 128})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	body := requestBody(t, testGraph(t), testCluster(), RequestOptions{}) // well over 128 bytes
	status, _, msg := post(t, srv.URL, body)
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d (%s), want 413", status, msg)
	}
}

// TestHealthz: the liveness probe reports the wire protocol version and the
// per-endpoint request counters.
func TestHealthz(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Two legacy requests, so the per-endpoint counters have something to say.
	body := requestBody(t, testGraph(t), testCluster(), RequestOptions{})
	for i := 0; i < 2; i++ {
		if status, _, b := post(t, srv.URL, body); status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, status, b)
		}
	}

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status   string            `json:"status"`
		Protocol string            `json:"protocol"`
		Requests map[string]uint64 `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode /healthz: %v", err)
	}
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Errorf("healthz = %d status %q, want 200/ok", resp.StatusCode, h.Status)
	}
	if h.Protocol != ProtocolVersion {
		t.Errorf("healthz protocol = %q, want %q", h.Protocol, ProtocolVersion)
	}
	if h.Requests[EndpointLegacy] != 2 || h.Requests[EndpointV1] != 0 || h.Requests[EndpointV1Batch] != 0 {
		t.Errorf("healthz per-endpoint counters = %v, want legacy=2, v1=0, v1_batch=0", h.Requests)
	}
}

// boolPtr helps build tri-state RequestOptions.
func boolPtr(b bool) *bool { return &b }

// TestOptimizeOptionPlumbing checks the optimize request option: omitted
// means the pass pipeline runs (DisablePasses false) with the default synth
// time budget, optimize=false disables it, and the two variants are
// distinct cache entries.
func TestOptimizeOptionPlumbing(t *testing.T) {
	var mu sync.Mutex
	var opts []hap.Options
	s := New(Config{
		Synthesize: func(ctx context.Context, g *graph.Graph, c *cluster.Cluster, opt hap.Options) (*hap.Plan, error) {
			mu.Lock()
			opts = append(opts, opt)
			mu.Unlock()
			return hap.Parallelize(g, c, opt)
		},
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	g, c := testGraph(t), testCluster()

	if status, _, b := post(t, srv.URL, requestBody(t, g, c, RequestOptions{})); status != http.StatusOK {
		t.Fatalf("default request: status %d: %s", status, b)
	}
	if status, hdr, b := post(t, srv.URL, requestBody(t, g, c, RequestOptions{Optimize: boolPtr(false)})); status != http.StatusOK || hdr != "miss" {
		t.Fatalf("optimize=false request: status %d cache %q: %s", status, hdr, b)
	}
	// optimize=true is the same content address as the default.
	if status, hdr, _ := post(t, srv.URL, requestBody(t, g, c, RequestOptions{Optimize: boolPtr(true)})); status != http.StatusOK || hdr != "hit" {
		t.Fatalf("optimize=true request: status %d cache %q, want 200/hit", status, hdr)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(opts) != 2 {
		t.Fatalf("%d syntheses, want 2 (default + optimize=false)", len(opts))
	}
	if opts[0].DisablePasses {
		t.Error("default request disabled the pass pipeline")
	}
	if !opts[1].DisablePasses {
		t.Error("optimize=false request did not disable the pass pipeline")
	}
	for i, o := range opts {
		if o.TimeBudget != DefaultSynthTimeBudget {
			t.Errorf("synthesis %d ran with time budget %v, want default %v", i, o.TimeBudget, DefaultSynthTimeBudget)
		}
	}

	st := s.Stats()
	if st.PassRuns != 1 {
		t.Errorf("stats report %d pass-pipeline runs, want 1 (only the optimized synthesis)", st.PassRuns)
	}
}

// TestMetricsEndpoint checks the Prometheus text exposition carries the
// same counters /stats reports.
func TestMetricsEndpoint(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	body := requestBody(t, testGraph(t), testCluster(), RequestOptions{})
	for i := 0; i < 2; i++ {
		if status, _, b := post(t, srv.URL, body); status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, status, b)
		}
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(b)
	for _, want := range []string{
		"# TYPE hap_serve_requests_total counter",
		"hap_serve_requests_total 2",
		"hap_serve_cache_hits_total 1",
		"hap_serve_syntheses_total 1",
		"# TYPE hap_serve_cache_entries gauge",
		"hap_serve_cache_entries 1",
		"hap_serve_pass_runs_total 1",
		`hap_serve_pass_rewrites_by_total{pass="comm-fusion"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, metrics)
		}
	}
}

// The X-HAP-Passes header reports the pass pipeline's per-pass rewrite
// counters on every /synthesize response — including cache hits, whose
// header must reflect what the pipeline did when the plan was synthesized.
func TestPassesHeaderServedOnMissAndHit(t *testing.T) {
	srv := httptest.NewServer(New(Config{}).Handler())
	defer srv.Close()
	body := requestBody(t, testGraph(t), testCluster(), RequestOptions{})

	get := func(wantCache string) string {
		t.Helper()
		resp, err := http.Post(srv.URL+"/synthesize", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if c := resp.Header.Get("X-HAP-Cache"); c != wantCache {
			t.Fatalf("X-HAP-Cache = %q, want %q", c, wantCache)
		}
		return resp.Header.Get("X-HAP-Passes")
	}

	miss := get("miss")
	if miss == "" {
		t.Fatal("miss response has no X-HAP-Passes header")
	}
	for _, pass := range []string{"comm-fusion", "collective-cse", "dce"} {
		if !strings.Contains(miss, pass+"=") {
			t.Errorf("X-HAP-Passes = %q missing %s counter", miss, pass)
		}
	}
	if hit := get("hit"); hit != miss {
		t.Errorf("cache hit X-HAP-Passes = %q, want the miss's %q", hit, miss)
	}

	// Opting out of the pipeline must drop the header.
	off := false
	body = requestBody(t, testGraph(t), testCluster(), RequestOptions{Optimize: &off})
	if h := get("miss"); h != "" {
		t.Errorf("optimize=false response still carries X-HAP-Passes %q", h)
	}
}
