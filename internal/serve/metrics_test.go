package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hap/internal/fleet"
)

// TestHistogramBuckets drives the histogram directly: observations land in
// the right bucket, the exposition is cumulative, and sum/count agree.
func TestHistogramBuckets(t *testing.T) {
	h := newHistogram()
	h.observe(2 * time.Millisecond)   // → le="0.0025"
	h.observe(2 * time.Millisecond)   // same bucket
	h.observe(700 * time.Millisecond) // → le="1"
	h.observe(5 * time.Minute)        // → +Inf overflow

	if h.total.Load() != 4 {
		t.Fatalf("total = %d, want 4", h.total.Load())
	}
	// Cumulative counts: everything at or under 1s is 3, +Inf is 4.
	cum := uint64(0)
	for i, bound := range latencyBuckets {
		cum += h.counts[i].Load()
		if bound == 1 && cum != 3 {
			t.Errorf("cumulative count at le=1 is %d, want 3", cum)
		}
	}
	if cum+h.counts[len(latencyBuckets)].Load() != 4 {
		t.Error("+Inf bucket does not cover every observation")
	}
	wantSum := (2*time.Millisecond)*2 + 700*time.Millisecond + 5*time.Minute
	if got := h.sumNs.Load(); got != int64(wantSum) {
		t.Errorf("sum = %dns, want %dns", got, wantSum)
	}
}

// TestHistogramConcurrentObserve is meaningful under -race: the histogram
// must take concurrent observations without locks or lost counts.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.total.Load() != 8000 {
		t.Errorf("total = %d, want 8000 (lost observations)", h.total.Load())
	}
}

// TestMetricsExposesLatencyHistograms scrapes /metrics after real requests
// and checks the hap_serve_request_seconds series: histogram TYPE line,
// per-endpoint buckets, +Inf covering the request count, sum and count.
func TestMetricsExposesLatencyHistograms(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body := requestBody(t, testGraph(t), testCluster(), RequestOptions{})
	for i := 0; i < 2; i++ { // one miss, one hit — both observed
		if status, _, _, b := postV1(t, srv.URL, body); status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, status, b)
		}
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	for _, want := range []string{
		"# TYPE hap_serve_request_seconds histogram",
		`hap_serve_request_seconds_bucket{endpoint="v1",le="+Inf"} 2`,
		`hap_serve_request_seconds_count{endpoint="v1"} 2`,
		`hap_serve_request_seconds_sum{endpoint="v1"}`,
		`hap_serve_request_seconds_bucket{endpoint="legacy",le="+Inf"} 0`,
		`hap_serve_request_seconds_bucket{endpoint="v1",le="0.001"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Standalone daemon: no fleet series.
	if strings.Contains(text, "hap_serve_fleet_") {
		t.Error("standalone /metrics exposes fleet series")
	}
}

// TestMetricsExposesFleetSeries checks the fleet block appears when a fleet
// is configured.
func TestMetricsExposesFleetSeries(t *testing.T) {
	fl, err := fleet.New(fleet.Config{Self: "http://self:1", Peers: []string{"http://peer:1"}})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Fleet: fl})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	text := string(raw)
	for _, want := range []string{
		"hap_serve_fleet_peers 2",
		"hap_serve_fleet_replicas 2",
		"hap_serve_fleet_proxied_total 0",
		"hap_serve_fleet_replicated_in_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
