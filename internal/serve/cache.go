// A concurrency-safe LRU cache for encoded plans, bounded both by entry
// count and by total value bytes. Plans for model-scale graphs run ~100 KB
// of JSON each (see ROADMAP), so the byte cap is the binding limit in
// production; the entry cap is a backstop against many tiny plans.

package serve

import (
	"container/list"
	"sync"
)

// cachedPlan is what one cache slot holds: the encoded plan in both wire
// forms plus the response metadata served with it. The X-HAP-Passes header
// must survive caching — a cache hit reports what the pass pipeline did when
// the plan was synthesized, without clients scraping /stats. The binary form
// is cached alongside the JSON so content negotiation never re-encodes.
type cachedPlan struct {
	plan   []byte // WriteProgram JSON
	bin    []byte // WriteProgramBinary payload (may be empty for restored v1 files)
	passes string // X-HAP-Passes header value ("" = pipeline disabled)
}

func (v cachedPlan) size() int64 { return int64(len(v.plan) + len(v.bin) + len(v.passes)) }

type cacheEntry struct {
	key string
	val cachedPlan
}

type lruCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64

	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	bytes     int64
	evictions uint64
}

func newLRUCache(maxEntries int, maxBytes int64) *lruCache {
	return &lruCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      map[string]*list.Element{},
	}
}

// get returns the cached value and refreshes its recency. The returned
// plan bytes are shared — callers must not mutate them.
func (c *lruCache) get(key string) (cachedPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		return cachedPlan{}, false
	}
	c.ll.MoveToFront(e)
	return e.Value.(*cacheEntry).val, true
}

// add inserts (or refreshes) a value and evicts from the LRU tail until both
// caps hold, reporting whether the value was stored and which keys were
// evicted, so write-through persistence can mirror both decisions on disk.
// A value larger than maxBytes on its own is not cached at all — caching it
// would evict everything else for a single entry.
func (c *lruCache) add(key string, val cachedPlan) (stored bool, evicted []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if val.size() > c.maxBytes {
		return false, nil
	}
	if e, ok := c.items[key]; ok {
		ent := e.Value.(*cacheEntry)
		c.bytes += val.size() - ent.val.size()
		ent.val = val
		c.ll.MoveToFront(e)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
		c.bytes += val.size()
	}
	for c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		ent := tail.Value.(*cacheEntry)
		c.ll.Remove(tail)
		delete(c.items, ent.key)
		c.bytes -= ent.val.size()
		c.evictions++
		evicted = append(evicted, ent.key)
	}
	return true, evicted
}

// snapshot returns (entries, bytes, evictions) for /stats.
func (c *lruCache) snapshot() (int, int64, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes, c.evictions
}
