// A concurrency-safe LRU cache for encoded plans, bounded both by entry
// count and by total value bytes. Plans for model-scale graphs run ~100 KB
// of JSON each (see ROADMAP), so the byte cap is the binding limit in
// production; the entry cap is a backstop against many tiny plans. Entries
// carry their insert time so a TTL sweep can expire a slowly-rotating
// working set that the capacity caps would keep forever.

package serve

import (
	"container/list"
	"sync"
	"time"
)

type cacheEntry struct {
	key string
	val CachedPlan
	at  time.Time // insert (or refresh) time, for the TTL sweep
}

type lruCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64

	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	bytes     int64
	evictions uint64
}

func newLRUCache(maxEntries int, maxBytes int64) *lruCache {
	return &lruCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      map[string]*list.Element{},
	}
}

// get returns the cached value and refreshes its recency. The returned
// plan bytes are shared — callers must not mutate them.
func (c *lruCache) get(key string) (CachedPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		return CachedPlan{}, false
	}
	c.ll.MoveToFront(e)
	return e.Value.(*cacheEntry).val, true
}

// peek returns the cached value without refreshing its recency — for
// version-sequence lookups that must not promote an entry the client never
// asked for.
func (c *lruCache) peek(key string) (CachedPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		return CachedPlan{}, false
	}
	return e.Value.(*cacheEntry).val, true
}

// add inserts (or refreshes) a value stamped with time at, and evicts from
// the LRU tail until both caps hold, reporting whether the value was stored
// and which keys were evicted, so write-through persistence can mirror both
// decisions on disk. A value larger than maxBytes on its own is not cached
// at all — caching it would evict everything else for a single entry.
func (c *lruCache) add(key string, val CachedPlan, at time.Time) (stored bool, evicted []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if val.size() > c.maxBytes {
		return false, nil
	}
	if e, ok := c.items[key]; ok {
		ent := e.Value.(*cacheEntry)
		c.bytes += val.size() - ent.val.size()
		ent.val = val
		ent.at = at
		c.ll.MoveToFront(e)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val, at: at})
		c.bytes += val.size()
	}
	for c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		c.removeElement(tail)
		evicted = append(evicted, tail.Value.(*cacheEntry).key)
	}
	return true, evicted
}

// removeElement unlinks one entry; the caller holds c.mu.
func (c *lruCache) removeElement(e *list.Element) {
	ent := e.Value.(*cacheEntry)
	c.ll.Remove(e)
	delete(c.items, ent.key)
	c.bytes -= ent.val.size()
	c.evictions++
}

// sweepExpired evicts every entry whose stamp is before cutoff, returning
// the evicted keys so persistence can delete their files.
func (c *lruCache) sweepExpired(cutoff time.Time) (evicted []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for e := c.ll.Front(); e != nil; e = next {
		next = e.Next()
		ent := e.Value.(*cacheEntry)
		if ent.at.Before(cutoff) {
			c.removeElement(e)
			evicted = append(evicted, ent.key)
		}
	}
	return evicted
}

// entries snapshots the cache in most- to least-recently-used order. The
// values share their byte slices with the cache (immutable by contract), so
// the snapshot is cheap even when a warm-up stream then spends seconds
// writing it to a peer.
func (c *lruCache) entries() []cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]cacheEntry, 0, c.ll.Len())
	for e := c.ll.Front(); e != nil; e = e.Next() {
		out = append(out, *e.Value.(*cacheEntry))
	}
	return out
}

// snapshot returns (entries, bytes, evictions) for /stats.
func (c *lruCache) snapshot() (int, int64, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes, c.evictions
}
