// PlanStore is the seam between the daemon's HTTP surface and its plan
// storage. serve.go handles the wire protocol; everything that remembers a
// plan — the in-memory LRU, the write-through disk mirror, a future
// similarity index (ROADMAP ISSUE 8) — lives behind this interface. The
// fleet layer leans on the same seam: replication pushes call Put, warm-up
// streaming calls Range, and the stats surface reads Stats.

package serve

import (
	"fmt"
	"hash/fnv"
	"time"
)

// CachedPlan is one stored plan: both wire encodings plus the response
// metadata served with it. The X-HAP-Passes header must survive caching — a
// cache hit reports what the pass pipeline did when the plan was
// synthesized, without clients scraping /stats. The binary form is cached
// alongside the JSON so content negotiation never re-encodes. The byte
// slices are shared between callers and must be treated as immutable.
type CachedPlan struct {
	Plan   []byte // WriteProgram JSON
	Bin    []byte // WriteProgramBinary payload (may be empty for restored v1 files)
	Passes string // X-HAP-Passes header value ("" = pipeline disabled)
	// Version counts how many times this key's content has been replaced on
	// its owning node — 1 on first synthesis, bumped by each background
	// replan. Replicas copy the owner's version verbatim, so the number is
	// consistent fleet-wide (monotonic per key as long as the entry lives).
	Version uint64
	// ETag is the strong entity tag served with the plan and matched against
	// If-None-Match: a quoted hash of the plan content. Content-derived, not
	// version-derived, so a replan that lands on byte-identical output keeps
	// warm clients' tags valid.
	ETag string
}

func (v CachedPlan) size() int64 { return int64(len(v.Plan) + len(v.Bin) + len(v.Passes)) }

// ETagFor derives the strong entity tag for a plan's JSON content.
func ETagFor(plan []byte) string {
	h := fnv.New64a()
	h.Write(plan)
	return fmt.Sprintf("%q", fmt.Sprintf("%016x", h.Sum64()))
}

// StoreStats is a PlanStore's bookkeeping snapshot, surfaced in /stats.
type StoreStats struct {
	Entries   int    // plans currently stored
	Bytes     int64  // bytes currently stored
	Evictions uint64 // plans evicted by capacity limits
	Restored  int    // plans reloaded from persistence at construction
}

// PlanStore stores encoded plans under their content-address cache keys.
// Implementations must be safe for concurrent use.
type PlanStore interface {
	// Get returns the stored plan and refreshes its recency.
	Get(key string) (CachedPlan, bool)
	// Put stores (or refreshes) a plan, reporting whether it was kept —
	// a store may reject values over its caps.
	Put(key string, v CachedPlan) bool
	// Range calls fn for each stored plan until fn returns false. The
	// iteration order is most- to least-recently used; fn sees a snapshot
	// and may block (warm-up streams entries over the network).
	Range(fn func(key string, v CachedPlan) bool)
	// Stats returns the store's bookkeeping counters.
	Stats() StoreStats
}

// memDiskStore is the default PlanStore: the bounded in-memory LRU with
// optional write-through disk persistence. Inserts mirror to disk, LRU and
// TTL evictions delete their files, and construction reloads the directory
// in mtime order — so the directory converges to the LRU's actual contents
// and a restart does not re-pay every synthesis.
type memDiskStore struct {
	cache    *lruCache
	persist  *diskStore // nil = memory only
	ttl      time.Duration
	restored int
	// onEvict, when set, is called with the keys each Put or sweep evicted
	// (or rejected), after the cache and disk state settle — the hook the
	// server uses to drop side-registry entries (replan sources, similarity
	// index) whose plan no longer exists. Set once right after construction,
	// before the store is shared; the restore pass runs without it.
	onEvict func(keys []string)
}

var _ PlanStore = (*memDiskStore)(nil)

// newMemDiskStore builds the store and, when persist is non-nil, restores
// its directory: files are replayed oldest-mtime first so the LRU's recency
// order survives the restart, and files older than ttl are deleted instead
// of restored.
func newMemDiskStore(maxEntries int, maxBytes int64, persist *diskStore, ttl time.Duration) *memDiskStore {
	s := &memDiskStore{
		cache:   newLRUCache(maxEntries, maxBytes),
		persist: persist,
		ttl:     ttl,
	}
	if persist != nil {
		var cutoff time.Time
		if ttl > 0 {
			cutoff = time.Now().Add(-ttl)
		}
		// Restore mirrors Put: entries the (possibly re-capped) cache
		// rejects or evicts during the reload lose their files too, so the
		// directory converges to the LRU's actual contents instead of
		// re-reading stale plans on every boot.
		s.restored = persist.load(cutoff, func(key string, v CachedPlan, mtime time.Time) bool {
			normalizePlan(&v, 1) // files from before versioning restore as v1
			stored, evicted := s.cache.add(key, v, mtime)
			if !stored {
				persist.remove(key)
			}
			for _, k := range evicted {
				persist.remove(k)
			}
			return stored
		})
	}
	return s
}

func (s *memDiskStore) Get(key string) (CachedPlan, bool) { return s.cache.get(key) }

// Put stores v, filling in the version/ETag metadata when the caller left it
// zero: the ETag is derived from the plan content, and the version continues
// the stored entry's sequence (first insert = 1, replacement = previous + 1).
// Entries arriving with explicit metadata — fleet replication, warm-up
// streaming — keep the owner's values so the tag means the same bytes
// fleet-wide.
func (s *memDiskStore) Put(key string, v CachedPlan) bool {
	nextVersion := uint64(1)
	if prev, ok := s.cache.peek(key); ok {
		nextVersion = prev.Version + 1
	}
	normalizePlan(&v, nextVersion)
	stored, evicted := s.cache.add(key, v, time.Now())
	if s.persist != nil {
		if stored {
			s.persist.save(key, v)
		}
		for _, k := range evicted {
			s.persist.remove(k)
		}
	}
	if !stored {
		// A rejected insert is an eviction of the key itself: nothing is
		// cached, so nothing should stay registered under it.
		evicted = append(evicted, key)
	}
	if s.onEvict != nil && len(evicted) > 0 {
		s.onEvict(evicted)
	}
	return stored
}

func (s *memDiskStore) Range(fn func(key string, v CachedPlan) bool) {
	for _, e := range s.cache.entries() {
		if !fn(e.key, e.val) {
			return
		}
	}
}

func (s *memDiskStore) Stats() StoreStats {
	entries, bytes, evictions := s.cache.snapshot()
	return StoreStats{Entries: entries, Bytes: bytes, Evictions: evictions, Restored: s.restored}
}

// normalizePlan fills zero-valued response metadata: a content-derived ETag
// and the given version.
func normalizePlan(v *CachedPlan, version uint64) {
	if v.ETag == "" {
		v.ETag = ETagFor(v.Plan)
	}
	if v.Version == 0 {
		v.Version = version
	}
}

// sweep evicts every entry older than the TTL, deleting its file — the GC
// pass that keeps a long-lived -cache-dir from growing unbounded under a
// slowly-rotating working set. A no-op without a TTL.
func (s *memDiskStore) sweep(now time.Time) int {
	if s.ttl <= 0 {
		return 0
	}
	expired := s.cache.sweepExpired(now.Add(-s.ttl))
	if s.persist != nil {
		for _, k := range expired {
			s.persist.remove(k)
		}
	}
	if s.onEvict != nil && len(expired) > 0 {
		s.onEvict(expired)
	}
	return len(expired)
}
