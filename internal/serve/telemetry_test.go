// Tests for the telemetry layer: drift verdicts over the wire, the
// background-replan swap discipline (old plan + old ETag until the
// replacement verifies, then a version bump and a new tag), plan versioning
// through the store, the telemetry file poller, and the metrics exposition
// of the replanning counters.

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hap"
	"hap/internal/cluster"
	"hap/internal/graph"
	"hap/internal/telemetry"
)

// telemetryBody assembles a POST /v1/telemetry body for spec.
func telemetryBody(t *testing.T, spec *cluster.Cluster, req TelemetryRequest) []byte {
	t.Helper()
	var cb bytes.Buffer
	if err := spec.Encode(&cb); err != nil {
		t.Fatal(err)
	}
	req.Cluster = cb.Bytes()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// postTelemetry POSTs a telemetry report and decodes the verdict.
func postTelemetry(t *testing.T, url string, body []byte) (int, TelemetryResponse, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/telemetry", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var tr TelemetryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &tr); err != nil {
			t.Fatalf("decode telemetry response: %v (%s)", err, raw)
		}
	}
	return resp.StatusCode, tr, raw
}

// postConditional POSTs a synthesize request with an optional If-None-Match
// tag and returns the response status, ETag, version header, and body.
func postConditional(t *testing.T, url string, body []byte, ifNoneMatch string) (int, string, string, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/synthesize", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("ETag"), resp.Header.Get(PlanVersionHeader), raw
}

// achievedTFLOPS is device i's spec achieved throughput in TFLOPS — the
// number a probe agent would report when the device performs exactly to spec.
func achievedTFLOPS(c *cluster.Cluster, i int) float64 {
	return c.Devices[i].Flops() / 1e12
}

// TestTelemetryDriftVerdict exercises the ingest endpoint's verdicts: a
// to-spec report is not drifted, a large throughput drop is, and a sample
// naming an unknown device rejects the batch with a structured 400.
func TestTelemetryDriftVerdict(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := testCluster()

	status, tr, raw := postTelemetry(t, srv.URL, telemetryBody(t, c, TelemetryRequest{
		Devices: []telemetry.DeviceSample{{Device: 0, TFLOPS: achievedTFLOPS(c, 0)}},
	}))
	if status != http.StatusOK {
		t.Fatalf("to-spec report: status %d: %s", status, raw)
	}
	if tr.Drifted || tr.Distance > 1e-9 {
		t.Errorf("to-spec report: drifted=%v distance=%v, want no drift", tr.Drifted, tr.Distance)
	}

	// Halve device 0's throughput. The EWMA blends the outlier against the
	// to-spec baseline: one sample moves the estimate alpha × 50% = 15% —
	// already past the 10% threshold, but far from the raw 50%. No cached
	// plans exist, so no replans start.
	status, tr, raw = postTelemetry(t, srv.URL, telemetryBody(t, c, TelemetryRequest{
		Devices: []telemetry.DeviceSample{{Device: 0, TFLOPS: achievedTFLOPS(c, 0) * 0.5}},
	}))
	if status != http.StatusOK {
		t.Fatalf("drifted report: status %d: %s", status, raw)
	}
	if !tr.Drifted {
		t.Errorf("halved throughput not flagged as drifted (distance %v)", tr.Distance)
	}
	if tr.Distance < 0.14 || tr.Distance > 0.16 {
		t.Errorf("distance = %v, want ~0.15 (alpha-smoothed half-throughput sample)", tr.Distance)
	}
	if tr.ReplansStarted != 0 {
		t.Errorf("replans started with an empty cache: %d", tr.ReplansStarted)
	}

	// Unknown device: the whole batch must reject, loudly.
	status, _, raw = postTelemetry(t, srv.URL, telemetryBody(t, c, TelemetryRequest{
		Devices: []telemetry.DeviceSample{{Device: 99, TFLOPS: 10}},
	}))
	if status != http.StatusBadRequest {
		t.Fatalf("unknown device: status %d, want 400: %s", status, raw)
	}
	if !strings.Contains(string(raw), CodeBadRequest) {
		t.Errorf("unknown device: body %s lacks the %s envelope", raw, CodeBadRequest)
	}

	st := getStats(t, srv.URL)
	if st.Telemetry == nil {
		t.Fatal("stats lack the telemetry slice")
	}
	if st.Telemetry.Reports != 2 || st.Telemetry.Rejects != 1 {
		t.Errorf("telemetry stats reports=%d rejects=%d, want 2/1", st.Telemetry.Reports, st.Telemetry.Rejects)
	}
}

// TestTelemetryBackgroundReplan is the acceptance test for the tentpole:
// after drift past the threshold, the affected cache entry replans in the
// background while the pre-drift plan keeps serving (same ETag, 304 on
// conditional fetch); once the replacement verifies and swaps, the version
// bumps, the tag changes, a stale conditional fetch gets the new body, and a
// fresh conditional fetch 304s against the new tag.
func TestTelemetryBackgroundReplan(t *testing.T) {
	gate := make(chan struct{})
	var calls atomic32
	s := New(Config{
		Synthesize: func(ctx context.Context, g *graph.Graph, c *cluster.Cluster, opt hap.Options) (*hap.Plan, error) {
			// First call is the foreground synthesis; later calls are
			// background replans, held at the gate so the test can observe
			// the old plan serving mid-replan.
			if calls.inc() > 1 {
				select {
				case <-gate:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return hap.NewPlanner(c, hap.WithOptions(opt)).Plan(ctx, g)
		},
	})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := testCluster()
	body := requestBody(t, testGraph(t), c, RequestOptions{})

	status, etag1, ver1, plan1 := postConditional(t, srv.URL, body, "")
	if status != http.StatusOK {
		t.Fatalf("synthesis: status %d: %s", status, plan1)
	}
	if etag1 == "" || ver1 != "1" {
		t.Fatalf("synthesis response: ETag %q, version %q, want a tag and version 1", etag1, ver1)
	}
	// Warm-client revalidation before any drift: 304, no body.
	status, etag, _, respBody := postConditional(t, srv.URL, body, etag1)
	if status != http.StatusNotModified || len(respBody) != 0 {
		t.Fatalf("conditional fetch pre-drift: status %d, body %d bytes, want 304 empty", status, len(respBody))
	}
	if etag != etag1 {
		t.Errorf("304 carried ETag %q, want %q", etag, etag1)
	}

	// Degrade the cluster: the cross-machine link drops to half bandwidth and
	// device 0 throttles to half throughput. The replan starts and blocks at
	// the gate.
	status, tr, raw := postTelemetry(t, srv.URL, telemetryBody(t, c, TelemetryRequest{
		Links:   []telemetry.LinkSample{{FromMachine: 0, ToMachine: 1, Bandwidth: c.Net.InterBW * 0.5}},
		Devices: []telemetry.DeviceSample{{Device: 0, TFLOPS: achievedTFLOPS(c, 0) * 0.5}},
	}))
	if status != http.StatusOK {
		t.Fatalf("telemetry: status %d: %s", status, raw)
	}
	if !tr.Drifted || tr.ReplansStarted != 1 {
		t.Fatalf("telemetry verdict drifted=%v replans=%d, want true/1", tr.Drifted, tr.ReplansStarted)
	}

	// Mid-replan: the old plan serves, with the old tag and version.
	status, etag, ver, respBody := postConditional(t, srv.URL, body, "")
	if status != http.StatusOK || !bytes.Equal(respBody, plan1) {
		t.Fatalf("mid-replan fetch: status %d, body changed=%v, want the pre-drift plan", status, !bytes.Equal(respBody, plan1))
	}
	if etag != etag1 || ver != "1" {
		t.Errorf("mid-replan fetch: ETag %q version %q, want %q/1", etag, ver, etag1)
	}
	if status, _, _, _ := postConditional(t, srv.URL, body, etag1); status != http.StatusNotModified {
		t.Errorf("mid-replan conditional fetch: status %d, want 304", status)
	}

	// Release the replan and wait for the swap: version 2, a new tag.
	close(gate)
	var etag2, ver2 string
	var plan2 []byte
	deadline := time.Now().Add(15 * time.Second)
	for {
		status, etag2, ver2, plan2 = postConditional(t, srv.URL, body, "")
		if status != http.StatusOK {
			t.Fatalf("post-release fetch: status %d: %s", status, plan2)
		}
		if ver2 == "2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replan never swapped: still version %q", ver2)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if etag2 == etag1 || bytes.Equal(plan2, plan1) {
		t.Fatalf("replan swapped but content did not change (tag %q → %q)", etag1, etag2)
	}
	// The replanned plan verifies against the drifted device count.
	p, err := hap.ReadProgram(bytes.NewReader(plan2), testGraph(t))
	if err != nil {
		t.Fatalf("replanned plan does not decode: %v", err)
	}
	if err := hap.Verify(p, c.M(), 7); err != nil {
		t.Errorf("replanned plan fails verification: %v", err)
	}

	// A client holding the pre-drift tag now gets the new body...
	status, etag, _, respBody = postConditional(t, srv.URL, body, etag1)
	if status != http.StatusOK || !bytes.Equal(respBody, plan2) {
		t.Fatalf("stale conditional fetch: status %d, got new body=%v, want 200 with the replanned plan", status, bytes.Equal(respBody, plan2))
	}
	if etag != etag2 {
		t.Errorf("stale conditional fetch: ETag %q, want %q", etag, etag2)
	}
	// ...and the new tag 304s.
	if status, _, _, _ := postConditional(t, srv.URL, body, etag2); status != http.StatusNotModified {
		t.Errorf("fresh conditional fetch: status %d, want 304", status)
	}

	st := getStats(t, srv.URL)
	if st.Telemetry.Replans != 1 || st.Telemetry.ReplanErrors != 0 {
		t.Errorf("telemetry stats replans=%d errors=%d, want 1/0", st.Telemetry.Replans, st.Telemetry.ReplanErrors)
	}

	// The same drift reported again must not replan again: the entry is
	// already planned against the current view.
	status, tr, _ = postTelemetry(t, srv.URL, telemetryBody(t, c, TelemetryRequest{
		Devices: []telemetry.DeviceSample{{Device: 0, TFLOPS: achievedTFLOPS(c, 0) * 0.5}},
	}))
	if status != http.StatusOK || tr.ReplansStarted != 0 {
		t.Errorf("re-reported drift: status %d replans=%d, want 200/0 (idempotent per view)", status, tr.ReplansStarted)
	}
}

// atomic32 is a tiny atomic counter for stubs.
type atomic32 struct {
	mu sync.Mutex
	n  int
}

func (a *atomic32) inc() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n++
	return a.n
}

// TestTelemetryReplanFailureKeepsOldPlan: a replan whose synthesis fails
// leaves the cached plan, its tag, and its version untouched, and counts a
// replan error.
func TestTelemetryReplanFailureKeepsOldPlan(t *testing.T) {
	var calls atomic32
	s := New(Config{
		Synthesize: func(ctx context.Context, g *graph.Graph, c *cluster.Cluster, opt hap.Options) (*hap.Plan, error) {
			if calls.inc() > 1 {
				return nil, fmt.Errorf("search exhausted")
			}
			return hap.NewPlanner(c, hap.WithOptions(opt)).Plan(ctx, g)
		},
	})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := testCluster()
	body := requestBody(t, testGraph(t), c, RequestOptions{})

	status, etag1, ver1, plan1 := postConditional(t, srv.URL, body, "")
	if status != http.StatusOK {
		t.Fatalf("synthesis: status %d", status)
	}
	status, tr, raw := postTelemetry(t, srv.URL, telemetryBody(t, c, TelemetryRequest{
		Devices: []telemetry.DeviceSample{{Device: 0, TFLOPS: achievedTFLOPS(c, 0) * 0.5}},
	}))
	if status != http.StatusOK || tr.ReplansStarted != 1 {
		t.Fatalf("telemetry: status %d replans=%d: %s", status, tr.ReplansStarted, raw)
	}
	// Wait for the failed replan to record its error.
	deadline := time.Now().Add(10 * time.Second)
	for getStats(t, srv.URL).Telemetry.ReplanErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("replan error never recorded")
		}
		time.Sleep(10 * time.Millisecond)
	}
	status, etag, ver, respBody := postConditional(t, srv.URL, body, "")
	if status != http.StatusOK || !bytes.Equal(respBody, plan1) || etag != etag1 || ver != ver1 {
		t.Errorf("after failed replan: status %d etag %q ver %q, want the untouched original (%q/%q)", status, etag, ver, etag1, ver1)
	}
	if st := getStats(t, srv.URL); st.Telemetry.Replans != 0 {
		t.Errorf("failed replan counted as a success: replans=%d", st.Telemetry.Replans)
	}
}

// TestTelemetryFilePoller: reports land from a polled file, reload on
// rewrite, and skip unchanged content.
func TestTelemetryFilePoller(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := testCluster()

	path := filepath.Join(t.TempDir(), "telemetry.json")
	write := func(tflops float64) {
		t.Helper()
		var cb bytes.Buffer
		if err := c.Encode(&cb); err != nil {
			t.Fatal(err)
		}
		report, err := json.Marshal(TelemetryRequest{
			Cluster: cb.Bytes(),
			Devices: []telemetry.DeviceSample{{Device: 0, TFLOPS: tflops}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, report, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(achievedTFLOPS(c, 0))

	stop := s.StartTelemetryFile(path, 20*time.Millisecond)
	defer stop()

	waitReports := func(want uint64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for getStats(t, srv.URL).Telemetry.Reports < want {
			if time.Now().After(deadline) {
				t.Fatalf("file poller never reached %d reports (at %d)", want, getStats(t, srv.URL).Telemetry.Reports)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitReports(1) // initial load applies without waiting for a tick

	write(achievedTFLOPS(c, 0) * 0.9)
	waitReports(2) // rewrite detected by the size-or-mtime poll

	// Unchanged file: give the poller a few ticks and assert no re-ingest.
	time.Sleep(100 * time.Millisecond)
	if n := getStats(t, srv.URL).Telemetry.Reports; n != 2 {
		t.Errorf("unchanged file re-ingested: %d reports, want 2", n)
	}
}

// TestPlanVersioningThroughStore pins the store-level versioning contract:
// first insert is version 1 with a content tag, a same-content refresh keeps
// the tag, a changed-content replacement bumps the version and changes the
// tag, and entries arriving with explicit metadata (replication) keep it.
func TestPlanVersioningThroughStore(t *testing.T) {
	s := newMemDiskStore(8, 1<<20, nil, 0)
	s.Put("k", CachedPlan{Plan: []byte(`{"a":1}`)})
	v1, _ := s.Get("k")
	if v1.Version != 1 || v1.ETag == "" || v1.ETag != ETagFor([]byte(`{"a":1}`)) {
		t.Fatalf("first insert: version %d etag %q", v1.Version, v1.ETag)
	}
	s.Put("k", CachedPlan{Plan: []byte(`{"a":1}`)})
	v2, _ := s.Get("k")
	if v2.Version != 2 || v2.ETag != v1.ETag {
		t.Errorf("same-content refresh: version %d etag %q, want 2 with the same tag %q", v2.Version, v2.ETag, v1.ETag)
	}
	s.Put("k", CachedPlan{Plan: []byte(`{"a":2}`)})
	v3, _ := s.Get("k")
	if v3.Version != 3 || v3.ETag == v1.ETag {
		t.Errorf("changed-content replacement: version %d etag %q, want 3 with a new tag", v3.Version, v3.ETag)
	}
	s.Put("r", CachedPlan{Plan: []byte(`{"b":1}`), Version: 7, ETag: `"owner-tag"`})
	vr, _ := s.Get("r")
	if vr.Version != 7 || vr.ETag != `"owner-tag"` {
		t.Errorf("replicated entry: version %d etag %q, want the owner's 7/owner-tag", vr.Version, vr.ETag)
	}
}

// TestMetricsExposesTelemetrySeries: the replanning counters and the drift
// gauge exist on a scrape before any telemetry arrives (so dashboards can
// tell "no drift" from "not wired"), and a monitored cluster gets its
// labeled drift series.
func TestMetricsExposesTelemetrySeries(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	scrape := func() string {
		t.Helper()
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	text := scrape()
	for _, want := range []string{
		"hap_serve_replans_total 0",
		"hap_serve_replan_errors_total 0",
		"hap_serve_telemetry_reports_total 0",
		"hap_serve_cluster_drift_max 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("fresh /metrics lacks %q", want)
		}
	}

	c := testCluster()
	status, _, raw := postTelemetry(t, srv.URL, telemetryBody(t, c, TelemetryRequest{
		Devices: []telemetry.DeviceSample{{Device: 0, TFLOPS: achievedTFLOPS(c, 0) * 0.8}},
	}))
	if status != http.StatusOK {
		t.Fatalf("telemetry: status %d: %s", status, raw)
	}
	text = scrape()
	if !strings.Contains(text, "hap_serve_telemetry_reports_total 1") {
		t.Errorf("/metrics did not count the report")
	}
	if !strings.Contains(text, fmt.Sprintf("hap_serve_cluster_drift{cluster=%q}", c.Fingerprint())) {
		t.Errorf("/metrics lacks the per-cluster drift gauge for %s", c.Fingerprint())
	}
}
