// Single-flight de-duplication: concurrent requests for the same key run the
// underlying function once and share its result. A minimal local take on
// golang.org/x/sync/singleflight (the module is dependency-free).

package serve

import (
	"fmt"
	"sync"
)

type flightCall struct {
	wg  sync.WaitGroup
	val cachedPlan
	err error
}

type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// do runs fn once per key at a time: the first caller executes it, concurrent
// duplicates block and receive the same result. shared reports whether this
// caller piggybacked on another's execution. A panic in fn is converted to an
// error for every caller — the daemon accepts arbitrary client graphs, and a
// panicking synthesis must not wedge the key forever (waiters blocked on a
// WaitGroup that never completes).
func (g *flightGroup) do(key string, fn func() (cachedPlan, error)) (val cachedPlan, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*flightCall{}
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				c.val, c.err = cachedPlan{}, fmt.Errorf("synthesis panicked: %v", r)
			}
			c.wg.Done()
			g.mu.Lock()
			delete(g.m, key)
			g.mu.Unlock()
		}()
		c.val, c.err = fn()
	}()
	return c.val, c.err, false
}
