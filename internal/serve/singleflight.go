// Single-flight de-duplication: concurrent requests for the same key run the
// underlying function once and share its result. A minimal local take on
// golang.org/x/sync/singleflight (the module is dependency-free), extended
// with reference-counted cancellation: the synthesis runs under a context
// that stays alive while ANY participating request does, and is cancelled
// only when the last interested client disconnects. One impatient client
// must not kill the synthesis nine patient ones are waiting for — that would
// break the daemon's one-synthesis-per-fleet guarantee exactly under fleet
// load — but when everybody is gone, the work aborts promptly.

package serve

import (
	"context"
	"fmt"
	"sync"
)

type flightCall struct {
	done chan struct{} // closed when fn has finished and val/err are set
	val  CachedPlan
	err  error

	mu     sync.Mutex
	refs   int
	cancel context.CancelFunc // cancels the flight context
}

// attach registers a caller whose request context keeps the flight alive,
// returning the matching detach. The last detach — or the last caller's ctx
// dying — cancels the flight context.
func (c *flightCall) attach(ctx context.Context) (detach func()) {
	c.mu.Lock()
	c.refs++
	c.mu.Unlock()
	stop := context.AfterFunc(ctx, c.release)
	return func() {
		if stop() {
			c.release()
		}
	}
}

func (c *flightCall) release() {
	c.mu.Lock()
	c.refs--
	last := c.refs == 0
	c.mu.Unlock()
	if last {
		c.cancel()
	}
}

type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// do runs fn once per key at a time: the first caller executes it, concurrent
// duplicates block and receive the same result. shared reports whether this
// caller piggybacked on another's execution. fn receives the flight context —
// alive while any participant's ctx is — rather than any single request's.
// A waiter whose own ctx dies returns its ctx error immediately (and stops
// propping the flight up); the flight itself keeps running for the rest.
// A panic in fn is converted to an error for every caller — the daemon
// accepts arbitrary client graphs, and a panicking synthesis must not wedge
// the key forever (waiters blocked on a channel that never closes).
func (g *flightGroup) do(ctx context.Context, key string, fn func(context.Context) (CachedPlan, error)) (val CachedPlan, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*flightCall{}
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		detach := c.attach(ctx)
		defer detach()
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			return CachedPlan{}, ctx.Err(), true
		}
	}
	fctx, cancel := context.WithCancel(context.Background())
	c := &flightCall{done: make(chan struct{}), cancel: cancel}
	g.m[key] = c
	g.mu.Unlock()

	detach := c.attach(ctx)
	func() {
		defer func() {
			if r := recover(); r != nil {
				c.val, c.err = CachedPlan{}, fmt.Errorf("synthesis panicked: %v", r)
			}
			close(c.done)
			g.mu.Lock()
			delete(g.m, key)
			g.mu.Unlock()
		}()
		c.val, c.err = fn(fctx)
	}()
	detach()
	cancel() // idempotent; frees the flight context's resources
	return c.val, c.err, false
}
