package main

import (
	"context"
	"fmt"
	"time"

	"hap/internal/cluster"
	"hap/internal/cost"
	"hap/internal/models"
	"hap/internal/synth"
	"hap/internal/theory"
)

func main() {
	for _, m := range []models.PaperModel{models.ModelViT, models.ModelBERTBase, models.ModelVGG19, models.ModelBERTMoE} {
		g := models.Build(m, 8)
		c := cluster.PaperHeterogeneous(1)
		b := cost.UniformRatios(1, c.ProportionalRatios())
		start := time.Now()
		p, stats, err := synth.Synthesize(context.Background(), g, theory.New(g), c, b, synth.Auto())
		if err != nil {
			fmt.Printf("%-10s nodes=%4d ERR after %v: %v\n", m, g.NumNodes(), time.Since(start), err)
			continue
		}
		fmt.Printf("%-10s nodes=%4d instrs=%4d comms=%3d exp=%7d cost=%.4fs elapsed=%v\n",
			m, g.NumNodes(), len(p.Instrs), p.NumComms(), stats.Expansions, stats.Cost, stats.Elapsed)
	}
}
