// Command benchcheck compares `go test -bench -benchmem` output against a
// committed baseline (BENCH_synth.json) and fails when allocs/op regress
// beyond a ratio. CI's bench-smoke step runs it so an allocation regression
// in the synthesis hot path fails the build instead of landing silently;
// absolute ns/op is reported but never gated — CI machines vary too much
// for wall-clock assertions. The baseline may also declare relative gates:
// one benchmark's ns/op bounded by a fraction of another's from the SAME
// run (e.g. incremental VGG19 synthesis under 10% of cold). Ratios between
// same-run measurements cancel out the hardware, so they are safe to gate.
//
// It also gates load-test reports: with -serve-baseline, benchcheck reads a
// committed BENCH_serve.json of named profiles (each an SLO string in the
// hap-loadgen grammar), picks one with -profile, and re-evaluates it against
// the JSON report a loadgen run wrote with -report. The gate text lives in
// the committed baseline, so tightening an SLO is a reviewed diff, and the
// committed gates only use hardware-tolerant assertions (errors, hit ratio,
// shed counts, generous tails) — tight latency numbers stay informational.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkSynthesizeVGG19 -benchmem -benchtime=1x ./internal/synth > bench.txt
//	go run ./internal/tools/benchcheck -baseline BENCH_synth.json -bench bench.txt
//
//	hap-loadgen -target http://127.0.0.1:8080 -warmup -report report.json
//	go run ./internal/tools/benchcheck -serve-baseline BENCH_serve.json -profile single -report report.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"

	"hap/internal/load"
)

// Baseline is the BENCH_synth.json schema.
type Baseline struct {
	// Note documents how the baseline was produced.
	Note string `json:"note"`
	// Command reproduces the measurement.
	Command string `json:"command"`
	// Benchmarks maps the benchmark name (GOMAXPROCS suffix stripped) to its
	// committed numbers.
	Benchmarks map[string]Entry `json:"benchmarks"`
	// Relative gates same-run ns/op ratios. Gates whose benchmarks did not
	// both run are skipped (CI may run a subset).
	Relative []RelativeGate `json:"relative,omitempty"`
}

// RelativeGate fails the check when Bench's measured ns/op exceeds MaxRatio
// times Versus's measured ns/op, both taken from the bench output under test.
type RelativeGate struct {
	Bench    string  `json:"bench"`
	Versus   string  `json:"versus"`
	MaxRatio float64 `json:"max_ratio"`
}

// Entry is one benchmark's committed numbers.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// ServeBaseline is the BENCH_serve.json schema: named load profiles, each
// gated by an SLO string in the hap-loadgen grammar.
type ServeBaseline struct {
	Note     string                  `json:"note"`
	Profiles map[string]ServeProfile `json:"profiles"`
}

// ServeProfile is one committed load-test gate.
type ServeProfile struct {
	// Note documents what the profile measures and how CI drives it.
	Note string `json:"note,omitempty"`
	// SLO is the assertion list, e.g. "errors=0, hit_ratio>=0.99, warm.p99<250ms".
	SLO string `json:"slo"`
}

// checkServe evaluates the named profile's SLO against a loadgen JSON report
// and returns false on violation.
func checkServe(baselinePath, profile, reportPath string) bool {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fatal("reading serve baseline: %v", err)
	}
	var base ServeBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal("parsing %s: %v", baselinePath, err)
	}
	prof, ok := base.Profiles[profile]
	if !ok {
		names := make([]string, 0, len(base.Profiles))
		for n := range base.Profiles {
			names = append(names, n)
		}
		fatal("profile %q not in %s (have: %s)", profile, baselinePath, strings.Join(names, ", "))
	}
	slo, err := load.ParseSLO(prof.SLO)
	if err != nil {
		fatal("profile %q: %v", profile, err)
	}
	raw, err = os.ReadFile(reportPath)
	if err != nil {
		fatal("reading report: %v", err)
	}
	var rep load.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		fatal("parsing report %s: %v", reportPath, err)
	}
	results, ok := slo.Check(&rep)
	fmt.Printf("profile %s (%s mode, %d requests, %.1f req/s):\n", profile, rep.Mode, rep.Requests, rep.Throughput)
	for _, r := range results {
		fmt.Printf("  %s\n", r.Detail)
	}
	return ok
}

// benchLine matches one -benchmem result line, e.g.
// "BenchmarkSynthesizeVGG19/workers=1-8  3  97076510 ns/op  11646037 B/op  37509 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([\d.]+) ns/op\s+([\d.]+) B/op\s+([\d.]+) allocs/op`)

// stripProcs removes the trailing -<GOMAXPROCS> the bench runner appends.
func stripProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_synth.json", "committed baseline file")
	benchPath := flag.String("bench", "", "bench output file (default stdin)")
	maxAllocsRatio := flag.Float64("max-allocs-ratio", 2.0, "fail when allocs/op exceeds baseline by this factor")
	serveBaseline := flag.String("serve-baseline", "", "BENCH_serve.json of load-test SLO profiles (switches to serve-gate mode)")
	profile := flag.String("profile", "", "profile name in -serve-baseline to gate against")
	reportPath := flag.String("report", "", "hap-loadgen JSON report to evaluate (serve-gate mode)")
	flag.Parse()

	if *serveBaseline != "" {
		if *profile == "" || *reportPath == "" {
			fatal("-serve-baseline requires -profile and -report")
		}
		if !checkServe(*serveBaseline, *profile, *reportPath) {
			fatal("SLO violation")
		}
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal("reading baseline: %v", err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal("parsing %s: %v", *baselinePath, err)
	}

	in := os.Stdin
	if *benchPath != "" {
		f, err := os.Open(*benchPath)
		if err != nil {
			fatal("opening bench output: %v", err)
		}
		defer f.Close()
		in = f
	}

	matched := 0
	failed := false
	measured := map[string]float64{} // name → ns/op from this run
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := stripProcs(m[1])
		ns, _ := strconv.ParseFloat(m[2], 64)
		measured[name] = ns
		entry, ok := base.Benchmarks[name]
		if !ok {
			continue
		}
		matched++
		allocs, _ := strconv.ParseFloat(m[4], 64)
		ratio := allocs / entry.AllocsPerOp
		status := "ok"
		if ratio > *maxAllocsRatio {
			status = fmt.Sprintf("FAIL (>%.1fx baseline)", *maxAllocsRatio)
			failed = true
		}
		fmt.Printf("%s: %.0f allocs/op vs baseline %.0f (%.2fx, %s); %.1f ms/op vs baseline %.1f (informational)\n",
			name, allocs, entry.AllocsPerOp, ratio, status, ns/1e6, entry.NsPerOp/1e6)
	}
	if err := sc.Err(); err != nil {
		fatal("reading bench output: %v", err)
	}
	if matched == 0 {
		fatal("no benchmark lines matched the baseline — wrong -bench output, or missing -benchmem?")
	}
	for _, g := range base.Relative {
		ns, okB := measured[g.Bench]
		vs, okV := measured[g.Versus]
		if !okB || !okV {
			continue // partial runs skip the gate rather than fail it
		}
		ratio := ns / vs
		status := "ok"
		if ratio > g.MaxRatio {
			status = fmt.Sprintf("FAIL (>%.2fx)", g.MaxRatio)
			failed = true
		}
		fmt.Printf("%s: %.1f ms/op = %.2fx of %s's %.1f ms/op (gate %.2fx, %s)\n",
			g.Bench, ns/1e6, ratio, g.Versus, vs/1e6, g.MaxRatio, status)
	}
	if failed {
		fatal("benchmark regression detected")
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcheck: "+format+"\n", args...)
	os.Exit(1)
}
