// Command benchcheck compares `go test -bench -benchmem` output against a
// committed baseline (BENCH_synth.json) and fails when allocs/op regress
// beyond a ratio. CI's bench-smoke step runs it so an allocation regression
// in the synthesis hot path fails the build instead of landing silently;
// absolute ns/op is reported but never gated — CI machines vary too much
// for wall-clock assertions. The baseline may also declare relative gates:
// one benchmark's ns/op bounded by a fraction of another's from the SAME
// run (e.g. incremental VGG19 synthesis under 10% of cold). Ratios between
// same-run measurements cancel out the hardware, so they are safe to gate.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkSynthesizeVGG19 -benchmem -benchtime=1x ./internal/synth > bench.txt
//	go run ./internal/tools/benchcheck -baseline BENCH_synth.json -bench bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Baseline is the BENCH_synth.json schema.
type Baseline struct {
	// Note documents how the baseline was produced.
	Note string `json:"note"`
	// Command reproduces the measurement.
	Command string `json:"command"`
	// Benchmarks maps the benchmark name (GOMAXPROCS suffix stripped) to its
	// committed numbers.
	Benchmarks map[string]Entry `json:"benchmarks"`
	// Relative gates same-run ns/op ratios. Gates whose benchmarks did not
	// both run are skipped (CI may run a subset).
	Relative []RelativeGate `json:"relative,omitempty"`
}

// RelativeGate fails the check when Bench's measured ns/op exceeds MaxRatio
// times Versus's measured ns/op, both taken from the bench output under test.
type RelativeGate struct {
	Bench    string  `json:"bench"`
	Versus   string  `json:"versus"`
	MaxRatio float64 `json:"max_ratio"`
}

// Entry is one benchmark's committed numbers.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchLine matches one -benchmem result line, e.g.
// "BenchmarkSynthesizeVGG19/workers=1-8  3  97076510 ns/op  11646037 B/op  37509 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([\d.]+) ns/op\s+([\d.]+) B/op\s+([\d.]+) allocs/op`)

// stripProcs removes the trailing -<GOMAXPROCS> the bench runner appends.
func stripProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_synth.json", "committed baseline file")
	benchPath := flag.String("bench", "", "bench output file (default stdin)")
	maxAllocsRatio := flag.Float64("max-allocs-ratio", 2.0, "fail when allocs/op exceeds baseline by this factor")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal("reading baseline: %v", err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal("parsing %s: %v", *baselinePath, err)
	}

	in := os.Stdin
	if *benchPath != "" {
		f, err := os.Open(*benchPath)
		if err != nil {
			fatal("opening bench output: %v", err)
		}
		defer f.Close()
		in = f
	}

	matched := 0
	failed := false
	measured := map[string]float64{} // name → ns/op from this run
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := stripProcs(m[1])
		ns, _ := strconv.ParseFloat(m[2], 64)
		measured[name] = ns
		entry, ok := base.Benchmarks[name]
		if !ok {
			continue
		}
		matched++
		allocs, _ := strconv.ParseFloat(m[4], 64)
		ratio := allocs / entry.AllocsPerOp
		status := "ok"
		if ratio > *maxAllocsRatio {
			status = fmt.Sprintf("FAIL (>%.1fx baseline)", *maxAllocsRatio)
			failed = true
		}
		fmt.Printf("%s: %.0f allocs/op vs baseline %.0f (%.2fx, %s); %.1f ms/op vs baseline %.1f (informational)\n",
			name, allocs, entry.AllocsPerOp, ratio, status, ns/1e6, entry.NsPerOp/1e6)
	}
	if err := sc.Err(); err != nil {
		fatal("reading bench output: %v", err)
	}
	if matched == 0 {
		fatal("no benchmark lines matched the baseline — wrong -bench output, or missing -benchmem?")
	}
	for _, g := range base.Relative {
		ns, okB := measured[g.Bench]
		vs, okV := measured[g.Versus]
		if !okB || !okV {
			continue // partial runs skip the gate rather than fail it
		}
		ratio := ns / vs
		status := "ok"
		if ratio > g.MaxRatio {
			status = fmt.Sprintf("FAIL (>%.2fx)", g.MaxRatio)
			failed = true
		}
		fmt.Printf("%s: %.1f ms/op = %.2fx of %s's %.1f ms/op (gate %.2fx, %s)\n",
			g.Bench, ns/1e6, ratio, g.Versus, vs/1e6, g.MaxRatio, status)
	}
	if failed {
		fatal("benchmark regression detected")
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcheck: "+format+"\n", args...)
	os.Exit(1)
}
