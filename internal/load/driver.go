// The load drivers.
//
// Closed loop: a fixed worker pool where each worker issues its next
// request when the previous one completes — concurrency is the control
// variable, throughput the measurement. Good for steady-state latency under
// a known parallelism.
//
// Open loop: requests arrive by a Poisson process at a target rate whether
// or not earlier ones finished — rate is the control variable, latency the
// measurement. Crucially, each request's latency is measured from its
// INTENDED send time (the arrival the Poisson process scheduled), not from
// when a connection slot freed up. Measuring from the actual send is the
// coordinated-omission trap: a stalled server delays the sends themselves,
// so the stall never shows up in the numbers. Measuring from intended time,
// server-induced queueing lands in the recorded latency where it belongs —
// driver_test.go pins this with a deliberately stalled server.

package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// binaryPlanContentType mirrors serve.BinaryPlanContentType (the wire
// contract; the serve package stays unimported so loadgen measures the
// daemon strictly from outside).
const binaryPlanContentType = "application/x-hap-plan"

// Options configures one load run.
type Options struct {
	// Target is the daemon base URL (e.g. "http://127.0.0.1:8080").
	Target string
	// Corpus is the request universe (required).
	Corpus *Corpus
	// Mix weighs the request classes (zero = DefaultMix).
	Mix Mix
	// ZipfS is the popularity skew (<=1 = default 1.2).
	ZipfS float64
	// Seed makes the run deterministic.
	Seed int64

	// OpenLoop selects the Poisson arrival driver; false = closed loop.
	OpenLoop bool
	// Concurrency is the closed-loop worker count (0 = 8).
	Concurrency int
	// Rate is the open-loop target arrival rate per second (0 = 100).
	Rate float64
	// MaxOutstanding caps concurrently outstanding open-loop requests
	// (0 = 1024). When the cap is hit, arrivals queue — and their wait is
	// part of their recorded latency, by design.
	MaxOutstanding int

	// Duration bounds the run in wall time (0 = 5s when Requests is 0).
	Duration time.Duration
	// Requests bounds the run by count instead, when positive.
	Requests int

	// Client overrides the HTTP client (nil = 30s-timeout default).
	Client *http.Client
}

func (o *Options) defaults() error {
	if o.Corpus == nil {
		return fmt.Errorf("load: Options.Corpus is required")
	}
	if o.Target == "" {
		return fmt.Errorf("load: Options.Target is required")
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.Rate <= 0 {
		o.Rate = 100
	}
	if o.MaxOutstanding <= 0 {
		o.MaxOutstanding = 1024
	}
	if o.Duration <= 0 && o.Requests <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return nil
}

// Run executes one load run and returns its report. ctx cancellation stops
// the run early; what was measured up to that point is still reported.
func Run(ctx context.Context, o Options) (*Report, error) {
	if err := o.defaults(); err != nil {
		return nil, err
	}
	ex := &executor{target: o.Target, hc: o.Client, corpus: o.Corpus}
	rec := newRecorder()
	start := time.Now()
	if o.OpenLoop {
		runOpen(ctx, o, ex, rec, start)
	} else {
		runClosed(ctx, o, ex, rec, start)
	}
	elapsed := time.Since(start)
	mode := "closed"
	rate := 0.0
	concurrency := o.Concurrency
	if o.OpenLoop {
		mode, rate, concurrency = "open", o.Rate, 0
	}
	return rec.report(mode, o.Target, o.Seed, rate, concurrency, elapsed), nil
}

// Warmup serially posts every corpus single body once, so a subsequent run
// measures a warm cache. Returns the number of plans filled (or confirmed
// cached). Synthesis failures abort — a cold daemon that cannot plan the
// corpus would poison every later measurement.
func Warmup(ctx context.Context, target string, hc *http.Client, c *Corpus) (int, error) {
	if hc == nil {
		hc = &http.Client{Timeout: 5 * time.Minute}
	}
	for i := 0; i < c.Items(); i++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v1/synthesize", bytes.NewReader(c.SingleBody(i)))
		if err != nil {
			return i, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := hc.Do(req)
		if err != nil {
			return i, fmt.Errorf("load: warmup item %d: %w", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			return i, fmt.Errorf("load: warmup item %d: HTTP %d", i, resp.StatusCode)
		}
	}
	return c.Items(), nil
}

// runClosed drives the fixed-concurrency loop.
func runClosed(ctx context.Context, o Options, ex *executor, rec *recorder, start time.Time) {
	deadline := start.Add(o.Duration)
	var issued atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < o.Concurrency; w++ {
		wg.Add(1)
		// Distinct per-worker seeds keep the sequence deterministic for a
		// fixed (seed, concurrency) without every worker replaying the same
		// requests in lockstep.
		gen := NewGenerator(o.Corpus, o.Mix, o.ZipfS, o.Seed+int64(w)*7919)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				if o.Requests > 0 {
					if issued.Add(1) > int64(o.Requests) {
						return
					}
				} else if !time.Now().Before(deadline) {
					return
				}
				spec := gen.Next()
				t0 := time.Now()
				res := ex.do(ctx, spec)
				res.Latency = time.Since(t0)
				rec.record(res)
			}
		}()
	}
	wg.Wait()
}

// runOpen drives the Poisson arrival loop. One dispatcher owns the
// generator and the arrival clock; firing goroutines own nothing but their
// request.
func runOpen(ctx context.Context, o Options, ex *executor, rec *recorder, start time.Time) {
	gen := NewGenerator(o.Corpus, o.Mix, o.ZipfS, o.Seed)
	// The arrival process gets its own rng so the request sequence is
	// identical between closed and open runs of the same seed.
	arrivals := rand.New(rand.NewSource(o.Seed ^ 0x5deece66d))
	deadline := start.Add(o.Duration)
	sem := make(chan struct{}, o.MaxOutstanding)
	var wg sync.WaitGroup
	intended := start
	for n := 0; ; n++ {
		if ctx.Err() != nil {
			break
		}
		if o.Requests > 0 && n >= o.Requests {
			break
		}
		// The next intended send time advances by an exponential interarrival
		// regardless of how far behind actual sends are — the schedule is the
		// Poisson process, not the achieved pace.
		intended = intended.Add(time.Duration(arrivals.ExpFloat64() / o.Rate * float64(time.Second)))
		if o.Requests <= 0 && intended.After(deadline) {
			break
		}
		spec := gen.Next()
		if d := time.Until(intended); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-ctx.Done():
				timer.Stop()
				return
			case <-timer.C:
			}
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			wg.Wait()
			return
		}
		wg.Add(1)
		go func(spec Spec, intended time.Time) {
			defer wg.Done()
			defer func() { <-sem }()
			res := ex.do(ctx, spec)
			// Latency from the INTENDED send: any time this request spent
			// queued behind the outstanding cap — i.e. behind a slow server —
			// is charged to the request, not hidden (coordinated omission).
			res.Latency = time.Since(intended)
			rec.record(res)
		}(spec, intended)
	}
	wg.Wait()
}

// executor turns Specs into HTTP requests against the daemon and classifies
// the responses. Safe for concurrent use.
type executor struct {
	target string
	hc     *http.Client
	corpus *Corpus
	etags  sync.Map // item int → ETag string, for the Conditional class
}

// batchEnvelope is the slice of the batch response the classifier needs.
type batchEnvelope struct {
	Plans []struct {
		Cache string `json:"cache"`
	} `json:"plans"`
}

func (e *executor) do(ctx context.Context, spec Spec) Result {
	res := Result{Class: spec.Class}
	path := "/v1/synthesize"
	var body []byte
	accept := "application/json"
	batch := false
	switch spec.Class {
	case Batch, BatchBinary:
		path = "/v1/synthesize/batch"
		body = e.corpus.BatchBody(spec.Graph)
		batch = true
	default:
		body = e.corpus.SingleBody(spec.Item)
	}
	if spec.Class == SingleBinary || spec.Class == BatchBinary {
		accept = binaryPlanContentType + ", application/json"
	}
	cctx := ctx
	if spec.Class == Cancel {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(ctx, spec.CancelAfter)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, e.target+path, bytes.NewReader(body))
	if err != nil {
		res.Outcome, res.Code = OutcomeError, "request"
		return res
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", accept)
	if spec.Class == Conditional {
		if tag, ok := e.etags.Load(spec.Item); ok {
			req.Header.Set("If-None-Match", tag.(string))
		}
	}
	resp, err := e.hc.Do(req)
	if err != nil {
		if cctx.Err() != nil && ctx.Err() == nil {
			// Our own mid-flight cancellation doing its job.
			res.Outcome = OutcomeCanceled
		} else if ctx.Err() != nil {
			res.Outcome = OutcomeCanceled
		} else {
			res.Outcome, res.Code = OutcomeError, "transport"
		}
		return res
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	res.Proxied = resp.Header.Get("X-HAP-Fleet-Node") != ""
	switch {
	case resp.StatusCode == http.StatusNotModified:
		// Conditional revalidation answered from the client's cached copy:
		// a warm plan served for a handful of header bytes.
		res.Outcome, res.PlanHits = OutcomeWarm, 1
	case resp.StatusCode == http.StatusTooManyRequests:
		res.Outcome = OutcomeShed
	case resp.StatusCode/100 == 2 && batch:
		var env batchEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			res.Outcome, res.Code = OutcomeError, "bad_batch_envelope"
			return res
		}
		res.Outcome = OutcomeWarm
		for _, p := range env.Plans {
			if p.Cache == "hit" {
				res.PlanHits++
			} else {
				res.PlanMisses++
				res.Outcome = OutcomeMiss
			}
		}
	case resp.StatusCode/100 == 2:
		if resp.Header.Get("X-HAP-Cache") == "hit" {
			res.Outcome, res.PlanHits = OutcomeWarm, 1
		} else {
			res.Outcome, res.PlanMisses = OutcomeMiss, 1
		}
		if tag := resp.Header.Get("ETag"); tag != "" {
			e.etags.Store(spec.Item, tag)
		}
	case resp.StatusCode == 499:
		res.Outcome = OutcomeCanceled
	default:
		res.Outcome = OutcomeError
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var env struct {
			Code string `json:"code"`
		}
		if json.Unmarshal(raw, &env) == nil && env.Code != "" {
			res.Code = env.Code
		} else {
			res.Code = fmt.Sprintf("http_%d", resp.StatusCode)
		}
	}
	return res
}
