// Package load is the hap-serve load-generation harness: a deterministic
// workload generator, closed- and open-loop drivers, a log-bucketed latency
// histogram, and SLO assertions over the resulting report. cmd/hap-loadgen
// is the CLI; CI runs it against a single daemon and a 3-node fleet with
// the gates committed in BENCH_serve.json.
//
// The workload is a seeded corpus of (graph, cluster) pairs whose request
// popularity is zipf-distributed — production plan traffic is not i.i.d.:
// a handful of (model, cluster) pairs dominate, with a long cold tail —
// plus a request mix covering the daemon's real surface: single and batch
// synthesis, JSON and binary content negotiation, conditional fetch with
// If-None-Match, and requests cancelled mid-flight. Everything is
// deterministic under a seed, so a latency regression reproduces.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"hap"
)

// Class is one request class of the workload mix.
type Class uint8

const (
	// Single is POST /v1/synthesize with a JSON-plan Accept.
	Single Class = iota
	// SingleBinary negotiates the compact binary plan encoding.
	SingleBinary
	// Batch is POST /v1/synthesize/batch (one graph × every corpus cluster).
	Batch
	// BatchBinary is the batch endpoint with binary content negotiation.
	BatchBinary
	// Conditional revalidates with If-None-Match using the last seen ETag;
	// a warm server answers 304 with no body.
	Conditional
	// Cancel abandons the request mid-flight (context cancelled a few
	// milliseconds in), exercising the daemon's disconnect handling.
	Cancel

	numClasses
)

// String names the class; the names double as report class keys.
func (c Class) String() string {
	switch c {
	case Single:
		return "single"
	case SingleBinary:
		return "single_bin"
	case Batch:
		return "batch"
	case BatchBinary:
		return "batch_bin"
	case Conditional:
		return "cond"
	case Cancel:
		return "cancel"
	}
	return "unknown"
}

// Mix weighs the request classes. Zero-valued fields get no traffic; a
// zero-valued Mix means DefaultMix.
type Mix struct {
	Single       int
	SingleBinary int
	Batch        int
	BatchBinary  int
	Conditional  int
	Cancel       int
}

// DefaultMix is a plausible production blend: mostly single fetches split
// across encodings, a batch slice in both forms, a conditional-revalidation
// slice, and a trickle of abandoned requests.
func DefaultMix() Mix {
	return Mix{Single: 30, SingleBinary: 25, Batch: 10, BatchBinary: 10, Conditional: 20, Cancel: 5}
}

func (m Mix) weights() [numClasses]int {
	return [numClasses]int{m.Single, m.SingleBinary, m.Batch, m.BatchBinary, m.Conditional, m.Cancel}
}

func (m Mix) total() int {
	t := 0
	for _, w := range m.weights() {
		t += w
	}
	return t
}

// Spec is one generated request: its class and its corpus coordinates.
type Spec struct {
	Class Class
	// Item indexes the corpus (graph, cluster) pair for the single-style
	// classes; Graph the corpus graph for the batch classes (derived from
	// the same popularity draw, so batch traffic shares the zipf shape).
	Item  int
	Graph int
	// CancelAfter is the mid-flight abandonment point for Cancel requests.
	CancelAfter time.Duration
}

// Generator draws a deterministic request sequence: same corpus, mix, and
// seed → the same Specs in the same order. Not safe for concurrent use —
// each closed-loop worker owns one (distinct seeds), and the open-loop
// dispatcher draws before handing off to a firing goroutine.
type Generator struct {
	rng   *rand.Rand
	zipf  *rand.Zipf
	w     [numClasses]int
	total int
	c     *Corpus
}

// NewGenerator returns a generator over the corpus with the given mix.
// zipfS is the zipf skew (must be > 1; larger = hotter head). A zero-total
// mix falls back to DefaultMix.
func NewGenerator(c *Corpus, mix Mix, zipfS float64, seed int64) *Generator {
	if mix.total() == 0 {
		mix = DefaultMix()
	}
	if zipfS <= 1 {
		zipfS = 1.2
	}
	rng := rand.New(rand.NewSource(seed))
	return &Generator{
		rng:   rng,
		zipf:  rand.NewZipf(rng, zipfS, 1, uint64(c.Items()-1)),
		w:     mix.weights(),
		total: mix.total(),
		c:     c,
	}
}

// Next draws the next request.
func (g *Generator) Next() Spec {
	item := int(g.zipf.Uint64())
	s := Spec{Item: item, Graph: item / g.c.NumClusters}
	pick := g.rng.Intn(g.total)
	for c, w := range g.w {
		if pick < w {
			s.Class = Class(c)
			break
		}
		pick -= w
	}
	if s.Class == Cancel {
		// Abandon 0.5–4.5ms in: late enough to usually reach the daemon,
		// early enough to catch most syntheses mid-flight.
		s.CancelAfter = 500*time.Microsecond + time.Duration(g.rng.Int63n(int64(4*time.Millisecond)))
	}
	return s
}

// Corpus is the seeded request universe: Graphs random small training
// graphs × a palette of cluster shapes, with every wire body pre-marshalled
// so the drivers spend their cycles on HTTP, not JSON.
type Corpus struct {
	NumGraphs   int
	NumClusters int
	singles     [][]byte // graph-major: item = graph*NumClusters + cluster
	batches     [][]byte // one per graph, spanning all clusters
}

// clusterPalette is the fixed set of cluster shapes the corpus draws from:
// heterogeneous across machines, homogeneous, a machine-level mix, and a
// two-type per-GPU pair — the same families the differential harness plans
// on.
func clusterPalette() []*hap.Cluster {
	return []*hap.Cluster{
		hap.PerGPU(hap.MachineSpec{Type: hap.V100, GPUs: 1}, hap.MachineSpec{Type: hap.P100, GPUs: 1}),
		hap.PerGPU(hap.MachineSpec{Type: hap.P100, GPUs: 2}),
		hap.Heterogeneous(hap.MachineSpec{Type: hap.V100, GPUs: 2}, hap.MachineSpec{Type: hap.P100, GPUs: 2}),
		hap.PerGPU(hap.MachineSpec{Type: hap.A100, GPUs: 1}, hap.MachineSpec{Type: hap.P100, GPUs: 1}),
	}
}

// MaxClusters is the size of the corpus cluster palette.
const MaxClusters = 4

// NewCorpus builds a deterministic corpus of graphs × clusters request
// bodies. graphs must be positive; clusters in [1, MaxClusters]. The same
// (graphs, clusters, seed) triple always yields byte-identical bodies, so
// two loadgen runs against the same daemon share cache keys.
func NewCorpus(graphs, clusters int, seed int64) (*Corpus, error) {
	if graphs <= 0 {
		return nil, fmt.Errorf("load: corpus needs at least one graph")
	}
	if clusters <= 0 || clusters > MaxClusters {
		return nil, fmt.Errorf("load: corpus clusters must be in [1, %d], got %d", MaxClusters, clusters)
	}
	palette := clusterPalette()[:clusters]
	clusterJSON := make([]json.RawMessage, clusters)
	for i, cl := range palette {
		var b bytes.Buffer
		if err := cl.Encode(&b); err != nil {
			return nil, fmt.Errorf("load: encoding cluster %d: %w", i, err)
		}
		clusterJSON[i] = b.Bytes()
	}
	rng := rand.New(rand.NewSource(seed))
	c := &Corpus{NumGraphs: graphs, NumClusters: clusters}
	for gi := 0; gi < graphs; gi++ {
		g, err := randomTrainingGraph(rng)
		if err != nil {
			return nil, fmt.Errorf("load: building graph %d: %w", gi, err)
		}
		var gb bytes.Buffer
		if err := g.Encode(&gb); err != nil {
			return nil, fmt.Errorf("load: encoding graph %d: %w", gi, err)
		}
		graphJSON := json.RawMessage(gb.Bytes())
		for _, cj := range clusterJSON {
			body, err := json.Marshal(struct {
				Graph   json.RawMessage `json:"graph"`
				Cluster json.RawMessage `json:"cluster"`
			}{graphJSON, cj})
			if err != nil {
				return nil, err
			}
			c.singles = append(c.singles, body)
		}
		batch, err := json.Marshal(struct {
			Graph    json.RawMessage   `json:"graph"`
			Clusters []json.RawMessage `json:"clusters"`
		}{graphJSON, clusterJSON})
		if err != nil {
			return nil, err
		}
		c.batches = append(c.batches, batch)
	}
	return c, nil
}

// Items returns the number of (graph, cluster) pairs.
func (c *Corpus) Items() int { return len(c.singles) }

// SingleBody returns item i's pre-marshalled /v1/synthesize body.
func (c *Corpus) SingleBody(i int) []byte { return c.singles[i] }

// BatchBody returns graph g's pre-marshalled /v1/synthesize/batch body.
func (c *Corpus) BatchBody(g int) []byte { return c.batches[g] }

// randomTrainingGraph builds one random small MLP-family training graph —
// the same family the differential harness fuzzes: 1–3 matmul layers over a
// random batch and widths, random activations, element-wise parameter
// interactions, an occasional two-branch fan-out, and a full backward pass.
func randomTrainingGraph(rng *rand.Rand) (*hap.Graph, error) {
	g := hap.NewGraph()
	b := []int{16, 32, 64}[rng.Intn(3)]
	f := 4 + rng.Intn(29)
	cur := g.AddPlaceholder("x", 0, b, f)
	layers := 1 + rng.Intn(3)
	for l := 0; l < layers; l++ {
		out := 4 + rng.Intn(29)
		if rng.Intn(4) == 0 {
			w1 := g.AddParameter(fmt.Sprintf("w%da", l), f, out)
			w2 := g.AddParameter(fmt.Sprintf("w%db", l), f, out)
			h1 := randomActivation(g, rng, g.AddOp(hap.MatMul, cur, w1))
			h2 := randomActivation(g, rng, g.AddOp(hap.MatMul, cur, w2))
			cur = g.AddOp(hap.Add, h1, h2)
		} else {
			w := g.AddParameter(fmt.Sprintf("w%d", l), f, out)
			cur = randomActivation(g, rng, g.AddOp(hap.MatMul, cur, w))
			if rng.Intn(3) == 0 {
				p := g.AddParameter(fmt.Sprintf("p%d", l), b, out)
				if rng.Intn(2) == 0 {
					cur = g.AddOp(hap.Add, cur, p)
				} else {
					cur = g.AddOp(hap.Mul, cur, p)
				}
			}
		}
		f = out
		if rng.Intn(4) == 0 {
			cur = g.AddScale(cur, 0.25+rng.Float64())
		}
	}
	g.SetLoss(g.AddOp(hap.Sum, g.AddScale(cur, 1/float64(b))))
	if err := hap.Backward(g); err != nil {
		return nil, err
	}
	return g, nil
}

func randomActivation(g *hap.Graph, rng *rand.Rand, id hap.NodeID) hap.NodeID {
	switch rng.Intn(5) {
	case 0:
		return g.AddOp(hap.ReLU, id)
	case 1:
		return g.AddOp(hap.Sigmoid, id)
	case 2:
		return g.AddOp(hap.GeLU, id)
	case 3:
		return g.AddOp(hap.Softmax, id)
	default:
		return id
	}
}
