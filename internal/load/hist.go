// Log-bucketed latency histogram. Buckets grow geometrically (2^(1/8) per
// bucket, ~9% relative width), so one fixed 240-slot array spans 1µs cache
// hits through minute-scale cold syntheses with bounded quantile error: a
// reported quantile is the upper bound of the bucket holding the rank, at
// most one bucket width above the true value. That error bound is what the
// SLO gates lean on — a p99 the histogram reports under the threshold is
// genuinely under threshold·1.091, and hist_test.go checks the bound against
// a sorted-slice oracle.

package load

import (
	"math"
	"time"
)

const (
	// histMinNs is the upper bound of the first bucket: latencies under 1µs
	// are all "bucket zero" — far below anything an HTTP round trip produces.
	histMinNs = 1_000
	// histGrowth is the per-bucket geometric growth factor, 2^(1/8).
	histGrowth = 1.0905077326652577
	// histBuckets sized so the last regular bucket exceeds 15 minutes;
	// anything slower lands in the overflow bucket and reports the observed
	// maximum.
	histBuckets = 240
)

var invLogGrowth = 1 / math.Log(histGrowth)

// Hist is a log-bucketed latency histogram. Not safe for concurrent use —
// the drivers keep one per recorder behind a mutex (latency recording is
// nanoseconds against millisecond request latencies).
type Hist struct {
	counts [histBuckets]uint64
	count  uint64
	sumNs  int64
	maxNs  int64
	minNs  int64
}

// Observe records one latency sample.
func (h *Hist) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(ns)]++
	h.count++
	h.sumNs += ns
	if ns > h.maxNs {
		h.maxNs = ns
	}
	if h.count == 1 || ns < h.minNs {
		h.minNs = ns
	}
}

// Merge folds o into h.
func (h *Hist) Merge(o *Hist) {
	if o.count == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.count == 0 || o.minNs < h.minNs {
		h.minNs = o.minNs
	}
	h.count += o.count
	h.sumNs += o.sumNs
	if o.maxNs > h.maxNs {
		h.maxNs = o.maxNs
	}
}

// Count returns the number of observed samples.
func (h *Hist) Count() uint64 { return h.count }

// Mean returns the arithmetic mean of the observed samples (exact — the sum
// is tracked outside the buckets).
func (h *Hist) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sumNs / int64(h.count))
}

// Max returns the largest observed sample, exactly.
func (h *Hist) Max() time.Duration { return time.Duration(h.maxNs) }

// Quantile returns the q-quantile (0 < q <= 1) as the upper bound of the
// bucket containing that rank, clamped to the exactly-tracked observed
// min/max. The result is never below the true quantile and at most one
// bucket width (×1.091) above it.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			ub := bucketBound(i)
			if ub > h.maxNs {
				ub = h.maxNs
			}
			if ub < h.minNs {
				ub = h.minNs
			}
			return time.Duration(ub)
		}
	}
	return time.Duration(h.maxNs) // unreachable: cum == count by the last bucket
}

// bucketIndex maps a latency in nanoseconds to its bucket.
func bucketIndex(ns int64) int {
	if ns < histMinNs {
		return 0
	}
	i := int(math.Log(float64(ns)/histMinNs)*invLogGrowth) + 1
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketBound returns bucket i's upper bound in nanoseconds.
func bucketBound(i int) int64 {
	return int64(histMinNs * math.Pow(histGrowth, float64(i)))
}
