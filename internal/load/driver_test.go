package load

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// stubPlanHandler answers every synthesize request with a tiny JSON body
// and the given cache verdict, after an optional artificial stall.
func stubPlanHandler(stall time.Duration, cache string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if stall > 0 {
			time.Sleep(stall)
		}
		w.Header().Set("X-HAP-Cache", cache)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{}`))
	})
}

func smallCorpus(t *testing.T) *Corpus {
	t.Helper()
	c, err := NewCorpus(2, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestOpenLoopChargesQueueing is the coordinated-omission test: a server
// stalling 40ms per request, an open-loop driver at a rate far beyond the
// server's capacity, and one outstanding slot. Measured from intended send
// times, the queueing behind the stalled server must inflate the recorded
// tail far beyond the per-request service time — a closed-loop run against
// the same server (which cannot see queueing by construction) stays near
// the service time, proving the open loop isn't just measuring the stall.
func TestOpenLoopChargesQueueing(t *testing.T) {
	const stall = 40 * time.Millisecond
	srv := httptest.NewServer(stubPlanHandler(stall, "hit"))
	defer srv.Close()
	corpus := smallCorpus(t)

	closed, err := Run(context.Background(), Options{
		Target: srv.URL, Corpus: corpus, Mix: Mix{Single: 1}, Seed: 1,
		Concurrency: 1, Requests: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	open, err := Run(context.Background(), Options{
		Target: srv.URL, Corpus: corpus, Mix: Mix{Single: 1}, Seed: 1,
		OpenLoop: true, Rate: 500, MaxOutstanding: 1, Requests: 20,
	})
	if err != nil {
		t.Fatal(err)
	}

	closedP99 := closed.Classes["all"].P99Ms
	openP99 := open.Classes["all"].P99Ms
	if closedP99 < 35 || closedP99 > 200 {
		t.Errorf("closed-loop p99 = %.1fms, want near the 40ms service time", closedP99)
	}
	// 20 requests intended within ~40ms but served at 25/s: the last ones
	// queued ~0.7s. Anything under 300ms means latency was measured from
	// the actual send — the coordinated-omission bug this test pins.
	if openP99 < 300 {
		t.Errorf("open-loop p99 = %.1fms; queueing behind the stalled server was not charged (coordinated omission)", openP99)
	}
	if open.Requests != 20 || closed.Requests != 10 {
		t.Errorf("requests = %d open / %d closed, want 20/10", open.Requests, closed.Requests)
	}
}

// TestDriverOutcomeClassification scripts one response per status family
// and checks the report's taxonomy: warm, miss, shed (with Retry-After),
// and an enveloped error code.
func TestDriverOutcomeClassification(t *testing.T) {
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch n.Add(1) {
		case 1:
			w.Header().Set("X-HAP-Cache", "hit")
			w.Write([]byte(`{}`))
		case 2:
			w.Header().Set("X-HAP-Cache", "miss")
			w.Write([]byte(`{}`))
		case 3:
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"code": "overloaded"})
		default:
			w.WriteHeader(http.StatusUnprocessableEntity)
			json.NewEncoder(w).Encode(map[string]string{"code": "synthesis_failed", "message": "no plan"})
		}
	}))
	defer srv.Close()

	rep, err := Run(context.Background(), Options{
		Target: srv.URL, Corpus: smallCorpus(t), Mix: Mix{Single: 1}, Seed: 2,
		Concurrency: 1, Requests: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PlanWarm != 1 || rep.PlanMiss != 1 {
		t.Errorf("warm/miss = %d/%d, want 1/1", rep.PlanWarm, rep.PlanMiss)
	}
	if rep.HitRatio != 0.5 {
		t.Errorf("hit ratio = %g, want 0.5", rep.HitRatio)
	}
	if rep.Shed != 1 {
		t.Errorf("shed = %d, want 1", rep.Shed)
	}
	if rep.Errors != 1 || rep.ErrorsByCode["synthesis_failed"] != 1 {
		t.Errorf("errors = %d (%v), want 1 synthesis_failed", rep.Errors, rep.ErrorsByCode)
	}
	if rep.Classes["warm"].Count != 1 || rep.Classes["miss"].Count != 1 || rep.Classes["shed"].Count != 1 {
		t.Errorf("class counts = %+v", rep.Classes)
	}
}

// TestCancelClassRecordsCanceled: a server slower than every cancel point
// turns the Cancel class into canceled results, not errors.
func TestCancelClassRecordsCanceled(t *testing.T) {
	srv := httptest.NewServer(stubPlanHandler(200*time.Millisecond, "hit"))
	defer srv.Close()
	rep, err := Run(context.Background(), Options{
		Target: srv.URL, Corpus: smallCorpus(t), Mix: Mix{Cancel: 1}, Seed: 3,
		Concurrency: 2, Requests: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Canceled != 6 {
		t.Errorf("canceled = %d of 6, errors %v", rep.Canceled, rep.ErrorsByCode)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d, want 0 (cancellation is not an error)", rep.Errors)
	}
}

// TestConditionalClassRevalidates: the executor remembers ETags and turns
// 304 answers into warm results.
func TestConditionalClassRevalidates(t *testing.T) {
	var revalidations atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("ETag", `"tag-1"`)
		if r.Header.Get("If-None-Match") == `"tag-1"` {
			revalidations.Add(1)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("X-HAP-Cache", "hit")
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()
	corpus, err := NewCorpus(1, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Options{
		Target: srv.URL, Corpus: corpus, Mix: Mix{Conditional: 1}, Seed: 4,
		Concurrency: 1, Requests: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Request 1 has no tag yet (full response); 2..5 revalidate.
	if revalidations.Load() != 4 {
		t.Errorf("%d revalidations of 5 conditional requests, want 4", revalidations.Load())
	}
	if rep.PlanWarm != 5 || rep.Errors != 0 {
		t.Errorf("warm = %d errors = %d, want 5 warm", rep.PlanWarm, rep.Errors)
	}
}
