package load

import (
	"strings"
	"testing"
)

func testReport() *Report {
	return &Report{
		Requests:   1000,
		Throughput: 200,
		PlanWarm:   900,
		PlanMiss:   100,
		HitRatio:   0.9,
		Shed:       5,
		Errors:     0,
		Classes: map[string]ClassStats{
			"all":  {Count: 995, P50Ms: 0.8, P99Ms: 4.2, MaxMs: 80},
			"warm": {Count: 900, P50Ms: 0.5, P99Ms: 2.1, MaxMs: 3},
			"miss": {Count: 95, P50Ms: 40, P99Ms: 75, MaxMs: 80},
		},
	}
}

// TestSLOParseAndCheck: the grammar parses, latency thresholds are Go
// durations, and pass/fail verdicts land correctly.
func TestSLOParseAndCheck(t *testing.T) {
	slo, err := ParseSLO("warm.p99<5ms, errors=0, hit_ratio>=0.8, shed>0, miss.p99 <= 100ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(slo.Assertions) != 5 {
		t.Fatalf("parsed %d assertions, want 5", len(slo.Assertions))
	}
	results, ok := slo.Check(testReport())
	if !ok {
		for _, r := range results {
			if !r.Pass {
				t.Errorf("unexpected failure: %s", r.Detail)
			}
		}
		t.Fatal("all assertions should pass")
	}

	// Flip each threshold and confirm the right one fails.
	slo, err = ParseSLO("warm.p99<1ms,errors=0")
	if err != nil {
		t.Fatal(err)
	}
	results, ok = slo.Check(testReport())
	if ok {
		t.Fatal("warm.p99<1ms must fail against p99 = 2.1ms")
	}
	if results[0].Pass || !results[1].Pass {
		t.Errorf("wrong assertion failed: %+v", results)
	}
	if !strings.Contains(results[0].Detail, "FAIL") {
		t.Errorf("failing detail %q lacks FAIL marker", results[0].Detail)
	}
}

// TestSLOMissingClassFails: asserting a latency quantile of a class that
// saw no traffic is a failure, not a silent pass — except count, which is
// legitimately zero.
func TestSLOMissingClassFails(t *testing.T) {
	slo, err := ParseSLO("proxied.p99<5ms")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := slo.Check(testReport()); ok {
		t.Error("latency assertion on an absent class passed silently")
	}
	slo, err = ParseSLO("proxied.count=0")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := slo.Check(testReport()); !ok {
		t.Error("count=0 on an absent class must pass")
	}
}

// TestSLOParseErrors: the reject cases.
func TestSLOParseErrors(t *testing.T) {
	for _, bad := range []string{
		"warm.p99",            // no operator
		"warm.p98<5ms",        // unknown metric
		"bogus_scalar<1",      // unknown scalar
		"warm.p99<5",          // latency threshold must be a duration
		"errors=zero",         // non-numeric threshold
		"warm.p99<5ms,errors", // one bad entry poisons the list
	} {
		if _, err := ParseSLO(bad); err == nil {
			t.Errorf("ParseSLO(%q) accepted", bad)
		}
	}
	// Empty and whitespace-only parse to the always-pass SLO.
	for _, empty := range []string{"", " , "} {
		slo, err := ParseSLO(empty)
		if err != nil {
			t.Errorf("ParseSLO(%q): %v", empty, err)
		} else if len(slo.Assertions) != 0 {
			t.Errorf("ParseSLO(%q) produced assertions", empty)
		}
	}
	// == normalizes to =.
	slo, err := ParseSLO("errors==0")
	if err != nil {
		t.Fatal(err)
	}
	if slo.Assertions[0].Op != "=" {
		t.Errorf("op = %q, want =", slo.Assertions[0].Op)
	}
}
