package load

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestCorpusDeterministic: the same (graphs, clusters, seed) triple yields
// byte-identical request bodies — the property that makes two loadgen runs
// share cache keys with each other and with a warmup pass.
func TestCorpusDeterministic(t *testing.T) {
	a, err := NewCorpus(4, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCorpus(4, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Items() != 8 || b.Items() != 8 {
		t.Fatalf("Items = %d/%d, want 8 (4 graphs × 2 clusters)", a.Items(), b.Items())
	}
	for i := 0; i < a.Items(); i++ {
		if !bytes.Equal(a.SingleBody(i), b.SingleBody(i)) {
			t.Fatalf("single body %d differs between same-seed corpora", i)
		}
	}
	for g := 0; g < 4; g++ {
		if !bytes.Equal(a.BatchBody(g), b.BatchBody(g)) {
			t.Fatalf("batch body %d differs between same-seed corpora", g)
		}
	}
	c, err := NewCorpus(4, 2, 43)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.SingleBody(0), c.SingleBody(0)) {
		t.Error("different seeds produced identical graphs")
	}
	// Bodies must be valid request JSON with both fields.
	var req struct {
		Graph   json.RawMessage `json:"graph"`
		Cluster json.RawMessage `json:"cluster"`
	}
	if err := json.Unmarshal(a.SingleBody(0), &req); err != nil || len(req.Graph) == 0 || len(req.Cluster) == 0 {
		t.Errorf("single body malformed: %v", err)
	}
}

// TestCorpusValidatesArgs: bad shapes are rejected up front.
func TestCorpusValidatesArgs(t *testing.T) {
	if _, err := NewCorpus(0, 1, 1); err == nil {
		t.Error("zero graphs accepted")
	}
	if _, err := NewCorpus(1, 0, 1); err == nil {
		t.Error("zero clusters accepted")
	}
	if _, err := NewCorpus(1, MaxClusters+1, 1); err == nil {
		t.Error("over-palette clusters accepted")
	}
}

// TestGeneratorDeterministicAndZipf: same seed → same Spec sequence;
// popularity is head-heavy (zipf) rather than uniform; the class mix
// roughly follows its weights.
func TestGeneratorDeterministicAndZipf(t *testing.T) {
	corpus, err := NewCorpus(16, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	g1 := NewGenerator(corpus, Mix{}, 1.3, 99)
	g2 := NewGenerator(corpus, Mix{}, 1.3, 99)
	const n = 20000
	counts := make([]int, corpus.Items())
	classes := map[Class]int{}
	for i := 0; i < n; i++ {
		s1, s2 := g1.Next(), g2.Next()
		if s1 != s2 {
			t.Fatalf("draw %d: same-seed generators diverge: %+v vs %+v", i, s1, s2)
		}
		if s1.Item < 0 || s1.Item >= corpus.Items() {
			t.Fatalf("item %d out of corpus range", s1.Item)
		}
		if s1.Graph != s1.Item/corpus.NumClusters {
			t.Fatalf("graph %d inconsistent with item %d", s1.Graph, s1.Item)
		}
		if s1.Class == Cancel && s1.CancelAfter <= 0 {
			t.Fatal("cancel spec without a cancel point")
		}
		counts[s1.Item]++
		classes[s1.Class]++
	}
	// Zipf head: the most popular item dominates a uniform share by far.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if uniform := n / corpus.Items(); max < 4*uniform {
		t.Errorf("hottest item drew %d of %d; want ≥ 4× the uniform share %d (zipf head)", max, n, uniform)
	}
	// Every class with default-mix weight saw traffic, in rough proportion.
	mix := DefaultMix()
	total := mix.total()
	for class, weight := range map[Class]int{
		Single: mix.Single, SingleBinary: mix.SingleBinary, Batch: mix.Batch,
		BatchBinary: mix.BatchBinary, Conditional: mix.Conditional, Cancel: mix.Cancel,
	} {
		want := n * weight / total
		got := classes[class]
		if got < want/2 || got > want*2 {
			t.Errorf("class %v drew %d, want ~%d", class, got, want)
		}
	}
}

// TestGeneratorSingleItemCorpus: a 1-item corpus must not panic the zipf
// sampler (imax must stay >= 1).
func TestGeneratorSingleItemCorpus(t *testing.T) {
	corpus, err := NewCorpus(1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(corpus, Mix{Single: 1}, 1.2, 5)
	for i := 0; i < 100; i++ {
		if s := g.Next(); s.Item != 0 || s.Graph != 0 {
			t.Fatalf("1-item corpus drew item %d graph %d", s.Item, s.Graph)
		}
	}
}
