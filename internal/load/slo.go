// SLO assertions over a loadgen report. The grammar is a comma-separated
// list of comparisons:
//
//	assertion := scalar op value | class '.' metric op value
//	scalar    := errors | shed | canceled | proxied | requests
//	           | hit_ratio | throughput
//	metric    := p50 | p90 | p99 | p999 | mean | max | count
//	op        := < | <= | > | >= | = | == | !=
//	value     := Go duration (latency metrics: "5ms", "1.5s") | number
//
// Examples:
//
//	warm.p99<5ms,errors=0
//	warm.p99<5ms,hit_ratio>=0.8,shed>0
//
// hap-loadgen evaluates -slo after a run and exits non-zero on violation;
// benchcheck evaluates the committed BENCH_serve.json gates against the
// JSON report the same way — the parser and evaluator here are the single
// source of truth for both.

package load

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

var latencyMetrics = map[string]bool{
	"p50": true, "p90": true, "p99": true, "p999": true, "mean": true, "max": true,
}

var classMetrics = map[string]bool{
	"p50": true, "p90": true, "p99": true, "p999": true, "mean": true, "max": true, "count": true,
}

// Assertion is one parsed SLO comparison.
type Assertion struct {
	Raw    string  // the source text, for reporting
	Class  string  // "" for report scalars
	Metric string  // metric or scalar name
	Op     string  // <, <=, >, >=, =, !=
	Value  float64 // threshold; milliseconds for latency metrics
}

// SLO is a parsed set of assertions.
type SLO struct {
	Assertions []Assertion
}

// ParseSLO parses a comma-separated assertion list. An empty string parses
// to an empty (always-passing) SLO.
func ParseSLO(s string) (*SLO, error) {
	slo := &SLO{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		a, err := parseAssertion(part)
		if err != nil {
			return nil, err
		}
		slo.Assertions = append(slo.Assertions, a)
	}
	return slo, nil
}

func parseAssertion(s string) (Assertion, error) {
	// Longest operators first so "<=" is not split as "<" + "=".
	opAt := -1
	op := ""
	for _, cand := range []string{"<=", ">=", "==", "!=", "<", ">", "="} {
		if i := strings.Index(s, cand); i >= 0 {
			opAt, op = i, cand
			break
		}
	}
	if opAt < 0 {
		return Assertion{}, fmt.Errorf("load: SLO assertion %q has no comparison operator", s)
	}
	lhs := strings.TrimSpace(s[:opAt])
	rhs := strings.TrimSpace(s[opAt+len(op):])
	if op == "==" {
		op = "="
	}
	a := Assertion{Raw: s, Op: op}
	if dot := strings.IndexByte(lhs, '.'); dot >= 0 {
		a.Class, a.Metric = lhs[:dot], lhs[dot+1:]
		if a.Class == "" || !classMetrics[a.Metric] {
			return Assertion{}, fmt.Errorf("load: SLO assertion %q: unknown class metric %q", s, a.Metric)
		}
	} else {
		a.Metric = lhs
		if _, ok := (&Report{}).scalar(a.Metric); !ok {
			return Assertion{}, fmt.Errorf("load: SLO assertion %q: unknown scalar %q", s, a.Metric)
		}
	}
	if a.Class != "" && latencyMetrics[a.Metric] {
		d, err := time.ParseDuration(rhs)
		if err != nil {
			return Assertion{}, fmt.Errorf("load: SLO assertion %q: latency threshold must be a duration (e.g. 5ms): %v", s, err)
		}
		a.Value = float64(d.Nanoseconds()) / 1e6
	} else {
		v, err := strconv.ParseFloat(rhs, 64)
		if err != nil {
			return Assertion{}, fmt.Errorf("load: SLO assertion %q: bad threshold %q", s, rhs)
		}
		a.Value = v
	}
	return a, nil
}

// CheckResult is one assertion's evaluation against a report.
type CheckResult struct {
	Assertion Assertion
	Value     float64 // measured value (ms for latency metrics)
	Pass      bool
	Detail    string // human-readable verdict line
}

// Check evaluates every assertion. ok reports whether all passed; an
// assertion whose metric is missing from the report (e.g. a latency
// quantile of a class that saw no traffic) fails rather than silently
// passing.
func (s *SLO) Check(r *Report) (results []CheckResult, ok bool) {
	ok = true
	for _, a := range s.Assertions {
		var v float64
		var found bool
		if a.Class == "" {
			v, found = r.scalar(a.Metric)
		} else {
			v, found = r.classMetric(a.Class, a.Metric)
		}
		res := CheckResult{Assertion: a, Value: v}
		if !found {
			res.Pass = false
			res.Detail = fmt.Sprintf("FAIL %s: no samples for class %q", a.Raw, a.Class)
		} else {
			res.Pass = compare(v, a.Op, a.Value)
			verdict := "ok"
			if !res.Pass {
				verdict = "FAIL"
			}
			unit := ""
			if a.Class != "" && latencyMetrics[a.Metric] {
				unit = "ms"
			}
			res.Detail = fmt.Sprintf("%s %s: measured %.4g%s", verdict, a.Raw, v, unit)
		}
		if !res.Pass {
			ok = false
		}
		results = append(results, res)
	}
	return results, ok
}

func compare(v float64, op string, threshold float64) bool {
	switch op {
	case "<":
		return v < threshold
	case "<=":
		return v <= threshold
	case ">":
		return v > threshold
	case ">=":
		return v >= threshold
	case "=":
		return v == threshold
	case "!=":
		return v != threshold
	}
	return false
}
