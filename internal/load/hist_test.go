package load

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// oracleQuantile is the exact quantile from a sorted slice, using the same
// ceil-rank convention the histogram implements.
func oracleQuantile(sorted []time.Duration, q float64) time.Duration {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestHistQuantileAccuracy checks the documented error bound against a
// sorted-slice oracle: the reported quantile is never below the true one and
// at most one bucket width (×histGrowth) above it, across several latency
// distributions.
func TestHistQuantileAccuracy(t *testing.T) {
	distributions := map[string]func(r *rand.Rand) time.Duration{
		// Warm cache hits: tight sub-millisecond band.
		"warm": func(r *rand.Rand) time.Duration {
			return 200*time.Microsecond + time.Duration(r.Int63n(int64(800*time.Microsecond)))
		},
		// Log-uniform from 10µs to 10s: spans many buckets.
		"loguniform": func(r *rand.Rand) time.Duration {
			lo, hi := 4.0, 10.0 // log10(ns)
			return time.Duration(math.Pow(10, lo+(hi-lo)*r.Float64()))
		},
		// Bimodal hit/miss: the shape a plan cache actually produces.
		"bimodal": func(r *rand.Rand) time.Duration {
			if r.Intn(10) < 9 {
				return time.Duration(r.Int63n(int64(2 * time.Millisecond)))
			}
			return time.Second + time.Duration(r.Int63n(int64(4*time.Second)))
		},
	}
	quantiles := []float64{0.5, 0.9, 0.99, 0.999}
	for name, draw := range distributions {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(7))
			var h Hist
			samples := make([]time.Duration, 0, 20000)
			for i := 0; i < 20000; i++ {
				d := draw(r)
				h.Observe(d)
				samples = append(samples, d)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			for _, q := range quantiles {
				got := h.Quantile(q)
				want := oracleQuantile(samples, q)
				if got < want {
					t.Errorf("q%.3f = %v below the true quantile %v", q, got, want)
				}
				// One bucket of slack plus a little float headroom.
				if limit := time.Duration(float64(want) * histGrowth * 1.001); got > limit {
					t.Errorf("q%.3f = %v exceeds %v (true %v × bucket width)", q, got, limit, want)
				}
			}
			if h.Max() != samples[len(samples)-1] {
				t.Errorf("Max = %v, want exact %v", h.Max(), samples[len(samples)-1])
			}
		})
	}
}

// TestHistEdgeCases: empty, single-sample, and merge behavior.
func TestHistEdgeCases(t *testing.T) {
	var h Hist
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Observe(5 * time.Millisecond)
	for _, q := range []float64{0.001, 0.5, 1} {
		if got := h.Quantile(q); got != 5*time.Millisecond {
			t.Errorf("single-sample q%g = %v, want the sample (clamped to min/max)", q, got)
		}
	}
	var a, b Hist
	a.Observe(time.Millisecond)
	b.Observe(time.Second)
	a.Merge(&b)
	if a.Count() != 2 || a.Max() != time.Second {
		t.Errorf("merge: count %d max %v", a.Count(), a.Max())
	}
	ms := float64(time.Millisecond)
	medianCap := time.Duration(ms * histGrowth * 1.001)
	if got := a.Quantile(0.5); got < time.Millisecond || got > medianCap {
		t.Errorf("merged median %v, want ~1ms", got)
	}
}

// TestHistBucketMonotonic: bucket indexing is monotone and bounds are
// consistent (a value's bucket upper bound is never below the value).
func TestHistBucketMonotonic(t *testing.T) {
	prev := -1
	for ns := int64(1); ns < int64(20*time.Minute); ns = ns*3/2 + 1 {
		i := bucketIndex(ns)
		if i < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", ns, i, prev)
		}
		prev = i
		if i < histBuckets-1 && bucketBound(i) < ns {
			t.Fatalf("bucketBound(%d) = %d below member value %d", i, bucketBound(i), ns)
		}
	}
}
