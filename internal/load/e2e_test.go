package load_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hap"
	"hap/internal/cluster"
	"hap/internal/fleet"
	"hap/internal/graph"
	"hap/internal/load"
	"hap/internal/serve"
)

// TestE2ESingleDaemon drives the full loop against a real daemon: warm the
// corpus, run a closed-loop mix, and gate the report with an SLO string —
// the same path the CI load job exercises via cmd/hap-loadgen.
func TestE2ESingleDaemon(t *testing.T) {
	s := serve.New(serve.Config{})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	corpus, err := load.NewCorpus(3, 2, 17)
	if err != nil {
		t.Fatal(err)
	}
	warmed, err := load.Warmup(context.Background(), srv.URL, nil, corpus)
	if err != nil {
		t.Fatalf("warmup: %v", err)
	}
	if warmed != corpus.Items() {
		t.Fatalf("warmed %d of %d items", warmed, corpus.Items())
	}

	rep, err := load.Run(context.Background(), load.Options{
		Target: srv.URL, Corpus: corpus, Seed: 7,
		Concurrency: 4, Requests: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 80 {
		t.Errorf("requests = %d, want 80", rep.Requests)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d (%v), want 0", rep.Errors, rep.ErrorsByCode)
	}
	// Everything was warmed, so nothing should miss.
	if rep.PlanMiss != 0 || rep.HitRatio != 1 {
		t.Errorf("miss = %d hit_ratio = %g after full warmup", rep.PlanMiss, rep.HitRatio)
	}
	// The in-process threshold is deliberately loose — race-mode CI shares
	// cores with the daemon; the tight gates live in BENCH_serve.json.
	slo, err := load.ParseSLO("errors=0, hit_ratio>=0.99, warm.p99<2s")
	if err != nil {
		t.Fatal(err)
	}
	results, ok := slo.Check(rep)
	if !ok {
		for _, r := range results {
			t.Error(r.Detail)
		}
	}
	if !strings.Contains(rep.Text(), "hit ratio") {
		t.Error("text report lacks hit ratio line")
	}
}

// switchHandler mirrors the serve-internal fleet test helper: the listener
// must bind (to learn its URL) before the serve.Server that answers on it
// can be configured with that URL.
type switchHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (sw *switchHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sw.mu.Lock()
	h := sw.h
	sw.mu.Unlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// newTrio boots a 3-node in-process fleet and returns the node URLs.
func newTrio(t *testing.T, mutate func(cfg *serve.Config)) []string {
	t.Helper()
	switches := make([]*switchHandler, 3)
	urls := make([]string, 3)
	for i := range switches {
		switches[i] = &switchHandler{}
		srv := httptest.NewServer(switches[i])
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	for i := range switches {
		fl, err := fleet.New(fleet.Config{Self: urls[i], Peers: urls, Replicas: 2})
		if err != nil {
			t.Fatal(err)
		}
		cfg := serve.Config{Fleet: fl}
		if mutate != nil {
			mutate(&cfg)
		}
		s := serve.New(cfg)
		t.Cleanup(s.Close)
		switches[i].mu.Lock()
		switches[i].h = s.Handler()
		switches[i].mu.Unlock()
	}
	return urls
}

// TestE2EFleetTrio points the load generator at one node of a 3-node fleet:
// non-owned keys must be answered by proxy (and marked as such in the
// report) with no errors and a fully warm cache.
func TestE2EFleetTrio(t *testing.T) {
	urls := newTrio(t, nil)

	corpus, err := load.NewCorpus(4, 2, 23)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := load.Warmup(context.Background(), urls[0], nil, corpus); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	rep, err := load.Run(context.Background(), load.Options{
		Target: urls[0], Corpus: corpus, Mix: load.Mix{Single: 3, Conditional: 1},
		Seed: 9, ZipfS: 1.05, Concurrency: 4, Requests: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d (%v)", rep.Errors, rep.ErrorsByCode)
	}
	if rep.PlanMiss != 0 {
		t.Errorf("miss = %d after fleet-wide warmup", rep.PlanMiss)
	}
	// With 8 items on a 3-node ring, node 0 cannot own them all: some
	// requests must have been proxied, and the report must say so.
	if rep.Proxied == 0 {
		t.Error("no proxied requests recorded against a 3-node fleet")
	}
	if rep.Classes["proxied"].Count != rep.Proxied {
		t.Errorf("proxied class count %d != proxied total %d", rep.Classes["proxied"].Count, rep.Proxied)
	}
}

// TestE2EOverload pins the admission-control contract end to end: a daemon
// with one synthesis slot and a slow planner sheds concurrent cold misses as
// 429s, which the report books as shed — never as errors — while the server
// counts them in /stats and /metrics.
func TestE2EOverload(t *testing.T) {
	var s *serve.Server
	s = serve.New(serve.Config{
		MaxInflightSynth: 1,
		ShedRetryAfter:   time.Second,
		Synthesize: func(ctx context.Context, g *graph.Graph, c *cluster.Cluster, opt hap.Options) (*hap.Plan, error) {
			time.Sleep(60 * time.Millisecond)
			return hap.Parallelize(g, c, opt)
		},
	})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	corpus, err := load.NewCorpus(8, 1, 31)
	if err != nil {
		t.Fatal(err)
	}
	// No warmup: everything is cold, workers race distinct keys into the
	// single slot. Near-uniform popularity keeps keys distinct so sheds come
	// from admission, not single-flight joins.
	rep, err := load.Run(context.Background(), load.Options{
		Target: srv.URL, Corpus: corpus, Mix: load.Mix{Single: 1},
		Seed: 5, ZipfS: 1.01, Concurrency: 6, Requests: 48,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 {
		t.Fatal("no requests shed under a 1-slot overload")
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d (%v); sheds must not be booked as errors", rep.Errors, rep.ErrorsByCode)
	}
	// Joined single-flight waiters share a shed verdict, so the report may
	// book more sheds than the server's one-per-flight counter.
	st := s.Stats()
	if st.AdmissionShed == 0 || st.AdmissionShed > rep.Shed {
		t.Errorf("server counted %d sheds, report %d", st.AdmissionShed, rep.Shed)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "hap_serve_admission_shed_total") {
		t.Error("/metrics lacks hap_serve_admission_shed_total")
	}
	// The SLO language expresses exactly this gate.
	slo, err := load.ParseSLO("errors=0, shed>0")
	if err != nil {
		t.Fatal(err)
	}
	if results, ok := slo.Check(rep); !ok {
		for _, r := range results {
			t.Error(r.Detail)
		}
	}
}
