// The loadgen report: per-class latency stats, cache-hit ratio, and the
// error taxonomy, rendered as text for humans and JSON for the SLO gates
// (benchcheck re-evaluates committed gates against the JSON artifact).

package load

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Result classification outcomes. "warm" and "miss" come from the daemon's
// X-HAP-Cache header (so proxied fleet answers report the owning node's
// verdict); "proxied" additionally marks answers relayed by another fleet
// node (X-HAP-Fleet-Node present); "shed" is a 429 from admission control.
const (
	OutcomeWarm     = "warm"
	OutcomeMiss     = "miss"
	OutcomeShed     = "shed"
	OutcomeCanceled = "canceled"
	OutcomeError    = "error"
)

// Result is one executed request, as recorded into the report.
type Result struct {
	Class   Class
	Outcome string // OutcomeWarm, OutcomeMiss, OutcomeShed, OutcomeCanceled, OutcomeError
	Proxied bool   // answered by a fleet peer on the client's behalf
	Code    string // error taxonomy key when Outcome == OutcomeError
	Latency time.Duration
	// PlanHits/PlanMisses count per-plan cache outcomes (batch responses
	// carry one per cluster; single responses exactly one).
	PlanHits   int
	PlanMisses int
}

// ClassStats is one report class's latency summary, in milliseconds.
type ClassStats struct {
	Count  uint64  `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Report is a completed run's summary. The JSON form is the machine
// artifact CI archives and gates on.
type Report struct {
	Mode        string  `json:"mode"`   // "closed" or "open"
	Target      string  `json:"target"` // daemon base URL
	Seed        int64   `json:"seed"`
	Rate        float64 `json:"rate_rps,omitempty"`    // open loop target rate
	Concurrency int     `json:"concurrency,omitempty"` // closed loop workers
	DurationSec float64 `json:"duration_sec"`

	Requests   uint64  `json:"requests"`       // requests issued, all classes
	Throughput float64 `json:"throughput_rps"` // Requests / DurationSec

	// PlanWarm/PlanMiss count per-plan cache outcomes across single and
	// batch responses; HitRatio = PlanWarm / (PlanWarm + PlanMiss).
	PlanWarm uint64  `json:"plan_warm"`
	PlanMiss uint64  `json:"plan_miss"`
	HitRatio float64 `json:"hit_ratio"`

	// Proxied counts requests answered by a fleet peer; Shed requests shed
	// with 429 by admission control; Canceled client-abandoned requests
	// (the Cancel class doing its job); Errors everything unexpected.
	Proxied  uint64 `json:"proxied"`
	Shed     uint64 `json:"shed"`
	Canceled uint64 `json:"canceled"`
	Errors   uint64 `json:"errors"`

	// ErrorsByCode breaks Errors down: envelope codes (bad_request,
	// synthesis_failed, ...), "http_<status>" for unenveloped statuses, and
	// "transport" for connection-level failures.
	ErrorsByCode map[string]uint64 `json:"errors_by_code,omitempty"`

	// Classes holds latency summaries keyed by class: "all" (every
	// successfully answered plan request), the request classes ("single",
	// "single_bin", "batch", "batch_bin", "cond", "cancel"), and the
	// outcome classes ("warm", "miss", "proxied", "shed").
	Classes map[string]ClassStats `json:"classes"`
}

// recorder accumulates Results during a run. Safe for concurrent use.
type recorder struct {
	mu           sync.Mutex
	hists        map[string]*Hist
	requests     uint64
	planWarm     uint64
	planMiss     uint64
	proxied      uint64
	shed         uint64
	canceled     uint64
	errors       uint64
	errorsByCode map[string]uint64
}

func newRecorder() *recorder {
	return &recorder{hists: map[string]*Hist{}, errorsByCode: map[string]uint64{}}
}

func (r *recorder) observe(class string, d time.Duration) {
	h := r.hists[class]
	if h == nil {
		h = &Hist{}
		r.hists[class] = h
	}
	h.Observe(d)
}

func (r *recorder) record(res Result) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.requests++
	switch res.Outcome {
	case OutcomeWarm, OutcomeMiss:
		r.planWarm += uint64(res.PlanHits)
		r.planMiss += uint64(res.PlanMisses)
		r.observe("all", res.Latency)
		r.observe(res.Class.String(), res.Latency)
		r.observe(res.Outcome, res.Latency)
		if res.Proxied {
			r.proxied++
			r.observe("proxied", res.Latency)
		}
	case OutcomeShed:
		r.shed++
		r.observe(OutcomeShed, res.Latency)
	case OutcomeCanceled:
		r.canceled++
		r.observe(res.Class.String(), res.Latency)
	default:
		r.errors++
		code := res.Code
		if code == "" {
			code = "unknown"
		}
		r.errorsByCode[code]++
	}
}

// report snapshots the recorder into a Report.
func (r *recorder) report(mode, target string, seed int64, rate float64, concurrency int, elapsed time.Duration) *Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &Report{
		Mode:        mode,
		Target:      target,
		Seed:        seed,
		Rate:        rate,
		Concurrency: concurrency,
		DurationSec: elapsed.Seconds(),
		Requests:    r.requests,
		PlanWarm:    r.planWarm,
		PlanMiss:    r.planMiss,
		Proxied:     r.proxied,
		Shed:        r.shed,
		Canceled:    r.canceled,
		Errors:      r.errors,
		Classes:     map[string]ClassStats{},
	}
	if elapsed > 0 {
		rep.Throughput = float64(r.requests) / elapsed.Seconds()
	}
	if total := r.planWarm + r.planMiss; total > 0 {
		rep.HitRatio = float64(r.planWarm) / float64(total)
	}
	if len(r.errorsByCode) > 0 {
		rep.ErrorsByCode = make(map[string]uint64, len(r.errorsByCode))
		for k, v := range r.errorsByCode {
			rep.ErrorsByCode[k] = v
		}
	}
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	for name, h := range r.hists {
		rep.Classes[name] = ClassStats{
			Count:  h.Count(),
			P50Ms:  ms(h.Quantile(0.50)),
			P90Ms:  ms(h.Quantile(0.90)),
			P99Ms:  ms(h.Quantile(0.99)),
			P999Ms: ms(h.Quantile(0.999)),
			MeanMs: ms(h.Mean()),
			MaxMs:  ms(h.Max()),
		}
	}
	return rep
}

// scalar resolves a report-level SLO scalar by name.
func (r *Report) scalar(name string) (float64, bool) {
	switch name {
	case "errors":
		return float64(r.Errors), true
	case "shed":
		return float64(r.Shed), true
	case "canceled":
		return float64(r.Canceled), true
	case "requests":
		return float64(r.Requests), true
	case "proxied":
		return float64(r.Proxied), true
	case "hit_ratio":
		return r.HitRatio, true
	case "throughput":
		return r.Throughput, true
	}
	return 0, false
}

// classMetric resolves class.metric (milliseconds for the latency metrics).
func (r *Report) classMetric(class, metric string) (float64, bool) {
	cs, ok := r.Classes[class]
	if !ok {
		// A class with no samples has no entry; its count is zero and its
		// latencies undefined. count=0 must be assertable ("shed absent"),
		// latency quantiles must not silently pass.
		if metric == "count" {
			return 0, true
		}
		return 0, false
	}
	switch metric {
	case "count":
		return float64(cs.Count), true
	case "p50":
		return cs.P50Ms, true
	case "p90":
		return cs.P90Ms, true
	case "p99":
		return cs.P99Ms, true
	case "p999":
		return cs.P999Ms, true
	case "mean":
		return cs.MeanMs, true
	case "max":
		return cs.MaxMs, true
	}
	return 0, false
}

// Text renders the human-readable report.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hap-loadgen: mode=%s target=%s seed=%d", r.Mode, r.Target, r.Seed)
	if r.Mode == "open" {
		fmt.Fprintf(&b, " rate=%.0f/s", r.Rate)
	} else {
		fmt.Fprintf(&b, " concurrency=%d", r.Concurrency)
	}
	fmt.Fprintf(&b, "\n%d requests in %.2fs (%.1f req/s)\n", r.Requests, r.DurationSec, r.Throughput)
	fmt.Fprintf(&b, "plans: warm %d, miss %d (hit ratio %.3f)\n", r.PlanWarm, r.PlanMiss, r.HitRatio)
	fmt.Fprintf(&b, "proxied %d, shed %d, canceled %d, errors %d\n", r.Proxied, r.Shed, r.Canceled, r.Errors)
	if len(r.ErrorsByCode) > 0 {
		codes := make([]string, 0, len(r.ErrorsByCode))
		for c := range r.ErrorsByCode {
			codes = append(codes, c)
		}
		sort.Strings(codes)
		for _, c := range codes {
			fmt.Fprintf(&b, "  error %s: %d\n", c, r.ErrorsByCode[c])
		}
	}
	fmt.Fprintf(&b, "%-12s %8s %9s %9s %9s %9s %9s\n", "class", "count", "p50", "p90", "p99", "p999", "max")
	names := make([]string, 0, len(r.Classes))
	for name := range r.Classes {
		names = append(names, name)
	}
	sort.Strings(names)
	// "all" leads; the rest alphabetical.
	for i, name := range names {
		if name == "all" && i != 0 {
			names[0], names[i] = names[i], names[0]
			sort.Strings(names[1:])
			break
		}
	}
	for _, name := range names {
		cs := r.Classes[name]
		fmt.Fprintf(&b, "%-12s %8d %8.2fms %8.2fms %8.2fms %8.2fms %8.2fms\n",
			name, cs.Count, cs.P50Ms, cs.P90Ms, cs.P99Ms, cs.P999Ms, cs.MaxMs)
	}
	return b.String()
}
