package balance

import (
	"context"
	"math"
	"testing"

	"hap/internal/autodiff"
	"hap/internal/cluster"
	"hap/internal/cost"
	"hap/internal/dist"
	"hap/internal/graph"
	"hap/internal/synth"
	"hap/internal/theory"
)

func mixedCluster() *cluster.Cluster {
	return cluster.FromGPUs(cluster.DefaultNetwork(),
		cluster.MachineSpec{Type: cluster.A100, GPUs: 1},
		cluster.MachineSpec{Type: cluster.P100, GPUs: 1})
}

func trainingProgram(t *testing.T, c *cluster.Cluster) *dist.Program {
	t.Helper()
	g := graph.New()
	x := g.AddPlaceholder("x", 0, 128, 64)
	w := g.AddParameter("w", 64, 64)
	y := g.AddOp(graph.MatMul, x, w)
	g.SetLoss(g.AddOp(graph.Sum, y))
	if err := autodiff.Backward(g); err != nil {
		t.Fatal(err)
	}
	b := cost.UniformRatios(1, c.ProportionalRatios())
	p, _, err := synth.Synthesize(context.Background(), g, theory.New(g), c, b, synth.Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	return p
}

func TestRatiosValid(t *testing.T) {
	c := mixedCluster()
	p := trainingProgram(t, c)
	b, err := Ratios(c, p)
	if err != nil {
		t.Fatalf("Ratios: %v", err)
	}
	for k := range b {
		sum := 0.0
		for _, v := range b[k] {
			if v < -1e-9 {
				t.Errorf("negative ratio %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("segment %d ratios sum to %v", k, sum)
		}
	}
}

func TestBalancerNeverWorseThanProportional(t *testing.T) {
	c := mixedCluster()
	p := trainingProgram(t, c)
	model := cost.Extract(c, p)
	b, err := RatiosFromModel(model)
	if err != nil {
		t.Fatalf("Ratios: %v", err)
	}
	opt := model.Eval(b)
	cp := model.Eval(cost.UniformRatios(model.Segments, c.ProportionalRatios()))
	ev := model.Eval(cost.UniformRatios(model.Segments, c.EvenRatios()))
	if opt > cp+1e-9 {
		t.Errorf("LP ratios (%v) worse than proportional (%v)", opt, cp)
	}
	if opt > ev+1e-9 {
		t.Errorf("LP ratios (%v) worse than even (%v)", opt, ev)
	}
}

func TestFasterDeviceGetsLargerShare(t *testing.T) {
	c := mixedCluster() // device 0 = A100, device 1 = P100
	p := trainingProgram(t, c)
	b, err := Ratios(c, p)
	if err != nil {
		t.Fatalf("Ratios: %v", err)
	}
	if b[0][0] <= b[0][1] {
		t.Errorf("A100 share %v should exceed P100 share %v", b[0][0], b[0][1])
	}
}

func TestSingleDeviceTrivial(t *testing.T) {
	c := cluster.FromGPUs(cluster.DefaultNetwork(), cluster.MachineSpec{Type: cluster.A100, GPUs: 1})
	p := trainingProgram(t, c)
	b, err := Ratios(c, p)
	if err != nil {
		t.Fatalf("Ratios: %v", err)
	}
	if len(b[0]) != 1 || b[0][0] != 1 {
		t.Errorf("single-device ratios = %v", b)
	}
}

// Sec. 2.4's observation: when communication dominates, the optimum shifts
// toward even sharding; when computation dominates, toward proportional.
func TestOptimumBetweenEvenAndProportional(t *testing.T) {
	c := mixedCluster()
	p := trainingProgram(t, c)
	model := cost.Extract(c, p)
	b, err := RatiosFromModel(model)
	if err != nil {
		t.Fatalf("Ratios: %v", err)
	}
	cp := c.ProportionalRatios()
	lo := 1.0 / float64(c.M())
	for j := range b[0] {
		hi := math.Max(cp[j], lo)
		low := math.Min(cp[j], lo)
		if b[0][j] < low-0.05 || b[0][j] > hi+0.05 {
			t.Errorf("ratio %d = %v outside [even=%v, proportional=%v] band", j, b[0][j], lo, cp[j])
		}
	}
}
