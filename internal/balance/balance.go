// Package balance implements HAP's load balancer (Sec. 5): given a fixed
// distributed program Q, it finds the sharding ratios B minimizing the
// stage-based cost model by solving a linear program,
//
//	min  Σᵢ ( commᵢ(B) + tᵢ )
//	s.t. tᵢ ≥ comp_{i,j}(B),   ∀ stages i, devices j
//	     M_k ≥ B_{k,j},        ∀ segments k, devices j
//	     Σⱼ B_{k,j} = 1,       ∀ segments k
//	     B ≥ 0,
//
// where commᵢ is linear in M_{seg(i)} (padded collectives bottleneck on the
// largest shard) and comp is linear in B. Fractional ratios are converted to
// integer shard sizes with the paper's rounding scheme (implemented in
// collective.ShardSizes).
package balance

import (
	"fmt"

	"hap/internal/cluster"
	"hap/internal/cost"
	"hap/internal/dist"
	"hap/internal/lp"
)

// Ratios solves for the optimal sharding-ratio matrix B[segment][device]
// of program p on cluster c.
func Ratios(c *cluster.Cluster, p *dist.Program) ([][]float64, error) {
	model := cost.Extract(c, p)
	return RatiosFromModel(model)
}

// RatiosFromModel solves the LP over an already-extracted cost model.
func RatiosFromModel(model *cost.Model) ([][]float64, error) {
	m := model.Cluster.M()
	g := model.Segments
	if m == 1 {
		return cost.UniformRatios(g, []float64{1}), nil
	}

	prob := lp.NewProblem()
	// Variables: B[k][j], M[k], t[i].
	bVar := make([][]int, g)
	for k := 0; k < g; k++ {
		bVar[k] = make([]int, m)
		for j := 0; j < m; j++ {
			bVar[k][j] = prob.AddVar(0)
		}
	}
	mVar := make([]int, g)
	for k := 0; k < g; k++ {
		mVar[k] = prob.AddVar(0)
	}

	// Objective: Σ stages (CommMaxCoef·M_seg + t_i) + boundary charges.
	objM := make([]float64, g)
	for i := range model.Stages {
		sm := &model.Stages[i]
		objM[sm.CommSeg] += sm.CommMaxCoef
		tv := prob.AddVar(1)
		for j := 0; j < m; j++ {
			coefs := map[int]float64{tv: 1}
			for k := 0; k < g; k++ {
				if sm.CompCoef[k][j] != 0 {
					coefs[bVar[k][j]] = -sm.CompCoef[k][j]
				}
			}
			prob.AddConstraint(coefs, lp.GE, sm.CompConst[j])
		}
	}
	for i := range model.Charges {
		ch := &model.Charges[i]
		objM[ch.SegA] += ch.Coef / 2
		objM[ch.SegB] += ch.Coef / 2
	}
	// M objective coefficients were accumulated; re-register by adding a
	// proxy variable is unnecessary: encode via constraint M_k ≥ B and give
	// M its accumulated coefficient using an equality trick — the LP API
	// fixes objective coefficients at AddVar time, so add a zero-cost helper
	// t_M per segment: t_M = M_k with objective objM[k].
	for k := 0; k < g; k++ {
		if objM[k] == 0 {
			continue
		}
		proxy := prob.AddVar(objM[k])
		prob.AddConstraint(map[int]float64{proxy: 1, mVar[k]: -1}, lp.EQ, 0)
	}

	// M_k ≥ B_{k,j}; Σ_j B_{k,j} = 1.
	for k := 0; k < g; k++ {
		for j := 0; j < m; j++ {
			prob.AddConstraint(map[int]float64{mVar[k]: 1, bVar[k][j]: -1}, lp.GE, 0)
		}
		sum := map[int]float64{}
		for j := 0; j < m; j++ {
			sum[bVar[k][j]] = 1
		}
		prob.AddConstraint(sum, lp.EQ, 1)
	}

	res, err := prob.Solve()
	if err != nil {
		return nil, fmt.Errorf("balance: %w", err)
	}
	out := make([][]float64, g)
	for k := 0; k < g; k++ {
		out[k] = make([]float64, m)
		total := 0.0
		for j := 0; j < m; j++ {
			v := res.X[bVar[k][j]]
			if v < 0 {
				v = 0
			}
			out[k][j] = v
			total += v
		}
		// Numerical cleanup: renormalize to exactly 1.
		if total > 0 {
			for j := 0; j < m; j++ {
				out[k][j] /= total
			}
		} else {
			for j := 0; j < m; j++ {
				out[k][j] = 1 / float64(m)
			}
		}
	}
	return out, nil
}
