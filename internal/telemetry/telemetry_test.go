package telemetry

import (
	"math"
	"testing"
	"time"

	"hap/internal/cluster"
)

// testSpec is a 2-machine, 2-device cluster with distinct device types.
func testSpec() *cluster.Cluster {
	return cluster.FromGPUs(cluster.DefaultNetwork(),
		cluster.MachineSpec{Type: cluster.V100, GPUs: 1},
		cluster.MachineSpec{Type: cluster.P100, GPUs: 1})
}

// fakeClock is an adjustable Now for window tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClock() *fakeClock                   { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func monitorAt(t *testing.T, clk *fakeClock) *Monitor {
	t.Helper()
	m, err := New(testSpec(), Config{Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMonitorNoTelemetryIsSpec(t *testing.T) {
	m := monitorAt(t, newClock())
	if d := m.Distance(); d != 0 {
		t.Errorf("Distance with no samples = %v, want 0", d)
	}
	if fp, sfp := m.Cluster().Fingerprint(), m.Spec().Fingerprint(); fp != sfp {
		t.Errorf("materialized fingerprint %s != spec %s with no samples", fp, sfp)
	}
}

// TestMonitorLinkDriftEWMA: repeated congestion samples converge the inter
// bandwidth estimate; one sample moves it only partway (smoothing).
func TestMonitorLinkDriftEWMA(t *testing.T) {
	clk := newClock()
	m := monitorAt(t, clk)
	spec := m.Spec().Net.InterBW
	measured := spec / 2

	if err := m.Ingest(Report{Links: []LinkSample{{FromMachine: 0, ToMachine: 1, Bandwidth: measured}}}); err != nil {
		t.Fatal(err)
	}
	// First sample seeds the estimate outright.
	if got := m.Cluster().Net.InterBW; got != measured {
		t.Errorf("after first sample InterBW = %g, want the sample %g", got, measured)
	}
	if d := m.Distance(); math.Abs(d-0.5) > 1e-9 {
		t.Errorf("Distance = %v, want 0.5 (link at half bandwidth)", d)
	}

	// A single recovery sample must NOT snap back to spec: EWMA smooths.
	clk.advance(time.Second)
	if err := m.Ingest(Report{Links: []LinkSample{{FromMachine: 0, ToMachine: 1, Bandwidth: spec}}}); err != nil {
		t.Fatal(err)
	}
	got := m.Cluster().Net.InterBW
	want := DefaultAlpha*spec + (1-DefaultAlpha)*measured
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("after recovery sample InterBW = %g, want EWMA blend %g", got, want)
	}

	// Intra-machine samples must not touch the inter estimate.
	clk.advance(time.Second)
	if err := m.Ingest(Report{Links: []LinkSample{{FromMachine: 1, ToMachine: 1, Bandwidth: 1e9}}}); err != nil {
		t.Fatal(err)
	}
	if m.Cluster().Net.InterBW != got {
		t.Error("intra-machine sample moved the inter-machine estimate")
	}
	if m.Cluster().Net.IntraBW != 1e9 {
		t.Errorf("IntraBW = %g, want the intra sample 1e9", m.Cluster().Net.IntraBW)
	}
}

// TestMonitorWindowExpiry: estimates with no fresh samples revert to spec.
func TestMonitorWindowExpiry(t *testing.T) {
	clk := newClock()
	m := monitorAt(t, clk)
	if err := m.Ingest(Report{Links: []LinkSample{{FromMachine: 0, ToMachine: 1, Bandwidth: 1e6, Latency: 1e-3}}}); err != nil {
		t.Fatal(err)
	}
	if m.Distance() == 0 {
		t.Fatal("congestion sample did not register")
	}
	clk.advance(DefaultWindow + time.Second)
	if d := m.Distance(); d != 0 {
		t.Errorf("Distance after window expiry = %v, want 0 (reverted to spec)", d)
	}
	if got, want := m.Cluster().Net.InterBW, m.Spec().Net.InterBW; got != want {
		t.Errorf("InterBW after expiry = %g, want spec %g", got, want)
	}
}

// TestMonitorDeviceThrottle: an achieved-throughput sample rescales the
// device so the materialized Flops() matches the measurement.
func TestMonitorDeviceThrottle(t *testing.T) {
	m := monitorAt(t, newClock())
	specFlops := m.Spec().Devices[0].Flops()
	measuredTFLOPS := specFlops / 1e12 * 0.6 // throttled to 60%

	if err := m.Ingest(Report{Devices: []DeviceSample{{Device: 0, TFLOPS: measuredTFLOPS}}}); err != nil {
		t.Fatal(err)
	}
	c := m.Cluster()
	if got := c.Devices[0].Flops(); math.Abs(got-measuredTFLOPS*1e12) > 1 {
		t.Errorf("materialized Flops = %g, want measured %g", got, measuredTFLOPS*1e12)
	}
	if got := c.Devices[1].Flops(); got != m.Spec().Devices[1].Flops() {
		t.Error("unsampled device's flops moved")
	}
	if d := m.Distance(); math.Abs(d-0.4) > 1e-9 {
		t.Errorf("Distance = %v, want 0.4", d)
	}
	if c.Fingerprint() == m.Spec().Fingerprint() {
		t.Error("drifted cluster fingerprints identical to spec")
	}
}

// TestMonitorDeviceLossAndRecovery: a non-positive sample drops the device
// from the materialized cluster (structural drift, +Inf distance); a
// positive sample brings it back; every device down yields an empty —
// unplannable but guard-safe — cluster.
func TestMonitorDeviceLossAndRecovery(t *testing.T) {
	m := monitorAt(t, newClock())
	if err := m.Ingest(Report{Devices: []DeviceSample{{Device: 1, TFLOPS: 0}}}); err != nil {
		t.Fatal(err)
	}
	c := m.Cluster()
	if len(c.Devices) != 1 {
		t.Fatalf("materialized %d devices after a loss, want 1", len(c.Devices))
	}
	if !math.IsInf(m.Distance(), 1) {
		t.Errorf("Distance after device loss = %v, want +Inf", m.Distance())
	}

	// Recovery restarts the estimate from the fresh sample.
	back := m.Spec().Devices[1].Flops() / 1e12
	if err := m.Ingest(Report{Devices: []DeviceSample{{Device: 1, TFLOPS: back}}}); err != nil {
		t.Fatal(err)
	}
	c = m.Cluster()
	if len(c.Devices) != 2 {
		t.Fatalf("device did not come back: %d devices", len(c.Devices))
	}
	if got := c.Devices[1].Flops(); math.Abs(got-back*1e12) > 1 {
		t.Errorf("recovered device Flops = %g, want %g (restart, not blend with down state)", got, back*1e12)
	}

	// All devices down: empty cluster, and the cluster guards must hold.
	if err := m.Ingest(Report{Devices: []DeviceSample{{Device: 0, TFLOPS: -1}, {Device: 1, TFLOPS: 0}}}); err != nil {
		t.Fatal(err)
	}
	c = m.Cluster()
	if len(c.Devices) != 0 {
		t.Fatalf("want empty cluster with every device down, got %d devices", len(c.Devices))
	}
	if c.Homogeneous() != true || c.SpansMachines() != false || len(c.ProportionalRatios()) != 0 {
		t.Error("empty materialized cluster tripped the accessor guards")
	}
}

// TestMonitorDownMarkExpires: a down mark is telemetry like any other — when
// it goes stale past the window, the device reverts to its spec self.
func TestMonitorDownMarkExpires(t *testing.T) {
	clk := newClock()
	m := monitorAt(t, clk)
	if err := m.Ingest(Report{Devices: []DeviceSample{{Device: 0, TFLOPS: 0}}}); err != nil {
		t.Fatal(err)
	}
	if len(m.Cluster().Devices) != 1 {
		t.Fatal("down mark did not drop the device")
	}
	clk.advance(DefaultWindow + time.Second)
	if len(m.Cluster().Devices) != 2 {
		t.Error("expired down mark still drops the device")
	}
}

func TestMonitorRejectsUnknownTargets(t *testing.T) {
	m := monitorAt(t, newClock())
	if err := m.Ingest(Report{Links: []LinkSample{{FromMachine: 0, ToMachine: 9, Bandwidth: 1}}}); err == nil {
		t.Error("link sample to unknown machine accepted")
	}
	if err := m.Ingest(Report{Devices: []DeviceSample{{Device: 7, TFLOPS: 1}}}); err == nil {
		t.Error("sample for unknown device accepted")
	}
	if m.Samples() != 0 {
		t.Errorf("rejected batches still counted %d samples", m.Samples())
	}
}

func TestMonitorRejectsBadConfig(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil spec accepted")
	}
	if _, err := New(&cluster.Cluster{}, Config{}); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := New(testSpec(), Config{Alpha: 1.5}); err == nil {
		t.Error("alpha > 1 accepted")
	}
}
