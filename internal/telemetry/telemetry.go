// Package telemetry turns live probe measurements into an updated cluster
// specification. A Cluster (internal/cluster) is a static spec: published
// peak throughputs and a fitted network model. The heterogeneous fleets the
// paper targets drift in production — links congest, GPUs throttle or die,
// stragglers appear — and a plan synthesized against the spec silently
// degrades with them.
//
// A Monitor ingests two kinds of samples:
//
//   - LinkSample: a measured bandwidth/latency between two machines (a
//     TWAMP-style probe or an NCCL bandwidth test). Same-machine pairs feed
//     the intra-machine (NVLink/PCIe) estimate, cross-machine pairs the
//     inter-machine fabric estimate — matching the two-level network model
//     plan costs are derived from.
//   - DeviceSample: a virtual device's measured achieved throughput in
//     TFLOPS. A non-positive value marks the device down (dead GPU, evicted
//     node).
//
// Estimates are EWMA-smoothed so one noisy probe cannot trigger a replan
// storm, and windowed so telemetry that stops flowing decays back to the
// spec instead of pinning the cluster to a stale measurement forever.
// Cluster() materializes the current view as a *cluster.Cluster whose
// Fingerprint differs from the spec's exactly when the measurements moved,
// and Distance() quantifies the drift with cluster.Distance — the number the
// serve tier thresholds background replanning on.
package telemetry

import (
	"fmt"
	"sync"
	"time"

	"hap/internal/cluster"
)

// Defaults for Config zero values.
const (
	// DefaultAlpha is the EWMA smoothing factor: each sample contributes
	// 30%, so three to four consistent samples move the estimate most of the
	// way while a single outlier moves it less than halfway.
	DefaultAlpha = 0.3
	// DefaultWindow is the staleness horizon: an estimate with no sample
	// newer than this reverts to the spec value.
	DefaultWindow = 5 * time.Minute
)

// LinkSample is one measured link: bandwidth and/or latency between two
// machines. From == To measures the intra-machine interconnect; otherwise
// the inter-machine fabric. Zero-valued fields mean "not measured" and are
// skipped, so bandwidth-only and latency-only probes compose.
type LinkSample struct {
	FromMachine int     `json:"from_machine"`
	ToMachine   int     `json:"to_machine"`
	Bandwidth   float64 `json:"bandwidth,omitempty"` // bytes/s per direction
	Latency     float64 `json:"latency,omitempty"`   // seconds per hop
}

// DeviceSample is one virtual device's measured achieved throughput.
// TFLOPS <= 0 marks the device down; a later positive sample brings it back.
type DeviceSample struct {
	Device int     `json:"device"` // index into the spec cluster's Devices
	TFLOPS float64 `json:"tflops"` // achieved dense TFLOPS of the whole virtual device
}

// Report is one probe batch — the body of POST /v1/telemetry and the
// -telemetry-file format (wrapped with the cluster spec, see serve).
type Report struct {
	Links   []LinkSample   `json:"links,omitempty"`
	Devices []DeviceSample `json:"devices,omitempty"`
}

// Config tunes a Monitor.
type Config struct {
	// Alpha is the EWMA smoothing factor in (0, 1] (0 = DefaultAlpha).
	Alpha float64
	// Window is the staleness horizon (0 = DefaultWindow; negative = never
	// expire).
	Window time.Duration
	// Now overrides the clock, for tests (nil = time.Now).
	Now func() time.Time
}

// estimate is one EWMA-smoothed, windowed quantity.
type estimate struct {
	val  float64   // current smoothed value; meaningless when n == 0
	last time.Time // when the newest sample landed
	n    uint64    // samples ever ingested
}

// observe folds one sample in. A sample landing after the window expired
// restarts the estimate from the sample — blending a fresh measurement into
// a spec value the window already declared stale would just slow convergence.
func (e *estimate) observe(v float64, alpha float64, window time.Duration, now time.Time) {
	if e.n == 0 || (window > 0 && now.Sub(e.last) > window) {
		e.val = v
	} else {
		e.val = alpha*v + (1-alpha)*e.val
	}
	e.last = now
	e.n++
}

// current returns the estimate, or (spec, false) when no live sample exists
// within the window.
func (e *estimate) current(spec float64, window time.Duration, now time.Time) (float64, bool) {
	if e.n == 0 || (window > 0 && now.Sub(e.last) > window) {
		return spec, false
	}
	return e.val, true
}

// deviceState tracks one virtual device: its throughput estimate and
// whether the last sample declared it down.
type deviceState struct {
	est  estimate
	down bool
}

// Monitor accumulates probe samples against one spec cluster. Safe for
// concurrent use.
type Monitor struct {
	cfg  Config
	spec *cluster.Cluster

	mu       sync.Mutex
	interBW  estimate
	interLat estimate
	intraBW  estimate
	intraLat estimate
	devices  []deviceState // index-aligned with spec.Devices
	machines map[int]bool  // valid machine ids in the spec
	samples  uint64        // samples ingested, all kinds
}

// New builds a Monitor for spec. The spec is the baseline estimates decay
// back to; it must be a plannable cluster (Decode-validated or one of the
// builders').
func New(spec *cluster.Cluster, cfg Config) (*Monitor, error) {
	if spec == nil || len(spec.Devices) == 0 {
		return nil, fmt.Errorf("telemetry: monitor needs a non-empty spec cluster")
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = DefaultAlpha
	}
	if cfg.Alpha < 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("telemetry: alpha %v outside (0, 1]", cfg.Alpha)
	}
	if cfg.Window == 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	m := &Monitor{
		cfg:      cfg,
		spec:     spec,
		devices:  make([]deviceState, len(spec.Devices)),
		machines: map[int]bool{},
	}
	for _, d := range spec.Devices {
		m.machines[d.Machine] = true
	}
	return m, nil
}

// Spec returns the baseline cluster the monitor measures against.
func (m *Monitor) Spec() *cluster.Cluster { return m.spec }

// Samples returns how many samples the monitor has ingested.
func (m *Monitor) Samples() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.samples
}

// Ingest folds one probe batch into the estimates. Samples naming unknown
// machines or devices reject the whole batch — a probe wired to the wrong
// cluster spec must fail loudly, not quietly skew another machine's link.
func (m *Monitor) Ingest(r Report) error {
	now := m.cfg.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, l := range r.Links {
		if !m.machines[l.FromMachine] || !m.machines[l.ToMachine] {
			return fmt.Errorf("telemetry: link sample %d names machine %d-%d not in the spec", i, l.FromMachine, l.ToMachine)
		}
	}
	for i, d := range r.Devices {
		if d.Device < 0 || d.Device >= len(m.devices) {
			return fmt.Errorf("telemetry: device sample %d names device %d of %d", i, d.Device, len(m.devices))
		}
	}
	for _, l := range r.Links {
		bw, lat := &m.interBW, &m.interLat
		if l.FromMachine == l.ToMachine {
			bw, lat = &m.intraBW, &m.intraLat
		}
		if l.Bandwidth > 0 {
			bw.observe(l.Bandwidth, m.cfg.Alpha, m.cfg.Window, now)
			m.samples++
		}
		if l.Latency > 0 {
			lat.observe(l.Latency, m.cfg.Alpha, m.cfg.Window, now)
			m.samples++
		}
	}
	for _, d := range r.Devices {
		ds := &m.devices[d.Device]
		if d.TFLOPS <= 0 {
			ds.down = true
			ds.est.last = now
			ds.est.n++
		} else {
			if ds.down {
				// Coming back from down: restart from the fresh sample.
				ds.est.n = 0
				ds.down = false
			}
			ds.est.observe(d.TFLOPS*1e12, m.cfg.Alpha, m.cfg.Window, now)
		}
		m.samples++
	}
	return nil
}

// Cluster materializes the current view: a copy of the spec with measured
// quantities substituted. Devices marked down within the window are dropped
// (the elastic-training node-loss case); a down mark older than the window
// expires like any estimate, restoring the device. The result can be empty
// when every device is down — callers must treat that as unplannable, not
// synthesize against it.
func (m *Monitor) Cluster() *cluster.Cluster {
	now := m.cfg.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	out := &cluster.Cluster{Net: m.spec.Net}
	out.Net.InterBW, _ = m.interBW.current(m.spec.Net.InterBW, m.cfg.Window, now)
	out.Net.InterLatency, _ = m.interLat.current(m.spec.Net.InterLatency, m.cfg.Window, now)
	out.Net.IntraBW, _ = m.intraBW.current(m.spec.Net.IntraBW, m.cfg.Window, now)
	out.Net.IntraLatency, _ = m.intraLat.current(m.spec.Net.IntraLatency, m.cfg.Window, now)
	for i, d := range m.spec.Devices {
		ds := &m.devices[i]
		fresh := m.cfg.Window <= 0 || now.Sub(ds.est.last) <= m.cfg.Window
		if ds.down && fresh {
			continue // dropped out
		}
		if ds.est.n > 0 && !ds.down && fresh {
			// Scale the device type so VirtualDevice.Flops() reproduces the
			// measured achieved throughput exactly.
			d.Type.TFLOPS = ds.est.val / 1e12 / (cluster.MFUEfficiency * float64(d.GPUs))
		}
		out.Devices = append(out.Devices, d)
	}
	return out
}

// Distance returns the drift between the spec and the current materialized
// view, per cluster.Distance: 0 with no (or expired) telemetry, +Inf when
// devices dropped out.
func (m *Monitor) Distance() float64 {
	return cluster.Distance(m.spec, m.Cluster())
}
