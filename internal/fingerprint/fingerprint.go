// Package fingerprint is the shared content-hashing helper behind
// graph.Fingerprint and cluster.Fingerprint. Both hashes key the serve
// plan cache and the plan→graph binding check, so they must evolve in
// lockstep; keeping the byte-level scheme in one place prevents drift.
package fingerprint

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"math"
)

// Hasher accumulates ints and floats into a stable 64-bit content hash.
type Hasher struct {
	h   hash.Hash64
	buf [8]byte
}

// New returns an empty Hasher (FNV-64a).
func New() *Hasher {
	return &Hasher{h: fnv.New64a()}
}

// Int mixes a signed integer into the hash.
func (h *Hasher) Int(v int) {
	binary.LittleEndian.PutUint64(h.buf[:], uint64(int64(v)))
	h.h.Write(h.buf[:])
}

// Float mixes a float64 into the hash by its exact bit pattern.
func (h *Hasher) Float(v float64) {
	binary.LittleEndian.PutUint64(h.buf[:], math.Float64bits(v))
	h.h.Write(h.buf[:])
}

// Sum renders the accumulated hash as 16 hex digits.
func (h *Hasher) Sum() string {
	return fmt.Sprintf("%016x", h.h.Sum64())
}

// Sum64 returns the accumulated hash as a raw 64-bit value, for callers that
// combine or compare sub-hashes numerically (graph segment sub-fingerprints).
func (h *Hasher) Sum64() uint64 {
	return h.h.Sum64()
}
