package collective

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hap/internal/cluster"
	"hap/internal/tensor"
)

func fourGPUCluster() *cluster.Cluster {
	return cluster.FromGPUs(cluster.DefaultNetwork(),
		cluster.MachineSpec{Type: cluster.A100, GPUs: 2},
		cluster.MachineSpec{Type: cluster.A100, GPUs: 2})
}

func TestTimeMonotonicInSize(t *testing.T) {
	c := fourGPUCluster()
	even := c.EvenRatios()
	for _, k := range []Kind{AllReduce, PaddedAllGather, GroupedBroadcast, ReduceScatter, AllToAll} {
		prev := 0.0
		for _, sz := range []float64{1e4, 1e5, 1e6, 1e7} {
			got := Time(c, k, sz, even)
			if got <= prev {
				t.Errorf("%v: time not increasing at %g bytes", k, sz)
			}
			prev = got
		}
	}
}

func TestSingleDeviceIsFree(t *testing.T) {
	c := cluster.FromGPUs(cluster.DefaultNetwork(), cluster.MachineSpec{Type: cluster.A100, GPUs: 1})
	if got := Time(c, AllReduce, 1e6, []float64{1}); got != 0 {
		t.Errorf("single-device collective cost %v, want 0", got)
	}
}

// Fig. 4's qualitative claim: padded All-Gather wins at even sharding,
// grouped Broadcast wins under heavy skew, with a crossover in between.
func TestFig4CrossoverShape(t *testing.T) {
	c := fourGPUCluster()
	const bytes = 4 << 20 // the paper's 4 MB tensor
	ratiosFor := func(maxRatio float64) []float64 {
		rest := (1 - maxRatio) / 3
		return []float64{maxRatio, rest, rest, rest}
	}
	even := ratiosFor(0.25)
	if Time(c, PaddedAllGather, bytes, even) >= Time(c, GroupedBroadcast, bytes, even) {
		t.Error("padded All-Gather should win at even sharding")
	}
	skew := ratiosFor(0.95)
	if Time(c, PaddedAllGather, bytes, skew) <= Time(c, GroupedBroadcast, bytes, skew) {
		t.Error("grouped Broadcast should win under heavy skew")
	}
	// There is a crossover: padded is increasing in skew, grouped ~flat.
	crossed := false
	for r := 0.25; r <= 0.99; r += 0.01 {
		if Time(c, PaddedAllGather, bytes, ratiosFor(r)) > Time(c, GroupedBroadcast, bytes, ratiosFor(r)) {
			crossed = true
			if r < 0.3 || r > 0.9 {
				t.Errorf("crossover at max ratio %.2f, expected mid-range", r)
			}
			break
		}
	}
	if !crossed {
		t.Error("no crossover found")
	}
}

func TestPaddedCostDependsOnMaxShardOnly(t *testing.T) {
	c := fourGPUCluster()
	a := Time(c, PaddedAllGather, 1e6, []float64{0.4, 0.3, 0.2, 0.1})
	b := Time(c, PaddedAllGather, 1e6, []float64{0.4, 0.2, 0.2, 0.2})
	if a != b {
		t.Errorf("padded AG cost should depend only on the largest shard: %v vs %v", a, b)
	}
}

func TestGroupedBroadcastFlatInSkew(t *testing.T) {
	c := fourGPUCluster()
	a := Time(c, GroupedBroadcast, 4<<20, []float64{0.25, 0.25, 0.25, 0.25})
	b := Time(c, GroupedBroadcast, 4<<20, []float64{0.7, 0.1, 0.1, 0.1})
	if math.Abs(a-b)/a > 1e-9 {
		t.Errorf("grouped broadcast should be skew-independent: %v vs %v", a, b)
	}
}

func TestAllReduceMoreExpensiveThanAllGatherEven(t *testing.T) {
	// All-Reduce moves ~2× the data of All-Gather in ring form.
	c := fourGPUCluster()
	even := c.EvenRatios()
	ar := Time(c, AllReduce, 1e8, even)
	ag := Time(c, PaddedAllGather, 1e8, even)
	if ar <= ag {
		t.Errorf("ring all-reduce (%v) should cost more than all-gather (%v)", ar, ag)
	}
}

func TestFitRecoversLinearModel(t *testing.T) {
	c := fourGPUCluster()
	for _, k := range []Kind{AllReduce, PaddedAllGather, ReduceScatter} {
		lm := Fit(c, k)
		if lm.InvBW <= 0 {
			t.Errorf("%v: fitted InvBW = %v", k, lm.InvBW)
		}
		// The ground truth is linear, so the fit must reproduce it closely.
		even := c.EvenRatios()
		for _, sz := range []float64{512 << 10, 8 << 20} {
			want := Time(c, k, sz, even)
			got := lm.Eval(MaxRatio(even) * sz)
			if math.Abs(got-want)/want > 0.05 {
				t.Errorf("%v @%g: fitted %v, ground truth %v", k, sz, got, want)
			}
		}
	}
}

func TestDataPlaneMatchesFig1(t *testing.T) {
	// Fig. 1 semantics on concrete values, 2 devices.
	d1 := tensor.FromData([]float64{1, 2}, 1, 2)
	d2 := tensor.FromData([]float64{3, 4}, 1, 2)

	ag := AllGatherT([]*tensor.Tensor{d1, d2}, 0)
	if !tensor.AllClose(ag, tensor.FromData([]float64{1, 2, 3, 4}, 2, 2), 0, 0) {
		t.Errorf("AllGather = %v", ag.Data())
	}

	ar := AllReduceT([]*tensor.Tensor{d1, d2})
	if !tensor.AllClose(ar, tensor.FromData([]float64{4, 6}, 1, 2), 0, 0) {
		t.Errorf("AllReduce = %v", ar.Data())
	}

	rs := ReduceScatterT([]*tensor.Tensor{d1, d2}, 1, []int{1, 1})
	if rs[0].At(0, 0) != 4 || rs[1].At(0, 0) != 6 {
		t.Errorf("ReduceScatter = %v, %v", rs[0].Data(), rs[1].Data())
	}
}

func TestReduceScatterEqualsAllReduceThenSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	reps := []*tensor.Tensor{tensor.Rand(rng, 4, 6), tensor.Rand(rng, 4, 6), tensor.Rand(rng, 4, 6)}
	rs := ReduceScatterT(reps, 1, []int{3, 2, 1})
	full := AllReduceT(reps)
	want := tensor.SplitSizes(full, 1, []int{3, 2, 1})
	for i := range rs {
		if !tensor.AllClose(rs[i], want[i], 1e-12, 1e-12) {
			t.Errorf("shard %d mismatch", i)
		}
	}
}

func TestAllToAllReshards(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	full := tensor.Rand(rng, 6, 4)
	shards := tensor.SplitSizes(full, 0, []int{2, 4})
	out := AllToAllT(shards, 0, 1, []int{1, 3})
	want := tensor.SplitSizes(full, 1, []int{1, 3})
	for i := range out {
		if !tensor.AllClose(out[i], want[i], 0, 0) {
			t.Errorf("all-to-all shard %d mismatch", i)
		}
	}
}

func TestShardSizesExact(t *testing.T) {
	cases := []struct {
		n      int
		ratios []float64
	}{
		{10, []float64{0.5, 0.5}},
		{10, []float64{0.55, 0.45}},
		{7, []float64{0.5, 0.5}}, // tie: either [4,3] or [3,4] is optimal
		{1, []float64{0.9, 0.1}},
	}
	for _, c := range cases {
		got := ShardSizes(c.n, c.ratios)
		sum := 0
		for i, g := range got {
			sum += g
			// Each shard within one unit of its ideal fractional size.
			if ideal := c.ratios[i] * float64(c.n); math.Abs(float64(g)-ideal) > 1 {
				t.Errorf("ShardSizes(%d, %v)[%d] = %d, ideal %.2f", c.n, c.ratios, i, g, ideal)
			}
		}
		if sum != c.n {
			t.Errorf("ShardSizes(%d, %v) = %v sums to %d", c.n, c.ratios, got, sum)
		}
	}
	if got := ShardSizes(10, []float64{0.6, 0.4}); got[0] != 6 || got[1] != 4 {
		t.Errorf("ShardSizes(10, [0.6 0.4]) = %v, want [6 4]", got)
	}
}

// Property: ShardSizes always sums exactly to n with non-negative parts.
func TestQuickShardSizesInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(1000)
		m := 1 + rng.Intn(8)
		ratios := make([]float64, m)
		total := 0.0
		for i := range ratios {
			ratios[i] = rng.Float64() + 1e-3
			total += ratios[i]
		}
		for i := range ratios {
			ratios[i] /= total
		}
		sizes := ShardSizes(n, ratios)
		sum := 0
		for _, s := range sizes {
			if s < 0 {
				return false
			}
			sum += s
		}
		return sum == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: data-plane AllGather∘Split is the identity for any dim/sizes.
func TestQuickAllGatherSplitIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		full := tensor.Rand(rng, 2+rng.Intn(4), 2+rng.Intn(4))
		d := rng.Intn(2)
		n := full.Dim(d)
		m := 1 + rng.Intn(3)
		sizes := ShardSizes(n, uniformRatios(m))
		// Drop empty shards (Concat requires non-negative, zero is fine).
		shards := tensor.SplitSizes(full, d, sizes)
		back := AllGatherT(shards, d)
		return tensor.AllClose(back, full, 0, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func uniformRatios(m int) []float64 {
	r := make([]float64, m)
	for i := range r {
		r[i] = 1 / float64(m)
	}
	return r
}
