// Package collective models the four MPI-style collectives of Sec. 2.2 plus
// the two heterogeneity-aware All-Gather implementations of Sec. 2.5.1.
//
// It provides three layers:
//
//   - analytic time models (ring algorithms over the cluster's α–β network
//     model) — the ground truth our simulated cluster exhibits;
//   - fitted linear models (α + bytes/β per collective), reproducing the
//     paper's NCCL profiling + linear fit (Sec. 3.2);
//   - a data plane over real tensors, used by the numeric runtime to
//     validate that synthesized programs are semantically equivalent to the
//     single-device program.
package collective

import (
	"fmt"

	"hap/internal/cluster"
	"hap/internal/tensor"
)

// Kind enumerates collective operations (including implementation variants).
type Kind int

// Collective kinds. PaddedAllGather and GroupedBroadcast are the two
// All-Gather implementations whose trade-off Fig. 4 studies.
const (
	AllReduce Kind = iota
	PaddedAllGather
	GroupedBroadcast
	ReduceScatter
	AllToAll
)

var kindNames = map[Kind]string{
	AllReduce: "all-reduce", PaddedAllGather: "all-gather",
	GroupedBroadcast: "grouped-broadcast", ReduceScatter: "reduce-scatter",
	AllToAll: "all-to-all",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("collective(%d)", int(k))
}

// ParseKind returns the collective kind with the given name (as produced by
// Kind.String). Serialized programs store kinds by name so the format
// survives enum renumbering.
func ParseKind(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return k, true
		}
	}
	return 0, false
}

// MaxRatio returns the largest sharding ratio — the padded-collective
// bottleneck (Sec. 2.4: communication time depends on the largest shard).
func MaxRatio(ratios []float64) float64 {
	m := 0.0
	for _, r := range ratios {
		if r > m {
			m = r
		}
	}
	return m
}

// Time returns the analytic execution time of a collective moving a tensor
// of totalBytes sharded with the given ratios across the cluster's virtual
// devices. For AllReduce the ratios are ignored (replicas are full-size).
func Time(c *cluster.Cluster, k Kind, totalBytes float64, ratios []float64) float64 {
	m := float64(c.M())
	if m <= 1 {
		return 0
	}
	bw := c.EffectiveBW()
	lat := c.EffectiveLatency()
	oh := c.Net.KernelOverhead
	switch k {
	case AllReduce:
		// Ring all-reduce: 2(m-1) steps of totalBytes/m each.
		return oh + 2*(m-1)*(lat+totalBytes/m/bw)
	case PaddedAllGather, ReduceScatter:
		// NCCL requires equal shards: pad to the largest (Sec. 2.5.1).
		// Ring: (m-1) steps of maxShard each, plus a pad+trim pass.
		maxShard := MaxRatio(ratios) * totalBytes
		return 2*oh + (m-1)*(lat+maxShard/bw)
	case GroupedBroadcast:
		// One Broadcast per shard inside an NCCL group call: no padding,
		// but a kernel launch per shard and un-optimized broadcast paths.
		t := 0.0
		for _, r := range ratios {
			t += oh + lat + r*totalBytes/(bw*c.Net.BroadcastFactor)
		}
		return t
	case AllToAll:
		// Each device exchanges its shard with all peers; bounded by the
		// busiest device, which handles at most maxShard both ways.
		maxShard := MaxRatio(ratios) * totalBytes
		return oh + (m-1)*lat + maxShard*(m-1)/m/bw
	default:
		panic(fmt.Sprintf("collective: unknown kind %v", k))
	}
}

// LinearModel is the fitted per-collective cost model of Sec. 3.2:
// time ≈ Alpha + bytes·InvBW, evaluated on the largest shard size.
type LinearModel struct {
	Alpha float64 // fixed latency, seconds
	InvBW float64 // seconds per byte
}

// Eval returns the modeled time for the given byte count.
func (lm LinearModel) Eval(bytes float64) float64 {
	return lm.Alpha + bytes*lm.InvBW
}

// Fit profiles a collective on the cluster at several even-sharded sizes
// and least-squares fits the latency/bandwidth linear model, mirroring the
// artifact's profiler.py.
func Fit(c *cluster.Cluster, k Kind) LinearModel {
	sizes := []float64{64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20}
	even := c.EvenRatios()
	var sx, sy, sxx, sxy float64
	n := float64(len(sizes))
	for _, s := range sizes {
		x := MaxRatio(even) * s // largest shard, the model's input
		y := Time(c, k, s, even)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearModel{}
	}
	invBW := (n*sxy - sx*sy) / den
	alpha := (sy - invBW*sx) / n
	return LinearModel{Alpha: alpha, InvBW: invBW}
}

// --- Data plane ------------------------------------------------------------
//
// The data-plane functions implement Fig. 1 semantics on per-device tensors.
// Inputs and outputs are indexed by device.

// AllGatherT concatenates the per-device shards along dim d and returns the
// full tensor every device ends up with.
func AllGatherT(shards []*tensor.Tensor, d int) *tensor.Tensor {
	return tensor.Concat(d, shards...)
}

// AllReduceT element-wise sums the per-device replicas.
func AllReduceT(replicas []*tensor.Tensor) *tensor.Tensor {
	out := replicas[0].Clone()
	for _, r := range replicas[1:] {
		out = tensor.Add(out, r)
	}
	return out
}

// ReduceScatterT sums the replicas and splits the result along dim d into
// per-device shards of the given sizes.
func ReduceScatterT(replicas []*tensor.Tensor, d int, sizes []int) []*tensor.Tensor {
	return tensor.SplitSizes(AllReduceT(replicas), d, sizes)
}

// AllToAllT reshards: input shards are sharded on d1; the output shards are
// the same logical tensor sharded on d2 with the given sizes.
func AllToAllT(shards []*tensor.Tensor, d1, d2 int, outSizes []int) []*tensor.Tensor {
	full := tensor.Concat(d1, shards...)
	return tensor.SplitSizes(full, d2, outSizes)
}

// ShardSizes splits a dimension of length n into integer shard sizes
// proportional to ratios, summing exactly to n. It uses the paper's rounding
// scheme (Sec. 5.1): round to nearest, then fix the total one unit at a time
// on the shard with the smallest rounding error.
func ShardSizes(n int, ratios []float64) []int {
	m := len(ratios)
	sizes := make([]int, m)
	total := 0
	for i, r := range ratios {
		sizes[i] = int(r*float64(n) + 0.5)
		total += sizes[i]
	}
	for total != n {
		step := 1
		if total > n {
			step = -1
		}
		// Pick the shard whose adjustment introduces the smallest error
		// against its ideal fractional size.
		best, bestErr := -1, 0.0
		for i := range sizes {
			if step < 0 && sizes[i] == 0 {
				continue
			}
			ideal := ratios[i] * float64(n)
			err := abs(float64(sizes[i]+step) - ideal)
			if best == -1 || err < bestErr {
				best, bestErr = i, err
			}
		}
		sizes[best] += step
		total += step
	}
	return sizes
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
