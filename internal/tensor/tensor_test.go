package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShapeNumElements(t *testing.T) {
	cases := []struct {
		shape Shape
		want  int
	}{
		{Shape{}, 1},
		{Shape{5}, 5},
		{Shape{2, 3}, 6},
		{Shape{2, 3, 4}, 24},
		{Shape{1, 0, 7}, 0},
	}
	for _, c := range cases {
		if got := c.shape.NumElements(); got != c.want {
			t.Errorf("NumElements(%v) = %d, want %d", c.shape, got, c.want)
		}
	}
}

func TestShapeEqual(t *testing.T) {
	if !(Shape{2, 3}).Equal(Shape{2, 3}) {
		t.Error("equal shapes reported unequal")
	}
	if (Shape{2, 3}).Equal(Shape{3, 2}) {
		t.Error("unequal shapes reported equal")
	}
	if (Shape{2, 3}).Equal(Shape{2, 3, 1}) {
		t.Error("different-rank shapes reported equal")
	}
}

func TestAtSetOffset(t *testing.T) {
	a := New(2, 3, 4)
	a.Set(7.5, 1, 2, 3)
	if got := a.At(1, 2, 3); got != 7.5 {
		t.Errorf("At(1,2,3) = %v, want 7.5", got)
	}
	if got := a.Data()[1*12+2*4+3]; got != 7.5 {
		t.Errorf("row-major offset wrong: got %v", got)
	}
}

func TestFromDataPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromData with wrong length did not panic")
		}
	}()
	FromData([]float64{1, 2, 3}, 2, 2)
}

func TestMatMulKnown(t *testing.T) {
	a := FromData([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromData([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := FromData([]float64{58, 64, 139, 154}, 2, 2)
	if !AllClose(got, want, 0, 1e-12) {
		t.Errorf("MatMul = %v, want %v", got.Data(), want.Data())
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MatMul with mismatched inner dims did not panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Rand(rng, 3, 5)
	if !AllClose(Transpose(Transpose(a)), a, 0, 0) {
		t.Error("Transpose(Transpose(a)) != a")
	}
}

func TestTransposeMatMulIdentity(t *testing.T) {
	// (A·B)^T == B^T · A^T
	rng := rand.New(rand.NewSource(2))
	a := Rand(rng, 4, 3)
	b := Rand(rng, 3, 5)
	lhs := Transpose(MatMul(a, b))
	rhs := MatMul(Transpose(b), Transpose(a))
	if !AllClose(lhs, rhs, 1e-12, 1e-12) {
		t.Error("(AB)^T != B^T A^T")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromData([]float64{1, -2, 3}, 3)
	b := FromData([]float64{4, 5, -6}, 3)
	if got := Add(a, b); !AllClose(got, FromData([]float64{5, 3, -3}, 3), 0, 0) {
		t.Errorf("Add = %v", got.Data())
	}
	if got := Sub(a, b); !AllClose(got, FromData([]float64{-3, -7, 9}, 3), 0, 0) {
		t.Errorf("Sub = %v", got.Data())
	}
	if got := Mul(a, b); !AllClose(got, FromData([]float64{4, -10, -18}, 3), 0, 0) {
		t.Errorf("Mul = %v", got.Data())
	}
	if got := Scale(a, 2); !AllClose(got, FromData([]float64{2, -4, 6}, 3), 0, 0) {
		t.Errorf("Scale = %v", got.Data())
	}
	if got := ReLU(a); !AllClose(got, FromData([]float64{1, 0, 3}, 3), 0, 0) {
		t.Errorf("ReLU = %v", got.Data())
	}
}

func TestSigmoidRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Rand(rng, 10, 10)
	s := Sigmoid(a)
	for _, v := range s.Data() {
		if v <= 0 || v >= 1 {
			t.Fatalf("sigmoid output %v outside (0,1)", v)
		}
	}
	if got := Sigmoid(New(1)).At(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Sigmoid(0) = %v, want 0.5", got)
	}
}

func TestGeLUKnownValues(t *testing.T) {
	// GeLU(0)=0 and GeLU is approximately x for large positive x.
	if got := GeLU(New(1)).At(0); got != 0 {
		t.Errorf("GeLU(0) = %v, want 0", got)
	}
	x := FromData([]float64{10}, 1)
	if got := GeLU(x).At(0); math.Abs(got-10) > 1e-6 {
		t.Errorf("GeLU(10) = %v, want ~10", got)
	}
}

func TestActivationGradsMatchFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := Rand(rng, 8)
	g := Ones(8)
	const h = 1e-6
	check := func(name string, f func(*Tensor) *Tensor, grad func(x, g *Tensor) *Tensor) {
		got := grad(x, g)
		for i := 0; i < 8; i++ {
			xp := x.Clone()
			xm := x.Clone()
			xp.Data()[i] += h
			xm.Data()[i] -= h
			want := (f(xp).Data()[i] - f(xm).Data()[i]) / (2 * h)
			if math.Abs(got.Data()[i]-want) > 1e-4 {
				t.Errorf("%s grad[%d] = %v, want %v", name, i, got.Data()[i], want)
			}
		}
	}
	check("sigmoid", Sigmoid, SigmoidGrad)
	check("gelu", GeLU, GeLUGrad)
}

func TestSumAndSumDim(t *testing.T) {
	a := FromData([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if got := Sum(a).At(); got != 21 {
		t.Errorf("Sum = %v, want 21", got)
	}
	s0 := SumDim(a, 0)
	if !AllClose(s0, FromData([]float64{5, 7, 9}, 3), 0, 0) {
		t.Errorf("SumDim(0) = %v", s0.Data())
	}
	s1 := SumDim(a, 1)
	if !AllClose(s1, FromData([]float64{6, 15}, 2), 0, 0) {
		t.Errorf("SumDim(1) = %v", s1.Data())
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := Rand(rng, 4, 7)
	s := Softmax(a)
	for r := 0; r < 4; r++ {
		sum := 0.0
		for c := 0; c < 7; c++ {
			sum += s.At(r, c)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("softmax row %d sums to %v", r, sum)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	a := FromData([]float64{1000, 1000, 1000}, 1, 3)
	s := Softmax(a)
	for _, v := range s.Data() {
		if math.IsNaN(v) || math.Abs(v-1.0/3) > 1e-12 {
			t.Fatalf("softmax of large equal logits = %v, want 1/3", v)
		}
	}
}

func TestConcatSplitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, dim := range []int{0, 1, 2} {
		a := Rand(rng, 4, 6, 5)
		sizes := map[int][]int{0: {1, 3}, 1: {2, 1, 3}, 2: {4, 1}}[dim]
		parts := SplitSizes(a, dim, sizes)
		back := Concat(dim, parts...)
		if !AllClose(back, a, 0, 0) {
			t.Errorf("Concat(Split(a, dim=%d)) != a", dim)
		}
	}
}

func TestSplitSizesValues(t *testing.T) {
	a := FromData([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	parts := SplitSizes(a, 1, []int{1, 2})
	if !AllClose(parts[0], FromData([]float64{1, 4}, 2, 1), 0, 0) {
		t.Errorf("part 0 = %v", parts[0].Data())
	}
	if !AllClose(parts[1], FromData([]float64{2, 3, 5, 6}, 2, 2), 0, 0) {
		t.Errorf("part 1 = %v", parts[1].Data())
	}
}

func TestSplitBadSizesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SplitSizes with bad sizes did not panic")
		}
	}()
	SplitSizes(New(2, 3), 1, []int{1, 1})
}

func TestAllCloseAndMaxAbsDiff(t *testing.T) {
	a := FromData([]float64{1, 2}, 2)
	b := FromData([]float64{1, 2.001}, 2)
	if AllClose(a, b, 0, 1e-6) {
		t.Error("AllClose too lenient")
	}
	if !AllClose(a, b, 0, 1e-2) {
		t.Error("AllClose too strict")
	}
	if got := MaxAbsDiff(a, b); math.Abs(got-0.001) > 1e-12 {
		t.Errorf("MaxAbsDiff = %v", got)
	}
	if !math.IsInf(MaxAbsDiff(a, New(3)), 1) {
		t.Error("MaxAbsDiff of mismatched shapes should be +Inf")
	}
}

// Property: matmul distributes over row-wise concatenation — the algebraic
// fact underlying data parallelism: concat_0(A1·B, A2·B) == concat_0(A1,A2)·B.
func TestQuickMatMulRowConcat(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n1, n2 := 1+rng.Intn(4), 1+rng.Intn(4)
		k, m := 1+rng.Intn(5), 1+rng.Intn(5)
		a1 := Rand(rng, n1, k)
		a2 := Rand(rng, n2, k)
		b := Rand(rng, k, m)
		lhs := Concat(0, MatMul(a1, b), MatMul(a2, b))
		rhs := MatMul(Concat(0, a1, a2), b)
		return AllClose(lhs, rhs, 1e-9, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: matmul on column-sharded A and row-sharded B sums to the full
// product — the algebraic fact underlying reduction parallelism:
// A1·B1 + A2·B2 == concat_1(A1,A2) · concat_0(B1,B2).
func TestQuickMatMulReductionSharding(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 1+rng.Intn(4), 1+rng.Intn(4)
		k1, k2 := 1+rng.Intn(5), 1+rng.Intn(5)
		a1 := Rand(rng, n, k1)
		a2 := Rand(rng, n, k2)
		b1 := Rand(rng, k1, m)
		b2 := Rand(rng, k2, m)
		lhs := Add(MatMul(a1, b1), MatMul(a2, b2))
		rhs := MatMul(Concat(1, a1, a2), Concat(0, b1, b2))
		return AllClose(lhs, rhs, 1e-9, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Sum distributes over splits on any dimension — the fact
// underlying loss|All-Reduce completeness.
func TestQuickSumSplit(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Rand(rng, 2+rng.Intn(3), 2+rng.Intn(3))
		d := rng.Intn(2)
		n := a.Dim(d)
		cut := 1 + rng.Intn(n-1)
		parts := SplitSizes(a, d, []int{cut, n - cut})
		total := Sum(parts[0]).At() + Sum(parts[1]).At()
		return math.Abs(total-Sum(a).At()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
