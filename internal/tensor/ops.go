package tensor

import (
	"fmt"
	"math"
)

// MatMul computes the matrix product of two rank-2 tensors: (n,k)·(k,m) → (n,m).
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	n, k := a.shape[0], a.shape[1]
	k2, m := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimensions mismatch: %v · %v", a.shape, b.shape))
	}
	out := New(n, m)
	for i := 0; i < n; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*m : (i+1)*m]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.data[p*m : (p+1)*m]
			for j := 0; j < m; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// Transpose returns the rank-2 transpose of a.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose requires rank-2 operand, got %v", a.shape))
	}
	n, m := a.shape[0], a.shape[1]
	out := New(m, n)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			out.data[j*n+i] = a.data[i*m+j]
		}
	}
	return out
}

func elementwiseBinary(a, b *Tensor, name string, f func(x, y float64) float64) *Tensor {
	if !a.shape.Equal(b.shape) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", name, a.shape, b.shape))
	}
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = f(a.data[i], b.data[i])
	}
	return out
}

// Add returns the element-wise sum of same-shaped tensors.
func Add(a, b *Tensor) *Tensor {
	return elementwiseBinary(a, b, "Add", func(x, y float64) float64 { return x + y })
}

// Sub returns the element-wise difference of same-shaped tensors.
func Sub(a, b *Tensor) *Tensor {
	return elementwiseBinary(a, b, "Sub", func(x, y float64) float64 { return x - y })
}

// Mul returns the element-wise (Hadamard) product of same-shaped tensors.
func Mul(a, b *Tensor) *Tensor {
	return elementwiseBinary(a, b, "Mul", func(x, y float64) float64 { return x * y })
}

// Scale multiplies every element by s.
func Scale(a *Tensor, s float64) *Tensor {
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] * s
	}
	return out
}

// Map applies f to every element.
func Map(a *Tensor, f func(float64) float64) *Tensor {
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = f(a.data[i])
	}
	return out
}

// ReLU applies max(0, x) element-wise.
func ReLU(a *Tensor) *Tensor {
	return Map(a, func(x float64) float64 { return math.Max(0, x) })
}

// ReLUGrad returns g masked by the positive entries of x (dReLU/dx · g).
func ReLUGrad(x, g *Tensor) *Tensor {
	return elementwiseBinary(x, g, "ReLUGrad", func(xv, gv float64) float64 {
		if xv > 0 {
			return gv
		}
		return 0
	})
}

// Sigmoid applies the logistic function element-wise.
func Sigmoid(a *Tensor) *Tensor {
	return Map(a, func(x float64) float64 { return 1 / (1 + math.Exp(-x)) })
}

// SigmoidGrad returns dSigmoid/dx · g where x is the op input.
func SigmoidGrad(x, g *Tensor) *Tensor {
	return elementwiseBinary(x, g, "SigmoidGrad", func(xv, gv float64) float64 {
		s := 1 / (1 + math.Exp(-xv))
		return s * (1 - s) * gv
	})
}

// GeLU applies the tanh-approximated Gaussian error linear unit element-wise.
func GeLU(a *Tensor) *Tensor {
	return Map(a, geluScalar)
}

func geluScalar(x float64) float64 {
	const c = 0.7978845608028654 // sqrt(2/pi)
	return 0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x)))
}

// GeLUGrad returns dGeLU/dx · g using a central finite difference of the
// same approximation, which is accurate enough for equivalence checks.
func GeLUGrad(x, g *Tensor) *Tensor {
	return elementwiseBinary(x, g, "GeLUGrad", func(xv, gv float64) float64 {
		const h = 1e-6
		return (geluScalar(xv+h) - geluScalar(xv-h)) / (2 * h) * gv
	})
}

// Sum reduces all elements to a scalar (shape []).
func Sum(a *Tensor) *Tensor {
	s := 0.0
	for _, v := range a.data {
		s += v
	}
	out := New()
	out.data[0] = s
	return out
}

// SumDim reduces dimension d, removing it from the shape.
func SumDim(a *Tensor, d int) *Tensor {
	if d < 0 || d >= a.Rank() {
		panic(fmt.Sprintf("tensor: SumDim dim %d out of range for %v", d, a.shape))
	}
	outShape := make(Shape, 0, a.Rank()-1)
	outShape = append(outShape, a.shape[:d]...)
	outShape = append(outShape, a.shape[d+1:]...)
	out := New(outShape...)
	outer := 1
	for i := 0; i < d; i++ {
		outer *= a.shape[i]
	}
	mid := a.shape[d]
	inner := 1
	for i := d + 1; i < a.Rank(); i++ {
		inner *= a.shape[i]
	}
	for o := 0; o < outer; o++ {
		for m := 0; m < mid; m++ {
			base := (o*mid + m) * inner
			obase := o * inner
			for in := 0; in < inner; in++ {
				out.data[obase+in] += a.data[base+in]
			}
		}
	}
	return out
}

// Softmax applies the softmax function along the last dimension.
func Softmax(a *Tensor) *Tensor {
	if a.Rank() == 0 {
		panic("tensor: Softmax requires rank >= 1")
	}
	out := New(a.shape...)
	last := a.shape[a.Rank()-1]
	rows := len(a.data) / last
	for r := 0; r < rows; r++ {
		row := a.data[r*last : (r+1)*last]
		orow := out.data[r*last : (r+1)*last]
		maxv := math.Inf(-1)
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for i, v := range row {
			e := math.Exp(v - maxv)
			orow[i] = e
			sum += e
		}
		for i := range orow {
			orow[i] /= sum
		}
	}
	return out
}

// Concat concatenates tensors along dimension d. All other dimensions must
// match.
func Concat(d int, parts ...*Tensor) *Tensor {
	if len(parts) == 0 {
		panic("tensor: Concat requires at least one part")
	}
	base := parts[0].shape
	total := 0
	for _, p := range parts {
		if p.Rank() != len(base) {
			panic("tensor: Concat rank mismatch")
		}
		for i := range base {
			if i != d && p.shape[i] != base[i] {
				panic(fmt.Sprintf("tensor: Concat dim %d mismatch: %v vs %v", i, p.shape, base))
			}
		}
		total += p.shape[d]
	}
	outShape := base.Clone()
	outShape[d] = total
	out := New(outShape...)

	outer := 1
	for i := 0; i < d; i++ {
		outer *= base[i]
	}
	inner := 1
	for i := d + 1; i < len(base); i++ {
		inner *= base[i]
	}
	rowLen := total * inner
	off := 0
	for _, p := range parts {
		pMid := p.shape[d]
		for o := 0; o < outer; o++ {
			src := p.data[o*pMid*inner : (o+1)*pMid*inner]
			dst := out.data[o*rowLen+off*inner : o*rowLen+(off+pMid)*inner]
			copy(dst, src)
		}
		off += pMid
	}
	return out
}

// SplitSizes splits a along dimension d into parts of the given sizes, which
// must sum to a.Dim(d).
func SplitSizes(a *Tensor, d int, sizes []int) []*Tensor {
	sum := 0
	for _, s := range sizes {
		sum += s
	}
	if sum != a.shape[d] {
		panic(fmt.Sprintf("tensor: SplitSizes %v does not cover dim %d of %v", sizes, d, a.shape))
	}
	outer := 1
	for i := 0; i < d; i++ {
		outer *= a.shape[i]
	}
	inner := 1
	for i := d + 1; i < a.Rank(); i++ {
		inner *= a.shape[i]
	}
	rowLen := a.shape[d] * inner

	parts := make([]*Tensor, len(sizes))
	off := 0
	for pi, sz := range sizes {
		shape := a.shape.Clone()
		shape[d] = sz
		p := New(shape...)
		for o := 0; o < outer; o++ {
			src := a.data[o*rowLen+off*inner : o*rowLen+(off+sz)*inner]
			copy(p.data[o*sz*inner:(o+1)*sz*inner], src)
		}
		parts[pi] = p
		off += sz
	}
	return parts
}

// Zeros returns a zero tensor with the same shape as a.
func Zeros(a *Tensor) *Tensor { return New(a.shape...) }

// Ones returns a tensor of ones with the given shape.
func Ones(shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = 1
	}
	return t
}
