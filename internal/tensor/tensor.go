// Package tensor implements a small dense tensor engine used by HAP's
// numeric runtime. It is the stand-in for the CUDA kernels the paper runs
// through PyTorch: the synthesizer never touches numeric data, but the
// runtime executes both the single-device graph and the synthesized
// distributed program on real numbers to validate semantic equivalence.
//
// Tensors are row-major dense float64 arrays of arbitrary rank. All
// operations allocate their results; in-place variants are not needed for
// validation workloads, which are intentionally small.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Shape describes the extent of each tensor dimension.
type Shape []int

// NumElements returns the product of all dimensions. The empty shape is a
// scalar with one element.
func (s Shape) NumElements() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Clone returns a copy of the shape.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// Equal reports whether two shapes have identical rank and extents.
func (s Shape) Equal(t Shape) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

func (s Shape) String() string {
	return fmt.Sprintf("%v", []int(s))
}

// Tensor is a dense row-major float64 array.
type Tensor struct {
	shape Shape
	data  []float64
}

// New returns a zero-filled tensor of the given shape.
func New(shape ...int) *Tensor {
	s := Shape(shape).Clone()
	return &Tensor{shape: s, data: make([]float64, s.NumElements())}
}

// FromData wraps data into a tensor of the given shape. The data slice is
// used directly (not copied); len(data) must equal the shape's element count.
func FromData(data []float64, shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if len(data) != s.NumElements() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), s))
	}
	return &Tensor{shape: s, data: data}
}

// Rand returns a tensor with entries drawn uniformly from [-1, 1) using rng.
func Rand(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = rng.Float64()*2 - 1
	}
	return t
}

// Shape returns the tensor's shape. Callers must not mutate it.
func (t *Tensor) Shape() Shape { return t.shape }

// Data returns the underlying storage. Callers must not resize it.
func (t *Tensor) Data() []float64 { return t.data }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the extent of dimension d.
func (t *Tensor) Dim(d int) int { return t.shape[d] }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 {
	return t.data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Reshape returns a view-copy of the tensor with a new shape that must have
// the same number of elements.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if s.NumElements() != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.shape, s))
	}
	c := make([]float64, len(t.data))
	copy(c, t.data)
	return &Tensor{shape: s, data: c}
}

// AllClose reports whether both tensors have the same shape and all elements
// differ by at most atol + rtol*|b|.
func AllClose(a, b *Tensor, rtol, atol float64) bool {
	if !a.shape.Equal(b.shape) {
		return false
	}
	for i := range a.data {
		diff := math.Abs(a.data[i] - b.data[i])
		if diff > atol+rtol*math.Abs(b.data[i]) {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest element-wise absolute difference between
// two same-shaped tensors.
func MaxAbsDiff(a, b *Tensor) float64 {
	if !a.shape.Equal(b.shape) {
		return math.Inf(1)
	}
	m := 0.0
	for i := range a.data {
		if d := math.Abs(a.data[i] - b.data[i]); d > m {
			m = d
		}
	}
	return m
}
