package models

import (
	"testing"

	"hap/internal/graph"
)

func TestMLPStructure(t *testing.T) {
	g := MLP(8, 4, 16, 2)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(g.Params) != 2 {
		t.Errorf("params = %d, want 2", len(g.Params))
	}
	if g.ParameterCount() != 4*16+16*2 {
		t.Errorf("ParameterCount = %d", g.ParameterCount())
	}
	if g.Loss < 0 {
		t.Error("loss unset")
	}
}

// Table 1 parameter counts. The paper reports 133M / 54M / 102M / 84+36m.
// Our builders use the standard architectures; small accounting differences
// (position embeddings, exact classifier width) are tolerated with ±15%.
func TestTable1ParameterCounts(t *testing.T) {
	within := func(got, want float64, tol float64) bool {
		return got > want*(1-tol) && got < want*(1+tol)
	}

	vgg := VGG19(64, 224, 10)
	if err := vgg.Validate(); err != nil {
		t.Fatalf("vgg validate: %v", err)
	}
	vggM := float64(vgg.ParameterCount()) / 1e6
	if !within(vggM, 133, 0.15) {
		t.Errorf("VGG19 params = %.1fM, want ≈133M", vggM)
	}

	vit := ViT(ViTConfig(), 64*197, 768, 10)
	vitM := float64(vit.ParameterCount()) / 1e6
	if !within(vitM, 54, 0.15) {
		t.Errorf("ViT params = %.1fM, want ≈54M", vitM)
	}

	bert := BERT(BERTBase(), 64*128)
	bertM := float64(bert.ParameterCount()) / 1e6
	if !within(bertM, 102, 0.15) {
		t.Errorf("BERT-Base params = %.1fM, want ≈102M", bertM)
	}

	// BERT-MoE: base + per-device expert growth. Paper: 84 + 36m. Our MoE
	// block adds E·(2·H·F + H) per MoE layer; with H=768, F=3072 and 6 MoE
	// layers that is ≈28.3M per device — same scaling law, smaller constant
	// (the paper's MoE FFN is wider). Check base and slope separately.
	m8 := float64(BERT(BERTMoE(8), 8*32*128).ParameterCount()) / 1e6
	m16 := float64(BERT(BERTMoE(16), 16*32*128).ParameterCount()) / 1e6
	slope := (m16 - m8) / 8
	base := m8 - slope*8
	if !within(base, 84, 0.15) {
		t.Errorf("BERT-MoE base params = %.1fM, want ≈84M", base)
	}
	if slope < 20 || slope > 40 {
		t.Errorf("BERT-MoE per-device params = %.1fM, want ≈28-36M", slope)
	}
}

func TestBERTMoEHasExpertParams(t *testing.T) {
	g := BERT(BERTMoE(4), 4*32*128)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	foundExpert := false
	for _, p := range g.Params {
		if len(g.Node(p).Shape) == 3 && g.Node(p).Shape[0] == 4 {
			foundExpert = true
		}
	}
	if !foundExpert {
		t.Error("no rank-3 expert parameter with 4 experts found")
	}
}

func TestBuildAllPaperModels(t *testing.T) {
	for _, m := range AllPaperModels {
		g := Build(m, 8)
		if err := g.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", m, err)
		}
		if len(g.Grads) != len(g.Params) {
			t.Errorf("%s: %d grads for %d params", m, len(g.Grads), len(g.Params))
		}
		if g.TotalFlops() <= 0 {
			t.Errorf("%s: no flops", m)
		}
	}
}

func TestWeakScalingBatch(t *testing.T) {
	g8 := VGG19(64*8, 224, 10)
	g16 := VGG19(64*16, 224, 10)
	if f8, f16 := g8.TotalFlops(), g16.TotalFlops(); f16 < 1.9*f8 {
		t.Errorf("weak scaling flops: 8→%.3g, 16→%.3g", f8, f16)
	}
}

func TestVGGFlopsDominatedByConv(t *testing.T) {
	g := VGG19(64, 224, 10)
	conv, fc := 0.0, 0.0
	for i := range g.Nodes {
		switch g.Nodes[i].Kind {
		case graph.Conv:
			conv += g.Flops(graph.NodeID(i))
		case graph.MatMul:
			fc += g.Flops(graph.NodeID(i))
		}
	}
	if conv < 10*fc {
		t.Errorf("conv flops %.3g should dominate fc flops %.3g", conv, fc)
	}
	// But FC parameters dominate — the communication-heavy part (Sec. 7.2).
	var convP, fcP int
	for _, p := range g.Params {
		n := g.Node(p)
		if n.Shape.NumElements() > 1<<22 {
			fcP += n.Shape.NumElements()
		} else {
			convP += n.Shape.NumElements()
		}
	}
	if fcP < 3*convP {
		t.Errorf("fc params %d should dominate conv params %d", fcP, convP)
	}
}

func TestPerDeviceBatch(t *testing.T) {
	if PerDeviceBatch(ModelBERTMoE) != 32 {
		t.Error("BERT-MoE per-device batch should be 32")
	}
	if PerDeviceBatch(ModelVGG19) != 64 {
		t.Error("VGG19 per-device batch should be 64")
	}
}

func TestMoEExpertsScaleWithDevices(t *testing.T) {
	g8 := Build(ModelBERTMoE, 8)
	g16 := Build(ModelBERTMoE, 16)
	if g16.ParameterCount() <= g8.ParameterCount() {
		t.Error("MoE parameters should grow with device count")
	}
}
