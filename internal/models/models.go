// Package models builds the single-device computation graphs for the
// paper's benchmark workloads (Table 1): VGG19, ViT, BERT-Base and
// BERT-MoE, plus small MLPs used in unit tests and the quickstart example.
//
// Shapes follow the 2-D token-major convention of Megatron-style SPMD
// systems: activations are (tokens, hidden). The attention core and
// convolution spatial structure are represented by cost-accurate dedicated
// ops (graph.Attention, graph.Conv, graph.Pool); see DESIGN.md for the
// substitution argument.
package models

import (
	"fmt"

	"hap/internal/autodiff"
	"hap/internal/graph"
)

// MLP builds loss = sum(scale(f_L(...f_1(x)))) with the given layer widths,
// alternating MatMul and ReLU. It is numerically executable end to end.
func MLP(batch int, widths ...int) *graph.Graph {
	if len(widths) < 2 {
		panic("models: MLP needs at least input and output widths")
	}
	g := graph.New()
	x := g.AddPlaceholder("x", 0, batch, widths[0])
	h := x
	for i := 1; i < len(widths); i++ {
		w := g.AddParameter(fmt.Sprintf("w%d", i), widths[i-1], widths[i])
		h = g.AddOp(graph.MatMul, h, w)
		if i != len(widths)-1 {
			h = g.AddOp(graph.ReLU, h)
		}
	}
	g.SetLoss(g.AddOp(graph.Sum, g.AddScale(h, 1/float64(batch))))
	return g
}

// transformerLayer appends one pre-LN-free Transformer block: fused-QKV
// attention plus a GeLU MLP, both with residual connections. x is (T, H).
func transformerLayer(g *graph.Graph, x graph.NodeID, hidden, ffn, seqLen int, name string) graph.NodeID {
	wqkv := g.AddParameter(name+".wqkv", hidden, 3*hidden)
	qkv := g.AddOp(graph.MatMul, x, wqkv)
	attn := g.AddAttention(qkv, seqLen)
	wo := g.AddParameter(name+".wo", hidden, hidden)
	o := g.AddOp(graph.MatMul, attn, wo)
	x1 := g.AddOp(graph.Add, x, o)

	w1 := g.AddParameter(name+".w1", hidden, ffn)
	h := g.AddOp(graph.GeLU, g.AddOp(graph.MatMul, x1, w1))
	w2 := g.AddParameter(name+".w2", ffn, hidden)
	h2 := g.AddOp(graph.MatMul, h, w2)
	return g.AddOp(graph.Add, x1, h2)
}

// moeLayer appends a GShard-style MoE feed-forward block with the given
// number of experts: gate → dispatch → two batched expert matmuls → combine,
// with a residual connection. x is (T, H).
func moeLayer(g *graph.Graph, x graph.NodeID, hidden, ffn, experts int, name string) graph.NodeID {
	wg := g.AddParameter(name+".wg", hidden, experts)
	gates := g.AddOp(graph.Softmax, g.AddOp(graph.MatMul, x, wg))
	d := g.AddOp(graph.Dispatch, x, gates)
	w1 := g.AddParameter(name+".w1", experts, hidden, ffn)
	e1 := g.AddOp(graph.GeLU, g.AddOp(graph.ExpertMM, d, w1))
	w2 := g.AddParameter(name+".w2", experts, ffn, hidden)
	e2 := g.AddOp(graph.ExpertMM, e1, w2)
	y := g.AddOp(graph.Combine, e2, gates)
	return g.AddOp(graph.Add, x, y)
}

// TransformerConfig parameterizes the Transformer-family builders.
type TransformerConfig struct {
	Layers int
	Hidden int
	FFN    int
	SeqLen int
	Vocab  int // BERT only
	// MoE fields (BERT-MoE only).
	Experts     int
	MoEInterval int // an MoE block replaces the FFN every MoEInterval layers
}

// BERTBase returns the paper's BERT-Base configuration (12×768, seq 128).
// Parameters land at ~109M with a 30522-token tied embedding, matching
// Table 1's 102M up to embedding-accounting differences.
func BERTBase() TransformerConfig {
	return TransformerConfig{Layers: 12, Hidden: 768, FFN: 3072, SeqLen: 128, Vocab: 30522}
}

// BERTMoE returns the paper's BERT-MoE configuration for m devices: MoE
// replaces a feed-forward module every two layers (as in GShard) and the
// expert count scales with the cluster size.
func BERTMoE(devices int) TransformerConfig {
	c := BERTBase()
	c.Experts = devices
	c.MoEInterval = 2
	return c
}

// ViTConfig returns the paper's ViT configuration (~54M parameters:
// depth 8 at hidden 768).
func ViTConfig() TransformerConfig {
	return TransformerConfig{Layers: 8, Hidden: 768, FFN: 3072, SeqLen: 197}
}

// BERT builds the BERT language-model training graph over `tokens` total
// tokens: tied token embedding, cfg.Layers Transformer blocks (with MoE
// blocks every cfg.MoEInterval layers when cfg.Experts > 0), and a tied
// LM head, reduced to a scalar loss.
func BERT(cfg TransformerConfig, tokens int) *graph.Graph {
	g := graph.New()
	ids := g.AddPlaceholder("ids", 0, tokens)
	table := g.AddParameter("embed", cfg.Vocab, cfg.Hidden)
	x := g.AddEmbed(ids, table)
	for l := 0; l < cfg.Layers; l++ {
		if cfg.Experts > 0 && cfg.MoEInterval > 0 && (l+1)%cfg.MoEInterval == 0 {
			// Attention sub-block followed by the MoE feed-forward.
			wqkv := g.AddParameter(fmt.Sprintf("l%d.wqkv", l), cfg.Hidden, 3*cfg.Hidden)
			qkv := g.AddOp(graph.MatMul, x, wqkv)
			attn := g.AddAttention(qkv, cfg.SeqLen)
			wo := g.AddParameter(fmt.Sprintf("l%d.wo", l), cfg.Hidden, cfg.Hidden)
			x = g.AddOp(graph.Add, x, g.AddOp(graph.MatMul, attn, wo))
			x = moeLayer(g, x, cfg.Hidden, cfg.FFN, cfg.Experts, fmt.Sprintf("l%d.moe", l))
		} else {
			x = transformerLayer(g, x, cfg.Hidden, cfg.FFN, cfg.SeqLen, fmt.Sprintf("l%d", l))
		}
	}
	// Tied LM head: logits = x · embedᵀ.
	headW := g.AddOp(graph.Transpose, table)
	logits := g.AddOp(graph.MatMul, x, headW)
	g.SetLoss(g.AddOp(graph.Sum, g.AddScale(logits, 1/float64(tokens))))
	return g
}

// ViT builds the Vision Transformer training graph over `tokens` total
// patch tokens (batch × patches-per-image): linear patch embedding,
// cfg.Layers Transformer blocks, and a classification head.
func ViT(cfg TransformerConfig, tokens, patchDim, classes int) *graph.Graph {
	g := graph.New()
	x := g.AddPlaceholder("patches", 0, tokens, patchDim)
	wemb := g.AddParameter("patch_embed", patchDim, cfg.Hidden)
	h := g.AddOp(graph.MatMul, x, wemb)
	for l := 0; l < cfg.Layers; l++ {
		h = transformerLayer(g, h, cfg.Hidden, cfg.FFN, cfg.SeqLen, fmt.Sprintf("l%d", l))
	}
	whead := g.AddParameter("head", cfg.Hidden, classes)
	logits := g.AddOp(graph.MatMul, h, whead)
	g.SetLoss(g.AddOp(graph.Sum, g.AddScale(logits, 1/float64(tokens))))
	return g
}

// vgg19Channels is the VGG19 convolutional configuration; 0 marks a 2×2
// max-pool.
var vgg19Channels = []int{64, 64, 0, 128, 128, 0, 256, 256, 256, 256, 0, 512, 512, 512, 512, 0, 512, 512, 512, 512, 0}

// VGG19 builds the VGG19 training graph at the given batch size and input
// resolution (the paper upsamples Cifar-10; 224 reproduces the 133M-class
// parameter count of Table 1 with a 10-way classifier).
func VGG19(batch, resolution, classes int) *graph.Graph {
	return vgg19With(vgg19Channels, batch, resolution, classes)
}

// VGG19OneWider builds VGG19 with one mid-stack convolution widened
// (256 → 320 channels): the canonical near-miss resubmission that the
// incremental-synthesis benchmarks and tests plan seeded from the base
// VGG19's cached plan.
func VGG19OneWider(batch, resolution, classes int) *graph.Graph {
	channels := append([]int(nil), vgg19Channels...)
	channels[8] = 320
	return vgg19With(channels, batch, resolution, classes)
}

func vgg19With(channels []int, batch, resolution, classes int) *graph.Graph {
	g := graph.New()
	ch, hw := 3, resolution
	x := g.AddPlaceholder("images", 0, batch, ch*hw*hw)
	h := x
	for i, c := range channels {
		if c == 0 {
			h = g.AddPool(h)
			hw /= 2
			continue
		}
		w := g.AddParameter(fmt.Sprintf("conv%d", i), 9*ch, c)
		flopsPerSample := 2 * float64(hw*hw) * 9 * float64(ch) * float64(c)
		h = g.AddOp(graph.ReLU, g.AddConv(h, w, c*hw*hw, flopsPerSample))
		ch = c
	}
	// Classifier: 512·(res/32)² → 4096 → 4096 → classes.
	dims := []int{512 * (resolution / 32) * (resolution / 32), 4096, 4096, classes}
	for i := 1; i < len(dims); i++ {
		w := g.AddParameter(fmt.Sprintf("fc%d", i), dims[i-1], dims[i])
		h = g.AddOp(graph.MatMul, h, w)
		if i != len(dims)-1 {
			h = g.AddOp(graph.ReLU, h)
		}
	}
	g.SetLoss(g.AddOp(graph.Sum, g.AddScale(h, 1/float64(batch))))
	return g
}

// Training appends the backward pass to a forward graph, panicking on
// builder bugs (all builders produce differentiable graphs).
func Training(g *graph.Graph) *graph.Graph {
	if err := autodiff.Backward(g); err != nil {
		panic(fmt.Sprintf("models: backward failed: %v", err))
	}
	return g
}

// PaperModel names one of the four Table 1 benchmarks.
type PaperModel string

// The four benchmark workloads of Sec. 7.1.
const (
	ModelVGG19    PaperModel = "VGG19"
	ModelViT      PaperModel = "ViT"
	ModelBERTBase PaperModel = "BERT-Base"
	ModelBERTMoE  PaperModel = "BERT-MoE"
)

// AllPaperModels lists the benchmarks in the paper's presentation order.
var AllPaperModels = []PaperModel{ModelVGG19, ModelViT, ModelBERTBase, ModelBERTMoE}

// PerDeviceBatch returns the paper's weak-scaling per-device batch size
// (Sec. 7.1): 32 for BERT-MoE, 64 otherwise.
func PerDeviceBatch(m PaperModel) int {
	if m == ModelBERTMoE {
		return 32
	}
	return 64
}

// Build constructs the full training graph (forward + backward) for a paper
// benchmark at `devices` devices under weak scaling.
func Build(m PaperModel, devices int) *graph.Graph {
	batch := PerDeviceBatch(m) * devices
	switch m {
	case ModelVGG19:
		return Training(VGG19(batch, 224, 10))
	case ModelViT:
		cfg := ViTConfig()
		return Training(ViT(cfg, batch*cfg.SeqLen, 16*16*3, 10))
	case ModelBERTBase:
		cfg := BERTBase()
		return Training(BERT(cfg, batch*cfg.SeqLen))
	case ModelBERTMoE:
		cfg := BERTMoE(devices)
		return Training(BERT(cfg, batch*cfg.SeqLen))
	default:
		panic(fmt.Sprintf("models: unknown model %q", m))
	}
}
