// Package cost implements HAP's stage-based analytic cost model (Sec. 3.2).
//
// A distributed program's execution divides into stages: every communication
// instruction starts a new stage in which all devices synchronize; the
// per-iteration time is
//
//	t(Q,B) = Σ_i ( comm_i(B) + max_j comp_{i,j}(B_j) ).
//
// comp is linear in the device's sharding ratio (flops scale with the shard
// for sharded execution, are constant for replicated execution); comm is
// linear in the largest shard of the tensor (padded collectives) or constant
// (All-Reduce, grouped Broadcast). The package exposes both a direct
// evaluator and the extracted linear coefficients the load balancer's LP
// consumes (Sec. 5).
package cost

import (
	"hap/internal/cluster"
	"hap/internal/collective"
	"hap/internal/dist"
	"hap/internal/graph"
)

// CompTimes returns the per-device execution time of one computation
// instruction under the given per-segment sharding ratios B[segment][device].
func CompTimes(c *cluster.Cluster, g *graph.Graph, in dist.Instruction, b [][]float64) []float64 {
	out := make([]float64, c.M())
	AddCompTimes(c, g, in, b, out)
	return out
}

// AddCompTimes accumulates CompTimes into acc to avoid allocation in the
// synthesizer's inner loop.
func AddCompTimes(c *cluster.Cluster, g *graph.Graph, in dist.Instruction, b [][]float64, acc []float64) {
	flops := g.Flops(in.Ref)
	if flops == 0 {
		return
	}
	seg := g.Segment(in.Ref)
	for j, d := range c.Devices {
		f := flops
		if in.FlopsScaled {
			f *= b[seg][j]
		}
		acc[j] += f / d.Flops()
	}
}

// CommTime returns the cost of one communication instruction under the
// given ratios: the fitted collective model evaluated on the tensor.
func CommTime(c *cluster.Cluster, g *graph.Graph, in dist.Instruction, b [][]float64) float64 {
	return collective.Time(c, in.Coll, g.Bytes(in.Ref), b[g.Segment(in.Ref)])
}

// AddIntraPenalty accumulates into acc the per-device intra-machine
// aggregation cost a machine-level virtual device pays around a global
// collective (Sec. 6: Gather/Reduce to GPU 0, then Scatter/Broadcast back).
// The paper folds this into comp_j of the stage.
func AddIntraPenalty(c *cluster.Cluster, g *graph.Graph, in dist.Instruction, b [][]float64, acc []float64) {
	bytes := g.Bytes(in.Ref)
	seg := g.Segment(in.Ref)
	for j, d := range c.Devices {
		if d.GPUs <= 1 {
			continue
		}
		local := bytes // All-Reduce replicas are full-size
		switch in.Coll {
		case collective.PaddedAllGather, collective.GroupedBroadcast,
			collective.ReduceScatter, collective.AllToAll:
			local = bytes * b[seg][j]
		}
		acc[j] += 2 * local / c.Net.IntraBW
	}
}

// Stage groups the instructions of one synchronization stage: an optional
// opening communication instruction followed by computation instructions.
type Stage struct {
	Comm  *dist.Instruction // nil for the leading stage
	Comps []dist.Instruction
}

// Stages splits a program into its synchronization stages.
func Stages(p *dist.Program) []Stage {
	stages := []Stage{{}}
	for i := range p.Instrs {
		in := p.Instrs[i]
		if in.IsComm {
			stages = append(stages, Stage{Comm: &p.Instrs[i]})
		} else {
			s := &stages[len(stages)-1]
			s.Comps = append(s.Comps, in)
		}
	}
	// Drop an empty leading stage (program starting with a collective).
	if stages[0].Comm == nil && len(stages[0].Comps) == 0 && len(stages) > 1 {
		stages = stages[1:]
	}
	return stages
}

// StageModel is the linearized cost of one stage, the LP's raw material:
//
//	stage time = CommConst + CommMaxCoef·max_j B[CommSeg][j]
//	           + max_j ( CompConst[j] + Σ_k CompCoef[k][j]·B[k][j] )
type StageModel struct {
	CommConst   float64
	CommSeg     int
	CommMaxCoef float64
	CompCoef    [][]float64 // [segment][device]
	CompConst   []float64   // [device]
}

// Eval computes the stage time under ratios b.
func (sm *StageModel) Eval(b [][]float64) float64 {
	t := sm.CommConst + sm.CommMaxCoef*maxOf(b[sm.CommSeg])
	worst := 0.0
	for j := range sm.CompConst {
		cj := sm.CompConst[j]
		for k := range sm.CompCoef {
			cj += sm.CompCoef[k][j] * b[k][j]
		}
		if cj > worst {
			worst = cj
		}
	}
	return t + worst
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// BoundaryCharge is the All-To-All resharding cost charged for a tensor
// crossing a model-segment boundary (Sec. 5.2 inserts All-To-All at every
// boundary). Linearized as Alpha + Coef·(M_SegA + M_SegB)/2 where M_k is the
// largest ratio of segment k.
type BoundaryCharge struct {
	SegA, SegB int
	Alpha      float64
	Coef       float64
}

// Eval computes the charge under ratios b.
func (bc *BoundaryCharge) Eval(b [][]float64) float64 {
	return bc.Alpha + bc.Coef*(maxOf(b[bc.SegA])+maxOf(b[bc.SegB]))/2
}

// Model is the extracted linear cost model of one program on one cluster.
type Model struct {
	Cluster  *cluster.Cluster
	Graph    *graph.Graph
	Stages   []StageModel
	Charges  []BoundaryCharge
	Segments int
}

// Extract linearizes a program's cost: one StageModel per stage plus the
// segment-boundary All-To-All charges.
func Extract(c *cluster.Cluster, p *dist.Program) *Model {
	g := p.Graph
	m := c.M()
	segs := g.NumSegments()
	model := &Model{Cluster: c, Graph: g, Segments: segs}

	bw := c.EffectiveBW()
	lat := c.EffectiveLatency()
	oh := c.Net.KernelOverhead
	mm := float64(m)

	for _, st := range Stages(p) {
		sm := StageModel{
			CompConst: make([]float64, m),
			CompCoef:  make([][]float64, segs),
		}
		for k := range sm.CompCoef {
			sm.CompCoef[k] = make([]float64, m)
		}
		if st.Comm != nil && m > 1 {
			in := st.Comm
			bytes := g.Bytes(in.Ref)
			seg := g.Segment(in.Ref)
			sm.CommSeg = seg
			switch in.Coll {
			case collective.AllReduce:
				sm.CommConst = oh + 2*(mm-1)*(lat+bytes/mm/bw)
			case collective.PaddedAllGather, collective.ReduceScatter:
				sm.CommConst = 2*oh + (mm-1)*lat
				sm.CommMaxCoef = (mm - 1) * bytes / bw
			case collective.GroupedBroadcast:
				// Σ_j r_j = 1 makes the total ratio-independent.
				sm.CommConst = mm*(oh+lat) + bytes/(bw*c.Net.BroadcastFactor)
			case collective.AllToAll:
				sm.CommConst = oh + (mm-1)*lat
				sm.CommMaxCoef = bytes * (mm - 1) / mm / bw
			}
			// Intra-machine aggregation folded into comp (Sec. 6).
			for j, d := range c.Devices {
				if d.GPUs <= 1 {
					continue
				}
				if in.Coll == collective.AllReduce {
					sm.CompConst[j] += 2 * bytes / c.Net.IntraBW
				} else {
					sm.CompCoef[seg][j] += 2 * bytes / c.Net.IntraBW
				}
			}
		}
		for _, in := range st.Comps {
			flops := g.Flops(in.Ref)
			if flops == 0 {
				continue
			}
			seg := g.Segment(in.Ref)
			for j, d := range c.Devices {
				if in.FlopsScaled {
					sm.CompCoef[seg][j] += flops / d.Flops()
				} else {
					sm.CompConst[j] += flops / d.Flops()
				}
			}
		}
		model.Stages = append(model.Stages, sm)
	}

	// Segment-boundary All-To-All charges (Sec. 5.2): one per distinct
	// tensor consumed from another segment.
	if segs > 1 && m > 1 {
		charged := map[graph.NodeID]bool{}
		for i := range g.Nodes {
			v := graph.NodeID(i)
			for _, u := range g.Nodes[i].Inputs {
				if g.Segment(u) == g.Segment(v) || charged[u] || theoryLeafKind(g.Node(u).Kind) {
					continue
				}
				if len(g.Node(u).Shape) == 0 {
					continue // scalars need no resharding
				}
				charged[u] = true
				model.Charges = append(model.Charges, BoundaryCharge{
					SegA:  g.Segment(u),
					SegB:  g.Segment(v),
					Alpha: oh + (mm-1)*lat,
					Coef:  g.Bytes(u) * (mm - 1) / mm / bw,
				})
			}
		}
	}
	return model
}

// theoryLeafKind mirrors theory.IsLeaf without importing it (leaves are
// loaded locally, never resharded across boundaries).
func theoryLeafKind(k graph.OpKind) bool {
	return k == graph.Placeholder || k == graph.Parameter || k == graph.Ones
}

// Eval computes t(Q,B) from the extracted model.
func (m *Model) Eval(b [][]float64) float64 {
	t := 0.0
	for i := range m.Stages {
		t += m.Stages[i].Eval(b)
	}
	for i := range m.Charges {
		t += m.Charges[i].Eval(b)
	}
	return t
}

// Evaluate is the one-shot t(Q,B) used by the optimization loop.
func Evaluate(c *cluster.Cluster, p *dist.Program, b [][]float64) float64 {
	return Extract(c, p).Eval(b)
}

// OptimizerStates is the per-parameter memory multiple: parameter + gradient
// + two Adam moments, in element units.
const OptimizerStates = 4

// MemoryPerDevice estimates each device's peak memory for running program p
// under ratios b: parameter/gradient/optimizer state (sharded or replicated
// per the program's placements) plus stored activations.
func MemoryPerDevice(c *cluster.Cluster, p *dist.Program, b [][]float64) []float64 {
	g := p.Graph
	mem := make([]float64, c.M())
	for _, in := range p.Instrs {
		if in.IsComm {
			continue
		}
		n := g.Node(in.Ref)
		bytes := g.Bytes(in.Ref)
		seg := g.Segment(in.Ref)
		mult := 1.0
		switch n.Kind {
		case graph.Parameter:
			mult = OptimizerStates
		case graph.Ones, graph.Expand:
			mult = 0 // transient constants
		}
		sharded := in.FlopsScaled || in.ShardDim >= 0
		for j := range mem {
			local := bytes
			if sharded {
				local = bytes * b[seg][j]
			}
			mem[j] += local * mult
		}
	}
	return mem
}

// OOM reports whether any device exceeds its memory under program p.
func OOM(c *cluster.Cluster, p *dist.Program, b [][]float64) bool {
	mem := MemoryPerDevice(c, p, b)
	for j, d := range c.Devices {
		if mem[j] > d.MemBytes() {
			return true
		}
	}
	return false
}

// UniformRatios returns a [segments][m] ratio matrix replicating one ratio
// vector across all segments.
func UniformRatios(segments int, ratios []float64) [][]float64 {
	b := make([][]float64, segments)
	for k := range b {
		b[k] = append([]float64(nil), ratios...)
	}
	return b
}
