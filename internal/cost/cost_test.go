package cost

import (
	"math"
	"testing"

	"hap/internal/autodiff"
	"hap/internal/cluster"
	"hap/internal/collective"
	"hap/internal/dist"
	"hap/internal/graph"
)

func mixed() *cluster.Cluster {
	return cluster.FromGPUs(cluster.DefaultNetwork(),
		cluster.MachineSpec{Type: cluster.V100, GPUs: 1},
		cluster.MachineSpec{Type: cluster.P100, GPUs: 1})
}

// handProgram builds a tiny DP program by hand:
// placeholder-shard(0); parameter; matmul; sum; ones; expand; transpose;
// matmul(grad); all-reduce(grad).
func handProgram(t *testing.T) (*dist.Program, *graph.Graph) {
	t.Helper()
	g := graph.New()
	x := g.AddPlaceholder("x", 0, 64, 32)
	w := g.AddParameter("w", 32, 16)
	y := g.AddOp(graph.MatMul, x, w)
	g.SetLoss(g.AddOp(graph.Sum, y))
	if err := autodiff.Backward(g); err != nil {
		t.Fatal(err)
	}
	gw := g.Grads[w]
	gy := g.Node(gw).Inputs[1] // aᵀ·gy
	xt := g.Node(gw).Inputs[0]
	ones := g.Node(gy).Inputs[0]
	p := &dist.Program{Graph: g}
	add := func(in dist.Instruction) { p.Instrs = append(p.Instrs, in) }
	add(dist.Instruction{Ref: x, Op: graph.Placeholder, ShardDim: 0})
	add(dist.Instruction{Ref: w, Op: graph.Parameter, ShardDim: -1})
	add(dist.Instruction{Ref: y, Op: graph.MatMul, Inputs: []graph.NodeID{x, w}, ShardDim: -1, FlopsScaled: true})
	add(dist.Instruction{Ref: g.Loss, Op: graph.Sum, Inputs: []graph.NodeID{y}, ShardDim: -1, FlopsScaled: true})
	add(dist.Instruction{Ref: ones, Op: graph.Ones, ShardDim: -1})
	add(dist.Instruction{Ref: gy, Op: graph.Expand, Inputs: []graph.NodeID{ones}, ShardDim: 0, FlopsScaled: true})
	add(dist.Instruction{Ref: xt, Op: graph.Transpose, Inputs: []graph.NodeID{x}, ShardDim: -1, FlopsScaled: true})
	add(dist.Instruction{Ref: gw, Op: graph.MatMul, Inputs: []graph.NodeID{xt, gy}, ShardDim: -1, FlopsScaled: true})
	add(dist.Comm(gw, collective.AllReduce, 0, 0))
	return p, g
}

func TestStagesSplit(t *testing.T) {
	p, _ := handProgram(t)
	st := Stages(p)
	if len(st) != 2 {
		t.Fatalf("stages = %d, want 2", len(st))
	}
	if st[0].Comm != nil || len(st[0].Comps) != 8 {
		t.Errorf("leading stage malformed: comm=%v comps=%d", st[0].Comm, len(st[0].Comps))
	}
	if st[1].Comm == nil || len(st[1].Comps) != 0 {
		t.Errorf("comm stage malformed")
	}
}

func TestEvaluateMatchesManualComputation(t *testing.T) {
	p, g := handProgram(t)
	c := mixed()
	b := UniformRatios(1, []float64{0.6, 0.4})
	got := Evaluate(c, p, b)

	// Manual: comp stage = max_j Σ flops·B_j/speed_j; comm = ring AR.
	flops := 0.0
	for _, in := range p.Instrs {
		if !in.IsComm {
			flops += g.Flops(in.Ref)
		}
	}
	comp0 := flops * 0.6 / c.Devices[0].Flops()
	comp1 := flops * 0.4 / c.Devices[1].Flops()
	comm := collective.Time(c, collective.AllReduce, g.Bytes(g.Grads[g.Params[0]]), b[0])
	want := math.Max(comp0, comp1) + comm
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("Evaluate = %v, manual = %v", got, want)
	}
}

func TestStageModelEvalConsistent(t *testing.T) {
	p, _ := handProgram(t)
	c := mixed()
	model := Extract(c, p)
	for _, b := range [][][]float64{
		UniformRatios(1, []float64{0.5, 0.5}),
		UniformRatios(1, []float64{0.8, 0.2}),
	} {
		if got, want := model.Eval(b), Evaluate(c, p, b); math.Abs(got-want) > 1e-12 {
			t.Errorf("Eval=%v Evaluate=%v for %v", got, want, b[0])
		}
	}
}

func TestReplicatedCompIsRatioIndependent(t *testing.T) {
	p, _ := handProgram(t)
	// Flip all comps to replicated: comp time must not change with ratios.
	for i := range p.Instrs {
		p.Instrs[i].FlopsScaled = false
	}
	c := mixed()
	model := Extract(c, p)
	a := model.Eval(UniformRatios(1, []float64{0.5, 0.5}))
	b := model.Eval(UniformRatios(1, []float64{0.9, 0.1}))
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("replicated program cost varies with ratios: %v vs %v", a, b)
	}
}

func TestIntraPenaltyOnlyForMachineDevices(t *testing.T) {
	p, g := handProgram(t)
	single := mixed()
	machines := cluster.FromMachines(cluster.DefaultNetwork(), 8,
		cluster.MachineSpec{Type: cluster.V100, GPUs: 8},
		cluster.MachineSpec{Type: cluster.P100, GPUs: 8})
	b := UniformRatios(1, []float64{0.5, 0.5})
	acc1 := make([]float64, 2)
	acc2 := make([]float64, 2)
	comm := p.Instrs[len(p.Instrs)-1]
	AddIntraPenalty(single, g, comm, b, acc1)
	AddIntraPenalty(machines, g, comm, b, acc2)
	if acc1[0] != 0 {
		t.Error("single-GPU devices should pay no intra penalty")
	}
	if acc2[0] <= 0 {
		t.Error("machine devices should pay an intra penalty")
	}
}

func TestMemoryAndOOM(t *testing.T) {
	p, g := handProgram(t)
	c := mixed()
	b := UniformRatios(1, []float64{0.5, 0.5})
	mem := MemoryPerDevice(c, p, b)
	if mem[0] <= 0 {
		t.Fatal("no memory accounted")
	}
	// Parameters count OptimizerStates times.
	wBytes := g.Bytes(g.Params[0])
	if mem[0] < wBytes*OptimizerStates {
		t.Errorf("memory %v below parameter+optimizer floor %v", mem[0], wBytes*OptimizerStates)
	}
	if OOM(c, p, b) {
		t.Error("tiny model should fit")
	}
}

func TestBoundaryChargesOnlyAcrossSegments(t *testing.T) {
	p, g := handProgram(t)
	c := mixed()
	if n := len(Extract(c, p).Charges); n != 0 {
		t.Fatalf("unsegmented graph has %d boundary charges", n)
	}
	// Split right after the forward matmul so its (non-leaf) output crosses
	// the boundary into the loss segment.
	g.SegmentOf = make([]int, g.NumNodes())
	for i := 3; i < g.NumNodes(); i++ {
		g.SegmentOf[i] = 1
	}
	if n := len(Extract(c, p).Charges); n == 0 {
		t.Error("segmented graph should have boundary charges")
	}
}

func TestGroupedBroadcastRatioIndependentInModel(t *testing.T) {
	p, g := handProgram(t)
	p.Instrs[len(p.Instrs)-1] = dist.Comm(g.Grads[g.Params[0]], collective.GroupedBroadcast, 0, 0)
	c := mixed()
	model := Extract(c, p)
	last := model.Stages[len(model.Stages)-1]
	if last.CommMaxCoef != 0 {
		t.Errorf("grouped broadcast should have no max-ratio coefficient, got %v", last.CommMaxCoef)
	}
	if last.CommConst <= 0 {
		t.Error("grouped broadcast should have positive constant cost")
	}
}
