package dist

import (
	"strings"
	"testing"

	"hap/internal/collective"
	"hap/internal/graph"
)

// trainingGraph hand-builds a tiny training graph with backward pass:
//
//	e0 x = placeholder(4, 8)   e4 ones = ones()
//	e1 w = parameter(8, 2)     e5 gy = expand(e4)
//	e2 y = matmul(e0, e1)      e6 xt = transpose(e0)
//	e3 loss = sum(e2)          e7 gw = matmul(e6, e5)
func trainingGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.New()
	x := g.AddPlaceholder("x", 0, 4, 8)
	w := g.AddParameter("w", 8, 2)
	y := g.AddOp(graph.MatMul, x, w)
	g.SetLoss(g.AddOp(graph.Sum, y))
	ones := g.AddOnes()
	gy := g.AddExpand(ones, g.Node(y).Shape)
	xt := g.AddOp(graph.Transpose, x)
	gw := g.AddOp(graph.MatMul, xt, gy)
	g.Grads[w] = gw
	if err := g.Validate(); err != nil {
		t.Fatalf("graph invalid: %v", err)
	}
	return g
}

// dataParallel builds the canonical data-parallel program over trainingGraph:
// batch-sharded placeholder, replicated parameter, all-reduced gradient.
func dataParallel(t testing.TB, g *graph.Graph) *Program {
	t.Helper()
	p := &Program{Graph: g}
	add := func(in Instruction) { p.Instrs = append(p.Instrs, in) }
	add(Instruction{Ref: 0, Op: graph.Placeholder, ShardDim: 0})
	add(Instruction{Ref: 1, Op: graph.Parameter, ShardDim: -1})
	add(Instruction{Ref: 2, Op: graph.MatMul, Inputs: []graph.NodeID{0, 1}, ShardDim: -1, FlopsScaled: true})
	add(Instruction{Ref: 3, Op: graph.Sum, Inputs: []graph.NodeID{2}, ShardDim: -1, FlopsScaled: true})
	add(Instruction{Ref: 4, Op: graph.Ones, ShardDim: -1})
	add(Instruction{Ref: 5, Op: graph.Expand, Inputs: []graph.NodeID{4}, ShardDim: 0, FlopsScaled: true})
	add(Instruction{Ref: 6, Op: graph.Transpose, Inputs: []graph.NodeID{0}, ShardDim: -1, FlopsScaled: true})
	add(Instruction{Ref: 7, Op: graph.MatMul, Inputs: []graph.NodeID{6, 5}, ShardDim: -1, FlopsScaled: true})
	add(Comm(7, collective.AllReduce, 0, 0))
	return p
}

func TestValidateAcceptsWellFormedProgram(t *testing.T) {
	g := trainingGraph(t)
	p := dataParallel(t, g)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	g := trainingGraph(t)
	cases := []struct {
		name    string
		mutate  func(p *Program)
		wantSub string
	}{
		{"use before def", func(p *Program) {
			// Move the matmul before its placeholder input's loader.
			p.Instrs[0], p.Instrs[2] = p.Instrs[2], p.Instrs[0]
		}, "before it is defined"},
		{"bad shard dim", func(p *Program) {
			p.Instrs[0].ShardDim = 5
		}, "shard dim 5 out of range"},
		{"dangling comm ref", func(p *Program) {
			p.Instrs[len(p.Instrs)-1] = Comm(42, collective.AllReduce, 0, 0)
		}, "outside the"},
		{"comm before produced", func(p *Program) {
			p.Instrs[len(p.Instrs)-1] = p.Instrs[0]
			p.Instrs[0] = Comm(0, collective.AllReduce, 0, 0)
		}, "before it is produced"},
		{"comm dim out of range", func(p *Program) {
			p.Instrs = append(p.Instrs, Comm(2, collective.PaddedAllGather, 3, 0))
		}, "dim 3 out of range"},
		{"all-to-all same dims", func(p *Program) {
			p.Instrs = append(p.Instrs, Comm(2, collective.AllToAll, 1, 1))
		}, "onto itself"},
		{"computed twice", func(p *Program) {
			p.Instrs = append(p.Instrs, p.Instrs[2])
		}, "computed twice"},
		{"op mismatch", func(p *Program) {
			p.Instrs[2].Op = graph.Add
		}, "does not match"},
		{"inputs drift", func(p *Program) {
			p.Instrs[2].Inputs = []graph.NodeID{1, 0}
		}, "do not mirror"},
		{"missing gradient", func(p *Program) {
			p.Instrs = p.Instrs[:len(p.Instrs)-2]
		}, "never materialized"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := dataParallel(t, g)
			tc.mutate(p)
			err := p.Validate()
			if err == nil {
				t.Fatalf("Validate accepted an ill-formed program:\n%s", p)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestNumCommsAndStats(t *testing.T) {
	g := trainingGraph(t)
	p := dataParallel(t, g)
	if got := p.NumComms(); got != 1 {
		t.Errorf("NumComms = %d, want 1", got)
	}
	st := p.Stats()
	if st.Instrs != 9 || st.Comms != 1 || st.FlopsScaled != 5 {
		t.Errorf("Stats = %+v, want 9 instrs / 1 comm / 5 flops-scaled", st)
	}
	if st.PerCollective[collective.AllReduce] != 1 || len(st.PerCollective) != 1 {
		t.Errorf("PerCollective = %v, want all-reduce:1 only", st.PerCollective)
	}
	if cc := p.CollectiveCount(); cc[collective.AllReduce] != 1 {
		t.Errorf("CollectiveCount = %v", cc)
	}
}

func TestStringGolden(t *testing.T) {
	g := trainingGraph(t)
	p := dataParallel(t, g)
	want := strings.Join([]string{
		"e0 = placeholder-shard(0)  # x",
		"e1 = parameter()  # w",
		"e2 = matmul(e0, e1)",
		"e3 = sum(e2)  # loss",
		"e4 = ones()",
		"e5 = expand-shard(e4, 0)",
		"e6 = transpose(e0)",
		"e7 = matmul(e6, e5)",
		"e7 = all-reduce(e7)",
	}, "\n") + "\n"
	if got := p.String(); got != want {
		t.Errorf("String:\n%s\nwant:\n%s", got, want)
	}
}

func TestCommStringNotation(t *testing.T) {
	cases := []struct {
		in   Instruction
		want string
	}{
		{Comm(3, collective.PaddedAllGather, 1, 0), "all-gather(e3, 1)"},
		{Comm(3, collective.GroupedBroadcast, 0, 0), "grouped-broadcast(e3, 0)"},
		{Comm(3, collective.ReduceScatter, 1, 0), "reduce-scatter(e3, 1)"},
		{Comm(3, collective.AllReduce, 0, 0), "all-reduce(e3)"},
		{Comm(3, collective.AllToAll, 1, 0), "all-to-all(e3, 1, 0)"},
	}
	for _, tc := range cases {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestSFBProgramMarksReplicatedComputation(t *testing.T) {
	g := trainingGraph(t)
	p := dataParallel(t, g)
	// Replicated gradient matmul (the SFB pattern) instead of all-reduce.
	p.Instrs[7].FlopsScaled = false
	p.Instrs = p.Instrs[:8]
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !strings.Contains(p.String(), "e7 = matmul(e6, e5)  # replicated") {
		t.Errorf("replicated computation not annotated:\n%s", p)
	}
}

func TestPruneRemovesUnreachableInstructions(t *testing.T) {
	g := trainingGraph(t)
	// Extra dead nodes: a relu of y nobody consumes, with its own dead
	// all-gather, plus a dead leaf loader for an unused parameter.
	dead := g.AddOp(graph.ReLU, 2)
	deadW := g.AddParameter("w_dead", 8, 2)
	p := dataParallel(t, g)
	p.Instrs = append(p.Instrs,
		Instruction{Ref: deadW, Op: graph.Parameter, ShardDim: -1},
		Instruction{Ref: dead, Op: graph.ReLU, Inputs: []graph.NodeID{2}, ShardDim: -1, FlopsScaled: true},
		Comm(dead, collective.PaddedAllGather, 0, 0),
	)
	if err := p.Validate(); err != nil {
		t.Fatalf("pre-prune Validate: %v", err)
	}
	if removed := p.Prune(); removed != 3 {
		t.Errorf("Prune removed %d instructions, want 3:\n%s", removed, p)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("post-prune Validate: %v", err)
	}
	if len(p.Instrs) != 9 || p.NumComms() != 1 {
		t.Errorf("pruned program has %d instrs / %d comms, want 9 / 1:\n%s", len(p.Instrs), p.NumComms(), p)
	}
	// Idempotent: a second pass finds nothing.
	if removed := p.Prune(); removed != 0 {
		t.Errorf("second Prune removed %d instructions", removed)
	}
}

func TestPruneNilGraphIsNoOp(t *testing.T) {
	p := &Program{Instrs: []Instruction{{Ref: 0, Op: graph.Placeholder, ShardDim: -1}}}
	if removed := p.Prune(); removed != 0 {
		t.Errorf("Prune on graph-less program removed %d instructions", removed)
	}
}

func TestPruneKeepsProgramsWithoutOutputs(t *testing.T) {
	g := graph.New()
	g.AddPlaceholder("x", 0, 4, 4)
	p := &Program{Graph: g, Instrs: []Instruction{
		{Ref: 0, Op: graph.Placeholder, ShardDim: 0},
	}}
	if removed := p.Prune(); removed != 0 {
		t.Errorf("Prune removed %d instructions from an output-less program", removed)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := trainingGraph(t)
	p := dataParallel(t, g)
	before := p.String()
	cp := p.Clone()
	if cp.Graph != p.Graph {
		t.Error("Clone must share the graph")
	}
	if cp.String() != before {
		t.Fatalf("Clone differs from original:\n%s\nvs\n%s", cp, p)
	}
	// Mutating the clone's instructions and input lists must not leak back.
	cp.Instrs[len(cp.Instrs)-1] = Comm(7, collective.ReduceScatter, 0, 0)
	cp.Instrs[2].Inputs[0] = 1
	cp.Instrs = cp.Instrs[:3]
	if p.String() != before {
		t.Errorf("mutating the clone changed the original:\n%s", p)
	}
}
