// Package dist defines HAP's distributed SPMD program IR (Sec. 4.1).
//
// A Program is the output of the synthesizer: a sequence of Instructions
// every device executes identically. Each instruction either computes one
// tensor of the single-device graph on local shards (a computation, possibly
// fused with the leaf-loader placements of Sec. 4.5) or applies a collective
// to redistribute an already-produced tensor (a communication). The graph is
// carried alongside the instruction list — instructions reference graph
// nodes by id and the graph remains the source of truth for shapes, flops
// and dataflow.
//
// Beyond the core representation, the package provides the subsystem layers
// every later pipeline stage builds on: a structural validator enforcing
// SSA-style well-formedness (Validate), a disassembler mirroring the paper's
// program listings (String, Format), stable JSON serialization for
// exporting/diffing/re-loading plans (Encode, Decode), program statistics
// (Stats), and a dead-code-elimination pass (Prune).
package dist

import (
	"fmt"
	"io"
	"strings"

	"hap/internal/collective"
	"hap/internal/graph"
)

// Instruction is one SPMD instruction, executed identically on every device.
type Instruction struct {
	// Ref is the single-device tensor this instruction produces (computation)
	// or redistributes in place (communication).
	Ref graph.NodeID
	// Op is the computation's op kind, mirroring the graph node. Unused for
	// communication instructions.
	Op graph.OpKind
	// Inputs mirror the graph node's inputs (empty for leaf loaders, whose
	// nodes have none).
	Inputs []graph.NodeID
	// ShardDim is the dimension a leaf loader (or a sharded Expand) splits
	// locally, -1 for replicated. Unused (-1) for communication.
	ShardDim int
	// FlopsScaled reports whether per-device flops scale with the sharding
	// ratio (false for replicated execution, the SFB-enabling rules).
	FlopsScaled bool
	// IsComm marks communication instructions.
	IsComm bool
	// Coll is the collective kind (communication only).
	Coll collective.Kind
	// Dim is the sharding dimension the collective operates on (the gathered
	// or scattered dim); Dim2 is All-To-All's destination sharding dim.
	Dim, Dim2 int
}

// Comm builds a communication instruction applying the collective kind to
// tensor ref on dimension d (and resharding onto d2 for All-To-All).
func Comm(ref graph.NodeID, kind collective.Kind, d, d2 int) Instruction {
	return Instruction{Ref: ref, ShardDim: -1, IsComm: true, Coll: kind, Dim: d, Dim2: d2}
}

// isLeafKind mirrors theory.IsLeaf without importing it (theory imports dist).
func isLeafKind(k graph.OpKind) bool {
	return k == graph.Placeholder || k == graph.Parameter || k == graph.Ones
}

// String renders the instruction in the paper's listing notation:
// "all-gather(e3, 1)" for collectives, "e5 = matmul(e1, e3)" for
// computations, with sharded placements as "e0 = placeholder-shard(0)".
func (in Instruction) String() string {
	if in.IsComm {
		switch in.Coll {
		case collective.AllReduce:
			return fmt.Sprintf("%v(e%d)", in.Coll, in.Ref)
		case collective.AllToAll:
			return fmt.Sprintf("%v(e%d, %d, %d)", in.Coll, in.Ref, in.Dim, in.Dim2)
		default:
			return fmt.Sprintf("%v(e%d, %d)", in.Coll, in.Ref, in.Dim)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "e%d = %v", in.Ref, in.Op)
	if in.ShardDim >= 0 {
		b.WriteString("-shard")
	}
	b.WriteByte('(')
	for i, u := range in.Inputs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "e%d", u)
	}
	if in.ShardDim >= 0 {
		if len(in.Inputs) > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", in.ShardDim)
	}
	b.WriteByte(')')
	return b.String()
}

// Program is a synthesized SPMD program over a single-device graph.
type Program struct {
	Graph  *graph.Graph
	Instrs []Instruction
}

// Clone returns a copy of the program whose instruction list (and each
// instruction's input list) is independent of the original. The graph is
// shared: optimization passes rewrite instructions, never the graph.
func (p *Program) Clone() *Program {
	np := &Program{Graph: p.Graph, Instrs: append([]Instruction(nil), p.Instrs...)}
	for i := range np.Instrs {
		np.Instrs[i].Inputs = append([]graph.NodeID(nil), np.Instrs[i].Inputs...)
	}
	return np
}

// NumComms returns the number of communication instructions.
func (p *Program) NumComms() int {
	n := 0
	for i := range p.Instrs {
		if p.Instrs[i].IsComm {
			n++
		}
	}
	return n
}

// Format writes the program one instruction per line, mirroring the paper's
// program listings (Fig. 6): communications in assignment form
// ("e7 = all-gather(e7, 1)"), computations annotated with the node's name,
// the loss marker, and "replicated" for non-leaf computations whose flops do
// not scale with the sharding ratio (the SFB pattern).
func (p *Program) Format(w io.Writer) error {
	for i := range p.Instrs {
		in := &p.Instrs[i]
		line := in.String()
		if in.IsComm {
			line = fmt.Sprintf("e%d = %s", in.Ref, line)
		}
		var notes []string
		if p.Graph != nil && in.Ref >= 0 && int(in.Ref) < p.Graph.NumNodes() && !in.IsComm {
			n := p.Graph.Node(in.Ref)
			if n.Name != "" {
				notes = append(notes, n.Name)
			}
			if in.Ref == p.Graph.Loss {
				notes = append(notes, "loss")
			}
			if !in.FlopsScaled && !isLeafKind(n.Kind) && n.Kind != graph.Expand {
				notes = append(notes, "replicated")
			}
		}
		if len(notes) > 0 {
			line += "  # " + strings.Join(notes, ", ")
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// String renders the program as its disassembly listing.
func (p *Program) String() string {
	var b strings.Builder
	p.Format(&b) // strings.Builder writes cannot fail
	return b.String()
}
