// Structural validation of distributed programs: SSA-style well-formedness
// over the carried graph. The synthesizer produces valid programs by
// construction; the validator is the backstop for hand-built programs,
// decoded JSON, and future optimization passes.

package dist

import (
	"errors"
	"fmt"

	"hap/internal/collective"
	"hap/internal/graph"
)

// Validate checks the program's structural well-formedness:
//
//   - the carried graph itself validates;
//   - every instruction references an existing graph node, and computation
//     op kinds and input lists mirror the node's;
//   - every input of a computation is defined by an earlier instruction
//     (use-before-def), and no tensor is computed twice;
//   - communications redistribute tensors that an earlier instruction
//     produced, with collective dimensions in range for the node's shape;
//   - shard dimensions are -1 (replicated) or in range;
//   - every required output (the loss and each parameter gradient known to
//     the graph) is materialized.
func (p *Program) Validate() error {
	if p.Graph == nil {
		return errors.New("dist: program has no graph")
	}
	g := p.Graph
	if err := g.Validate(); err != nil {
		return fmt.Errorf("dist: carried graph invalid: %w", err)
	}
	defined := make([]bool, g.NumNodes())
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Ref < 0 || int(in.Ref) >= g.NumNodes() {
			return fmt.Errorf("dist: instr %d references node e%d outside the %d-node graph", i, in.Ref, g.NumNodes())
		}
		n := g.Node(in.Ref)
		rank := len(n.Shape)
		if in.IsComm {
			if !defined[in.Ref] {
				return fmt.Errorf("dist: instr %d: collective %v on e%d before it is produced", i, in.Coll, in.Ref)
			}
			switch in.Coll {
			case collective.AllReduce:
				// Operates on full replicas; no dimension to check.
			case collective.PaddedAllGather, collective.GroupedBroadcast, collective.ReduceScatter:
				if in.Dim < 0 || in.Dim >= rank {
					return fmt.Errorf("dist: instr %d: %v dim %d out of range for e%d (shape %v)", i, in.Coll, in.Dim, in.Ref, n.Shape)
				}
			case collective.AllToAll:
				if in.Dim < 0 || in.Dim >= rank || in.Dim2 < 0 || in.Dim2 >= rank {
					return fmt.Errorf("dist: instr %d: all-to-all dims (%d, %d) out of range for e%d (shape %v)", i, in.Dim, in.Dim2, in.Ref, n.Shape)
				}
				if in.Dim == in.Dim2 {
					return fmt.Errorf("dist: instr %d: all-to-all on e%d reshards dim %d onto itself", i, in.Ref, in.Dim)
				}
			default:
				return fmt.Errorf("dist: instr %d: unknown collective kind %d", i, int(in.Coll))
			}
			continue
		}
		if defined[in.Ref] {
			return fmt.Errorf("dist: instr %d: e%d computed twice", i, in.Ref)
		}
		if in.Op != n.Kind {
			return fmt.Errorf("dist: instr %d: op %v does not match node e%d's kind %v", i, in.Op, in.Ref, n.Kind)
		}
		if in.ShardDim < -1 || in.ShardDim >= rank {
			return fmt.Errorf("dist: instr %d: shard dim %d out of range for e%d (shape %v)", i, in.ShardDim, in.Ref, n.Shape)
		}
		if len(in.Inputs) != 0 && !sameIDs(in.Inputs, n.Inputs) {
			return fmt.Errorf("dist: instr %d: inputs %v do not mirror node e%d's inputs %v", i, in.Inputs, in.Ref, n.Inputs)
		}
		for _, u := range n.Inputs {
			if !defined[u] {
				return fmt.Errorf("dist: instr %d: e%d uses e%d before it is defined", i, in.Ref, u)
			}
		}
		defined[in.Ref] = true
	}
	if g.Loss >= 0 && !defined[g.Loss] {
		return fmt.Errorf("dist: loss e%d is never materialized", g.Loss)
	}
	for param, grad := range g.Grads {
		if !defined[grad] {
			return fmt.Errorf("dist: gradient e%d of parameter e%d is never materialized", grad, param)
		}
	}
	return nil
}

func sameIDs(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
