// Stable JSON serialization of distributed programs, so plans can be
// exported, diffed and re-loaded. Op and collective kinds are serialized by
// name (not ordinal), keeping the format robust to enum renumbering; the
// graph travels separately — Decode re-binds the instruction stream to a
// caller-provided graph and validates the result.

package dist

import (
	"encoding/json"
	"fmt"
	"io"

	"hap/internal/collective"
	"hap/internal/graph"
)

// formatVersion is bumped on incompatible changes to the serialized form.
// Version 2 widened the graph fingerprint (now graph.Fingerprint) to cover
// numeric node attributes — scale factors, flop overrides, batch axes.
const formatVersion = 2

// programJSON is the on-disk form of a Program.
type programJSON struct {
	Version   int         `json:"version"`
	Nodes     int         `json:"nodes"`      // graph size, for a readable mismatch message
	GraphHash string      `json:"graph_hash"` // structural fingerprint for binding checks
	Instrs    []instrJSON `json:"instrs"`
}

// instrJSON is one serialized instruction: computations carry op/shard_dim/
// flops_scaled (inputs are rebuilt from the binding graph, which Validate
// guarantees they mirror), communications carry comm/dim/dim2.
type instrJSON struct {
	Ref         int    `json:"ref"`
	Op          string `json:"op,omitempty"`
	ShardDim    *int   `json:"shard_dim,omitempty"`
	FlopsScaled bool   `json:"flops_scaled,omitempty"`
	Comm        string `json:"comm,omitempty"`
	Dim         int    `json:"dim,omitempty"`
	Dim2        int    `json:"dim2,omitempty"`
}

// Encode writes the program as indented (diffable) JSON. The embedded
// graph_hash (graph.Fingerprint) is the binding check: a plan cannot be
// silently re-bound to a graph it was not synthesized for (same topology with
// different shapes costs and shards differently).
func (p *Program) Encode(w io.Writer) error {
	if p.Graph == nil {
		return fmt.Errorf("dist: encode: program has no graph")
	}
	pj := programJSON{
		Version: formatVersion, Nodes: p.Graph.NumNodes(),
		GraphHash: graph.Fingerprint(p.Graph),
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.IsComm {
			pj.Instrs = append(pj.Instrs, instrJSON{
				Ref: int(in.Ref), Comm: in.Coll.String(), Dim: in.Dim, Dim2: in.Dim2,
			})
			continue
		}
		sd := in.ShardDim
		pj.Instrs = append(pj.Instrs, instrJSON{
			Ref: int(in.Ref), Op: in.Op.String(), ShardDim: &sd, FlopsScaled: in.FlopsScaled,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pj)
}

// Decode reads a program written by Encode, binds it to g, and validates it.
func Decode(r io.Reader, g *graph.Graph) (*Program, error) {
	var pj programJSON
	if err := json.NewDecoder(r).Decode(&pj); err != nil {
		return nil, fmt.Errorf("dist: decode: %w", err)
	}
	if pj.Version != formatVersion {
		return nil, fmt.Errorf("dist: decode: unsupported program version %d (want %d)", pj.Version, formatVersion)
	}
	if g == nil {
		return nil, fmt.Errorf("dist: decode: no graph to bind the program to")
	}
	if pj.Nodes != g.NumNodes() {
		return nil, fmt.Errorf("dist: decode: program was synthesized for a %d-node graph, binding graph has %d", pj.Nodes, g.NumNodes())
	}
	if fp := graph.Fingerprint(g); pj.GraphHash != fp {
		return nil, fmt.Errorf("dist: decode: graph fingerprint mismatch (program %s, binding graph %s): the plan was synthesized for a structurally different graph", pj.GraphHash, fp)
	}
	p := &Program{Graph: g}
	for i, ij := range pj.Instrs {
		if ij.Comm != "" {
			k, ok := collective.ParseKind(ij.Comm)
			if !ok {
				return nil, fmt.Errorf("dist: decode: instr %d: unknown collective %q", i, ij.Comm)
			}
			p.Instrs = append(p.Instrs, Comm(graph.NodeID(ij.Ref), k, ij.Dim, ij.Dim2))
			continue
		}
		op, ok := graph.ParseOpKind(ij.Op)
		if !ok {
			return nil, fmt.Errorf("dist: decode: instr %d: unknown op %q", i, ij.Op)
		}
		in := Instruction{Ref: graph.NodeID(ij.Ref), Op: op, ShardDim: -1, FlopsScaled: ij.FlopsScaled}
		if ij.ShardDim != nil {
			in.ShardDim = *ij.ShardDim
		}
		if ij.Ref >= 0 && ij.Ref < g.NumNodes() && !isLeafKind(op) {
			in.Inputs = append(in.Inputs, g.Node(graph.NodeID(ij.Ref)).Inputs...)
		}
		p.Instrs = append(p.Instrs, in)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("dist: decode: %w", err)
	}
	return p, nil
}
