// Compact binary serialization of distributed programs — the serving-path
// counterpart of the diffable JSON form (json.go). A VGG19 plan is ~100 KB
// of JSON; the binary form is a few KB, which matters when hap-serve holds
// thousands of cached plans and trainers fetch them on every cold start.
//
// Like the JSON form, op and collective kinds travel by NAME, not ordinal —
// a string table in the header keeps the format robust to enum renumbering
// while still costing one varint per instruction. The graph travels
// separately: DecodeBinary re-binds the instruction stream to a
// caller-provided graph, checks the embedded fingerprint, and validates.
//
// Layout (all integers are unsigned varints unless noted):
//
//	magic "HAPB" (4 bytes) · version (1 byte)
//	nodes · len(graphHash) · graphHash bytes
//	op-name table:   count · (len · bytes)*
//	coll-name table: count · (len · bytes)*
//	instrs: count · instruction*
//
// Each instruction starts with a flags byte (bit0 comm, bit1 flopsScaled,
// bit2 has non-negative shard dim) and the ref; computations follow with an
// op-table index (and the shard dim when flagged), communications with a
// coll-table index, dim and dim2.
package dist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"hap/internal/collective"
	"hap/internal/graph"
)

// binaryMagic and binaryVersion head every binary program. The version is
// bumped in lockstep with formatVersion: both formats embed the same
// fingerprint semantics.
var binaryMagic = [4]byte{'H', 'A', 'P', 'B'}

const binaryVersion = byte(formatVersion)

const (
	binFlagComm     = 1 << 0
	binFlagScaled   = 1 << 1
	binFlagShardDim = 1 << 2
)

// EncodeBinary writes the program in the compact binary format.
func (p *Program) EncodeBinary(w io.Writer) error {
	if p.Graph == nil {
		return fmt.Errorf("dist: encode binary: program has no graph")
	}
	bw := bufio.NewWriter(w)
	bw.Write(binaryMagic[:])
	bw.WriteByte(binaryVersion)
	var scratch [binary.MaxVarintLen64]byte
	uv := func(v uint64) {
		bw.Write(scratch[:binary.PutUvarint(scratch[:], v)])
	}
	str := func(s string) {
		uv(uint64(len(s)))
		bw.WriteString(s)
	}
	uv(uint64(p.Graph.NumNodes()))
	str(graph.Fingerprint(p.Graph))

	// String tables: every kind used, in first-appearance order.
	opIdx := map[graph.OpKind]uint64{}
	collIdx := map[collective.Kind]uint64{}
	var ops []string
	var colls []string
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.IsComm {
			if _, ok := collIdx[in.Coll]; !ok {
				collIdx[in.Coll] = uint64(len(colls))
				colls = append(colls, in.Coll.String())
			}
		} else if _, ok := opIdx[in.Op]; !ok {
			opIdx[in.Op] = uint64(len(ops))
			ops = append(ops, in.Op.String())
		}
	}
	uv(uint64(len(ops)))
	for _, s := range ops {
		str(s)
	}
	uv(uint64(len(colls)))
	for _, s := range colls {
		str(s)
	}

	uv(uint64(len(p.Instrs)))
	for i := range p.Instrs {
		in := &p.Instrs[i]
		var flags byte
		if in.IsComm {
			flags |= binFlagComm
		}
		if in.FlopsScaled {
			flags |= binFlagScaled
		}
		if !in.IsComm && in.ShardDim >= 0 {
			flags |= binFlagShardDim
		}
		bw.WriteByte(flags)
		uv(uint64(in.Ref))
		if in.IsComm {
			uv(collIdx[in.Coll])
			uv(uint64(in.Dim))
			uv(uint64(in.Dim2))
		} else {
			uv(opIdx[in.Op])
			if in.ShardDim >= 0 {
				uv(uint64(in.ShardDim))
			}
		}
	}
	return bw.Flush()
}

// DecodeBinary reads a program written by EncodeBinary, binds it to g, and
// validates it — mirroring Decode's checks: version, node count, and the
// structural graph fingerprint.
func DecodeBinary(r io.Reader, g *graph.Graph) (*Program, error) {
	fail := func(format string, args ...any) (*Program, error) {
		return nil, fmt.Errorf("dist: decode binary: "+format, args...)
	}
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fail("reading magic: %w", err)
	}
	if magic != binaryMagic {
		return fail("bad magic %q (not a binary program)", magic[:])
	}
	version, err := br.ReadByte()
	if err != nil {
		return fail("reading version: %w", err)
	}
	if version != binaryVersion {
		return fail("unsupported program version %d (want %d)", version, binaryVersion)
	}
	uv := func() (uint64, error) { return binary.ReadUvarint(br) }
	// cap guards length prefixes so a corrupt stream cannot drive huge
	// allocations before the content check fails.
	str := func(cap uint64) (string, error) {
		n, err := uv()
		if err != nil {
			return "", err
		}
		if n > cap {
			return "", fmt.Errorf("string length %d exceeds %d", n, cap)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}

	nodes, err := uv()
	if err != nil {
		return fail("reading node count: %w", err)
	}
	if g == nil {
		return fail("no graph to bind the program to")
	}
	if int(nodes) != g.NumNodes() {
		return fail("program was synthesized for a %d-node graph, binding graph has %d", nodes, g.NumNodes())
	}
	hash, err := str(1024)
	if err != nil {
		return fail("reading graph hash: %w", err)
	}
	if fp := graph.Fingerprint(g); hash != fp {
		return fail("graph fingerprint mismatch (program %s, binding graph %s): the plan was synthesized for a structurally different graph", hash, fp)
	}

	table := func(kind string) ([]string, error) {
		n, err := uv()
		if err != nil {
			return nil, fmt.Errorf("reading %s table size: %w", kind, err)
		}
		if n > 4096 {
			return nil, fmt.Errorf("%s table size %d is implausible", kind, n)
		}
		out := make([]string, n)
		for i := range out {
			if out[i], err = str(256); err != nil {
				return nil, fmt.Errorf("reading %s table entry %d: %w", kind, i, err)
			}
		}
		return out, nil
	}
	opNames, err := table("op")
	if err != nil {
		return fail("%v", err)
	}
	collNames, err := table("collective")
	if err != nil {
		return fail("%v", err)
	}
	ops := make([]graph.OpKind, len(opNames))
	for i, name := range opNames {
		op, ok := graph.ParseOpKind(name)
		if !ok {
			return fail("unknown op %q", name)
		}
		ops[i] = op
	}
	colls := make([]collective.Kind, len(collNames))
	for i, name := range collNames {
		k, ok := collective.ParseKind(name)
		if !ok {
			return fail("unknown collective %q", name)
		}
		colls[i] = k
	}

	count, err := uv()
	if err != nil {
		return fail("reading instruction count: %w", err)
	}
	// A program computes or communicates graph tensors; anything vastly
	// beyond a few instructions per node is corrupt input, not a plan.
	if count > uint64(16*(nodes+1)+1024) {
		return fail("instruction count %d is implausible for a %d-node graph", count, nodes)
	}
	p := &Program{Graph: g, Instrs: make([]Instruction, 0, count)}
	for i := uint64(0); i < count; i++ {
		flags, err := br.ReadByte()
		if err != nil {
			return fail("instr %d: reading flags: %w", i, err)
		}
		ref, err := uv()
		if err != nil {
			return fail("instr %d: reading ref: %w", i, err)
		}
		if flags&binFlagComm != 0 {
			ci, err1 := uv()
			dim, err2 := uv()
			dim2, err3 := uv()
			if err1 != nil || err2 != nil || err3 != nil {
				return fail("instr %d: truncated communication", i)
			}
			if int(ci) >= len(colls) {
				return fail("instr %d: collective index %d out of table range %d", i, ci, len(colls))
			}
			p.Instrs = append(p.Instrs, Comm(graph.NodeID(ref), colls[ci], int(dim), int(dim2)))
			continue
		}
		oi, err := uv()
		if err != nil {
			return fail("instr %d: reading op: %w", i, err)
		}
		if int(oi) >= len(ops) {
			return fail("instr %d: op index %d out of table range %d", i, oi, len(ops))
		}
		in := Instruction{Ref: graph.NodeID(ref), Op: ops[oi], ShardDim: -1, FlopsScaled: flags&binFlagScaled != 0}
		if flags&binFlagShardDim != 0 {
			sd, err := uv()
			if err != nil {
				return fail("instr %d: reading shard dim: %w", i, err)
			}
			in.ShardDim = int(sd)
		}
		if ref < uint64(g.NumNodes()) && !isLeafKind(in.Op) {
			in.Inputs = append(in.Inputs, g.Node(graph.NodeID(ref)).Inputs...)
		}
		p.Instrs = append(p.Instrs, in)
	}
	if err := p.Validate(); err != nil {
		return fail("%w", err)
	}
	return p, nil
}
