package dist

import (
	"bytes"
	"strings"
	"testing"

	"hap/internal/collective"
	"hap/internal/graph"
)

// binaryTestProgram builds a small but representative program: leaf loaders
// (replicated and sharded), scaled and replicated computations, and three
// collective kinds with dims.
func binaryTestProgram(t *testing.T) *Program {
	t.Helper()
	g := graph.New()
	x := g.AddPlaceholder("x", 0, 8, 4)
	w := g.AddParameter("w", 4, 4)
	y := g.AddOp(graph.MatMul, x, w)
	s := g.AddOp(graph.ReLU, y)
	g.SetLoss(g.AddOp(graph.Sum, s))
	p := &Program{Graph: g}
	p.Instrs = append(p.Instrs,
		Instruction{Ref: x, Op: graph.Placeholder, ShardDim: 0},
		Instruction{Ref: w, Op: graph.Parameter, ShardDim: -1},
		Instruction{Ref: y, Op: graph.MatMul, Inputs: []graph.NodeID{x, w}, ShardDim: -1, FlopsScaled: true},
		Comm(y, collective.PaddedAllGather, 0, 0),
		Instruction{Ref: s, Op: graph.ReLU, Inputs: []graph.NodeID{y}, ShardDim: -1},
		Comm(s, collective.AllToAll, 0, 1),
		Instruction{Ref: g.Loss, Op: graph.Sum, Inputs: []graph.NodeID{s}, ShardDim: -1, FlopsScaled: true},
		Comm(g.Loss, collective.AllReduce, 0, 0),
	)
	if err := p.Validate(); err != nil {
		t.Fatalf("test program invalid: %v", err)
	}
	return p
}

func TestBinaryRoundTrip(t *testing.T) {
	p := binaryTestProgram(t)
	var buf bytes.Buffer
	if err := p.EncodeBinary(&buf); err != nil {
		t.Fatalf("EncodeBinary: %v", err)
	}
	back, err := DecodeBinary(bytes.NewReader(buf.Bytes()), p.Graph)
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	if back.String() != p.String() {
		t.Errorf("round trip changed the program:\n%s\nvs\n%s", back, p)
	}
	if len(back.Instrs) != len(p.Instrs) {
		t.Fatalf("round trip: %d instrs, want %d", len(back.Instrs), len(p.Instrs))
	}
	for i := range p.Instrs {
		a, b := p.Instrs[i], back.Instrs[i]
		if a.Ref != b.Ref || a.IsComm != b.IsComm || a.Op != b.Op || a.Coll != b.Coll ||
			a.ShardDim != b.ShardDim || a.FlopsScaled != b.FlopsScaled || a.Dim != b.Dim || a.Dim2 != b.Dim2 {
			t.Errorf("instr %d differs: %+v vs %+v", i, a, b)
		}
	}
}

// The binary and JSON forms must decode to the same program — the binary
// format is a transport optimization, not a semantic fork.
func TestBinaryAgreesWithJSON(t *testing.T) {
	p := binaryTestProgram(t)
	var jb, bb bytes.Buffer
	if err := p.Encode(&jb); err != nil {
		t.Fatal(err)
	}
	if err := p.EncodeBinary(&bb); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := Decode(bytes.NewReader(jb.Bytes()), p.Graph)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := DecodeBinary(bytes.NewReader(bb.Bytes()), p.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if fromJSON.String() != fromBin.String() {
		t.Errorf("JSON and binary decode differently:\n%s\nvs\n%s", fromJSON, fromBin)
	}
	// The point of the format: model-scale plans shrink by an order of
	// magnitude. Even this toy program must be several times smaller.
	if bb.Len()*4 > jb.Len() {
		t.Errorf("binary form is %d bytes, JSON %d — expected at least 4x smaller", bb.Len(), jb.Len())
	}
}

func TestBinaryRejectsCorruptInput(t *testing.T) {
	p := binaryTestProgram(t)
	var buf bytes.Buffer
	if err := p.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("NOPE"), raw[4:]...),
		"bad version": append(append([]byte{}, raw[:4]...), append([]byte{99}, raw[5:]...)...),
		"truncated":   raw[:len(raw)/2],
	}
	for name, in := range cases {
		if _, err := DecodeBinary(bytes.NewReader(in), p.Graph); err == nil {
			t.Errorf("%s: decode succeeded on corrupt input", name)
		}
	}

	// Binding to a structurally different graph must fail on the fingerprint.
	g2 := graph.New()
	x := g2.AddPlaceholder("x", 0, 8, 4)
	w := g2.AddParameter("w", 4, 4)
	y := g2.AddOp(graph.MatMul, x, w)
	s := g2.AddOp(graph.ReLU, y)
	g2.SetLoss(g2.AddOp(graph.Sum, g2.AddScale(s, 0.5))) // extra node
	if _, err := DecodeBinary(bytes.NewReader(raw), g2); err == nil ||
		!strings.Contains(err.Error(), "node") && !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("decode against a different graph: err = %v, want a binding failure", err)
	}
}
