package dist

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"hap/internal/collective"
	"hap/internal/graph"
)

func TestJSONRoundTrip(t *testing.T) {
	g := trainingGraph(t)
	p := dataParallel(t, g)
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	q, err := Decode(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(p.Instrs, q.Instrs) {
		t.Errorf("round-trip changed the program:\n%s\nvs\n%s", p, q)
	}
	if q.Graph != g {
		t.Error("decoded program not bound to the provided graph")
	}
}

func TestEncodeUsesStableNames(t *testing.T) {
	g := trainingGraph(t)
	p := dataParallel(t, g)
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	s := buf.String()
	for _, want := range []string{`"op": "matmul"`, `"comm": "all-reduce"`, `"shard_dim": 0`} {
		if !strings.Contains(s, want) {
			t.Errorf("encoded JSON lacks %s:\n%s", want, s)
		}
	}
	if strings.Contains(s, `"op": 4`) {
		t.Error("op kinds serialized by ordinal, not name")
	}
}

func TestDecodeRejections(t *testing.T) {
	g := trainingGraph(t)
	p := dataParallel(t, g)
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	enc := buf.String()

	cases := []struct {
		name    string
		json    string
		graph   *graph.Graph
		wantSub string
	}{
		{"graph size mismatch", enc, graph.New(), "binding graph"},
		{"unknown op", strings.Replace(enc, `"op": "matmul"`, `"op": "quantum_matmul"`, 1), g, "unknown op"},
		{"unknown collective", strings.Replace(enc, `"comm": "all-reduce"`, `"comm": "teleport"`, 1), g, "unknown collective"},
		{"bad version", strings.Replace(enc, `"version": 2`, `"version": 99`, 1), g, "version"},
		{"not json", "][", g, "decode"},
		{"ill-formed program", strings.Replace(enc, `"shard_dim": 0`, `"shard_dim": 7`, 1), g, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(strings.NewReader(tc.json), tc.graph)
			if err == nil {
				t.Fatal("Decode accepted bad input")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestDecodeRejectsShapeDrift(t *testing.T) {
	// Same topology and node count, different tensor shapes: the structural
	// fingerprint must refuse the binding — the plan's sharding and cost were
	// optimized for different shapes.
	g := trainingGraph(t)
	g2 := graph.New()
	x := g2.AddPlaceholder("x", 0, 4, 9)
	w := g2.AddParameter("w", 9, 2)
	y := g2.AddOp(graph.MatMul, x, w)
	g2.SetLoss(g2.AddOp(graph.Sum, y))
	ones := g2.AddOnes()
	gy := g2.AddExpand(ones, g2.Node(y).Shape)
	xt := g2.AddOp(graph.Transpose, x)
	g2.Grads[w] = g2.AddOp(graph.MatMul, xt, gy)

	p := dataParallel(t, g)
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	_, err := Decode(bytes.NewReader(buf.Bytes()), g2)
	if err == nil {
		t.Fatal("Decode bound a plan to a graph with different shapes")
	}
	if !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestDecodedProgramIsValidatedStructurally(t *testing.T) {
	// A syntactically fine JSON whose instruction order is ill-formed must be
	// rejected by the decoder's validation pass.
	g := trainingGraph(t)
	p := &Program{Graph: g, Instrs: []Instruction{
		{Ref: 2, Op: graph.MatMul, Inputs: []graph.NodeID{0, 1}, ShardDim: -1, FlopsScaled: true},
	}}
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, err := Decode(bytes.NewReader(buf.Bytes()), g); err == nil {
		t.Fatal("Decode accepted a use-before-def program")
	}
}

func TestParseKindsCoverAllNames(t *testing.T) {
	for _, k := range []collective.Kind{
		collective.AllReduce, collective.PaddedAllGather,
		collective.GroupedBroadcast, collective.ReduceScatter, collective.AllToAll,
	} {
		got, ok := collective.ParseKind(k.String())
		if !ok || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, ok)
		}
	}
	for _, op := range []graph.OpKind{graph.Placeholder, graph.MatMul, graph.CombineGradG, graph.PoolGrad} {
		got, ok := graph.ParseOpKind(op.String())
		if !ok || got != op {
			t.Errorf("ParseOpKind(%q) = %v, %v", op.String(), got, ok)
		}
	}
}
