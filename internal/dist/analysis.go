// Program analyses: summary statistics and dead-code elimination.

package dist

import "hap/internal/collective"

// Stats summarizes a program for reporting and experiments.
type Stats struct {
	// Instrs is the total instruction count.
	Instrs int
	// Comms is the number of communication instructions.
	Comms int
	// FlopsScaled is the number of computations whose per-device flops scale
	// with the sharding ratio (the rest execute replicated).
	FlopsScaled int
	// PerCollective histograms the communication instructions by kind.
	PerCollective map[collective.Kind]int
}

// Stats computes the program's summary statistics.
func (p *Program) Stats() Stats {
	s := Stats{Instrs: len(p.Instrs), PerCollective: map[collective.Kind]int{}}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.IsComm {
			s.Comms++
			s.PerCollective[in.Coll]++
		} else if in.FlopsScaled {
			s.FlopsScaled++
		}
	}
	return s
}

// CollectiveCount histograms the communication instructions by kind
// (shorthand for Stats().PerCollective).
func (p *Program) CollectiveCount() map[collective.Kind]int {
	return p.Stats().PerCollective
}

// Prune removes instructions whose results cannot reach a required output
// (the loss or a parameter gradient), returning the number removed. The
// synthesizer's fused-leaf optimization (Sec. 4.5) can leave such dead code
// behind: a leaf loader or intermediate emitted for a triple whose consumer
// a cheaper alternative later displaced. Communications on dead tensors are
// removed with them; programs with no designated outputs are left untouched.
func (p *Program) Prune() int {
	g := p.Graph
	if g == nil {
		return 0 // no graph: no outputs to anchor liveness
	}
	needed := make([]bool, g.NumNodes())
	anchored := false
	if g.Loss >= 0 {
		needed[g.Loss] = true
		anchored = true
	}
	for _, grad := range g.Grads {
		needed[grad] = true
		anchored = true
	}
	if !anchored {
		return 0
	}
	live := make([]bool, len(p.Instrs))
	for i := len(p.Instrs) - 1; i >= 0; i-- {
		in := &p.Instrs[i]
		if !needed[in.Ref] {
			continue
		}
		live[i] = true
		if !in.IsComm {
			for _, u := range g.Node(in.Ref).Inputs {
				needed[u] = true
			}
		}
	}
	kept := p.Instrs[:0]
	removed := 0
	for i := range p.Instrs {
		if live[i] {
			kept = append(kept, p.Instrs[i])
		} else {
			removed++
		}
	}
	p.Instrs = kept
	return removed
}
