// Model-scale binary-encoding checks live in an external test package: they
// synthesize a real VGG19 plan through internal/synth, which imports dist.
package dist_test

import (
	"bytes"
	"context"
	"testing"

	"hap/internal/cluster"
	"hap/internal/cost"
	"hap/internal/dist"
	"hap/internal/models"
	"hap/internal/synth"
	"hap/internal/theory"
)

// A real model-scale program must round-trip through the binary form and
// come out an order of magnitude smaller than the JSON form — the reason
// the format exists (ROADMAP ISSUE 1 follow-up).
func TestBinaryModelScaleRoundTripAndSize(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesizes a VGG19 plan")
	}
	c := cluster.PaperHeterogeneous(1)
	g := models.Build(models.ModelVGG19, c.TotalGPUs())
	b := cost.UniformRatios(g.NumSegments(), c.ProportionalRatios())
	p, _, err := synth.Synthesize(context.Background(), g, theory.New(g), c, b, synth.Options{BeamWidth: 48})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}

	var jb, bb bytes.Buffer
	if err := p.Encode(&jb); err != nil {
		t.Fatal(err)
	}
	if err := p.EncodeBinary(&bb); err != nil {
		t.Fatal(err)
	}
	back, err := dist.DecodeBinary(bytes.NewReader(bb.Bytes()), g)
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	if back.String() != p.String() {
		t.Error("model-scale round trip changed the program")
	}
	t.Logf("VGG19 program: %d instrs, JSON %d bytes, binary %d bytes (%.1fx smaller)",
		len(p.Instrs), jb.Len(), bb.Len(), float64(jb.Len())/float64(bb.Len()))
	if bb.Len()*10 > jb.Len() {
		t.Errorf("binary form is %d bytes, JSON %d — expected at least 10x smaller at model scale", bb.Len(), jb.Len())
	}
}
