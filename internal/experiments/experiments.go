// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 7) plus the motivating measurements (Figs. 2 and 4) on
// the simulated substrate. Each generator returns a Report whose rows are
// the series the paper plots; cmd/hap-bench prints them and bench_test.go
// wraps them as benchmarks. EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"hap/internal/baselines"
	"hap/internal/cluster"
	"hap/internal/collective"
	"hap/internal/cost"
	"hap/internal/graph"
	"hap/internal/hapopt"
	"hap/internal/models"
	"hap/internal/sim"
	"hap/internal/synth"
	"hap/internal/theory"
)

// Report is a printable experiment result.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	return b.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// Quick reduces problem sizes for fast runs (unit tests); full runs use the
// paper's scales.
type Config struct {
	Quick bool
}

func (c Config) gpuScalesHet() []int {
	if c.Quick {
		return []int{1}
	}
	return []int{1, 2, 4, 8} // ×8 machines ⇒ 8,16,32,64 GPUs (Fig. 13)
}

func (c Config) gpuScalesHom() []int {
	if c.Quick {
		return []int{2}
	}
	return []int{2, 4, 6, 8} // ×4 machines ⇒ 8,16,24,32 GPUs (Fig. 14)
}

// buildModel constructs a (possibly reduced) training graph for a benchmark.
func (c Config) buildModel(m models.PaperModel, devices int) *graph.Graph {
	if !c.Quick {
		return models.Build(m, devices)
	}
	// Quick mode: third-scale models with the same structure.
	batch := models.PerDeviceBatch(m) * devices
	switch m {
	case models.ModelVGG19:
		return models.Training(models.VGG19(batch, 64, 10))
	case models.ModelViT:
		cfg := models.ViTConfig()
		cfg.Layers = 3
		return models.Training(models.ViT(cfg, batch*cfg.SeqLen/4, 16*16*3, 10))
	case models.ModelBERTBase:
		cfg := models.BERTBase()
		cfg.Layers = 4
		cfg.Vocab = 8192
		return models.Training(models.BERT(cfg, batch*32))
	case models.ModelBERTMoE:
		cfg := models.BERTMoE(devices)
		cfg.Layers = 4
		cfg.Vocab = 8192
		return models.Training(models.BERT(cfg, batch*32))
	}
	panic("unknown model")
}

func (c Config) hapOpts() hapopt.Options {
	o := hapopt.Options{Synth: synth.Auto()}
	if c.Quick {
		o.MaxIterations = 2
	}
	return o
}

// runHAP optimizes with HAP and returns the simulated iteration time.
func (c Config) runHAP(g *graph.Graph, cl *cluster.Cluster, seed int64) (float64, *hapopt.Result, error) {
	res, err := hapopt.Optimize(context.Background(), g, cl, c.hapOpts())
	if err != nil {
		return 0, nil, err
	}
	return sim.IterationTime(cl, res.Program, res.Ratios, seed), res, nil
}

func simPlan(cl *cluster.Cluster, p *baselines.Plan, seed int64) string {
	if p.OOM {
		return "OOM"
	}
	return f3(sim.IterationTime(cl, p.Program, p.Ratios, seed))
}

// Table1 reports the benchmark models' parameter counts.
func Table1(c Config) *Report {
	r := &Report{ID: "table1", Title: "Benchmark models",
		Header: []string{"model", "task", "params(M)", "paper(M)"}}
	rows := []struct {
		m     models.PaperModel
		task  string
		paper string
		g     *graph.Graph
	}{
		{models.ModelVGG19, "Image Classification", "133", models.VGG19(1, 224, 10)},
		{models.ModelViT, "Image Classification", "54", models.ViT(models.ViTConfig(), 197, 768, 10)},
		{models.ModelBERTBase, "Language Model", "102", models.BERT(models.BERTBase(), 128)},
		{models.ModelBERTMoE, "Language Model", "84+36m (ours: 84+28m)", models.BERT(models.BERTMoE(8), 128)},
	}
	for _, row := range rows {
		r.Rows = append(r.Rows, []string{string(row.m), row.task,
			fmt.Sprintf("%.1f", float64(row.g.ParameterCount())/1e6), row.paper})
	}
	return r
}

// Fig2 sweeps the computation-to-communication ratio of an FC layer on the
// P100+A100 pair and compares CP and EV sharding ratios (Sec. 2.4).
func Fig2(c Config) *Report {
	r := &Report{ID: "fig2", Title: "CP vs EV under varying computation-to-communication ratio",
		Header: []string{"batch", "comp/comm", "CP(s)", "EV(s)"}}
	cl := cluster.PaperP100A100Pair()
	// Under data parallelism both computation and gradient volume scale
	// with hidden², so the computation-to-communication ratio is steered by
	// the batch size (the paper steers it with the hidden dim under model
	// parallelism; the trade-off probed is the same).
	batches := []int{64, 256, 1024, 4096, 16384}
	if c.Quick {
		batches = []int{64, 1024, 16384}
	}
	const h = 512
	for _, batch := range batches {
		g := models.Training(models.MLP(batch, h, h, h))
		p, err := baselines.DPCP(g, cl)
		if err != nil {
			continue
		}
		cp := cost.Evaluate(cl, p.Program, cost.UniformRatios(1, cl.ProportionalRatios()))
		ev := cost.Evaluate(cl, p.Program, cost.UniformRatios(1, cl.EvenRatios()))
		model := cost.Extract(cl, p.Program)
		comm := 0.0
		for i := range model.Stages {
			comm += model.Stages[i].CommConst
		}
		ratio := 0.0
		if comm > 0 {
			ratio = (cp - comm) / comm
		}
		r.Rows = append(r.Rows, []string{fmt.Sprint(batch), f3(ratio), f3(cp), f3(ev)})
	}
	return r
}

// Fig4 sweeps shard skew for a 4 MB tensor and reports the effective
// bandwidth of padded All-Gather vs grouped Broadcast (Sec. 2.5.1).
func Fig4(c Config) *Report {
	r := &Report{ID: "fig4", Title: "Padded All-Gather vs grouped Broadcast (4MB tensor)",
		Header: []string{"maxRatio", "padded(GB/s)", "grouped(GB/s)"}}
	cl := cluster.FromGPUs(cluster.DefaultNetwork(),
		cluster.MachineSpec{Type: cluster.A100, GPUs: 2},
		cluster.MachineSpec{Type: cluster.A100, GPUs: 2})
	const bytes = 4 << 20
	step := 0.05
	if c.Quick {
		step = 0.15
	}
	for mr := 0.25; mr <= 1.0001; mr += step {
		rest := (1 - mr) / 3
		ratios := []float64{mr, rest, rest, rest}
		pad := collective.Time(cl, collective.PaddedAllGather, bytes, ratios)
		grp := collective.Time(cl, collective.GroupedBroadcast, bytes, ratios)
		r.Rows = append(r.Rows, []string{f3(mr), f3(bytes / pad / 1e9), f3(bytes / grp / 1e9)})
	}
	return r
}

// systemsRow runs all systems on one model×cluster point.
func (c Config) systemsRow(m models.PaperModel, cl *cluster.Cluster, devices int, withCP bool) []string {
	g := c.buildModel(m, devices)
	row := []string{string(m), fmt.Sprint(cl.TotalGPUs())}
	if hapT, _, err := c.runHAP(g, cl, 1); err == nil {
		row = append(row, f3(hapT))
	} else {
		row = append(row, "ERR")
	}
	if p, err := baselines.DPEV(g, cl); err == nil {
		row = append(row, simPlan(cl, p, 2))
	} else {
		row = append(row, "ERR")
	}
	if withCP {
		if p, err := baselines.DPCP(g, cl); err == nil {
			row = append(row, simPlan(cl, p, 3))
		} else {
			row = append(row, "ERR")
		}
	}
	if p, err := baselines.DeepSpeed(g, cl); err == nil {
		row = append(row, simPlan(cl, p, 4))
	} else {
		row = append(row, "ERR")
	}
	// TAG runs only on VGG19 and BERT-Base (Sec. 7.1).
	if m == models.ModelVGG19 || m == models.ModelBERTBase {
		if p, err := baselines.TAG(g, cl); err == nil {
			row = append(row, simPlan(cl, p, 5))
		} else {
			row = append(row, "ERR")
		}
	} else {
		row = append(row, "-")
	}
	return row
}

// Fig13 reproduces per-iteration time on the heterogeneous cluster.
func Fig13(c Config) *Report {
	r := &Report{ID: "fig13", Title: "Per-iteration time, heterogeneous cluster (2×8 V100 + 6×8 P100)",
		Header: []string{"model", "GPUs", "HAP(s)", "DP-EV(s)", "DP-CP(s)", "DeepSpeed(s)", "TAG(s)"}}
	for _, m := range models.AllPaperModels {
		for _, k := range c.gpuScalesHet() {
			cl := cluster.PaperHeterogeneous(k)
			r.Rows = append(r.Rows, c.systemsRow(m, cl, cl.TotalGPUs(), true))
		}
	}
	return r
}

// Fig14 reproduces per-iteration time on the homogeneous subset.
func Fig14(c Config) *Report {
	r := &Report{ID: "fig14", Title: "Per-iteration time, homogeneous cluster (4×8 P100)",
		Header: []string{"model", "GPUs", "HAP(s)", "DP-EV(s)", "DeepSpeed(s)", "TAG(s)"}}
	for _, m := range models.AllPaperModels {
		for _, k := range c.gpuScalesHom() {
			cl := cluster.PaperHomogeneous(k)
			r.Rows = append(r.Rows, c.systemsRow(m, cl, cl.TotalGPUs(), false))
		}
	}
	return r
}

// Fig15 reproduces the ablation study: DP-EV → +Q → +B → +C throughput.
func Fig15(c Config) *Report {
	r := &Report{ID: "fig15", Title: "Ablation: throughput relative to DP-EV (%)",
		Header: []string{"model", "DP-EV", "+Q", "+QB", "+QBC"}}
	k := 8
	if c.Quick {
		k = 1
	}
	cl := cluster.PaperHeterogeneous(k)
	for _, m := range models.AllPaperModels {
		g := c.buildModel(m, cl.TotalGPUs())
		base := math.Inf(1)
		if p, err := baselines.DPEV(g, cl); err == nil && !p.OOM {
			base = sim.IterationTime(cl, p.Program, p.Ratios, 10)
		}
		noOpt := synth.Auto()
		noOpt.DisableGroupedBroadcast = true
		noOpt.DisableSFB = true
		variant := func(o hapopt.Options) string {
			res, err := hapopt.Optimize(context.Background(), g, cl, o)
			if err != nil {
				return "ERR"
			}
			t := sim.IterationTime(cl, res.Program, res.Ratios, 10)
			if math.IsInf(base, 1) {
				return "DP-OOM/" + f3(t)
			}
			return fmt.Sprintf("%.0f", base/t*100)
		}
		q := variant(hapopt.Options{Synth: noOpt, SkipBalance: true,
			InitialRatios: cl.EvenRatios(), MaxIterations: c.hapOpts().MaxIterations})
		qb := variant(hapopt.Options{Synth: noOpt, MaxIterations: c.hapOpts().MaxIterations})
		qbc := variant(c.hapOpts())
		r.Rows = append(r.Rows, []string{string(m), "100", q, qb, qbc})
	}
	return r
}

// Fig16 compares HAP on the whole heterogeneous cluster against training
// two models concurrently on homogeneous subclusters.
func Fig16(c Config) *Report {
	r := &Report{ID: "fig16", Title: "HAP vs concurrent subcluster training (total throughput %)",
		Header: []string{"model", "concurrent(V100)", "concurrent(P100)", "HAP(%)"}}
	k := 8
	if c.Quick {
		k = 1
	}
	full := cluster.PaperHeterogeneous(k)
	v100s := cluster.FromMachines(cluster.DefaultNetwork(), k,
		cluster.MachineSpec{Type: cluster.V100, GPUs: 8}, cluster.MachineSpec{Type: cluster.V100, GPUs: 8})
	p100s := cluster.FromMachines(cluster.DefaultNetwork(), k,
		cluster.MachineSpec{Type: cluster.P100, GPUs: 8}, cluster.MachineSpec{Type: cluster.P100, GPUs: 8},
		cluster.MachineSpec{Type: cluster.P100, GPUs: 8}, cluster.MachineSpec{Type: cluster.P100, GPUs: 8},
		cluster.MachineSpec{Type: cluster.P100, GPUs: 8}, cluster.MachineSpec{Type: cluster.P100, GPUs: 8})
	for _, m := range models.AllPaperModels {
		thr := func(cl *cluster.Cluster) float64 {
			g := c.buildModel(m, cl.TotalGPUs())
			t, _, err := c.runHAP(g, cl, 20)
			if err != nil {
				return 0
			}
			return float64(models.PerDeviceBatch(m)*cl.TotalGPUs()) / t
		}
		tv, tp, th := thr(v100s), thr(p100s), thr(full)
		total := tv + tp
		if total == 0 {
			continue
		}
		r.Rows = append(r.Rows, []string{string(m),
			fmt.Sprintf("%.0f", tv/total*100), fmt.Sprintf("%.0f", tp/total*100),
			fmt.Sprintf("%.0f", th/total*100)})
	}
	return r
}

// Fig17 reproduces uneven expert placement: BERT-MoE with 4..32 experts on
// 2×A100 + 2×P100, HAP vs DeepSpeed (which pads experts to a multiple of 4).
func Fig17(c Config) *Report {
	r := &Report{ID: "fig17", Title: "BERT-MoE uneven expert placement (2×A100 + 2×P100)",
		Header: []string{"experts", "HAP(s)", "DeepSpeed(s)", "padded-experts"}}
	cl := cluster.PaperA100P100()
	counts := []int{4, 8, 12, 16, 20, 24, 28, 32}
	layers := 4
	if c.Quick {
		counts = []int{4, 6, 8}
		layers = 2
	}
	for _, e := range counts {
		build := func(experts int) *graph.Graph {
			cfg := models.BERTMoE(4)
			cfg.Experts = experts
			cfg.Layers = layers
			cfg.Vocab = 8192
			// Tokens proportional to experts to keep per-expert load fixed.
			return models.Training(models.BERT(cfg, 256*e))
		}
		row := []string{fmt.Sprint(e)}
		if t, _, err := c.runHAP(build(e), cl, int64(e)); err == nil {
			row = append(row, f3(t))
		} else {
			row = append(row, "ERR")
		}
		padded := baselines.PadExperts(e, cl.M())
		if p, err := baselines.DeepSpeed(build(padded), cl); err == nil {
			row = append(row, simPlan(cl, p, int64(e)), fmt.Sprint(padded))
		} else {
			row = append(row, "ERR", fmt.Sprint(padded))
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}

// Fig18 compares the cost model's estimate against simulated "actual" time
// across BERT variants and reports the Pearson correlation.
func Fig18(c Config) *Report {
	r := &Report{ID: "fig18", Title: "Cost model accuracy (BERT variants)",
		Header: []string{"layers", "hidden", "estimated(s)", "actual(s)"}}
	cl := cluster.PaperHeterogeneous(1)
	layerSet := []int{2, 4, 6, 8}
	hiddenSet := []int{256, 512, 768}
	if c.Quick {
		layerSet = []int{2, 4}
		hiddenSet = []int{256, 512}
	}
	var est, act []float64
	for _, l := range layerSet {
		for _, h := range hiddenSet {
			cfg := models.TransformerConfig{Layers: l, Hidden: h, FFN: 4 * h, SeqLen: 128, Vocab: 8192}
			g := models.Training(models.BERT(cfg, 64*8*32))
			res, err := hapopt.Optimize(context.Background(), g, cl, c.hapOpts())
			if err != nil {
				continue
			}
			e := res.Cost
			a := sim.IterationTime(cl, res.Program, res.Ratios, int64(l*100+h))
			est = append(est, e)
			act = append(act, a)
			r.Rows = append(r.Rows, []string{fmt.Sprint(l), fmt.Sprint(h), f3(e), f3(a)})
		}
	}
	r.Rows = append(r.Rows, []string{"pearson", "", f3(Pearson(est, act)), ""})
	return r
}

// Fig19 measures program-synthesis time as the layer count grows.
func Fig19(c Config) *Report {
	r := &Report{ID: "fig19", Title: "Program synthesis time vs model depth (ViT)",
		Header: []string{"layers", "synthesis(s)", "instructions"}}
	cl := cluster.PaperHeterogeneous(1)
	layerSet := []int{2, 4, 8, 12, 16, 20, 24}
	if c.Quick {
		layerSet = []int{2, 4, 8}
	}
	for _, l := range layerSet {
		cfg := models.ViTConfig()
		cfg.Layers = l
		g := models.Training(models.ViT(cfg, 64*8*cfg.SeqLen/4, 768, 10))
		th := theory.New(g)
		b := cost.UniformRatios(1, cl.ProportionalRatios())
		start := time.Now()
		p, _, err := synth.Synthesize(context.Background(), g, th, cl, b, synth.Auto())
		if err != nil {
			r.Rows = append(r.Rows, []string{fmt.Sprint(l), "ERR", ""})
			continue
		}
		r.Rows = append(r.Rows, []string{fmt.Sprint(l),
			f3(time.Since(start).Seconds()), fmt.Sprint(len(p.Instrs))})
	}
	return r
}

// Pearson returns the Pearson correlation coefficient of two series.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		return 0
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var num, dx, dy float64
	for i := range x {
		num += (x[i] - mx) * (y[i] - my)
		dx += (x[i] - mx) * (x[i] - mx)
		dy += (y[i] - my) * (y[i] - my)
	}
	if dx == 0 || dy == 0 {
		return 0
	}
	return num / math.Sqrt(dx*dy)
}

// All lists the experiment generators by id.
var All = map[string]func(Config) *Report{
	"table1": Table1, "fig2": Fig2, "fig4": Fig4, "fig13": Fig13, "fig14": Fig14,
	"fig15": Fig15, "fig16": Fig16, "fig17": Fig17, "fig18": Fig18, "fig19": Fig19,
}

// Order is the presentation order of experiment ids.
var Order = []string{"table1", "fig2", "fig4", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19"}
