package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

var quick = Config{Quick: true}

func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("not a number: %q", s)
	}
	return v
}

func TestTable1(t *testing.T) {
	r := Table1(quick)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if v := parse(t, r.Rows[0][2]); v < 110 || v > 155 {
		t.Errorf("VGG19 params %v, want ≈133M", v)
	}
}

func TestFig2CrossoverDirection(t *testing.T) {
	r := Fig2(quick)
	if len(r.Rows) < 2 {
		t.Fatal("too few rows")
	}
	// At the lowest comp/comm ratio EV should not lose badly; at the
	// highest, CP must win (it balances compute).
	last := r.Rows[len(r.Rows)-1]
	cp, ev := parse(t, last[2]), parse(t, last[3])
	if cp > ev {
		t.Errorf("at high comp/comm CP (%v) should beat EV (%v)", cp, ev)
	}
	first := r.Rows[0]
	cp0, ev0 := parse(t, first[2]), parse(t, first[3])
	if ev0/cp0 > 1.05 {
		t.Errorf("at low comp/comm EV (%v) should be competitive with CP (%v)", ev0, cp0)
	}
}

func TestFig4Shape(t *testing.T) {
	r := Fig4(quick)
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if parse(t, first[1]) <= parse(t, first[2]) {
		t.Error("padded AG should win at even sharding")
	}
	if parse(t, last[1]) >= parse(t, last[2]) {
		t.Error("grouped broadcast should win at full skew")
	}
}

func TestFig13QuickHAPCompetitive(t *testing.T) {
	r := Fig13(quick)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		hap := parse(t, row[2])
		// HAP must beat or match every finishing baseline (small tolerance
		// for simulator noise).
		for i := 3; i < len(row); i++ {
			cell := row[i]
			if cell == "OOM" || cell == "ERR" || cell == "-" {
				continue
			}
			if b := parse(t, cell); hap > b*1.10 {
				t.Errorf("%s: HAP %.3fs slower than %s %.3fs", row[0], hap, r.Header[i], b)
			}
		}
	}
}

func TestFig15AblationMonotone(t *testing.T) {
	r := Fig15(quick)
	for _, row := range r.Rows {
		if strings.Contains(row[1]+row[2]+row[3], "ERR") {
			t.Errorf("%s: ablation error: %v", row[0], row)
			continue
		}
		if strings.HasPrefix(row[2], "DP-OOM") {
			continue // DP baseline OOM: ratios not comparable
		}
		q, qbc := parse(t, row[2]), parse(t, row[4])
		if qbc < q*0.9 {
			t.Errorf("%s: full HAP (%v%%) much worse than Q-only (%v%%)", row[0], qbc, q)
		}
		if q < 95 {
			t.Errorf("%s: +Q (%v%%) should not be slower than DP-EV", row[0], q)
		}
	}
}

func TestFig17HAPSmoothVsDeepSpeedStaircase(t *testing.T) {
	r := Fig17(quick)
	// DeepSpeed pads; with a non-multiple expert count it trains a larger
	// model, so HAP (exact count) should be at least as fast there.
	for _, row := range r.Rows {
		e := row[0]
		if row[1] == "ERR" || row[2] == "ERR" || row[2] == "OOM" {
			continue
		}
		hap, ds := parse(t, row[1]), parse(t, row[2])
		padded := row[3]
		if padded != e && hap > ds*1.15 {
			t.Errorf("experts=%s (padded to %s): HAP %.3f should not lose to DeepSpeed %.3f", e, padded, hap, ds)
		}
	}
}

func TestFig18UnderestimatesWithHighCorrelation(t *testing.T) {
	r := Fig18(quick)
	var est, act []float64
	for _, row := range r.Rows {
		if row[0] == "pearson" {
			if p := parse(t, row[2]); p < 0.9 {
				t.Errorf("Pearson %v, want ≥ 0.9 (paper: 0.97)", p)
			}
			continue
		}
		e, a := parse(t, row[2]), parse(t, row[3])
		est = append(est, e)
		act = append(act, a)
		if e > a*1.02 {
			t.Errorf("cost model over-estimates: est %v > actual %v", e, a)
		}
	}
	if len(est) < 3 {
		t.Fatal("too few variants")
	}
}

func TestFig19SynthesisSecondsAndGrowth(t *testing.T) {
	r := Fig19(quick)
	prev := 0.0
	for _, row := range r.Rows {
		if row[1] == "ERR" {
			t.Fatalf("synthesis failed at %s layers", row[0])
		}
		v := parse(t, row[1])
		if v > 30 {
			t.Errorf("synthesis at %s layers took %vs, paper reports seconds", row[0], v)
		}
		if v < prev*0.3 {
			t.Errorf("synthesis time should grow with layers: %v after %v", v, prev)
		}
		prev = v
	}
}

func TestPearson(t *testing.T) {
	if p := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(p-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", p)
	}
	if p := Pearson([]float64{1, 2, 3}, []float64{3, 2, 1}); math.Abs(p+1) > 1e-12 {
		t.Errorf("perfect anti-correlation = %v", p)
	}
}

func TestReportString(t *testing.T) {
	r := Fig4(quick)
	s := r.String()
	if !strings.Contains(s, "fig4") || !strings.Contains(s, "maxRatio") {
		t.Errorf("bad rendering:\n%s", s)
	}
}
