// Package sim is the testbed substitute: it "runs" a distributed program on
// the modeled cluster and reports the actual per-iteration time, including
// the effects the analytic cost model of Sec. 3.2 deliberately ignores —
// per-kernel launch overhead, per-stage barrier synchronization, and slow
// multiplicative link-efficiency noise. The analytic model therefore
// under-estimates the simulated time while remaining strongly correlated
// with it, which is exactly the relationship Fig. 18 reports against the
// real testbed.
//
// The simulator also emits Chrome-trace JSON like the artifact's
// trace.json.gz for inspection in the Chrome tracing UI.
package sim

import (
	"encoding/json"
	"io"
	"math/rand"

	"hap/internal/cluster"
	"hap/internal/cost"
	"hap/internal/dist"
)

// Options tunes the simulated overheads.
type Options struct {
	// KernelOverhead is charged per computation instruction per device
	// (default 8µs, a typical CUDA launch).
	KernelOverhead float64
	// BarrierOverhead is charged per synchronization stage (default 25µs).
	BarrierOverhead float64
	// NoiseSigma is the relative σ of the per-collective efficiency noise
	// (default 0.03). Negative disables noise entirely — the deterministic
	// mode program-rewrite tests compare simulated times in.
	NoiseSigma float64
	// Seed makes runs reproducible.
	Seed int64
}

func (o *Options) defaults() {
	if o.KernelOverhead == 0 {
		o.KernelOverhead = 8e-6
	}
	if o.BarrierOverhead == 0 {
		o.BarrierOverhead = 25e-6
	}
	if o.NoiseSigma == 0 {
		o.NoiseSigma = 0.03
	}
}

// TraceEvent is one Chrome-trace "X" (complete) event.
type TraceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

// Result of a simulated training iteration.
type Result struct {
	// Time is the simulated per-iteration wall time in seconds.
	Time float64
	// CommTime is the portion spent in collectives (on the critical path).
	CommTime float64
	// Events is the Chrome-trace timeline.
	Events []TraceEvent
}

// Run simulates one training iteration of program p under ratios b.
func Run(c *cluster.Cluster, p *dist.Program, b [][]float64, opt Options) *Result {
	opt.defaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	g := p.Graph
	m := c.M()
	res := &Result{}

	clock := 0.0 // global (stage-synchronized) time, seconds
	emit := func(name, cat string, dev int, start, dur float64) {
		res.Events = append(res.Events, TraceEvent{
			Name: name, Cat: cat, Ph: "X",
			TS: start * 1e6, Dur: dur * 1e6, PID: 0, TID: dev,
		})
	}

	for _, st := range cost.Stages(p) {
		stageStart := clock
		commDur := 0.0
		if st.Comm != nil && m > 1 {
			commDur = cost.CommTime(c, g, *st.Comm, b)
			if opt.NoiseSigma > 0 {
				commDur *= 1 + opt.NoiseSigma*rng.NormFloat64()
				if commDur < 0 {
					commDur = 0
				}
			}
			for j := 0; j < m; j++ {
				emit(st.Comm.String(), "comm", j, stageStart, commDur)
			}
			res.CommTime += commDur
		}
		// Per-device computation, including intra-machine aggregation and
		// per-kernel launch overheads.
		comp := make([]float64, m)
		if st.Comm != nil {
			cost.AddIntraPenalty(c, g, *st.Comm, b, comp)
		}
		for _, in := range st.Comps {
			seg := g.Segment(in.Ref)
			flops := g.Flops(in.Ref)
			for j, d := range c.Devices {
				f := flops
				if in.FlopsScaled {
					f *= b[seg][j]
				}
				dur := f/d.Flops() + opt.KernelOverhead
				emit(in.String(), "comp", j, stageStart+commDur+comp[j], dur)
				comp[j] += dur
			}
		}
		worst := 0.0
		for _, v := range comp {
			if v > worst {
				worst = v
			}
		}
		clock = stageStart + commDur + worst + opt.BarrierOverhead
	}
	res.Time = clock
	return res
}

// IterationTime is the scalar convenience wrapper used by the experiments.
func IterationTime(c *cluster.Cluster, p *dist.Program, b [][]float64, seed int64) float64 {
	return Run(c, p, b, Options{Seed: seed}).Time
}

// WriteTrace writes the Chrome-trace JSON ({"traceEvents": [...]}).
func WriteTrace(w io.Writer, events []TraceEvent) error {
	return json.NewEncoder(w).Encode(map[string]interface{}{"traceEvents": events})
}
