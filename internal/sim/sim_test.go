package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"hap/internal/cluster"
	"hap/internal/cost"
	"hap/internal/models"
	"hap/internal/synth"
	"hap/internal/theory"
)

func plan(t *testing.T) (*cluster.Cluster, [][]float64, *Result) {
	t.Helper()
	c := cluster.FromGPUs(cluster.DefaultNetwork(),
		cluster.MachineSpec{Type: cluster.V100, GPUs: 1},
		cluster.MachineSpec{Type: cluster.P100, GPUs: 1})
	g := models.Training(models.MLP(256, 64, 128, 10))
	b := cost.UniformRatios(1, c.ProportionalRatios())
	p, _, err := synth.Synthesize(context.Background(), g, theory.New(g), c, b, synth.Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	return c, b, Run(c, p, b, Options{Seed: 1})
}

func TestSimulatedTimeExceedsAnalytic(t *testing.T) {
	c := cluster.FromGPUs(cluster.DefaultNetwork(),
		cluster.MachineSpec{Type: cluster.V100, GPUs: 1},
		cluster.MachineSpec{Type: cluster.P100, GPUs: 1})
	g := models.Training(models.MLP(256, 64, 128, 10))
	b := cost.UniformRatios(1, c.ProportionalRatios())
	p, stats, err := synth.Synthesize(context.Background(), g, theory.New(g), c, b, synth.Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	actual := Run(c, p, b, Options{Seed: 1}).Time
	if actual <= stats.Cost {
		t.Errorf("simulated %v should exceed analytic %v (kernel+barrier overheads)", actual, stats.Cost)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	_, _, r1 := plan(t)
	_, _, r2 := plan(t)
	if r1.Time != r2.Time {
		t.Errorf("non-deterministic: %v vs %v", r1.Time, r2.Time)
	}
}

func TestEventsCoverAllDevices(t *testing.T) {
	c, _, r := plan(t)
	seen := map[int]bool{}
	for _, e := range r.Events {
		seen[e.TID] = true
		if e.Dur < 0 || e.TS < 0 {
			t.Fatalf("negative event: %+v", e)
		}
	}
	for j := 0; j < c.M(); j++ {
		if !seen[j] {
			t.Errorf("device %d has no trace events", j)
		}
	}
}

func TestWriteTraceValidJSON(t *testing.T) {
	_, _, r := plan(t)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, r.Events); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var parsed map[string][]TraceEvent
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(parsed["traceEvents"]) != len(r.Events) {
		t.Errorf("round-trip lost events")
	}
	if !strings.Contains(buf.String(), `"ph":"X"`) {
		t.Error("missing complete-event phase markers")
	}
}

func TestCommTimeTracked(t *testing.T) {
	_, _, r := plan(t)
	if r.CommTime < 0 || r.CommTime > r.Time {
		t.Errorf("comm time %v outside [0, %v]", r.CommTime, r.Time)
	}
}
