package synth

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"hap/internal/autodiff"
	"hap/internal/cluster"
	"hap/internal/collective"
	"hap/internal/cost"
	"hap/internal/dist"
	"hap/internal/graph"
	"hap/internal/theory"
)

func twoDevices() *cluster.Cluster {
	return cluster.FromGPUs(cluster.DefaultNetwork(),
		cluster.MachineSpec{Type: cluster.V100, GPUs: 1},
		cluster.MachineSpec{Type: cluster.P100, GPUs: 1})
}

func ratios(c *cluster.Cluster) [][]float64 {
	return cost.UniformRatios(1, c.ProportionalRatios())
}

// fig11Graph is the single-device program of Fig. 11:
// e1 = placeholder(); e2 = parameter(); e3 = matmul(e1, e2); loss = sum(e3).
func fig11Graph() *graph.Graph {
	g := graph.New()
	e1 := g.AddPlaceholder("x", 0, 64, 64)
	e2 := g.AddParameter("w", 64, 64)
	e3 := g.AddOp(graph.MatMul, e1, e2)
	g.SetLoss(g.AddOp(graph.Sum, e3))
	return g
}

func TestSearchExampleFig11(t *testing.T) {
	g := fig11Graph()
	c := twoDevices()
	p, stats, err := Synthesize(context.Background(), g, theory.New(g), c, ratios(c), Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	s := p.String()
	// The optimal program of Fig. 11 (program 7): shard the batch, keep the
	// parameter replicated, compute locally — zero communication, as the
	// loss is only required up to a pending All-Reduce.
	if !strings.Contains(s, "placeholder-shard(0)") {
		t.Errorf("expected data-parallel placeholder, got:\n%s", s)
	}
	if p.NumComms() != 0 {
		t.Errorf("expected 0 communications, got %d:\n%s", p.NumComms(), s)
	}
	if stats.Cost <= 0 {
		t.Errorf("cost = %v", stats.Cost)
	}
	if stats.Expansions == 0 {
		t.Error("no expansions recorded")
	}
}

func mlpTraining() *graph.Graph {
	g := graph.New()
	x := g.AddPlaceholder("x", 0, 64, 32)
	w1 := g.AddParameter("w1", 32, 48)
	w2 := g.AddParameter("w2", 48, 16)
	h := g.AddOp(graph.ReLU, g.AddOp(graph.MatMul, x, w1))
	y := g.AddOp(graph.MatMul, h, w2)
	g.SetLoss(g.AddOp(graph.Sum, y))
	if err := autodiff.Backward(g); err != nil {
		panic(err)
	}
	return g
}

// Every parameter must end up trainable: either sharded with its gradient
// produced in matching sharded form, or replicated with a synchronized
// (or replicated-computed) full gradient. The synthesizer is free to choose
// tensor parallelism that avoids gradient collectives entirely.
func TestSynthesizeTrainingGradientsMatchPlacements(t *testing.T) {
	g := mlpTraining()
	c := twoDevices()
	p, _, err := Synthesize(context.Background(), g, theory.New(g), c, ratios(c), Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	placed := map[graph.NodeID]int{}
	computed := map[graph.NodeID]bool{}
	synced := map[graph.NodeID]bool{}
	for _, in := range p.Instrs {
		if in.IsComm {
			if in.Coll == collective.AllReduce || in.Coll == collective.ReduceScatter {
				synced[in.Ref] = true
			}
			continue
		}
		if theory.IsLeaf(in.Op) {
			placed[in.Ref] = in.ShardDim
		}
		computed[in.Ref] = true
	}
	for _, param := range g.Params {
		grad := g.Grads[param]
		if !computed[grad] {
			t.Errorf("gradient e%d of param e%d never computed", grad, param)
			continue
		}
		if _, ok := placed[param]; !ok {
			t.Errorf("param e%d never placed", param)
		}
	}
}

// Forcing data parallelism (replicated parameters) must produce gradient
// synchronization collectives. We force it by disallowing parameter sharding:
// a placeholder-heavy graph where sharded params lose — here we instead
// check the weaker property on the DP program the baselines build; the
// synthesizer's own DP behaviour is covered by the Fig. 11 test.
func TestSumLossAcceptedPendingReduce(t *testing.T) {
	g := fig11Graph()
	c := twoDevices()
	p, _, err := Synthesize(context.Background(), g, theory.New(g), c, ratios(c), Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if p.NumComms() != 0 {
		t.Errorf("loss-only program should need no collectives:\n%s", p)
	}
}

func TestSynthesizedProgramComputesEveryRequiredNode(t *testing.T) {
	g := mlpTraining()
	c := twoDevices()
	th := theory.New(g)
	p, _, err := Synthesize(context.Background(), g, th, c, ratios(c), Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	done := map[graph.NodeID]bool{}
	for _, in := range p.Instrs {
		if !in.IsComm {
			done[in.Ref] = true
		}
	}
	for i := range g.Nodes {
		id := graph.NodeID(i)
		if th.Required[id] && !done[id] {
			t.Errorf("required node e%d (%v) never computed", id, g.Node(id).Kind)
		}
	}
}

func TestSynthesizeRespectsTopologicalOrder(t *testing.T) {
	g := mlpTraining()
	c := twoDevices()
	p, _, err := Synthesize(context.Background(), g, theory.New(g), c, ratios(c), Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	done := map[graph.NodeID]bool{}
	for _, in := range p.Instrs {
		if in.IsComm {
			continue
		}
		for _, dep := range in.Inputs {
			if !done[dep] {
				t.Fatalf("instruction %v uses e%d before it is produced", in, dep)
			}
		}
		done[in.Ref] = true
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	g := mlpTraining()
	c := twoDevices()
	p1, _, err1 := Synthesize(context.Background(), g, theory.New(g), c, ratios(c), Options{})
	p2, _, err2 := Synthesize(context.Background(), g, theory.New(g), c, ratios(c), Options{})
	if err1 != nil || err2 != nil {
		t.Fatalf("Synthesize: %v / %v", err1, err2)
	}
	if p1.String() != p2.String() {
		t.Errorf("non-deterministic synthesis:\n%s\nvs\n%s", p1, p2)
	}
}

func TestDisableGroupedBroadcast(t *testing.T) {
	g := mlpTraining()
	c := twoDevices()
	p, _, err := Synthesize(context.Background(), g, theory.New(g), c, ratios(c), Options{DisableGroupedBroadcast: true})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if n := p.CollectiveCount()[collective.GroupedBroadcast]; n != 0 {
		t.Errorf("grouped broadcast used %d times despite ablation", n)
	}
}

func TestBeamSearchFindsProgramOnDeeperModel(t *testing.T) {
	g := graph.New()
	x := g.AddPlaceholder("x", 0, 64, 64)
	h := x
	for i := 0; i < 6; i++ {
		w := g.AddParameter("w", 64, 64)
		h = g.AddOp(graph.ReLU, g.AddOp(graph.MatMul, h, w))
	}
	g.SetLoss(g.AddOp(graph.Sum, h))
	if err := autodiff.Backward(g); err != nil {
		t.Fatal(err)
	}
	c := twoDevices()
	p, stats, err := Synthesize(context.Background(), g, theory.New(g), c, ratios(c), Options{BeamWidth: 24})
	if err != nil {
		t.Fatalf("Synthesize: %v (%d expansions)", err, stats.Expansions)
	}
	if len(p.Instrs) < g.NumNodes()/2 {
		t.Errorf("suspiciously short program: %d instrs for %d nodes", len(p.Instrs), g.NumNodes())
	}
}

func TestExactBeatsOrMatchesBeam(t *testing.T) {
	g := mlpTraining()
	c := twoDevices()
	_, exact, err := Synthesize(context.Background(), g, theory.New(g), c, ratios(c), Options{})
	if err != nil {
		t.Fatalf("exact: %v", err)
	}
	_, beam, err := Synthesize(context.Background(), g, theory.New(g), c, ratios(c), Options{BeamWidth: 8})
	if err != nil {
		t.Fatalf("beam: %v", err)
	}
	if exact.Cost > beam.Cost+1e-12 {
		t.Errorf("exact cost %v worse than beam cost %v", exact.Cost, beam.Cost)
	}
}

func TestLeafFusionPlacesLeavesOnce(t *testing.T) {
	g := mlpTraining()
	c := twoDevices()
	p, _, err := Synthesize(context.Background(), g, theory.New(g), c, ratios(c), Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	placements := map[graph.NodeID]int{}
	for _, in := range p.Instrs {
		if !in.IsComm && theory.IsLeaf(in.Op) {
			placements[in.Ref]++
		}
	}
	for ref, n := range placements {
		if n != 1 {
			t.Errorf("leaf e%d placed %d times", ref, n)
		}
	}
}

func TestNoRepeatedCommunicationOfSameTensor(t *testing.T) {
	g := mlpTraining()
	c := twoDevices()
	p, _, err := Synthesize(context.Background(), g, theory.New(g), c, ratios(c), Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	seen := map[graph.NodeID]int{}
	for _, in := range p.Instrs {
		if in.IsComm {
			seen[in.Ref]++
		}
	}
	for ref, n := range seen {
		if n > 1 {
			t.Errorf("tensor e%d communicated %d times (opt 2 violated)", ref, n)
		}
	}
}

// The estimated program cost must equal the cost model's evaluation of the
// final program: the incremental search accounting and the offline stage
// extraction must agree.
func TestSearchCostMatchesCostModel(t *testing.T) {
	g := mlpTraining()
	c := twoDevices()
	b := ratios(c)
	p, stats, err := Synthesize(context.Background(), g, theory.New(g), c, b, Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	want := cost.Evaluate(c, p, b)
	if diff := stats.Cost - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("search cost %v != cost model %v", stats.Cost, want)
	}
}

func TestProgramStringRendersPaperNotation(t *testing.T) {
	in := dist.Comm(3, collective.PaddedAllGather, 1, 0)
	if got := in.String(); got != "all-gather(e3, 1)" {
		t.Errorf("comm rendering = %q", got)
	}
}

func TestTimeBudgetAbortsSearch(t *testing.T) {
	g := fig11Graph()
	c := twoDevices()
	th := theory.New(g)
	for name, opt := range map[string]Options{
		"exact": {TimeBudget: time.Nanosecond},
		"beam":  {TimeBudget: time.Nanosecond, BeamWidth: 4},
	} {
		t.Run(name, func(t *testing.T) {
			_, _, err := Synthesize(context.Background(), g, th, c, ratios(c), opt)
			if err == nil || !strings.Contains(err.Error(), "time budget") {
				t.Fatalf("err = %v, want a time-budget violation", err)
			}
		})
	}
	// A generous budget must not change the result.
	p, _, err := Synthesize(context.Background(), g, th, c, ratios(c), Options{TimeBudget: time.Minute})
	if err != nil {
		t.Fatalf("generous budget failed: %v", err)
	}
	if len(p.Instrs) == 0 {
		t.Fatal("generous budget produced an empty program")
	}
}

// A cancelled context must abort both search modes with an error that wraps
// context.Canceled, and a live context must not perturb the result.
func TestContextCancelAbortsSearch(t *testing.T) {
	g := fig11Graph()
	c := twoDevices()
	th := theory.New(g)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for name, opt := range map[string]Options{
		"exact": {},
		"beam":  {BeamWidth: 4},
	} {
		t.Run(name, func(t *testing.T) {
			_, _, err := Synthesize(cancelled, g, th, c, ratios(c), opt)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled in the chain", err)
			}
		})
	}
	p, _, err := Synthesize(context.Background(), g, th, c, ratios(c), Options{})
	if err != nil {
		t.Fatalf("live context failed: %v", err)
	}
	if len(p.Instrs) == 0 {
		t.Fatal("live context produced an empty program")
	}
}

// Cancellation must propagate to a running parallel beam within roughly one
// candidate batch — the same promptness contract as TimeBudget expiry, via
// the same latch.
func TestContextCancelPropagatesToWorkers(t *testing.T) {
	g := graph.New()
	x := g.AddPlaceholder("x", 0, 256, 256)
	h := x
	for i := 0; i < 24; i++ {
		w := g.AddParameter("w", 256, 256)
		h = g.AddOp(graph.ReLU, g.AddOp(graph.MatMul, h, w))
	}
	g.SetLoss(g.AddOp(graph.Sum, h))
	if err := autodiff.Backward(g); err != nil {
		t.Fatal(err)
	}
	c := twoDevices()
	th := theory.New(g)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := Synthesize(ctx, g, th, c, ratios(c), Options{BeamWidth: 64, Workers: 4})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	// Generous bound: a full search here takes seconds; the workers check
	// the shared latch between candidate batches.
	if elapsed > 2*time.Second {
		t.Errorf("cancelled search returned after %v, want prompt abort", elapsed)
	}
}

// The parallel beam must emit a byte-identical program for every worker
// count: workers own contiguous level chunks, so the merged candidate
// sequence — and the deterministic sort over it — never depends on the
// partitioning. Run with -race to also exercise the worker pool.
func TestParallelBeamMatchesSerial(t *testing.T) {
	deep := func() *graph.Graph {
		g := graph.New()
		x := g.AddPlaceholder("x", 0, 64, 64)
		h := x
		for i := 0; i < 6; i++ {
			w := g.AddParameter("w", 64, 64)
			h = g.AddOp(graph.ReLU, g.AddOp(graph.MatMul, h, w))
		}
		g.SetLoss(g.AddOp(graph.Sum, h))
		if err := autodiff.Backward(g); err != nil {
			t.Fatal(err)
		}
		return g
	}
	for name, g := range map[string]*graph.Graph{"mlp": mlpTraining(), "deep": deep()} {
		t.Run(name, func(t *testing.T) {
			c := twoDevices()
			th := theory.New(g)
			ref, refStats, err := Synthesize(context.Background(), g, th, c, ratios(c), Options{BeamWidth: 16, Workers: 1})
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			for _, workers := range []int{2, 4, 8} {
				p, stats, err := Synthesize(context.Background(), g, th, c, ratios(c), Options{BeamWidth: 16, Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if p.String() != ref.String() {
					t.Errorf("workers=%d emitted a different program:\n%s\nvs serial:\n%s", workers, p, ref)
				}
				if p2 := stats.Cost; p2 != refStats.Cost {
					t.Errorf("workers=%d cost %v != serial %v", workers, p2, refStats.Cost)
				}
			}
		})
	}
}

// A budget-expired parallel search must return promptly: every worker checks
// the shared deadline between candidate batches, so cancellation propagates
// within roughly one beam level rather than running the level to completion.
func TestParallelBudgetPropagatesToWorkers(t *testing.T) {
	g := graph.New()
	x := g.AddPlaceholder("x", 0, 256, 256)
	h := x
	for i := 0; i < 24; i++ {
		w := g.AddParameter("w", 256, 256)
		h = g.AddOp(graph.ReLU, g.AddOp(graph.MatMul, h, w))
	}
	g.SetLoss(g.AddOp(graph.Sum, h))
	if err := autodiff.Backward(g); err != nil {
		t.Fatal(err)
	}
	c := twoDevices()
	th := theory.New(g)
	budget := 20 * time.Millisecond
	start := time.Now()
	_, _, err := Synthesize(context.Background(), g, th, c, ratios(c), Options{BeamWidth: 64, Workers: 4, TimeBudget: budget})
	elapsed := time.Since(start)
	if err == nil || !strings.Contains(err.Error(), "time budget") {
		t.Fatalf("err = %v, want a time-budget violation", err)
	}
	// Generous bound: the search must stop within ~1 level of the deadline,
	// not run the remaining levels out. A full search here takes seconds.
	if elapsed > budget+2*time.Second {
		t.Errorf("budget-expired search returned after %v (budget %v)", elapsed, budget)
	}
}
