// Incremental synthesis: seeding a search from a donor plan.
//
// BuildSeed aligns the donor graph with the target graph (graph.StructuralDiff),
// replays the donor program against the donor's background theory to recover
// the decision sequence that produced it — which Hoare triple computed each
// node, which collective moved each tensor — and translates every decision
// whose node survives the alignment onto the target theory. The result seeds
// the beam two ways:
//
//   - prefix fast-forward: the translated decisions are applied in donor
//     order directly onto the root state until one fails (changed-region
//     node, inapplicable triple, out-of-schedule computation), so the search
//     starts mid-program instead of empty. A zero diff replays the entire
//     donor program and skips the search outright.
//   - pinning: past the fast-forward point, a node (or tensor) with a
//     translated decision emits only that candidate when it is applicable,
//     collapsing the per-level branching to the changed region's.
//
// Pins are suggestions, not trust: every pinned decision still passes the
// same applicability checks as a searched one, so a stale or mistranslated
// pin degrades to ordinary search, never to a wrong program.

package synth

import (
	"hap/internal/collective"
	"hap/internal/dist"
	"hap/internal/graph"
	"hap/internal/theory"
)

// DefaultMaxSeedDistance is the normalized-edit-size threshold beyond which
// seeding is pointless: too little of the donor plan survives to beat cold
// synthesis, so BuildSeed returns nil and callers fall back.
const DefaultMaxSeedDistance = 0.25

// replayBudget bounds the backtracking replay: distinct triples can lower to
// identical instruction bytes (the serialized program is all we have), and
// the replayer tries each consistent reading. Real programs resolve in one
// pass; the bound is a guard against pathological wire graphs.
const replayBudget = 10_000

// pinnedComm is one translated communication decision.
type pinnedComm struct {
	valid bool
	coll  collective.Kind
	dim   int
	dim2  int
}

// seedStep is one translated donor decision, in donor program order.
type seedStep struct {
	comm   bool
	mapped bool         // false: the decision's node lies in the changed subgraph
	node   graph.NodeID // target-graph id (computed node, or communicated ref)
	tr     *theory.Triple
	cc     pinnedComm
}

// Seed carries a donor plan's decisions translated onto a target theory.
type Seed struct {
	// Distance is the normalized edit size between donor and target graphs
	// (0 = structurally identical).
	Distance float64

	steps   []seedStep
	compPin []*theory.Triple // by target node id; nil = unpinned
	// compPinOne[id] is a prebuilt one-element slice over compPin[id], so
	// the beam's hot loop swaps candidate lists without allocating.
	compPinOne [][]*theory.Triple
	commPin    []pinnedComm // by target ref id
}

// Steps reports how many donor decisions the seed carries (mapped or not).
func (sd *Seed) Steps() int { return len(sd.steps) }

// donorStep is one decision recovered by replaying the donor program.
type donorStep struct {
	comm bool
	node graph.NodeID // donor-graph id
	tr   *theory.Triple
	coll collective.Kind
	dim  int
	dim2 int
}

// replayState mirrors the synthesizer's search state along the donor path:
// same property accumulation, same leaf placements, same liveness pruning.
// The mirror must be exact — a superset of the search's property set would
// let an inconsistent reading of the program replay "successfully" and
// produce pins the real search never chose.
type replayState struct {
	props        map[theory.Property]bool
	placed       []int8
	computed     []bool
	communicated []bool
}

func newReplayState(n int) *replayState {
	rs := &replayState{
		props:        map[theory.Property]bool{},
		placed:       make([]int8, n),
		computed:     make([]bool, n),
		communicated: make([]bool, n),
	}
	for i := range rs.placed {
		rs.placed[i] = unplaced
	}
	return rs
}

func (rs *replayState) clone() *replayState {
	c := &replayState{
		props:        make(map[theory.Property]bool, len(rs.props)),
		placed:       append([]int8(nil), rs.placed...),
		computed:     append([]bool(nil), rs.computed...),
		communicated: append([]bool(nil), rs.communicated...),
	}
	for p := range rs.props {
		c.props[p] = true
	}
	return c
}

// replayer replays a donor program instruction-by-instruction.
type replayer struct {
	g      *graph.Graph
	th     *theory.Theory
	isOut  []bool
	budget int
}

// pruneDead mirrors Synthesizer.pruneDead on the replay state.
func (r *replayer) pruneDead(rs *replayState, justComputed graph.NodeID) {
	check := func(u graph.NodeID) {
		if r.isOut[u] {
			return
		}
		for _, c := range r.th.Consumers[u] {
			if r.th.Required[c] && !rs.computed[c] {
				return
			}
		}
		for p := range rs.props {
			if p.Ref == u {
				delete(rs.props, p)
			}
		}
	}
	for _, u := range r.g.Node(justComputed).Inputs {
		if !theory.IsLeaf(r.g.Node(u).Kind) {
			check(u)
		}
	}
	check(justComputed)
}

// commTransition returns the property a collective consumes and the one it
// establishes — the inverse of commCandidates.
func commTransition(in dist.Instruction) (src, res theory.Property, ok bool) {
	switch in.Coll {
	case collective.AllReduce:
		return theory.Pending(in.Ref), theory.Id(in.Ref), true
	case collective.ReduceScatter:
		return theory.Pending(in.Ref), theory.Shard(in.Ref, in.Dim), true
	case collective.PaddedAllGather, collective.GroupedBroadcast:
		return theory.Shard(in.Ref, in.Dim), theory.Id(in.Ref), true
	case collective.AllToAll:
		return theory.Shard(in.Ref, in.Dim), theory.Shard(in.Ref, in.Dim2), true
	}
	return theory.Property{}, theory.Property{}, false
}

// replay consumes instrs[i:], appending recovered decisions to steps; it
// backtracks over ambiguous computation readings. Returns the full decision
// list, or nil when no consistent reading exists (or the budget ran out).
func (r *replayer) replay(rs *replayState, instrs []dist.Instruction, steps []donorStep) []donorStep {
	for len(instrs) > 0 {
		r.budget--
		if r.budget < 0 {
			return nil
		}
		in := instrs[0]
		switch {
		case in.IsComm:
			src, res, ok := commTransition(in)
			if !ok || rs.communicated[in.Ref] || !rs.props[src] || rs.props[res] {
				return nil
			}
			rs.communicated[in.Ref] = true
			rs.props[res] = true
			steps = append(steps, donorStep{comm: true, node: in.Ref, coll: in.Coll, dim: in.Dim, dim2: in.Dim2})
			instrs = instrs[1:]

		case theory.IsLeaf(in.Op):
			// A fused leaf loader: record the placement it establishes.
			want := replicated
			if in.ShardDim >= 0 {
				want = int8(in.ShardDim)
			}
			if got := rs.placed[in.Ref]; got != unplaced && got != want {
				return nil
			}
			rs.placed[in.Ref] = want
			instrs = instrs[1:]

		default:
			// A computation: find the triples this instruction can be a
			// lowering of whose preconditions hold right now.
			id := in.Ref
			if rs.computed[id] {
				return nil
			}
			var matches []*theory.Triple
			for _, tr := range r.th.ByNode[id] {
				ti := tr.Instr(r.g)
				if ti.FlopsScaled != in.FlopsScaled || ti.ShardDim != in.ShardDim {
					continue
				}
				if !r.applicable(rs, tr) {
					continue
				}
				matches = append(matches, tr)
			}
			if len(matches) == 0 {
				return nil
			}
			if len(matches) > 1 {
				// Ambiguous reading: branch. First consistent full replay wins;
				// any two differ only in property bookkeeping, never in bytes.
				for _, tr := range matches {
					branch := rs.clone()
					r.applyComp(branch, id, tr)
					if out := r.replay(branch, instrs[1:], append(steps, donorStep{node: id, tr: tr})); out != nil {
						return out
					}
					if r.budget < 0 {
						return nil
					}
				}
				return nil
			}
			r.applyComp(rs, id, matches[0])
			steps = append(steps, donorStep{node: id, tr: matches[0]})
			instrs = instrs[1:]
		}
	}
	return steps
}

// applicable mirrors Synthesizer.compApplicable, except that leaf placements
// must already be set: the donor program's loaders precede their consumer.
func (r *replayer) applicable(rs *replayState, tr *theory.Triple) bool {
	for _, p := range tr.Pre {
		if !rs.props[p] {
			return false
		}
	}
	for _, p := range tr.LeafPre {
		want := replicated
		if p.Kind == theory.Gather {
			want = int8(p.Dim)
		}
		if rs.placed[p.Ref] != want {
			return false
		}
	}
	return true
}

func (r *replayer) applyComp(rs *replayState, id graph.NodeID, tr *theory.Triple) {
	rs.computed[id] = true
	rs.props[tr.Out] = true
	r.pruneDead(rs, id)
}

// BuildSeed builds a search seed for target graph g (with background theory
// th) from a donor plan. Returns nil — callers fall back to cold synthesis —
// when the structural distance exceeds maxDistance (≤0 means
// DefaultMaxSeedDistance), or when the donor program does not replay
// consistently against its own theory. donorTh may be nil; it is built from
// the donor graph on demand (or shared with th when the graphs are one
// object, the drift-replan case).
func BuildSeed(donorG *graph.Graph, donorProg *dist.Program, donorTh *theory.Theory, g *graph.Graph, th *theory.Theory, maxDistance float64) *Seed {
	if donorG == nil || donorProg == nil || g == nil || th == nil {
		return nil
	}
	if maxDistance <= 0 {
		maxDistance = DefaultMaxSeedDistance
	}

	var d *graph.Diff
	if donorG != g {
		d = graph.StructuralDiff(donorG, g)
		if d.Norm > maxDistance {
			return nil
		}
	}
	if donorTh == nil {
		if donorG == g {
			donorTh = th
		} else {
			donorTh = theory.New(donorG)
		}
	}

	r := &replayer{g: donorG, th: donorTh, isOut: make([]bool, donorG.NumNodes()), budget: replayBudget}
	for _, o := range donorTh.Outputs {
		r.isOut[o.Ref] = true
	}
	donorSteps := r.replay(newReplayState(donorG.NumNodes()), donorProg.Instrs, nil)
	if donorSteps == nil {
		return nil
	}

	sd := &Seed{
		compPin:    make([]*theory.Triple, g.NumNodes()),
		compPinOne: make([][]*theory.Triple, g.NumNodes()),
		commPin:    make([]pinnedComm, g.NumNodes()),
		steps:      make([]seedStep, 0, len(donorSteps)),
	}
	if d != nil {
		sd.Distance = d.Norm
	}
	mapID := func(a graph.NodeID) (graph.NodeID, bool) {
		if d == nil {
			return a, true
		}
		return d.MapAB(a)
	}
	for _, ds := range donorSteps {
		tid, ok := mapID(ds.node)
		if !ok {
			sd.steps = append(sd.steps, seedStep{comm: ds.comm})
			continue
		}
		if ds.comm {
			cc := pinnedComm{valid: true, coll: ds.coll, dim: ds.dim, dim2: ds.dim2}
			sd.commPin[tid] = cc
			sd.steps = append(sd.steps, seedStep{comm: true, mapped: true, node: tid, cc: cc})
			continue
		}
		tr := matchTriple(ds.tr, th.ByNode[tid], mapID)
		if tr == nil {
			sd.steps = append(sd.steps, seedStep{})
			continue
		}
		sd.compPin[tid] = tr
		sd.compPinOne[tid] = []*theory.Triple{tr}
		sd.steps = append(sd.steps, seedStep{mapped: true, node: tid, tr: tr})
	}
	return sd
}

// matchTriple finds the unique target triple structurally equal to the donor
// triple under the id mapping: same output form, same flop scaling, and
// preconditions on the *aligned* input tensors. Nil when none or several
// match — the node stays unpinned and is searched normally.
func matchTriple(donor *theory.Triple, candidates []*theory.Triple, mapID func(graph.NodeID) (graph.NodeID, bool)) *theory.Triple {
	var found *theory.Triple
	for _, tt := range candidates {
		if tt.FlopsScaled != donor.FlopsScaled ||
			tt.Out.Kind != donor.Out.Kind || tt.Out.Dim != donor.Out.Dim ||
			len(tt.Pre) != len(donor.Pre) || len(tt.LeafPre) != len(donor.LeafPre) {
			continue
		}
		ok := true
		for i, p := range donor.Pre {
			m, mok := mapID(p.Ref)
			if !mok || m != tt.Pre[i].Ref || p.Kind != tt.Pre[i].Kind || p.Dim != tt.Pre[i].Dim {
				ok = false
				break
			}
		}
		for i, p := range donor.LeafPre {
			if !ok {
				break
			}
			m, mok := mapID(p.Ref)
			if !mok || m != tt.LeafPre[i].Ref || p.Kind != tt.LeafPre[i].Kind || p.Dim != tt.LeafPre[i].Dim {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if found != nil {
			return nil // ambiguous: refuse to pin
		}
		found = tt
	}
	return found
}

// fastForward applies the seed's decision prefix onto root, in donor order,
// until a step fails: an unmapped (changed-region) decision, a computation
// out of the beam's strict schedule, or an inapplicable pin. Every applied
// step goes through the same applyComp/applyComm as searched decisions, so
// the returned state is exactly what the beam would have built had it chosen
// those candidates. Returns the advanced state and whether the entire donor
// program replayed (the state is then complete — no search needed).
func (sy *Synthesizer) fastForward(root *state) (*state, int, bool) {
	sd := sy.opt.Seed
	s := root
	applied := 0
	for _, st := range sd.steps {
		if !st.mapped {
			break
		}
		if st.comm {
			ns := sy.applySeedComm(s, st)
			if ns == nil {
				break
			}
			s = ns
		} else {
			if int(s.nextReq) >= len(sy.reqNodes) || sy.reqNodes[s.nextReq] != st.node {
				break
			}
			if sy.opt.DisableSFB && sy.isSFBTriple(st.tr) {
				break
			}
			ns := sy.applyComp(s, st.tr)
			if ns == nil {
				break
			}
			ns.nextReq = s.nextReq + 1
			s = ns
		}
		applied++
	}
	return s, applied, applied == len(sd.steps) && s.complete
}

// applySeedComm validates and applies one pinned communication on s: the
// ref must be live, uncommunicated, and the pinned collective must be among
// the legal candidates for its current property (the same filter the search
// applies). Nil when the decision does not fit the state.
func (sy *Synthesizer) applySeedComm(s *state, st seedStep) *state {
	if bitGet(s.communicated, st.node) {
		return nil
	}
	for _, p := range s.props {
		if p.Ref != st.node {
			continue
		}
		sy.ccBuf = sy.commCandidates(s, p, sy.ccBuf[:0])
		for _, cc := range sy.ccBuf {
			if cc.in.Coll == st.cc.coll && cc.in.Dim == st.cc.dim && cc.in.Dim2 == st.cc.dim2 {
				return sy.applyComm(s, cc)
			}
		}
	}
	return nil
}
