package synth

import (
	"fmt"
	"sort"
	"testing"

	"hap/internal/cluster"
	"hap/internal/cost"
	"hap/internal/graph"
	"hap/internal/models"
	"hap/internal/theory"
)

// TestDebugVGGBeam is a diagnostic: it reports where beam threads stall on a
// model-scale graph. Run with -run TestDebugVGGBeam -v.
func TestDebugVGGBeam(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	g := models.Build(models.ModelVGG19, 8)
	c := cluster.PaperHeterogeneous(1)
	b := cost.UniformRatios(1, c.ProportionalRatios())
	th := theory.New(g)
	sy := New(g, th, c, b, Options{BeamWidth: 16})
	root := sy.rootState()

	level := []*state{root}
	for depth := 0; depth < 3*g.NumNodes()+100 && len(level) > 0; depth++ {
		visited := map[uint64]float64{}
		var next []*state
		for _, s := range level {
			for _, ns := range sy.expandFrom(s, false, nil) {
				if ns.complete {
					t.Logf("complete at depth %d", depth)
					return
				}
				k := ns.key()
				ec := ns.effCost()
				if prev, ok := visited[k]; ok && prev <= ec {
					continue
				}
				visited[k] = ec
				next = append(next, ns)
			}
		}
		sort.Slice(next, func(i, j int) bool { return sy.score(next[i]) < sy.score(next[j]) })
		if len(next) > 16 {
			next = next[:16]
		}
		if len(next) == 0 {
			s := level[0]
			nc := 0
			var firstBlocked string
			for i := range g.Nodes {
				id := graph.NodeID(i)
				if th.Required[id] && !bitGet(s.computed, id) && !theory.IsLeaf(g.Node(id).Kind) {
					nc++
					if firstBlocked == "" {
						n := g.Node(id)
						var inKinds []string
						for _, in := range n.Inputs {
							inKinds = append(inKinds, fmt.Sprintf("e%d:%v", in, g.Node(in).Kind))
						}
						firstBlocked = fmt.Sprintf("e%d %v inputs=%v ready=%v triples=%d",
							id, n.Kind, inKinds, sy.ready(s, id), len(th.ByNode[id]))
					}
				}
			}
			t.Logf("stalled at depth %d: %d uncomputed required nodes; first: %s", depth, nc, firstBlocked)
			for _, o := range th.Outputs {
				if sy.outputAcceptable(s, o) {
					continue
				}
				pd := int8(-9)
				if o.Param >= 0 {
					pd = s.placed[o.Param]
				}
				t.Logf("UNACCEPTABLE output e%d (param e%d placed=%d) comm=%v kind=%v",
					o.Ref, o.Param, pd, bitGet(s.communicated, o.Ref), g.Node(o.Ref).Kind)
				for _, p := range s.props {
					if p.Ref == o.Ref {
						t.Logf("    prop %v", p)
					}
				}
			}
			for i := range g.Nodes {
				id := graph.NodeID(i)
				if th.Required[id] && !bitGet(s.computed, id) && !theory.IsLeaf(g.Node(id).Kind) {
					n := g.Node(id)
					t.Logf("uncomputed e%d %v inputs=%v", id, n.Kind, n.Inputs)
					for _, tr := range th.ByNode[id] {
						ok := true
						for _, p := range tr.Pre {
							if !s.hasProp(p) {
								ok = false
							}
						}
						t.Logf("  triple pre=%v leaf=%v out=%v preOK=%v", tr.Pre, tr.LeafPre, tr.Out, ok)
					}
					for _, in := range n.Inputs {
						t.Logf("  input e%d kind=%v computed=%v placed=%d comm=%v",
							in, g.Node(in).Kind, bitGet(s.computed, in), s.placed[in], bitGet(s.communicated, in))
						for _, p := range s.props {
							if p.Ref == in {
								t.Logf("    prop %v", p)
							}
						}
					}
				}
			}
			return
		}
		level = next
	}
	t.Log("levels exhausted without completion or stall")
}
