// Microbenchmarks for the synthesis hot path: one benchmark per paper
// workload, each reporting ns/op and allocs/op via -benchmem. These are the
// numbers BENCH_synth.json baselines and CI's bench-smoke step regresses
// against; README's "Performance" section tabulates them.
package synth

import (
	"context"
	"fmt"
	"testing"

	"hap/internal/cluster"
	"hap/internal/cost"
	"hap/internal/models"
	"hap/internal/theory"
)

func benchSynthesize(b *testing.B, model models.PaperModel) {
	c := cluster.PaperHeterogeneous(1)
	g := models.Build(model, c.TotalGPUs())
	th := theory.New(g)
	ratios := cost.UniformRatios(g.NumSegments(), c.ProportionalRatios())
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := Options{BeamWidth: 48, Workers: workers}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := Synthesize(context.Background(), g, th, c, ratios, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSynthesizeVGG19(b *testing.B) { benchSynthesize(b, models.ModelVGG19) }
func BenchmarkSynthesizeBERT(b *testing.B)  { benchSynthesize(b, models.ModelBERTBase) }
func BenchmarkSynthesizeMoE(b *testing.B)   { benchSynthesize(b, models.ModelBERTMoE) }

// BenchmarkSynthesizeIncrementalVGG19 is the warm near-miss path: a
// one-layer-wider VGG19 planned seeded from the base VGG19's plan. The timed
// region is everything a cache miss with a donor pays — the structural diff,
// the donor replay (donor theory included), and the seeded search — and the
// benchcheck gate holds it under 10% of BenchmarkSynthesizeVGG19/workers=1.
func BenchmarkSynthesizeIncrementalVGG19(b *testing.B) {
	c := cluster.PaperHeterogeneous(1)
	batch := models.PerDeviceBatch(models.ModelVGG19) * c.TotalGPUs()
	donorG := models.Training(models.VGG19(batch, 224, 10))
	donorTh := theory.New(donorG)
	donorRatios := cost.UniformRatios(donorG.NumSegments(), c.ProportionalRatios())
	donor, _, err := Synthesize(context.Background(), donorG, donorTh, c, donorRatios, Options{BeamWidth: 48, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	wide := models.Training(models.VGG19OneWider(batch, 224, 10))
	thWide := theory.New(wide)
	ratios := cost.UniformRatios(wide.NumSegments(), c.ProportionalRatios())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed := BuildSeed(donorG, donor, nil, wide, thWide, 0)
		if seed == nil {
			b.Fatal("BuildSeed returned nil")
		}
		opt := Options{BeamWidth: -1, Workers: 1, Seed: seed}
		if _, _, err := Synthesize(context.Background(), wide, thWide, c, ratios, opt); err != nil {
			b.Fatal(err)
		}
	}
}
