// Microbenchmarks for the synthesis hot path: one benchmark per paper
// workload, each reporting ns/op and allocs/op via -benchmem. These are the
// numbers BENCH_synth.json baselines and CI's bench-smoke step regresses
// against; README's "Performance" section tabulates them.
package synth

import (
	"context"
	"fmt"
	"testing"

	"hap/internal/cluster"
	"hap/internal/cost"
	"hap/internal/models"
	"hap/internal/theory"
)

func benchSynthesize(b *testing.B, model models.PaperModel) {
	c := cluster.PaperHeterogeneous(1)
	g := models.Build(model, c.TotalGPUs())
	th := theory.New(g)
	ratios := cost.UniformRatios(g.NumSegments(), c.ProportionalRatios())
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := Options{BeamWidth: 48, Workers: workers}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := Synthesize(context.Background(), g, th, c, ratios, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSynthesizeVGG19(b *testing.B) { benchSynthesize(b, models.ModelVGG19) }
func BenchmarkSynthesizeBERT(b *testing.B)  { benchSynthesize(b, models.ModelBERTBase) }
func BenchmarkSynthesizeMoE(b *testing.B)   { benchSynthesize(b, models.ModelBERTMoE) }
