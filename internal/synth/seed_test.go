package synth

import (
	"context"
	"testing"

	"hap/internal/cluster"
	"hap/internal/cost"
	"hap/internal/graph"
	"hap/internal/models"
	"hap/internal/theory"
)

// seedTestGraph builds a training MLP with the given hidden widths.
func seedTestGraph(t *testing.T, widths ...int) *graph.Graph {
	t.Helper()
	return models.Training(models.MLP(64, widths...))
}

func synthFor(g *graph.Graph, c *cluster.Cluster, opt Options) (*Synthesizer, *theory.Theory) {
	th := theory.New(g)
	b := cost.UniformRatios(g.NumSegments(), c.ProportionalRatios())
	return New(g, th, c, b, opt), th
}

// TestSeedFullReplay seeds a search from its own plan: the diff is zero, the
// whole donor program fast-forwards, and the result must be byte-identical.
func TestSeedFullReplay(t *testing.T) {
	g := seedTestGraph(t, 64, 128, 96, 32)
	c := cluster.PaperHeterogeneous(1)
	opt := Options{BeamWidth: 24, Workers: 1}

	sy, th := synthFor(g, c, opt)
	cold, coldStats, err := sy.Run(context.Background())
	if err != nil {
		t.Fatalf("cold synthesis: %v", err)
	}

	seed := BuildSeed(g, cold, th, g, th, 0)
	if seed == nil {
		t.Fatalf("BuildSeed returned nil for an identical graph")
	}
	if seed.Distance != 0 {
		t.Fatalf("seed distance = %v, want 0", seed.Distance)
	}

	opt.Seed = seed
	b := cost.UniformRatios(g.NumSegments(), c.ProportionalRatios())
	seeded, stats, err := New(g, th, c, b, opt).Run(context.Background())
	if err != nil {
		t.Fatalf("seeded synthesis: %v", err)
	}
	if seeded.String() != cold.String() {
		t.Fatalf("full replay is not byte-identical:\ncold:\n%s\nseeded:\n%s", cold, seeded)
	}
	if stats.Cost != coldStats.Cost {
		t.Fatalf("full replay cost %v != cold cost %v", stats.Cost, coldStats.Cost)
	}
	if stats.Expansions != 0 {
		t.Fatalf("full replay ran %d expansions, want 0 (no search)", stats.Expansions)
	}
}

// TestSeedWidenedModel seeds a widened model's search from the base model's
// plan: the seeded search must stay valid and cost no worse than cold.
func TestSeedWidenedModel(t *testing.T) {
	base := seedTestGraph(t, 64, 96, 96, 96, 96, 96, 96, 32)
	wide := seedTestGraph(t, 64, 96, 96, 112, 96, 96, 96, 32)
	c := cluster.PaperHeterogeneous(1)
	opt := Options{BeamWidth: 24, Workers: 1}

	syBase, thBase := synthFor(base, c, opt)
	donor, _, err := syBase.Run(context.Background())
	if err != nil {
		t.Fatalf("donor synthesis: %v", err)
	}
	syCold, thWide := synthFor(wide, c, opt)
	_, coldStats, err := syCold.Run(context.Background())
	if err != nil {
		t.Fatalf("cold synthesis: %v", err)
	}

	seed := BuildSeed(base, donor, thBase, wide, thWide, 0)
	if seed == nil {
		t.Fatalf("BuildSeed returned nil for a one-layer widening")
	}
	if seed.Distance <= 0 || seed.Distance > DefaultMaxSeedDistance {
		t.Fatalf("seed distance = %v, want in (0, %v]", seed.Distance, DefaultMaxSeedDistance)
	}

	opt.Seed = seed
	b := cost.UniformRatios(wide.NumSegments(), c.ProportionalRatios())
	seeded, stats, err := New(wide, thWide, c, b, opt).Run(context.Background())
	if err != nil {
		t.Fatalf("seeded synthesis: %v", err)
	}
	if err := seeded.Validate(); err != nil {
		t.Fatalf("seeded program ill-formed: %v", err)
	}
	if stats.Cost > coldStats.Cost*(1+1e-9) {
		t.Fatalf("seeded cost %v worse than cold %v", stats.Cost, coldStats.Cost)
	}
	if stats.Expansions >= coldStats.Expansions {
		t.Fatalf("seeded search did not shrink: %d expansions vs cold %d", stats.Expansions, coldStats.Expansions)
	}
}

// TestSeedWorkerInvariance: seeded plans stay byte-identical across worker
// counts, like cold ones.
func TestSeedWorkerInvariance(t *testing.T) {
	base := seedTestGraph(t, 64, 96, 96, 96, 96, 96, 96, 32)
	wide := seedTestGraph(t, 64, 96, 96, 112, 96, 96, 96, 32)
	c := cluster.PaperHeterogeneous(1)

	syBase, thBase := synthFor(base, c, Options{BeamWidth: 24, Workers: 1})
	donor, _, err := syBase.Run(context.Background())
	if err != nil {
		t.Fatalf("donor synthesis: %v", err)
	}
	thWide := theory.New(wide)
	seed := BuildSeed(base, donor, thBase, wide, thWide, 0)
	if seed == nil {
		t.Fatalf("BuildSeed returned nil")
	}
	b := cost.UniformRatios(wide.NumSegments(), c.ProportionalRatios())
	var first string
	for _, workers := range []int{1, 4} {
		p, _, err := New(wide, thWide, c, b, Options{BeamWidth: 24, Workers: workers, Seed: seed}).Run(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if first == "" {
			first = p.String()
		} else if p.String() != first {
			t.Fatalf("seeded plan differs between worker counts")
		}
	}
}

// TestSeedDistanceThreshold: a structurally unrelated donor is rejected.
func TestSeedDistanceThreshold(t *testing.T) {
	base := seedTestGraph(t, 64, 128, 96, 32)
	other := seedTestGraph(t, 48, 80, 56, 24, 16)
	c := cluster.PaperHeterogeneous(1)
	syBase, thBase := synthFor(base, c, Options{BeamWidth: 24, Workers: 1})
	donor, _, err := syBase.Run(context.Background())
	if err != nil {
		t.Fatalf("donor synthesis: %v", err)
	}
	thOther := theory.New(other)
	if sd := BuildSeed(base, donor, thBase, other, thOther, 0); sd != nil {
		t.Fatalf("BuildSeed accepted an unrelated donor (distance %v)", sd.Distance)
	}
}
