// The per-search state arena (DESIGN.md): beam states and their slice
// backing come from slabs owned by the Synthesizer, not the global heap.
//
// The previous sync.Pool recycled retired states well, but every pool miss —
// ~40% of clones on model-scale searches, since a level's survivors outlive
// the level that allocated them — paid five separate allocations (the state
// plus four slice backings). The arena batch-allocates states in blocks and
// carves each state's fixed-size backing (placed, openComp) and initial
// capacity (props, instrs) out of per-block slabs: a miss is one slab index,
// a hit is a free-list pop. Everything is released wholesale when the search
// ends and the Synthesizer becomes garbage — no per-object bookkeeping, and
// nothing escapes: Run copies the winning program out of the parent chain
// before returning.
//
// get/put take a mutex because clone runs concurrently inside materialize
// batches; release is serial. The critical sections are a few loads and
// stores, dwarfed by the scoring work between them.

package synth

import (
	"sync"

	"hap/internal/dist"
	"hap/internal/theory"
)

const (
	// arenaBlock is the number of states allocated per slab.
	arenaBlock = 256
	// arenaPropCap and arenaInstrCap are the initial per-state capacities
	// carved from the slabs. A state whose props or instrs outgrow them
	// falls back to an ordinary append reallocation and keeps the larger
	// backing across its recycled lives — the arena self-tunes to the graph.
	arenaPropCap  = 12
	arenaInstrCap = 4
)

// stateArena allocates and recycles search states for one Synthesizer.
type stateArena struct {
	mu   sync.Mutex
	free []*state

	block  []state
	used   int
	placed []int8
	comp   []float64
	props  []theory.Property
	instrs []dist.Instruction

	nodes, m int
}

func (a *stateArena) init(nodes, m int) {
	a.nodes, a.m = nodes, m
}

// get returns a recycled state, or carves a fresh one from the current
// block. Fresh states come with zero-length slices whose capacities alias
// the block slabs, so the caller's append-into pattern fills them in place.
func (a *stateArena) get() *state {
	a.mu.Lock()
	if n := len(a.free); n > 0 {
		s := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		a.mu.Unlock()
		return s
	}
	if a.used == len(a.block) {
		a.block = make([]state, arenaBlock)
		a.placed = make([]int8, arenaBlock*a.nodes)
		a.comp = make([]float64, arenaBlock*a.m)
		a.props = make([]theory.Property, arenaBlock*arenaPropCap)
		a.instrs = make([]dist.Instruction, arenaBlock*arenaInstrCap)
		a.used = 0
	}
	i := a.used
	s := &a.block[i]
	s.placed = a.placed[i*a.nodes : i*a.nodes : (i+1)*a.nodes]
	s.openComp = a.comp[i*a.m : i*a.m : (i+1)*a.m]
	s.props = a.props[i*arenaPropCap : i*arenaPropCap : (i+1)*arenaPropCap]
	s.instrs = a.instrs[i*arenaInstrCap : i*arenaInstrCap : (i+1)*arenaInstrCap]
	a.used++
	a.mu.Unlock()
	return s
}

// put recycles a retired state for the next get.
func (a *stateArena) put(s *state) {
	a.mu.Lock()
	a.free = append(a.free, s)
	a.mu.Unlock()
}
