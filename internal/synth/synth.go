// Package synth implements HAP's distributed-program synthesizer: the
// A*-based search of Fig. 10 over the background theory of Sec. 4.2.
//
// Starting from the empty program, the search appends instructions whose
// Hoare-triple preconditions hold, until every required output (the loss and
// each parameter gradient) is materialized acceptably. States are partial
// programs summarized by their property sets; exact-duplicate states keep
// the cheaper program, and strictly-worse states are pruned (lines 9–14 of
// Fig. 10).
//
// The three search-time optimizations of Sec. 4.5 are implemented as:
//
//  1. leaf fusion — Placeholder/Parameter/Ones loaders are emitted together
//     with their first consumer, never enumerated standalone;
//  2. one communication per reference tensor, and none for leaves, enforced
//     with a communicated bitset;
//  3. liveness pruning — a tensor's properties are dropped once every
//     consumer is computed (required outputs are exempt).
//
// Engineering additions documented in DESIGN.md: computation instructions
// within a stage are emitted in canonical (ascending node id) order, which
// collapses cost-equivalent permutations without losing any stage partition;
// an optional beam bound caps expansions per search depth for model-scale
// graphs (exact search remains the default for small graphs); the beam
// search fans each level over Options.Workers goroutines and merges
// candidates in a deterministic total order, so the emitted program is
// byte-identical for every worker count; and the per-expansion hot path is
// allocation-lean — pooled states with copy-on-write bitsets, memoized
// collective costs, and binary-searched property sets.
package synth

import (
	"container/heap"
	"context"
	"fmt"
	"runtime"

	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hap/internal/cluster"
	"hap/internal/collective"
	"hap/internal/cost"
	"hap/internal/dist"
	"hap/internal/graph"
	"hap/internal/obs"
	"hap/internal/theory"
)

// Options tunes the search.
type Options struct {
	// BeamWidth caps expansions per depth (0 = exact A*; negative = choose
	// automatically: exact for small graphs, beam for model-scale ones).
	BeamWidth int
	// MaxExpansions aborts runaway searches (0 = 4,000,000).
	MaxExpansions int
	// TimeBudget aborts searches whose wall-clock time exceeds it (0 = no
	// limit). MaxExpansions bounds memory, not time: an adversarial graph
	// can spend minutes inside its expansion budget. Serving stacks set
	// this so one request cannot hold a worker indefinitely.
	TimeBudget time.Duration
	// Workers is the number of goroutines the beam search fans each level's
	// candidate generation, scoring and materialization over (0 = GOMAXPROCS,
	// 1 = serial). The emitted program is byte-identical for every worker
	// count: workers own contiguous chunks of the level, so the merged
	// candidate sequence — (parent index, candidate index) order — and the
	// deterministic sort over it are independent of how the level was
	// partitioned (see DESIGN.md). Exact A* is always serial.
	Workers int
	// DisableGroupedBroadcast removes the grouped-Broadcast All-Gather
	// implementation (ablation "C", Sec. 7.4).
	DisableGroupedBroadcast bool
	// DisableSFB removes replicated-MatMul triples on non-leaf operands,
	// which is what sufficient factor broadcasting synthesizes through.
	DisableSFB bool
	// Seed carries a donor plan's translated decisions (see BuildSeed). The
	// beam fast-forwards through the decision prefix and pins seeded nodes
	// to their donor candidates; automatic mode also narrows the beam, since
	// a pinned level branches only on communication timing. Exact A* ignores
	// the seed. Nil = cold search.
	Seed *Seed
}

// Auto returns BeamWidth -1 options (automatic mode selection).
func Auto() Options { return Options{BeamWidth: -1} }

// seededBeamWidth is automatic mode's beam width for seeded searches. With
// donor pins collapsing computation branching to one candidate per level,
// the beam explores only communication timing; 4 states reproduce the donor
// plan's quality on near-miss graphs at a fraction of the cold search's
// work (the <10%-of-cold target benchcheck gates).
const seededBeamWidth = 4

// Stats reports search effort.
type Stats struct {
	Expansions int
	Pushed     int
	Elapsed    time.Duration
	Cost       float64 // estimated t(Q,B) of the returned program
	// Seeded reports whether the search actually consumed a donor seed.
	// False when a seed was supplied but automatic mode routed the graph to
	// exact A*, which ignores seeds.
	Seeded bool
}

const (
	unplaced   = int8(-2)
	replicated = int8(-1)
)

// numColl is the size of the per-ref collective cost tables.
const numColl = int(collective.AllToAll) + 1

// state is a partial program: the property set plus progress bookkeeping.
type state struct {
	parent *state
	instrs []dist.Instruction // appended by this step (leaf loaders + op, or one comm)

	props        []theory.Property // sorted canonical property set (live, non-leaf)
	computed     []uint64          // nodes computed
	communicated []uint64          // tensors already communicated (opt 2)
	placed       []int8            // leaf placement: unplaced/replicated/dim

	closedCost float64   // cost of all closed stages
	openComm   float64   // comm cost of the open stage
	openComp   []float64 // per-device comp time of the open stage
	lastComp   graph.NodeID
	remFlops   float64
	depth      int32 // instructions so far (for beam leveling)
	nextReq    int32 // beam only: index into Synthesizer.reqNodes of the next computation
	complete   bool

	// Copy-on-write bookkeeping: clone shares the parent's bitset words and
	// copies only on first mutation (each expansion touches one of the two
	// sets, never both). owns* marks a backing array this state allocated —
	// and may recycle on release.
	ownsComputed     bool
	ownsCommunicated bool
	// spare holds bitset backing arrays recycled from this state object's
	// previous pooled lives, consumed by the next copy-on-write.
	spare [2][]uint64
}

func (s *state) effCost() float64 {
	worst := 0.0
	for _, v := range s.openComp {
		if v > worst {
			worst = v
		}
	}
	return s.closedCost + s.openComm + worst
}

func bitGet(b []uint64, i graph.NodeID) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }
func bitSet(b []uint64, i graph.NodeID)      { b[i/64] |= 1 << (uint(i) % 64) }

// cowCopy returns a private copy of src, reusing a spare backing array from
// this state's previous pooled life when one is available.
func (s *state) cowCopy(src []uint64) []uint64 {
	var dst []uint64
	for i, sp := range s.spare {
		if sp != nil && len(sp) >= len(src) {
			dst, s.spare[i] = sp[:len(src)], nil
			break
		}
	}
	if dst == nil {
		dst = make([]uint64, len(src))
	}
	copy(dst, src)
	return dst
}

func (s *state) stash(b []uint64) {
	for i := range s.spare {
		if s.spare[i] == nil {
			s.spare[i] = b
			return
		}
	}
}

// setComputed and setCommunicated are the only bitset writers: they
// materialize the copy-on-write before mutating.
func (s *state) setComputed(id graph.NodeID) {
	if !s.ownsComputed {
		s.computed = s.cowCopy(s.computed)
		s.ownsComputed = true
	}
	bitSet(s.computed, id)
}

func (s *state) setCommunicated(id graph.NodeID) {
	if !s.ownsCommunicated {
		s.communicated = s.cowCopy(s.communicated)
		s.ownsCommunicated = true
	}
	bitSet(s.communicated, id)
}

// clone allocates a successor of s from the per-search arena. The bitsets
// are shared copy-on-write; every other slice is copied into recycled (or
// slab-carved) backing.
func (sy *Synthesizer) clone(s *state) *state {
	c := sy.arena.get()
	c.parent = s
	c.instrs = c.instrs[:0]
	c.props = append(c.props[:0], s.props...)
	c.computed, c.ownsComputed = s.computed, false
	c.communicated, c.ownsCommunicated = s.communicated, false
	c.placed = append(c.placed[:0], s.placed...)
	c.closedCost = s.closedCost
	c.openComm = s.openComm
	c.openComp = append(c.openComp[:0], s.openComp...)
	c.lastComp = s.lastComp
	c.remFlops = s.remFlops
	c.depth = s.depth + 1
	c.nextReq = s.nextReq
	c.complete = false
	return c
}

// release returns a state to the arena and recycles the bitsets it owns.
// Callers must guarantee no live state borrows those bitsets: fresh
// candidates discarded before gaining children, and beam-level states
// retired with no surviving child and no retained complete descendant,
// satisfy this (see runBeam's retirement discipline and DESIGN.md).
func (sy *Synthesizer) release(s *state) {
	if s.ownsComputed {
		s.stash(s.computed)
	}
	if s.ownsCommunicated {
		s.stash(s.communicated)
	}
	s.computed, s.communicated = nil, nil
	s.ownsComputed, s.ownsCommunicated = false, false
	s.parent = nil
	sy.arena.put(s)
}

func (sy *Synthesizer) releaseAll(states []*state) {
	for _, s := range states {
		if s != nil {
			sy.release(s)
		}
	}
}

// hasProp binary-searches the sorted property set.
func (s *state) hasProp(p theory.Property) bool {
	lo, hi := 0, len(s.props)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if propLess(s.props[mid], p) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s.props) && s.props[lo] == p
}

func (s *state) addProp(p theory.Property) {
	i := sort.Search(len(s.props), func(i int) bool { return propLess(p, s.props[i]) })
	s.props = append(s.props, theory.Property{})
	copy(s.props[i+1:], s.props[i:])
	s.props[i] = p
}

func propLess(a, b theory.Property) bool {
	if a.Ref != b.Ref {
		return a.Ref < b.Ref
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Dim < b.Dim
}

// key returns a 64-bit FNV-1a dedup key over the canonical state contents
// (sorted props, bitsets, placements, open-stage position). A hash key
// trades a vanishing collision probability for an order of magnitude less
// allocation in the search's hottest path.
func (s *state) key() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, p := range s.props {
		mix(uint64(uint32(p.Ref)) | uint64(p.Kind)<<32 | uint64(uint8(p.Dim))<<40)
	}
	mix(0xabcdef)
	for _, w := range s.computed {
		mix(w)
	}
	for _, w := range s.communicated {
		mix(w)
	}
	for i := 0; i < len(s.placed); i += 8 {
		var v uint64
		for j := 0; j < 8 && i+j < len(s.placed); j++ {
			v |= uint64(uint8(s.placed[i+j])) << (8 * j)
		}
		mix(v)
	}
	mix(uint64(uint32(s.lastComp)))
	return h
}

// program reconstructs the instruction sequence along the parent chain.
func (s *state) program(g *graph.Graph) *dist.Program {
	var chain []*state
	for cur := s; cur != nil; cur = cur.parent {
		chain = append(chain, cur)
	}
	p := &dist.Program{Graph: g}
	for i := len(chain) - 1; i >= 0; i-- {
		p.Instrs = append(p.Instrs, chain[i].instrs...)
	}
	return p
}

type entry struct {
	st    *state
	score float64
	index int
}

type pq []*entry

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].score < q[j].score }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i]; q[i].index = i; q[j].index = j }
func (q *pq) Push(x interface{}) { e := x.(*entry); e.index = len(*q); *q = append(*q, e) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Synthesizer holds the immutable search context.
type Synthesizer struct {
	g     *graph.Graph
	th    *theory.Theory
	c     *cluster.Cluster
	b     [][]float64
	opt   Options
	words int
	// ctx is the Run context: cancellation (client disconnect, caller
	// timeout) latches expired via a watcher goroutine, so every worker
	// aborts between candidate batches without polling ctx on the hot path.
	ctx context.Context
	// deadline is the wall-clock cutoff derived from Options.TimeBudget
	// (zero = unlimited), set at the start of Run.
	deadline time.Time
	// expired latches a TimeBudget violation or a ctx cancellation so every
	// beam worker observes it between candidate batches (prompt
	// cancellation, see expiredNow).
	expired atomic.Bool
	// span is the tracing span covering this search, resolved once from the
	// Run context. Nil when tracing is off — every use below is nil-safe, so
	// the hot path pays a pointer check per beam level and nothing per
	// candidate (guarded by the benchcheck allocs gate).
	span *obs.Span
	// totalFlopsPerSec is the admissible-heuristic denominator.
	totalFlopsPerSec float64
	outputs          []theory.Output
	// outputIdx maps a node id to its index in outputs, -1 otherwise — a
	// dense table replacing a map lookup in the search's hottest loops.
	outputIdx []int32
	// reqNodes lists the required non-leaf nodes in ascending id order: the
	// strict global topological schedule the beam walks (state.nextReq
	// indexes it, so finding the next computation is O(1) per state).
	reqNodes []graph.NodeID
	// commT and commPen memoize cost.CommTime and cost.AddIntraPenalty per
	// (ref, collective kind) — both are dim-independent, and the search
	// prices the same few collectives millions of times. commPen[ref] holds
	// the per-kind penalty vectors flattened with stride M.
	commT   [][numColl]float64
	commPen [][]float64

	// arena allocates and recycles beam states (and their slice backing);
	// retired states return at level boundaries (see release for the
	// aliasing discipline) and everything is dropped wholesale with the
	// Synthesizer when the search ends.
	arena stateArena

	// Serial scratch buffers for exact A* (never used concurrently).
	expandBuf []*state
	ccBuf     []commCand
}

// New prepares a synthesizer for one (graph, theory, cluster, ratios) tuple.
func New(g *graph.Graph, th *theory.Theory, c *cluster.Cluster, b [][]float64, opt Options) *Synthesizer {
	if opt.MaxExpansions == 0 {
		opt.MaxExpansions = 4_000_000
	}
	if opt.BeamWidth < 0 {
		// Exact A* is exponential in both graph size and the communication
		// branching (which grows with the device count); keep it for the
		// regimes where it finishes in milliseconds. The node bound is
		// deliberately tight: randomized differential testing showed ~40-node
		// training graphs where exact A* on 2 devices runs for minutes and
		// allocates gigabytes before MaxExpansions trips.
		if g.NumNodes() <= 24 && c.M() <= 2 {
			opt.BeamWidth = 0 // exact
		} else if opt.Seed != nil {
			// Seeded searches branch almost only on communication timing —
			// every pinned level emits one computation candidate — so a much
			// narrower beam loses nothing on the unchanged regions and still
			// searches the changed window with full candidate enumeration.
			opt.BeamWidth = seededBeamWidth
		} else {
			opt.BeamWidth = 48
		}
	}
	s := &Synthesizer{
		g: g, th: th, c: c, b: b, opt: opt,
		words:            (g.NumNodes() + 63) / 64,
		totalFlopsPerSec: c.TotalFlops(),
		outputs:          th.Outputs,
		outputIdx:        make([]int32, g.NumNodes()),
		commT:            make([][numColl]float64, g.NumNodes()),
		commPen:          make([][]float64, g.NumNodes()),
	}
	s.arena.init(g.NumNodes(), c.M())
	for i := range s.outputIdx {
		s.outputIdx[i] = -1
	}
	for i, o := range th.Outputs {
		s.outputIdx[o.Ref] = int32(i)
	}
	m := c.M()
	for i := range g.Nodes {
		id := graph.NodeID(i)
		if !th.Required[id] || theory.IsLeaf(g.Node(id).Kind) {
			continue
		}
		s.reqNodes = append(s.reqNodes, id)
		pen := make([]float64, numColl*m)
		for k := 0; k < numColl; k++ {
			in := dist.Comm(id, collective.Kind(k), 0, 0)
			s.commT[id][k] = cost.CommTime(c, g, in, b)
			cost.AddIntraPenalty(c, g, in, b, pen[k*m:(k+1)*m])
		}
		s.commPen[id] = pen
	}
	return s
}

// workers resolves Options.Workers (0 = GOMAXPROCS).
func (sy *Synthesizer) workers() int {
	w := sy.opt.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Synthesize runs the search under ctx and returns the best program found.
// Cancelling ctx aborts an in-flight search within one candidate batch.
func Synthesize(ctx context.Context, g *graph.Graph, th *theory.Theory, c *cluster.Cluster, b [][]float64, opt Options) (*dist.Program, Stats, error) {
	return New(g, th, c, b, opt).Run(ctx)
}

// rootState builds the empty-program search root.
func (sy *Synthesizer) rootState() *state {
	g := sy.g
	root := &state{
		computed:         make([]uint64, sy.words),
		communicated:     make([]uint64, sy.words),
		placed:           make([]int8, g.NumNodes()),
		openComp:         make([]float64, sy.c.M()),
		lastComp:         -1,
		ownsComputed:     true,
		ownsCommunicated: true,
	}
	for i := range root.placed {
		root.placed[i] = unplaced
	}
	for i := range g.Nodes {
		id := graph.NodeID(i)
		if sy.th.Required[id] && !theory.IsLeaf(g.Node(id).Kind) {
			root.remFlops += g.Flops(id)
		}
	}
	return root
}

// Run executes the search under ctx: exact A* (Fig. 10) when BeamWidth is
// zero, a level-synchronized (optionally multi-core) beam search otherwise.
// ctx cancellation and TimeBudget expiry share the same latch, so both abort
// the search within one candidate batch.
func (sy *Synthesizer) Run(ctx context.Context) (*dist.Program, Stats, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	sy.ctx = ctx
	// One context lookup per search; nil (tracing off) makes every span call
	// below a no-op.
	sy.span = obs.SpanFromContext(ctx).Child("search")
	if sy.span != nil {
		if sy.opt.BeamWidth > 0 {
			sy.span.SetAttrStr("mode", "beam")
			sy.span.SetAttrInt("beam_width", int64(sy.opt.BeamWidth))
			sy.span.SetAttrInt("workers", int64(sy.workers()))
		} else {
			sy.span.SetAttrStr("mode", "astar")
		}
		sy.span.SetAttrInt("nodes", int64(sy.g.NumNodes()))
	}
	if sy.opt.TimeBudget > 0 {
		sy.deadline = start.Add(sy.opt.TimeBudget)
	}
	// An already-cancelled context must abort deterministically, not race
	// the watcher goroutine against a fast search.
	sy.expired.Store(ctx.Err() != nil)
	// The watcher turns ctx cancellation into the expired latch the search
	// already polls, keeping ctx.Err() (a mutex acquisition in the common
	// cancelCtx case) off the per-expansion hot path.
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				sy.expired.Store(true)
			case <-stop:
			}
		}()
	}
	root := sy.rootState()

	var best *state
	var stats Stats
	var err error
	if sy.opt.BeamWidth > 0 {
		start := root
		if sy.opt.Seed != nil {
			var applied int
			var done bool
			start, applied, done = sy.fastForward(root)
			if sy.span != nil {
				sy.span.SetAttrFloat("seed_distance", sy.opt.Seed.Distance)
				sy.span.SetAttrInt("seed_prefix", int64(applied))
			}
			if done {
				// The whole donor program replayed: the state is complete and
				// byte-identical to the donor — nothing left to search.
				best, stats = start, Stats{Pushed: applied}
			}
		}
		if best == nil {
			best, stats, err = sy.runBeam(start)
		}
		stats.Seeded = sy.opt.Seed != nil
	} else {
		best, stats, err = sy.runAStar(root)
	}
	stats.Elapsed = time.Since(start)
	if err != nil {
		if sy.span != nil {
			sy.span.SetAttrInt("expansions", int64(stats.Expansions))
			sy.span.SetAttrStr("error", err.Error())
			sy.span.End()
		}
		return nil, stats, err
	}
	stats.Cost = best.effCost()
	if sy.span != nil {
		sy.span.SetAttrInt("expansions", int64(stats.Expansions))
		sy.span.SetAttrInt("pushed", int64(stats.Pushed))
		sy.span.SetAttrFloat("cost", stats.Cost)
		sy.span.End()
	}
	return best.program(sy.g), stats, nil
}

// runAStar is the exact search of Fig. 10.
func (sy *Synthesizer) runAStar(root *state) (*state, Stats, error) {
	var queue pq
	heap.Push(&queue, &entry{st: root, score: sy.score(root)})
	visited := map[uint64]float64{root.key(): root.effCost()}

	var best *state
	bestCost := 0.0
	stats := Stats{Pushed: 1}

	for queue.Len() > 0 {
		e := heap.Pop(&queue).(*entry)
		s := e.st
		if best != nil && e.score >= bestCost {
			break // nothing cheaper remains (Fig. 10 termination)
		}
		if s.complete {
			best, bestCost = s, s.effCost()
			break
		}
		stats.Expansions++
		if stats.Expansions > sy.opt.MaxExpansions {
			return nil, stats, fmt.Errorf("synth: exceeded %d expansions", sy.opt.MaxExpansions)
		}
		if err := sy.overBudget(stats.Expansions); err != nil {
			return nil, stats, err
		}
		sy.expandBuf = sy.expandFrom(s, true, sy.expandBuf[:0])
		for _, next := range sy.expandBuf {
			k := next.key()
			ec := next.effCost()
			if prev, ok := visited[k]; ok && prev <= ec+1e-15 {
				continue
			}
			visited[k] = ec
			if next.complete && (best == nil || ec < bestCost) {
				best, bestCost = next, ec
			}
			heap.Push(&queue, &entry{st: next, score: sy.score(next)})
			stats.Pushed++
		}
	}
	if best == nil {
		return nil, stats, fmt.Errorf("synth: no complete program found")
	}
	return best, stats, nil
}

// beamCand is a scored, not-yet-materialized successor for the beam.
type beamCand struct {
	parent int32          // index into the current level
	tr     *theory.Triple // nil for communication candidates
	cc     commCand
	score  float64
}

// candRef is the compact record the merge sorts: 16 bytes instead of the
// full candidate, so the sort — the beam's only serial O(C log C) step —
// moves cache lines, not structs.
type candRef struct {
	score float64
	idx   int32 // index into the level's candidate arena
}

// beamWorker is one worker's per-level scratch.
type beamWorker struct {
	out        []beamCand
	ccBuf      []commCand
	expansions int
}

// genCandidates scores every successor of s without materializing it,
// appending to the worker's buffer. Safe to run concurrently for distinct
// states: it reads only s and the immutable search context.
func (sy *Synthesizer) genCandidates(s *state, pi int32, w *beamWorker) {
	// Computation: strict global topological order — only the lowest
	// uncomputed required node (see expandFrom). The beam computes required
	// nodes in ascending id order, so the computed set is always a prefix of
	// reqNodes and nextReq finds the candidate node in O(1).
	if int(s.nextReq) < len(sy.reqNodes) {
		id := sy.reqNodes[s.nextReq]
		trs := sy.th.ByNode[id]
		// A seeded node emits only its pinned candidate while the pin is
		// applicable; an inapplicable pin (changed-region interference)
		// degrades to full enumeration.
		if sd := sy.opt.Seed; sd != nil && sd.compPin[id] != nil {
			if pin := sd.compPin[id]; !(sy.opt.DisableSFB && sy.isSFBTriple(pin)) && sy.compApplicable(s, pin) {
				trs = sd.compPinOne[id]
			}
		}
		for _, tr := range trs {
			if sy.opt.DisableSFB && sy.isSFBTriple(tr) {
				continue
			}
			if sy.compApplicable(s, tr) {
				score := sy.compDelta(s, tr) + (s.remFlops-sy.g.Flops(id))/sy.totalFlopsPerSec
				w.out = append(w.out, beamCand{parent: pi, tr: tr, score: score})
			}
		}
	}
	// Communication candidates for live, uncommunicated tensors.
	for _, p := range s.props {
		if bitGet(s.communicated, p.Ref) {
			continue
		}
		if oi := sy.outputIdx[p.Ref]; oi >= 0 && sy.outputAcceptable(s, sy.outputs[oi]) {
			continue
		}
		w.ccBuf = sy.commCandidates(s, p, w.ccBuf[:0])
		// A pinned tensor keeps only its donor collective when legal here;
		// timing — which level takes it — stays free.
		if sd := sy.opt.Seed; sd != nil && sd.commPin[p.Ref].valid {
			pin := sd.commPin[p.Ref]
			for _, cc := range w.ccBuf {
				if cc.in.Coll == pin.coll && cc.in.Dim == pin.dim && cc.in.Dim2 == pin.dim2 {
					w.ccBuf[0] = cc
					w.ccBuf = w.ccBuf[:1]
					break
				}
			}
		}
		for _, cc := range w.ccBuf {
			score := sy.commDelta(s, cc) + s.remFlops/sy.totalFlopsPerSec
			w.out = append(w.out, beamCand{parent: pi, cc: cc, score: score})
		}
	}
}

// materialize turns a scored candidate into a state. Comp candidates advance
// nextReq past the node they compute.
func (sy *Synthesizer) materialize(level []*state, c *beamCand) *state {
	parent := level[c.parent]
	if c.tr != nil {
		ns := sy.applyComp(parent, c.tr)
		if ns != nil {
			ns.nextReq = parent.nextReq + 1
		}
		return ns
	}
	return sy.applyComm(parent, c.cc)
}

// runBeam is the level-synchronized beam search used for model-scale graphs:
// level k holds partial programs with k instructions; the best BeamWidth
// states per level (by A* score) advance.
//
// Each level runs in three phases. (1) Candidate generation and scoring fan
// out over Options.Workers goroutines, each worker owning a contiguous chunk
// of the level's states, so the concatenated candidate arena is always in
// (parent index, candidate index) order regardless of worker count. (2) The
// candidates are sorted by score with a deterministic algorithm over that
// fixed arena order, giving one merge order for every worker count — the
// surviving beam, and therefore the emitted program, is byte-identical
// whether the level ran on 1 worker or 16. (3) Survivors are materialized
// (in parallel batches; selection itself stays serial in merge order) with
// dedup by state key; level states that produced no surviving child are
// released to the state pool. Bounded suboptimality traded for a hard bound
// on search effort; see DESIGN.md.
func (sy *Synthesizer) runBeam(root *state) (*state, Stats, error) {
	var stats Stats
	var best *state
	bestCost := 0.0
	W := sy.workers()
	ws := make([]*beamWorker, W)
	for i := range ws {
		ws[i] = &beamWorker{}
	}
	var (
		arena []beamCand
		refs  []candRef
		mats  []*state
		kept  []bool
		next  []*state
	)
	visited := map[uint64]struct{}{}
	level := []*state{root}
	maxLevels := 3*sy.g.NumNodes() + 100
	for depth := 0; depth < maxLevels && len(level) > 0; depth++ {
		// One span per beam level (nil when tracing is off — the only cost
		// then is this nil check, not per-candidate work).
		lv := sy.span.Child("beam_level")
		n := len(level)
		workers := W
		if workers > n {
			workers = n
		}
		// Phase 1: generation + scoring. Contiguous chunks keep the
		// concatenated arena ordered by (parent, enumeration index) — the
		// deterministic tie-break of the merge.
		if workers <= 1 {
			w := ws[0]
			w.out = w.out[:0]
			for pi := 0; pi < n; pi++ {
				stats.Expansions++
				if err := sy.overBudget(stats.Expansions); err != nil {
					return nil, stats, err
				}
				sy.genCandidates(level[pi], int32(pi), w)
			}
			arena, w.out = w.out, arena // swap, don't copy: both are scratch
		} else {
			chunk := (n + workers - 1) / workers
			var wg sync.WaitGroup
			for c := 0; c < workers; c++ {
				lo := c * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				w := ws[c]
				w.out = w.out[:0]
				w.expansions = 0
				if lo >= hi {
					continue
				}
				wg.Add(1)
				go func(lo, hi int, w *beamWorker) {
					defer wg.Done()
					for pi := lo; pi < hi; pi++ {
						// Budget cancellation propagates per candidate batch:
						// every worker re-checks the shared flag/deadline
						// between states and bails as soon as any trips it.
						if sy.expiredNow() {
							return
						}
						w.expansions++
						sy.genCandidates(level[pi], int32(pi), w)
					}
				}(lo, hi, w)
			}
			wg.Wait()
			arena = arena[:0]
			for c := 0; c < workers; c++ {
				stats.Expansions += ws[c].expansions
				arena = append(arena, ws[c].out...)
			}
			if sy.expired.Load() {
				return nil, stats, sy.overBudget(stats.Expansions)
			}
		}
		// Phase 2: deterministic merge order.
		refs = refs[:0]
		for i := range arena {
			refs = append(refs, candRef{score: arena[i].score, idx: int32(i)})
		}
		sort.Slice(refs, func(a, b int) bool { return refs[a].score < refs[b].score })
		// Phase 3: materialize + select survivors in merge order.
		clear(visited)
		next = next[:0]
		if cap(kept) < n {
			kept = make([]bool, n)
		}
		kept = kept[:n]
		for i := range kept {
			kept[i] = false
		}
		batch := 1
		if workers > 1 {
			batch = 4 * workers
		}
		i := 0
	selection:
		for i < len(refs) {
			if best != nil && refs[i].score >= bestCost {
				break // sorted: nothing further can improve
			}
			j := i + batch
			if j > len(refs) {
				j = len(refs)
			}
			mats = mats[:0]
			if j-i == 1 || workers <= 1 {
				j = i + 1
				mats = append(mats, sy.materialize(level, &arena[refs[i].idx]))
			} else {
				for k := i; k < j; k++ {
					mats = append(mats, nil)
				}
				var wg sync.WaitGroup
				for c := 0; c < workers && c < j-i; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						for k := i + c; k < j; k += workers {
							mats[k-i] = sy.materialize(level, &arena[refs[k].idx])
						}
					}(c)
				}
				wg.Wait()
			}
			for k := i; k < j; k++ {
				ns := mats[k-i]
				if best != nil && refs[k].score >= bestCost {
					sy.releaseAll(mats[k-i:])
					break selection
				}
				if ns == nil {
					continue
				}
				stats.Pushed++
				if ns.complete {
					if ec := ns.effCost(); best == nil || ec < bestCost {
						best, bestCost = ns, ec
						kept[arena[refs[k].idx].parent] = true
					} else {
						sy.release(ns)
					}
					continue
				}
				key := ns.key()
				if _, ok := visited[key]; ok {
					sy.release(ns)
					continue
				}
				visited[key] = struct{}{}
				next = append(next, ns)
				kept[arena[refs[k].idx].parent] = true
				if len(next) >= sy.opt.BeamWidth {
					sy.releaseAll(mats[k-i+1:])
					break selection
				}
			}
			i = j
		}
		// Retire this level: states that produced no surviving child and are
		// not the parent of a retained complete state have no live borrowers
		// and go back to the pool. Ancestors of survivors stay referenced
		// through parent chains and are never revisited.
		for pi, s := range level {
			if !kept[pi] {
				sy.release(s)
			}
		}
		if lv != nil {
			lv.SetAttrInt("depth", int64(depth))
			lv.SetAttrInt("states", int64(n))
			lv.SetAttrInt("candidates", int64(len(arena)))
			lv.SetAttrInt("survivors", int64(len(next)))
			lv.End()
		}
		level, next = next, level
	}
	if best == nil {
		return nil, stats, fmt.Errorf("synth: beam search found no complete program")
	}
	return best, stats, nil
}

// overBudget reports a wall-clock budget violation or a ctx cancellation.
// Checked once per expansion — the search's unit of real work, whose cost
// dwarfs the latch read — so a search never overshoots its budget by more
// than one expansion.
func (sy *Synthesizer) overBudget(expansions int) error {
	if !sy.expiredNow() {
		return nil
	}
	if err := sy.ctx.Err(); err != nil {
		return fmt.Errorf("synth: search aborted after %d expansions: %w", expansions, err)
	}
	return fmt.Errorf("synth: exceeded %v time budget after %d expansions", sy.opt.TimeBudget, expansions)
}

// expiredNow reports (and latches, so concurrent workers short-circuit
// without re-reading the clock) whether the TimeBudget deadline has passed
// or the Run context was cancelled (the watcher goroutine sets the latch).
func (sy *Synthesizer) expiredNow() bool {
	if sy.expired.Load() {
		return true
	}
	if sy.deadline.IsZero() {
		return false
	}
	if time.Now().After(sy.deadline) {
		sy.expired.Store(true)
		return true
	}
	return false
}

// score is cost(Q) + ecost(Q): the A* priority. ecost is the remaining flops
// at full-cluster speed (infinite bandwidth), an admissible lower bound.
func (sy *Synthesizer) score(s *state) float64 {
	return s.effCost() + s.remFlops/sy.totalFlopsPerSec
}

// expandFrom enumerates successors into out. In canonical mode (exact A*)
// the next computation must have a node id above the last one in the open
// stage, collapsing cost-equivalent permutations: any program can be
// reordered so comps within a stage ascend. Beam mode instead forces strict
// global topological order — the natural forward-then-backward training
// schedule — so that leaf placements are decided by forward consumers;
// without this, a beam thread can place a parameter from its backward
// transpose first and corner itself (the exact queue recovers through
// alternative orderings, a beam cannot).
func (sy *Synthesizer) expandFrom(s *state, canonical bool, out []*state) []*state {
	g := sy.g
	first := 0
	if canonical {
		first = int(s.lastComp) + 1
	}
	for i := first; i < g.NumNodes(); i++ {
		id := graph.NodeID(i)
		if !sy.th.Required[id] || bitGet(s.computed, id) || theory.IsLeaf(g.Node(id).Kind) {
			continue
		}
		if !sy.ready(s, id) {
			if canonical {
				continue
			}
			break // global order: cannot happen, but stay safe
		}
		for _, tr := range sy.th.ByNode[id] {
			if sy.opt.DisableSFB && sy.isSFBTriple(tr) {
				continue
			}
			if ns := sy.applyComp(s, tr); ns != nil {
				out = append(out, ns)
			}
		}
		if !canonical {
			break // beam: only the lowest uncomputed node is a candidate
		}
	}
	// Communication candidates for live, uncommunicated, non-leaf tensors.
	for _, p := range s.props {
		if bitGet(s.communicated, p.Ref) {
			continue
		}
		if oi := sy.outputIdx[p.Ref]; oi >= 0 && sy.outputAcceptable(s, sy.outputs[oi]) {
			continue // already in final form; more communication is waste
		}
		out = sy.commSuccessors(s, p, out)
	}
	return out
}

// ready reports whether every non-leaf input of id is computed.
func (sy *Synthesizer) ready(s *state, id graph.NodeID) bool {
	for _, in := range sy.g.Node(id).Inputs {
		if theory.IsLeaf(sy.g.Node(in).Kind) {
			continue
		}
		if !bitGet(s.computed, in) {
			return false
		}
	}
	return true
}

func (sy *Synthesizer) isSFBTriple(tr *theory.Triple) bool {
	return !tr.FlopsScaled && sy.g.Node(tr.Node).Kind == graph.MatMul && len(tr.Pre) == 2
}

// compApplicable checks a computation triple's preconditions without
// materializing the successor state.
func (sy *Synthesizer) compApplicable(s *state, tr *theory.Triple) bool {
	for _, p := range tr.Pre {
		if !s.hasProp(p) {
			return false
		}
	}
	for _, p := range tr.LeafPre {
		want := replicated
		if p.Kind == theory.Gather {
			want = int8(p.Dim)
		}
		if got := s.placed[p.Ref]; got != want && got != unplaced {
			return false
		}
	}
	return true
}

// compDelta returns the per-device open-stage time increase of applying tr,
// without allocation (the beam's candidate-scoring fast path).
func (sy *Synthesizer) compDelta(s *state, tr *theory.Triple) float64 {
	flops := sy.g.Flops(tr.Node)
	seg := sy.g.Segment(tr.Node)
	worst := 0.0
	for j, d := range sy.c.Devices {
		f := flops
		if tr.FlopsScaled {
			f *= sy.b[seg][j]
		}
		if t := s.openComp[j] + f/d.Flops(); t > worst {
			worst = t
		}
	}
	return s.closedCost + s.openComm + worst
}

// applyComp attempts to append tr (with fused leaf loaders); nil if the
// preconditions do not hold.
func (sy *Synthesizer) applyComp(s *state, tr *theory.Triple) *state {
	if !sy.compApplicable(s, tr) {
		return nil
	}
	ns := sy.clone(s)
	for _, p := range tr.LeafPre {
		if s.placed[p.Ref] != unplaced {
			continue
		}
		if p.Kind == theory.Gather {
			ns.placed[p.Ref] = int8(p.Dim)
		} else {
			ns.placed[p.Ref] = replicated
		}
		ns.instrs = append(ns.instrs, theory.LeafInstr(sy.g, p))
	}
	in := tr.Instr(sy.g)
	ns.instrs = append(ns.instrs, in)
	ns.setComputed(tr.Node)
	if !ns.hasProp(tr.Out) {
		ns.addProp(tr.Out)
	}
	ns.lastComp = tr.Node
	ns.remFlops -= sy.g.Flops(tr.Node)
	cost.AddCompTimes(sy.c, sy.g, in, sy.b, ns.openComp)
	sy.pruneDead(ns, tr.Node)
	ns.complete = sy.isComplete(ns)
	return ns
}

// commCand is a not-yet-materialized communication successor.
type commCand struct {
	in  dist.Instruction
	res theory.Property
}

// commCandidates yields the communication instructions applicable to p,
// without materializing states.
func (sy *Synthesizer) commCandidates(s *state, p theory.Property, out []commCand) []commCand {
	g := sy.g
	rank := len(g.Node(p.Ref).Shape)
	// An output tensor is communicated at most once (opt 2), so that one
	// communication must land directly on an acceptable final form; anything
	// else makes the output permanently unacceptable.
	oi := sy.outputIdx[p.Ref]
	isOutput := oi >= 0
	var output theory.Output
	outDim := -1
	if isOutput {
		output = sy.outputs[oi]
		if output.Param >= 0 {
			switch pd := s.placed[output.Param]; pd {
			case unplaced:
				return out // placement unknown: communicating now could corner us
			case replicated:
				outDim = -1
			default:
				outDim = int(pd)
			}
		}
	}
	try := func(in dist.Instruction, res theory.Property) {
		if s.hasProp(res) {
			return // postcondition subsumed: strictly worse (line 7)
		}
		if isOutput {
			if !output.Acceptable(res, outDim) {
				return
			}
		} else if !sy.th.IsWanted(res) {
			return // no triple's precondition can use the result
		}
		out = append(out, commCand{in: in, res: res})
	}

	switch p.Kind {
	case theory.Reduce:
		try(dist.Comm(p.Ref, collective.AllReduce, 0, 0), theory.Id(p.Ref))
		for d := 0; d < rank; d++ {
			try(dist.Comm(p.Ref, collective.ReduceScatter, d, 0), theory.Shard(p.Ref, d))
		}
	case theory.Gather:
		d := int(p.Dim)
		try(dist.Comm(p.Ref, collective.PaddedAllGather, d, 0), theory.Id(p.Ref))
		if !sy.opt.DisableGroupedBroadcast {
			try(dist.Comm(p.Ref, collective.GroupedBroadcast, d, 0), theory.Id(p.Ref))
		}
		for d2 := 0; d2 < rank; d2++ {
			if d2 != d {
				try(dist.Comm(p.Ref, collective.AllToAll, d, d2), theory.Shard(p.Ref, d2))
			}
		}
	}
	return out
}

// applyComm materializes a communication successor.
func (sy *Synthesizer) applyComm(s *state, cc commCand) *state {
	ns := sy.clone(s)
	ns.instrs = append(ns.instrs, cc.in)
	ns.setCommunicated(cc.in.Ref)
	ns.addProp(cc.res)
	// Close the open stage (Sec. 3.2): its comm + worst comp are paid.
	worst := 0.0
	for _, v := range ns.openComp {
		if v > worst {
			worst = v
		}
	}
	ns.closedCost += ns.openComm + worst
	k := int(cc.in.Coll)
	pen := sy.commPen[cc.in.Ref]
	m := len(ns.openComp)
	copy(ns.openComp, pen[k*m:(k+1)*m])
	ns.openComm = sy.commT[cc.in.Ref][k]
	ns.lastComp = -1
	ns.complete = sy.isComplete(ns)
	return ns
}

// commDelta estimates the materialized effCost of a comm successor.
func (sy *Synthesizer) commDelta(s *state, cc commCand) float64 {
	worst := 0.0
	for _, v := range s.openComp {
		if v > worst {
			worst = v
		}
	}
	return s.closedCost + s.openComm + worst + sy.commT[cc.in.Ref][int(cc.in.Coll)]
}

// commSuccessors materializes all communication successors of p into out.
func (sy *Synthesizer) commSuccessors(s *state, p theory.Property, out []*state) []*state {
	sy.ccBuf = sy.commCandidates(s, p, sy.ccBuf[:0])
	for _, cc := range sy.ccBuf {
		out = append(out, sy.applyComm(s, cc))
	}
	return out
}

// pruneDead drops properties of tensors whose consumers are all computed
// (optimization 3), keeping required outputs.
func (sy *Synthesizer) pruneDead(s *state, justComputed graph.NodeID) {
	check := func(u graph.NodeID) {
		if sy.outputIdx[u] >= 0 {
			return
		}
		for _, c := range sy.th.Consumers[u] {
			if sy.th.Required[c] && !bitGet(s.computed, c) {
				return
			}
		}
		// Dead: remove all props of u.
		w := s.props[:0]
		for _, p := range s.props {
			if p.Ref != u {
				w = append(w, p)
			}
		}
		s.props = w
	}
	for _, u := range sy.g.Node(justComputed).Inputs {
		if !theory.IsLeaf(sy.g.Node(u).Kind) {
			check(u)
		}
	}
	// The freshly computed node may itself have no pending consumers left
	// only in degenerate graphs; checking costs little.
	check(justComputed)
}

func (sy *Synthesizer) outputAcceptable(s *state, o theory.Output) bool {
	dim := -1
	if o.Param >= 0 {
		switch pd := s.placed[o.Param]; pd {
		case unplaced:
			return false
		case replicated:
			dim = -1
		default:
			dim = int(pd)
		}
	}
	// props are sorted by Ref first: binary-search the run of o.Ref.
	lo, hi := 0, len(s.props)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.props[mid].Ref < o.Ref {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for ; lo < len(s.props) && s.props[lo].Ref == o.Ref; lo++ {
		if o.Acceptable(s.props[lo], dim) {
			return true
		}
	}
	return false
}

func (sy *Synthesizer) isComplete(s *state) bool {
	for _, o := range sy.outputs {
		if !sy.outputAcceptable(s, o) {
			return false
		}
	}
	return true
}
