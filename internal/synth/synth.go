// Package synth implements HAP's distributed-program synthesizer: the
// A*-based search of Fig. 10 over the background theory of Sec. 4.2.
//
// Starting from the empty program, the search appends instructions whose
// Hoare-triple preconditions hold, until every required output (the loss and
// each parameter gradient) is materialized acceptably. States are partial
// programs summarized by their property sets; exact-duplicate states keep
// the cheaper program, and strictly-worse states are pruned (lines 9–14 of
// Fig. 10).
//
// The three search-time optimizations of Sec. 4.5 are implemented as:
//
//  1. leaf fusion — Placeholder/Parameter/Ones loaders are emitted together
//     with their first consumer, never enumerated standalone;
//  2. one communication per reference tensor, and none for leaves, enforced
//     with a communicated bitset;
//  3. liveness pruning — a tensor's properties are dropped once every
//     consumer is computed (required outputs are exempt).
//
// Two engineering additions keep large training graphs tractable and are
// documented in DESIGN.md: computation instructions within a stage are
// emitted in canonical (ascending node id) order, which collapses
// cost-equivalent permutations without losing any stage partition; and an
// optional beam bound caps expansions per search depth for model-scale
// graphs (exact search remains the default for small graphs).
package synth

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"hap/internal/cluster"
	"hap/internal/collective"
	"hap/internal/cost"
	"hap/internal/dist"
	"hap/internal/graph"
	"hap/internal/theory"
)

// Options tunes the search.
type Options struct {
	// BeamWidth caps expansions per depth (0 = exact A*; negative = choose
	// automatically: exact for small graphs, beam for model-scale ones).
	BeamWidth int
	// MaxExpansions aborts runaway searches (0 = 4,000,000).
	MaxExpansions int
	// TimeBudget aborts searches whose wall-clock time exceeds it (0 = no
	// limit). MaxExpansions bounds memory, not time: an adversarial graph
	// can spend minutes inside its expansion budget. Serving stacks set
	// this so one request cannot hold a worker indefinitely.
	TimeBudget time.Duration
	// DisableGroupedBroadcast removes the grouped-Broadcast All-Gather
	// implementation (ablation "C", Sec. 7.4).
	DisableGroupedBroadcast bool
	// DisableSFB removes replicated-MatMul triples on non-leaf operands,
	// which is what sufficient factor broadcasting synthesizes through.
	DisableSFB bool
}

// Auto returns BeamWidth -1 options (automatic mode selection).
func Auto() Options { return Options{BeamWidth: -1} }

// Stats reports search effort.
type Stats struct {
	Expansions int
	Pushed     int
	Elapsed    time.Duration
	Cost       float64 // estimated t(Q,B) of the returned program
}

const (
	unplaced   = int8(-2)
	replicated = int8(-1)
)

// state is a partial program: the property set plus progress bookkeeping.
type state struct {
	parent *state
	instrs []dist.Instruction // appended by this step (leaf loaders + op, or one comm)

	props        []theory.Property // sorted canonical property set (live, non-leaf)
	computed     []uint64          // nodes computed
	communicated []uint64          // tensors already communicated (opt 2)
	placed       []int8            // leaf placement: unplaced/replicated/dim

	closedCost float64   // cost of all closed stages
	openComm   float64   // comm cost of the open stage
	openComp   []float64 // per-device comp time of the open stage
	lastComp   graph.NodeID
	remFlops   float64
	depth      int32 // instructions so far (for beam leveling)
	complete   bool
}

func (s *state) effCost() float64 {
	worst := 0.0
	for _, v := range s.openComp {
		if v > worst {
			worst = v
		}
	}
	return s.closedCost + s.openComm + worst
}

func bitGet(b []uint64, i graph.NodeID) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }
func bitSet(b []uint64, i graph.NodeID)      { b[i/64] |= 1 << (uint(i) % 64) }

func (s *state) clone() *state {
	c := &state{
		parent:       s,
		props:        append([]theory.Property(nil), s.props...),
		computed:     append([]uint64(nil), s.computed...),
		communicated: append([]uint64(nil), s.communicated...),
		placed:       append([]int8(nil), s.placed...),
		closedCost:   s.closedCost,
		openComm:     s.openComm,
		openComp:     append([]float64(nil), s.openComp...),
		lastComp:     s.lastComp,
		remFlops:     s.remFlops,
		depth:        s.depth + 1,
	}
	return c
}

func (s *state) hasProp(p theory.Property) bool {
	for _, q := range s.props {
		if q == p {
			return true
		}
	}
	return false
}

func (s *state) addProp(p theory.Property) {
	i := sort.Search(len(s.props), func(i int) bool { return propLess(p, s.props[i]) })
	s.props = append(s.props, theory.Property{})
	copy(s.props[i+1:], s.props[i:])
	s.props[i] = p
}

func propLess(a, b theory.Property) bool {
	if a.Ref != b.Ref {
		return a.Ref < b.Ref
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Dim < b.Dim
}

// key returns a 64-bit FNV-1a dedup key over the canonical state contents
// (sorted props, bitsets, placements, open-stage position). A hash key
// trades a vanishing collision probability for an order of magnitude less
// allocation in the search's hottest path.
func (s *state) key() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, p := range s.props {
		mix(uint64(uint32(p.Ref)) | uint64(p.Kind)<<32 | uint64(uint8(p.Dim))<<40)
	}
	mix(0xabcdef)
	for _, w := range s.computed {
		mix(w)
	}
	for _, w := range s.communicated {
		mix(w)
	}
	for i := 0; i < len(s.placed); i += 8 {
		var v uint64
		for j := 0; j < 8 && i+j < len(s.placed); j++ {
			v |= uint64(uint8(s.placed[i+j])) << (8 * j)
		}
		mix(v)
	}
	mix(uint64(uint32(s.lastComp)))
	return h
}

// program reconstructs the instruction sequence along the parent chain.
func (s *state) program(g *graph.Graph) *dist.Program {
	var chain []*state
	for cur := s; cur != nil; cur = cur.parent {
		chain = append(chain, cur)
	}
	p := &dist.Program{Graph: g}
	for i := len(chain) - 1; i >= 0; i-- {
		p.Instrs = append(p.Instrs, chain[i].instrs...)
	}
	return p
}

type entry struct {
	st    *state
	score float64
	index int
}

type pq []*entry

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].score < q[j].score }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i]; q[i].index = i; q[j].index = j }
func (q *pq) Push(x interface{}) { e := x.(*entry); e.index = len(*q); *q = append(*q, e) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Synthesizer holds the immutable search context.
type Synthesizer struct {
	g     *graph.Graph
	th    *theory.Theory
	c     *cluster.Cluster
	b     [][]float64
	opt   Options
	words int
	// deadline is the wall-clock cutoff derived from Options.TimeBudget
	// (zero = unlimited), set at the start of Run.
	deadline time.Time
	// totalFlopsPerSec is the admissible-heuristic denominator.
	totalFlopsPerSec float64
	outputs          []theory.Output
	outputByRef      map[graph.NodeID]theory.Output
}

// New prepares a synthesizer for one (graph, theory, cluster, ratios) tuple.
func New(g *graph.Graph, th *theory.Theory, c *cluster.Cluster, b [][]float64, opt Options) *Synthesizer {
	if opt.MaxExpansions == 0 {
		opt.MaxExpansions = 4_000_000
	}
	if opt.BeamWidth < 0 {
		// Exact A* is exponential in both graph size and the communication
		// branching (which grows with the device count); keep it for the
		// regimes where it finishes in milliseconds. The node bound is
		// deliberately tight: randomized differential testing showed ~40-node
		// training graphs where exact A* on 2 devices runs for minutes and
		// allocates gigabytes before MaxExpansions trips.
		if g.NumNodes() <= 24 && c.M() <= 2 {
			opt.BeamWidth = 0 // exact
		} else {
			opt.BeamWidth = 48
		}
	}
	s := &Synthesizer{
		g: g, th: th, c: c, b: b, opt: opt,
		words:            (g.NumNodes() + 63) / 64,
		totalFlopsPerSec: c.TotalFlops(),
		outputs:          th.Outputs,
		outputByRef:      map[graph.NodeID]theory.Output{},
	}
	for _, o := range th.Outputs {
		s.outputByRef[o.Ref] = o
	}
	return s
}

// Synthesize runs the search and returns the best program found.
func Synthesize(g *graph.Graph, th *theory.Theory, c *cluster.Cluster, b [][]float64, opt Options) (*dist.Program, Stats, error) {
	return New(g, th, c, b, opt).Run()
}

// Run executes the search: exact A* (Fig. 10) when BeamWidth is zero, a
// level-synchronized beam search otherwise.
func (sy *Synthesizer) Run() (*dist.Program, Stats, error) {
	start := time.Now()
	if sy.opt.TimeBudget > 0 {
		sy.deadline = start.Add(sy.opt.TimeBudget)
	}
	g := sy.g
	root := &state{
		computed:     make([]uint64, sy.words),
		communicated: make([]uint64, sy.words),
		placed:       make([]int8, g.NumNodes()),
		openComp:     make([]float64, sy.c.M()),
		lastComp:     -1,
	}
	for i := range root.placed {
		root.placed[i] = unplaced
	}
	for i := range g.Nodes {
		id := graph.NodeID(i)
		if sy.th.Required[id] && !theory.IsLeaf(g.Node(id).Kind) {
			root.remFlops += g.Flops(id)
		}
	}

	var best *state
	var stats Stats
	var err error
	if sy.opt.BeamWidth > 0 {
		best, stats, err = sy.runBeam(root)
	} else {
		best, stats, err = sy.runAStar(root)
	}
	stats.Elapsed = time.Since(start)
	if err != nil {
		return nil, stats, err
	}
	stats.Cost = best.effCost()
	return best.program(g), stats, nil
}

// runAStar is the exact search of Fig. 10.
func (sy *Synthesizer) runAStar(root *state) (*state, Stats, error) {
	var queue pq
	heap.Push(&queue, &entry{st: root, score: sy.score(root)})
	visited := map[uint64]float64{root.key(): root.effCost()}

	var best *state
	bestCost := 0.0
	stats := Stats{Pushed: 1}

	for queue.Len() > 0 {
		e := heap.Pop(&queue).(*entry)
		s := e.st
		if best != nil && e.score >= bestCost {
			break // nothing cheaper remains (Fig. 10 termination)
		}
		if s.complete {
			best, bestCost = s, s.effCost()
			break
		}
		stats.Expansions++
		if stats.Expansions > sy.opt.MaxExpansions {
			return nil, stats, fmt.Errorf("synth: exceeded %d expansions", sy.opt.MaxExpansions)
		}
		if err := sy.overBudget(stats.Expansions); err != nil {
			return nil, stats, err
		}
		for _, next := range sy.expand(s) {
			k := next.key()
			ec := next.effCost()
			if prev, ok := visited[k]; ok && prev <= ec+1e-15 {
				continue
			}
			visited[k] = ec
			if next.complete && (best == nil || ec < bestCost) {
				best, bestCost = next, ec
			}
			heap.Push(&queue, &entry{st: next, score: sy.score(next)})
			stats.Pushed++
		}
	}
	if best == nil {
		return nil, stats, fmt.Errorf("synth: no complete program found")
	}
	return best, stats, nil
}

// beamCand is a scored, not-yet-materialized successor for the beam.
type beamCand struct {
	parent *state
	tr     *theory.Triple // nil for communication candidates
	cc     commCand
	score  float64
}

// runBeam is the level-synchronized beam search used for model-scale graphs:
// level k holds partial programs with k instructions; the best BeamWidth
// states per level (by A* score) advance. Candidates are scored without
// materialization and only the survivors are cloned, which keeps the search
// allocation-light. Bounded suboptimality traded for a hard bound on search
// effort; see DESIGN.md.
func (sy *Synthesizer) runBeam(root *state) (*state, Stats, error) {
	var stats Stats
	var best *state
	bestCost := 0.0
	level := []*state{root}
	maxLevels := 3*sy.g.NumNodes() + 100
	var cands []beamCand
	var ccBuf []commCand
	for depth := 0; depth < maxLevels && len(level) > 0; depth++ {
		cands = cands[:0]
		for _, s := range level {
			stats.Expansions++
			if err := sy.overBudget(stats.Expansions); err != nil {
				return nil, stats, err
			}
			// Computation: strict global topological order — only the lowest
			// uncomputed required node (see expandFrom).
			for i := 0; i < sy.g.NumNodes(); i++ {
				id := graph.NodeID(i)
				if !sy.th.Required[id] || bitGet(s.computed, id) || theory.IsLeaf(sy.g.Node(id).Kind) {
					continue
				}
				for _, tr := range sy.th.ByNode[id] {
					if sy.opt.DisableSFB && sy.isSFBTriple(tr) {
						continue
					}
					if sy.compApplicable(s, tr) {
						score := sy.compDelta(s, tr) + (s.remFlops-sy.g.Flops(id))/sy.totalFlopsPerSec
						cands = append(cands, beamCand{parent: s, tr: tr, score: score})
					}
				}
				break
			}
			// Communication candidates for live, uncommunicated tensors.
			for _, p := range s.props {
				if bitGet(s.communicated, p.Ref) {
					continue
				}
				if o, isOut := sy.outputByRef[p.Ref]; isOut && sy.outputAcceptable(s, o) {
					continue
				}
				ccBuf = sy.commCandidates(s, p, ccBuf[:0])
				for _, cc := range ccBuf {
					score := sy.commDelta(s, cc) + s.remFlops/sy.totalFlopsPerSec
					cands = append(cands, beamCand{parent: s, cc: cc, score: score})
				}
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].score < cands[j].score })
		visited := map[uint64]struct{}{}
		var next []*state
		for _, c := range cands {
			if best != nil && c.score >= bestCost {
				break // sorted: nothing further can improve
			}
			var ns *state
			if c.tr != nil {
				ns = sy.applyComp(c.parent, c.tr)
			} else {
				ns = sy.applyComm(c.parent, c.cc)
			}
			if ns == nil {
				continue
			}
			stats.Pushed++
			if ns.complete {
				if ec := ns.effCost(); best == nil || ec < bestCost {
					best, bestCost = ns, ec
				}
				continue
			}
			k := ns.key()
			if _, ok := visited[k]; ok {
				continue
			}
			visited[k] = struct{}{}
			next = append(next, ns)
			if len(next) >= sy.opt.BeamWidth {
				break
			}
		}
		level = next
	}
	if best == nil {
		return nil, stats, fmt.Errorf("synth: beam search found no complete program")
	}
	return best, stats, nil
}

// overBudget reports a wall-clock budget violation. Checked once per
// expansion — the search's unit of real work, whose allocation cost dwarfs
// the clock read — so a search never overshoots its budget by more than one
// expansion.
func (sy *Synthesizer) overBudget(expansions int) error {
	if sy.deadline.IsZero() || !time.Now().After(sy.deadline) {
		return nil
	}
	return fmt.Errorf("synth: exceeded %v time budget after %d expansions", sy.opt.TimeBudget, expansions)
}

// score is cost(Q) + ecost(Q): the A* priority. ecost is the remaining flops
// at full-cluster speed (infinite bandwidth), an admissible lower bound.
func (sy *Synthesizer) score(s *state) float64 {
	return s.effCost() + s.remFlops/sy.totalFlopsPerSec
}

// expand enumerates the successor states (Fig. 10 lines 7–19).
func (sy *Synthesizer) expand(s *state) []*state { return sy.expandFrom(s, true) }

// expandFrom enumerates successors. In canonical mode (exact A*) the next
// computation must have a node id above the last one in the open stage,
// collapsing cost-equivalent permutations: any program can be reordered so
// comps within a stage ascend. Beam mode instead forces strict global
// topological order — the natural forward-then-backward training schedule —
// so that leaf placements are decided by forward consumers; without this, a
// beam thread can place a parameter from its backward transpose first and
// corner itself (the exact queue recovers through alternative orderings, a
// beam cannot).
func (sy *Synthesizer) expandFrom(s *state, canonical bool) []*state {
	var out []*state
	g := sy.g
	first := 0
	if canonical {
		first = int(s.lastComp) + 1
	}
	for i := first; i < g.NumNodes(); i++ {
		id := graph.NodeID(i)
		if !sy.th.Required[id] || bitGet(s.computed, id) || theory.IsLeaf(g.Node(id).Kind) {
			continue
		}
		if !sy.ready(s, id) {
			if canonical {
				continue
			}
			break // global order: cannot happen, but stay safe
		}
		for _, tr := range sy.th.ByNode[id] {
			if sy.opt.DisableSFB && sy.isSFBTriple(tr) {
				continue
			}
			if ns := sy.applyComp(s, tr); ns != nil {
				out = append(out, ns)
			}
		}
		if !canonical {
			break // beam: only the lowest uncomputed node is a candidate
		}
	}
	// Communication candidates for live, uncommunicated, non-leaf tensors.
	for _, p := range s.props {
		if bitGet(s.communicated, p.Ref) {
			continue
		}
		if o, isOut := sy.outputByRef[p.Ref]; isOut && sy.outputAcceptable(s, o) {
			continue // already in final form; more communication is waste
		}
		out = append(out, sy.commSuccessors(s, p)...)
	}
	return out
}

// ready reports whether every non-leaf input of id is computed.
func (sy *Synthesizer) ready(s *state, id graph.NodeID) bool {
	for _, in := range sy.g.Node(id).Inputs {
		if theory.IsLeaf(sy.g.Node(in).Kind) {
			continue
		}
		if !bitGet(s.computed, in) {
			return false
		}
	}
	return true
}

func (sy *Synthesizer) isSFBTriple(tr *theory.Triple) bool {
	return !tr.FlopsScaled && sy.g.Node(tr.Node).Kind == graph.MatMul && len(tr.Pre) == 2
}

// compApplicable checks a computation triple's preconditions without
// materializing the successor state.
func (sy *Synthesizer) compApplicable(s *state, tr *theory.Triple) bool {
	for _, p := range tr.Pre {
		if !s.hasProp(p) {
			return false
		}
	}
	for _, p := range tr.LeafPre {
		want := replicated
		if p.Kind == theory.Gather {
			want = int8(p.Dim)
		}
		if got := s.placed[p.Ref]; got != want && got != unplaced {
			return false
		}
	}
	return true
}

// compDelta returns the per-device open-stage time increase of applying tr,
// without allocation (the beam's candidate-scoring fast path).
func (sy *Synthesizer) compDelta(s *state, tr *theory.Triple) float64 {
	flops := sy.g.Flops(tr.Node)
	seg := sy.g.Segment(tr.Node)
	worst := 0.0
	for j, d := range sy.c.Devices {
		f := flops
		if tr.FlopsScaled {
			f *= sy.b[seg][j]
		}
		if t := s.openComp[j] + f/d.Flops(); t > worst {
			worst = t
		}
	}
	return s.closedCost + s.openComm + worst
}

// applyComp attempts to append tr (with fused leaf loaders); nil if the
// preconditions do not hold.
func (sy *Synthesizer) applyComp(s *state, tr *theory.Triple) *state {
	if !sy.compApplicable(s, tr) {
		return nil
	}
	var place []theory.Property
	for _, p := range tr.LeafPre {
		if s.placed[p.Ref] == unplaced {
			place = append(place, p)
		}
	}
	ns := s.clone()
	for _, p := range place {
		if p.Kind == theory.Gather {
			ns.placed[p.Ref] = int8(p.Dim)
		} else {
			ns.placed[p.Ref] = replicated
		}
		ns.instrs = append(ns.instrs, theory.LeafInstr(sy.g, p))
	}
	in := tr.Instr(sy.g)
	ns.instrs = append(ns.instrs, in)
	bitSet(ns.computed, tr.Node)
	if !ns.hasProp(tr.Out) {
		ns.addProp(tr.Out)
	}
	ns.lastComp = tr.Node
	ns.remFlops -= sy.g.Flops(tr.Node)
	cost.AddCompTimes(sy.c, sy.g, in, sy.b, ns.openComp)
	sy.pruneDead(ns, tr.Node)
	ns.complete = sy.isComplete(ns)
	return ns
}

// commCand is a not-yet-materialized communication successor.
type commCand struct {
	in  dist.Instruction
	res theory.Property
}

// commCandidates yields the communication instructions applicable to p,
// without materializing states.
func (sy *Synthesizer) commCandidates(s *state, p theory.Property, out []commCand) []commCand {
	g := sy.g
	rank := len(g.Node(p.Ref).Shape)
	// An output tensor is communicated at most once (opt 2), so that one
	// communication must land directly on an acceptable final form; anything
	// else makes the output permanently unacceptable.
	output, isOutput := sy.outputByRef[p.Ref]
	outDim := -1
	if isOutput && output.Param >= 0 {
		switch pd := s.placed[output.Param]; pd {
		case unplaced:
			return out // placement unknown: communicating now could corner us
		case replicated:
			outDim = -1
		default:
			outDim = int(pd)
		}
	}
	try := func(in dist.Instruction, res theory.Property) {
		if s.hasProp(res) {
			return // postcondition subsumed: strictly worse (line 7)
		}
		if isOutput {
			if !output.Acceptable(res, outDim) {
				return
			}
		} else if !sy.th.Wanted[res] {
			return // no triple's precondition can use the result
		}
		out = append(out, commCand{in: in, res: res})
	}

	switch p.Kind {
	case theory.Reduce:
		try(dist.Comm(p.Ref, collective.AllReduce, 0, 0), theory.Id(p.Ref))
		for d := 0; d < rank; d++ {
			try(dist.Comm(p.Ref, collective.ReduceScatter, d, 0), theory.Shard(p.Ref, d))
		}
	case theory.Gather:
		d := int(p.Dim)
		try(dist.Comm(p.Ref, collective.PaddedAllGather, d, 0), theory.Id(p.Ref))
		if !sy.opt.DisableGroupedBroadcast {
			try(dist.Comm(p.Ref, collective.GroupedBroadcast, d, 0), theory.Id(p.Ref))
		}
		for d2 := 0; d2 < rank; d2++ {
			if d2 != d {
				try(dist.Comm(p.Ref, collective.AllToAll, d, d2), theory.Shard(p.Ref, d2))
			}
		}
	}
	return out
}

// applyComm materializes a communication successor.
func (sy *Synthesizer) applyComm(s *state, cc commCand) *state {
	ns := s.clone()
	ns.instrs = append(ns.instrs, cc.in)
	bitSet(ns.communicated, cc.in.Ref)
	ns.addProp(cc.res)
	// Close the open stage (Sec. 3.2): its comm + worst comp are paid.
	worst := 0.0
	for _, v := range ns.openComp {
		if v > worst {
			worst = v
		}
	}
	ns.closedCost += ns.openComm + worst
	for j := range ns.openComp {
		ns.openComp[j] = 0
	}
	ns.openComm = cost.CommTime(sy.c, sy.g, cc.in, sy.b)
	cost.AddIntraPenalty(sy.c, sy.g, cc.in, sy.b, ns.openComp)
	ns.lastComp = -1
	ns.complete = sy.isComplete(ns)
	return ns
}

// commDelta estimates the materialized effCost of a comm successor.
func (sy *Synthesizer) commDelta(s *state, cc commCand) float64 {
	worst := 0.0
	for _, v := range s.openComp {
		if v > worst {
			worst = v
		}
	}
	return s.closedCost + s.openComm + worst + cost.CommTime(sy.c, sy.g, cc.in, sy.b)
}

// commSuccessors materializes all communication successors of p.
func (sy *Synthesizer) commSuccessors(s *state, p theory.Property) []*state {
	var out []*state
	for _, cc := range sy.commCandidates(s, p, nil) {
		out = append(out, sy.applyComm(s, cc))
	}
	return out
}

// pruneDead drops properties of tensors whose consumers are all computed
// (optimization 3), keeping required outputs.
func (sy *Synthesizer) pruneDead(s *state, justComputed graph.NodeID) {
	check := func(u graph.NodeID) {
		if _, isOut := sy.outputByRef[u]; isOut {
			return
		}
		for _, c := range sy.th.Consumers[u] {
			if sy.th.Required[c] && !bitGet(s.computed, c) {
				return
			}
		}
		// Dead: remove all props of u.
		w := s.props[:0]
		for _, p := range s.props {
			if p.Ref != u {
				w = append(w, p)
			}
		}
		s.props = w
	}
	for _, u := range sy.g.Node(justComputed).Inputs {
		if !theory.IsLeaf(sy.g.Node(u).Kind) {
			check(u)
		}
	}
	// The freshly computed node may itself have no pending consumers left
	// only in degenerate graphs; checking costs little.
	check(justComputed)
}

func (sy *Synthesizer) outputAcceptable(s *state, o theory.Output) bool {
	dim := -1
	if o.Param >= 0 {
		switch pd := s.placed[o.Param]; pd {
		case unplaced:
			return false
		case replicated:
			dim = -1
		default:
			dim = int(pd)
		}
	}
	for _, p := range s.props {
		if p.Ref == o.Ref && o.Acceptable(p, dim) {
			return true
		}
	}
	return false
}

func (sy *Synthesizer) isComplete(s *state) bool {
	for _, o := range sy.outputs {
		if !sy.outputAcceptable(s, o) {
			return false
		}
	}
	return true
}
