package hapopt

import (
	"context"
	"testing"

	"hap/internal/cluster"
	"hap/internal/models"
	"hap/internal/synth"
)

// BenchmarkOptimizeLoop measures the full Q↔B alternation on the paper's
// BERT-MoE workload — the portfolio case, where the base and the
// expert-restricted theories search concurrently. This is the end-to-end
// number hap-serve pays per cache miss.
func BenchmarkOptimizeLoop(b *testing.B) {
	c := cluster.PaperHeterogeneous(1)
	g := models.Build(models.ModelBERTMoE, c.TotalGPUs())
	opt := Options{MaxIterations: 2, Synth: synth.Options{BeamWidth: 48}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(context.Background(), g, c, opt); err != nil {
			b.Fatal(err)
		}
	}
}
