// Package hapopt runs HAP's alternating optimization loop (Sec. 3.1):
//
//	B⁽⁰⁾ ∝ device compute power
//	Q⁽ˢ⁾ = argmin_Q t(Q, B⁽ˢ⁻¹⁾)   (program synthesizer)
//	B⁽ˢ⁾ = argmin_B t(Q⁽ˢ⁾, B)     (load balancer LP)
//
// iterated until convergence or oscillation; on oscillation the best (Q,B)
// pair seen is returned. This package is HAP's top-level optimizer.
package hapopt

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"sync"
	"time"

	"hap/internal/balance"
	"hap/internal/cluster"
	"hap/internal/cost"
	"hap/internal/dist"
	"hap/internal/graph"
	"hap/internal/obs"
	"hap/internal/passes"
	"hap/internal/segment"
	"hap/internal/synth"
	"hap/internal/theory"
)

// Options configures the optimization loop.
type Options struct {
	// MaxIterations bounds the alternation count (0 = 4, matching the
	// paper's observation that the loop converges or oscillates quickly).
	MaxIterations int
	// Segments requests per-segment sharding ratios (0 = single segment).
	Segments int
	// Synth forwards synthesizer options.
	Synth synth.Options
	// SkipBalance freezes B at B⁽⁰⁾ (ablation "Q" of Sec. 7.4).
	SkipBalance bool
	// InitialRatios overrides B⁽⁰⁾ (default: proportional to device flops).
	InitialRatios []float64
	// DisablePasses skips the post-synthesis optimization pipeline
	// (collective fusion, collective CSE, DCE); on by default.
	DisablePasses bool
	// Pipeline overrides the pass pipeline (nil = passes.Default()).
	Pipeline *passes.Pipeline
	// TimeBudget bounds the whole optimization loop's wall-clock time:
	// each program search gets the budget's remainder as its own limit, and
	// an expired budget ends the loop with the best plan found so far (or an
	// error when none exists yet). Zero means unlimited. A deadline on the
	// Optimize context behaves identically (the earlier of the two wins);
	// cancelling the context instead aborts the loop with the context error —
	// nobody is waiting for a best-effort plan after a disconnect.
	TimeBudget time.Duration
	// SeedGraph and SeedProgram supply a donor plan for incremental
	// synthesis: when the donor graph is structurally close enough to g
	// (normalized diff ≤ MaxSeedDistance), every iteration's program search
	// is seeded from the donor — decisions in the unchanged region are
	// pinned and the beam narrows (see synth.Options.Seed). A donor too far
	// away, or one whose program fails to replay, silently degrades to cold
	// synthesis. Portfolio arms (the expert-parallel MoE theory) always
	// search cold: the filtered theory does not contain the pinned triples.
	SeedGraph   *graph.Graph
	SeedProgram *dist.Program
	// SeedTheory optionally shares the donor graph's background theory
	// (nil = built on demand while constructing the seed).
	SeedTheory *theory.Theory
	// MaxSeedDistance overrides the seeding cutoff
	// (0 = synth.DefaultMaxSeedDistance).
	MaxSeedDistance float64
	// Theory overrides the background theory (nil = theory.New(g)). Batch
	// planners synthesizing one graph against many clusters build the theory
	// once and share it here: the theory depends only on the graph, never on
	// the cluster or the sharding ratios. The graph must already carry the
	// segment assignment matching Segments (see segment.Assign) — Optimize
	// skips re-assigning when a shared theory is supplied, so a caller-built
	// theory and the segment layout cannot drift apart mid-batch.
	Theory *theory.Theory
}

// Result is the optimized plan.
type Result struct {
	Program *dist.Program
	Ratios  [][]float64 // [segment][device]
	Cost    float64     // modeled t(Q,B), seconds per iteration
	Iters   int
	Elapsed time.Duration
	Synth   synth.Stats // stats of the final synthesis
	// Pruned is the number of dead instructions removed from Program before
	// cost modeling (the synthesizer's fused-leaf optimization can leave
	// displaced leaf loaders behind; see dist.Prune).
	Pruned int
	// Passes reports the post-synthesis pass pipeline's rewrite stats for
	// the returned program (zero when Options.DisablePasses is set).
	Passes passes.Stats
	// Seeded reports whether the returned program came out of a seeded
	// (incremental) search rather than a cold one, and SeedDistance the
	// donor's normalized structural distance (0 for an identical graph).
	Seeded       bool
	SeedDistance float64
}

// Optimize runs the full HAP pipeline on a training graph and cluster.
// Cancelling ctx aborts the loop (and any in-flight program search) promptly
// with the context error; a ctx deadline acts like Options.TimeBudget.
func Optimize(ctx context.Context, g *graph.Graph, c *cluster.Cluster, opt Options) (*Result, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.MaxIterations == 0 {
		opt.MaxIterations = 4
	}
	// One span lookup per Optimize call; nil (tracing off) makes every span
	// operation below a no-op.
	span := obs.SpanFromContext(ctx)
	th := opt.Theory
	if th == nil {
		// A shared theory implies the caller already prepared the graph's
		// segment assignment; otherwise it is (re)derived here.
		ts := span.Child("theory")
		if opt.Segments > 1 {
			segment.Assign(g, opt.Segments)
		} else {
			g.SegmentOf = nil
		}
		th = theory.New(g)
		ts.SetAttrInt("nodes", int64(g.NumNodes()))
		ts.SetAttrInt("outputs", int64(len(th.Outputs)))
		ts.End()
	}

	// The seed is built once — the structural diff and donor replay depend
	// only on the graphs and theories, never on the ratios the loop updates —
	// and reused by every iteration's search.
	if opt.SeedProgram != nil && opt.Synth.Seed == nil {
		ss := span.Child("seed")
		opt.Synth.Seed = synth.BuildSeed(opt.SeedGraph, opt.SeedProgram, opt.SeedTheory, g, th, opt.MaxSeedDistance)
		if sd := opt.Synth.Seed; sd != nil {
			ss.SetAttrFloat("distance", sd.Distance)
			ss.SetAttrInt("steps", int64(sd.Steps()))
		}
		ss.End()
	}

	init := opt.InitialRatios
	if init == nil {
		init = c.ProportionalRatios()
	}
	b := cost.UniformRatios(g.NumSegments(), init)

	// Portfolio theories: the beam search is myopic about strategies whose
	// payoff comes much later (expert parallelism pays an All-To-All up
	// front to avoid expert-gradient synchronization entirely), so for MoE
	// graphs we additionally search a theory restricted to expert-parallel
	// rules and keep whichever plan costs less. Exact A* subsumes this; the
	// beam needs the hint (see DESIGN.md).
	portfolio := []*theory.Theory{th}
	if hasExperts(g) {
		portfolio = append(portfolio, th.Filter(func(tr *theory.Triple) bool {
			switch g.Node(tr.Node).Kind {
			case graph.ExpertMM, graph.ExpertMMGradX, graph.ExpertMMGradW:
				return tr.Out.Kind == theory.Gather && tr.Out.Dim == 0
			}
			return true
		}))
	}

	var deadline time.Time
	if opt.TimeBudget > 0 {
		deadline = start.Add(opt.TimeBudget)
	}
	// A ctx deadline is the same contract as TimeBudget (the Planner API
	// expresses budgets as context.WithTimeout); the earlier cutoff wins.
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	var best *Result
	seen := map[string]bool{}
	for iter := 1; iter <= opt.MaxIterations; iter++ {
		// The iteration span parents this round's searches, passes, and
		// balance solve; error exits drop it unrecorded, which is fine — the
		// error reaches the request's root span anyway.
		it := span.Child("iteration")
		it.SetAttrInt("iter", int64(iter))
		ictx := obs.ContextWithSpan(ctx, it)
		// An explicit cancellation aborts outright — unlike an expired
		// budget, nobody is waiting for a best-effort plan.
		if err := ctx.Err(); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return nil, fmt.Errorf("hapopt: %w", err)
		}
		// The whole loop shares one wall-clock budget: each search runs
		// under the remainder, and an expired budget ends the loop with the
		// best plan so far instead of holding the caller longer.
		if !deadline.IsZero() {
			rem := time.Until(deadline)
			if rem <= 0 {
				if best != nil {
					break
				}
				return nil, fmt.Errorf("hapopt: time budget exhausted after %v before any plan completed", time.Since(start).Round(time.Millisecond))
			}
			if opt.Synth.TimeBudget <= 0 || rem < opt.Synth.TimeBudget {
				opt.Synth.TimeBudget = rem
			}
		}
		// The portfolio theories search concurrently under the shared
		// TimeBudget (each search is internally parallel too; see
		// synth.Options.Workers). Selection walks the results in portfolio
		// order with the same tie-breaking as a sequential loop — the base
		// theory wins cost ties — so the outcome is order-deterministic.
		outs := make([]portfolioResult, len(portfolio))
		if len(portfolio) == 1 {
			outs[0].p, outs[0].stats, outs[0].err = synth.Synthesize(ictx, g, portfolio[0], c, b, opt.Synth)
		} else {
			// Split the worker budget across the concurrent searches instead
			// of oversubscribing: two beams at GOMAXPROCS workers each would
			// contend for the same cores. Plans are worker-count-invariant,
			// so the split trades only latency, never content.
			so := opt.Synth
			so.Workers = SplitWorkers(so.Workers, len(portfolio))
			var wg sync.WaitGroup
			for i := range portfolio {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					o := so
					if i != 0 {
						// Filtered portfolio theories carry their own triple
						// set; the seed's pins reference the base theory's.
						o.Seed = nil
					}
					outs[i].p, outs[i].stats, outs[i].err = synth.Synthesize(ictx, g, portfolio[i], c, b, o)
				}(i)
			}
			wg.Wait()
		}
		var p *dist.Program
		var stats synth.Stats
		win := 0
		for i := range outs {
			cp, cs, err := outs[i].p, outs[i].stats, outs[i].err
			if err != nil {
				if i == 0 {
					// A cancelled context propagates: the search was aborted
					// because nobody wants the result anymore.
					if ce := ctx.Err(); ce != nil && !errors.Is(ce, context.DeadlineExceeded) {
						return nil, fmt.Errorf("hapopt: %w", ce)
					}
					// The budget expiring mid-iteration with a plan already
					// in hand is the graceful-degradation path; any other
					// base-theory failure propagates as before.
					if best != nil && !deadline.IsZero() && time.Now().After(deadline) {
						p = nil
						break
					}
					return nil, fmt.Errorf("hapopt: iteration %d: %w", iter, err)
				}
				continue
			}
			if p == nil || cs.Cost < stats.Cost {
				p, stats, win = cp, cs, i
			}
		}
		if p == nil {
			it.End()
			break // budget expired mid-iteration; serve what we have
		}
		pruned, pstats, err := optimizeProgram(ictx, c, p, opt)
		if err != nil {
			return nil, fmt.Errorf("hapopt: iteration %d: %w", iter, err)
		}
		model := cost.Extract(c, p)
		if !opt.SkipBalance {
			bs := it.Child("balance")
			nb, err := balance.RatiosFromModel(model)
			bs.End()
			if err != nil {
				return nil, fmt.Errorf("hapopt: iteration %d: %w", iter, err)
			}
			b = nb
		}
		t := model.Eval(b)
		if best == nil || t < best.Cost {
			best = &Result{Program: p, Ratios: cloneRatios(b), Cost: t, Iters: iter, Synth: stats, Pruned: pruned, Passes: pstats}
			// stats.Seeded (not just a non-nil seed) so a small graph routed
			// to exact A* — which ignores seeds — is not reported seeded.
			if sd := opt.Synth.Seed; sd != nil && win == 0 && stats.Seeded {
				best.Seeded = true
				best.SeedDistance = sd.Distance
			}
		}
		it.SetAttrFloat("cost", t)
		it.End()
		// Convergence / oscillation detection on the (program, ratios) pair.
		key := p.String() + ratiosKey(b)
		if seen[key] {
			break
		}
		seen[key] = true
	}
	best.Elapsed = time.Since(start)
	return best, nil
}

// optimizeProgram cleans and optimizes a freshly synthesized program before
// cost extraction, so the balancer's B and the reported t(Q,B) both see the
// final form. Dead instructions must never reach cost modeling or the
// balancer: a leaf loader (or a collective on it) that the fused-leaf
// optimization displaced would otherwise inflate t(Q,B) and skew B. The
// pipeline's DCE pass covers that; a standalone Prune runs only when the
// pipeline is disabled or carries no DCE, and its count is folded into the
// returned pruned total either way.
func optimizeProgram(ctx context.Context, c *cluster.Cluster, p *dist.Program, opt Options) (pruned int, pstats passes.Stats, err error) {
	var pl *passes.Pipeline
	if !opt.DisablePasses {
		if pl = opt.Pipeline; pl == nil {
			pl = passes.Default()
		}
	}
	dce := (passes.DCE{}).Name()
	if pl == nil || !pl.HasPass(dce) {
		pruned = p.Prune()
	}
	if pl != nil {
		pstats, err = pl.RunContext(ctx, p, c)
		pruned += pstats.ChangedBy(dce)
	}
	return pruned, pstats, err
}

// portfolioResult is one theory's concurrent synthesis outcome.
type portfolioResult struct {
	p     *dist.Program
	stats synth.Stats
	err   error
}

// SplitWorkers divides a worker budget (0 = GOMAXPROCS) across n concurrent
// searches, never below one worker each — the anti-oversubscription policy
// shared by the portfolio loop and hap.Planner.PlanBatch's cluster fan-out.
func SplitWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	per := workers / n
	if per < 1 {
		per = 1
	}
	return per
}

func hasExperts(g *graph.Graph) bool {
	for i := range g.Nodes {
		if g.Nodes[i].Kind == graph.ExpertMM {
			return true
		}
	}
	return false
}

func cloneRatios(b [][]float64) [][]float64 {
	out := make([][]float64, len(b))
	for i := range b {
		out[i] = append([]float64(nil), b[i]...)
	}
	return out
}

func ratiosKey(b [][]float64) string {
	buf := make([]byte, 0, 128)
	for _, row := range b {
		for _, v := range row {
			buf = strconv.AppendFloat(buf, math.Round(v*1e4)/1e4, 'f', 4, 64)
			buf = append(buf, ',')
		}
		buf = append(buf, ';')
	}
	return string(buf)
}
