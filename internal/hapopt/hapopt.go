// Package hapopt runs HAP's alternating optimization loop (Sec. 3.1):
//
//	B⁽⁰⁾ ∝ device compute power
//	Q⁽ˢ⁾ = argmin_Q t(Q, B⁽ˢ⁻¹⁾)   (program synthesizer)
//	B⁽ˢ⁾ = argmin_B t(Q⁽ˢ⁾, B)     (load balancer LP)
//
// iterated until convergence or oscillation; on oscillation the best (Q,B)
// pair seen is returned. This package is HAP's top-level optimizer.
package hapopt

import (
	"fmt"
	"math"
	"time"

	"hap/internal/balance"
	"hap/internal/cluster"
	"hap/internal/cost"
	"hap/internal/dist"
	"hap/internal/graph"
	"hap/internal/segment"
	"hap/internal/synth"
	"hap/internal/theory"
)

// Options configures the optimization loop.
type Options struct {
	// MaxIterations bounds the alternation count (0 = 4, matching the
	// paper's observation that the loop converges or oscillates quickly).
	MaxIterations int
	// Segments requests per-segment sharding ratios (0 = single segment).
	Segments int
	// Synth forwards synthesizer options.
	Synth synth.Options
	// SkipBalance freezes B at B⁽⁰⁾ (ablation "Q" of Sec. 7.4).
	SkipBalance bool
	// InitialRatios overrides B⁽⁰⁾ (default: proportional to device flops).
	InitialRatios []float64
}

// Result is the optimized plan.
type Result struct {
	Program *dist.Program
	Ratios  [][]float64 // [segment][device]
	Cost    float64     // modeled t(Q,B), seconds per iteration
	Iters   int
	Elapsed time.Duration
	Synth   synth.Stats // stats of the final synthesis
	// Pruned is the number of dead instructions removed from Program before
	// cost modeling (the synthesizer's fused-leaf optimization can leave
	// displaced leaf loaders behind; see dist.Prune).
	Pruned int
}

// Optimize runs the full HAP pipeline on a training graph and cluster.
func Optimize(g *graph.Graph, c *cluster.Cluster, opt Options) (*Result, error) {
	start := time.Now()
	if opt.MaxIterations == 0 {
		opt.MaxIterations = 4
	}
	if opt.Segments > 1 {
		segment.Assign(g, opt.Segments)
	} else {
		g.SegmentOf = nil
	}
	th := theory.New(g)

	init := opt.InitialRatios
	if init == nil {
		init = c.ProportionalRatios()
	}
	b := cost.UniformRatios(g.NumSegments(), init)

	// Portfolio theories: the beam search is myopic about strategies whose
	// payoff comes much later (expert parallelism pays an All-To-All up
	// front to avoid expert-gradient synchronization entirely), so for MoE
	// graphs we additionally search a theory restricted to expert-parallel
	// rules and keep whichever plan costs less. Exact A* subsumes this; the
	// beam needs the hint (see DESIGN.md).
	portfolio := []*theory.Theory{th}
	if hasExperts(g) {
		portfolio = append(portfolio, th.Filter(func(tr *theory.Triple) bool {
			switch g.Node(tr.Node).Kind {
			case graph.ExpertMM, graph.ExpertMMGradX, graph.ExpertMMGradW:
				return tr.Out.Kind == theory.Gather && tr.Out.Dim == 0
			}
			return true
		}))
	}

	var best *Result
	seen := map[string]bool{}
	for iter := 1; iter <= opt.MaxIterations; iter++ {
		var p *dist.Program
		var stats synth.Stats
		for _, t := range portfolio {
			cp, cs, err := synth.Synthesize(g, t, c, b, opt.Synth)
			if err != nil {
				if t == th {
					return nil, fmt.Errorf("hapopt: iteration %d: %w", iter, err)
				}
				continue
			}
			if p == nil || cs.Cost < stats.Cost {
				p, stats = cp, cs
			}
		}
		model, pruned := pruneAndModel(c, p)
		if !opt.SkipBalance {
			nb, err := balance.RatiosFromModel(model)
			if err != nil {
				return nil, fmt.Errorf("hapopt: iteration %d: %w", iter, err)
			}
			b = nb
		}
		t := model.Eval(b)
		if best == nil || t < best.Cost {
			best = &Result{Program: p, Ratios: cloneRatios(b), Cost: t, Iters: iter, Synth: stats, Pruned: pruned}
		}
		// Convergence / oscillation detection on the (program, ratios) pair.
		key := p.String() + ratiosKey(b)
		if seen[key] {
			break
		}
		seen[key] = true
	}
	best.Elapsed = time.Since(start)
	return best, nil
}

// pruneAndModel eliminates dead code from a synthesized program and then
// extracts its cost model. Dead instructions must never reach cost modeling
// or the balancer: a leaf loader (or a collective on it) that the fused-leaf
// optimization displaced would otherwise inflate t(Q,B) and skew B.
func pruneAndModel(c *cluster.Cluster, p *dist.Program) (*cost.Model, int) {
	pruned := p.Prune()
	return cost.Extract(c, p), pruned
}

func hasExperts(g *graph.Graph) bool {
	for i := range g.Nodes {
		if g.Nodes[i].Kind == graph.ExpertMM {
			return true
		}
	}
	return false
}

func cloneRatios(b [][]float64) [][]float64 {
	out := make([][]float64, len(b))
	for i := range b {
		out[i] = append([]float64(nil), b[i]...)
	}
	return out
}

func ratiosKey(b [][]float64) string {
	s := ""
	for _, row := range b {
		for _, v := range row {
			s += fmt.Sprintf("%.4f,", math.Round(v*1e4)/1e4)
		}
		s += ";"
	}
	return s
}
