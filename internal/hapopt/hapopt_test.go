package hapopt

import (
	"context"
	"errors"
	"testing"
	"time"

	"hap/internal/cluster"
	"hap/internal/collective"
	"hap/internal/cost"
	"hap/internal/dist"
	"hap/internal/graph"
	"hap/internal/models"
	"hap/internal/runtime"
	"hap/internal/segment"
	"hap/internal/theory"
)

func hetero2() *cluster.Cluster {
	return cluster.FromGPUs(cluster.DefaultNetwork(),
		cluster.MachineSpec{Type: cluster.V100, GPUs: 2},
		cluster.MachineSpec{Type: cluster.P100, GPUs: 2})
}

func TestOptimizeMLP(t *testing.T) {
	g := models.Training(models.MLP(256, 64, 128, 64, 10))
	c := hetero2()
	res, err := Optimize(context.Background(), g, c, Options{})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Cost <= 0 {
		t.Errorf("cost = %v", res.Cost)
	}
	if res.Program == nil || len(res.Program.Instrs) == 0 {
		t.Fatal("no program")
	}
	if got := cost.Evaluate(c, res.Program, res.Ratios); got != res.Cost {
		t.Errorf("reported cost %v != evaluated %v", res.Cost, got)
	}
}

func TestIterativeNoWorseThanSinglePass(t *testing.T) {
	g := models.Training(models.MLP(256, 64, 128, 64, 10))
	c := hetero2()
	single, err := Optimize(context.Background(), g, c, Options{MaxIterations: 1})
	if err != nil {
		t.Fatalf("single: %v", err)
	}
	iterated, err := Optimize(context.Background(), g, c, Options{MaxIterations: 4})
	if err != nil {
		t.Fatalf("iterated: %v", err)
	}
	if iterated.Cost > single.Cost+1e-12 {
		t.Errorf("iterated cost %v worse than single-pass %v", iterated.Cost, single.Cost)
	}
}

func TestSkipBalanceAblation(t *testing.T) {
	g := models.Training(models.MLP(256, 64, 128, 64, 10))
	c := hetero2()
	full, err := Optimize(context.Background(), g, c, Options{})
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	noB, err := Optimize(context.Background(), g, c, Options{SkipBalance: true})
	if err != nil {
		t.Fatalf("noB: %v", err)
	}
	if full.Cost > noB.Cost+1e-12 {
		t.Errorf("full HAP (%v) worse than Q-only ablation (%v)", full.Cost, noB.Cost)
	}
	// Without balancing the ratios must remain B⁽⁰⁾ (proportional).
	cp := c.ProportionalRatios()
	for j, v := range noB.Ratios[0] {
		if diff := v - cp[j]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("SkipBalance changed ratios: %v vs %v", noB.Ratios[0], cp)
			break
		}
	}
}

func TestSegmentedOptimization(t *testing.T) {
	g := models.Training(models.MLP(256, 64, 128, 128, 64, 10))
	c := hetero2()
	res, err := Optimize(context.Background(), g, c, Options{Segments: 3})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if len(res.Ratios) != g.NumSegments() {
		t.Errorf("ratio rows %d != segments %d", len(res.Ratios), g.NumSegments())
	}
}

func TestSegmentAssignInvariants(t *testing.T) {
	g := models.Training(models.MLP(64, 32, 32, 32, 32, 10))
	segment.Assign(g, 3)
	if len(g.SegmentOf) != g.NumNodes() {
		t.Fatalf("SegmentOf length %d != %d nodes", len(g.SegmentOf), g.NumNodes())
	}
	// Parameters and their gradients share a segment.
	for p, gr := range g.Grads {
		// A parameter's segment is its first consumer's; the invariant we
		// need is grad-side: backward nodes inherit the primal's segment.
		if g.Segment(gr) >= g.NumSegments() {
			t.Errorf("grad %d has out-of-range segment", gr)
		}
		_ = p
	}
	// Forward segments are monotone non-decreasing.
	prev := 0
	for i := 0; i < g.ForwardCount; i++ {
		s := g.SegmentOf[i]
		if s < prev {
			t.Errorf("forward segments not contiguous at node %d", i)
		}
		if s > prev {
			prev = s
		}
	}
}

// End-to-end semantic check through the full pipeline: the optimized plan
// (including LP-chosen, possibly very uneven ratios and per-segment rows)
// must still compute exactly what the single-device program computes.
func TestOptimizedPlanNumericallyEquivalent(t *testing.T) {
	for _, segments := range []int{1, 2} {
		g := models.Training(models.MLP(24, 8, 12, 6))
		c := hetero2()
		res, err := Optimize(context.Background(), g, c, Options{Segments: segments})
		if err != nil {
			t.Fatalf("segments=%d: Optimize: %v", segments, err)
		}
		if err := runtime.VerifyEquivalence(res.Program, c.M(), res.Ratios, 17); err != nil {
			t.Errorf("segments=%d: %v\n%s", segments, err, res.Program)
		}
	}
}

// TestDeadCodePrunedBeforeCostModeling checks the Prune() wiring in
// Optimize: a program carrying dead instructions — a displaced leaf loader,
// a computation on it, and a collective on the result, the debris the
// fused-leaf optimization can leave behind — is cleaned before cost
// extraction, so the dead work never inflates t(Q,B) or skews the balancer.
func TestDeadCodePrunedBeforeCostModeling(t *testing.T) {
	g := models.Training(models.MLP(24, 8, 12, 6))
	// A dead branch in the graph: an input nothing consumes, plus a
	// computation on it. Neither reaches the loss or any gradient.
	d := g.AddPlaceholder("unused", 0, 24, 8)
	r := g.AddOp(graph.ReLU, d)
	c := hetero2()

	res, err := Optimize(context.Background(), g, c, Options{})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	// Today's synthesizer emits dead-code-free programs for this graph; the
	// wiring must be a no-op on them.
	if res.Pruned != 0 {
		t.Errorf("Optimize pruned %d instructions from a dead-free synthesis", res.Pruned)
	}
	for _, in := range res.Program.Instrs {
		if in.Ref == d || in.Ref == r {
			t.Fatalf("synthesizer placed dead node e%d; test premise broken:\n%s", in.Ref, res.Program)
		}
	}

	// Inject the dead instructions and re-run the prune-then-extract sequence
	// Optimize uses. The dirty program is structurally legal — only liveness
	// analysis can reject it.
	dirty := &dist.Program{Graph: g, Instrs: append(append([]dist.Instruction{}, res.Program.Instrs...),
		dist.Instruction{Ref: d, Op: graph.Placeholder, ShardDim: 0},
		dist.Instruction{Ref: r, Op: graph.ReLU, Inputs: []graph.NodeID{d}, ShardDim: -1, FlopsScaled: true},
		dist.Comm(r, collective.AllReduce, 0, 0),
	)}
	if err := dirty.Validate(); err != nil {
		t.Fatalf("dirty program unexpectedly ill-formed: %v", err)
	}
	b := cost.UniformRatios(g.NumSegments(), c.ProportionalRatios())
	dirtyCost := cost.Extract(c, dirty).Eval(b)

	pruned := dirty.Prune()
	model := cost.Extract(c, dirty)
	if pruned != 3 {
		t.Errorf("Prune removed %d instructions, want 3", pruned)
	}
	if len(dirty.Instrs) != len(res.Program.Instrs) {
		t.Errorf("pruned program has %d instructions, want %d", len(dirty.Instrs), len(res.Program.Instrs))
	}
	cleanCost := model.Eval(b)
	if cleanCost >= dirtyCost {
		t.Errorf("dead code did not inflate the modeled cost (clean %v, dirty %v) — prune-before-model is not observable", cleanCost, dirtyCost)
	}
	// The pruned program must still be what the synthesizer produced.
	if dirty.String() != res.Program.String() {
		t.Errorf("prune changed live instructions:\n%s\nvs\n%s", dirty, res.Program)
	}
}

func TestOptimizeHeterogeneousBeatsEvenDP(t *testing.T) {
	// On a heterogeneous cluster HAP's plan should beat naive even ratios
	// applied to the same program.
	g := models.Training(models.MLP(512, 256, 256, 256, 10))
	c := hetero2()
	res, err := Optimize(context.Background(), g, c, Options{})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	ev := cost.Evaluate(c, res.Program, cost.UniformRatios(len(res.Ratios), c.EvenRatios()))
	if res.Cost > ev+1e-12 {
		t.Errorf("HAP ratios (%v) worse than even ratios (%v) on its own program", res.Cost, ev)
	}
}

// TestTimeBudgetBoundsTheWholeLoop pins the loop-level budget semantics: an
// already-expired budget fails before any plan exists, and a generous one
// changes nothing about the result.
func TestTimeBudgetBoundsTheWholeLoop(t *testing.T) {
	g := models.Training(models.MLP(24, 8, 12, 6))
	c := hetero2()
	if _, err := Optimize(context.Background(), g, c, Options{TimeBudget: time.Nanosecond}); err == nil {
		t.Fatal("Optimize succeeded under a 1ns budget; want a time-budget error")
	}
	res, err := Optimize(context.Background(), g, c, Options{TimeBudget: time.Minute})
	if err != nil {
		t.Fatalf("Optimize under a generous budget: %v", err)
	}
	if res.Program == nil || res.Cost <= 0 {
		t.Fatalf("degenerate result under a generous budget: %+v", res)
	}
}

// A cancelled context aborts the loop with the context error — unlike an
// expired budget, which degrades to the best plan so far. A ctx deadline
// behaves exactly like TimeBudget.
func TestOptimizeContextSemantics(t *testing.T) {
	g := models.Training(models.MLP(24, 8, 12, 6))
	c := hetero2()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Optimize(cancelled, g, c, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ctx: err = %v, want context.Canceled", err)
	}
	expired, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	if _, err := Optimize(expired, g, c, Options{}); err == nil || errors.Is(err, context.Canceled) {
		t.Errorf("expired ctx deadline: err = %v, want a budget-style failure", err)
	}
}

// A pre-built theory short-circuits theory construction — the sharing
// contract PlanBatch relies on — without changing the plan.
func TestOptimizeSharedTheory(t *testing.T) {
	g := models.Training(models.MLP(24, 8, 12, 6))
	c := hetero2()
	base, err := Optimize(context.Background(), g, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	th := theory.New(g)
	before := theory.Builds()
	shared, err := Optimize(context.Background(), g, c, Options{Theory: th})
	if err != nil {
		t.Fatalf("Optimize with shared theory: %v", err)
	}
	if built := theory.Builds() - before; built != 0 {
		t.Errorf("shared-theory Optimize built %d theories, want 0", built)
	}
	if shared.Program.String() != base.Program.String() {
		t.Error("shared theory changed the synthesized program")
	}
}

// SplitWorkers divides the worker budget across concurrent portfolio
// searches instead of oversubscribing, never dropping below one per search.
func TestSplitWorkers(t *testing.T) {
	for _, tc := range []struct{ workers, n, want int }{
		{8, 2, 4}, {8, 3, 2}, {1, 2, 1}, {2, 2, 1}, {3, 2, 1},
	} {
		if got := SplitWorkers(tc.workers, tc.n); got != tc.want {
			t.Errorf("SplitWorkers(%d, %d) = %d, want %d", tc.workers, tc.n, got, tc.want)
		}
	}
	if got := SplitWorkers(0, 2); got < 1 {
		t.Errorf("SplitWorkers(0, 2) = %d, want >= 1", got)
	}
}
