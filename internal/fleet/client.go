// The intra-fleet HTTP client: request forwarding (proxy-on-miss), entry
// replication pushes, and warm-up entry streaming. All calls speak the
// daemon's own wire surface — a fleet node is just another HTTP client of
// its peers, so there is no second RPC stack to operate or secure
// separately.

package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"hap/internal/obs"
)

// ErrEntryNotFound reports a FetchEntry for a key the peer does not hold.
var ErrEntryNotFound = errors.New("fleet: entry not found")

// Wire headers of the fleet layer.
const (
	// ForwardHeader marks an intra-fleet forwarded request; its value is the
	// forwarding node's advertise URL. A node receiving it serves locally —
	// never re-forwards — so divergent ring views during a membership reload
	// cannot create proxy loops.
	ForwardHeader = "X-HAP-Fleet-Forward"
	// NodeHeader names the node that actually answered a proxied request,
	// set on the response for observability and the fleet tests.
	NodeHeader = "X-HAP-Fleet-Node"
)

// EntriesPath is the fleet entry-exchange endpoint: GET streams the node's
// cached entries as NDJSON (warm-up), POST accepts one replicated entry.
const EntriesPath = "/v1/fleet/entries"

// Entry is one cached plan on the fleet wire, mirroring the daemon's
// CachedPlan. Payloads travel base64 (encoding/json's []byte form); the
// plan bytes are restored byte-exact on the receiving node so the content
// address keeps meaning the same bytes fleet-wide.
type Entry struct {
	Key    string `json:"key"`
	Plan   []byte `json:"plan"`
	Bin    []byte `json:"bin,omitempty"`
	Passes string `json:"passes,omitempty"`
	// Version and ETag carry the owner's plan-version metadata so a replica
	// serves the same entity tag the owner does — a conditional fetch must
	// see one answer fleet-wide.
	Version uint64 `json:"version,omitempty"`
	ETag    string `json:"etag,omitempty"`
}

// Client is the intra-fleet HTTP client. Safe for concurrent use.
type Client struct {
	http *http.Client
	// stream has no overall timeout: a warm-up transfer of a large cache is
	// bounded by the caller's ctx, not a fixed per-call deadline.
	stream *http.Client
}

// NewClient returns a fleet client whose calls time out after timeout
// (0 = a 30s default, sized for proxied syntheses, not just cache hits).
func NewClient(timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return &Client{http: &http.Client{Timeout: timeout}, stream: &http.Client{}}
}

// Forward relays a plan request to peer, marked with the forwarding node's
// URL so the peer serves it locally. A non-empty ifNoneMatch travels with the
// forward so a warm client's conditional fetch stays conditional across the
// proxy hop — the owner answers 304 and the proxy relays it without ever
// moving the plan body. A non-empty trace is sent as the trace-propagation
// header (obs.TraceHeader) so the peer's spans land in the forwarder's trace.
// The caller relays the response (status, plan headers, body) to its own
// client and must close the body.
func (c *Client) Forward(ctx context.Context, peer, path string, body []byte, accept, from, ifNoneMatch, trace string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, NormalizeURL(peer)+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardHeader, from)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	if trace != "" {
		req.Header.Set(obs.TraceHeader, trace)
	}
	return c.http.Do(req)
}

// Replicate pushes one filled entry to peer.
func (c *Client) Replicate(ctx context.Context, peer string, e Entry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, NormalizeURL(peer)+EntriesPath, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("fleet: replicate to %s: HTTP %d", peer, resp.StatusCode)
	}
	return nil
}

// FetchEntry GETs one cached entry from peer by its cache key — the
// similarity layer's donor-plan fallback for when the local store no longer
// holds a plan the index still points at. A peer without the key answers
// 404, surfaced as ErrEntryNotFound.
func (c *Client) FetchEntry(ctx context.Context, peer, key string) (Entry, error) {
	u := NormalizeURL(peer) + EntriesPath + "?key=" + url.QueryEscape(key)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return Entry{}, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return Entry{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return Entry{}, ErrEntryNotFound
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return Entry{}, fmt.Errorf("fleet: entry from %s: HTTP %d", peer, resp.StatusCode)
	}
	var e Entry
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		return Entry{}, fmt.Errorf("fleet: entry from %s: %w", peer, err)
	}
	return e, nil
}

// StreamEntries GETs peer's cached entries and feeds each to fn until the
// stream ends or fn returns false. Returns how many entries fn accepted.
// A stream cut mid-transfer returns the count so far plus the error: warm-up
// is best-effort, and every entry that made it across is an entry the
// joining node will not re-synthesize. The streaming client must not time
// out a large cache mid-transfer, so this call honors only ctx, not the
// client's fixed timeout.
func (c *Client) StreamEntries(ctx context.Context, peer string, fn func(Entry) bool) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, NormalizeURL(peer)+EntriesPath, nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.stream.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("fleet: entries from %s: HTTP %d", peer, resp.StatusCode)
	}
	n := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20) // model-scale plans are ~100 KB of JSON, base64'd
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			return n, fmt.Errorf("fleet: entries from %s: %w", peer, err)
		}
		if e.Key == "" || len(e.Plan) == 0 {
			continue
		}
		if !fn(e) {
			return n, nil
		}
		n++
	}
	return n, sc.Err()
}
