// Fleet membership: who the peers are, and the ring built over them. The
// member list is the union of the node's own advertise URL, a static seed
// list (-peers), and an optional peers file (-peers-file) re-read on demand
// (SIGHUP) or by mtime polling — a restart-free way to grow or shrink the
// fleet. Readers take the current ring with one atomic load, so a reload
// mid-traffic swaps routing for new requests without blocking in-flight
// ones.

package fleet

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Membership maintains the current peer list and its consistent-hash ring.
type Membership struct {
	self   string
	static []string
	file   string

	ring    atomic.Pointer[Ring]
	reloads atomic.Uint64 // successful reloads that changed the ring

	mu sync.Mutex // serializes Reload and guards the poll stat below
	// lastMtime/lastSize snapshot the peers file's stat at the last reload.
	// The poller compares both: filesystems round mtimes (coarsely enough
	// that two rewrites can land in one tick), so mtime alone misses a
	// same-timestamp rewrite that changed the contents — the size catches
	// the common case. Priming them at construction also stops the first
	// poll tick from reloading a file nobody touched (the zero-valued
	// lastMtime never equals a real mtime).
	lastMtime time.Time
	lastSize  int64

	pollReloads atomic.Uint64 // reloads triggered by the mtime/size poller

	stopPoll chan struct{}
	pollOnce sync.Once
}

// NewMembership builds the member list from self, the static peers, and the
// optional peers file (read immediately; an unreadable file at construction
// is an error so a typoed -peers-file fails loudly instead of silently
// running a one-node fleet).
func NewMembership(self string, static []string, file string) (*Membership, error) {
	m := &Membership{self: NormalizeURL(self), static: static, file: file}
	if file != "" {
		if _, err := os.Stat(file); err != nil {
			return nil, fmt.Errorf("fleet: peers file: %w", err)
		}
	}
	if _, err := m.Reload(); err != nil {
		return nil, err
	}
	return m, nil
}

// Self returns this node's own advertise URL (normalized).
func (m *Membership) Self() string { return m.self }

// Ring returns the current ring. Never nil after NewMembership.
func (m *Membership) Ring() *Ring { return m.ring.Load() }

// Peers returns the current members, sorted, including self.
func (m *Membership) Peers() []string { return m.Ring().Members() }

// Reloads counts the reloads that actually changed the membership.
func (m *Membership) Reloads() uint64 { return m.reloads.Load() }

// Reload re-reads the peers file (when configured) and rebuilds the ring,
// reporting whether membership changed. Safe to call concurrently with
// readers and with itself; serve traffic keeps flowing on the old ring
// until the swap.
func (m *Membership) Reload() (changed bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	members := []string{m.self}
	members = append(members, m.static...)
	if m.file != "" {
		fromFile, err := readPeersFile(m.file)
		if err != nil {
			return false, err
		}
		members = append(members, fromFile...)
		// Snapshot the stat the content we just read corresponds to (best
		// effort — a racing rewrite moves the mtime again and the next poll
		// tick re-detects it).
		if info, err := os.Stat(m.file); err == nil {
			m.lastMtime = info.ModTime()
			m.lastSize = info.Size()
		}
	}
	next := NewRing(members)
	prev := m.ring.Load()
	if prev != nil && equalMembers(prev.Members(), next.Members()) {
		return false, nil
	}
	m.ring.Store(next)
	if prev != nil {
		m.reloads.Add(1)
	}
	return true, nil
}

// StartPolling watches the peers file's mtime every interval and reloads on
// change — the fsnotify-style path for fleets that cannot signal the
// daemon. Returns a stop function; a Membership without a file (or with a
// non-positive interval) polls nothing.
func (m *Membership) StartPolling(interval time.Duration) (stop func()) {
	if m.file == "" || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				info, err := os.Stat(m.file)
				if err != nil {
					continue // transient editor rename; next tick retries
				}
				m.mu.Lock()
				dirty := info.ModTime() != m.lastMtime || info.Size() != m.lastSize
				m.mu.Unlock()
				if dirty {
					m.pollReloads.Add(1)
					// Reload re-reads the file and re-snapshots its stat.
					m.Reload()
				}
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// readPeersFile parses a peers file: one base URL per line, blank lines and
// #-comments ignored.
func readPeersFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: peers file: %w", err)
	}
	var peers []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		peers = append(peers, line)
	}
	return peers, nil
}

func equalMembers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
