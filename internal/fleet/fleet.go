// Fleet bundles one node's view of the cluster: its identity, the
// membership list and ring, peer health, the intra-fleet client, and the
// replication factor. The serve layer asks it three questions per request —
// who owns this key, who replicates it, and is that peer healthy — and uses
// the client for the resulting proxy, replication, and warm-up traffic.

package fleet

import (
	"fmt"
	"time"
)

// Config builds a Fleet.
type Config struct {
	// Self is this node's advertise base URL (how peers reach it). It is
	// always a ring member.
	Self string
	// Peers is the static seed list of peer base URLs (may include Self).
	Peers []string
	// PeersFile optionally names a file with one peer URL per line,
	// re-read on Reload (SIGHUP) and by polling.
	PeersFile string
	// Replicas is the total number of copies of each filled entry, owner
	// included (0 = DefaultReplicas). Clamped to the fleet size.
	Replicas int
	// ProxyTimeout bounds one forwarded request (0 = the client default,
	// which must cover a proxied cold synthesis, not just a cache hit).
	ProxyTimeout time.Duration
	// ProbeTimeout bounds one health probe (0 = 2s).
	ProbeTimeout time.Duration
}

// DefaultReplicas is the default total copies per entry (owner + 1).
const DefaultReplicas = 2

// Fleet is one node's cluster view. Create with New; Start launches the
// background pollers and Stop tears them down.
type Fleet struct {
	self     string
	replicas int

	Members *Membership
	Health  *Health
	Client  *Client

	stops []func()
}

// New validates cfg and builds the node's fleet view. Self is required; a
// fleet of one (no peers yet) is legal — everything routes locally until
// the peers file names someone else.
func New(cfg Config) (*Fleet, error) {
	if NormalizeURL(cfg.Self) == "" {
		return nil, fmt.Errorf("fleet: Self (this node's advertise URL) is required")
	}
	members, err := NewMembership(cfg.Self, cfg.Peers, cfg.PeersFile)
	if err != nil {
		return nil, err
	}
	replicas := cfg.Replicas
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Fleet{
		self:     NormalizeURL(cfg.Self),
		replicas: replicas,
		Members:  members,
		Health:   NewHealth(cfg.ProbeTimeout),
		Client:   NewClient(cfg.ProxyTimeout),
	}, nil
}

// Self returns this node's advertise URL.
func (f *Fleet) Self() string { return f.self }

// ReplicaCount returns the configured copies per entry, owner included.
func (f *Fleet) ReplicaCount() int { return f.replicas }

// Size returns the current number of fleet members.
func (f *Fleet) Size() int { return f.Members.Ring().Size() }

// Owner returns the member owning key on the current ring.
func (f *Fleet) Owner(key string) string { return f.Members.Ring().Owner(key) }

// ReplicaSet returns the members holding key — owner first, then the ring
// successors — up to the replication factor.
func (f *Fleet) ReplicaSet(key string) []string {
	return f.Members.Ring().Successors(key, f.replicas)
}

// Start launches membership polling (pollInterval; 0 disables) and health
// probing (probeInterval; 0 disables). Call Stop to tear both down.
func (f *Fleet) Start(pollInterval, probeInterval time.Duration) {
	f.stops = append(f.stops, f.Members.StartPolling(pollInterval))
	f.stops = append(f.stops, f.Health.StartProbing(f.self, f.Members.Peers, probeInterval))
}

// Stop halts the background pollers started by Start.
func (f *Fleet) Stop() {
	for _, stop := range f.stops {
		stop()
	}
	f.stops = nil
}
