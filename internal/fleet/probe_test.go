// Regression tests for the drift-edge bugs the fleet tier exposed: the
// peers-file poller missing same-mtime rewrites (and reloading spuriously on
// its first tick), and health probes that tore down keep-alive connections
// and serialized a round behind dead peers.

package fleet

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// TestMembershipPollSameMtimeRewrite: a rewrite that lands within the
// filesystem's mtime granularity leaves the mtime unchanged; the poller must
// still detect it via the size. (A same-mtime same-size rewrite is
// undetectable by stat alone — documented limitation.)
func TestMembershipPollSameMtimeRewrite(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "peers")
	if err := os.WriteFile(file, []byte("http://b:8080\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := NewMembership("http://a:8080", nil, file)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := os.Stat(file)
	if err != nil {
		t.Fatal(err)
	}
	stop := m.StartPolling(10 * time.Millisecond)
	defer stop()

	if err := os.WriteFile(file, []byte("http://b:8080\nhttp://c:8080\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Force the rewrite's mtime back to the original: the poller sees the
	// exact stat signature an in-granularity rewrite produces.
	if err := os.Chtimes(file, orig.ModTime(), orig.ModTime()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Ring().Size() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("poller missed the same-mtime rewrite; size = %d", m.Ring().Size())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMembershipPollNoSpuriousFirstTick: the first poll tick must not reload
// a file nobody touched. Before the fix, the zero-valued lastMtime made
// every first tick look dirty.
func TestMembershipPollNoSpuriousFirstTick(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "peers")
	if err := os.WriteFile(file, []byte("http://b:8080\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := NewMembership("http://a:8080", nil, file)
	if err != nil {
		t.Fatal(err)
	}
	stop := m.StartPolling(5 * time.Millisecond)
	defer stop()
	time.Sleep(100 * time.Millisecond) // many ticks
	if n := m.pollReloads.Load(); n != 0 {
		t.Errorf("poller reloaded %d times with an untouched file, want 0", n)
	}
}

// TestProbeDrainsBodyForKeepAlive: two sequential probes against the same
// peer must reuse one connection. An undrained response body forces the
// transport to discard the connection, so every probe round pays a fresh
// handshake per peer.
func TestProbeDrainsBodyForKeepAlive(t *testing.T) {
	var newConns atomic.Int64
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok"}`))
	}))
	srv.Config.ConnState = func(c net.Conn, state http.ConnState) {
		if state == http.StateNew {
			newConns.Add(1)
		}
	}
	srv.Start()
	defer srv.Close()

	h := NewHealth(2 * time.Second)
	for i := 0; i < 3; i++ {
		if err := h.Probe(context.Background(), srv.URL); err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
	}
	if got := newConns.Load(); got != 1 {
		t.Errorf("3 probes opened %d connections, want 1 (keep-alive reuse)", got)
	}
}

// TestProbeRoundConcurrentWallClock: a round over N slow peers completes in
// roughly one probe's latency, not N of them — a dead peer's timeout must
// not stretch the round past the probe interval for everyone else.
func TestProbeRoundConcurrentWallClock(t *testing.T) {
	const peers = 4
	const delay = 300 * time.Millisecond
	urls := make([]string, 0, peers)
	for i := 0; i < peers; i++ {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(delay)
			w.Write([]byte(`{"status":"ok"}`))
		}))
		defer srv.Close()
		urls = append(urls, srv.URL)
	}

	h := NewHealth(2 * time.Second)
	start := time.Now()
	h.probeRound("http://self:1", urls)
	elapsed := time.Since(start)
	// Sequential would take >= peers*delay = 1.2s; allow generous slack over
	// one delay for scheduler noise.
	if elapsed >= 900*time.Millisecond {
		t.Errorf("probe round took %v, want ~%v (concurrent probes)", elapsed, delay)
	}
	for _, u := range urls {
		if !h.Healthy(u) {
			t.Errorf("peer %s marked down by a successful round", u)
		}
	}
}
