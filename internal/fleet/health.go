// Peer health tracking. Two signal sources feed the same table: a
// background prober GETs every peer's /healthz on an interval, and the
// proxy path reports transport failures immediately (MarkDown) so a dead
// owner is skipped on the very next request instead of a probe interval
// later. Unknown peers are presumed healthy — optimism costs one failed
// proxy attempt; pessimism would black-hole a freshly joined node.

package fleet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Health tracks which peers are believed alive.
type Health struct {
	client *http.Client

	mu   sync.Mutex
	down map[string]time.Time // peer → when it was marked down

	stopOnce sync.Once
	stopCh   chan struct{}
}

// NewHealth returns a tracker probing with the given timeout per request.
func NewHealth(probeTimeout time.Duration) *Health {
	if probeTimeout <= 0 {
		probeTimeout = 2 * time.Second
	}
	return &Health{
		client: &http.Client{Timeout: probeTimeout},
		down:   map[string]time.Time{},
		stopCh: make(chan struct{}),
	}
}

// Healthy reports whether peer is believed alive. Peers never heard of are
// healthy by default.
func (h *Health) Healthy(peer string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, isDown := h.down[NormalizeURL(peer)]
	return !isDown
}

// MarkDown records a peer failure (a failed proxy or probe).
func (h *Health) MarkDown(peer string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	key := NormalizeURL(peer)
	if _, ok := h.down[key]; !ok {
		h.down[key] = time.Now()
	}
}

// MarkUp clears a peer's down state (a successful proxy or probe).
func (h *Health) MarkUp(peer string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.down, NormalizeURL(peer))
}

// DownCount returns how many peers are currently marked down.
func (h *Health) DownCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.down)
}

// Snapshot returns the peers currently marked down and for how long.
func (h *Health) Snapshot() map[string]time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]time.Duration, len(h.down))
	for p, since := range h.down {
		out[p] = time.Since(since)
	}
	return out
}

// Probe GETs peer's /healthz once and updates the table.
func (h *Health) Probe(ctx context.Context, peer string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, NormalizeURL(peer)+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := h.client.Do(req)
	if err != nil {
		h.MarkDown(peer)
		return err
	}
	// Drain before closing: a closed-but-undrained body forces the transport
	// to tear the connection down, so every probe round would pay a fresh
	// TCP (and TLS) handshake per peer instead of reusing keep-alive
	// connections. The healthz body is a few bytes; the limit is a backstop
	// against a misbehaving peer streaming forever.
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		h.MarkDown(peer)
		return fmt.Errorf("fleet: %s healthz: HTTP %d", peer, resp.StatusCode)
	}
	h.MarkUp(peer)
	return nil
}

// StartProbing probes every peer (except self) on an interval — the
// recovery path that brings a MarkDown'd peer back once it answers
// /healthz again. members is read each round so the prober follows
// membership reloads. Peers are probed concurrently within a round: probing
// sequentially lets one dead peer's full timeout stretch the round past the
// probe interval, delaying the recovery signal for every healthy peer behind
// it. Returns a stop function.
func (h *Health) StartProbing(self string, members func() []string, interval time.Duration) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				h.probeRound(self, members())
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// probeRound probes every listed peer except self, concurrently, and waits
// for the round to finish — one round's wall clock is the slowest single
// probe (bounded by the probe timeout), not the sum over peers.
func (h *Health) probeRound(self string, members []string) {
	var wg sync.WaitGroup
	for _, peer := range members {
		if NormalizeURL(peer) == NormalizeURL(self) {
			continue
		}
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), h.client.Timeout)
			defer cancel()
			h.Probe(ctx, peer)
		}(peer)
	}
	wg.Wait()
}
