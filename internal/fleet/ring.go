// Package fleet makes hap-serve cluster-native: a peer membership list
// (static seed plus a config file re-read on SIGHUP or by polling), a
// consistent-hash ring that routes request fingerprints to an owner peer,
// health tracking fed by a background prober and by proxy failures, and the
// intra-fleet HTTP client used for proxy-on-miss, entry replication, and
// cache warm-up. The package is deliberately a thin subsystem over the
// daemon's existing plan store — routing and replication move bytes between
// stores; they never synthesize.
//
// The routing invariant the serve layer builds on: every node computes the
// same ring from the same member list, so a request fingerprint has one
// owner fleet-wide and the owner's single-flight group collapses a
// fleet-wide thundering herd into exactly one synthesis.
package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
)

// vnodesPerMember is the number of virtual nodes each member contributes to
// the ring. 64 keeps the expected load imbalance across a handful of peers
// in the few-percent range while the ring stays small enough to rebuild on
// every membership change.
const vnodesPerMember = 64

// Ring is an immutable consistent-hash ring over peer base URLs. Build with
// NewRing; membership changes build a new ring (readers swap atomically).
type Ring struct {
	hashes  []uint64 // sorted vnode positions
	owners  []string // owners[i] owns the arc ending at hashes[i]
	members []string // distinct members, sorted
}

// NewRing builds a ring over the given members (base URLs). Duplicates and
// empty strings are dropped; a nil or empty list yields an empty ring whose
// Owner returns "".
func NewRing(members []string) *Ring {
	seen := map[string]bool{}
	var distinct []string
	for _, m := range members {
		m = NormalizeURL(m)
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		distinct = append(distinct, m)
	}
	sort.Strings(distinct)
	r := &Ring{
		hashes:  make([]uint64, 0, len(distinct)*vnodesPerMember),
		owners:  make([]string, 0, len(distinct)*vnodesPerMember),
		members: distinct,
	}
	type vnode struct {
		hash  uint64
		owner string
	}
	vnodes := make([]vnode, 0, cap(r.hashes))
	for _, m := range distinct {
		for i := 0; i < vnodesPerMember; i++ {
			vnodes = append(vnodes, vnode{hash: hash64(m + "#" + strconv.Itoa(i)), owner: m})
		}
	}
	sort.Slice(vnodes, func(i, j int) bool { return vnodes[i].hash < vnodes[j].hash })
	for _, v := range vnodes {
		r.hashes = append(r.hashes, v.hash)
		r.owners = append(r.owners, v.owner)
	}
	return r
}

// Members returns the ring's distinct members, sorted. The slice is shared;
// callers must not mutate it.
func (r *Ring) Members() []string { return r.members }

// Size returns the number of distinct members.
func (r *Ring) Size() int { return len(r.members) }

// Owner returns the member that owns key: the first vnode clockwise of the
// key's hash. Empty ring returns "".
func (r *Ring) Owner(key string) string {
	if len(r.hashes) == 0 {
		return ""
	}
	return r.owners[r.search(key)]
}

// Successors returns up to n distinct members responsible for key, owner
// first, then the next distinct members clockwise — the replica set for an
// n-way replicated entry. n larger than the membership returns everyone.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.hashes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := map[string]bool{}
	for i, start := 0, r.search(key); len(out) < n && i < len(r.hashes); i++ {
		owner := r.owners[(start+i)%len(r.hashes)]
		if !seen[owner] {
			seen[owner] = true
			out = append(out, owner)
		}
	}
	return out
}

// search returns the index of the first vnode at or clockwise of the key's
// hash, wrapping at the top of the ring.
func (r *Ring) search(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return i
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// NormalizeURL canonicalizes a peer base URL for identity comparison:
// trims whitespace and trailing slashes. "http://a:8080/" and
// "http://a:8080" are the same node — a peers file with a trailing slash
// must not split one peer into two ring members.
func NormalizeURL(u string) string {
	return strings.TrimRight(strings.TrimSpace(u), "/")
}
