package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRingOwnershipIsDeterministic(t *testing.T) {
	members := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	r1 := NewRing(members)
	r2 := NewRing([]string{"http://c:8080", "http://a:8080/", " http://b:8080 "}) // order, slashes, spaces
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("fingerprint-%d", i)
		if r1.Owner(key) != r2.Owner(key) {
			t.Fatalf("key %q: owners differ across equivalent rings: %q vs %q", key, r1.Owner(key), r2.Owner(key))
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	members := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	r := NewRing(members)
	byOwner := map[string]int{}
	for i := 0; i < 3000; i++ {
		byOwner[r.Owner(fmt.Sprintf("fingerprint-%d", i))]++
	}
	for _, m := range members {
		// A 3-node ring with 64 vnodes each should give every node a
		// non-trivial share; the bound is loose on purpose (hash variance).
		if byOwner[m] < 300 {
			t.Errorf("member %s owns only %d of 3000 keys", m, byOwner[m])
		}
	}
}

func TestRingSuccessorsDistinctOwnerFirst(t *testing.T) {
	r := NewRing([]string{"http://a:8080", "http://b:8080", "http://c:8080"})
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		set := r.Successors(key, 2)
		if len(set) != 2 {
			t.Fatalf("Successors(%q, 2) = %v", key, set)
		}
		if set[0] != r.Owner(key) {
			t.Errorf("Successors(%q)[0] = %q, want owner %q", key, set[0], r.Owner(key))
		}
		if set[0] == set[1] {
			t.Errorf("Successors(%q) repeats %q", key, set[0])
		}
	}
	// Asking for more replicas than members returns everyone, once.
	if set := r.Successors("k", 10); len(set) != 3 {
		t.Errorf("Successors(k, 10) = %v, want all 3 members", set)
	}
}

func TestRingMinimalDisruptionOnMemberLoss(t *testing.T) {
	before := NewRing([]string{"http://a:8080", "http://b:8080", "http://c:8080"})
	after := NewRing([]string{"http://a:8080", "http://b:8080"})
	moved := 0
	const keys = 1000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("fingerprint-%d", i)
		was, is := before.Owner(key), after.Owner(key)
		if was != "http://c:8080" && was != is {
			moved++
		}
	}
	// Consistent hashing's point: keys not owned by the removed node stay
	// put. Allow nothing — survivors' vnode positions are unchanged.
	if moved != 0 {
		t.Errorf("%d/%d keys owned by surviving nodes moved when c left", moved, keys)
	}
}

func TestEmptyAndSingleRing(t *testing.T) {
	if owner := NewRing(nil).Owner("k"); owner != "" {
		t.Errorf("empty ring owner = %q", owner)
	}
	r := NewRing([]string{"http://only:1"})
	if owner := r.Owner("k"); owner != "http://only:1" {
		t.Errorf("single ring owner = %q", owner)
	}
	if set := r.Successors("k", 3); len(set) != 1 {
		t.Errorf("single ring successors = %v", set)
	}
}

func TestMembershipMergesStaticAndFile(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "peers")
	if err := os.WriteFile(file, []byte("# fleet\nhttp://c:8080\n\nhttp://d:8080\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := NewMembership("http://a:8080", []string{"http://b:8080"}, file)
	if err != nil {
		t.Fatal(err)
	}
	peers := m.Peers()
	want := []string{"http://a:8080", "http://b:8080", "http://c:8080", "http://d:8080"}
	if len(peers) != len(want) {
		t.Fatalf("peers = %v, want %v", peers, want)
	}
	for i := range want {
		if peers[i] != want[i] {
			t.Fatalf("peers = %v, want %v", peers, want)
		}
	}
}

func TestMembershipReloadSwapsRing(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "peers")
	if err := os.WriteFile(file, []byte("http://b:8080\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := NewMembership("http://a:8080", nil, file)
	if err != nil {
		t.Fatal(err)
	}
	if m.Ring().Size() != 2 {
		t.Fatalf("initial size = %d, want 2", m.Ring().Size())
	}
	if err := os.WriteFile(file, []byte("http://b:8080\nhttp://c:8080\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	changed, err := m.Reload()
	if err != nil || !changed {
		t.Fatalf("Reload = (%v, %v), want (true, nil)", changed, err)
	}
	if m.Ring().Size() != 3 {
		t.Errorf("size after reload = %d, want 3", m.Ring().Size())
	}
	if m.Reloads() != 1 {
		t.Errorf("Reloads = %d, want 1", m.Reloads())
	}
	// An unchanged file reloads to the same membership: not counted.
	if changed, _ := m.Reload(); changed {
		t.Error("no-op reload reported a change")
	}
}

func TestMembershipMissingFileFailsLoudly(t *testing.T) {
	if _, err := NewMembership("http://a:8080", nil, "/nonexistent/peers"); err == nil {
		t.Fatal("missing peers file did not error")
	}
}

func TestMembershipPollingPicksUpChange(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "peers")
	if err := os.WriteFile(file, []byte("http://b:8080\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := NewMembership("http://a:8080", nil, file)
	if err != nil {
		t.Fatal(err)
	}
	stop := m.StartPolling(10 * time.Millisecond)
	defer stop()
	if err := os.WriteFile(file, []byte("http://b:8080\nhttp://c:8080\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Backdate-proof: ensure a distinct mtime even on coarse filesystems.
	os.Chtimes(file, time.Now(), time.Now().Add(time.Second))
	deadline := time.Now().Add(5 * time.Second)
	for m.Ring().Size() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("polling never picked up the new peer; size = %d", m.Ring().Size())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHealthMarking(t *testing.T) {
	h := NewHealth(0)
	if !h.Healthy("http://a:8080") {
		t.Error("unknown peer should default healthy")
	}
	h.MarkDown("http://a:8080/")
	if h.Healthy("http://a:8080") {
		t.Error("marked-down peer reported healthy (normalization)")
	}
	if h.DownCount() != 1 {
		t.Errorf("DownCount = %d, want 1", h.DownCount())
	}
	h.MarkUp("http://a:8080")
	if !h.Healthy("http://a:8080") {
		t.Error("marked-up peer reported down")
	}
}

func TestFleetReplicaSetClampedToSize(t *testing.T) {
	f, err := New(Config{Self: "http://a:8080", Peers: []string{"http://b:8080"}, Replicas: 5})
	if err != nil {
		t.Fatal(err)
	}
	if set := f.ReplicaSet("k"); len(set) != 2 {
		t.Errorf("ReplicaSet = %v, want both members", set)
	}
	if f.ReplicaCount() != 5 {
		t.Errorf("ReplicaCount = %d, want the configured 5", f.ReplicaCount())
	}
}

func TestFleetRequiresSelf(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("Fleet without Self did not error")
	}
}
