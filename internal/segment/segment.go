// Package segment divides a model's tensors into contiguous segments for
// per-segment sharding ratios (Sec. 5.2). The paper uses METIS or
// user-provided layer boundaries; our models are chains of layers, for which
// the METIS objective (balanced parts, small cuts) reduces to a balanced
// contiguous partition of the forward pass — which this package computes by
// dynamic programming, assigning every backward node to its primal's
// segment so a parameter and its gradient always share ratios.
package segment

import (
	"hap/internal/graph"
)

// Assign partitions g into at most maxSegments segments and fills
// g.SegmentOf. Node weights are forward flops plus the flops of the
// backward nodes they spawn; boundaries balance cumulative weight.
func Assign(g *graph.Graph, maxSegments int) {
	n := g.NumNodes()
	fwd := g.ForwardCount
	if fwd == 0 {
		fwd = n
	}
	if maxSegments < 1 {
		maxSegments = 1
	}
	if maxSegments > fwd {
		maxSegments = fwd
	}

	// Weight of each forward node: own flops + attributed backward flops.
	w := make([]float64, fwd)
	for i := 0; i < fwd; i++ {
		w[i] = g.Flops(graph.NodeID(i))
	}
	for i := fwd; i < n; i++ {
		if p, ok := g.PrimalOf[graph.NodeID(i)]; ok && int(p) < fwd {
			w[p] += g.Flops(graph.NodeID(i))
		}
	}
	total := 0.0
	for _, v := range w {
		total += v
	}

	// Greedy balanced contiguous split: close a segment when its weight
	// reaches total/maxSegments (exact DP is overkill for chain models and
	// the LP downstream is insensitive to small imbalance).
	target := total / float64(maxSegments)
	segOfFwd := make([]int, fwd)
	seg, acc := 0, 0.0
	for i := 0; i < fwd; i++ {
		segOfFwd[i] = seg
		acc += w[i]
		if acc >= target && seg < maxSegments-1 {
			seg++
			acc = 0
		}
	}

	segOf := make([]int, n)
	copy(segOf, segOfFwd)
	for i := fwd; i < n; i++ {
		id := graph.NodeID(i)
		if p, ok := g.PrimalOf[id]; ok && int(p) < fwd {
			segOf[i] = segOfFwd[p]
		} else {
			segOf[i] = seg // stragglers join the last segment
		}
	}
	g.SegmentOf = segOf
}
