package segment

import (
	"testing"

	"hap/internal/graph"
	"hap/internal/models"
)

func TestAssignBasics(t *testing.T) {
	g := models.Training(models.MLP(64, 32, 32, 32, 32, 10))
	Assign(g, 3)
	if got := g.NumSegments(); got != 3 {
		t.Errorf("NumSegments = %d, want 3", got)
	}
	if len(g.SegmentOf) != g.NumNodes() {
		t.Fatalf("SegmentOf covers %d of %d nodes", len(g.SegmentOf), g.NumNodes())
	}
}

func TestForwardSegmentsContiguous(t *testing.T) {
	g := models.Training(models.MLP(64, 32, 32, 32, 10))
	Assign(g, 4)
	prev := 0
	for i := 0; i < g.ForwardCount; i++ {
		s := g.SegmentOf[i]
		if s < prev || s > prev+1 {
			t.Fatalf("forward segment jumps from %d to %d at node %d", prev, s, i)
		}
		prev = s
	}
}

func TestBackwardInheritsPrimalSegment(t *testing.T) {
	g := models.Training(models.MLP(64, 32, 32, 32, 10))
	Assign(g, 3)
	for i := g.ForwardCount; i < g.NumNodes(); i++ {
		id := graph.NodeID(i)
		p, ok := g.PrimalOf[id]
		if !ok {
			continue
		}
		if g.SegmentOf[i] != g.SegmentOf[p] {
			t.Errorf("backward node %d in segment %d, primal %d in %d",
				i, g.SegmentOf[i], p, g.SegmentOf[p])
		}
	}
}

func TestParamAndGradShareSegment(t *testing.T) {
	// The invariant the load balancer relies on: a parameter's gradient has
	// the same sharding-ratio row. Parameters sit in the segment of their
	// first consumer; their gradient inherits the consumer's (primal's)
	// segment via PrimalOf.
	g := models.Training(models.MLP(64, 32, 32, 32, 10))
	Assign(g, 3)
	for p, gr := range g.Grads {
		consumers := g.Consumers()[p]
		if len(consumers) == 0 {
			continue
		}
		want := g.Segment(consumers[0])
		if got := g.Segment(gr); got != want {
			t.Errorf("param e%d: grad segment %d != forward-consumer segment %d", p, got, want)
		}
	}
}

func TestMoreSegmentsThanNodesClamps(t *testing.T) {
	g := models.Training(models.MLP(8, 4, 2))
	Assign(g, 1000)
	if g.NumSegments() > g.NumNodes() {
		t.Errorf("segments %d exceed nodes %d", g.NumSegments(), g.NumNodes())
	}
}

func TestSingleSegment(t *testing.T) {
	g := models.Training(models.MLP(8, 4, 2))
	Assign(g, 1)
	for _, s := range g.SegmentOf {
		if s != 0 {
			t.Fatal("single segment assignment not uniform")
		}
	}
}
