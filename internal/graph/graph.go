// Package graph defines HAP's single-device computation-graph IR.
//
// A Graph is the "single-device DNN training program" of the paper (Sec. 3):
// a list of nodes in topological order, each producing one tensor. The
// program synthesizer consumes only the structure (op kinds, shapes, flops);
// the numeric runtime additionally executes supported ops on real data.
//
// This package is the substitute for the PyTorch fx graphs used by the
// paper's implementation.
package graph

import (
	"fmt"
	"strings"

	"hap/internal/tensor"
)

// NodeID identifies a node (and the tensor it produces) within a Graph.
type NodeID int

// OpKind enumerates the single-device instruction set.
type OpKind int

// Single-device op kinds. The *Grad kinds are produced by the autodiff pass.
const (
	// Leaves.
	Placeholder OpKind = iota // training input batch (has a batch dimension)
	Parameter                 // trainable parameter
	Ones                      // constant tensor of ones (seed of the backward pass)

	// Expand broadcasts a scalar to an explicit shape (backward of Sum).
	Expand

	// Dense algebra.
	MatMul    // (n,k)·(k,m) → (n,m)
	Transpose // (n,m) → (m,n)
	Add       // element-wise sum
	Mul       // element-wise (Hadamard) product
	Scale     // multiply by scalar attribute

	// Activations and reductions.
	ReLU
	Sigmoid
	GeLU
	Softmax // along last dim
	Sum     // full reduction → scalar (the loss)

	// Activation gradients: (x or y, upstream grad) → grad.
	ReLUGrad
	SigmoidGrad
	GeLUGrad
	SoftmaxGrad

	// Convolution, cost-only (no numeric execution): Conv(x, w) where x is
	// (batch, inFeatures), w is the filter parameter, output is
	// (batch, outFeatures). FLOPs come from the FlopsPerSample attribute.
	Conv
	ConvGradX // (w, gy) → grad of x
	ConvGradW // (x, gy) → grad of w

	// Mixture-of-Experts, cost-only. Shapes follow GShard:
	//   Dispatch(x, gates):   (T,H),(T,E) → (E,C,H)
	//   ExpertMM(d, w):       (E,C,H),(E,H,F) → (E,C,F)  batched per expert
	//   Combine(e, gates):    (E,C,H),(T,E) → (T,H)
	Dispatch
	ExpertMM
	Combine
	DispatchGrad // (gy) → grad of x
	ExpertMMGradX
	ExpertMMGradW
	CombineGrad  // (gy, gates) → grad of the expert output (E,C,H)
	CombineGradG // (gy, e) → grad of the gates (T,E)

	// Embedding lookup: Embed(ids, table) with ids (T,) and table (V,H)
	// produces (T,H). Gather cost, not a matmul.
	Embed
	EmbedGrad // (ids, gy) → grad of the table (V,H), a scatter-add

	// Attention core, cost-only: Attention(qkv) with qkv (T,3H) produces the
	// attended values (T,H). FLOPs 4·T·S·H with S the sequence length
	// (scores + context matmuls); heads do not change the flop count.
	Attention
	AttentionGrad // (qkv, gy) → (T,3H)

	// Spatial pooling, cost-only: Pool(x) with x (B,F) produces (B,F/4).
	Pool
	PoolGrad // (x, gy) → (B,F)
)

var opNames = map[OpKind]string{
	Placeholder: "placeholder", Parameter: "parameter", Ones: "ones", Expand: "expand",
	MatMul: "matmul", Transpose: "transpose", Add: "add", Mul: "mul", Scale: "scale",
	ReLU: "relu", Sigmoid: "sigmoid", GeLU: "gelu", Softmax: "softmax", Sum: "sum",
	ReLUGrad: "relu_grad", SigmoidGrad: "sigmoid_grad", GeLUGrad: "gelu_grad", SoftmaxGrad: "softmax_grad",
	Conv: "conv", ConvGradX: "conv_grad_x", ConvGradW: "conv_grad_w",
	Dispatch: "dispatch", ExpertMM: "expert_mm", Combine: "combine",
	DispatchGrad: "dispatch_grad", ExpertMMGradX: "expert_mm_grad_x", ExpertMMGradW: "expert_mm_grad_w",
	CombineGrad: "combine_grad", CombineGradG: "combine_grad_g",
	Embed: "embed", EmbedGrad: "embed_grad",
	Attention: "attention", AttentionGrad: "attention_grad",
	Pool: "pool", PoolGrad: "pool_grad",
}

func (k OpKind) String() string {
	if n, ok := opNames[k]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// ParseOpKind returns the op kind with the given name (as produced by
// OpKind.String). Serialized programs store kinds by name so the format
// survives enum renumbering.
func ParseOpKind(name string) (OpKind, bool) {
	for k, n := range opNames {
		if n == name {
			return k, true
		}
	}
	return 0, false
}

// Node is one instruction of the single-device program, producing one tensor.
type Node struct {
	ID     NodeID
	Kind   OpKind
	Inputs []NodeID
	Shape  tensor.Shape
	Name   string

	// ScaleFactor is the multiplier for Scale nodes.
	ScaleFactor float64
	// FlopsPerSample overrides flops accounting for Conv-family nodes:
	// total flops = FlopsPerSample × batch size (dim 0 of the output).
	FlopsPerSample float64
	// BatchDim is the dimension of this node's output that carries the
	// data-parallel batch axis, or -1 if none. Builders set it on
	// Placeholder nodes; shape inference propagates it where meaningful.
	BatchDim int
}

// Graph is a single-device training program: nodes in topological order,
// a scalar loss output, parameters, and (after autodiff) parameter gradients.
type Graph struct {
	Nodes  []Node
	Loss   NodeID
	Params []NodeID
	// Grads maps each parameter to the node computing its gradient.
	// Populated by the autodiff pass.
	Grads map[NodeID]NodeID
	// ForwardCount is the number of nodes before the backward pass was
	// appended (0 when no backward pass exists).
	ForwardCount int
	// PrimalOf maps backward-pass nodes to the forward node whose
	// differentiation created them. Populated by the autodiff pass.
	PrimalOf map[NodeID]NodeID
	// SegmentOf optionally assigns each node to a model segment for
	// per-segment sharding ratios (Sec. 5.2). Empty means one segment.
	SegmentOf []int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{Loss: -1, Grads: map[NodeID]NodeID{}, PrimalOf: map[NodeID]NodeID{}}
}

// Node returns the node with the given id.
func (g *Graph) Node(id NodeID) *Node { return &g.Nodes[id] }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// add appends a node, inferring its output shape, and returns its id.
func (g *Graph) add(n Node) NodeID {
	n.ID = NodeID(len(g.Nodes))
	if n.Shape == nil {
		n.Shape = g.inferShape(&n)
	}
	if n.BatchDim == 0 && n.Kind != Placeholder {
		// Zero value means "unset" for non-placeholders; recompute.
		n.BatchDim = g.inferBatchDim(&n)
	}
	g.Nodes = append(g.Nodes, n)
	return n.ID
}

// AddPlaceholder appends a training-input node. batchDim marks the
// data-parallel axis of the input (-1 for none).
func (g *Graph) AddPlaceholder(name string, batchDim int, shape ...int) NodeID {
	return g.add(Node{Kind: Placeholder, Name: name, Shape: tensor.Shape(shape).Clone(), BatchDim: batchDim})
}

// AddParameter appends a trainable-parameter node.
func (g *Graph) AddParameter(name string, shape ...int) NodeID {
	id := g.add(Node{Kind: Parameter, Name: name, Shape: tensor.Shape(shape).Clone(), BatchDim: -1})
	g.Params = append(g.Params, id)
	return id
}

// AddOnes appends a constant all-ones node.
func (g *Graph) AddOnes(shape ...int) NodeID {
	return g.add(Node{Kind: Ones, Shape: tensor.Shape(shape).Clone(), BatchDim: -1})
}

// AddExpand appends a node broadcasting a scalar input to the given shape.
func (g *Graph) AddExpand(scalar NodeID, shape tensor.Shape) NodeID {
	return g.add(Node{Kind: Expand, Inputs: []NodeID{scalar}, Shape: shape.Clone(), BatchDim: -1})
}

// AddShaped appends a node with an explicit output shape (for grad kinds
// whose shape is not inferable from inputs alone).
func (g *Graph) AddShaped(kind OpKind, shape tensor.Shape, flopsPerSample float64, inputs ...NodeID) NodeID {
	return g.add(Node{Kind: kind, Inputs: inputs, Shape: shape.Clone(), FlopsPerSample: flopsPerSample, BatchDim: -1})
}

// AddOp appends a computation node of the given kind; the output shape is
// inferred from the inputs.
func (g *Graph) AddOp(kind OpKind, inputs ...NodeID) NodeID {
	return g.add(Node{Kind: kind, Inputs: inputs})
}

// AddScale appends a Scale node multiplying input by factor.
func (g *Graph) AddScale(input NodeID, factor float64) NodeID {
	return g.add(Node{Kind: Scale, Inputs: []NodeID{input}, ScaleFactor: factor})
}

// AddConv appends a cost-only convolution node: x (batch, inF) with filter
// parameter w produces (batch, outFeatures); flopsPerSample is the per-sample
// multiply-add count ×2.
func (g *Graph) AddConv(x, w NodeID, outFeatures int, flopsPerSample float64) NodeID {
	b := g.Node(x).Shape[0]
	return g.add(Node{
		Kind: Conv, Inputs: []NodeID{x, w},
		Shape: tensor.Shape{b, outFeatures}, FlopsPerSample: flopsPerSample,
	})
}

// AddEmbed appends an embedding lookup: ids (T,) into table (V,H) → (T,H).
func (g *Graph) AddEmbed(ids, table NodeID) NodeID {
	t := g.Node(ids).Shape[0]
	h := g.Node(table).Shape[1]
	return g.add(Node{Kind: Embed, Inputs: []NodeID{ids, table}, Shape: tensor.Shape{t, h}})
}

// AddAttention appends a cost-only attention core over qkv (T,3H) with the
// given sequence length, producing (T,H).
func (g *Graph) AddAttention(qkv NodeID, seqLen int) NodeID {
	s := g.Node(qkv).Shape
	h := s[1] / 3
	return g.add(Node{
		Kind: Attention, Inputs: []NodeID{qkv},
		Shape: tensor.Shape{s[0], h}, FlopsPerSample: 4 * float64(seqLen) * float64(h),
	})
}

// AddPool appends a cost-only 2×2 spatial pooling: (B,F) → (B,F/4).
func (g *Graph) AddPool(x NodeID) NodeID {
	s := g.Node(x).Shape
	return g.add(Node{Kind: Pool, Inputs: []NodeID{x}, Shape: tensor.Shape{s[0], s[1] / 4}})
}

// SetLoss marks the scalar loss output.
func (g *Graph) SetLoss(id NodeID) {
	if len(g.Node(id).Shape) != 0 {
		panic(fmt.Sprintf("graph: loss %d must be scalar, has shape %v", id, g.Node(id).Shape))
	}
	g.Loss = id
}

func (g *Graph) inferShape(n *Node) tensor.Shape {
	in := func(i int) tensor.Shape { return g.Node(n.Inputs[i]).Shape }
	switch n.Kind {
	case MatMul:
		a, b := in(0), in(1)
		if len(a) != 2 || len(b) != 2 || a[1] != b[0] {
			panic(fmt.Sprintf("graph: matmul shape mismatch %v · %v", a, b))
		}
		return tensor.Shape{a[0], b[1]}
	case Transpose:
		a := in(0)
		if len(a) != 2 {
			panic(fmt.Sprintf("graph: transpose needs rank 2, got %v", a))
		}
		return tensor.Shape{a[1], a[0]}
	case Add, Mul:
		a, b := in(0), in(1)
		if !a.Equal(b) {
			panic(fmt.Sprintf("graph: %v shape mismatch %v vs %v", n.Kind, a, b))
		}
		return a.Clone()
	case Scale, ReLU, Sigmoid, GeLU, Softmax:
		return in(0).Clone()
	case ReLUGrad, SigmoidGrad, GeLUGrad, SoftmaxGrad:
		a, b := in(0), in(1)
		if !a.Equal(b) {
			panic(fmt.Sprintf("graph: %v shape mismatch %v vs %v", n.Kind, a, b))
		}
		return a.Clone()
	case Sum:
		return tensor.Shape{}
	case ConvGradX:
		// (w, gy): grad has the shape of the conv input, which equals
		// (batch of gy, in-features of w's logical input) — builders use
		// AddOp with explicit wiring; shape = (gy[0], attr) is unknown here,
		// so ConvGradX nodes are added with explicit shapes by autodiff.
		panic("graph: ConvGradX requires explicit shape")
	case ConvGradW:
		panic("graph: ConvGradW requires explicit shape")
	case Dispatch:
		// x (T,H), gates (T,E) → (E, C, H) with capacity C = T/E (≥1).
		x, gates := in(0), in(1)
		t, h, e := x[0], x[1], gates[1]
		c := t / e
		if c == 0 {
			c = 1
		}
		return tensor.Shape{e, c, h}
	case ExpertMM:
		d, w := in(0), in(1)
		if len(d) != 3 || len(w) != 3 || d[0] != w[0] || d[2] != w[1] {
			panic(fmt.Sprintf("graph: expert_mm shape mismatch %v · %v", d, w))
		}
		return tensor.Shape{d[0], d[1], w[2]}
	case Combine:
		e, gates := in(0), in(1)
		return tensor.Shape{gates[0], e[2]}
	default:
		panic(fmt.Sprintf("graph: cannot infer shape for %v", n.Kind))
	}
}

// inferBatchDim propagates the batch axis through ops where the output keeps
// a recognizable batch dimension. It returns -1 when the notion is lost.
func (g *Graph) inferBatchDim(n *Node) int {
	bd := func(i int) int { return g.Node(n.Inputs[i]).BatchDim }
	switch n.Kind {
	case MatMul:
		if bd(0) == 0 {
			return 0
		}
		return -1
	case Transpose:
		switch bd(0) {
		case 0:
			return 1
		case 1:
			return 0
		}
		return -1
	case Add, Mul, Scale, ReLU, Sigmoid, GeLU, Softmax,
		ReLUGrad, SigmoidGrad, GeLUGrad, SoftmaxGrad:
		for i := range n.Inputs {
			if d := bd(i); d >= 0 {
				return d
			}
		}
		return -1
	case Conv, Embed, Attention, Pool:
		return 0
	default:
		return -1
	}
}

// Flops returns the floating-point operation count of a node on the full
// (unsharded) shapes. Leaves cost zero.
func (g *Graph) Flops(id NodeID) float64 {
	n := g.Node(id)
	numel := float64(n.Shape.NumElements())
	switch n.Kind {
	case Placeholder, Parameter, Ones, Expand:
		return 0
	case MatMul:
		a := g.Node(n.Inputs[0]).Shape
		return 2 * float64(a[0]) * float64(a[1]) * float64(n.Shape[1])
	case Transpose:
		return numel
	case Add, Mul, Scale, ReLU:
		return numel
	case Sigmoid, GeLU:
		return 8 * numel
	case Softmax:
		return 5 * numel
	case Sum:
		return float64(g.Node(n.Inputs[0]).Shape.NumElements())
	case ReLUGrad:
		return numel
	case SigmoidGrad, GeLUGrad:
		return 8 * numel
	case SoftmaxGrad:
		return 6 * numel
	case Conv:
		return n.FlopsPerSample * float64(n.Shape[0])
	case ConvGradX, ConvGradW, ExpertMMGradX, ExpertMMGradW:
		// Grad kinds take (other operand, gy); per-sample/per-expert cost
		// scales with dim 0 of the upstream gradient.
		return n.FlopsPerSample * float64(g.Node(n.Inputs[1]).Shape[0])
	case Dispatch, Combine, DispatchGrad, CombineGrad, CombineGradG:
		return 2 * numel
	case ExpertMM:
		d := g.Node(n.Inputs[0]).Shape
		return 2 * float64(d[0]) * float64(d[1]) * float64(d[2]) * float64(n.Shape[2])
	case Embed:
		return numel
	case EmbedGrad:
		return float64(g.Node(n.Inputs[1]).Shape.NumElements())
	case Attention, AttentionGrad:
		return n.FlopsPerSample * float64(n.Shape[0])
	case Pool:
		return float64(g.Node(n.Inputs[0]).Shape.NumElements())
	case PoolGrad:
		return numel
	default:
		return numel
	}
}

// BytesPerElement is the accounting element size. The paper trains in fp32.
const BytesPerElement = 4

// Bytes returns the (fp32-accounted) size of the node's output tensor.
func (g *Graph) Bytes(id NodeID) float64 {
	return float64(g.Node(id).Shape.NumElements()) * BytesPerElement
}

// TotalFlops returns the flops of the whole program.
func (g *Graph) TotalFlops() float64 {
	total := 0.0
	for i := range g.Nodes {
		total += g.Flops(NodeID(i))
	}
	return total
}

// ParameterCount returns the total number of trainable scalars.
func (g *Graph) ParameterCount() int {
	total := 0
	for _, p := range g.Params {
		total += g.Node(p).Shape.NumElements()
	}
	return total
}

// ParameterBytes returns total parameter size in bytes (fp32 accounting).
func (g *Graph) ParameterBytes() float64 {
	return float64(g.ParameterCount()) * BytesPerElement
}

// Consumers returns, for every node, the ids of nodes consuming its output.
func (g *Graph) Consumers() [][]NodeID {
	out := make([][]NodeID, len(g.Nodes))
	for i := range g.Nodes {
		for _, in := range g.Nodes[i].Inputs {
			out[in] = append(out[in], NodeID(i))
		}
	}
	return out
}

// Validate checks topological ordering, input arity, and loss designation.
func (g *Graph) Validate() error {
	arity := map[OpKind]int{
		Placeholder: 0, Parameter: 0, Ones: 0, Expand: 1,
		MatMul: 2, Transpose: 1, Add: 2, Mul: 2, Scale: 1,
		ReLU: 1, Sigmoid: 1, GeLU: 1, Softmax: 1, Sum: 1,
		ReLUGrad: 2, SigmoidGrad: 2, GeLUGrad: 2, SoftmaxGrad: 2,
		Conv: 2, ConvGradX: 2, ConvGradW: 2,
		Dispatch: 2, ExpertMM: 2, Combine: 2,
		DispatchGrad: 1, ExpertMMGradX: 2, ExpertMMGradW: 2, CombineGrad: 2, CombineGradG: 2,
		Embed: 2, EmbedGrad: 2, Attention: 1, AttentionGrad: 2, Pool: 1, PoolGrad: 2,
	}
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if n.ID != NodeID(i) {
			return fmt.Errorf("graph: node %d has id %d", i, n.ID)
		}
		if want, ok := arity[n.Kind]; ok && len(n.Inputs) != want {
			return fmt.Errorf("graph: node %d (%v) has %d inputs, want %d", i, n.Kind, len(n.Inputs), want)
		}
		for _, in := range n.Inputs {
			if in < 0 || in >= NodeID(i) {
				return fmt.Errorf("graph: node %d (%v) references input %d out of topological order", i, n.Kind, in)
			}
		}
		// Softmax normalizes along the last dim; a rank-0 output has no dim
		// to normalize and the sharding rules cannot even be stated for it.
		if (n.Kind == Softmax || n.Kind == SoftmaxGrad) && len(n.Shape) == 0 {
			return fmt.Errorf("graph: node %d (%v) has scalar shape; softmax needs rank ≥ 1", i, n.Kind)
		}
	}
	if g.Loss >= 0 && len(g.Node(g.Loss).Shape) != 0 {
		return fmt.Errorf("graph: loss node %d is not scalar", g.Loss)
	}
	if len(g.SegmentOf) != 0 && len(g.SegmentOf) != len(g.Nodes) {
		return fmt.Errorf("graph: SegmentOf has %d entries for %d nodes", len(g.SegmentOf), len(g.Nodes))
	}
	return nil
}

// NumSegments returns the number of model segments (at least 1).
func (g *Graph) NumSegments() int {
	max := 0
	for _, s := range g.SegmentOf {
		if s > max {
			max = s
		}
	}
	if len(g.SegmentOf) == 0 {
		return 1
	}
	return max + 1
}

// Segment returns the segment of a node (0 when unsegmented).
func (g *Graph) Segment(id NodeID) int {
	if len(g.SegmentOf) == 0 {
		return 0
	}
	return g.SegmentOf[id]
}

// String renders the program one instruction per line, mirroring the
// single-device programs in the paper's figures.
func (g *Graph) String() string {
	var b strings.Builder
	for i := range g.Nodes {
		n := &g.Nodes[i]
		fmt.Fprintf(&b, "e%d = %v(", n.ID, n.Kind)
		for j, in := range n.Inputs {
			if j > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "e%d", in)
		}
		fmt.Fprintf(&b, ") : %v", n.Shape)
		if n.Name != "" {
			fmt.Fprintf(&b, "  # %s", n.Name)
		}
		if NodeID(i) == g.Loss {
			b.WriteString("  # loss")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
