package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"hap/internal/tensor"
)

// buildTraining returns an MLP with a hand-rolled backward pass, exercising
// every bookkeeping field the wire format must carry.
func buildTraining(t *testing.T) *Graph {
	t.Helper()
	g := New()
	x := g.AddPlaceholder("x", 0, 8, 4)
	w := g.AddParameter("w", 4, 3)
	y := g.AddOp(MatMul, x, w)
	s := g.AddScale(y, 0.5)
	g.SetLoss(g.AddOp(Sum, s))
	g.ForwardCount = g.NumNodes()
	ones := g.AddOnes()
	gy := g.AddExpand(ones, g.Node(y).Shape)
	xt := g.AddOp(Transpose, x)
	gw := g.AddOp(MatMul, xt, gy)
	g.Grads[w] = gw
	g.PrimalOf[gw] = w
	g.PrimalOf[xt] = x
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

func encode(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

func TestGraphJSONRoundTrip(t *testing.T) {
	g := buildTraining(t)
	g.SegmentOf = []int{0, 0, 0, 1, 1, 1, 1, 1, 1}
	q, err := Decode(bytes.NewReader(encode(t, g)))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(g.Nodes, q.Nodes) {
		t.Errorf("round-trip changed nodes:\n%s\nvs\n%s", g, q)
	}
	if q.Loss != g.Loss || !reflect.DeepEqual(q.Params, g.Params) {
		t.Errorf("loss/params drifted: %v/%v vs %v/%v", q.Loss, q.Params, g.Loss, g.Params)
	}
	if !reflect.DeepEqual(q.Grads, g.Grads) || !reflect.DeepEqual(q.PrimalOf, g.PrimalOf) {
		t.Error("gradient bookkeeping drifted")
	}
	if q.ForwardCount != g.ForwardCount || !reflect.DeepEqual(q.SegmentOf, g.SegmentOf) {
		t.Error("forward count or segment assignment drifted")
	}
	if Fingerprint(q) != Fingerprint(g) {
		t.Error("round-trip changed the fingerprint")
	}
}

func TestGraphJSONDeterministic(t *testing.T) {
	// Map-valued fields must not leak iteration order into the encoding.
	g := buildTraining(t)
	a := encode(t, g)
	for i := 0; i < 20; i++ {
		if b := encode(t, g); !bytes.Equal(a, b) {
			t.Fatal("Encode is not byte-deterministic")
		}
	}
}

func TestGraphJSONUsesStableNames(t *testing.T) {
	s := string(encode(t, buildTraining(t)))
	for _, want := range []string{`"op": "matmul"`, `"op": "placeholder"`, `"op": "transpose"`} {
		if !strings.Contains(s, want) {
			t.Errorf("encoded JSON lacks %s:\n%s", want, s)
		}
	}
}

func TestGraphJSONRejections(t *testing.T) {
	enc := string(encode(t, buildTraining(t)))
	cases := []struct {
		name    string
		mutate  func(string) string
		wantSub string
	}{
		{"not json", func(s string) string { return "][" }, "decode"},
		{"bad version", func(s string) string { return strings.Replace(s, `"version": 1`, `"version": 99`, 1) }, "version"},
		{"unknown op", func(s string) string { return strings.Replace(s, `"op": "matmul"`, `"op": "quantum_matmul"`, 1) }, "unknown op"},
		{"input out of range", func(s string) string { return strings.Replace(s, `"inputs": [`, `"inputs": [400, `, 1) }, "input"},
		{"loss out of range", func(s string) string { return strings.Replace(s, `"loss": 4`, `"loss": 44`, 1) }, "loss"},
		{"param out of range", func(s string) string { return strings.Replace(s, `"params": [`, `"params": [-3, `, 1) }, "parameter"},
		{"grad out of range", func(s string) string { return strings.Replace(s, `"grads": [`, `"grads": [[1, 99], `, 1) }, "gradient"},
		{"negative dimension", func(s string) string { return strings.Replace(s, `"shape": [`, `"shape": [-8, `, 1) }, "dimension"},
		{"bad forward count", func(s string) string { return strings.Replace(s, `"forward_count": 5`, `"forward_count": 50`, 1) }, "forward_count"},
		{"bad segment length", func(s string) string { return strings.Replace(s, `"loss": 4`, `"loss": 4, "segment_of": [0]`, 1) }, "SegmentOf"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := tc.mutate(enc)
			if mutated == enc {
				t.Fatal("mutation did not change the encoding (test is stale)")
			}
			_, err := Decode(strings.NewReader(mutated))
			if err == nil {
				t.Fatal("Decode accepted bad input")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestGraphJSONRejectsInconsistentShapes covers the wire-format attack
// surface the daemon is exposed to: declared shapes that disagree with what
// the op produces (or inputs that are mutually inconsistent) panic deep in
// the synthesis pipeline if they get through, so Decode must refuse them.
func TestGraphJSONRejectsInconsistentShapes(t *testing.T) {
	cases := []struct {
		name, body, wantSub string
	}{
		{
			"output shape disagrees with op",
			`{"version":1,"nodes":[{"op":"placeholder","shape":[4,4],"batch_dim":0},{"op":"softmax","inputs":[0],"shape":[],"batch_dim":-1}],"loss":1}`,
			"softmax",
		},
		{
			"matmul inner dims disagree",
			`{"version":1,"nodes":[{"op":"placeholder","shape":[4,3],"batch_dim":0},{"op":"parameter","shape":[5,2],"batch_dim":-1},{"op":"matmul","inputs":[0,1],"shape":[4,2],"batch_dim":0}],"loss":-1}`,
			"inconsistent input shapes",
		},
		{
			"add operands disagree",
			`{"version":1,"nodes":[{"op":"placeholder","shape":[4,3],"batch_dim":0},{"op":"placeholder","shape":[3,4],"batch_dim":0},{"op":"add","inputs":[0,1],"shape":[4,3],"batch_dim":0}],"loss":-1}`,
			"inconsistent input shapes",
		},
		{
			"scalar softmax",
			`{"version":1,"nodes":[{"op":"placeholder","shape":[],"batch_dim":-1},{"op":"softmax","inputs":[0],"shape":[],"batch_dim":-1}],"loss":-1}`,
			"softmax",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(strings.NewReader(tc.body))
			if err == nil {
				t.Fatal("Decode accepted a shape-inconsistent graph")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestGraphJSONOmittedFieldsUseSentinels(t *testing.T) {
	// The in-memory "none" sentinel is -1 for both the loss designation and
	// the batch axis; omitted fields must not silently mean node/axis 0.
	g, err := Decode(strings.NewReader(`{"version":1,"nodes":[{"op":"parameter","shape":[2,2]}]}`))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if g.Loss != -1 {
		t.Errorf("omitted loss decoded as %d, want -1", g.Loss)
	}
	if bd := g.Node(0).BatchDim; bd != -1 {
		t.Errorf("omitted batch_dim decoded as %d, want -1", bd)
	}
}

func TestFingerprintIgnoresLabels(t *testing.T) {
	a := buildTraining(t)
	b := buildTraining(t)
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("identical graphs have different fingerprints")
	}
	for i := range b.Nodes {
		b.Nodes[i].Name = "renamed"
	}
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("node names changed the fingerprint")
	}
}

func TestFingerprintCoversSemantics(t *testing.T) {
	base := Fingerprint(buildTraining(t))
	perturb := []struct {
		name string
		f    func(*Graph)
	}{
		{"shape", func(g *Graph) { g.Nodes[0].Shape = tensor.Shape{16, 4} }},
		{"op kind", func(g *Graph) { g.Nodes[4].Kind = Softmax }},
		{"edge", func(g *Graph) { g.Nodes[3].Inputs[0] = 0 }},
		{"scale factor", func(g *Graph) { g.Nodes[3].ScaleFactor = 0.25 }},
		{"flops override", func(g *Graph) { g.Nodes[2].FlopsPerSample = 7 }},
		{"batch axis", func(g *Graph) { g.Nodes[0].BatchDim = 1 }},
		{"loss", func(g *Graph) { g.Loss = 3 }},
		{"gradient", func(g *Graph) { g.Grads[1] = 7 }},
		{"non-param gradient", func(g *Graph) { g.Grads[0] = 7 }},
		{"extra param", func(g *Graph) { g.Params = append(g.Params, 0) }},
		{"segments", func(g *Graph) { g.SegmentOf = []int{0, 0, 0, 0, 1, 1, 1, 1, 1} }},
	}
	for _, p := range perturb {
		t.Run(p.name, func(t *testing.T) {
			g := buildTraining(t)
			p.f(g)
			if Fingerprint(g) == base {
				t.Errorf("perturbing %s did not change the fingerprint", p.name)
			}
		})
	}
}
