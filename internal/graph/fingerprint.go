// Structural fingerprinting of graphs, shared by the plan serializer (which
// refuses to bind a plan to a graph it was not synthesized for) and the serve
// cache (which keys synthesized plans by graph content).

package graph

import "hap/internal/fingerprint"

// Fingerprint returns a stable structural hash of the graph: node kinds,
// edges, shapes, numeric attributes (scale factors, flop overrides, batch
// axes), loss and gradient designations, and the segment assignment. Two
// graphs with equal fingerprints synthesize, cost, and execute identically;
// node names are labels only and do not participate. The hash is
// deterministic across processes (no map iteration order leaks in).
func Fingerprint(g *Graph) string {
	h := fingerprint.New()
	h.Int(len(g.Nodes))
	for i := range g.Nodes {
		n := g.Node(NodeID(i))
		h.Int(int(n.Kind))
		h.Int(len(n.Inputs))
		for _, u := range n.Inputs {
			h.Int(int(u))
		}
		h.Int(len(n.Shape))
		for _, d := range n.Shape {
			h.Int(d)
		}
		h.Float(n.ScaleFactor)
		h.Float(n.FlopsPerSample)
		h.Int(n.BatchDim)
	}
	h.Int(int(g.Loss))
	h.Int(len(g.Params))
	for _, p := range g.Params {
		h.Int(int(p))
	}
	// All gradient designations, in sorted order — including any whose key
	// is not a registered parameter (a hand-written wire graph can carry
	// those, and they change what the plan must materialize).
	h.Int(len(g.Grads))
	for _, pr := range sortedPairs(g.Grads) {
		h.Int(pr[0])
		h.Int(pr[1])
	}
	h.Int(len(g.SegmentOf))
	for _, s := range g.SegmentOf {
		h.Int(s)
	}
	return h.Sum()
}
