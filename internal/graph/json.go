// Stable JSON serialization of single-device graphs — the wire format a
// hap-serve client ships its model in. Op kinds travel by name (not ordinal)
// so the format survives enum renumbering; Decode validates the result so a
// malformed request cannot crash later pipeline stages. Everything synthesis
// depends on is carried: shapes, numeric attributes, the loss and gradient
// designations, and the autodiff bookkeeping (ForwardCount, PrimalOf) that
// the segmenter consumes.

package graph

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"hap/internal/tensor"
)

// wireVersion is bumped on incompatible changes to the serialized graph form.
const wireVersion = 1

// graphJSON is the on-wire form of a Graph. Map-valued fields (Grads,
// PrimalOf) travel as id-sorted pairs so encoding is byte-deterministic.
type graphJSON struct {
	Version int        `json:"version"`
	Nodes   []nodeJSON `json:"nodes"`
	// Loss is a pointer so an omitted field decodes as "no loss" (-1), not
	// as node 0 — clients hand-write this format.
	Loss         *int     `json:"loss"`
	Params       []int    `json:"params,omitempty"`
	Grads        [][2]int `json:"grads,omitempty"` // [param, grad] pairs
	ForwardCount int      `json:"forward_count,omitempty"`
	PrimalOf     [][2]int `json:"primal_of,omitempty"` // [node, primal] pairs
	SegmentOf    []int    `json:"segment_of,omitempty"`
}

type nodeJSON struct {
	Op             string  `json:"op"`
	Inputs         []int   `json:"inputs,omitempty"`
	Shape          []int   `json:"shape"`
	Name           string  `json:"name,omitempty"`
	Scale          float64 `json:"scale,omitempty"`
	FlopsPerSample float64 `json:"flops_per_sample,omitempty"`
	// BatchDim is a pointer for the same reason Loss is: omitted must mean
	// "no batch axis" (-1), not axis 0.
	BatchDim *int `json:"batch_dim"`
}

// sortedPairs flattens an id→id map into key-sorted pairs.
func sortedPairs(m map[NodeID]NodeID) [][2]int {
	if len(m) == 0 {
		return nil
	}
	out := make([][2]int, 0, len(m))
	for k, v := range m {
		out = append(out, [2]int{int(k), int(v)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Encode writes the graph as indented (diffable, deterministic) JSON.
func (g *Graph) Encode(w io.Writer) error {
	loss := int(g.Loss)
	gj := graphJSON{
		Version:      wireVersion,
		Loss:         &loss,
		Grads:        sortedPairs(g.Grads),
		ForwardCount: g.ForwardCount,
		PrimalOf:     sortedPairs(g.PrimalOf),
		SegmentOf:    g.SegmentOf,
	}
	for _, p := range g.Params {
		gj.Params = append(gj.Params, int(p))
	}
	for i := range g.Nodes {
		n := g.Node(NodeID(i))
		bd := n.BatchDim
		nj := nodeJSON{
			Op:             n.Kind.String(),
			Shape:          []int(n.Shape),
			Name:           n.Name,
			Scale:          n.ScaleFactor,
			FlopsPerSample: n.FlopsPerSample,
			BatchDim:       &bd,
		}
		for _, u := range n.Inputs {
			nj.Inputs = append(nj.Inputs, int(u))
		}
		gj.Nodes = append(gj.Nodes, nj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(gj)
}

// Decode reads a graph written by Encode and validates it structurally, so
// downstream consumers (synthesizer, runtime) can assume well-formedness.
func Decode(r io.Reader) (*Graph, error) {
	var gj graphJSON
	if err := json.NewDecoder(r).Decode(&gj); err != nil {
		return nil, fmt.Errorf("graph: decode: %w", err)
	}
	if gj.Version != wireVersion {
		return nil, fmt.Errorf("graph: decode: unsupported graph version %d (want %d)", gj.Version, wireVersion)
	}
	g := New()
	n := len(gj.Nodes)
	inRange := func(id int) bool { return id >= 0 && id < n }
	for i, nj := range gj.Nodes {
		kind, ok := ParseOpKind(nj.Op)
		if !ok {
			return nil, fmt.Errorf("graph: decode: node %d: unknown op %q", i, nj.Op)
		}
		bd := -1
		if nj.BatchDim != nil {
			bd = *nj.BatchDim
		}
		node := Node{
			ID:             NodeID(i),
			Kind:           kind,
			Shape:          tensor.Shape(nj.Shape),
			Name:           nj.Name,
			ScaleFactor:    nj.Scale,
			FlopsPerSample: nj.FlopsPerSample,
			BatchDim:       bd,
		}
		for _, d := range node.Shape {
			if d < 0 {
				return nil, fmt.Errorf("graph: decode: node %d has negative dimension %d", i, d)
			}
		}
		if node.BatchDim < -1 {
			return nil, fmt.Errorf("graph: decode: node %d has batch_dim %d", i, node.BatchDim)
		}
		for _, u := range nj.Inputs {
			if !inRange(u) {
				return nil, fmt.Errorf("graph: decode: node %d references input %d of %d nodes", i, u, n)
			}
			node.Inputs = append(node.Inputs, NodeID(u))
		}
		g.Nodes = append(g.Nodes, node)
	}
	loss := -1
	if gj.Loss != nil {
		loss = *gj.Loss
	}
	if loss != -1 && !inRange(loss) {
		return nil, fmt.Errorf("graph: decode: loss %d of %d nodes", loss, n)
	}
	g.Loss = NodeID(loss)
	for _, p := range gj.Params {
		if !inRange(p) {
			return nil, fmt.Errorf("graph: decode: parameter %d of %d nodes", p, n)
		}
		g.Params = append(g.Params, NodeID(p))
	}
	for _, pr := range gj.Grads {
		if !inRange(pr[0]) || !inRange(pr[1]) {
			return nil, fmt.Errorf("graph: decode: gradient pair %v of %d nodes", pr, n)
		}
		g.Grads[NodeID(pr[0])] = NodeID(pr[1])
	}
	if gj.ForwardCount < 0 || gj.ForwardCount > n {
		return nil, fmt.Errorf("graph: decode: forward_count %d of %d nodes", gj.ForwardCount, n)
	}
	g.ForwardCount = gj.ForwardCount
	for _, pr := range gj.PrimalOf {
		if !inRange(pr[0]) || !inRange(pr[1]) {
			return nil, fmt.Errorf("graph: decode: primal pair %v of %d nodes", pr, n)
		}
		g.PrimalOf[NodeID(pr[0])] = NodeID(pr[1])
	}
	g.SegmentOf = gj.SegmentOf
	for _, s := range g.SegmentOf {
		if s < 0 {
			return nil, fmt.Errorf("graph: decode: negative segment %d", s)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: decode: %w", err)
	}
	// Declared shapes must agree with what each op would actually produce:
	// synthesis rules and the numeric runtime trust them, and an
	// inconsistent shape (e.g. a scalar "softmax" of a matrix) panics deep
	// in the pipeline. Kinds without an inference rule (leaves, grad kinds
	// with explicit shapes) keep their declared shape.
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if !inferableKinds[n.Kind] {
			continue
		}
		want, ok := g.tryInferShape(n)
		if !ok {
			return nil, fmt.Errorf("graph: decode: node %d (%v) has inconsistent input shapes", i, n.Kind)
		}
		if !n.Shape.Equal(want) {
			return nil, fmt.Errorf("graph: decode: node %d (%v) declares shape %v, op produces %v", i, n.Kind, n.Shape, want)
		}
	}
	return g, nil
}

// inferableKinds are the op kinds inferShape has a rule for; for these a
// wire graph's declared shape is checked against the inferred one, and an
// inference panic means the inputs themselves are inconsistent.
var inferableKinds = map[OpKind]bool{
	MatMul: true, Transpose: true, Add: true, Mul: true, Scale: true,
	ReLU: true, Sigmoid: true, GeLU: true, Softmax: true, Sum: true,
	ReLUGrad: true, SigmoidGrad: true, GeLUGrad: true, SoftmaxGrad: true,
	Dispatch: true, ExpertMM: true, Combine: true,
}

// tryInferShape runs inferShape, converting its panics into ok=false.
func (g *Graph) tryInferShape(n *Node) (s tensor.Shape, ok bool) {
	defer func() {
		if recover() != nil {
			s, ok = nil, false
		}
	}()
	return g.inferShape(n), true
}
