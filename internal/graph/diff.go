// Structural graph diffing for incremental synthesis: align two graphs by
// content-defined segments of position-independent node signatures, report
// the changed subgraph and a normalized edit size, and map node ids between
// the aligned regions so a cached plan's decisions can be transplanted onto
// a near-miss graph.
//
// The alignment deliberately works on *signatures*, not node ids: a
// signature hashes everything the synthesizer sees about a node (kind,
// shape, numeric attributes, and its inputs as relative offsets) but nothing
// positional, so inserting or widening one layer perturbs only the
// signatures of the touched nodes and their immediate consumers — the rest
// of the sequence still matches and maps id-to-id.

package graph

import "hap/internal/fingerprint"

// Chunking parameters for the content-defined segmentation of the signature
// sequence (rsync-style: a boundary falls after any node whose signature is
// ≡ 0 mod chunkModulus, clamped to [chunkMin, chunkMax] nodes). Expected
// chunk length ≈ chunkModulus, so a one-node edit dirties one or two chunks
// and every other chunk hash — and therefore the similarity index and the
// diff alignment — is untouched.
const (
	chunkModulus = 4
	chunkMin     = 2
	chunkMax     = 16
)

// NodeSignature returns a position-independent structural hash of one node:
// its kind, shape, numeric attributes, input arity with relative input
// offsets (id − input), and its loss/parameter/gradient role. Two nodes with
// equal signatures admit the same synthesis decisions when their (relative)
// neighborhoods match. Node ids, names, and the segment assignment do not
// participate — ids shift under insertion and segments are a planning
// overlay, not structure.
func NodeSignature(g *Graph, id NodeID) uint64 {
	n := g.Node(id)
	h := fingerprint.New()
	h.Int(int(n.Kind))
	h.Int(len(n.Inputs))
	for _, u := range n.Inputs {
		h.Int(int(id) - int(u))
	}
	h.Int(len(n.Shape))
	for _, d := range n.Shape {
		h.Int(d)
	}
	h.Float(n.ScaleFactor)
	h.Float(n.FlopsPerSample)
	h.Int(n.BatchDim)
	if g.Loss == id {
		h.Int(1)
	} else {
		h.Int(0)
	}
	role := 0
	for _, p := range g.Params {
		if p == id {
			role = 1
			break
		}
	}
	h.Int(role)
	// A gradient node's signature carries which parameter it differentiates,
	// as a relative offset — the output set is part of what a plan must
	// materialize.
	gradOf := 0
	for p, gn := range g.Grads {
		if gn == id {
			if off := int(id) - int(p); gradOf == 0 || off < gradOf {
				gradOf = off
			}
		}
	}
	h.Int(gradOf)
	return h.Sum64()
}

// Signatures returns the per-node signature sequence of g.
func Signatures(g *Graph) []uint64 {
	sigs := make([]uint64, g.NumNodes())
	for i := range sigs {
		sigs[i] = NodeSignature(g, NodeID(i))
	}
	return sigs
}

// chunk is one content-defined segment of the signature sequence.
type chunk struct {
	start int    // first node id in the chunk
	n     int    // node count
	hash  uint64 // order-sensitive hash of the chunk's signatures
}

// chunkSignatures cuts the signature sequence into content-defined chunks.
func chunkSignatures(sigs []uint64) []chunk {
	var out []chunk
	start := 0
	h := fingerprint.New()
	flush := func(end int) {
		out = append(out, chunk{start: start, n: end - start, hash: h.Sum64()})
		start = end
		h = fingerprint.New()
	}
	for i, sig := range sigs {
		h.Int(int(uint32(sig)))
		h.Int(int(sig >> 32))
		n := i - start + 1
		if n >= chunkMax || (n >= chunkMin && sig%chunkModulus == 0) {
			flush(i + 1)
		}
	}
	if start < len(sigs) {
		flush(len(sigs))
	}
	return out
}

// SubFingerprints returns the stable segment-level sub-hashes of g: one hash
// per content-defined chunk of the node-signature sequence. Unlike
// Fingerprint's single opaque digest, an edit localized to one region changes
// only the covering chunk hashes, so two near-miss graphs share most of
// their sub-fingerprints — the property the serve similarity index and the
// structural diff both build on.
func SubFingerprints(g *Graph) []uint64 {
	chunks := chunkSignatures(Signatures(g))
	out := make([]uint64, len(chunks))
	for i, c := range chunks {
		out[i] = c.hash
	}
	return out
}

// Span is a half-open range [Start, End) of node ids.
type Span struct {
	Start NodeID
	End   NodeID
}

// Match is one aligned run: Len nodes starting at AStart in graph A map
// one-to-one onto the Len nodes starting at BStart in graph B.
type Match struct {
	AStart NodeID
	BStart NodeID
	Len    int
}

// Diff is the structural alignment of two graphs. Matches lists the aligned
// runs in ascending order on both sides; everything outside a match is the
// changed subgraph.
type Diff struct {
	Matches []Match
	// EditA and EditB count the unmatched nodes on each side.
	EditA, EditB int
	// Norm is the normalized edit size: max(EditA, EditB) over the larger
	// graph's node count. 0 means structurally identical, 1 means no
	// alignment at all. Two empty graphs diff to 0.
	Norm float64

	lenA, lenB int
}

// StructuralDiff aligns graphs a and b. Both signature sequences are cut
// into content-defined chunks and the longest common subsequence of chunk
// hashes (order-preserving, so the alignment respects topological order)
// becomes the matched runs; the runs are then refined to node precision by
// extending them into the gaps wherever raw node signatures still agree,
// and adjacent runs are coalesced.
func StructuralDiff(a, b *Graph) *Diff {
	sa, sb := Signatures(a), Signatures(b)
	ca := chunkSignatures(sa)
	cb := chunkSignatures(sb)
	d := &Diff{lenA: a.NumNodes(), lenB: b.NumNodes()}

	// Longest common subsequence over chunk (hash, length) pairs. Chunk
	// counts are node count / ~chunkModulus, so the quadratic DP is cheap
	// even for the largest benchmark graphs.
	eq := func(x, y chunk) bool { return x.hash == y.hash && x.n == y.n }
	lcs := make([][]int32, len(ca)+1)
	for i := range lcs {
		lcs[i] = make([]int32, len(cb)+1)
	}
	for i := len(ca) - 1; i >= 0; i-- {
		for j := len(cb) - 1; j >= 0; j-- {
			if eq(ca[i], cb[j]) {
				lcs[i][j] = lcs[i+1][j+1] + int32(ca[i].n)
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var rough []Match
	for i, j := 0, 0; i < len(ca) && j < len(cb); {
		switch {
		case eq(ca[i], cb[j]):
			rough = append(rough, Match{AStart: NodeID(ca[i].start), BStart: NodeID(cb[j].start), Len: ca[i].n})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			i++
		default:
			j++
		}
	}
	d.Matches = refineMatches(rough, sa, sb)
	matched := 0
	for _, m := range d.Matches {
		matched += m.Len
	}
	d.EditA = d.lenA - matched
	d.EditB = d.lenB - matched
	switch {
	case d.lenA == 0 && d.lenB == 0:
		d.Norm = 0
	default:
		edit := d.EditA
		if d.EditB > edit {
			edit = d.EditB
		}
		size := d.lenA
		if d.lenB > size {
			size = d.lenB
		}
		d.Norm = float64(edit) / float64(size)
	}
	return d
}

// refineMatches grows the chunk-level matched runs to node precision: each
// run extends into its neighboring gaps while the raw node signatures still
// agree, and unanchored common prefixes/suffixes of the whole sequences are
// recovered. Runs stay strictly increasing and non-overlapping on both
// sides; contiguous same-offset runs are coalesced.
func refineMatches(rough []Match, sa, sb []uint64) []Match {
	la, lb := NodeID(len(sa)), NodeID(len(sb))
	ms := append([]Match(nil), rough...)

	// Extend every run backward, bounded by the previous run's end (or 0).
	for i := range ms {
		aLo, bLo := NodeID(0), NodeID(0)
		if i > 0 {
			aLo = ms[i-1].AStart + NodeID(ms[i-1].Len)
			bLo = ms[i-1].BStart + NodeID(ms[i-1].Len)
		}
		for ms[i].AStart > aLo && ms[i].BStart > bLo && sa[ms[i].AStart-1] == sb[ms[i].BStart-1] {
			ms[i].AStart--
			ms[i].BStart--
			ms[i].Len++
		}
	}
	// Extend every run forward, bounded by the next run's start (or the end).
	for i := range ms {
		aHi, bHi := la, lb
		if i+1 < len(ms) {
			aHi, bHi = ms[i+1].AStart, ms[i+1].BStart
		}
		for ms[i].AStart+NodeID(ms[i].Len) < aHi && ms[i].BStart+NodeID(ms[i].Len) < bHi &&
			sa[ms[i].AStart+NodeID(ms[i].Len)] == sb[ms[i].BStart+NodeID(ms[i].Len)] {
			ms[i].Len++
		}
	}
	// Recover an unanchored common prefix the chunk LCS missed.
	aHi, bHi := la, lb
	if len(ms) > 0 {
		aHi, bHi = ms[0].AStart, ms[0].BStart
	}
	pre := Match{}
	for NodeID(pre.Len) < aHi && NodeID(pre.Len) < bHi && sa[pre.Len] == sb[pre.Len] {
		pre.Len++
	}
	if pre.Len > 0 {
		ms = append([]Match{pre}, ms...)
	}
	// And an unanchored common suffix.
	aLo, bLo := NodeID(0), NodeID(0)
	if len(ms) > 0 {
		aLo = ms[len(ms)-1].AStart + NodeID(ms[len(ms)-1].Len)
		bLo = ms[len(ms)-1].BStart + NodeID(ms[len(ms)-1].Len)
	}
	suf := 0
	for la-NodeID(suf) > aLo && lb-NodeID(suf) > bLo && sa[la-NodeID(suf)-1] == sb[lb-NodeID(suf)-1] {
		suf++
	}
	if suf > 0 {
		ms = append(ms, Match{AStart: la - NodeID(suf), BStart: lb - NodeID(suf), Len: suf})
	}
	// Coalesce contiguous same-offset runs.
	out := ms[:0]
	for _, m := range ms {
		if k := len(out) - 1; k >= 0 &&
			out[k].AStart+NodeID(out[k].Len) == m.AStart &&
			out[k].BStart+NodeID(out[k].Len) == m.BStart {
			out[k].Len += m.Len
		} else {
			out = append(out, m)
		}
	}
	return out
}

// MapAB maps a node id of graph A into graph B, reporting false when the
// node lies in the changed subgraph.
func (d *Diff) MapAB(a NodeID) (NodeID, bool) {
	for _, m := range d.Matches {
		if a >= m.AStart && a < m.AStart+NodeID(m.Len) {
			return m.BStart + (a - m.AStart), true
		}
	}
	return 0, false
}

// MapBA maps a node id of graph B into graph A, reporting false when the
// node lies in the changed subgraph.
func (d *Diff) MapBA(b NodeID) (NodeID, bool) {
	for _, m := range d.Matches {
		if b >= m.BStart && b < m.BStart+NodeID(m.Len) {
			return m.AStart + (b - m.BStart), true
		}
	}
	return 0, false
}

// ChangedB returns the changed subgraph on the B side: the spans of B whose
// nodes have no aligned counterpart in A, in ascending order.
func (d *Diff) ChangedB() []Span {
	var out []Span
	next := NodeID(0)
	for _, m := range d.Matches {
		if m.BStart > next {
			out = append(out, Span{Start: next, End: m.BStart})
		}
		next = m.BStart + NodeID(m.Len)
	}
	if next < NodeID(d.lenB) {
		out = append(out, Span{Start: next, End: NodeID(d.lenB)})
	}
	return out
}

// SharedSubFingerprints counts how many sub-fingerprints of a (with
// multiplicity) also appear in b — the donor-selection similarity score the
// serve index uses. Both arguments are as returned by SubFingerprints.
func SharedSubFingerprints(a, b []uint64) int {
	counts := make(map[uint64]int, len(b))
	for _, h := range b {
		counts[h]++
	}
	shared := 0
	for _, h := range a {
		if counts[h] > 0 {
			counts[h]--
			shared++
		}
	}
	return shared
}
