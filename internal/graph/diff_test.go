package graph

import "testing"

// mlp builds a small MLP-shaped forward graph: x · w1 · w2 · … with ReLUs,
// summed into a loss.
func mlp(widths ...int) *Graph {
	g := New()
	h := g.AddPlaceholder("x", 0, 8, widths[0])
	for i := 1; i < len(widths); i++ {
		w := g.AddParameter("w", widths[i-1], widths[i])
		h = g.AddOp(ReLU, g.AddOp(MatMul, h, w))
	}
	g.SetLoss(g.AddOp(Sum, h))
	return g
}

func TestDiffIdenticalGraphs(t *testing.T) {
	a := mlp(16, 32, 32, 8)
	b := mlp(16, 32, 32, 8)
	d := StructuralDiff(a, b)
	if d.Norm != 0 || d.EditA != 0 || d.EditB != 0 {
		t.Fatalf("identical graphs: Norm=%v EditA=%d EditB=%d, want all zero", d.Norm, d.EditA, d.EditB)
	}
	for i := 0; i < a.NumNodes(); i++ {
		if m, ok := d.MapAB(NodeID(i)); !ok || m != NodeID(i) {
			t.Fatalf("identical graphs: MapAB(%d) = %d,%v, want identity", i, m, ok)
		}
	}
	if spans := d.ChangedB(); len(spans) != 0 {
		t.Fatalf("identical graphs: ChangedB = %v, want empty", spans)
	}
}

func TestDiffEmptyGraph(t *testing.T) {
	empty := New()
	full := mlp(16, 32, 8)
	if d := StructuralDiff(empty, empty); d.Norm != 0 {
		t.Fatalf("empty vs empty: Norm=%v, want 0", d.Norm)
	}
	d := StructuralDiff(empty, full)
	if d.Norm != 1 {
		t.Fatalf("empty vs full: Norm=%v, want 1", d.Norm)
	}
	if len(d.Matches) != 0 || d.EditB != full.NumNodes() {
		t.Fatalf("empty vs full: Matches=%v EditB=%d, want none/%d", d.Matches, d.EditB, full.NumNodes())
	}
	if spans := d.ChangedB(); len(spans) != 1 || spans[0].Start != 0 || int(spans[0].End) != full.NumNodes() {
		t.Fatalf("empty vs full: ChangedB=%v, want one span covering the graph", spans)
	}
	// And the transpose: the edit size is symmetric.
	if d := StructuralDiff(full, empty); d.Norm != 1 || d.EditA != full.NumNodes() {
		t.Fatalf("full vs empty: Norm=%v EditA=%d", d.Norm, d.EditA)
	}
}

func TestDiffDisjointGraphs(t *testing.T) {
	a := mlp(16, 32, 32, 8)
	// Entirely different op kinds: no node signature survives. (Different
	// *widths* are not enough — a scalar Sum loss hashes identically in any
	// MLP, and the refinement pass would rightly align it.)
	b := New()
	h := b.AddOnes(3, 3)
	for i := 0; i < a.NumNodes(); i++ {
		h = b.AddOp(Mul, h, h)
	}
	d := StructuralDiff(a, b)
	if d.Norm != 1 {
		t.Fatalf("disjoint graphs: Norm=%v, want 1", d.Norm)
	}
	if len(d.Matches) != 0 {
		t.Fatalf("disjoint graphs: Matches=%v, want none", d.Matches)
	}
	for i := 0; i < b.NumNodes(); i++ {
		if _, ok := d.MapBA(NodeID(i)); ok {
			t.Fatalf("disjoint graphs: MapBA(%d) unexpectedly mapped", i)
		}
	}
}

// TestDiffCrossesSegmentBoundary edits a region spanning a segment boundary
// and checks that the alignment (which ignores the segment overlay) still
// recovers the unchanged prefix and suffix, and that the changed span covers
// nodes from both segments.
func TestDiffCrossesSegmentBoundary(t *testing.T) {
	segment := func(g *Graph) {
		// Two segments split at the graph midpoint.
		g.SegmentOf = make([]int, g.NumNodes())
		for i := g.NumNodes() / 2; i < g.NumNodes(); i++ {
			g.SegmentOf[i] = 1
		}
	}
	a := mlp(16, 32, 32, 32, 32, 8)
	b := mlp(16, 32, 32, 48, 32, 8) // widen the layer straddling the midpoint
	segment(a)
	segment(b)
	d := StructuralDiff(a, b)
	if d.Norm <= 0 || d.Norm >= 1 {
		t.Fatalf("boundary-crossing edit: Norm=%v, want strictly between 0 and 1", d.Norm)
	}
	spans := d.ChangedB()
	if len(spans) == 0 {
		t.Fatalf("boundary-crossing edit: no changed spans")
	}
	seg := map[int]bool{}
	for _, sp := range spans {
		for i := sp.Start; i < sp.End; i++ {
			seg[b.SegmentOf[i]] = true
		}
	}
	if !seg[0] || !seg[1] {
		t.Fatalf("changed spans %v touch segments %v, want both 0 and 1", spans, seg)
	}
	// The prefix before the edit still maps identically.
	if m, ok := d.MapBA(0); !ok || m != 0 {
		t.Fatalf("MapBA(0) = %d,%v, want identity", m, ok)
	}
}

// TestDiffSharedSubFingerprints checks the similarity primitive: a one-layer
// edit leaves most chunk hashes shared; a disjoint graph shares none.
func TestDiffSharedSubFingerprints(t *testing.T) {
	a := mlp(16, 32, 32, 32, 32, 32, 32, 8)
	b := mlp(16, 32, 32, 48, 32, 32, 32, 8)
	fa, fb := SubFingerprints(a), SubFingerprints(b)
	shared := SharedSubFingerprints(fa, fb)
	if shared == 0 {
		t.Fatalf("one-layer edit shares no sub-fingerprints (|a|=%d |b|=%d)", len(fa), len(fb))
	}
	if shared == len(fa) && len(fa) == len(fb) {
		t.Fatalf("one-layer edit shares every sub-fingerprint — chunks not content-sensitive")
	}
	c := mlp(17, 33, 35, 9)
	if got := SharedSubFingerprints(SubFingerprints(c), fa); got != 0 {
		t.Fatalf("disjoint graphs share %d sub-fingerprints, want 0", got)
	}
}
