package graph

import (
	"strings"
	"testing"
)

// buildMLP constructs loss = sum(relu(x·w1)·w2), the running example family
// used throughout the paper.
func buildMLP(t *testing.T) *Graph {
	t.Helper()
	g := New()
	x := g.AddPlaceholder("x", 0, 8, 4)
	w1 := g.AddParameter("w1", 4, 6)
	w2 := g.AddParameter("w2", 6, 3)
	h := g.AddOp(MatMul, x, w1)
	a := g.AddOp(ReLU, h)
	y := g.AddOp(MatMul, a, w2)
	g.SetLoss(g.AddOp(Sum, y))
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

func TestShapeInference(t *testing.T) {
	g := buildMLP(t)
	want := map[string][]int{
		"e3": {8, 6}, // x·w1
		"e4": {8, 6}, // relu
		"e5": {8, 3}, // ·w2
		"e6": {},     // sum
	}
	for i := 3; i <= 6; i++ {
		got := g.Node(NodeID(i)).Shape
		w := want[strings.Join([]string{"e", string(rune('0' + i))}, "")]
		if len(got) != len(w) {
			t.Errorf("node %d shape %v, want %v", i, got, w)
			continue
		}
		for j := range w {
			if got[j] != w[j] {
				t.Errorf("node %d shape %v, want %v", i, got, w)
			}
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	g := New()
	x := g.AddPlaceholder("x", 0, 8, 4)
	w := g.AddParameter("w", 5, 6)
	defer func() {
		if recover() == nil {
			t.Error("matmul with mismatched shapes did not panic")
		}
	}()
	g.AddOp(MatMul, x, w)
}

func TestBatchDimPropagation(t *testing.T) {
	g := New()
	x := g.AddPlaceholder("x", 0, 8, 4)
	w := g.AddParameter("w", 4, 6)
	h := g.AddOp(MatMul, x, w)
	if got := g.Node(h).BatchDim; got != 0 {
		t.Errorf("matmul batch dim = %d, want 0", got)
	}
	ht := g.AddOp(Transpose, h)
	if got := g.Node(ht).BatchDim; got != 1 {
		t.Errorf("transpose batch dim = %d, want 1", got)
	}
	r := g.AddOp(ReLU, h)
	if got := g.Node(r).BatchDim; got != 0 {
		t.Errorf("relu batch dim = %d, want 0", got)
	}
	if got := g.Node(w).BatchDim; got != -1 {
		t.Errorf("parameter batch dim = %d, want -1", got)
	}
}

func TestFlops(t *testing.T) {
	g := buildMLP(t)
	// matmul (8,4)·(4,6): 2*8*4*6 = 384
	if got := g.Flops(3); got != 384 {
		t.Errorf("matmul flops = %v, want 384", got)
	}
	// relu on (8,6): 48
	if got := g.Flops(4); got != 48 {
		t.Errorf("relu flops = %v, want 48", got)
	}
	// sum over (8,3): 24
	if got := g.Flops(6); got != 24 {
		t.Errorf("sum flops = %v, want 24", got)
	}
	if g.TotalFlops() <= 0 {
		t.Error("TotalFlops should be positive")
	}
}

func TestParameterAccounting(t *testing.T) {
	g := buildMLP(t)
	if got := g.ParameterCount(); got != 4*6+6*3 {
		t.Errorf("ParameterCount = %d, want 42", got)
	}
	if got := g.ParameterBytes(); got != 42*BytesPerElement {
		t.Errorf("ParameterBytes = %v", got)
	}
}

func TestConsumers(t *testing.T) {
	g := buildMLP(t)
	cons := g.Consumers()
	if len(cons[0]) != 1 || cons[0][0] != 3 {
		t.Errorf("consumers of x = %v, want [3]", cons[0])
	}
	if len(cons[5]) != 1 || cons[5][0] != 6 {
		t.Errorf("consumers of y = %v, want [6]", cons[5])
	}
}

func TestValidateCatchesTopologyViolation(t *testing.T) {
	g := buildMLP(t)
	g.Nodes[2].Inputs = []NodeID{5} // parameter referencing later node
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted forward reference")
	}
}

func TestValidateCatchesArity(t *testing.T) {
	g := buildMLP(t)
	g.Nodes[3].Inputs = []NodeID{0}
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted matmul with 1 input")
	}
}

func TestSetLossRequiresScalar(t *testing.T) {
	g := New()
	x := g.AddPlaceholder("x", 0, 2, 2)
	defer func() {
		if recover() == nil {
			t.Error("SetLoss on non-scalar did not panic")
		}
	}()
	g.SetLoss(x)
}

func TestConvNode(t *testing.T) {
	g := New()
	x := g.AddPlaceholder("x", 0, 32, 3*224*224)
	w := g.AddParameter("w", 9*3, 64)
	c := g.AddConv(x, w, 64*224*224, 2*224*224*9*3*64)
	n := g.Node(c)
	if n.Shape[0] != 32 || n.Shape[1] != 64*224*224 {
		t.Errorf("conv shape = %v", n.Shape)
	}
	wantFlops := 2.0 * 224 * 224 * 9 * 3 * 64 * 32
	if got := g.Flops(c); got != wantFlops {
		t.Errorf("conv flops = %g, want %g", got, wantFlops)
	}
	if n.BatchDim != 0 {
		t.Errorf("conv batch dim = %d", n.BatchDim)
	}
}

func TestMoEShapes(t *testing.T) {
	g := New()
	x := g.AddPlaceholder("x", 0, 64, 128) // 64 tokens, hidden 128
	wg := g.AddParameter("wg", 128, 8)     // 8 experts
	logits := g.AddOp(MatMul, x, wg)
	gates := g.AddOp(Softmax, logits)
	d := g.AddOp(Dispatch, x, gates)
	if s := g.Node(d).Shape; s[0] != 8 || s[1] != 8 || s[2] != 128 {
		t.Fatalf("dispatch shape = %v, want [8 8 128]", s)
	}
	w1 := g.AddParameter("w1", 8, 128, 512)
	e := g.AddOp(ExpertMM, d, w1)
	if s := g.Node(e).Shape; s[0] != 8 || s[1] != 8 || s[2] != 512 {
		t.Fatalf("expert_mm shape = %v, want [8 8 512]", s)
	}
	w2 := g.AddParameter("w2", 8, 512, 128)
	e2 := g.AddOp(ExpertMM, e, w2)
	y := g.AddOp(Combine, e2, gates)
	if s := g.Node(y).Shape; s[0] != 64 || s[1] != 128 {
		t.Fatalf("combine shape = %v, want [64 128]", s)
	}
	// ExpertMM flops: 2 * E*C*H*F = 2*8*8*128*512
	if got, want := g.Flops(e), 2.0*8*8*128*512; got != want {
		t.Errorf("expert_mm flops = %g, want %g", got, want)
	}
}

func TestStringRendering(t *testing.T) {
	g := buildMLP(t)
	s := g.String()
	for _, want := range []string{"e0 = placeholder()", "matmul(e0, e1)", "# loss"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestSegments(t *testing.T) {
	g := buildMLP(t)
	if g.NumSegments() != 1 {
		t.Errorf("unsegmented graph NumSegments = %d", g.NumSegments())
	}
	g.SegmentOf = []int{0, 0, 0, 0, 1, 1, 1}
	if g.NumSegments() != 2 {
		t.Errorf("NumSegments = %d, want 2", g.NumSegments())
	}
	if g.Segment(5) != 1 || g.Segment(2) != 0 {
		t.Error("Segment lookup wrong")
	}
	g.SegmentOf = []int{0}
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted bad SegmentOf length")
	}
}
