// Package theory derives the background theory T of a single-device program
// (Sec. 4.2): the properties of distributed tensors and the Hoare triples
// that the A* synthesizer searches over.
//
// A property e|I relates a distributed tensor to a reference tensor e of the
// single-device graph: executing instruction I on the distributed instances
// yields e on every device. Three property kinds cover the instruction set:
//
//	e | Identity      — every device holds e in full
//	e | AllGather(d)  — devices hold shards of e along dim d
//	e | AllReduce     — devices hold replicas that sum to e
//
// Triples are generated per graph node from per-op rules encoding the
// mathematical characteristics of the ops (Fig. 9), including the replicated
// rule that enables sufficient factor broadcasting (Sec. 4.4).
//
// Search-time optimization 1 (Sec. 4.5) is realized structurally: leaf
// tensors (Placeholder/Parameter/Ones) have no triples of their own; each
// consumer triple carries the leaf placements it needs, and the synthesizer
// emits the fused leaf-loader instruction together with the consumer.
package theory

import (
	"fmt"
	"sync/atomic"

	"hap/internal/dist"
	"hap/internal/graph"
)

// builds counts New calls process-wide. Theory construction is the step
// batch planners share across clusters; the counter lets tests assert the
// sharing actually happened (one build for a k-cluster batch).
var builds atomic.Uint64

// Builds returns the process-wide count of theories built so far.
func Builds() uint64 { return builds.Load() }

// PropKind is the relation between a distributed tensor and its reference.
type PropKind uint8

// Property kinds: the instruction I of e|I.
const (
	Identity PropKind = iota // e | Identity
	Gather                   // e | All-Gather(dim)
	Reduce                   // e | All-Reduce
)

// Property is one semantic fact about a distributed tensor.
type Property struct {
	Ref  graph.NodeID
	Kind PropKind
	Dim  int8 // sharding dimension for Gather
}

func (p Property) String() string {
	switch p.Kind {
	case Identity:
		return fmt.Sprintf("e%d|identity", p.Ref)
	case Gather:
		return fmt.Sprintf("e%d|all-gather(%d)", p.Ref, p.Dim)
	case Reduce:
		return fmt.Sprintf("e%d|all-reduce", p.Ref)
	}
	return fmt.Sprintf("e%d|?", p.Ref)
}

// Id, Shard and Pending are property constructors.
func Id(e graph.NodeID) Property           { return Property{Ref: e, Kind: Identity} }
func Shard(e graph.NodeID, d int) Property { return Property{Ref: e, Kind: Gather, Dim: int8(d)} }
func Pending(e graph.NodeID) Property      { return Property{Ref: e, Kind: Reduce} }

// Triple is a Hoare triple {Pre} Instr {Out} computing one graph node.
// Leaf-input requirements are split out into LeafPre so the synthesizer can
// fuse the leaf-loader instructions (optimization 1 of Sec. 4.5).
type Triple struct {
	Node    graph.NodeID
	Pre     []Property // requirements on non-leaf inputs
	LeafPre []Property // requirements on leaf inputs (Ref is the leaf)
	Out     Property   // the produced property (postcondition)
	// FlopsScaled reports whether per-device flops scale with the sharding
	// ratio (false for replicated execution, the SFB-enabling rules).
	FlopsScaled bool
	// instr is the materialized computation instruction, built once at rule
	// construction and shared (including its Inputs backing array) by every
	// search state; see Instr.
	instr dist.Instruction
}

// Instr materializes the computation instruction of the triple. For Expand
// (whose sharded variant produces a different local shape) the output shard
// dimension is recorded so the runtime can execute it.
//
// The instruction is built once per triple and returned by value: the Inputs
// backing array is shared across every state the synthesizer materializes
// from this triple (millions, on model-scale searches). Instruction inputs
// mirror the immutable graph and are never mutated downstream; consumers
// that rewrite programs in place work on dist.Program.Clone copies.
func (t *Triple) Instr(g *graph.Graph) dist.Instruction {
	return t.instr
}

func buildInstr(g *graph.Graph, t *Triple) dist.Instruction {
	n := g.Node(t.Node)
	in := dist.Instruction{
		Ref: t.Node, Op: n.Kind, Inputs: append([]graph.NodeID(nil), n.Inputs...),
		ShardDim: -1, FlopsScaled: t.FlopsScaled,
	}
	if n.Kind == graph.Expand && t.Out.Kind == Gather {
		in.ShardDim = int(t.Out.Dim)
	}
	return in
}

// LeafInstr materializes the fused leaf-loader instruction establishing
// prop, e.g. Placeholder-Shard(d) or Parameter().
func LeafInstr(g *graph.Graph, prop Property) dist.Instruction {
	n := g.Node(prop.Ref)
	in := dist.Instruction{Ref: prop.Ref, Op: n.Kind, ShardDim: -1}
	if prop.Kind == Gather {
		in.ShardDim = int(prop.Dim)
	}
	return in
}

// Theory is the background theory of one single-device graph.
type Theory struct {
	Graph *graph.Graph
	// ByNode lists the computation triples producing each node.
	ByNode [][]*Triple
	// Consumers mirrors graph.Consumers.
	Consumers [][]graph.NodeID
	// Required marks nodes that must be computed: ancestors of the loss and
	// of every parameter gradient.
	Required []bool
	// Outputs lists the required output tensors: the loss and all parameter
	// gradients (paired with their parameter for placement matching).
	Outputs []Output
	// Wanted marks properties that appear in some triple's precondition:
	// communication producing anything else cannot unblock a computation.
	Wanted map[Property]bool
	// wantedMask is the dense per-ref form of Wanted the synthesizer's hot
	// path queries through IsWanted: bit 0 = Identity, bit 1 = Reduce,
	// bit 2+d = Gather(d).
	wantedMask []uint32
}

// wantedBit returns the wantedMask bit of p, or 0 for an unencodable
// (absurdly high) shard dimension.
func wantedBit(p Property) uint32 {
	switch p.Kind {
	case Identity:
		return 1
	case Reduce:
		return 2
	default:
		if d := uint(p.Dim); d < 30 {
			return 1 << (2 + d)
		}
		return 0
	}
}

// IsWanted reports whether p appears in some triple's precondition, via a
// dense table lookup (the map form is kept for enumeration and debugging).
func (t *Theory) IsWanted(p Property) bool {
	if int(p.Ref) >= len(t.wantedMask) {
		return t.Wanted[p]
	}
	b := wantedBit(p)
	if b == 0 {
		return t.Wanted[p]
	}
	return t.wantedMask[p.Ref]&b != 0
}

// Output is a tensor the distributed program must materialize acceptably.
type Output struct {
	Ref graph.NodeID
	// Param is the parameter this gradient belongs to, or -1 for the loss.
	Param graph.NodeID
}

// IsLeaf reports whether a node is a leaf placed by fused loader
// instructions rather than computed.
func IsLeaf(k graph.OpKind) bool {
	return k == graph.Placeholder || k == graph.Parameter || k == graph.Ones
}

// New builds the background theory for a single-device graph by matching
// the per-op rules against every node.
func New(g *graph.Graph) *Theory {
	builds.Add(1)
	t := &Theory{
		Graph:     g,
		ByNode:    make([][]*Triple, g.NumNodes()),
		Consumers: g.Consumers(),
		Required:  make([]bool, g.NumNodes()),
	}

	// Required set: ancestors of loss and of all gradients.
	var mark func(graph.NodeID)
	mark = func(id graph.NodeID) {
		if t.Required[id] {
			return
		}
		t.Required[id] = true
		for _, in := range g.Node(id).Inputs {
			mark(in)
		}
	}
	if g.Loss >= 0 {
		mark(g.Loss)
		t.Outputs = append(t.Outputs, Output{Ref: g.Loss, Param: -1})
	}
	for _, p := range g.Params {
		if gp, ok := g.Grads[p]; ok {
			mark(gp)
			t.Outputs = append(t.Outputs, Output{Ref: gp, Param: p})
		}
	}

	t.Wanted = map[Property]bool{}
	t.wantedMask = make([]uint32, g.NumNodes())
	for i := range g.Nodes {
		id := graph.NodeID(i)
		if !t.Required[id] || IsLeaf(g.Node(id).Kind) {
			continue
		}
		t.ByNode[id] = buildTriples(g, id)
		for _, tr := range t.ByNode[id] {
			for _, p := range tr.Pre {
				t.Wanted[p] = true
				t.wantedMask[p.Ref] |= wantedBit(p)
			}
		}
	}
	return t
}

// Filter returns a copy of the theory restricted to triples accepted by
// keep, with the Wanted index recomputed. Baseline systems (pure data
// parallelism, expert parallelism with replicated dense parameters, …) are
// expressed as filtered theories searched by the same synthesizer.
func (t *Theory) Filter(keep func(*Triple) bool) *Theory {
	nt := &Theory{
		Graph:      t.Graph,
		ByNode:     make([][]*Triple, len(t.ByNode)),
		Consumers:  t.Consumers,
		Required:   t.Required,
		Outputs:    t.Outputs,
		Wanted:     map[Property]bool{},
		wantedMask: make([]uint32, len(t.wantedMask)),
	}
	for id, triples := range t.ByNode {
		for _, tr := range triples {
			if !keep(tr) {
				continue
			}
			nt.ByNode[id] = append(nt.ByNode[id], tr)
			for _, p := range tr.Pre {
				nt.Wanted[p] = true
				nt.wantedMask[p.Ref] |= wantedBit(p)
			}
		}
	}
	return nt
}

// addRule appends a triple after verifying every leaf requirement is
// satisfiable (a Placeholder can only be sharded on its batch dimension).
func addRule(g *graph.Graph, out *[]*Triple, node graph.NodeID, inProps []Property, outProp Property, scaled bool) {
	tr := &Triple{Node: node, Out: outProp, FlopsScaled: scaled}
	for _, p := range inProps {
		n := g.Node(p.Ref)
		if p.Kind == Gather && (int(p.Dim) >= len(n.Shape) || n.Shape[p.Dim] < 1) {
			return // unshardable dimension
		}
		if IsLeaf(n.Kind) {
			if p.Kind == Reduce {
				return // leaves cannot be pending-reduce
			}
			if p.Kind == Gather && n.Kind == graph.Placeholder && int(p.Dim) != n.BatchDim {
				return // input data arrives batch-organized only
			}
			tr.LeafPre = append(tr.LeafPre, p)
		} else {
			tr.Pre = append(tr.Pre, p)
		}
	}
	tr.instr = buildInstr(g, tr)
	*out = append(*out, tr)
}

// buildTriples encodes the per-op rules. in(i) is the i-th input node.
func buildTriples(g *graph.Graph, id graph.NodeID) []*Triple {
	n := g.Node(id)
	in := func(i int) graph.NodeID { return n.Inputs[i] }
	var out []*Triple
	add := func(inProps []Property, outProp Property, scaled bool) {
		addRule(g, &out, id, inProps, outProp, scaled)
	}

	// elementwise emits the shard-along-any-dim rules plus the replicated
	// rule for an op whose output dims map 1:1 to all inputs' dims.
	elementwise := func(dims []int, withReduce bool) {
		for _, d := range dims {
			props := make([]Property, len(n.Inputs))
			for i := range props {
				props[i] = Shard(in(i), d)
			}
			add(props, Shard(id, d), true)
		}
		idProps := make([]Property, len(n.Inputs))
		for i := range idProps {
			idProps[i] = Id(in(i))
		}
		add(idProps, Id(id), false)
		if withReduce {
			rProps := make([]Property, len(n.Inputs))
			for i := range rProps {
				rProps[i] = Pending(in(i))
			}
			add(rProps, Pending(id), false)
		}
	}
	allDims := func() []int {
		ds := make([]int, len(n.Shape))
		for i := range ds {
			ds[i] = i
		}
		return ds
	}

	switch n.Kind {
	case graph.Expand:
		// Scalar seed broadcast: replicated or directly sharded.
		add([]Property{Id(in(0))}, Id(id), false)
		for d := range n.Shape {
			add([]Property{Id(in(0))}, Shard(id, d), true)
		}
	case graph.MatMul:
		a, b := in(0), in(1)
		add([]Property{Shard(a, 0), Id(b)}, Shard(id, 0), true)      // data parallel
		add([]Property{Id(a), Shard(b, 1)}, Shard(id, 1), true)      // column parallel
		add([]Property{Shard(a, 1), Shard(b, 0)}, Pending(id), true) // reduction parallel
		add([]Property{Id(a), Id(b)}, Id(id), false)                 // replicated (SFB)
	case graph.Transpose:
		add([]Property{Shard(in(0), 0)}, Shard(id, 1), true)
		add([]Property{Shard(in(0), 1)}, Shard(id, 0), true)
		add([]Property{Id(in(0))}, Id(id), false)
		add([]Property{Pending(in(0))}, Pending(id), false)
	case graph.Add:
		elementwise(allDims(), true) // addition commutes with pending reduce
	case graph.Mul, graph.ReLUGrad, graph.SigmoidGrad, graph.GeLUGrad,
		graph.ReLU, graph.Sigmoid, graph.GeLU:
		elementwise(allDims(), false)
	case graph.Softmax, graph.SoftmaxGrad:
		// Normalization along the last dim forbids sharding it.
		elementwise(allDims()[:len(n.Shape)-1], false)
	case graph.Scale:
		for d := range g.Node(in(0)).Shape {
			add([]Property{Shard(in(0), d)}, Shard(id, d), true)
		}
		add([]Property{Id(in(0))}, Id(id), false)
		add([]Property{Pending(in(0))}, Pending(id), false)
	case graph.Sum:
		for d := range g.Node(in(0)).Shape {
			add([]Property{Shard(in(0), d)}, Pending(id), true)
		}
		add([]Property{Pending(in(0))}, Pending(id), false)
		add([]Property{Id(in(0))}, Id(id), false)
	case graph.Embed:
		ids, table := in(0), in(1)
		add([]Property{Shard(ids, 0), Id(table)}, Shard(id, 0), true)
		add([]Property{Id(ids), Shard(table, 1)}, Shard(id, 1), true)
		add([]Property{Id(ids), Id(table)}, Id(id), false)
	case graph.EmbedGrad:
		ids, gy := in(0), in(1)
		add([]Property{Shard(ids, 0), Shard(gy, 0)}, Pending(id), true)
		add([]Property{Id(ids), Shard(gy, 1)}, Shard(id, 1), true)
		add([]Property{Id(ids), Id(gy)}, Id(id), false)
	case graph.Attention:
		add([]Property{Shard(in(0), 0)}, Shard(id, 0), true) // batch/sequence
		add([]Property{Shard(in(0), 1)}, Shard(id, 1), true) // head parallel
		add([]Property{Id(in(0))}, Id(id), false)
	case graph.AttentionGrad:
		qkv, gy := in(0), in(1)
		add([]Property{Shard(qkv, 0), Shard(gy, 0)}, Shard(id, 0), true)
		add([]Property{Shard(qkv, 1), Shard(gy, 1)}, Shard(id, 1), true)
		add([]Property{Id(qkv), Id(gy)}, Id(id), false)
	case graph.Conv:
		x, w := in(0), in(1)
		add([]Property{Shard(x, 0), Id(w)}, Shard(id, 0), true)
		add([]Property{Id(x), Id(w)}, Id(id), false)
	case graph.ConvGradX:
		w, gy := in(0), in(1)
		add([]Property{Id(w), Shard(gy, 0)}, Shard(id, 0), true)
		add([]Property{Id(w), Id(gy)}, Id(id), false)
	case graph.ConvGradW:
		x, gy := in(0), in(1)
		add([]Property{Shard(x, 0), Shard(gy, 0)}, Pending(id), true)
		add([]Property{Id(x), Id(gy)}, Id(id), false)
	case graph.Pool:
		add([]Property{Shard(in(0), 0)}, Shard(id, 0), true)
		add([]Property{Id(in(0))}, Id(id), false)
	case graph.PoolGrad:
		x, gy := in(0), in(1)
		add([]Property{Shard(x, 0), Shard(gy, 0)}, Shard(id, 0), true)
		add([]Property{Id(x), Id(gy)}, Id(id), false)
	case graph.Dispatch:
		x, gates := in(0), in(1)
		// Token-sharded dispatch produces a capacity (dim 1) shard.
		add([]Property{Shard(x, 0), Shard(gates, 0)}, Shard(id, 1), true)
		add([]Property{Id(x), Id(gates)}, Id(id), false)
	case graph.ExpertMM:
		d, w := in(0), in(1)
		add([]Property{Shard(d, 0), Shard(w, 0)}, Shard(id, 0), true) // expert parallel
		add([]Property{Shard(d, 1), Id(w)}, Shard(id, 1), true)       // capacity parallel
		add([]Property{Id(d), Id(w)}, Id(id), false)
	case graph.Combine:
		e, gates := in(0), in(1)
		add([]Property{Shard(e, 1), Shard(gates, 0)}, Shard(id, 0), true)
		add([]Property{Id(e), Id(gates)}, Id(id), false)
	case graph.DispatchGrad:
		add([]Property{Shard(in(0), 1)}, Shard(id, 0), true)
		add([]Property{Id(in(0))}, Id(id), false)
	case graph.ExpertMMGradX:
		w, gy := in(0), in(1)
		add([]Property{Shard(w, 0), Shard(gy, 0)}, Shard(id, 0), true)
		add([]Property{Id(w), Shard(gy, 1)}, Shard(id, 1), true)
		add([]Property{Id(w), Id(gy)}, Id(id), false)
	case graph.ExpertMMGradW:
		d, gy := in(0), in(1)
		add([]Property{Shard(d, 0), Shard(gy, 0)}, Shard(id, 0), true)
		add([]Property{Shard(d, 1), Shard(gy, 1)}, Pending(id), true)
		add([]Property{Id(d), Id(gy)}, Id(id), false)
	case graph.CombineGrad:
		gy, gates := in(0), in(1)
		add([]Property{Shard(gy, 0), Shard(gates, 0)}, Shard(id, 1), true)
		add([]Property{Id(gy), Id(gates)}, Id(id), false)
	case graph.CombineGradG:
		gy, e := in(0), in(1)
		add([]Property{Shard(gy, 0), Shard(e, 1)}, Shard(id, 0), true)
		add([]Property{Id(gy), Id(e)}, Id(id), false)
	default:
		panic(fmt.Sprintf("theory: no rules for op %v (node %d)", n.Kind, id))
	}
	return out
}

// Acceptable reports whether prop is a valid final form for the output:
// the loss must be All-Reduce-pending or replicated; a gradient must match
// its parameter's placement (the shard dim, or full when the parameter is
// replicated — a full gradient can always be applied to any shard).
func (o Output) Acceptable(prop Property, paramShardDim int) bool {
	if prop.Ref != o.Ref {
		return false
	}
	if o.Param < 0 { // the loss
		return prop.Kind == Reduce || prop.Kind == Identity
	}
	if prop.Kind == Identity {
		return true
	}
	return paramShardDim >= 0 && prop.Kind == Gather && int(prop.Dim) == paramShardDim
}
