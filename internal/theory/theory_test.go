package theory

import (
	"testing"

	"hap/internal/autodiff"
	"hap/internal/graph"
)

func matmulGraph() (*graph.Graph, graph.NodeID) {
	g := graph.New()
	x := g.AddPlaceholder("x", 0, 8, 4)
	w := g.AddParameter("w", 4, 6)
	y := g.AddOp(graph.MatMul, x, w)
	g.SetLoss(g.AddOp(graph.Sum, y))
	return g, y
}

func TestMatMulRules(t *testing.T) {
	g, y := matmulGraph()
	th := New(g)
	triples := th.ByNode[y]
	// The paper's four MatMul rules, minus the batch-dim restriction: the
	// placeholder can only shard dim 0, so the column-parallel rule
	// ({x|Id, w|AG(1)}) and the replicated rule survive leaf checks, and
	// the reduction rule ({x|AG(1), ...}) is dropped (x cannot shard dim 1).
	kinds := map[string]bool{}
	for _, tr := range triples {
		kinds[tr.Out.String()] = true
	}
	if len(triples) != 3 {
		t.Errorf("matmul triples = %d, want 3 (data/column/replicated)", len(triples))
	}
	if !kinds["e2|all-gather(0)"] {
		t.Error("missing data-parallel rule")
	}
	if !kinds["e2|all-gather(1)"] {
		t.Error("missing column-parallel rule")
	}
	if !kinds["e2|identity"] {
		t.Error("missing replicated rule")
	}
}

func TestPlaceholderShardRestrictedToBatchDim(t *testing.T) {
	g, y := matmulGraph()
	th := New(g)
	for _, tr := range th.ByNode[y] {
		for _, p := range tr.LeafPre {
			if g.Node(p.Ref).Kind == graph.Placeholder && p.Kind == Gather && p.Dim != 0 {
				t.Errorf("placeholder sharded on dim %d", p.Dim)
			}
		}
	}
}

func TestSoftmaxCannotShardLastDim(t *testing.T) {
	g := graph.New()
	x := g.AddPlaceholder("x", 0, 8, 4)
	s := g.AddOp(graph.Softmax, x)
	g.SetLoss(g.AddOp(graph.Sum, s))
	th := New(g)
	for _, tr := range th.ByNode[s] {
		if tr.Out.Kind == Gather && tr.Out.Dim == 1 {
			t.Error("softmax sharded on its normalization dim")
		}
	}
}

func TestRequiredSetExcludesDeadBranches(t *testing.T) {
	g := graph.New()
	x := g.AddPlaceholder("x", 0, 4, 4)
	dead := g.AddOp(graph.ReLU, x) // not on any output path
	g.SetLoss(g.AddOp(graph.Sum, x))
	th := New(g)
	if th.Required[dead] {
		t.Error("dead branch marked required")
	}
	if !th.Required[g.Loss] || !th.Required[x] {
		t.Error("live path not marked required")
	}
}

func TestOutputsIncludeLossAndGrads(t *testing.T) {
	g, _ := matmulGraph()
	if err := autodiff.Backward(g); err != nil {
		t.Fatal(err)
	}
	th := New(g)
	if len(th.Outputs) != 1+len(g.Params) {
		t.Errorf("outputs = %d, want %d", len(th.Outputs), 1+len(g.Params))
	}
}

func TestAcceptable(t *testing.T) {
	loss := Output{Ref: 7, Param: -1}
	if !loss.Acceptable(Pending(7), -1) || !loss.Acceptable(Id(7), -1) {
		t.Error("loss should accept all-reduce and identity")
	}
	if loss.Acceptable(Shard(7, 0), -1) {
		t.Error("loss should not accept a shard")
	}
	grad := Output{Ref: 9, Param: 2}
	if !grad.Acceptable(Shard(9, 1), 1) {
		t.Error("grad should accept matching shard dim")
	}
	if grad.Acceptable(Shard(9, 0), 1) {
		t.Error("grad should reject mismatched shard dim")
	}
	if !grad.Acceptable(Id(9), -1) {
		t.Error("full grad is always applicable")
	}
	if grad.Acceptable(Pending(9), -1) {
		t.Error("pending-reduce grad is not applicable locally")
	}
}

func TestFilterRecomputesWanted(t *testing.T) {
	g, y := matmulGraph()
	th := New(g)
	only := th.Filter(func(tr *Triple) bool {
		return tr.Node == y && tr.Out.Kind == Gather && tr.Out.Dim == 0
	})
	if n := len(only.ByNode[y]); n != 1 {
		t.Fatalf("filtered triples = %d, want 1", n)
	}
	if len(only.Wanted) >= len(th.Wanted) && len(th.Wanted) > 0 {
		t.Error("Wanted not shrunk by filter")
	}
}

func TestExpandShardInstrCarriesDim(t *testing.T) {
	g := graph.New()
	one := g.AddOnes()
	e := g.AddExpand(one, []int{4, 4})
	g.SetLoss(g.AddOp(graph.Sum, e))
	th := New(g)
	foundShard := false
	for _, tr := range th.ByNode[e] {
		in := tr.Instr(g)
		if tr.Out.Kind == Gather {
			foundShard = true
			if in.ShardDim != int(tr.Out.Dim) {
				t.Errorf("expand-shard instr dim %d != out dim %d", in.ShardDim, tr.Out.Dim)
			}
		} else if in.ShardDim != -1 {
			t.Errorf("replicated expand instr has shard dim %d", in.ShardDim)
		}
	}
	if !foundShard {
		t.Error("no sharded expand rule")
	}
}

func TestEveryModelOpHasRules(t *testing.T) {
	// Build a graph touching every op kind that the models use, apply
	// backward, and confirm every required non-leaf node has ≥1 triple.
	g := graph.New()
	ids := g.AddPlaceholder("ids", 0, 64)
	table := g.AddParameter("tbl", 100, 16)
	x := g.AddEmbed(ids, table)
	wqkv := g.AddParameter("wqkv", 16, 48)
	attn := g.AddAttention(g.AddOp(graph.MatMul, x, wqkv), 8)
	x1 := g.AddOp(graph.Add, x, g.AddOp(graph.GeLU, attn))
	wg := g.AddParameter("wg", 16, 4)
	gates := g.AddOp(graph.Softmax, g.AddOp(graph.MatMul, x1, wg))
	d := g.AddOp(graph.Dispatch, x1, gates)
	w1 := g.AddParameter("w1", 4, 16, 32)
	e1 := g.AddOp(graph.ExpertMM, d, w1)
	w2 := g.AddParameter("w2", 4, 32, 16)
	e2 := g.AddOp(graph.ExpertMM, g.AddOp(graph.ReLU, e1), w2)
	y := g.AddOp(graph.Combine, e2, gates)
	g.SetLoss(g.AddOp(graph.Sum, g.AddScale(y, 0.1)))
	if err := autodiff.Backward(g); err != nil {
		t.Fatal(err)
	}
	th := New(g)
	for i := range g.Nodes {
		id := graph.NodeID(i)
		if th.Required[id] && !IsLeaf(g.Node(id).Kind) && len(th.ByNode[id]) == 0 {
			t.Errorf("node e%d (%v) has no rules", id, g.Node(id).Kind)
		}
	}
}
