// Dead-code elimination as a pipeline pass.

package passes

import (
	"hap/internal/cluster"
	"hap/internal/dist"
)

// DCE wraps dist.Program.Prune as a pipeline pass: instructions whose
// results cannot reach a required output (the loss or a parameter gradient)
// are deleted, collectives on dead tensors with them. Running it last in the
// default pipeline lets it sweep up anything the rewriting passes orphan.
type DCE struct{}

// Name implements Pass.
func (DCE) Name() string { return "dce" }

// Run implements Pass.
func (DCE) Run(p *dist.Program, c *cluster.Cluster) (int, error) {
	return p.Prune(), nil
}
