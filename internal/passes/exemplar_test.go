package passes_test

// The acceptance exemplar: on a real benchmark model (VGG19), lowering every
// gradient all-reduce into its explicit reduce-scatter + all-gather ring
// phases (what a ZeRO-style backend or per-edge emitter issues) and then
// running the default pipeline must strictly reduce the collective count,
// the modeled cost AND the simulated iteration time, while hap.Verify-level
// semantic equivalence holds at every step.

import (
	"testing"

	"hap"
	"hap/internal/cluster"
	"hap/internal/cost"
	"hap/internal/models"
	"hap/internal/passes"
	"hap/internal/sim"
)

func TestCommFusionWinsOnVGG19(t *testing.T) {
	g := models.Build(models.ModelVGG19, 4)
	c := cluster.FromGPUs(cluster.DefaultNetwork(), cluster.MachineSpec{Type: cluster.P100, GPUs: 4})
	plan, err := hap.Parallelize(g, c, hap.Options{DisablePasses: true})
	if err != nil {
		t.Fatalf("Parallelize: %v", err)
	}

	lowered := plan.Program.Clone()
	nLowered, err := (passes.ExpandAllReduce{}).Run(lowered, c)
	if err != nil {
		t.Fatal(err)
	}
	if nLowered == 0 {
		t.Fatal("VGG19 plan has no all-reduce to lower; exemplar is vacuous")
	}
	if err := lowered.Validate(); err != nil {
		t.Fatalf("lowered program ill-formed: %v", err)
	}
	countBefore := lowered.NumComms()
	costBefore := cost.Evaluate(c, lowered, plan.Ratios)
	noNoise := sim.Options{NoiseSigma: -1, Seed: 1}
	simBefore := sim.Run(c, lowered, plan.Ratios, noNoise).Time

	st, err := passes.Default().Run(lowered, c)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	if got := st.ChangedBy("comm-fusion"); got != nLowered {
		t.Errorf("comm-fusion fused %d pairs, want all %d lowered all-reduces", got, nLowered)
	}
	countAfter := lowered.NumComms()
	if countAfter >= countBefore {
		t.Errorf("CollectiveCount did not strictly decrease: %d → %d", countBefore, countAfter)
	}
	costAfter := cost.Evaluate(c, lowered, plan.Ratios)
	if costAfter >= costBefore {
		t.Errorf("modeled cost did not strictly decrease: %.6f → %.6f s", costBefore, costAfter)
	}
	simAfter := sim.Run(c, lowered, plan.Ratios, noNoise).Time
	if simAfter >= simBefore {
		t.Errorf("simulated iteration time did not strictly decrease: %.6f → %.6f s", simBefore, simAfter)
	}
	// The fused program must match the synthesizer's direct all-reduce form:
	// no extra collectives relative to the never-lowered plan.
	if direct := plan.Program.NumComms(); countAfter != direct {
		t.Errorf("fused program has %d collectives, the direct plan %d", countAfter, direct)
	}
	t.Logf("VGG19: %d collectives → %d; modeled %.2f → %.2f ms; simulated %.2f → %.2f ms",
		countBefore, countAfter, costBefore*1e3, costAfter*1e3, simBefore*1e3, simAfter*1e3)
}

// TestParallelizeRunsPassesByDefault pins the default-on wiring: a default
// Parallelize reports pipeline stats and a DisablePasses one does not.
func TestParallelizeRunsPassesByDefault(t *testing.T) {
	g := models.MLP(16, 8, 4)
	c := cluster.FromGPUs(cluster.DefaultNetwork(),
		cluster.MachineSpec{Type: cluster.V100, GPUs: 1},
		cluster.MachineSpec{Type: cluster.P100, GPUs: 1})
	plan, err := hap.Parallelize(g, c, hap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Passes.Rounds == 0 {
		t.Error("default Parallelize reports no pass-pipeline rounds; pipeline did not run")
	}
	off, err := hap.Parallelize(g, c, hap.Options{DisablePasses: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.Passes.Rounds != 0 {
		t.Errorf("DisablePasses plan reports %d pipeline rounds, want 0", off.Passes.Rounds)
	}
}
