package passes

import (
	"testing"

	"hap/internal/collective"
	"hap/internal/dist"
	"hap/internal/runtime"
)

// Fusion rewrites must preserve the program's numeric semantics, not just
// its structure: execute the before/after programs on real data across the
// simulated devices and check both against the single-device reference.
func TestFusionPreservesRuntimeSemantics(t *testing.T) {
	cases := map[string][]dist.Instruction{
		"rs-ag": {
			comm(collective.ReduceScatter, 0, 0),
			comm(collective.PaddedAllGather, 0, 0),
		},
		"rs-a2a-ag": {
			comm(collective.ReduceScatter, 0, 0),
			comm(collective.AllToAll, 0, 1),
			comm(collective.PaddedAllGather, 1, 0),
		},
		"rs-a2a-gb": {
			comm(collective.ReduceScatter, 1, 0),
			comm(collective.AllToAll, 1, 0),
			comm(collective.GroupedBroadcast, 0, 0),
		},
	}
	for name, comms := range cases {
		t.Run(name, func(t *testing.T) {
			p := reductionProgram(t, comms...)
			b := [][]float64{{0.5, 0.5}}
			if err := runtime.VerifyEquivalence(p, 2, b, 7); err != nil {
				t.Fatalf("unfused program not equivalent (test bug): %v", err)
			}
			before := p.NumComms()
			if _, err := (CommFusion{}).Run(p, testCluster()); err != nil {
				t.Fatal(err)
			}
			if p.NumComms() >= before {
				t.Fatalf("fusion did not reduce collectives (%d → %d)", before, p.NumComms())
			}
			if err := runtime.VerifyEquivalence(p, 2, b, 7); err != nil {
				t.Errorf("fused program not equivalent: %v\n%s", err, p)
			}
		})
	}
}
