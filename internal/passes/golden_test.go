package passes

import (
	"strings"
	"testing"

	"hap/internal/collective"
	"hap/internal/dist"
)

// Golden disassembly tests: pass rewrites reviewed as before/after program
// listings, so a change to fusion behavior shows up as a readable test diff
// (dist.Format is the paper's listing notation).

func golden(t *testing.T, p *dist.Program, want string) {
	t.Helper()
	got := strings.TrimSpace(p.String())
	want = strings.TrimSpace(want)
	if got != want {
		t.Errorf("disassembly mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestGoldenReduceScatterAllGatherToAllReduce(t *testing.T) {
	p := reductionProgram(t,
		comm(collective.ReduceScatter, 0, 0),
		comm(collective.PaddedAllGather, 0, 0),
	)
	golden(t, p, `
e0 = placeholder-shard(1)  # x
e1 = parameter-shard(0)  # w
e2 = matmul(e0, e1)
e2 = reduce-scatter(e2, 0)
e2 = all-gather(e2, 0)
e3 = sum(e2)  # loss, replicated
`)
	if _, err := (CommFusion{}).Run(p, testCluster()); err != nil {
		t.Fatal(err)
	}
	golden(t, p, `
e0 = placeholder-shard(1)  # x
e1 = parameter-shard(0)  # w
e2 = matmul(e0, e1)
e2 = all-reduce(e2)
e3 = sum(e2)  # loss, replicated
`)
}

func TestGoldenReduceScatterAllToAllToReduceScatter(t *testing.T) {
	p := reductionProgram(t,
		comm(collective.ReduceScatter, 0, 0),
		comm(collective.AllToAll, 0, 1),
		comm(collective.PaddedAllGather, 1, 0),
	)
	golden(t, p, `
e0 = placeholder-shard(1)  # x
e1 = parameter-shard(0)  # w
e2 = matmul(e0, e1)
e2 = reduce-scatter(e2, 0)
e2 = all-to-all(e2, 0, 1)
e2 = all-gather(e2, 1)
e3 = sum(e2)  # loss, replicated
`)
	if _, err := (CommFusion{}).Run(p, testCluster()); err != nil {
		t.Fatal(err)
	}
	// The chain collapses fully: RS+A2A → RS(1), then RS(1)+AG(1) → AR.
	golden(t, p, `
e0 = placeholder-shard(1)  # x
e1 = parameter-shard(0)  # w
e2 = matmul(e0, e1)
e2 = all-reduce(e2)
e3 = sum(e2)  # loss, replicated
`)
}

func TestGoldenAllToAllAllGatherToAllGather(t *testing.T) {
	p := reductionProgram(t,
		comm(collective.ReduceScatter, 1, 0),
		comm(collective.AllToAll, 1, 0),
		comm(collective.GroupedBroadcast, 0, 0),
	)
	golden(t, p, `
e0 = placeholder-shard(1)  # x
e1 = parameter-shard(0)  # w
e2 = matmul(e0, e1)
e2 = reduce-scatter(e2, 1)
e2 = all-to-all(e2, 1, 0)
e2 = grouped-broadcast(e2, 0)
e3 = sum(e2)  # loss, replicated
`)
	if _, err := (CommFusion{}).Run(p, testCluster()); err != nil {
		t.Fatal(err)
	}
	// A2A+AG fuses to a gather on the source dim (keeping the grouped
	// implementation), which then chains with the RS into an all-reduce.
	golden(t, p, `
e0 = placeholder-shard(1)  # x
e1 = parameter-shard(0)  # w
e2 = matmul(e0, e1)
e2 = all-reduce(e2)
e3 = sum(e2)  # loss, replicated
`)
}

func TestGoldenExpandAllReduceLowering(t *testing.T) {
	p := reductionProgram(t, comm(collective.AllReduce, 0, 0))
	if n, err := (ExpandAllReduce{}).Run(p, testCluster()); err != nil || n != 1 {
		t.Fatalf("ExpandAllReduce changed %d (err %v), want 1", n, err)
	}
	// e2 is (16, 4): the lowering scatters the longest dimension (0).
	golden(t, p, `
e0 = placeholder-shard(1)  # x
e1 = parameter-shard(0)  # w
e2 = matmul(e0, e1)
e2 = reduce-scatter(e2, 0)
e2 = all-gather(e2, 0)
e3 = sum(e2)  # loss, replicated
`)
}
