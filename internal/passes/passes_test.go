package passes

import (
	"errors"
	"strings"
	"testing"

	"hap/internal/cluster"
	"hap/internal/collective"
	"hap/internal/dist"
	"hap/internal/graph"
)

// testCluster returns two single-GPU devices — the smallest cluster on which
// collectives cost anything.
func testCluster() *cluster.Cluster {
	return cluster.FromGPUs(cluster.DefaultNetwork(),
		cluster.MachineSpec{Type: cluster.V100, GPUs: 1},
		cluster.MachineSpec{Type: cluster.P100, GPUs: 1})
}

// reductionProgram builds loss = sum(x·w) computed reduction-parallel
// (x sharded on features, w on rows, the matmul producing partial sums) with
// the given collective sequence applied to the matmul's pending-reduce
// output. It is the canonical host for fusion patterns: every collective
// sequence that ends with the tensor fully reduced and replicated is
// semantically an all-reduce.
func reductionProgram(t *testing.T, comms ...dist.Instruction) *dist.Program {
	t.Helper()
	g := graph.New()
	x := g.AddPlaceholder("x", 0, 16, 8)
	w := g.AddParameter("w", 8, 4)
	y := g.AddOp(graph.MatMul, x, w)
	g.SetLoss(g.AddOp(graph.Sum, y))

	p := &dist.Program{Graph: g, Instrs: []dist.Instruction{
		{Ref: x, Op: graph.Placeholder, ShardDim: 1},
		{Ref: w, Op: graph.Parameter, ShardDim: 0},
		{Ref: y, Op: graph.MatMul, Inputs: []graph.NodeID{x, w}, ShardDim: -1, FlopsScaled: true},
	}}
	for i := range comms {
		comms[i].Ref = y
		p.Instrs = append(p.Instrs, comms[i])
	}
	p.Instrs = append(p.Instrs, dist.Instruction{
		Ref: g.Loss, Op: graph.Sum, Inputs: []graph.NodeID{y}, ShardDim: -1,
	})
	if err := p.Validate(); err != nil {
		t.Fatalf("test program ill-formed before passes: %v", err)
	}
	return p
}

func comm(k collective.Kind, d, d2 int) dist.Instruction {
	return dist.Comm(0, k, d, d2) // Ref is filled in by reductionProgram
}

func TestPipelineFusesChainToAllReduce(t *testing.T) {
	// reduce-scatter → all-to-all → all-gather collapses in two steps:
	// RS+A2A → RS(dim'), then RS+AG → all-reduce. One CommFusion sweep
	// handles the chain because rewrites re-examine their own output.
	p := reductionProgram(t,
		comm(collective.ReduceScatter, 0, 0),
		comm(collective.AllToAll, 0, 1),
		comm(collective.PaddedAllGather, 1, 0),
	)
	st, err := Default().Run(p, testCluster())
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	if got := st.ChangedBy("comm-fusion"); got != 2 {
		t.Errorf("comm-fusion changed %d, want 2 (chain of two rewrites)", got)
	}
	if n := p.NumComms(); n != 1 {
		t.Errorf("fused program has %d collectives, want 1:\n%s", n, p)
	}
	if cc := p.CollectiveCount(); cc[collective.AllReduce] != 1 {
		t.Errorf("collective histogram %v, want exactly one all-reduce", cc)
	}
	if st.Rounds != 2 {
		// Round 1 rewrites, round 2 confirms the fixed point.
		t.Errorf("pipeline ran %d rounds, want 2", st.Rounds)
	}
}

func TestCommFusionKeepsLoadBearingPairs(t *testing.T) {
	// A computation consuming the scattered shard between the two collectives
	// makes the pair load-bearing: fusing would change what the consumer sees.
	g := graph.New()
	x := g.AddPlaceholder("x", 0, 16, 8)
	w := g.AddParameter("w", 8, 4)
	y := g.AddOp(graph.MatMul, x, w)
	r := g.AddOp(graph.ReLU, y)
	g.SetLoss(g.AddOp(graph.Sum, r))
	p := &dist.Program{Graph: g, Instrs: []dist.Instruction{
		{Ref: x, Op: graph.Placeholder, ShardDim: 1},
		{Ref: w, Op: graph.Parameter, ShardDim: 0},
		{Ref: y, Op: graph.MatMul, Inputs: []graph.NodeID{x, w}, ShardDim: -1, FlopsScaled: true},
		dist.Comm(y, collective.ReduceScatter, 0, 0),
		{Ref: r, Op: graph.ReLU, Inputs: []graph.NodeID{y}, ShardDim: -1, FlopsScaled: true},
		dist.Comm(y, collective.PaddedAllGather, 0, 0),
		{Ref: g.Loss, Op: graph.Sum, Inputs: []graph.NodeID{r}, ShardDim: -1},
	}}
	changed, err := CommFusion{}.Run(p, testCluster())
	if err != nil {
		t.Fatal(err)
	}
	if changed != 0 {
		t.Errorf("CommFusion rewrote %d pairs across an intervening reader, want 0:\n%s", changed, p)
	}
}

func TestCommFusionMismatchedDimsUntouched(t *testing.T) {
	// reduce-scatter(0) + all-gather(1) is not an all-reduce (the gather
	// reassembles the wrong dimension); the pass must leave it alone.
	p := reductionProgram(t,
		comm(collective.ReduceScatter, 0, 0),
		comm(collective.PaddedAllGather, 1, 0),
	)
	changed, err := CommFusion{}.Run(p, testCluster())
	if err != nil {
		t.Fatal(err)
	}
	if changed != 0 {
		t.Errorf("CommFusion fused mismatched dims (%d rewrites):\n%s", changed, p)
	}
}

func TestCollectiveCSEDedupsRepeatedCollective(t *testing.T) {
	p := reductionProgram(t,
		comm(collective.AllReduce, 0, 0),
		comm(collective.AllReduce, 0, 0),
	)
	changed, err := CollectiveCSE{}.Run(p, testCluster())
	if err != nil {
		t.Fatal(err)
	}
	if changed != 1 || p.NumComms() != 1 {
		t.Errorf("CSE removed %d (program has %d collectives), want 1 and 1:\n%s", changed, p.NumComms(), p)
	}
	// A different collective between two identical ones is not a repeat.
	p = reductionProgram(t,
		comm(collective.ReduceScatter, 0, 0),
		comm(collective.PaddedAllGather, 0, 0),
		comm(collective.ReduceScatter, 0, 0),
	)
	changed, err = CollectiveCSE{}.Run(p, testCluster())
	if err != nil {
		t.Fatal(err)
	}
	if changed != 0 {
		t.Errorf("CSE removed %d collectives from an alternating sequence, want 0", changed)
	}
}

func TestDCERemovesDeadLeafAndItsCollective(t *testing.T) {
	g := graph.New()
	x := g.AddPlaceholder("x", 0, 16, 8)
	w := g.AddParameter("w", 8, 4)
	dead := g.AddParameter("unused", 16, 4)
	y := g.AddOp(graph.MatMul, x, w)
	g.SetLoss(g.AddOp(graph.Sum, y))
	p := &dist.Program{Graph: g, Instrs: []dist.Instruction{
		{Ref: x, Op: graph.Placeholder, ShardDim: -1},
		{Ref: w, Op: graph.Parameter, ShardDim: -1},
		{Ref: dead, Op: graph.Parameter, ShardDim: 0},
		dist.Comm(dead, collective.PaddedAllGather, 0, 0),
		{Ref: y, Op: graph.MatMul, Inputs: []graph.NodeID{x, w}, ShardDim: -1},
		{Ref: g.Loss, Op: graph.Sum, Inputs: []graph.NodeID{y}, ShardDim: -1},
	}}
	st, err := Default().Run(p, testCluster())
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	if got := st.ChangedBy("dce"); got != 2 {
		t.Errorf("dce removed %d instructions, want 2 (dead loader + its collective)", got)
	}
	if strings.Contains(p.String(), "unused") {
		t.Errorf("dead parameter survived the pipeline:\n%s", p)
	}
}

// breakerPass deliberately corrupts the program to prove the pipeline's
// validation gate fails fast at the pass boundary.
type breakerPass struct{}

func (breakerPass) Name() string { return "breaker" }
func (breakerPass) Run(p *dist.Program, c *cluster.Cluster) (int, error) {
	p.Instrs = p.Instrs[1:] // drop a leaf loader: use-before-def downstream
	return 1, nil
}

func TestPipelineValidatesAfterEveryPass(t *testing.T) {
	p := reductionProgram(t, comm(collective.AllReduce, 0, 0))
	pl := &Pipeline{Passes: []Pass{breakerPass{}}, Validate: true}
	if _, err := pl.Run(p, testCluster()); err == nil {
		t.Fatal("pipeline accepted a pass that broke SSA well-formedness")
	}
}

// errPass returns an error to prove pipeline error wrapping preserves it.
type errPass struct{}

func (errPass) Name() string { return "err" }
func (errPass) Run(p *dist.Program, c *cluster.Cluster) (int, error) {
	return 0, errInjected
}

var errInjected = errors.New("injected")

func TestPipelinePropagatesPassErrors(t *testing.T) {
	p := reductionProgram(t)
	pl := &Pipeline{Passes: []Pass{errPass{}}}
	if _, err := pl.Run(p, testCluster()); !errors.Is(err, errInjected) {
		t.Fatalf("pipeline error = %v, want wrapped injected error", err)
	}
}

func TestPipelineFixedPointOnCleanProgram(t *testing.T) {
	// A synthesized-shape program (one collective, nothing dead) is already
	// at the fixed point: one confirming round, zero changes.
	p := reductionProgram(t, comm(collective.AllReduce, 0, 0))
	before := p.String()
	st, err := Default().Run(p, testCluster())
	if err != nil {
		t.Fatal(err)
	}
	if st.Changed != 0 || st.Rounds != 1 {
		t.Errorf("clean program: %d changes in %d rounds, want 0 in 1", st.Changed, st.Rounds)
	}
	if p.String() != before {
		t.Errorf("clean program rewritten:\nbefore:\n%s\nafter:\n%s", before, p)
	}
}
