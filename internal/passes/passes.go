// Package passes optimizes synthesized distributed programs after the fact:
// a reusable rewrite layer over the dist.Program IR, sitting between program
// synthesis and cost extraction / serving.
//
// The synthesizer emits communication literally as chosen per edge, and
// decoded or hand-built programs (hap.ReadProgram, baselines, lowered
// backends) carry whatever their producer wrote. A Pass rewrites one program
// in place — merging collective pairs into cheaper equivalents, deduplicating
// redundant collectives, deleting dead code — and reports how many rewrites
// it made. A Pipeline runs a pass list to a fixed point with per-pass stats
// and (optionally) the structural validator after every pass, so a buggy
// rewrite is caught at the pass boundary instead of deep inside the cost
// model or the numeric runtime.
//
// Passes only ever need the program and the cluster: cost decisions (is the
// fused collective actually cheaper here?) are made against the analytic
// collective model under even sharding, the same canonical basis the fitted
// linear models use (collective.Fit).
package passes

import (
	"context"
	"fmt"

	"hap/internal/cluster"
	"hap/internal/dist"
	"hap/internal/obs"
)

// Pass is one program rewrite. Run mutates p in place and returns the number
// of rewrites applied (0 = fixed point reached for this pass).
type Pass interface {
	Name() string
	Run(p *dist.Program, c *cluster.Cluster) (changed int, err error)
}

// PassStat reports one pass's cumulative effect across pipeline rounds.
type PassStat struct {
	Pass    string `json:"pass"`
	Runs    int    `json:"runs"`
	Changed int    `json:"changed"`
}

// Stats summarizes one Pipeline.Run.
type Stats struct {
	// Rounds is the number of full rounds executed (1 = already at a fixed
	// point after the first sweep).
	Rounds int `json:"rounds"`
	// Changed is the total rewrite count across all passes and rounds.
	Changed int `json:"changed"`
	// Converged reports that the final round changed nothing — a true fixed
	// point. False means MaxRounds expired with rewrites still happening
	// (an oscillating pass pair); the program is still validated but holds
	// whatever state the last round produced.
	Converged bool `json:"converged"`
	// PerPass breaks Changed down by pass, in pipeline order.
	PerPass []PassStat `json:"per_pass,omitempty"`
}

// ChangedBy returns the cumulative rewrite count of the named pass.
func (s Stats) ChangedBy(name string) int {
	for _, ps := range s.PerPass {
		if ps.Pass == name {
			return ps.Changed
		}
	}
	return 0
}

// Pipeline runs an ordered pass list to a fixed point.
type Pipeline struct {
	// Passes run in order within each round.
	Passes []Pass
	// Validate runs the structural validator after every pass, failing fast
	// on a rewrite that broke SSA well-formedness.
	Validate bool
	// MaxRounds bounds the fixed-point iteration (0 = 4; every shipped pass
	// converges in one round, the bound is the backstop for pass cycles).
	MaxRounds int
}

// Default returns the standard post-synthesis pipeline: collective fusion,
// collective CSE, then dead-code elimination, validated after every pass.
func Default() *Pipeline {
	return &Pipeline{
		Passes:   []Pass{CommFusion{}, CollectiveCSE{}, DCE{}},
		Validate: true,
	}
}

// Run drives the pipeline to a fixed point (no pass changes anything in a
// full round) or to MaxRounds, whichever comes first; Stats.Converged
// distinguishes the two. The program is mutated in place; on error it may
// hold a partially rewritten (but, with Validate set, still well-formed)
// program.
func (pl *Pipeline) Run(p *dist.Program, c *cluster.Cluster) (Stats, error) {
	return pl.RunContext(context.Background(), p, c)
}

// RunContext is Run under a context: when ctx carries a tracing span
// (internal/obs), the pipeline records a "passes" span with one child per
// pass execution carrying its rewrite count. With tracing off the only
// overhead is one context lookup per pipeline run.
func (pl *Pipeline) RunContext(ctx context.Context, p *dist.Program, c *cluster.Cluster) (Stats, error) {
	maxRounds := pl.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 4
	}
	stats := Stats{PerPass: make([]PassStat, len(pl.Passes))}
	for i, pass := range pl.Passes {
		stats.PerPass[i].Pass = pass.Name()
	}
	ps := obs.SpanFromContext(ctx).Child("passes")
	defer func() {
		ps.SetAttrInt("rounds", int64(stats.Rounds))
		ps.SetAttrInt("changed", int64(stats.Changed))
		ps.SetAttrBool("converged", stats.Converged)
		ps.End()
	}()
	for round := 1; round <= maxRounds; round++ {
		stats.Rounds = round
		roundChanged := 0
		for i, pass := range pl.Passes {
			sp := ps.Child(pass.Name())
			n, err := pass.Run(p, c)
			if sp != nil {
				sp.SetAttrInt("round", int64(round))
				sp.SetAttrInt("changed", int64(n))
				sp.End()
			}
			stats.PerPass[i].Runs++
			stats.PerPass[i].Changed += n
			stats.Changed += n
			roundChanged += n
			if err != nil {
				return stats, fmt.Errorf("passes: %s: %w", pass.Name(), err)
			}
			// Validate unconditionally, not only when the pass reports
			// changes: a buggy pass that mutates the program but returns 0
			// must still be caught at its own boundary.
			if pl.Validate {
				if err := p.Validate(); err != nil {
					return stats, fmt.Errorf("passes: %s produced an ill-formed program: %w", pass.Name(), err)
				}
			}
		}
		if roundChanged == 0 {
			stats.Converged = true
			break
		}
	}
	return stats, nil
}

// HasPass reports whether the pipeline contains a pass with the given name.
func (pl *Pipeline) HasPass(name string) bool {
	for _, p := range pl.Passes {
		if p.Name() == name {
			return true
		}
	}
	return false
}

// nextTouch returns the index of the first instruction after i that touches
// the tensor communicated or computed at i — a collective on the same
// tensor, or a computation reading it — or -1 if none does. Computation
// reads come from the carried graph (the source of truth for dataflow;
// instruction input lists may legally be empty).
func nextTouch(p *dist.Program, i int) int {
	ref := p.Instrs[i].Ref
	g := p.Graph
	for j := i + 1; j < len(p.Instrs); j++ {
		in := &p.Instrs[j]
		if in.Ref == ref {
			return j
		}
		if !in.IsComm {
			for _, u := range g.Node(in.Ref).Inputs {
				if u == ref {
					return j
				}
			}
		}
	}
	return -1
}
