// Collective fusion: merge collective pairs on the same tensor into the
// single collective they are semantically equal to, when the cost model
// agrees the fused form is cheaper on this cluster.

package passes

import (
	"hap/internal/cluster"
	"hap/internal/collective"
	"hap/internal/cost"
	"hap/internal/dist"
)

// CommFusion merges collective pairs on the same tensor that are
// semantically one collective. A pair fuses only when no instruction between
// the two touches the tensor (so nothing observes the intermediate
// distribution) and the analytic cost model says the fused collective is
// cheaper on this cluster. Three patterns are recognized:
//
//	reduce-scatter(e, d) ; all-gather(e, d)   →  all-reduce(e)
//	reduce-scatter(e, d) ; all-to-all(e, d, d')  →  reduce-scatter(e, d')
//	all-to-all(e, d, d') ; all-gather(e, d')  →  all-gather(e, d)
//
// where all-gather is either implementation (padded or grouped-Broadcast;
// the fused all-gather keeps the original's implementation). The first
// pattern is the classic ring identity — an all-reduce is exactly a
// reduce-scatter followed by an all-gather — and is how backends that lower
// all-reduce into its phases (ZeRO-style sharded optimizers, per-edge
// emitters) leave money on the table: the padded pair pays two kernel
// launches and two padded rings where one un-padded all-reduce suffices.
// The other two drop a resharding hop whose intermediate no one reads.
//
// Rewrites replace the first collective of the pair in place and delete the
// second, so surrounding stage boundaries shift minimally. Chains
// (reduce-scatter → all-to-all → all-gather) fuse in one Run: each rewrite
// re-examines the instruction it produced.
type CommFusion struct{}

// Name implements Pass.
func (CommFusion) Name() string { return "comm-fusion" }

// Run implements Pass.
func (CommFusion) Run(p *dist.Program, c *cluster.Cluster) (int, error) {
	if p.Graph == nil {
		return 0, nil
	}
	changed := 0
	for i := 0; i < len(p.Instrs); i++ {
		first := p.Instrs[i]
		if !first.IsComm {
			continue
		}
		j := nextTouch(p, i)
		if j < 0 || !p.Instrs[j].IsComm {
			continue // next touch reads the intermediate: the pair is load-bearing
		}
		second := p.Instrs[j]
		var fused dist.Instruction
		switch {
		case first.Coll == collective.ReduceScatter && isGatherKind(second.Coll) && second.Dim == first.Dim:
			fused = dist.Comm(first.Ref, collective.AllReduce, 0, 0)
		case first.Coll == collective.ReduceScatter && second.Coll == collective.AllToAll && second.Dim == first.Dim:
			fused = dist.Comm(first.Ref, collective.ReduceScatter, second.Dim2, 0)
		case first.Coll == collective.AllToAll && isGatherKind(second.Coll) && second.Dim == first.Dim2:
			fused = dist.Comm(first.Ref, second.Coll, first.Dim, 0)
		default:
			continue
		}
		if CommCost(c, p, fused) >= CommCost(c, p, first)+CommCost(c, p, second) {
			continue // the pair is the cheaper form here (or m == 1): keep it
		}
		p.Instrs[i] = fused
		p.Instrs = append(p.Instrs[:j], p.Instrs[j+1:]...)
		changed++
		i-- // re-examine the fused collective: chains fuse in one sweep
	}
	return changed, nil
}

// isGatherKind reports whether k materializes the full tensor from shards
// (either all-gather implementation).
func isGatherKind(k collective.Kind) bool {
	return k == collective.PaddedAllGather || k == collective.GroupedBroadcast
}

// CommCost is the canonical stage cost of one communication instruction the
// fusion decisions compare: the analytic collective time under even sharding
// plus the worst-device intra-machine aggregation penalty the cost model
// folds into the stage's computation (Sec. 6). Even sharding is the same
// basis the fitted linear models profile on (collective.Fit); under skewed
// ratios padded collectives only get more expensive relative to all-reduce,
// so a fusion that wins here wins at least as much at the served ratios.
func CommCost(c *cluster.Cluster, p *dist.Program, in dist.Instruction) float64 {
	g := p.Graph
	even := c.EvenRatios()
	t := collective.Time(c, in.Coll, g.Bytes(in.Ref), even)
	b := cost.UniformRatios(g.NumSegments(), even)
	acc := make([]float64, c.M())
	cost.AddIntraPenalty(c, g, in, b, acc)
	worst := 0.0
	for _, v := range acc {
		if v > worst {
			worst = v
		}
	}
	return t + worst
}

// ExpandAllReduce is CommFusion's inverse lowering: every all-reduce whose
// tensor has a dimension long enough to scatter across the cluster becomes
// the explicit reduce-scatter + all-gather ring phases on that tensor's
// longest dimension. This is how ZeRO-style backends and per-edge emitters
// actually issue the collective; it is never cheaper under the analytic
// model (the pair pays extra kernel launches and padded rings), so it is not
// part of the default pipeline. It exists to model such producers — the
// differential harness lowers every synthesized plan with it, verifies the
// lowered program still computes the same function, and then checks
// CommFusion earns the win back.
type ExpandAllReduce struct{}

// Name implements Pass.
func (ExpandAllReduce) Name() string { return "expand-all-reduce" }

// Run implements Pass.
func (ExpandAllReduce) Run(p *dist.Program, c *cluster.Cluster) (int, error) {
	if p.Graph == nil {
		return 0, nil
	}
	g := p.Graph
	changed := 0
	out := make([]dist.Instruction, 0, len(p.Instrs))
	for _, in := range p.Instrs {
		if !in.IsComm || in.Coll != collective.AllReduce {
			out = append(out, in)
			continue
		}
		d := longestDim(g.Node(in.Ref).Shape)
		if d < 0 || g.Node(in.Ref).Shape[d] < c.M() {
			out = append(out, in) // nothing to scatter over: keep the all-reduce
			continue
		}
		out = append(out,
			dist.Comm(in.Ref, collective.ReduceScatter, d, 0),
			dist.Comm(in.Ref, collective.PaddedAllGather, d, 0))
		changed++
	}
	p.Instrs = out
	return changed, nil
}

func longestDim(shape []int) int {
	best, bestLen := -1, 0
	for d, n := range shape {
		if n > bestLen {
			best, bestLen = d, n
		}
	}
	return best
}
