package passes_test

import (
	"testing"

	"hap"
	"hap/internal/cluster"
	"hap/internal/models"
	"hap/internal/passes"
)

// BenchmarkPipelineVGG19 measures the default pipeline on the lowered VGG19
// plan — the worst realistic input (every gradient all-reduce expanded into
// its ring phases). Synthesis happens once outside the loop; the benchmark
// times lowering + fusion + CSE + DCE + validation per iteration.
func BenchmarkPipelineVGG19(b *testing.B) {
	g := models.Build(models.ModelVGG19, 4)
	c := cluster.FromGPUs(cluster.DefaultNetwork(), cluster.MachineSpec{Type: cluster.P100, GPUs: 4})
	plan, err := hap.Parallelize(g, c, hap.Options{DisablePasses: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := plan.Program.Clone()
		if _, err := (passes.ExpandAllReduce{}).Run(p, c); err != nil {
			b.Fatal(err)
		}
		st, err := passes.Default().Run(p, c)
		if err != nil {
			b.Fatal(err)
		}
		if st.Changed == 0 {
			b.Fatal("pipeline fused nothing")
		}
	}
}
