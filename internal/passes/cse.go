// Collective common-subexpression elimination: deduplicate repeated
// identical collectives on the same SSA value.

package passes

import (
	"hap/internal/cluster"
	"hap/internal/dist"
	"hap/internal/graph"
)

// CollectiveCSE removes a collective that repeats the previous collective on
// the same tensor exactly (same kind and dimensions) with no other
// collective on that tensor in between. After the first, the tensor already
// holds the collective's target distribution, so the repeat is redundant —
// it states intent the program has already realized.
//
// The synthesizer cannot emit such programs (it communicates each tensor at
// most once), but decoded plans (hap.ReadProgram) and hand-built programs
// can, and the structural validator accepts them: a duplicate is well-formed
// SSA. Left in place it would double-charge the cost model and, in the data
// plane, corrupt the value (collectives are state transitions, not
// idempotent operations — a second all-reduce multiplies by m). CSE
// canonicalizes such programs to the form their producer evidently meant.
type CollectiveCSE struct{}

// Name implements Pass.
func (CollectiveCSE) Name() string { return "collective-cse" }

// Run implements Pass.
func (CollectiveCSE) Run(p *dist.Program, c *cluster.Cluster) (int, error) {
	// last maps a tensor to the most recent collective applied to it.
	// Computations never reset an entry: reading a tensor does not change
	// its distribution, and SSA forbids re-defining it.
	last := map[graph.NodeID]dist.Instruction{}
	changed := 0
	out := p.Instrs[:0]
	for _, in := range p.Instrs {
		if in.IsComm {
			if prev, ok := last[in.Ref]; ok && sameComm(prev, in) {
				changed++
				continue
			}
			last[in.Ref] = in
		}
		out = append(out, in)
	}
	p.Instrs = out
	return changed, nil
}

func sameComm(a, b dist.Instruction) bool {
	return a.Coll == b.Coll && a.Dim == b.Dim && a.Dim2 == b.Dim2
}
