// Drift quantification between two cluster specifications. The serve tier
// compares the spec cluster a plan was synthesized against with the cluster
// live telemetry says the fleet actually is; Distance turns that comparison
// into one scalar a threshold can gate background replanning on.

package cluster

import "math"

// Distance returns a scalar drift metric between two clusters: the maximum
// relative change across every capability plan synthesis consumes — each
// device's achievable flops and memory, and every network-model parameter.
// Identical clusters are at distance 0; a link running at half its spec
// bandwidth is at 0.5; structurally different clusters (device count, GPU
// counts, machine placement) are infinitely distant, because no amount of
// ratio rebalancing maps a plan across them — only a full replan does.
//
// The metric is symmetric (relative deltas are normalized by the larger
// magnitude) and ignores device and type names, mirroring Fingerprint: a
// rename is not drift.
func Distance(a, b *Cluster) float64 {
	if a == nil || b == nil {
		if a == b {
			return 0
		}
		return math.Inf(1)
	}
	if len(a.Devices) != len(b.Devices) {
		return math.Inf(1)
	}
	d := 0.0
	for i := range a.Devices {
		da, db := a.Devices[i], b.Devices[i]
		if da.GPUs != db.GPUs || da.Machine != db.Machine {
			return math.Inf(1)
		}
		d = math.Max(d, relDelta(da.Flops(), db.Flops()))
		d = math.Max(d, relDelta(da.MemBytes(), db.MemBytes()))
	}
	for _, pair := range [][2]float64{
		{a.Net.InterBW, b.Net.InterBW},
		{a.Net.InterLatency, b.Net.InterLatency},
		{a.Net.IntraBW, b.Net.IntraBW},
		{a.Net.IntraLatency, b.Net.IntraLatency},
		{a.Net.KernelOverhead, b.Net.KernelOverhead},
		{a.Net.BroadcastFactor, b.Net.BroadcastFactor},
	} {
		d = math.Max(d, relDelta(pair[0], pair[1]))
	}
	return d
}

// relDelta is the relative difference of two non-negative quantities,
// normalized by the larger so the result is symmetric and lands in [0, 1]
// for same-signed inputs. Two zeros are identical; one zero against a
// positive value is total drift (1), not a division blow-up.
func relDelta(x, y float64) float64 {
	if x == y {
		return 0
	}
	denom := math.Max(math.Abs(x), math.Abs(y))
	if denom == 0 || math.IsNaN(denom) {
		return 0
	}
	return math.Abs(x-y) / denom
}
