package cluster

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// buildMixed returns a fresh two-machine mixed cluster; each call constructs
// it independently so equal fingerprints demonstrate content addressing, not
// pointer identity.
func buildMixed() *Cluster {
	return FromGPUs(DefaultNetwork(), MachineSpec{V100, 2}, MachineSpec{P100, 1})
}

func TestFingerprintIdenticalClusters(t *testing.T) {
	a, b := buildMixed(), buildMixed()
	fa := a.Fingerprint()
	if fa != b.Fingerprint() {
		t.Fatal("independently built identical clusters have different fingerprints")
	}
	// Deterministic across repeated calls (no map-iteration or allocation
	// order may leak into the hash).
	for i := 0; i < 50; i++ {
		if a.Fingerprint() != fa {
			t.Fatal("Fingerprint is not deterministic")
		}
	}
	if len(fa) != 16 {
		t.Errorf("fingerprint %q is not a 64-bit hex hash", fa)
	}
}

func TestFingerprintIgnoresLabels(t *testing.T) {
	a, b := buildMixed(), buildMixed()
	for i := range b.Devices {
		b.Devices[i].Name = "renamed"
		b.Devices[i].Type.Name = "RelabeledGPU"
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("device or type names changed the fingerprint (labels must not key the cache)")
	}
}

func TestFingerprintCoversEveryParameter(t *testing.T) {
	base := buildMixed().Fingerprint()
	perturb := []struct {
		name string
		f    func(*Cluster)
	}{
		{"device count", func(c *Cluster) { c.Devices = c.Devices[:len(c.Devices)-1] }},
		{"gpu count", func(c *Cluster) { c.Devices[0].GPUs = 4 }},
		{"flops", func(c *Cluster) { c.Devices[1].Type.TFLOPS *= 1.5 }},
		{"memory", func(c *Cluster) { c.Devices[1].Type.MemGB += 8 }},
		{"machine placement", func(c *Cluster) { c.Devices[2].Machine = 0 }},
		{"device order", func(c *Cluster) { c.Devices[0], c.Devices[2] = c.Devices[2], c.Devices[0] }},
		{"inter bandwidth", func(c *Cluster) { c.Net.InterBW *= 2 }},
		{"inter latency", func(c *Cluster) { c.Net.InterLatency *= 2 }},
		{"intra bandwidth", func(c *Cluster) { c.Net.IntraBW *= 2 }},
		{"intra latency", func(c *Cluster) { c.Net.IntraLatency *= 2 }},
		{"kernel overhead", func(c *Cluster) { c.Net.KernelOverhead *= 2 }},
		{"broadcast factor", func(c *Cluster) { c.Net.BroadcastFactor = 0.8 }},
	}
	for _, p := range perturb {
		t.Run(p.name, func(t *testing.T) {
			c := buildMixed()
			p.f(c)
			if c.Fingerprint() == base {
				t.Errorf("perturbing %s did not change the fingerprint", p.name)
			}
		})
	}
}

func TestClusterJSONRoundTrip(t *testing.T) {
	c := buildMixed()
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	q, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(c, q) {
		t.Errorf("round-trip changed the cluster:\n%v\nvs\n%v", c, q)
	}
	if c.Fingerprint() != q.Fingerprint() {
		t.Error("round-trip changed the fingerprint")
	}
}

func TestClusterJSONRejections(t *testing.T) {
	var buf bytes.Buffer
	if err := buildMixed().Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	enc := buf.String()
	cases := []struct {
		name    string
		mutate  func(string) string
		wantSub string
	}{
		{"not json", func(s string) string { return "][" }, "decode"},
		{"bad version", func(s string) string { return strings.Replace(s, `"version": 1`, `"version": 9`, 1) }, "version"},
		{"no devices", func(s string) string {
			return `{"version": 1, "net": {"inter_bw": 1, "intra_bw": 1, "broadcast_factor": 0.5}}`
		}, "no devices"},
		{"zero flops", func(s string) string { return strings.Replace(s, `"tflops": 15.7`, `"tflops": 0`, 1) }, "tflops"},
		{"negative memory", func(s string) string { return strings.Replace(s, `"mem_gb": 12`, `"mem_gb": -1`, 1) }, "mem_gb"},
		{"zero gpus", func(s string) string { return strings.Replace(s, `"gpus": 1`, `"gpus": 0`, 1) }, "GPUs"},
		{"negative machine", func(s string) string { return strings.Replace(s, `"machine": 1`, `"machine": -1`, 1) }, "machine"},
		{"zero bandwidth", func(s string) string { return strings.Replace(s, `"intra_bw": 150000000000`, `"intra_bw": 0`, 1) }, "bandwidth"},
		{"negative latency", func(s string) string { return strings.Replace(s, `"inter_latency": 0.00005`, `"inter_latency": -1`, 1) }, "latency"},
		{"broadcast factor above 1", func(s string) string {
			return strings.Replace(s, `"broadcast_factor": 0.55`, `"broadcast_factor": 1.5`, 1)
		}, "broadcast_factor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := tc.mutate(enc)
			if mutated == enc {
				t.Fatal("mutation did not change the encoding (test is stale)")
			}
			_, err := Decode(strings.NewReader(mutated))
			if err == nil {
				t.Fatal("Decode accepted bad input")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
