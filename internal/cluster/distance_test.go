package cluster

import (
	"math"
	"strings"
	"testing"
)

// TestEmptyClusterGuards covers the drift-edge cases a telemetry-built
// cluster hits when every device drops out: the accessors must degrade, not
// panic or emit NaNs.
func TestEmptyClusterGuards(t *testing.T) {
	c := &Cluster{Net: DefaultNetwork()}
	if !c.Homogeneous() {
		t.Error("empty cluster should be vacuously homogeneous")
	}
	if c.SpansMachines() {
		t.Error("empty cluster spans no machines")
	}
	if got := c.ProportionalRatios(); len(got) != 0 {
		t.Errorf("ProportionalRatios on empty cluster = %v, want empty", got)
	}
	if got := c.EvenRatios(); len(got) != 0 {
		t.Errorf("EvenRatios on empty cluster = %v, want empty", got)
	}
}

// TestZeroFlopClusterRatios: a nonempty cluster whose devices all rate zero
// flops has no proportional split — it must fall back to even ratios, never
// NaN (NaN ratios poison the LP and every cost downstream).
func TestZeroFlopClusterRatios(t *testing.T) {
	c := &Cluster{
		Net: DefaultNetwork(),
		Devices: []VirtualDevice{
			{Name: "d0", Type: DeviceType{Name: "dead", TFLOPS: 0, MemGB: 1}, GPUs: 1},
			{Name: "d1", Type: DeviceType{Name: "dead", TFLOPS: 0, MemGB: 1}, GPUs: 1},
		},
	}
	for i, r := range c.ProportionalRatios() {
		if math.IsNaN(r) {
			t.Fatalf("ProportionalRatios[%d] is NaN", i)
		}
		if r != 0.5 {
			t.Errorf("ProportionalRatios[%d] = %v, want 0.5 (even fallback)", i, r)
		}
	}
}

// TestDecodeRejectsEmptyAndZeroFlop: the wire decoder must refuse clusters
// the planner cannot use.
func TestDecodeRejectsEmptyAndZeroFlop(t *testing.T) {
	for name, body := range map[string]string{
		"no devices": `{"version":1,"devices":[],"net":{"inter_bw":1e9,"intra_bw":1e11,"broadcast_factor":0.5}}`,
		"zero flops": `{"version":1,"devices":[{"tflops":0,"mem_gb":16,"gpus":1,"machine":0}],"net":{"inter_bw":1e9,"intra_bw":1e11,"broadcast_factor":0.5}}`,
	} {
		if _, err := Decode(strings.NewReader(body)); err == nil {
			t.Errorf("%s: Decode accepted an unplannable cluster", name)
		}
	}
}

func TestDistanceIdentical(t *testing.T) {
	a := PaperHeterogeneous(8)
	b := PaperHeterogeneous(8)
	if d := Distance(a, b); d != 0 {
		t.Errorf("Distance of identical clusters = %v, want 0", d)
	}
	if d := Distance(a, a); d != 0 {
		t.Errorf("Distance of a cluster to itself = %v, want 0", d)
	}
}

// TestDistanceQuantifiesDrift: a link at half bandwidth is 0.5 away; a
// device throttled by 20% is 0.2 away; the metric takes the max.
func TestDistanceQuantifiesDrift(t *testing.T) {
	a := PaperHomogeneous(8)

	congested := PaperHomogeneous(8)
	congested.Net.InterBW = a.Net.InterBW / 2
	if d := Distance(a, congested); math.Abs(d-0.5) > 1e-12 {
		t.Errorf("half inter bandwidth: Distance = %v, want 0.5", d)
	}

	throttled := PaperHomogeneous(8)
	throttled.Devices[2].Type.TFLOPS *= 0.8
	if d := Distance(a, throttled); math.Abs(d-0.2) > 1e-12 {
		t.Errorf("20%% device throttle: Distance = %v, want 0.2", d)
	}

	both := PaperHomogeneous(8)
	both.Net.InterBW = a.Net.InterBW / 2
	both.Devices[0].Type.TFLOPS *= 0.9
	if d := Distance(a, both); math.Abs(d-0.5) > 1e-12 {
		t.Errorf("combined drift: Distance = %v, want max = 0.5", d)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	a := PaperHomogeneous(8)
	b := PaperHomogeneous(8)
	b.Net.InterBW *= 3
	b.Devices[1].Type.TFLOPS *= 0.7
	if da, db := Distance(a, b), Distance(b, a); da != db {
		t.Errorf("Distance not symmetric: %v vs %v", da, db)
	}
}

// TestDistanceStructuralIsInfinite: losing a device, changing GPU counts, or
// moving a device to another machine is not a ratio problem — it demands a
// full replan, so the metric saturates.
func TestDistanceStructuralIsInfinite(t *testing.T) {
	a := PaperHeterogeneous(8)

	lost := PaperHeterogeneous(8)
	lost.Devices = lost.Devices[:len(lost.Devices)-1]
	if d := Distance(a, lost); !math.IsInf(d, 1) {
		t.Errorf("device loss: Distance = %v, want +Inf", d)
	}

	resized := PaperHeterogeneous(8)
	resized.Devices[0].GPUs--
	if d := Distance(a, resized); !math.IsInf(d, 1) {
		t.Errorf("GPU count change: Distance = %v, want +Inf", d)
	}

	moved := PaperHeterogeneous(8)
	moved.Devices[3].Machine = 0
	if d := Distance(a, moved); !math.IsInf(d, 1) {
		t.Errorf("machine move: Distance = %v, want +Inf", d)
	}

	if d := Distance(a, nil); !math.IsInf(d, 1) {
		t.Errorf("nil cluster: Distance = %v, want +Inf", d)
	}
	if d := Distance(nil, nil); d != 0 {
		t.Errorf("Distance(nil, nil) = %v, want 0", d)
	}
}
