// Content fingerprinting of cluster specifications, used by the serve cache
// to key synthesized plans by (graph, cluster) content.

package cluster

import "hap/internal/fingerprint"

// Fingerprint returns a stable content hash of everything plan synthesis
// depends on: per-device capability (GPU count, flops, memory, hosting
// machine) in device order, and every network-model parameter. Device and
// type names are labels and do not participate — renaming a device cannot
// change the plan, so it must not change the key. Device *order* does
// participate: sharding ratios index devices positionally, so a permuted
// cluster is a different specification. The hash involves no map iteration
// and is deterministic across processes.
func (c *Cluster) Fingerprint() string {
	h := fingerprint.New()
	h.Int(len(c.Devices))
	for _, d := range c.Devices {
		h.Int(d.GPUs)
		h.Int(d.Machine)
		h.Float(d.Type.TFLOPS)
		h.Float(d.Type.MemGB)
	}
	h.Float(c.Net.InterBW)
	h.Float(c.Net.InterLatency)
	h.Float(c.Net.IntraBW)
	h.Float(c.Net.IntraLatency)
	h.Float(c.Net.KernelOverhead)
	h.Float(c.Net.BroadcastFactor)
	return h.Sum()
}
