package cluster

import (
	"math"
	"testing"
)

func TestPaperHeterogeneousShape(t *testing.T) {
	c := PaperHeterogeneous(8)
	if c.M() != 8 {
		t.Fatalf("M = %d, want 8 machines", c.M())
	}
	if c.TotalGPUs() != 64 {
		t.Errorf("TotalGPUs = %d, want 64", c.TotalGPUs())
	}
	if c.Homogeneous() {
		t.Error("heterogeneous cluster reported homogeneous")
	}
	if !c.SpansMachines() {
		t.Error("8-machine cluster should span machines")
	}
	// V100 machines are faster than P100 machines.
	if c.Devices[0].Flops() <= c.Devices[2].Flops() {
		t.Error("V100 machine should out-flop P100 machine")
	}
}

func TestPaperHeterogeneousScaling(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8} {
		c := PaperHeterogeneous(k)
		if got := c.TotalGPUs(); got != 8*k {
			t.Errorf("k=%d: TotalGPUs = %d, want %d", k, got, 8*k)
		}
	}
}

func TestPaperHomogeneous(t *testing.T) {
	c := PaperHomogeneous(8)
	if !c.Homogeneous() {
		t.Error("P100-only cluster should be homogeneous")
	}
	if c.TotalGPUs() != 32 {
		t.Errorf("TotalGPUs = %d, want 32", c.TotalGPUs())
	}
}

func TestRatioPolicies(t *testing.T) {
	c := PaperHeterogeneous(8)
	for name, ratios := range map[string][]float64{"CP": c.ProportionalRatios(), "EV": c.EvenRatios()} {
		sum := 0.0
		for _, r := range ratios {
			if r < 0 {
				t.Errorf("%s: negative ratio %v", name, r)
			}
			sum += r
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("%s ratios sum to %v", name, sum)
		}
	}
	cp := c.ProportionalRatios()
	if cp[0] <= cp[7] {
		t.Error("CP should give V100 machines larger ratios than P100")
	}
	ev := c.EvenRatios()
	if ev[0] != ev[7] {
		t.Error("EV ratios should be uniform")
	}
}

func TestProportionalEqualsEvenOnHomogeneous(t *testing.T) {
	c := PaperHomogeneous(4)
	cp, ev := c.ProportionalRatios(), c.EvenRatios()
	for i := range cp {
		if math.Abs(cp[i]-ev[i]) > 1e-12 {
			t.Fatalf("CP != EV on homogeneous cluster at %d: %v vs %v", i, cp[i], ev[i])
		}
	}
}

func TestEffectiveBandwidthSelection(t *testing.T) {
	multi := PaperHeterogeneous(8)
	if multi.EffectiveBW() != multi.Net.InterBW {
		t.Error("multi-machine cluster should use inter-machine bandwidth")
	}
	single := FromGPUs(DefaultNetwork(), MachineSpec{A100, 4})
	if single.EffectiveBW() != single.Net.IntraBW {
		t.Error("single-machine cluster should use intra-machine bandwidth")
	}
}

func TestDeviceCapabilities(t *testing.T) {
	if V100.TFLOPS <= P100.TFLOPS {
		t.Error("V100 should be faster than P100")
	}
	if A100.TFLOPS <= V100.TFLOPS {
		t.Error("A100 should be faster than V100")
	}
	d := VirtualDevice{Type: V100, GPUs: 8}
	if d.Flops() != 8*V100.TFLOPS*1e12*MFUEfficiency {
		t.Error("machine-level flops should aggregate GPUs")
	}
	if d.MemBytes() != 8*16e9 {
		t.Errorf("MemBytes = %g", d.MemBytes())
	}
}

func TestFromMachinesRestrictsGPUs(t *testing.T) {
	c := FromMachines(DefaultNetwork(), 2, MachineSpec{V100, 8}, MachineSpec{P100, 8})
	if c.TotalGPUs() != 4 {
		t.Errorf("TotalGPUs = %d, want 4", c.TotalGPUs())
	}
}

func TestPaperA100P100(t *testing.T) {
	c := PaperA100P100()
	if c.M() != 4 || c.TotalGPUs() != 4 {
		t.Fatalf("want 4 single-GPU devices, got M=%d GPUs=%d", c.M(), c.TotalGPUs())
	}
	if c.Homogeneous() {
		t.Error("A100+P100 should be heterogeneous")
	}
	if c.Devices[0].Machine == c.Devices[2].Machine {
		t.Error("A100s and P100s should be on different machines")
	}
}

func TestStringRendering(t *testing.T) {
	s := PaperHeterogeneous(8).String()
	if len(s) == 0 {
		t.Error("empty String()")
	}
}
