// Package cluster describes heterogeneous GPU clusters: device types,
// virtual devices, and the network model that collective-communication
// costs are derived from.
//
// A virtual device is either one GPU or one machine whose GPUs run internal
// data parallelism (Sec. 3 of the paper). The network model is the
// substitute for the paper's real testbed: published peak throughputs for
// V100/P100/A100, a 10.4 Gbps inter-machine fabric, and NVLink-class
// intra-machine bandwidth.
package cluster

import (
	"fmt"
	"strings"
)

// DeviceType is a GPU model with its peak dense fp32 throughput and memory.
type DeviceType struct {
	Name   string
	TFLOPS float64 // peak dense fp32 TFLOPS
	MemGB  float64
}

// The GPU models used in the paper's evaluation.
var (
	V100 = DeviceType{Name: "V100", TFLOPS: 15.7, MemGB: 16}
	P100 = DeviceType{Name: "P100", TFLOPS: 9.3, MemGB: 12}
	A100 = DeviceType{Name: "A100", TFLOPS: 19.5, MemGB: 40}
)

// MFUEfficiency is the fraction of peak flops a training workload achieves;
// applied uniformly so device *ratios* (what HAP optimizes over) stay exact.
const MFUEfficiency = 0.40

// VirtualDevice is the unit HAP assigns shards to: a single GPU or a
// machine-level group of identical GPUs running internal data parallelism.
type VirtualDevice struct {
	Name string
	Type DeviceType
	GPUs int // number of GPUs aggregated (1 = a solitary GPU)
	// Machine is the index of the physical machine hosting this virtual
	// device; collectives between different machines cross the slow fabric.
	Machine int
}

// Flops returns the achievable flops/s of the virtual device.
func (v VirtualDevice) Flops() float64 {
	return v.Type.TFLOPS * 1e12 * MFUEfficiency * float64(v.GPUs)
}

// MemBytes returns the aggregate device memory in bytes.
func (v VirtualDevice) MemBytes() float64 {
	return v.Type.MemGB * 1e9 * float64(v.GPUs)
}

// Network holds the fitted-model inputs for collective costs.
type Network struct {
	InterBW      float64 `json:"inter_bw"`      // inter-machine bandwidth per direction, bytes/s
	InterLatency float64 `json:"inter_latency"` // per-hop latency for inter-machine transfers, s
	IntraBW      float64 `json:"intra_bw"`      // intra-machine (NVLink/PCIe) bandwidth, bytes/s
	IntraLatency float64 `json:"intra_latency"` // intra-machine per-hop latency, s
	// KernelOverhead is the per-kernel launch cost; grouped Broadcast pays
	// it once per shard, which is the trade-off of Sec. 2.5.1.
	KernelOverhead float64 `json:"kernel_overhead"`
	// BroadcastFactor derates the per-broadcast achievable bandwidth
	// relative to the optimized ring primitives (NCCL broadcasts of
	// individually small shards do not reach ring throughput).
	BroadcastFactor float64 `json:"broadcast_factor"`
}

// DefaultNetwork returns the network constants modeled on the paper's
// testbed: 10.4 Gbps Ethernet between machines, NVLink inside.
func DefaultNetwork() Network {
	return Network{
		InterBW:         10.4e9 / 8, // 1.3 GB/s
		InterLatency:    50e-6,
		IntraBW:         150e9,
		IntraLatency:    5e-6,
		KernelOverhead:  60e-6,
		BroadcastFactor: 0.55,
	}
}

// Cluster is the specification handed to HAP: the virtual devices and the
// interconnect model.
type Cluster struct {
	Devices []VirtualDevice
	Net     Network
}

// M returns the number of virtual devices (the paper's m).
func (c *Cluster) M() int { return len(c.Devices) }

// TotalFlops returns the aggregate achievable flops/s.
func (c *Cluster) TotalFlops() float64 {
	t := 0.0
	for _, d := range c.Devices {
		t += d.Flops()
	}
	return t
}

// TotalGPUs returns the number of physical GPUs across virtual devices.
func (c *Cluster) TotalGPUs() int {
	n := 0
	for _, d := range c.Devices {
		n += d.GPUs
	}
	return n
}

// Homogeneous reports whether all virtual devices have identical capability.
// An empty cluster is vacuously homogeneous — telemetry can materialize a
// cluster with every device dropped out, and asking about it must not panic.
func (c *Cluster) Homogeneous() bool {
	if len(c.Devices) == 0 {
		return true
	}
	for _, d := range c.Devices[1:] {
		if d.Flops() != c.Devices[0].Flops() {
			return false
		}
	}
	return true
}

// SpansMachines reports whether the virtual devices live on more than one
// physical machine (so collectives cross the slow fabric). An empty cluster
// spans nothing.
func (c *Cluster) SpansMachines() bool {
	if len(c.Devices) == 0 {
		return false
	}
	for _, d := range c.Devices[1:] {
		if d.Machine != c.Devices[0].Machine {
			return true
		}
	}
	return false
}

// EffectiveBW returns the bandwidth governing a collective across all
// virtual devices: the inter-machine fabric when the cluster spans machines,
// the intra-machine fabric otherwise.
func (c *Cluster) EffectiveBW() float64 {
	if c.SpansMachines() {
		return c.Net.InterBW
	}
	return c.Net.IntraBW
}

// EffectiveLatency is the per-hop latency counterpart of EffectiveBW.
func (c *Cluster) EffectiveLatency() float64 {
	if c.SpansMachines() {
		return c.Net.InterLatency
	}
	return c.Net.IntraLatency
}

// ProportionalRatios returns sharding ratios proportional to device flops —
// the paper's DP-CP policy and HAP's B⁽⁰⁾ initialization. A cluster with no
// achievable flops (every device dropped out, or zero-rated hardware) has no
// proportional split; it degrades to even ratios instead of emitting NaNs.
func (c *Cluster) ProportionalRatios() []float64 {
	total := c.TotalFlops()
	if total <= 0 {
		return c.EvenRatios()
	}
	out := make([]float64, c.M())
	for i, d := range c.Devices {
		out[i] = d.Flops() / total
	}
	return out
}

// EvenRatios returns uniform sharding ratios — the paper's DP-EV policy.
func (c *Cluster) EvenRatios() []float64 {
	out := make([]float64, c.M())
	for i := range out {
		out[i] = 1 / float64(c.M())
	}
	return out
}

func (c *Cluster) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d virtual devices, %d GPUs, %.1f TFLOPS achievable\n",
		c.M(), c.TotalGPUs(), c.TotalFlops()/1e12)
	for i, d := range c.Devices {
		fmt.Fprintf(&b, "  [%d] %s ×%d (machine %d): %.1f TFLOPS, %.0f GB\n",
			i, d.Type.Name, d.GPUs, d.Machine, d.Flops()/1e12, d.MemBytes()/1e9)
	}
	return b.String()
}

// MachineSpec describes one physical machine for the testbed builders.
type MachineSpec struct {
	Type DeviceType
	GPUs int
}

// FromMachines builds a cluster with one machine-level virtual device per
// machine, using gpusPerMachine GPUs on each (the artifact's `run_all k`).
func FromMachines(net Network, gpusPerMachine int, machines ...MachineSpec) *Cluster {
	c := &Cluster{Net: net}
	for i, m := range machines {
		k := m.GPUs
		if gpusPerMachine > 0 && gpusPerMachine < k {
			k = gpusPerMachine
		}
		c.Devices = append(c.Devices, VirtualDevice{
			Name:    fmt.Sprintf("v%d", i+1),
			Type:    m.Type,
			GPUs:    k,
			Machine: i,
		})
	}
	return c
}

// FromGPUs builds a cluster with one virtual device per GPU.
func FromGPUs(net Network, machines ...MachineSpec) *Cluster {
	c := &Cluster{Net: net}
	id := 0
	for mi, m := range machines {
		for g := 0; g < m.GPUs; g++ {
			c.Devices = append(c.Devices, VirtualDevice{
				Name:    fmt.Sprintf("d%d", id),
				Type:    m.Type,
				GPUs:    1,
				Machine: mi,
			})
			id++
		}
	}
	return c
}

// PaperHeterogeneous returns the paper's 8-machine heterogeneous testbed
// (2×8 V100 + 6×8 P100) restricted to gpusPerMachine GPUs per machine,
// as virtual machine-level devices (Sec. 7.1/7.2: 8,16,32,64 GPUs ⇔ k=1,2,4,8).
func PaperHeterogeneous(gpusPerMachine int) *Cluster {
	machines := []MachineSpec{
		{V100, 8}, {V100, 8},
		{P100, 8}, {P100, 8}, {P100, 8}, {P100, 8}, {P100, 8}, {P100, 8},
	}
	return FromMachines(DefaultNetwork(), gpusPerMachine, machines...)
}

// PaperHomogeneous returns the paper's homogeneous subset (4×8 P100)
// restricted to gpusPerMachine GPUs per machine (Sec. 7.3: 8,16,24,32 GPUs
// ⇔ k=2,4,6,8).
func PaperHomogeneous(gpusPerMachine int) *Cluster {
	machines := []MachineSpec{{P100, 8}, {P100, 8}, {P100, 8}, {P100, 8}}
	return FromMachines(DefaultNetwork(), gpusPerMachine, machines...)
}

// PaperA100P100 returns the two-machine mixed testbed of Fig. 17 (one
// machine with 2 A100s, one with 2 P100s), one virtual device per GPU.
func PaperA100P100() *Cluster {
	return FromGPUs(DefaultNetwork(), MachineSpec{A100, 2}, MachineSpec{P100, 2})
}

// PaperP100A100Pair returns the Fig. 2 testbed (2 P100 + 2 A100 GPUs on two
// machines), one virtual device per GPU.
func PaperP100A100Pair() *Cluster {
	return FromGPUs(DefaultNetwork(), MachineSpec{P100, 2}, MachineSpec{A100, 2})
}
