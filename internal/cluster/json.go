// Stable JSON serialization of cluster specifications — the wire format a
// hap-serve client ships its cluster in. Decode validates the spec so a
// malformed request cannot produce NaN costs or a degenerate LP downstream.

package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// wireVersion is bumped on incompatible changes to the serialized form.
const wireVersion = 1

type clusterJSON struct {
	Version int          `json:"version"`
	Devices []deviceJSON `json:"devices"`
	Net     Network      `json:"net"`
}

type deviceJSON struct {
	Name    string  `json:"name,omitempty"`
	Type    string  `json:"type,omitempty"` // GPU model label, e.g. "V100"
	TFLOPS  float64 `json:"tflops"`
	MemGB   float64 `json:"mem_gb"`
	GPUs    int     `json:"gpus"`
	Machine int     `json:"machine"`
}

// Encode writes the cluster as indented (diffable, deterministic) JSON.
func (c *Cluster) Encode(w io.Writer) error {
	cj := clusterJSON{Version: wireVersion, Net: c.Net}
	for _, d := range c.Devices {
		cj.Devices = append(cj.Devices, deviceJSON{
			Name: d.Name, Type: d.Type.Name,
			TFLOPS: d.Type.TFLOPS, MemGB: d.Type.MemGB,
			GPUs: d.GPUs, Machine: d.Machine,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cj)
}

// finitePos reports whether v is a finite, strictly positive number.
func finitePos(v float64) bool {
	return v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v)
}

// Decode reads a cluster written by Encode and validates it: at least one
// device, positive capability numbers, and a physically sensible network.
func Decode(r io.Reader) (*Cluster, error) {
	var cj clusterJSON
	if err := json.NewDecoder(r).Decode(&cj); err != nil {
		return nil, fmt.Errorf("cluster: decode: %w", err)
	}
	if cj.Version != wireVersion {
		return nil, fmt.Errorf("cluster: decode: unsupported cluster version %d (want %d)", cj.Version, wireVersion)
	}
	if len(cj.Devices) == 0 {
		return nil, fmt.Errorf("cluster: decode: no devices")
	}
	c := &Cluster{Net: cj.Net}
	for i, d := range cj.Devices {
		if !finitePos(d.TFLOPS) || !finitePos(d.MemGB) {
			return nil, fmt.Errorf("cluster: decode: device %d has tflops %v, mem_gb %v (want positive finite)", i, d.TFLOPS, d.MemGB)
		}
		if d.GPUs < 1 {
			return nil, fmt.Errorf("cluster: decode: device %d has %d GPUs", i, d.GPUs)
		}
		if d.Machine < 0 {
			return nil, fmt.Errorf("cluster: decode: device %d on machine %d", i, d.Machine)
		}
		c.Devices = append(c.Devices, VirtualDevice{
			Name:    d.Name,
			Type:    DeviceType{Name: d.Type, TFLOPS: d.TFLOPS, MemGB: d.MemGB},
			GPUs:    d.GPUs,
			Machine: d.Machine,
		})
	}
	// Belt-and-suspenders: the per-device checks above already force every
	// device to contribute positive flops, but the planner divides by
	// TotalFlops, so an unplannable cluster must never escape Decode.
	if c.TotalFlops() <= 0 {
		return nil, fmt.Errorf("cluster: decode: cluster has no achievable flops")
	}
	n := cj.Net
	if !finitePos(n.InterBW) || !finitePos(n.IntraBW) {
		return nil, fmt.Errorf("cluster: decode: network bandwidths %v, %v (want positive finite)", n.InterBW, n.IntraBW)
	}
	if n.InterLatency < 0 || n.IntraLatency < 0 || n.KernelOverhead < 0 {
		return nil, fmt.Errorf("cluster: decode: negative latency or overhead")
	}
	if n.BroadcastFactor <= 0 || n.BroadcastFactor > 1 || math.IsNaN(n.BroadcastFactor) {
		return nil, fmt.Errorf("cluster: decode: broadcast_factor %v (want in (0, 1])", n.BroadcastFactor)
	}
	return c, nil
}
