package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestNilSafety: every Trace/Span/Collector method must be a no-op on a
// nil receiver — that is the "tracing off" contract the hot path relies on.
func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Error("nil trace ID should be empty")
	}
	sp := tr.Root("request", 0)
	if sp != nil {
		t.Fatal("nil trace Root should return nil span")
	}
	child := sp.Child("decode")
	if child != nil {
		t.Fatal("nil span Child should return nil")
	}
	sp.SetAttrStr("k", "v")
	sp.SetAttrInt("n", 1)
	sp.SetAttrFloat("f", 1.5)
	sp.SetAttrBool("b", true)
	sp.End()
	if got := sp.SpanID(); got != 0 {
		t.Errorf("nil span SpanID = %d, want 0", got)
	}
	if rec := sp.Record(); rec.ID != 0 {
		t.Errorf("nil span Record = %+v, want zero", rec)
	}
	tr.Merge([]SpanRecord{{ID: 1}})
	if got := tr.Snapshot(); got != nil {
		t.Errorf("nil trace Snapshot = %v, want nil", got)
	}
	if got := tr.Finish(); got != nil {
		t.Errorf("nil trace Finish = %v, want nil", got)
	}
	var c *Collector
	c.Add(&TraceRecord{})
	if c.Len() != 0 || c.Traces() != nil {
		t.Error("nil collector should be empty")
	}
	if _, ok := c.Get("x"); ok {
		t.Error("nil collector Get should miss")
	}
}

// TestDisabledPathAllocs: the instrumentation sequence a handler runs per
// request must not allocate when tracing is off (nil span in context).
func TestTraceDisabledPathAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		sp := SpanFromContext(ctx)
		c := sp.Child("decode")
		c.SetAttrInt("bytes", 4096)
		c.SetAttrStr("endpoint", "/v1/synthesize")
		c.End()
		ctx2, s2 := Start(ctx, "flight")
		if ctx2 != ctx {
			t.Fatal("Start with nil span must return ctx unchanged")
		}
		s2.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates %v per run, want 0", allocs)
	}
}

func TestTraceSpanTree(t *testing.T) {
	tr := New("", "node-a")
	if len(tr.ID()) != 16 {
		t.Fatalf("minted trace ID %q, want 16 hex chars", tr.ID())
	}
	root := tr.Root("request", 0)
	dec := root.Child("decode")
	dec.SetAttrInt("bytes", 123)
	time.Sleep(time.Millisecond)
	dec.End()
	dec.End() // double End records once
	root.SetAttrStr("endpoint", "/v1/synthesize")
	root.End()
	rec := tr.Finish()
	if rec.TraceID != tr.ID() || rec.Node != "node-a" {
		t.Fatalf("record identity = %q/%q", rec.TraceID, rec.Node)
	}
	if len(rec.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(rec.Spans))
	}
	byName := map[string]SpanRecord{}
	for _, sp := range rec.Spans {
		byName[sp.Name] = sp
	}
	d, r := byName["decode"], byName["request"]
	if d.Parent != r.ID {
		t.Errorf("decode parent = %d, want root %d", d.Parent, r.ID)
	}
	if d.Node != "node-a" {
		t.Errorf("decode node = %q", d.Node)
	}
	if d.Attrs["bytes"] != "123" {
		t.Errorf("decode attrs = %v", d.Attrs)
	}
	if d.DurUS < 500 {
		t.Errorf("decode duration = %dus, want >= ~1ms", d.DurUS)
	}
	if got := rec.Root(); got.ID != r.ID {
		t.Errorf("TraceRecord.Root = %+v, want request span", got)
	}
	if rec.DurUS < d.DurUS {
		t.Errorf("trace dur %d < decode dur %d", rec.DurUS, d.DurUS)
	}
}

func TestTraceMergeAndProvisionalRecord(t *testing.T) {
	// Simulate a fleet hop: node A opens a proxy span, node B roots under
	// it, B exports a provisional root + its finished spans, A merges.
	a := New("abc123", "http://a")
	aroot := a.Root("request", 0)
	proxy := aroot.Child("proxy")

	b := New("abc123", "http://b")
	broot := b.Root("request", proxy.SpanID())
	synth := broot.Child("synthesize")
	synth.End()
	remote := append(b.Snapshot(), broot.Record())

	a.Merge(remote)
	proxy.End()
	aroot.End()
	rec := a.Finish()
	if len(rec.Spans) != 4 {
		t.Fatalf("merged trace has %d spans, want 4", len(rec.Spans))
	}
	var remoteRoot *SpanRecord
	for i := range rec.Spans {
		if rec.Spans[i].Node == "http://b" && rec.Spans[i].Name == "request" {
			remoteRoot = &rec.Spans[i]
		}
	}
	if remoteRoot == nil {
		t.Fatal("remote root span missing after merge")
	}
	if remoteRoot.Parent != proxy.SpanID() {
		t.Errorf("remote root parent = %d, want proxy span %d", remoteRoot.Parent, proxy.SpanID())
	}
}

func TestTraceHeaderCodec(t *testing.T) {
	id, parent := ParseTraceHeader(FormatTraceHeader("deadbeef00112233", 0xabc))
	if id != "deadbeef00112233" || parent != 0xabc {
		t.Errorf("round trip = %q/%x", id, parent)
	}
	id, parent = ParseTraceHeader("bare-client-id") // malformed hex suffix stays opaque
	if id != "bare-client-id" || parent != 0 {
		t.Errorf("opaque id parse = %q/%d", id, parent)
	}
	if got := FormatTraceHeader("x", 0); got != "x" {
		t.Errorf("zero parent formats as %q", got)
	}

	spans := []SpanRecord{{ID: 7, Name: "synthesize", Node: "b", StartUS: 10, DurUS: 5}}
	got := DecodeSpans(EncodeSpans(spans))
	if len(got) != 1 || got[0].ID != 7 || got[0].Name != "synthesize" || got[0].Node != "b" || got[0].DurUS != 5 {
		t.Errorf("spans codec round trip = %+v", got)
	}
	if DecodeSpans("") != nil || DecodeSpans("!!!not-base64") != nil {
		t.Error("malformed spans header should decode to nil")
	}
	if EncodeSpans(nil) != "" {
		t.Error("empty spans should encode to empty header")
	}
}

func TestTraceCollectorRing(t *testing.T) {
	c := NewCollector(3)
	for i := 0; i < 5; i++ {
		c.Add(&TraceRecord{TraceID: fmt.Sprintf("t%d", i)})
	}
	if c.Len() != 3 {
		t.Fatalf("ring holds %d, want 3", c.Len())
	}
	recs := c.Traces()
	var ids []string
	for _, r := range recs {
		ids = append(ids, r.TraceID)
	}
	if got := strings.Join(ids, ","); got != "t4,t3,t2" {
		t.Errorf("newest-first order = %s, want t4,t3,t2", got)
	}
	if _, ok := c.Get("t1"); ok {
		t.Error("evicted trace still found")
	}
	if r, ok := c.Get("t3"); !ok || r.TraceID != "t3" {
		t.Error("retained trace not found")
	}
	// Duplicate IDs: newest wins.
	c.Add(&TraceRecord{TraceID: "t4", Node: "newer"})
	if r, _ := c.Get("t4"); r.Node != "newer" {
		t.Error("Get should return the newest record for an ID")
	}
}

func TestTraceWriteChrome(t *testing.T) {
	tr := New("abc", "http://a")
	root := tr.Root("request", 0)
	child := root.Child("synthesize")
	child.SetAttrInt("expansions", 42)
	child.End()
	root.End()
	tr.Merge([]SpanRecord{{ID: 99, Parent: root.SpanID(), Name: "remote", Node: "http://b", StartUS: root.Record().StartUS, DurUS: 3}})
	rec := tr.Finish()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, rec); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   int64             `json:"ts"`
			Dur  int64             `json:"dur"`
			PID  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	// 3 spans + 2 process_name metadata events (two nodes).
	if len(out.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5: %s", len(out.TraceEvents), buf.String())
	}
	pids := map[int]bool{}
	var sawSynth bool
	for _, ev := range out.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		if ev.Ph != "X" {
			t.Errorf("span event phase = %q, want X", ev.Ph)
		}
		if ev.TS < 0 {
			t.Errorf("event %q ts %d not rebased to trace start", ev.Name, ev.TS)
		}
		if ev.Dur < 1 {
			t.Errorf("event %q has zero duration", ev.Name)
		}
		pids[ev.PID] = true
		if ev.Name == "synthesize" {
			sawSynth = true
			if ev.Args["expansions"] != "42" {
				t.Errorf("synthesize args = %v", ev.Args)
			}
		}
	}
	if !sawSynth {
		t.Error("synthesize event missing")
	}
	if len(pids) != 2 {
		t.Errorf("spans spread over %d pids, want 2 (one per node)", len(pids))
	}
}

func TestTraceLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	NewLogger("json", &buf).Info("hello", "k", "v")
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("json logger line not parseable: %v (%s)", err, buf.String())
	}
	if m["msg"] != "hello" || m["k"] != "v" {
		t.Errorf("json line = %v", m)
	}
	buf.Reset()
	NewLogger("text", &buf).Info("hello")
	if !strings.Contains(buf.String(), "msg=hello") {
		t.Errorf("text line = %q", buf.String())
	}
}
