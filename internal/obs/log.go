// Structured-logging construction shared by cmd/hap-serve and tests: one
// place that maps the -log-format flag onto a log/slog handler.

package obs

import (
	"io"
	"log/slog"
)

// NewLogger builds a slog.Logger writing to w. format is "json" for
// machine-shippable lines or anything else (conventionally "text") for
// the human-readable default.
func NewLogger(format string, w io.Writer) *slog.Logger {
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(w, nil)
	} else {
		h = slog.NewTextHandler(w, nil)
	}
	return slog.New(h)
}
