// Package obs is the serving stack's zero-dependency observability layer:
// wall-clock tracing spans carried on context.Context, a bounded ring of
// completed traces for GET /v1/debug/traces, Chrome trace-event export, and
// a small log/slog construction helper shared by hap-serve and tests.
//
// The design constraint that shapes every signature here is that tracing
// must cost nothing when it is off. Every method on *Trace and *Span is
// nil-safe: a nil receiver is a no-op, so instrumented code calls
// span.Child/SetAttrInt/End unconditionally and the disabled path compiles
// to a handful of nil checks — no interface boxing, no allocation, no map
// writes. Attribute setters are typed (SetAttrInt, SetAttrStr, ...) rather
// than SetAttr(any) for the same reason: an `any` parameter would allocate
// at the call site even when the span is nil.
//
// Span IDs are random uint64s rather than per-trace sequence numbers so
// that spans recorded independently on two fleet nodes merge into one
// trace by plain append, with no renumbering pass.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"time"
)

// TraceHeader carries the trace identity on requests and responses:
// "traceID" from clients, "traceID-parentSpanID" on fleet forward hops so
// the remote node parents its work under the proxying node's hop span.
const TraceHeader = "X-HAP-Trace"

// SpansHeader returns the remote node's span records (base64 of JSON) on
// responses to fleet-forwarded requests, so the proxying node can merge
// them into the client-facing trace. Never set on responses to end clients.
const SpansHeader = "X-HAP-Trace-Spans"

// SpanRecord is one completed (or provisionally snapshotted) span. Times
// are Unix microseconds to match the Chrome trace-event format's unit.
type SpanRecord struct {
	ID      uint64            `json:"id"`
	Parent  uint64            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	Node    string            `json:"node,omitempty"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Trace accumulates the spans of one request (or one background replan).
// A nil *Trace is valid and inert.
type Trace struct {
	id   string
	node string

	mu    sync.Mutex
	spans []SpanRecord
}

// New starts a trace. An empty id mints a fresh random one; node labels
// every span recorded here (fleet advertise URL, or "" standalone).
func New(id, node string) *Trace {
	if id == "" {
		id = NewTraceID()
	}
	return &Trace{id: id, node: node}
}

// NewTraceID returns a 16-hex-digit random trace identifier.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a fixed ID keeps the
		// request path alive at the cost of trace collisions.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ID returns the trace identifier ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root opens a top-level span. parent is 0 for a client-originated request
// or the forwarding node's hop-span ID on a fleet hop, so the two nodes'
// records assemble into one tree.
func (t *Trace) Root(name string, parent uint64) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, id: newSpanID(), parent: parent, name: name, start: time.Now()}
}

// add appends a finished span record.
func (t *Trace) add(r SpanRecord) {
	t.mu.Lock()
	t.spans = append(t.spans, r)
	t.mu.Unlock()
}

// Merge appends span records from another node verbatim (random span IDs
// make this collision-safe). No-op on nil.
func (t *Trace) Merge(spans []SpanRecord) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, spans...)
	t.mu.Unlock()
}

// Snapshot copies the spans recorded so far (nil on nil receiver).
func (t *Trace) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// Finish packages the trace for the collector ring. Call after the root
// span has ended. Returns nil on a nil trace.
func (t *Trace) Finish() *TraceRecord {
	if t == nil {
		return nil
	}
	spans := t.Snapshot()
	rec := &TraceRecord{TraceID: t.id, Node: t.node, Spans: spans}
	for i := range spans {
		end := spans[i].StartUS + spans[i].DurUS
		if rec.StartUS == 0 || spans[i].StartUS < rec.StartUS {
			rec.StartUS = spans[i].StartUS
		}
		if end > rec.StartUS+rec.DurUS {
			rec.DurUS = end - rec.StartUS
		}
	}
	return rec
}

// Span measures one phase. A nil *Span is valid and inert, which is the
// entire hot-path contract: hap-layer hooks call these methods without
// checking whether tracing is enabled.
type Span struct {
	t      *Trace
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  map[string]string
	ended  bool
}

// newSpanID mints a random nonzero span identifier.
func newSpanID() uint64 {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			return 1
		}
		if id := binary.LittleEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
}

// SpanID returns the span's identifier (0 on nil).
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Child opens a sub-span. Returns nil (still inert) on a nil receiver.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{t: s.t, id: newSpanID(), parent: s.id, name: name, start: time.Now()}
}

// SetAttrStr attaches a string attribute. No-op on nil.
func (s *Span) SetAttrStr(key, v string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = v
}

// SetAttrInt attaches an integer attribute. No-op on nil.
func (s *Span) SetAttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.SetAttrStr(key, itoa(v))
}

// SetAttrFloat attaches a float attribute. No-op on nil.
func (s *Span) SetAttrFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.SetAttrStr(key, ftoa(v))
}

// SetAttrBool attaches a boolean attribute. No-op on nil.
func (s *Span) SetAttrBool(key string, v bool) {
	if s == nil {
		return
	}
	if v {
		s.SetAttrStr(key, "true")
	} else {
		s.SetAttrStr(key, "false")
	}
}

// End closes the span and records it on its trace. Ending twice records
// once. No-op on nil.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.t.add(s.record(time.Since(s.start)))
}

// Record snapshots the span as if it ended now, without closing it. Used
// to export a provisional root record on fleet-hop responses, where the
// remote root must appear in the merged trace before it actually ends.
func (s *Span) Record() SpanRecord {
	if s == nil {
		return SpanRecord{}
	}
	return s.record(time.Since(s.start))
}

func (s *Span) record(d time.Duration) SpanRecord {
	var attrs map[string]string
	if len(s.attrs) > 0 {
		attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			attrs[k] = v
		}
	}
	return SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		Node:    s.t.node,
		StartUS: s.start.UnixMicro(),
		DurUS:   d.Microseconds(),
		Attrs:   attrs,
	}
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ---- context carriage ----

type ctxKey struct{}

// ContextWithSpan returns ctx carrying s. A nil span returns ctx unchanged,
// so the disabled path adds no context layers and no Value-chain depth.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil. Callers do one
// lookup per operation (not per inner-loop step) and hold the result.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Start opens a child of the context's span (nil if none) and returns the
// ctx carrying it plus the span itself. Convenience for handler phases.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	s := SpanFromContext(ctx).Child(name)
	return ContextWithSpan(ctx, s), s
}

// ---- fleet-hop header codec ----

// FormatTraceHeader renders the outgoing X-HAP-Trace value for a fleet
// forward hop: "traceID-parentSpanIDhex".
func FormatTraceHeader(traceID string, parent uint64) string {
	if parent == 0 {
		return traceID
	}
	return traceID + "-" + strconv.FormatUint(parent, 16)
}

// ParseTraceHeader splits an incoming X-HAP-Trace value into the trace ID
// and (when present) the forwarding node's hop-span ID to parent under.
// Client-minted values are a bare ID; a malformed suffix is treated as
// part of an opaque ID rather than rejected.
func ParseTraceHeader(v string) (id string, parent uint64) {
	i := strings.LastIndexByte(v, '-')
	if i < 0 {
		return v, 0
	}
	p, err := strconv.ParseUint(v[i+1:], 16, 64)
	if err != nil {
		return v, 0
	}
	return v[:i], p
}

// EncodeSpans renders span records for the X-HAP-Trace-Spans response
// header: base64(JSON array). Empty input encodes to "".
func EncodeSpans(spans []SpanRecord) string {
	if len(spans) == 0 {
		return ""
	}
	b, err := json.Marshal(spans)
	if err != nil {
		return ""
	}
	return base64.StdEncoding.EncodeToString(b)
}

// DecodeSpans reverses EncodeSpans; malformed input yields nil (a trace
// missing a hop's spans is still a usable trace).
func DecodeSpans(v string) []SpanRecord {
	if v == "" {
		return nil
	}
	b, err := base64.StdEncoding.DecodeString(v)
	if err != nil {
		return nil
	}
	var spans []SpanRecord
	if err := json.Unmarshal(b, &spans); err != nil {
		return nil
	}
	return spans
}
