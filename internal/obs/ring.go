// The bounded in-memory ring of completed traces behind GET
// /v1/debug/traces, and the Chrome trace-event renderer that turns one
// trace into a file chrome://tracing (or Perfetto) opens directly.

package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// DefaultRingSize is how many completed traces a Collector retains when
// the capacity is left at zero.
const DefaultRingSize = 256

// TraceRecord is a completed trace as held in the ring and served by the
// debug endpoints.
type TraceRecord struct {
	TraceID string       `json:"trace_id"`
	Node    string       `json:"node,omitempty"`
	StartUS int64        `json:"start_us"`
	DurUS   int64        `json:"dur_us"`
	Spans   []SpanRecord `json:"spans"`
}

// Root returns the trace's root span (parent 0, earliest start wins), or a
// zero record if the trace is empty.
func (r *TraceRecord) Root() SpanRecord {
	var root SpanRecord
	for _, sp := range r.Spans {
		if sp.Parent != 0 {
			continue
		}
		if root.ID == 0 || sp.StartUS < root.StartUS {
			root = sp
		}
	}
	return root
}

// Collector is a fixed-capacity ring of completed traces: the newest N are
// kept, older ones fall off. Safe for concurrent use. A nil *Collector is
// valid and inert — that is the "tracing disabled" state.
type Collector struct {
	mu   sync.Mutex
	cap  int
	recs []*TraceRecord // ring storage
	next int            // insertion index
	n    int            // live count (<= cap)
}

// NewCollector builds a ring keeping up to capacity traces
// (DefaultRingSize when capacity <= 0).
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &Collector{cap: capacity, recs: make([]*TraceRecord, capacity)}
}

// Add stores a completed trace, evicting the oldest at capacity. No-op on
// a nil collector or nil record.
func (c *Collector) Add(r *TraceRecord) {
	if c == nil || r == nil {
		return
	}
	c.mu.Lock()
	c.recs[c.next] = r
	c.next = (c.next + 1) % c.cap
	if c.n < c.cap {
		c.n++
	}
	c.mu.Unlock()
}

// Traces returns retained traces, newest first.
func (c *Collector) Traces() []*TraceRecord {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*TraceRecord, 0, c.n)
	for i := 1; i <= c.n; i++ {
		out = append(out, c.recs[(c.next-i+c.cap)%c.cap])
	}
	return out
}

// Get returns the newest trace with the given ID.
func (c *Collector) Get(id string) (*TraceRecord, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 1; i <= c.n; i++ {
		if r := c.recs[(c.next-i+c.cap)%c.cap]; r.TraceID == id {
			return r, true
		}
	}
	return nil, false
}

// Len reports how many traces the ring currently holds.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// chromeEvent mirrors the Chrome trace-event JSON shape used by
// hap.WriteTrace (internal/sim): "X" complete events with microsecond
// timestamps, plus "M" metadata events naming each process.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`
	Dur  int64             `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChrome renders one trace as a Chrome trace-event file: each node in
// the trace becomes a process (named by a metadata event), each span an
// "X" complete event with its attrs under args. Timestamps are rebased to
// the trace start so the timeline opens at zero.
func WriteChrome(w io.Writer, r *TraceRecord) error {
	// Stable process numbering: nodes sorted, first-seen request node first
	// would be nicer but sorted is deterministic across exports.
	nodeSet := map[string]bool{}
	for _, sp := range r.Spans {
		nodeSet[sp.Node] = true
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	pid := make(map[string]int, len(nodes))
	events := make([]chromeEvent, 0, len(r.Spans)+len(nodes))
	for i, n := range nodes {
		pid[n] = i
		name := n
		if name == "" {
			name = "hap-serve"
		}
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", PID: i,
			Args: map[string]string{"name": name},
		})
	}
	spans := make([]SpanRecord, len(r.Spans))
	copy(spans, r.Spans)
	sort.Slice(spans, func(i, j int) bool { return spans[i].StartUS < spans[j].StartUS })
	for _, sp := range spans {
		dur := sp.DurUS
		if dur < 1 {
			dur = 1 // zero-width events vanish in the viewer
		}
		events = append(events, chromeEvent{
			Name: sp.Name,
			Cat:  "hap",
			Ph:   "X",
			TS:   sp.StartUS - r.StartUS,
			Dur:  dur,
			PID:  pid[sp.Node],
			TID:  1,
			Args: sp.Attrs,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}
