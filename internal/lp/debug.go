package lp

// SetDebug toggles simplex iteration logging (diagnostic use only).
func SetDebug(v bool) { debugLP = v }
