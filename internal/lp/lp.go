// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize    cᵀx
//	subject to  Aᵢ x {≤,=,≥} bᵢ,  x ≥ 0.
//
// It is the stand-in for the Coin CBC solver the paper uses for sharding-
// ratio optimization (Sec. 5); the ratio LPs are small (tens to hundreds of
// variables), well inside dense-simplex territory, and are solved exactly.
// Bland's rule guards against cycling.
package lp

import (
	"fmt"
	"math"
)

// Op is a constraint relation.
type Op int

// Constraint relations.
const (
	LE Op = iota // ≤
	EQ           // =
	GE           // ≥
)

// Constraint is one row: coefficient map over variable indices, relation,
// and right-hand side.
type Constraint struct {
	Coefs map[int]float64
	Op    Op
	RHS   float64
}

// Problem is a linear program under construction.
type Problem struct {
	numVars     int
	objective   []float64
	constraints []Constraint
}

// NewProblem returns an empty problem.
func NewProblem() *Problem { return &Problem{} }

// AddVar introduces a variable with the given objective coefficient and
// returns its index. All variables are non-negative.
func (p *Problem) AddVar(objCoef float64) int {
	p.objective = append(p.objective, objCoef)
	p.numVars++
	return p.numVars - 1
}

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return p.numVars }

// AddConstraint appends a constraint. Coefs is copied.
func (p *Problem) AddConstraint(coefs map[int]float64, op Op, rhs float64) {
	cp := make(map[int]float64, len(coefs))
	for k, v := range coefs {
		if k < 0 || k >= p.numVars {
			panic(fmt.Sprintf("lp: constraint references unknown variable %d", k))
		}
		cp[k] = v
	}
	p.constraints = append(p.constraints, Constraint{Coefs: cp, Op: op, RHS: rhs})
}

// Result is a solved LP.
type Result struct {
	X         []float64
	Objective float64
}

const (
	eps      = 1e-9
	enterEps = 1e-7 // noise-robust entering threshold
)

var debugLP = false

// Solve runs two-phase simplex and returns the optimum, or an error for
// infeasible or unbounded problems. Highly degenerate problems that stall
// despite Bland's rule are retried with a deterministic lexicographic-style
// RHS perturbation, which breaks ties at a negligible accuracy cost.
func (p *Problem) Solve() (*Result, error) {
	res, err := p.solve(0)
	for _, perturb := range []float64{1e-7, 1e-5} {
		if err == nil || err.Error() != "lp: iteration limit" {
			break
		}
		res, err = p.solve(perturb)
	}
	return res, err
}

func (p *Problem) solve(perturb float64) (*Result, error) {
	n := p.numVars
	mRows := len(p.constraints)

	// Normalize to equalities with slack/surplus, RHS ≥ 0, then add
	// artificials for rows lacking an obvious basic variable.
	type row struct {
		coefs []float64
		rhs   float64
		op    Op
	}
	rows := make([]row, mRows)
	numSlacks := 0
	for i, c := range p.constraints {
		scale := 1.0 + abs(c.RHS)
		r := row{coefs: make([]float64, n), rhs: c.RHS + perturb*scale*float64(i+1)/float64(mRows+1), op: c.Op}
		for k, v := range c.Coefs {
			r.coefs[k] = v
		}
		if r.rhs < 0 { // flip to make RHS non-negative
			for k := range r.coefs {
				r.coefs[k] = -r.coefs[k]
			}
			r.rhs = -r.rhs
			switch r.op {
			case LE:
				r.op = GE
			case GE:
				r.op = LE
			}
		}
		if r.op != EQ {
			numSlacks++
		}
		rows[i] = r
	}

	// Column layout: [x (n)] [slacks] [artificials] | rhs.
	totalCols := n + numSlacks + mRows // upper bound on artificials
	tab := make([][]float64, mRows)
	basis := make([]int, mRows)
	slackCol := n
	artCol := n + numSlacks
	numArts := 0
	for i := range rows {
		tab[i] = make([]float64, totalCols+1)
		copy(tab[i], rows[i].coefs)
		tab[i][totalCols] = rows[i].rhs
		switch rows[i].op {
		case LE:
			tab[i][slackCol] = 1
			basis[i] = slackCol
			slackCol++
		case GE:
			tab[i][slackCol] = -1
			slackCol++
			tab[i][artCol] = 1
			basis[i] = artCol
			artCol++
			numArts++
		case EQ:
			tab[i][artCol] = 1
			basis[i] = artCol
			artCol++
			numArts++
		}
	}
	usedCols := artCol

	pivot := func(r, c int) {
		pv := tab[r][c]
		for j := 0; j <= totalCols; j++ {
			tab[r][j] /= pv
		}
		for i := range tab {
			if i == r || math.Abs(tab[i][c]) < eps {
				continue
			}
			f := tab[i][c]
			for j := 0; j <= totalCols; j++ {
				tab[i][j] -= f * tab[r][j]
			}
		}
		basis[r] = c
	}

	// simplex minimizes obj over the current tableau. allowed bounds the
	// columns eligible to enter. Bland's rule on both the entering column
	// (smallest index with negative reduced cost) and the leaving row
	// (smallest basis index among exact min-ratio rows) prevents cycling.
	simplex := func(obj []float64, allowed int) error {
		for iter := 0; iter < 200000; iter++ {
			entering := -1
			for j := 0; j < allowed; j++ {
				z := obj[j]
				for i := range tab {
					if b := basis[i]; b < len(obj) && obj[b] != 0 {
						z -= obj[b] * tab[i][j]
					}
				}
				if z < -enterEps {
					entering = j // Bland: first eligible column
					break
				}
			}
			if entering == -1 {
				return nil
			}
			if debugLP && iter%5000 == 0 {
				obj0 := 0.0
				for i := range tab {
					if b := basis[i]; b < len(obj) {
						obj0 += obj[b] * tab[i][totalCols]
					}
				}
				fmt.Printf("iter=%d entering=%d obj=%.9g\n", iter, entering, obj0)
			}
			// Exact minimum ratio first, then Bland tie-break.
			minRatio := math.Inf(1)
			for i := range tab {
				if tab[i][entering] > eps {
					if r := tab[i][totalCols] / tab[i][entering]; r < minRatio {
						minRatio = r
					}
				}
			}
			if math.IsInf(minRatio, 1) {
				return fmt.Errorf("lp: unbounded")
			}
			leaving := -1
			for i := range tab {
				if tab[i][entering] > eps {
					r := tab[i][totalCols] / tab[i][entering]
					if r <= minRatio+eps && (leaving == -1 || basis[i] < basis[leaving]) {
						leaving = i
					}
				}
			}
			pivot(leaving, entering)
		}
		return fmt.Errorf("lp: iteration limit")
	}

	// Phase 1: minimize the sum of artificials.
	if numArts > 0 {
		phase1 := make([]float64, usedCols)
		for j := n + numSlacks; j < usedCols; j++ {
			phase1[j] = 1
		}
		if err := simplex(phase1, usedCols); err != nil {
			return nil, err
		}
		infeas := 0.0
		for i := range tab {
			if basis[i] >= n+numSlacks {
				infeas += tab[i][totalCols]
			}
		}
		if infeas > 1e-6 {
			return nil, fmt.Errorf("lp: infeasible (residual %g)", infeas)
		}
		// Drive artificials out of the basis where possible.
		for i := range tab {
			if basis[i] < n+numSlacks {
				continue
			}
			for j := 0; j < n+numSlacks; j++ {
				if math.Abs(tab[i][j]) > eps {
					pivot(i, j)
					break
				}
			}
		}
	}

	// Phase 2: minimize the real objective over structural+slack columns.
	phase2 := make([]float64, n+numSlacks)
	copy(phase2, p.objective)
	if err := simplex(phase2, n+numSlacks); err != nil {
		return nil, err
	}

	x := make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = tab[i][totalCols]
		}
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.objective[j] * x[j]
	}
	return &Result{X: x, Objective: obj}, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
