package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOrFatal(t *testing.T, p *Problem) *Result {
	t.Helper()
	r, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return r
}

func TestSimpleMaximizationAsMin(t *testing.T) {
	// max 3x+2y s.t. x+y ≤ 4, x ≤ 2  →  min -3x-2y; optimum x=2, y=2, obj -10.
	p := NewProblem()
	x := p.AddVar(-3)
	y := p.AddVar(-2)
	p.AddConstraint(map[int]float64{x: 1, y: 1}, LE, 4)
	p.AddConstraint(map[int]float64{x: 1}, LE, 2)
	r := solveOrFatal(t, p)
	if math.Abs(r.X[x]-2) > 1e-7 || math.Abs(r.X[y]-2) > 1e-7 {
		t.Errorf("x=%v y=%v, want 2,2", r.X[x], r.X[y])
	}
	if math.Abs(r.Objective+10) > 1e-7 {
		t.Errorf("objective %v, want -10", r.Objective)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min x+y s.t. x+y = 1, x ≥ 0.3 → x=0.3..1; objective 1 regardless.
	p := NewProblem()
	x := p.AddVar(1)
	y := p.AddVar(1)
	p.AddConstraint(map[int]float64{x: 1, y: 1}, EQ, 1)
	p.AddConstraint(map[int]float64{x: 1}, GE, 0.3)
	r := solveOrFatal(t, p)
	if math.Abs(r.Objective-1) > 1e-7 {
		t.Errorf("objective %v, want 1", r.Objective)
	}
	if r.X[x] < 0.3-1e-7 {
		t.Errorf("x=%v violates x ≥ 0.3", r.X[x])
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(1)
	p.AddConstraint(map[int]float64{x: 1}, LE, 1)
	p.AddConstraint(map[int]float64{x: 1}, GE, 2)
	if _, err := p.Solve(); err == nil {
		t.Error("expected infeasible")
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(-1) // maximize x with no upper bound
	p.AddConstraint(map[int]float64{x: 1}, GE, 0)
	if _, err := p.Solve(); err == nil {
		t.Error("expected unbounded")
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// min x s.t. -x ≤ -2  ⇔  x ≥ 2.
	p := NewProblem()
	x := p.AddVar(1)
	p.AddConstraint(map[int]float64{x: -1}, LE, -2)
	r := solveOrFatal(t, p)
	if math.Abs(r.X[x]-2) > 1e-7 {
		t.Errorf("x=%v, want 2", r.X[x])
	}
}

// The load balancer's LP shape (Sec. 5.1): min Σ tᵢ + c·M subject to
// tᵢ ≥ aᵢⱼBⱼ, M ≥ Bⱼ, ΣBⱼ = 1. With two devices of speeds 2:1 and no comm
// term, the optimum balances compute: B = (2/3, 1/3).
func TestShardingRatioShape(t *testing.T) {
	p := NewProblem()
	b1 := p.AddVar(0)
	b2 := p.AddVar(0)
	tv := p.AddVar(1)
	// t ≥ 1.0·B1 (slow device has a=1), t ≥ 0.5·B2? — speeds 1 and 2:
	// time on dev1 = B1/1, dev2 = B2/2.
	p.AddConstraint(map[int]float64{tv: 1, b1: -1}, GE, 0)
	p.AddConstraint(map[int]float64{tv: 1, b2: -0.5}, GE, 0)
	p.AddConstraint(map[int]float64{b1: 1, b2: 1}, EQ, 1)
	r := solveOrFatal(t, p)
	if math.Abs(r.X[b1]-1.0/3) > 1e-6 || math.Abs(r.X[b2]-2.0/3) > 1e-6 {
		t.Errorf("B = (%v, %v), want (1/3, 2/3)", r.X[b1], r.X[b2])
	}
}

func TestDegenerateNoConstraints(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(1)
	r := solveOrFatal(t, p)
	if r.X[x] != 0 {
		t.Errorf("x=%v, want 0", r.X[x])
	}
}

// Property: on random bounded-feasible LPs, the simplex solution satisfies
// all constraints and is no worse than a random feasible sample.
func TestQuickSimplexOptimality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		p := NewProblem()
		c := make([]float64, n)
		for j := 0; j < n; j++ {
			c[j] = rng.Float64()*2 - 0.5
			p.AddVar(c[j])
		}
		// Box: xⱼ ≤ u (keeps it bounded), plus a coupling row Σx ≥ 1.
		for j := 0; j < n; j++ {
			p.AddConstraint(map[int]float64{j: 1}, LE, 1+rng.Float64())
		}
		all := map[int]float64{}
		for j := 0; j < n; j++ {
			all[j] = 1
		}
		p.AddConstraint(all, GE, 1)
		r, err := p.Solve()
		if err != nil {
			return false
		}
		// Feasibility.
		sum := 0.0
		for j := 0; j < n; j++ {
			if r.X[j] < -1e-7 {
				return false
			}
			sum += r.X[j]
		}
		if sum < 1-1e-6 {
			return false
		}
		// Optimality vs. random feasible points.
		for trial := 0; trial < 20; trial++ {
			x := make([]float64, n)
			total := 0.0
			for j := 0; j < n; j++ {
				x[j] = rng.Float64()
				total += x[j]
			}
			if total < 1 {
				continue
			}
			obj := 0.0
			for j := 0; j < n; j++ {
				obj += c[j] * x[j]
			}
			if obj < r.Objective-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
