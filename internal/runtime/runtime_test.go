package runtime

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"hap/internal/autodiff"
	"hap/internal/cluster"
	"hap/internal/cost"
	"hap/internal/graph"
	"hap/internal/models"
	"hap/internal/synth"
	"hap/internal/tensor"
	"hap/internal/theory"
)

func clusterOf(m int) *cluster.Cluster {
	specs := make([]cluster.MachineSpec, m)
	for i := range specs {
		t := cluster.V100
		if i%2 == 1 {
			t = cluster.P100
		}
		specs[i] = cluster.MachineSpec{Type: t, GPUs: 1}
	}
	return cluster.FromGPUs(cluster.DefaultNetwork(), specs...)
}

func synthFor(t *testing.T, g *graph.Graph, m int) (*cluster.Cluster, [][]float64, *theory.Theory) {
	t.Helper()
	c := clusterOf(m)
	b := cost.UniformRatios(1, c.ProportionalRatios())
	return c, b, theory.New(g)
}

func TestExecSingleMLPGradientsMatchFiniteDifference(t *testing.T) {
	g := models.Training(models.MLP(4, 3, 5, 2))
	rng := rand.New(rand.NewSource(1))
	leaves := map[graph.NodeID]*tensor.Tensor{}
	for i := range g.Nodes {
		id := graph.NodeID(i)
		k := g.Node(id).Kind
		if k == graph.Placeholder || k == graph.Parameter {
			leaves[id] = tensor.Rand(rng, g.Node(id).Shape...)
		}
	}
	vals, err := ExecSingle(g, leaves)
	if err != nil {
		t.Fatalf("ExecSingle: %v", err)
	}
	// Check dLoss/dw1[0,0] against a central finite difference.
	w1 := g.Params[0]
	grad := vals[g.Grads[w1]].At(0, 0)
	const h = 1e-6
	perturbed := func(delta float64) float64 {
		l2 := map[graph.NodeID]*tensor.Tensor{}
		for k, v := range leaves {
			l2[k] = v.Clone()
		}
		l2[w1].Data()[0] += delta
		out, err := ExecSingle(g, l2)
		if err != nil {
			t.Fatalf("ExecSingle perturbed: %v", err)
		}
		return out[g.Loss].At()
	}
	fd := (perturbed(h) - perturbed(-h)) / (2 * h)
	if diff := grad - fd; diff > 1e-4 || diff < -1e-4 {
		t.Errorf("autodiff grad %v vs finite difference %v", grad, fd)
	}
}

// The paper's central semantic claim: the synthesized distributed program is
// equivalent to the single-device program. Verified numerically end to end.
func TestSynthesizedProgramEquivalentMLP(t *testing.T) {
	for _, m := range []int{2, 3, 4} {
		g := models.Training(models.MLP(12, 6, 8, 4))
		c, b, th := synthFor(t, g, m)
		p, _, err := synth.Synthesize(context.Background(), g, th, c, b, synth.Options{})
		if err != nil {
			t.Fatalf("m=%d: Synthesize: %v", m, err)
		}
		if err := VerifyEquivalence(p, m, b, 42); err != nil {
			t.Errorf("m=%d: %v\nprogram:\n%s", m, err, p)
		}
	}
}

func TestSynthesizedProgramEquivalentWithActivations(t *testing.T) {
	g := graph.New()
	x := g.AddPlaceholder("x", 0, 8, 6)
	w1 := g.AddParameter("w1", 6, 10)
	w2 := g.AddParameter("w2", 10, 4)
	h := g.AddOp(graph.Sigmoid, g.AddOp(graph.MatMul, x, w1))
	h2 := g.AddOp(graph.GeLU, g.AddOp(graph.MatMul, h, w2))
	g.SetLoss(g.AddOp(graph.Sum, g.AddScale(h2, 0.25)))
	if err := autodiff.Backward(g); err != nil {
		t.Fatal(err)
	}
	c, b, th := synthFor(t, g, 3)
	p, _, err := synth.Synthesize(context.Background(), g, th, c, b, synth.Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if err := VerifyEquivalence(p, 3, b, 7); err != nil {
		t.Errorf("equivalence: %v\n%s", err, p)
	}
}

func TestEquivalenceUnderUnevenRatios(t *testing.T) {
	g := models.Training(models.MLP(16, 8, 8, 4))
	c, _, th := synthFor(t, g, 2)
	b := [][]float64{{0.75, 0.25}}
	p, _, err := synth.Synthesize(context.Background(), g, th, c, b, synth.Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if err := VerifyEquivalence(p, 2, b, 11); err != nil {
		t.Errorf("uneven ratios: %v\n%s", err, p)
	}
}

func TestRelationOfClassifications(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := tensor.Rand(rng, 4, 6)

	if r, err := RelationOf(ref, []*tensor.Tensor{ref, ref.Clone()}); err != nil || r != "identity" {
		t.Errorf("identity: %v %v", r, err)
	}

	half := tensor.Scale(ref, 0.5)
	if r, err := RelationOf(ref, []*tensor.Tensor{half, half}); err != nil || r != "all-reduce" {
		t.Errorf("all-reduce: %v %v", r, err)
	}

	parts := tensor.SplitSizes(ref, 1, []int{2, 4})
	if r, err := RelationOf(ref, parts); err != nil || r != "all-gather(1)" {
		t.Errorf("all-gather: %v %v", r, err)
	}

	junk := tensor.Rand(rng, 4, 6)
	if _, err := RelationOf(ref, []*tensor.Tensor{junk, junk}); err == nil {
		t.Error("junk instances should not match any property")
	}
}

// Property-based differential test: random small MLP-family graphs, random
// device counts — every synthesized program must be numerically equivalent.
func TestQuickRandomGraphEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		layers := 1 + rng.Intn(3)
		widths := []int{2 + rng.Intn(6)}
		for i := 0; i < layers; i++ {
			widths = append(widths, 2+rng.Intn(6))
		}
		batch := 4 + rng.Intn(8)
		g := models.Training(models.MLP(batch, widths...))
		m := 2 + rng.Intn(2)
		c := clusterOf(m)
		b := cost.UniformRatios(1, c.ProportionalRatios())
		p, _, err := synth.Synthesize(context.Background(), g, theory.New(g), c, b, synth.Options{})
		if err != nil {
			t.Logf("seed %d: synth: %v", seed, err)
			return false
		}
		if err := VerifyEquivalence(p, m, b, seed); err != nil {
			t.Logf("seed %d: %v\n%s", seed, err, p)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// A BERT-lite model with a tied embedding: Embed, EmbedGrad, Transpose and
// the matmul family all execute numerically, so the full embedding-model
// path gets the same end-to-end equivalence proof as the MLPs.
func TestSynthesizedProgramEquivalentEmbeddingModel(t *testing.T) {
	g := graph.New()
	ids := g.AddPlaceholder("ids", 0, 24)
	table := g.AddParameter("embed", 16, 8)
	x := g.AddEmbed(ids, table)
	w := g.AddParameter("w", 8, 8)
	h := g.AddOp(graph.GeLU, g.AddOp(graph.MatMul, x, w))
	headW := g.AddOp(graph.Transpose, table)
	logits := g.AddOp(graph.MatMul, h, headW)
	g.SetLoss(g.AddOp(graph.Sum, g.AddScale(logits, 1.0/24)))
	if err := autodiff.Backward(g); err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{2, 3} {
		c, b, th := synthFor(t, g, m)
		p, _, err := synth.Synthesize(context.Background(), g, th, c, b, synth.Options{})
		if err != nil {
			t.Fatalf("m=%d: Synthesize: %v", m, err)
		}
		if err := VerifyEquivalence(p, m, b, 13); err != nil {
			t.Errorf("m=%d: %v\n%s", m, err, p)
		}
	}
}

func TestCostOnlyOpsRejected(t *testing.T) {
	g := graph.New()
	x := g.AddPlaceholder("x", 0, 4, 300)
	w := g.AddParameter("w", 27, 8)
	cnv := g.AddConv(x, w, 80, 1000)
	g.SetLoss(g.AddOp(graph.Sum, cnv))
	leaves := map[graph.NodeID]*tensor.Tensor{
		x: tensor.New(4, 300), w: tensor.New(27, 8),
	}
	if _, err := ExecSingle(g, leaves); err == nil {
		t.Error("conv should be cost-only")
	}
}
