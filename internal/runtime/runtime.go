// Package runtime executes programs on real numbers. It runs both the
// single-device graph (the reference) and a synthesized distributed program
// (on m in-memory "devices" with data-plane collectives) and verifies the
// semantic-equivalence claim of Sec. 4.2: every distributed tensor must
// relate to its reference tensor through one of the three properties
// (Identity, All-Gather(d), All-Reduce), and every required output must be
// materialized acceptably.
//
// This is the correctness backstop the paper gets from construction; here it
// doubles as a differential test of the synthesizer, the theory rules, and
// the data-plane collectives.
package runtime

import (
	"fmt"
	"math/rand"

	"hap/internal/collective"
	"hap/internal/dist"
	"hap/internal/graph"
	"hap/internal/tensor"
)

// verification tolerances: float64 math with different summation orders.
const (
	rtol = 1e-7
	atol = 1e-7
)

// ExecSingle runs the single-device graph with the given leaf values and
// returns every node's tensor. Leaves not present in leaves get zeros
// (Placeholder) or are synthesized (Ones).
func ExecSingle(g *graph.Graph, leaves map[graph.NodeID]*tensor.Tensor) (map[graph.NodeID]*tensor.Tensor, error) {
	vals := make(map[graph.NodeID]*tensor.Tensor, g.NumNodes())
	for i := range g.Nodes {
		id := graph.NodeID(i)
		n := g.Node(id)
		var v *tensor.Tensor
		var err error
		switch n.Kind {
		case graph.Placeholder, graph.Parameter:
			lv, ok := leaves[id]
			if !ok {
				return nil, fmt.Errorf("runtime: no value for leaf e%d (%s)", id, n.Name)
			}
			v = lv
		case graph.Ones:
			v = tensor.Ones(n.Shape...)
		default:
			v, err = execOp(g, n, func(i int) *tensor.Tensor { return vals[n.Inputs[i]] })
			if err != nil {
				return nil, err
			}
		}
		vals[id] = v
	}
	return vals, nil
}

// execOp evaluates one computation node given its input tensors.
func execOp(g *graph.Graph, n *graph.Node, in func(int) *tensor.Tensor) (*tensor.Tensor, error) {
	switch n.Kind {
	case graph.MatMul:
		return tensor.MatMul(in(0), in(1)), nil
	case graph.Transpose:
		return tensor.Transpose(in(0)), nil
	case graph.Add:
		return tensor.Add(in(0), in(1)), nil
	case graph.Mul:
		return tensor.Mul(in(0), in(1)), nil
	case graph.Scale:
		return tensor.Scale(in(0), n.ScaleFactor), nil
	case graph.ReLU:
		return tensor.ReLU(in(0)), nil
	case graph.Sigmoid:
		return tensor.Sigmoid(in(0)), nil
	case graph.GeLU:
		return tensor.GeLU(in(0)), nil
	case graph.Softmax:
		return tensor.Softmax(in(0)), nil
	case graph.Sum:
		return tensor.Sum(in(0)), nil
	case graph.ReLUGrad:
		return tensor.ReLUGrad(in(0), in(1)), nil
	case graph.SigmoidGrad:
		return tensor.SigmoidGrad(in(0), in(1)), nil
	case graph.GeLUGrad:
		return tensor.GeLUGrad(in(0), in(1)), nil
	case graph.SoftmaxGrad:
		return softmaxGrad(in(0), in(1)), nil
	case graph.Expand:
		s := in(0).At()
		out := tensor.New(n.Shape...)
		for i := range out.Data() {
			out.Data()[i] = s
		}
		return out, nil
	case graph.Embed:
		return embed(in(0), in(1)), nil
	case graph.EmbedGrad:
		// Inputs (ids, gy); output shape is the table's.
		return embedGrad(in(0), in(1), n.Shape), nil
	default:
		return nil, fmt.Errorf("runtime: op %v is cost-only (no numeric kernel)", n.Kind)
	}
}

// tokenIndex maps a float id value to a row of a V-row table. Placeholders
// carry random floats in tests; the mapping just needs to be deterministic
// and local to each element.
func tokenIndex(v float64, vocab int) int {
	i := int(v*1e6) % vocab
	if i < 0 {
		i += vocab
	}
	return i
}

// embed gathers table rows: ids (T,) × table (V,H) → (T,H).
func embed(ids, table *tensor.Tensor) *tensor.Tensor {
	t := ids.Dim(0)
	v, h := table.Dim(0), table.Dim(1)
	out := tensor.New(t, h)
	for i := 0; i < t; i++ {
		row := tokenIndex(ids.Data()[i], v)
		copy(out.Data()[i*h:(i+1)*h], table.Data()[row*h:(row+1)*h])
	}
	return out
}

// embedGrad scatter-adds gy rows into a zero table: (ids (T,), gy (T,H)) →
// (V,H). The vocabulary size comes from the reference shape (never sharded
// by our rules); the width follows gy, which may be a hidden-dim shard.
func embedGrad(ids, gy *tensor.Tensor, shape tensor.Shape) *tensor.Tensor {
	v, h := shape[0], gy.Dim(1)
	out := tensor.New(v, h)
	for i := 0; i < ids.Dim(0); i++ {
		row := tokenIndex(ids.Data()[i], v)
		for j := 0; j < h; j++ {
			out.Data()[row*h+j] += gy.Data()[i*h+j]
		}
	}
	return out
}

// softmaxGrad computes dL/dx for y = softmax(x): y ∘ (g − rowsum(g∘y)).
func softmaxGrad(y, gy *tensor.Tensor) *tensor.Tensor {
	last := y.Dim(y.Rank() - 1)
	rows := y.Shape().NumElements() / last
	out := tensor.New(y.Shape()...)
	yd, gd, od := y.Data(), gy.Data(), out.Data()
	for r := 0; r < rows; r++ {
		dot := 0.0
		for c := 0; c < last; c++ {
			dot += yd[r*last+c] * gd[r*last+c]
		}
		for c := 0; c < last; c++ {
			i := r*last + c
			od[i] = yd[i] * (gd[i] - dot)
		}
	}
	return out
}

// ExecDistributed runs the distributed program on m in-memory devices using
// the data-plane collectives, returning each device's tensor per reference
// node. Leaf values are the full (reference) tensors; sharded loaders slice
// them locally exactly as Sec. 6 describes.
func ExecDistributed(p *dist.Program, m int, b [][]float64, leaves map[graph.NodeID]*tensor.Tensor) (map[graph.NodeID][]*tensor.Tensor, error) {
	g := p.Graph
	vals := make(map[graph.NodeID][]*tensor.Tensor, g.NumNodes())
	sizes := func(ref graph.NodeID, d int) []int {
		return collective.ShardSizes(g.Node(ref).Shape[d], b[g.Segment(ref)])
	}
	for _, in := range p.Instrs {
		if in.IsComm {
			cur, ok := vals[in.Ref]
			if !ok {
				return nil, fmt.Errorf("runtime: collective on unproduced tensor e%d", in.Ref)
			}
			var next []*tensor.Tensor
			switch in.Coll {
			case collective.AllReduce:
				full := collective.AllReduceT(cur)
				next = replicate(full, m)
			case collective.PaddedAllGather, collective.GroupedBroadcast:
				full := collective.AllGatherT(cur, in.Dim)
				next = replicate(full, m)
			case collective.ReduceScatter:
				next = collective.ReduceScatterT(cur, in.Dim, sizes(in.Ref, in.Dim))
			case collective.AllToAll:
				next = collective.AllToAllT(cur, in.Dim, in.Dim2, sizes(in.Ref, in.Dim2))
			default:
				return nil, fmt.Errorf("runtime: unknown collective %v", in.Coll)
			}
			vals[in.Ref] = next
			continue
		}
		n := g.Node(in.Ref)
		out := make([]*tensor.Tensor, m)
		switch n.Kind {
		case graph.Placeholder, graph.Parameter:
			full, ok := leaves[in.Ref]
			if !ok {
				return nil, fmt.Errorf("runtime: no value for leaf e%d", in.Ref)
			}
			if in.ShardDim < 0 {
				out = replicate(full, m)
			} else {
				parts := tensor.SplitSizes(full, in.ShardDim, sizes(in.Ref, in.ShardDim))
				copy(out, parts)
			}
		case graph.Ones:
			if in.ShardDim >= 0 {
				return nil, fmt.Errorf("runtime: sharded ones unsupported")
			}
			out = replicate(tensor.Ones(n.Shape...), m)
		case graph.Expand:
			scalars := vals[n.Inputs[0]]
			if in.ShardDim < 0 {
				for j := 0; j < m; j++ {
					v := tensor.New(n.Shape...)
					fill(v, scalars[j].At())
					out[j] = v
				}
			} else {
				sz := sizes(in.Ref, in.ShardDim)
				for j := 0; j < m; j++ {
					shape := n.Shape.Clone()
					shape[in.ShardDim] = sz[j]
					v := tensor.New(shape...)
					fill(v, scalars[j].At())
					out[j] = v
				}
			}
		default:
			for j := 0; j < m; j++ {
				jj := j
				v, err := execOp(g, n, func(i int) *tensor.Tensor {
					return vals[n.Inputs[i]][jj]
				})
				if err != nil {
					return nil, err
				}
				out[j] = v
			}
		}
		vals[in.Ref] = out
	}
	return vals, nil
}

func replicate(t *tensor.Tensor, m int) []*tensor.Tensor {
	out := make([]*tensor.Tensor, m)
	for i := range out {
		out[i] = t
	}
	return out
}

func fill(t *tensor.Tensor, v float64) {
	for i := range t.Data() {
		t.Data()[i] = v
	}
}

// RelationOf classifies how distributed instances relate to the reference:
// it returns "identity", "all-reduce", or "all-gather(d)", or an error when
// no property explains the instances — which would falsify the synthesized
// program's semantics.
func RelationOf(ref *tensor.Tensor, instances []*tensor.Tensor) (string, error) {
	allEqual := true
	for _, inst := range instances {
		if !tensor.AllClose(inst, ref, rtol, atol) {
			allEqual = false
			break
		}
	}
	if allEqual {
		return "identity", nil
	}
	sameShape := true
	for _, inst := range instances {
		if !inst.Shape().Equal(ref.Shape()) {
			sameShape = false
			break
		}
	}
	if sameShape && tensor.AllClose(collective.AllReduceT(instances), ref, 1e-6, 1e-6) {
		return "all-reduce", nil
	}
	for d := 0; d < ref.Rank(); d++ {
		ok := true
		total := 0
		for _, inst := range instances {
			if inst.Rank() != ref.Rank() {
				ok = false
				break
			}
			total += inst.Dim(d)
		}
		if !ok || total != ref.Dim(d) {
			continue
		}
		if tensor.AllClose(collective.AllGatherT(instances, d), ref, rtol, atol) {
			return fmt.Sprintf("all-gather(%d)", d), nil
		}
	}
	return "", fmt.Errorf("no property explains the instances (ref shape %v)", ref.Shape())
}

// VerifyEquivalence runs both executions with random leaf data and checks
// that every tensor the distributed program produces is explained by a
// property of the reference tensor. It returns the first violation.
func VerifyEquivalence(p *dist.Program, m int, b [][]float64, seed int64) error {
	g := p.Graph
	rng := rand.New(rand.NewSource(seed))
	leaves := map[graph.NodeID]*tensor.Tensor{}
	for i := range g.Nodes {
		id := graph.NodeID(i)
		k := g.Node(id).Kind
		if k == graph.Placeholder || k == graph.Parameter {
			leaves[id] = tensor.Rand(rng, g.Node(id).Shape...)
		}
	}
	ref, err := ExecSingle(g, leaves)
	if err != nil {
		return fmt.Errorf("runtime: reference execution: %w", err)
	}
	vvals, err := ExecDistributed(p, m, b, leaves)
	if err != nil {
		return fmt.Errorf("runtime: distributed execution: %w", err)
	}
	for id, instances := range vvals {
		if _, err := RelationOf(ref[id], instances); err != nil {
			return fmt.Errorf("runtime: tensor e%d (%v): %w", id, g.Node(id).Kind, err)
		}
	}
	// Outputs: the loss must be recoverable, and every gradient usable.
	if g.Loss >= 0 {
		if _, ok := vvals[g.Loss]; !ok {
			return fmt.Errorf("runtime: loss never produced")
		}
	}
	for param, grad := range g.Grads {
		if _, ok := vvals[grad]; !ok {
			return fmt.Errorf("runtime: gradient e%d of param e%d never produced", grad, param)
		}
	}
	return nil
}
