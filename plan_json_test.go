package hap

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// quickstartGraph mirrors examples/quickstart: a small MLP with backward pass.
func quickstartGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	x := g.AddPlaceholder("x", 0, 64, 48)
	w1 := g.AddParameter("w1", 48, 32)
	w2 := g.AddParameter("w2", 32, 8)
	h := g.AddOp(ReLU, g.AddOp(MatMul, x, w1))
	logits := g.AddOp(MatMul, h, w2)
	g.SetLoss(g.AddOp(Sum, g.AddScale(logits, 1.0/64)))
	if err := Backward(g); err != nil {
		t.Fatalf("Backward: %v", err)
	}
	return g
}

func heteroPair() *Cluster {
	return PerGPU(
		MachineSpec{Type: V100, GPUs: 1},
		MachineSpec{Type: P100, GPUs: 1},
	)
}

// A plan must survive the JSON round-trip bit-for-bit: same disassembly, same
// ratios, same modeled cost — and the re-loaded program must still verify
// numerically and simulate.
func TestPlanJSONRoundTrip(t *testing.T) {
	g := quickstartGraph(t)
	c := heteroPair()
	plan, err := Parallelize(g, c, Options{})
	if err != nil {
		t.Fatalf("Parallelize: %v", err)
	}

	var buf bytes.Buffer
	if err := plan.WriteProgram(&buf); err != nil {
		t.Fatalf("WriteProgram: %v", err)
	}
	back, err := ReadProgram(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatalf("ReadProgram: %v", err)
	}

	if got, want := back.Program.String(), plan.Program.String(); got != want {
		t.Errorf("round-trip changed the program:\n%s\nvs\n%s", got, want)
	}
	if back.Cost != plan.Cost {
		t.Errorf("round-trip cost %v != %v", back.Cost, plan.Cost)
	}
	if len(back.Ratios) != len(plan.Ratios) {
		t.Fatalf("round-trip ratios %v != %v", back.Ratios, plan.Ratios)
	}
	for k := range plan.Ratios {
		for j := range plan.Ratios[k] {
			if back.Ratios[k][j] != plan.Ratios[k][j] {
				t.Fatalf("round-trip ratios %v != %v", back.Ratios, plan.Ratios)
			}
		}
	}

	// The re-loaded plan is a first-class plan: verifiable and simulatable.
	if err := Verify(back, c.M(), 7); err != nil {
		t.Errorf("Verify on re-loaded plan: %v", err)
	}
	if dt := Simulate(back, c, 1); dt <= 0 {
		t.Errorf("Simulate on re-loaded plan = %v", dt)
	}
}

// A plan produced with Segments > 1 must re-load against a freshly built
// (unsegmented) graph: the serialized segment assignment is adopted onto the
// binding graph, since a fresh process cannot reproduce it otherwise.
func TestSegmentedPlanReloadsOnFreshGraph(t *testing.T) {
	g1 := quickstartGraph(t)
	c := heteroPair()
	plan, err := Parallelize(g1, c, Options{Segments: 2})
	if err != nil {
		t.Fatalf("Parallelize: %v", err)
	}
	if len(plan.Ratios) != 2 {
		t.Fatalf("expected 2 ratio rows, got %v", plan.Ratios)
	}
	var buf bytes.Buffer
	if err := plan.WriteProgram(&buf); err != nil {
		t.Fatalf("WriteProgram: %v", err)
	}

	g2 := quickstartGraph(t) // fresh process: same model, no segmentation
	back, err := ReadProgram(bytes.NewReader(buf.Bytes()), g2)
	if err != nil {
		t.Fatalf("ReadProgram on fresh graph: %v", err)
	}
	if g2.NumSegments() != 2 {
		t.Errorf("segment assignment not adopted: %d segments", g2.NumSegments())
	}
	if got, want := back.Program.String(), plan.Program.String(); got != want {
		t.Errorf("round-trip changed the program:\n%s\nvs\n%s", got, want)
	}
	if err := Verify(back, c.M(), 5); err != nil {
		t.Errorf("Verify on re-loaded segmented plan: %v", err)
	}
}

// Malformed ratios and non-plan input must be rejected at load time, not
// crash later inside Verify/Simulate.
func TestReadProgramRejectsBadRatios(t *testing.T) {
	g := quickstartGraph(t)
	plan, err := Parallelize(g, heteroPair(), Options{})
	if err != nil {
		t.Fatalf("Parallelize: %v", err)
	}
	var buf bytes.Buffer
	if err := plan.WriteProgram(&buf); err != nil {
		t.Fatalf("WriteProgram: %v", err)
	}
	tamper := func(f func(m map[string]json.RawMessage)) string {
		var m map[string]json.RawMessage
		if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		f(m)
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return string(out)
	}

	cases := []struct {
		name, json, wantSub string
	}{
		{"null ratios", tamper(func(m map[string]json.RawMessage) {
			m["ratios"] = json.RawMessage("null")
		}), "segments"},
		{"ratios not summing to 1", tamper(func(m map[string]json.RawMessage) {
			m["ratios"] = json.RawMessage("[[0.5, 0.2]]")
		}), "sums to"},
		{"empty ratio row", tamper(func(m map[string]json.RawMessage) {
			m["ratios"] = json.RawMessage("[[]]")
		}), "devices"},
		{"negative ratio", tamper(func(m map[string]json.RawMessage) {
			m["ratios"] = json.RawMessage("[[1.5, -0.5]]")
		}), "not a valid ratio"},
		{"not a plan", "{}", `"program" section`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadProgram(strings.NewReader(tc.json), g)
			if err == nil {
				t.Fatal("ReadProgram accepted malformed input")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// A failed ReadProgram must not leave the caller's graph mutated: a plan
// already bound to the graph would index its ratio rows with the clobbered
// segment assignment.
func TestFailedReadProgramLeavesGraphUnmutated(t *testing.T) {
	g1 := quickstartGraph(t)
	c := heteroPair()
	plan, err := Parallelize(g1, c, Options{Segments: 2})
	if err != nil {
		t.Fatalf("Parallelize: %v", err)
	}
	var buf bytes.Buffer
	if err := plan.WriteProgram(&buf); err != nil {
		t.Fatalf("WriteProgram: %v", err)
	}
	g2 := quickstartGraph(t)
	back, err := ReadProgram(bytes.NewReader(buf.Bytes()), g2)
	if err != nil {
		t.Fatalf("ReadProgram: %v", err)
	}
	before := append([]int(nil), g2.SegmentOf...)

	// Corrupt the plan so the load fails *after* the segment assignment
	// would have been adopted: stripping segment_of changes the graph
	// fingerprint, so the program no longer binds.
	var m map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "segment_of")
	bad, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProgram(bytes.NewReader(bad), g2); err == nil {
		t.Fatal("ReadProgram accepted a plan with a stripped segment assignment")
	}
	if len(g2.SegmentOf) != len(before) {
		t.Fatalf("failed ReadProgram mutated SegmentOf: %v vs %v", g2.SegmentOf, before)
	}
	for i := range before {
		if g2.SegmentOf[i] != before[i] {
			t.Fatalf("failed ReadProgram mutated SegmentOf: %v vs %v", g2.SegmentOf, before)
		}
	}
	// The previously loaded plan still works against the intact graph.
	if err := Verify(back, c.M(), 3); err != nil {
		t.Errorf("plan bound before the failed load no longer verifies: %v", err)
	}
}

// Binding a serialized plan to the wrong graph must fail loudly, not produce
// a silently wrong program.
func TestReadProgramRejectsWrongGraph(t *testing.T) {
	g := quickstartGraph(t)
	plan, err := Parallelize(g, heteroPair(), Options{})
	if err != nil {
		t.Fatalf("Parallelize: %v", err)
	}
	var buf bytes.Buffer
	if err := plan.WriteProgram(&buf); err != nil {
		t.Fatalf("WriteProgram: %v", err)
	}
	other := NewGraph()
	other.AddPlaceholder("x", 0, 2, 2)
	if _, err := ReadProgram(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("ReadProgram bound a plan to the wrong graph")
	} else if !strings.Contains(err.Error(), "node") {
		t.Errorf("unexpected error: %v", err)
	}
}
